# Drives kcc's batched multi-program mode: several input files run
# through one shared work-stealing scheduler; per-file reports land on
# stderr, program outputs pass through stdout in command-line order,
# --batch-stats prints the shared-scheduler counters, and the exit code
# is 139 if any program is undefined, 1 if any fails to compile (and
# none is undefined), else 0. Run via ctest (test name: kcc_batch_cli).
if(NOT DEFINED KCC OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DKCC=<kcc> -DWORKDIR=<dir> -P CheckBatchCli.cmake")
endif()

file(MAKE_DIRECTORY ${WORKDIR})
set(UB_C ${WORKDIR}/batch_ub.c)
file(WRITE ${UB_C} "int d = 5;\nint setDenom(int x) { return d = x; }\nint main(void) { return (10 / d) + setDenom(0); }\n")
set(OK_C ${WORKDIR}/batch_ok.c)
file(WRITE ${OK_C} "int main(void) { return 0; }\n")
set(BAD_C ${WORKDIR}/batch_bad.c)
file(WRITE ${BAD_C} "int main(void) { return 0 }\n")

# UB + clean: exit 139, stats block, per-file headers, UB report.
execute_process(
  COMMAND ${KCC} ${UB_C} ${OK_C} --batch-stats --search=64 --search-jobs=2
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 139)
  message(FATAL_ERROR "kcc batch (ub, ok): expected exit 139, got ${RC}")
endif()
if(NOT ERR MATCHES "Batch stats: programs=2")
  message(FATAL_ERROR "kcc batch: missing --batch-stats block: ${ERR}")
endif()
if(NOT ERR MATCHES "== .*batch_ub.c ==" OR NOT ERR MATCHES "== .*batch_ok.c ==")
  message(FATAL_ERROR "kcc batch: missing per-file headers: ${ERR}")
endif()
if(NOT ERR MATCHES "Error: 00001")
  message(FATAL_ERROR "kcc batch: missing division-by-zero report: ${ERR}")
endif()
if(NOT ERR MATCHES "batch_ub.c: UNDEFINED" OR NOT ERR MATCHES "batch_ok.c: clean")
  message(FATAL_ERROR "kcc batch: missing per-program verdict lines: ${ERR}")
endif()

# All clean: exit 0.
execute_process(
  COMMAND ${KCC} ${OK_C} ${OK_C} --batch-stats
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "kcc batch (ok, ok): expected exit 0, got ${RC}: ${ERR}")
endif()

# Compile failure without UB: exit 1, diagnostics on stderr.
execute_process(
  COMMAND ${KCC} ${BAD_C} ${OK_C}
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 1)
  message(FATAL_ERROR "kcc batch (bad, ok): expected exit 1, got ${RC}")
endif()
if(ERR STREQUAL "")
  message(FATAL_ERROR "kcc batch (bad, ok): no compile diagnostic on stderr")
endif()

# Batch witnesses match the single-file ones byte for byte.
execute_process(
  COMMAND ${KCC} ${UB_C} --show-witness --search=64
  RESULT_VARIABLE RC1 OUTPUT_VARIABLE OUT1 ERROR_VARIABLE ERR1)
execute_process(
  COMMAND ${KCC} ${UB_C} --show-witness --search=64 --batch-stats
  RESULT_VARIABLE RC2 OUTPUT_VARIABLE OUT2 ERROR_VARIABLE ERR2)
if(NOT RC1 EQUAL 139 OR NOT RC2 EQUAL 139)
  message(FATAL_ERROR "kcc witness runs: expected exit 139, got ${RC1}/${RC2}")
endif()
string(REGEX MATCH "Witness decisions:[^\n]*" W1 "${ERR1}")
string(REGEX MATCH "Witness decisions:[^\n]*" W2 "${ERR2}")
if(NOT W1 STREQUAL W2 OR W1 STREQUAL "")
  message(FATAL_ERROR "kcc batch witness differs from single-file: '${W1}' vs '${W2}'")
endif()

# Duplicate-heavy batch through the result cache: the duplicates must
# resolve warm (hit rate > 0 in the honest counters) and the rendered
# reports must be byte-identical to the cache-off A/B run.
execute_process(
  COMMAND ${KCC} ${UB_C} ${UB_C} ${UB_C} ${UB_C} --batch-stats --search=64
  RESULT_VARIABLE RC_ON OUTPUT_VARIABLE OUT_ON ERROR_VARIABLE ERR_ON)
execute_process(
  COMMAND ${KCC} ${UB_C} ${UB_C} ${UB_C} ${UB_C} --batch-stats --search=64
          --result-cache=off
  RESULT_VARIABLE RC_OFF OUTPUT_VARIABLE OUT_OFF ERROR_VARIABLE ERR_OFF)
if(NOT RC_ON EQUAL 139 OR NOT RC_OFF EQUAL 139)
  message(FATAL_ERROR "kcc duplicate batch: expected exit 139, got ${RC_ON}/${RC_OFF}")
endif()
# The duplicates resolve warm either way the race falls: as hits on
# the published entry or as joins of the in-flight search. Exactly one
# search may run.
if(NOT ERR_ON MATCHES "Result cache: hits=([0-9]+) joins=([0-9]+) misses=1")
  message(FATAL_ERROR "kcc duplicate batch: duplicates did not resolve from the result cache: ${ERR_ON}")
endif()
math(EXPR RC_WARM "${CMAKE_MATCH_1} + ${CMAKE_MATCH_2}")
if(NOT RC_WARM EQUAL 3)
  message(FATAL_ERROR "kcc duplicate batch: expected 3 warm resolutions, got hits=${CMAKE_MATCH_1} joins=${CMAKE_MATCH_2}")
endif()
if(NOT ERR_OFF MATCHES "Result cache: hits=0 joins=0 misses=0")
  message(FATAL_ERROR "kcc --result-cache=off: cache counters moved: ${ERR_OFF}")
endif()
if(NOT OUT_ON STREQUAL OUT_OFF)
  message(FATAL_ERROR "kcc duplicate batch: stdout differs between cache on and off")
endif()
# stderr minus the wall-clock-bearing stats lines must match too: the
# per-file reports and verdicts are cache-invisible.
string(REGEX REPLACE "[^\n]*(Batch stats|cache):[^\n]*\n" "" REPORT_ON "${ERR_ON}")
string(REGEX REPLACE "[^\n]*(Batch stats|cache):[^\n]*\n" "" REPORT_OFF "${ERR_OFF}")
if(NOT REPORT_ON STREQUAL REPORT_OFF)
  message(FATAL_ERROR "kcc duplicate batch: reports differ between cache on and off:\n${REPORT_ON}\n--- vs ---\n${REPORT_OFF}")
endif()

message(STATUS "kcc batched CLI behaves as documented")
