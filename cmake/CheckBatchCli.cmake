# Drives kcc's batched multi-program mode: several input files run
# through one shared work-stealing scheduler; per-file reports land on
# stderr, program outputs pass through stdout in command-line order,
# --batch-stats prints the shared-scheduler counters, and the exit code
# is 139 if any program is undefined, 1 if any fails to compile (and
# none is undefined), else 0. Run via ctest (test name: kcc_batch_cli).
if(NOT DEFINED KCC OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DKCC=<kcc> -DWORKDIR=<dir> -P CheckBatchCli.cmake")
endif()

file(MAKE_DIRECTORY ${WORKDIR})
set(UB_C ${WORKDIR}/batch_ub.c)
file(WRITE ${UB_C} "int d = 5;\nint setDenom(int x) { return d = x; }\nint main(void) { return (10 / d) + setDenom(0); }\n")
set(OK_C ${WORKDIR}/batch_ok.c)
file(WRITE ${OK_C} "int main(void) { return 0; }\n")
set(BAD_C ${WORKDIR}/batch_bad.c)
file(WRITE ${BAD_C} "int main(void) { return 0 }\n")

# UB + clean: exit 139, stats block, per-file headers, UB report.
execute_process(
  COMMAND ${KCC} ${UB_C} ${OK_C} --batch-stats --search=64 --search-jobs=2
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 139)
  message(FATAL_ERROR "kcc batch (ub, ok): expected exit 139, got ${RC}")
endif()
if(NOT ERR MATCHES "Batch stats: programs=2")
  message(FATAL_ERROR "kcc batch: missing --batch-stats block: ${ERR}")
endif()
if(NOT ERR MATCHES "== .*batch_ub.c ==" OR NOT ERR MATCHES "== .*batch_ok.c ==")
  message(FATAL_ERROR "kcc batch: missing per-file headers: ${ERR}")
endif()
if(NOT ERR MATCHES "Error: 00001")
  message(FATAL_ERROR "kcc batch: missing division-by-zero report: ${ERR}")
endif()
if(NOT ERR MATCHES "batch_ub.c: UNDEFINED" OR NOT ERR MATCHES "batch_ok.c: clean")
  message(FATAL_ERROR "kcc batch: missing per-program verdict lines: ${ERR}")
endif()

# All clean: exit 0.
execute_process(
  COMMAND ${KCC} ${OK_C} ${OK_C} --batch-stats
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "kcc batch (ok, ok): expected exit 0, got ${RC}: ${ERR}")
endif()

# Compile failure without UB: exit 1, diagnostics on stderr.
execute_process(
  COMMAND ${KCC} ${BAD_C} ${OK_C}
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 1)
  message(FATAL_ERROR "kcc batch (bad, ok): expected exit 1, got ${RC}")
endif()
if(ERR STREQUAL "")
  message(FATAL_ERROR "kcc batch (bad, ok): no compile diagnostic on stderr")
endif()

# Batch witnesses match the single-file ones byte for byte.
execute_process(
  COMMAND ${KCC} ${UB_C} --show-witness --search=64
  RESULT_VARIABLE RC1 OUTPUT_VARIABLE OUT1 ERROR_VARIABLE ERR1)
execute_process(
  COMMAND ${KCC} ${UB_C} --show-witness --search=64 --batch-stats
  RESULT_VARIABLE RC2 OUTPUT_VARIABLE OUT2 ERROR_VARIABLE ERR2)
if(NOT RC1 EQUAL 139 OR NOT RC2 EQUAL 139)
  message(FATAL_ERROR "kcc witness runs: expected exit 139, got ${RC1}/${RC2}")
endif()
string(REGEX MATCH "Witness decisions:[^\n]*" W1 "${ERR1}")
string(REGEX MATCH "Witness decisions:[^\n]*" W2 "${ERR2}")
if(NOT W1 STREQUAL W2 OR W1 STREQUAL "")
  message(FATAL_ERROR "kcc batch witness differs from single-file: '${W1}' vs '${W2}'")
endif()

message(STATUS "kcc batched CLI behaves as documented")
