# Regenerates the UB catalog markdown with kcc and fails when the
# checked-in docs/UB_CATALOG.md differs byte-for-byte. Run via ctest
# (test name: catalog_docs_fresh).
if(NOT DEFINED KCC OR NOT DEFINED DOC)
  message(FATAL_ERROR "usage: cmake -DKCC=<kcc> -DDOC=<UB_CATALOG.md> -P CheckCatalogDocs.cmake")
endif()

execute_process(
  COMMAND ${KCC} --dump-catalog=markdown
  OUTPUT_VARIABLE GENERATED
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "kcc --dump-catalog=markdown failed (exit ${RC})")
endif()

if(NOT EXISTS ${DOC})
  message(FATAL_ERROR "${DOC} is missing; regenerate it with: kcc --dump-catalog=markdown > docs/UB_CATALOG.md")
endif()
file(READ ${DOC} CHECKED_IN)

if(NOT GENERATED STREQUAL CHECKED_IN)
  message(FATAL_ERROR "docs/UB_CATALOG.md is stale; regenerate it with: kcc --dump-catalog=markdown > docs/UB_CATALOG.md")
endif()
message(STATUS "docs/UB_CATALOG.md is up to date")
