# Drives the kcc CLI's strict flag parsing: non-numeric values for
# numeric flags must be diagnosed on stderr and exit with code 2 (they
# used to be silently atoi'd to 0 and clamped to 1), while the
# documented special values keep working (--search-jobs=0 auto-detects
# hardware concurrency). When KCC_SERVE is given, the daemon's flag
# surface is validated the same way (no daemon is ever started: every
# rejection happens before listen()). Run via ctest (test name:
# kcc_cli_errors).
if(NOT DEFINED KCC OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DKCC=<kcc> [-DKCC_SERVE=<kcc-serve>] -DWORKDIR=<dir> -P CheckCliErrors.cmake")
endif()

file(MAKE_DIRECTORY ${WORKDIR})
set(OK_C ${WORKDIR}/cli_ok.c)
file(WRITE ${OK_C} "int main(void) { return 0; }\n")

# Each entry: flag that must be rejected with exit 2 + a diagnostic.
set(BAD_FLAGS
  --search=abc
  --search=12x
  --search=
  --search=0
  --search-jobs=abc
  --search-jobs=1O
  --search-jobs=-4
  --search-jobs=
  --seed=banana
  --search-engine=warp
  --translation-cache=maybe
  --translation-cache=
  --result-cache=maybe
  --result-cache=
  --catalog-coverage=bogus
  --catalog-coverage=12x
  --catalog-coverage=0
  --catalog-coverage=
  --static-analyze=garbage
  --static-analyze=ON
  --static-analyze=
  # --remote endpoint syntax: every malformed target is rejected before
  # any connection attempt (HOST:PORT needs a nonempty host and a port
  # in 1..65535; unix: needs a nonempty path).
  --remote=
  --remote=unix:
  --remote=nocolon
  --remote=:7777
  --remote=host:
  --remote=host:0
  --remote=host:abc
  --remote=host:70000
  --remote=host:1O)

foreach(FLAG ${BAD_FLAGS})
  execute_process(
    COMMAND ${KCC} ${FLAG} ${OK_C}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 2)
    message(FATAL_ERROR "kcc ${FLAG}: expected exit 2, got ${RC}")
  endif()
  if(ERR STREQUAL "")
    message(FATAL_ERROR "kcc ${FLAG}: exit 2 but no diagnostic on stderr")
  endif()
endforeach()

# Valid numeric values (including the 0 = auto-detect jobs default)
# must still run the program through to its own exit code.
set(GOOD_ARGS
  "--search=8;--search-jobs=0"
  "--search=8;--search-jobs=4;--search-engine=replay"
  "--search=8;--search-engine=fork"
  "--search=8;--translation-cache=off"
  "--search=8;--translation-cache=on"
  "--search=8;--result-cache=off"
  "--search=8;--result-cache=on"
  "--seed=42;--order=random"
  "--static-analyze=on"
  "--static-analyze=off"
  "--static-analyze=only")

foreach(ARGS ${GOOD_ARGS})
  execute_process(
    COMMAND ${KCC} ${ARGS} ${OK_C}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "kcc ${ARGS}: expected exit 0, got ${RC}: ${ERR}")
  endif()
endforeach()

# --catalog-coverage is a mode, not a per-file option: combining it
# with input files is a usage error, and the bare flag (plus its
# quick/full/N forms) must run the harness to exit 0.
execute_process(
  COMMAND ${KCC} --catalog-coverage=quick ${OK_C}
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(NOT RC EQUAL 2)
  message(FATAL_ERROR "kcc --catalog-coverage=quick with an input file: expected exit 2, got ${RC}")
endif()
if(NOT ERR MATCHES "no input files")
  message(FATAL_ERROR "kcc --catalog-coverage with a file: missing diagnostic, got: ${ERR}")
endif()

# The coverage harness grades the combined static+dynamic verdict, so
# restricting it to the static layer alone is rejected up front.
execute_process(
  COMMAND ${KCC} --catalog-coverage=quick --static-analyze=only
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(NOT RC EQUAL 2)
  message(FATAL_ERROR "kcc --catalog-coverage=quick --static-analyze=only: expected exit 2, got ${RC}")
endif()
if(NOT ERR MATCHES "incompatible")
  message(FATAL_ERROR "kcc --catalog-coverage=quick --static-analyze=only: missing diagnostic, got: ${ERR}")
endif()

execute_process(
  COMMAND ${KCC} --catalog-coverage=quick
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "kcc --catalog-coverage=quick: expected exit 0, got ${RC}: ${ERR}")
endif()
if(NOT OUT MATCHES "coverage: covered=")
  message(FATAL_ERROR "kcc --catalog-coverage=quick: missing summary line")
endif()

# --remote ships sources to a daemon that owns the engine, so modes
# that need the local engine (or reconfigure it) cannot combine with
# it: the coverage harness drives the engine directly, static-only
# never runs the engine at all, and the translation cache lives in the
# daemon's process.
set(REMOTE_CONFLICTS
  "--catalog-coverage=quick"
  "--static-analyze=only|${OK_C}"
  "--translation-cache=off|${OK_C}")

foreach(CONFLICT ${REMOTE_CONFLICTS})
  string(REPLACE "|" ";" ARGS "${CONFLICT}")
  execute_process(
    COMMAND ${KCC} --remote=localhost:9 ${ARGS}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 2)
    message(FATAL_ERROR "kcc --remote ${CONFLICT}: expected exit 2, got ${RC}")
  endif()
  if(NOT ERR MATCHES "incompatible")
    message(FATAL_ERROR "kcc --remote ${CONFLICT}: missing incompatibility diagnostic, got: ${ERR}")
  endif()
endforeach()

# --result-cache is per-request (it rides the wire to the daemon), so
# it must NOT join the incompatibility list: with an unreachable
# endpoint the combination gets as far as the connection attempt and
# fails with the transport exit code 3, never the usage exit 2.
foreach(RC_VALUE off on)
  execute_process(
    COMMAND ${KCC} --remote=localhost:9 --result-cache=${RC_VALUE} ${OK_C}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 3)
    message(FATAL_ERROR "kcc --remote --result-cache=${RC_VALUE}: expected transport exit 3, got ${RC}: ${ERR}")
  endif()
endforeach()

# The daemon's flag surface follows the same strict-parse contract.
# None of these ever reach listen(): rejection happens while reading
# argv, so no socket or port is touched.
if(DEFINED KCC_SERVE)
  set(BAD_SERVE_FLAGS
    --port=abc
    --port=70000
    --port=-1
    --port=
    --socket=
    --host=
    --max-clients=0
    --max-clients=abc
    --max-inflight=0
    --max-inflight=abc
    --max-queue=0
    --max-queue=abc
    --workers=abc
    --translation-cache=maybe
    --result-cache=maybe
    --result-cache=
    --bogus-flag)

  foreach(FLAG ${BAD_SERVE_FLAGS})
    execute_process(
      COMMAND ${KCC_SERVE} ${FLAG}
      RESULT_VARIABLE RC
      OUTPUT_VARIABLE OUT
      ERROR_VARIABLE ERR)
    if(NOT RC EQUAL 2)
      message(FATAL_ERROR "kcc-serve ${FLAG}: expected exit 2, got ${RC}")
    endif()
    if(ERR STREQUAL "")
      message(FATAL_ERROR "kcc-serve ${FLAG}: exit 2 but no diagnostic on stderr")
    endif()
  endforeach()

  # No endpoint at all is a usage error, not a silent default.
  execute_process(
    COMMAND ${KCC_SERVE}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 2)
    message(FATAL_ERROR "kcc-serve with no endpoint: expected exit 2, got ${RC}")
  endif()
  if(NOT ERR MATCHES "endpoint")
    message(FATAL_ERROR "kcc-serve with no endpoint: missing diagnostic, got: ${ERR}")
  endif()
endif()

message(STATUS "kcc CLI flag validation behaves as documented")
