# Drives the kcc CLI's strict flag parsing: non-numeric values for
# numeric flags must be diagnosed on stderr and exit with code 2 (they
# used to be silently atoi'd to 0 and clamped to 1), while the
# documented special values keep working (--search-jobs=0 auto-detects
# hardware concurrency). Run via ctest (test name: kcc_cli_errors).
if(NOT DEFINED KCC OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DKCC=<kcc> -DWORKDIR=<dir> -P CheckCliErrors.cmake")
endif()

file(MAKE_DIRECTORY ${WORKDIR})
set(OK_C ${WORKDIR}/cli_ok.c)
file(WRITE ${OK_C} "int main(void) { return 0; }\n")

# Each entry: flag that must be rejected with exit 2 + a diagnostic.
set(BAD_FLAGS
  --search=abc
  --search=12x
  --search=
  --search=0
  --search-jobs=abc
  --search-jobs=1O
  --search-jobs=-4
  --search-jobs=
  --seed=banana
  --search-engine=warp
  --translation-cache=maybe
  --translation-cache=
  --catalog-coverage=bogus
  --catalog-coverage=12x
  --catalog-coverage=0
  --catalog-coverage=
  --static-analyze=garbage
  --static-analyze=ON
  --static-analyze=)

foreach(FLAG ${BAD_FLAGS})
  execute_process(
    COMMAND ${KCC} ${FLAG} ${OK_C}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 2)
    message(FATAL_ERROR "kcc ${FLAG}: expected exit 2, got ${RC}")
  endif()
  if(ERR STREQUAL "")
    message(FATAL_ERROR "kcc ${FLAG}: exit 2 but no diagnostic on stderr")
  endif()
endforeach()

# Valid numeric values (including the 0 = auto-detect jobs default)
# must still run the program through to its own exit code.
set(GOOD_ARGS
  "--search=8;--search-jobs=0"
  "--search=8;--search-jobs=4;--search-engine=replay"
  "--search=8;--search-engine=fork"
  "--search=8;--translation-cache=off"
  "--search=8;--translation-cache=on"
  "--seed=42;--order=random"
  "--static-analyze=on"
  "--static-analyze=off"
  "--static-analyze=only")

foreach(ARGS ${GOOD_ARGS})
  execute_process(
    COMMAND ${KCC} ${ARGS} ${OK_C}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "kcc ${ARGS}: expected exit 0, got ${RC}: ${ERR}")
  endif()
endforeach()

# --catalog-coverage is a mode, not a per-file option: combining it
# with input files is a usage error, and the bare flag (plus its
# quick/full/N forms) must run the harness to exit 0.
execute_process(
  COMMAND ${KCC} --catalog-coverage=quick ${OK_C}
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(NOT RC EQUAL 2)
  message(FATAL_ERROR "kcc --catalog-coverage=quick with an input file: expected exit 2, got ${RC}")
endif()
if(NOT ERR MATCHES "no input files")
  message(FATAL_ERROR "kcc --catalog-coverage with a file: missing diagnostic, got: ${ERR}")
endif()

# The coverage harness grades the combined static+dynamic verdict, so
# restricting it to the static layer alone is rejected up front.
execute_process(
  COMMAND ${KCC} --catalog-coverage=quick --static-analyze=only
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(NOT RC EQUAL 2)
  message(FATAL_ERROR "kcc --catalog-coverage=quick --static-analyze=only: expected exit 2, got ${RC}")
endif()
if(NOT ERR MATCHES "incompatible")
  message(FATAL_ERROR "kcc --catalog-coverage=quick --static-analyze=only: missing diagnostic, got: ${ERR}")
endif()

execute_process(
  COMMAND ${KCC} --catalog-coverage=quick
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "kcc --catalog-coverage=quick: expected exit 0, got ${RC}: ${ERR}")
endif()
if(NOT OUT MATCHES "coverage: covered=")
  message(FATAL_ERROR "kcc --catalog-coverage=quick: missing summary line")
endif()

message(STATUS "kcc CLI flag validation behaves as documented")
