#!/usr/bin/env bash
# Drives the remote-mode contract end to end: a live kcc-serve daemon
# on a Unix socket must make `kcc --remote=unix:PATH ...` byte-identical
# to a local run on stdout and identical on exit codes — single-file UB
# (exit 139), single-file clean (the program's own exit code),
# multi-file --batch-stats, and --json with volatile timing/counter
# fields masked. Finally SIGTERM must drain the daemon to exit 0.
#
# Run via ctest (test name: kcc_remote_cli):
#   check_serve_cli.sh <kcc> <kcc-serve> <workdir>
set -u

KCC="$1"
KCC_SERVE="$2"
WORKDIR="$3"
mkdir -p "$WORKDIR"

# Socket paths are capped at ~107 bytes, so the socket lives under /tmp
# rather than the (arbitrarily deep) build tree.
SOCK="/tmp/cundef-remote-cli-$$.sock"
LOG="$WORKDIR/serve.log"
rm -f "$SOCK"

fail() { echo "kcc_remote_cli: $*" >&2; exit 1; }

"$KCC_SERVE" --socket="$SOCK" 2>"$LOG" &
DAEMON=$!
cleanup() { kill "$DAEMON" 2>/dev/null; wait "$DAEMON" 2>/dev/null; rm -f "$SOCK"; }
trap cleanup EXIT

# The daemon prints its ready line only once it is accepting.
for _ in $(seq 1 200); do
  grep -q "kcc-serve: ready" "$LOG" 2>/dev/null && break
  kill -0 "$DAEMON" 2>/dev/null || { cat "$LOG" >&2; fail "daemon died before becoming ready"; }
  sleep 0.05
done
grep -q "kcc-serve: ready" "$LOG" || fail "daemon never became ready"

cat > "$WORKDIR/ub.c" <<'EOF'
int main(void) {
  int i = 0;
  int j = i++ + i++;
  return j;
}
EOF
cat > "$WORKDIR/clean.c" <<'EOF'
#include <stdio.h>
int main(void) {
  printf("hello from clean\n");
  return 7;
}
EOF
cat > "$WORKDIR/clean2.c" <<'EOF'
int main(void) { return 0; }
EOF

# Runs the same kcc invocation locally and through the daemon; stdout
# must match byte for byte and the exit codes must agree (the
# 139/1/exit-code contract is part of the CLI surface).
run_pair() {
  local LABEL="$1"; shift
  local LRC=0 RRC=0
  "$KCC" "$@" >"$WORKDIR/local.out" 2>"$WORKDIR/local.err" || LRC=$?
  "$KCC" --remote=unix:"$SOCK" "$@" >"$WORKDIR/remote.out" 2>"$WORKDIR/remote.err" || RRC=$?
  [ "$LRC" = "$RRC" ] || fail "$LABEL: exit codes differ (local $LRC, remote $RRC)"
  cmp -s "$WORKDIR/local.out" "$WORKDIR/remote.out" || {
    diff "$WORKDIR/local.out" "$WORKDIR/remote.out" >&2 || true
    fail "$LABEL: stdout differs between local and remote"
  }
}

run_pair "single-file UB"    --search=16 "$WORKDIR/ub.c"
run_pair "single-file clean" --search=8 "$WORKDIR/clean.c"
run_pair "multi-file batch"  --search=8 --batch-stats \
  "$WORKDIR/clean.c" "$WORKDIR/clean2.c" "$WORKDIR/ub.c"

# --json embeds wall-clock timings and scheduler counters that are
# legitimately nondeterministic (and, remotely, engine-lifetime
# monotonic); mask exactly those fields, then demand byte equality on
# everything else — findings, outcomes, program output, exit codes.
MASK='s/"(wall_ms|wall_micros|frontend_micros|search_micros|steals|peak_frontier|runs_executed|speculative_waste|provisional_hits|provisional_requeues|commit_lag_peak|snapshot_takes|snapshot_hits|snapshot_slot_steals|snapshot_shards|snapshot_evictions|snapshot_shared_hits|workers|lookups|hits|misses|inflight_joins|evictions|abandoned|cache_hit|result_cache_hit|runs_committed)": [^,}]+/"\1": X/g'
LRC=0; RRC=0
"$KCC" --json --search=16 "$WORKDIR/ub.c" "$WORKDIR/clean.c" \
  >"$WORKDIR/local.json" 2>/dev/null || LRC=$?
"$KCC" --json --search=16 --remote=unix:"$SOCK" "$WORKDIR/ub.c" "$WORKDIR/clean.c" \
  >"$WORKDIR/remote.json" 2>/dev/null || RRC=$?
[ "$LRC" = "$RRC" ] || fail "--json: exit codes differ (local $LRC, remote $RRC)"
sed -E "$MASK" "$WORKDIR/local.json" >"$WORKDIR/local.masked"
sed -E "$MASK" "$WORKDIR/remote.json" >"$WORKDIR/remote.masked"
cmp -s "$WORKDIR/local.masked" "$WORKDIR/remote.masked" || {
  diff "$WORKDIR/local.masked" "$WORKDIR/remote.masked" >&2 || true
  fail "--json: masked output differs between local and remote"
}

# A connection refused after shutdown proves the drain actually closed
# the listeners; exit 0 proves in-flight work finished and flushed.
kill -TERM "$DAEMON"
DRC=0
wait "$DAEMON" || DRC=$?
trap - EXIT
rm -f "$SOCK"
[ "$DRC" = 0 ] || fail "daemon exited $DRC after SIGTERM (expected a clean drain to 0)"

echo "kcc --remote matches local byte-for-byte; daemon drained cleanly"
