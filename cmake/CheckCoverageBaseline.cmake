# Gates the catalog coverage harness against the committed baseline:
# `kcc --catalog-coverage=quick` must grade all 221 catalog rows and
# cover at least the floor recorded in tests/suites/coverage_baseline.txt
# (first line). Detector work may raise the floor, never lower it —
# when the covered count genuinely improves, bump the baseline in the
# same change. Run via ctest (test name: catalog_coverage, label:
# suites).
if(NOT DEFINED KCC OR NOT DEFINED BASELINE)
  message(FATAL_ERROR "usage: cmake -DKCC=<kcc> -DBASELINE=<coverage_baseline.txt> -P CheckCoverageBaseline.cmake")
endif()

if(NOT EXISTS ${BASELINE})
  message(FATAL_ERROR "baseline file not found: ${BASELINE}")
endif()
file(STRINGS ${BASELINE} BASELINE_LINES LIMIT_COUNT 1)
list(GET BASELINE_LINES 0 FLOOR)
if(NOT FLOOR MATCHES "^[0-9]+$")
  message(FATAL_ERROR "first line of ${BASELINE} must be the covered-count floor, got '${FLOOR}'")
endif()

execute_process(
  COMMAND ${KCC} --catalog-coverage=quick
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "kcc --catalog-coverage=quick: expected exit 0, got ${RC}: ${ERR}")
endif()

# The harness's stable final line (renderCoverageReport):
#   coverage: covered=N wrong-code=N missed=N inexpressible=N total=N
#   static=A dynamic=B both=C
if(NOT OUT MATCHES "coverage: covered=([0-9]+) wrong-code=([0-9]+) missed=([0-9]+) inexpressible=([0-9]+) total=([0-9]+) static=([0-9]+) dynamic=([0-9]+) both=([0-9]+)")
  message(FATAL_ERROR "missing/garbled coverage summary line in:\n${OUT}")
endif()
set(COVERED ${CMAKE_MATCH_1})
set(WRONG ${CMAKE_MATCH_2})
set(MISSED ${CMAKE_MATCH_3})
set(INEXPR ${CMAKE_MATCH_4})
set(TOTAL ${CMAKE_MATCH_5})
set(COV_STATIC ${CMAKE_MATCH_6})
set(COV_DYNAMIC ${CMAKE_MATCH_7})
set(COV_BOTH ${CMAKE_MATCH_8})

if(NOT TOTAL EQUAL 221)
  message(FATAL_ERROR "coverage total ${TOTAL} != 221: the harness no longer grades the whole catalog")
endif()
math(EXPR SUM "${COVERED} + ${WRONG} + ${MISSED} + ${INEXPR}")
if(NOT SUM EQUAL TOTAL)
  message(FATAL_ERROR "coverage counts ${COVERED}+${WRONG}+${MISSED}+${INEXPR} do not partition total ${TOTAL}")
endif()
math(EXPR ATTR_SUM "${COV_STATIC} + ${COV_DYNAMIC} + ${COV_BOTH}")
if(NOT ATTR_SUM EQUAL COVERED)
  message(FATAL_ERROR "attribution counts static=${COV_STATIC}+dynamic=${COV_DYNAMIC}+both=${COV_BOTH} do not partition covered ${COVERED}")
endif()
if(COVERED LESS FLOOR)
  message(FATAL_ERROR "covered count regressed: ${COVERED} < baseline floor ${FLOOR} (${BASELINE})")
endif()
if(NOT WRONG EQUAL 0)
  message(FATAL_ERROR "wrong-code rows regressed: ${WRONG} != 0 (every covered row must answer to its own catalog code)")
endif()

message(STATUS "catalog coverage: ${COVERED} covered (floor ${FLOOR}; static ${COV_STATIC}, dynamic ${COV_DYNAMIC}, both ${COV_BOTH}), ${WRONG} wrong-code, ${MISSED} missed, ${INEXPR} inexpressible")
