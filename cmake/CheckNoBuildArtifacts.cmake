# Guards the repository against re-committing generated build trees:
# PR 3 accidentally tracked 548 CMake artifacts under build-review/.
# Fails when `git ls-files` reports anything under a build*/ directory
# (or stray object files / CMake caches anywhere). Run via ctest (test
# name: repo_no_build_artifacts). Skips cleanly when the source tree is
# not a git checkout (e.g. a tarball build).
if(NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "usage: cmake -DSOURCE_DIR=<repo> -P CheckNoBuildArtifacts.cmake")
endif()

find_package(Git QUIET)
if(NOT Git_FOUND)
  message(STATUS "git not found; skipping build-artifact tracking check")
  return()
endif()

execute_process(
  COMMAND ${GIT_EXECUTABLE} -C ${SOURCE_DIR} ls-files
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE TRACKED
  ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(STATUS "not a git checkout; skipping build-artifact tracking check")
  return()
endif()

string(REPLACE "\n" ";" TRACKED_LIST "${TRACKED}")
set(OFFENDERS "")
foreach(FILE ${TRACKED_LIST})
  if(FILE MATCHES "^build[^/]*/" OR FILE MATCHES "\\.(o|a)$"
     OR FILE MATCHES "(^|/)CMakeCache\\.txt$" OR FILE MATCHES "(^|/)CMakeFiles/")
    list(APPEND OFFENDERS ${FILE})
  endif()
endforeach()

list(LENGTH OFFENDERS N)
if(N GREATER 0)
  list(SUBLIST OFFENDERS 0 10 HEAD)
  string(JOIN "\n  " HEAD_STR ${HEAD})
  message(FATAL_ERROR "${N} build artifact(s) are tracked by git "
    "(extend .gitignore / git rm --cached them):\n  ${HEAD_STR}")
endif()

message(STATUS "no build artifacts tracked by git")
