# Drives kcc's machine-readable mode: --json must emit one
# cundef-kcc-v1 document on stdout (docs/JSON_OUTPUT.md documents the
# schema) with nothing else around it, embed program output instead of
# passing it through, suppress the human report on stderr, and keep the
# exit-code contract (139 undefined / 1 compile failure / program exit
# code otherwise). Run via ctest (test name: kcc_json_cli).
if(NOT DEFINED KCC OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DKCC=<kcc> -DWORKDIR=<dir> -P CheckJsonCli.cmake")
endif()

file(MAKE_DIRECTORY ${WORKDIR})
set(UB_C ${WORKDIR}/json_ub.c)
file(WRITE ${UB_C} "int d = 5;\nint setDenom(int x) { return d = x; }\nint main(void) { return (10 / d) + setDenom(0); }\n")
set(OK_C ${WORKDIR}/json_ok.c)
file(WRITE ${OK_C} "#include <stdio.h>\nint main(void) { printf(\"hi-json\\n\"); return 5; }\n")
set(BAD_C ${WORKDIR}/json_bad.c)
file(WRITE ${BAD_C} "int main(void) { return 0 }\n")

# Undefined program: exit 139, verdict, findings with the catalog code,
# the witness array, and the scheduler counters.
execute_process(
  COMMAND ${KCC} --json --search=64 ${UB_C}
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 139)
  message(FATAL_ERROR "kcc --json (ub): expected exit 139, got ${RC}")
endif()
if(NOT OUT MATCHES "\"schema\": \"cundef-kcc-v1\"")
  message(FATAL_ERROR "kcc --json: missing schema marker: ${OUT}")
endif()
if(NOT OUT MATCHES "\"exit_code\": 139")
  message(FATAL_ERROR "kcc --json: exit_code field disagrees with contract: ${OUT}")
endif()
if(NOT OUT MATCHES "\"verdict\": \"undefined\"")
  message(FATAL_ERROR "kcc --json: missing undefined verdict: ${OUT}")
endif()
if(NOT OUT MATCHES "\"code\": \"00001\"")
  message(FATAL_ERROR "kcc --json: missing division-by-zero finding: ${OUT}")
endif()
if(NOT OUT MATCHES "\"witness\": \\[1\\]")
  message(FATAL_ERROR "kcc --json: missing witness bytes: ${OUT}")
endif()
if(NOT OUT MATCHES "\"orders_explored\":" OR NOT OUT MATCHES "\"wall_micros\":")
  message(FATAL_ERROR "kcc --json: missing search/timing fields: ${OUT}")
endif()
# The cundef-kcc-v1 compile block (backward-compatible addition): the
# per-job cache flag and the frontend/search cost split, plus the
# engine-wide translation_cache object.
if(NOT OUT MATCHES "\"compile\": \\{" OR NOT OUT MATCHES "\"cache_hit\":"
   OR NOT OUT MATCHES "\"frontend_micros\":"
   OR NOT OUT MATCHES "\"search_micros\":")
  message(FATAL_ERROR "kcc --json: missing compile block fields: ${OUT}")
endif()
if(NOT OUT MATCHES "\"translation_cache\": \\{" OR NOT OUT MATCHES "\"inflight_joins\":")
  message(FATAL_ERROR "kcc --json: missing translation_cache block: ${OUT}")
endif()
# The result-cache additions (same backward-compatible lineage): the
# per-job hit flag in the compile block and the engine-wide
# result_cache counters object.
if(NOT OUT MATCHES "\"result_cache_hit\":" OR NOT OUT MATCHES "\"result_cache\": \\{"
   OR NOT OUT MATCHES "\"abandoned\":")
  message(FATAL_ERROR "kcc --json: missing result_cache fields: ${OUT}")
endif()
if(NOT OUT MATCHES "\"snapshot_shared_hits\":")
  message(FATAL_ERROR "kcc --json: missing snapshot_shared_hits pool counter: ${OUT}")
endif()
if(ERR MATCHES "ERROR! KCC")
  message(FATAL_ERROR "kcc --json: human report leaked to stderr: ${ERR}")
endif()
# The document must be the entire stdout (machine-readable boundary).
if(NOT OUT MATCHES "^\\{" OR NOT OUT MATCHES "\\}\n$")
  message(FATAL_ERROR "kcc --json: stdout is not exactly one JSON document")
endif()

# Clean program: its exit code passes through the contract; output is
# embedded, not printed.
execute_process(
  COMMAND ${KCC} --json ${OK_C}
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 5)
  message(FATAL_ERROR "kcc --json (ok): expected exit 5, got ${RC}")
endif()
if(NOT OUT MATCHES "\"verdict\": \"clean\"")
  message(FATAL_ERROR "kcc --json (ok): missing clean verdict: ${OUT}")
endif()
if(NOT OUT MATCHES "\"output\": \"hi-json\\\\n\"")
  message(FATAL_ERROR "kcc --json (ok): program output not embedded: ${OUT}")
endif()
if(OUT MATCHES "^hi-json")
  message(FATAL_ERROR "kcc --json (ok): program output leaked around the document")
endif()

# Compile failure: exit 1, verdict compile-error, diagnostics embedded.
execute_process(
  COMMAND ${KCC} --json ${BAD_C} ${OK_C}
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 1)
  message(FATAL_ERROR "kcc --json (bad, ok): expected exit 1, got ${RC}")
endif()
if(NOT OUT MATCHES "\"verdict\": \"compile-error\"")
  message(FATAL_ERROR "kcc --json (bad): missing compile-error verdict: ${OUT}")
endif()
if(NOT OUT MATCHES "\"compile_errors\": \"[^\"]")
  message(FATAL_ERROR "kcc --json (bad): compile diagnostics not embedded: ${OUT}")
endif()

# Batch: one document, both programs, pool counters.
execute_process(
  COMMAND ${KCC} --json --search=64 --search-jobs=2 ${UB_C} ${OK_C}
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 139)
  message(FATAL_ERROR "kcc --json (batch): expected exit 139, got ${RC}")
endif()
if(NOT OUT MATCHES "json_ub.c" OR NOT OUT MATCHES "json_ok.c")
  message(FATAL_ERROR "kcc --json (batch): missing per-program entries: ${OUT}")
endif()
if(NOT OUT MATCHES "\"pool\": \\{" OR NOT OUT MATCHES "\"programs\": 2")
  message(FATAL_ERROR "kcc --json (batch): missing pool stats: ${OUT}")
endif()

# Coverage mode: --json --catalog-coverage emits the coverage document
# of the same schema (backward-compatible: a new top-level block, the
# schema marker and exit_code keys unchanged), the four verdict counts
# must partition all 221 catalog rows, and per-entry verdicts are
# present.
execute_process(
  COMMAND ${KCC} --json --catalog-coverage=quick
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "kcc --json --catalog-coverage: expected exit 0, got ${RC}: ${ERR}")
endif()
if(NOT OUT MATCHES "\"schema\": \"cundef-kcc-v1\"")
  message(FATAL_ERROR "kcc --json --catalog-coverage: missing schema marker: ${OUT}")
endif()
if(NOT OUT MATCHES "\"coverage\": \\{" OR NOT OUT MATCHES "\"mode\": \"quick\"")
  message(FATAL_ERROR "kcc --json --catalog-coverage: missing coverage block: ${OUT}")
endif()
if(NOT OUT MATCHES "\"total\": 221")
  message(FATAL_ERROR "kcc --json --catalog-coverage: total is not 221: ${OUT}")
endif()
if(NOT OUT MATCHES "\"covered\": ([0-9]+)")
  message(FATAL_ERROR "kcc --json --catalog-coverage: missing covered count")
endif()
set(COV_COVERED ${CMAKE_MATCH_1})
if(NOT OUT MATCHES "\"wrong_code\": ([0-9]+)")
  message(FATAL_ERROR "kcc --json --catalog-coverage: missing wrong_code count")
endif()
set(COV_WRONG ${CMAKE_MATCH_1})
if(NOT OUT MATCHES "\"missed\": ([0-9]+)")
  message(FATAL_ERROR "kcc --json --catalog-coverage: missing missed count")
endif()
set(COV_MISSED ${CMAKE_MATCH_1})
if(NOT OUT MATCHES "\"inexpressible\": ([0-9]+)")
  message(FATAL_ERROR "kcc --json --catalog-coverage: missing inexpressible count")
endif()
set(COV_INEXPR ${CMAKE_MATCH_1})
math(EXPR COV_SUM "${COV_COVERED} + ${COV_WRONG} + ${COV_MISSED} + ${COV_INEXPR}")
if(NOT COV_SUM EQUAL 221)
  message(FATAL_ERROR "kcc --json --catalog-coverage: counts ${COV_COVERED}+${COV_WRONG}+${COV_MISSED}+${COV_INEXPR}=${COV_SUM} != 221")
endif()
if(NOT OUT MATCHES "\"entries\": \\[" OR NOT OUT MATCHES "\"verdict\": \"covered\"")
  message(FATAL_ERROR "kcc --json --catalog-coverage: missing per-entry verdicts: ${OUT}")
endif()
if(NOT OUT MATCHES "\"exit_code\": 0")
  message(FATAL_ERROR "kcc --json --catalog-coverage: missing exit_code: ${OUT}")
endif()
if(NOT OUT MATCHES "^\\{" OR NOT OUT MATCHES "\\}\n$")
  message(FATAL_ERROR "kcc --json --catalog-coverage: stdout is not exactly one JSON document")
endif()

message(STATUS "kcc --json behaves as documented")
