//===- examples/quickstart.cpp - First contact with the checker -----------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Runs two small programs through the kcc-style driver: a defined one
// (which simply executes) and the paper's section 3.2 unsequenced
// example (which is reported in kcc's error format, code 00016).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <cstdio>

using namespace cundef;

int main() {
  Driver Drv;

  const char *Hello = R"(#include <stdio.h>
int main(void) {
  printf("Hello world\n");
  return 0;
}
)";
  std::printf("== running a defined program ==\n");
  DriverOutcome Ok = Drv.runSource(Hello, "helloworld.c");
  std::printf("%s", Ok.Output.c_str());
  std::printf("exit code: %d, undefined: %s\n\n", Ok.ExitCode,
              Ok.anyUb() ? "yes" : "no");

  const char *Unsequenced = R"(int main(void) {
  int x = 0;
  return (x = 1) + (x = 2);
}
)";
  std::printf("== running the paper's unsequenced example ==\n");
  DriverOutcome Bad = Drv.runSource(Unsequenced, "unseq.c");
  std::printf("%s\n", Bad.renderReport().c_str());
  return Ok.anyUb() || !Bad.anyUb();
}
