//===- examples/compare_tools.cpp - Four tools, one program -----------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Runs all four analysis tools (kcc and the three modelled baselines)
// over a handful of undefined programs and prints their verdicts side
// by side -- a miniature of the paper's evaluation section.
//
//===----------------------------------------------------------------------===//

#include "driver/ToolRunner.h"

#include <cstdio>

using namespace cundef;

namespace {

struct Example {
  const char *Title;
  const char *Source;
};

const Example Examples[] = {
    {"stack buffer overflow (silent on real hardware)",
     "int main(void) {\n"
     "  int a[4]; int i;\n"
     "  for (i = 0; i < 4; i++) { a[i] = i; }\n"
     "  return a[5];\n}\n"},
    {"signed integer overflow",
     "int main(void) { int x = 2147483647; return (x + 1) != 0; }\n"},
    {"use after free",
     "#include <stdlib.h>\n"
     "int main(void) {\n"
     "  int *p = (int*)malloc(sizeof(int));\n"
     "  if (!p) { return 1; }\n"
     "  *p = 7;\n  free(p);\n  return *p;\n}\n"},
    {"unsequenced side effects (paper section 2.3)",
     "int main(void) { int x = 0; return (x = 1) + (x = 2); }\n"},
    {"defined control program",
     "#include <stdio.h>\n"
     "int main(void) { printf(\"fine\\n\"); return 0; }\n"},
};

} // namespace

int main() {
  for (const Example &E : Examples) {
    std::printf("=== %s ===\n%s\n", E.Title, E.Source);
    std::vector<ComparisonRow> Rows = compareTools(E.Source, "example.c");
    std::printf("%s\n", renderComparison(Rows).c_str());
  }
  return 0;
}
