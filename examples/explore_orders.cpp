//===- examples/explore_orders.cpp - Evaluation-order exploration -----------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The paper's section 2.5.2 example: GCC compiles (10/d) + setDenom(0)
// to code with no runtime error, while CompCert's generated code
// divides by zero -- both correct, because *some* conforming evaluation
// order is undefined. This example evaluates the program under
// left-to-right, right-to-left, and searched orders and shows where the
// undefinedness hides.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "driver/Driver.h"

#include <cstdio>

using namespace cundef;

static const char *Program =
    "int d = 5;\n"
    "int setDenom(int x) { return d = x; }\n"
    "int main(void) { return (10 / d) + setDenom(0); }\n";

static void runWithOrder(const char *Label, EvalOrderKind Order) {
  Driver Drv(AnalysisRequest::Builder().order(Order).buildOrDie());
  DriverOutcome O = Drv.runSource(Program, "order.c");
  std::printf("%-16s : %s\n", Label,
              O.anyUb() ? O.DynamicUb.front().Description.c_str()
                        : "completed, no undefinedness");
}

int main() {
  std::printf("Program (paper section 2.5.2):\n%s\n", Program);

  runWithOrder("left-to-right", EvalOrderKind::LeftToRight);
  runWithOrder("right-to-left", EvalOrderKind::RightToLeft);

  // Exhaustive search over order decisions.
  Driver Drv;
  Driver::Compiled C = Drv.compile(Program, "order.c");
  if (!C->ok()) {
    std::printf("compile failed\n");
    return 1;
  }
  MachineOptions MOpts;
  OrderSearch Search(C->ast(), MOpts, 64);
  SearchResult R = Search.run();
  std::printf("%-16s : %s after exploring %u order(s)\n", "search",
              R.UbFound ? "undefined behavior found" : "no UB found",
              R.RunsExplored);
  if (R.UbFound) {
    std::printf("\nWitness decisions:");
    for (uint8_t D : R.Witness)
      std::printf(" %u", D);
    std::printf("  (1 = reversed operand order at that choice point)\n");
    std::printf("\nReport for the undefined order:\n%s",
                renderKccErrors(R.Reports).c_str());
  }
  return R.UbFound ? 0 : 1;
}
