//===- examples/miscompile_gallery.cpp - The paper's section 2 gallery ------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Every anecdote from the paper's section 2 ("compilers do many
// unexpected things when processing undefined programs"), run through
// kcc. Where GCC deletes branches or hoists faulting divisions, kcc
// names the undefinedness that licensed the transformation.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <cstdio>

using namespace cundef;

namespace {

struct GalleryItem {
  const char *Title;
  const char *Anecdote;
  const char *Source;
};

const GalleryItem Gallery[] = {
    {"2.3: dereferencing NULL is simply ignored",
     "GCC, Clang and ICC generate code that does not segfault: the "
     "dereference is deleted.",
     "int main(void) {\n"
     "  char *p = 0;\n"
     "  *p;\n"
     "  return 0;\n}\n"},
    {"2.3: overflow check optimized away",
     "GCC removes the entire branch: x + 1 < x is assumed false because "
     "overflow 'cannot happen'.",
     "int main(void) {\n"
     "  int x = 2147483647;\n"
     "  if (x + 1 < x) { return 1; }\n"
     "  return 0;\n}\n"},
    {"2.3: assignment returns 4, not 3",
     "GCC transforms (x=1)+(x=2) into x=1; x=2; x+x and returns 4.",
     "int main(void) {\n"
     "  int x = 0;\n"
     "  return (x = 1) + (x = 2);\n}\n"},
    {"2.4: division hoisted above the printf",
     "GCC and ICC move the loop-invariant 5/d before the loop: the fault "
     "happens before anything prints.",
     "#include <stdio.h>\n"
     "int main(void) {\n"
     "  int r = 0, d = 0, i;\n"
     "  for (i = 0; i < 5; i++) {\n"
     "    printf(\"%d\\n\", i);\n"
     "    r += 5 / d;\n"
     "  }\n"
     "  return r;\n}\n"},
    {"2.5.2: CompCert divides by zero where GCC does not",
     "Both are right: a conforming right-to-left order sets d to 0 "
     "before the division.",
     "int d = 5;\n"
     "int setDenom(int x) { return d = x; }\n"
     "int main(void) { return (10 / d) + setDenom(0); }\n"},
};

} // namespace

int main() {
  // The 2.5.2 item needs order search.
  AnalysisRequest Opts = AnalysisRequest::Builder().searchRuns(16).buildOrDie();
  for (const GalleryItem &Item : Gallery) {
    std::printf("=== %s ===\n", Item.Title);
    std::printf("what compilers do: %s\n\n", Item.Anecdote);
    std::printf("%s\n", Item.Source);
    Driver Drv(Opts);
    DriverOutcome O = Drv.runSource(Item.Source, "gallery.c");
    if (O.anyUb())
      std::printf("kcc verdict:\n%s\n", O.renderReport().c_str());
    else
      std::printf("kcc verdict: no undefinedness found (unexpected!)\n\n");
  }
  return 0;
}
