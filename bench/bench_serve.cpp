//===- bench/bench_serve.cpp - Analysis-service loopback bench ------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The service deployment shape (ISSUE 9): many short-lived kcc clients
// multiplexed onto one warm kcc-serve engine. This bench stands up an
// in-process ServeDaemon on a loopback Unix socket and drives it with
// 1, 4, and 16 concurrent clients, each submitting a stream of
// translation units one at a time and waiting for the verdict — the
// interactive editor-integration pattern, where submit-to-verdict
// latency is the product.
//
// Reported per client count: throughput (jobs/s) and the p50/p99
// latency of the full round trip (encode, socket, admission, engine
// queue, search, result streaming, decode), split by whether the
// daemon's result cache served the submit warm (the outcome's
// result_cache_hit flag rides the wire) — repeat traffic is the
// service's common case, and a hit skips the search entirely, so the
// two populations have very different latency shapes. Results land in
// BENCH_serve.json next to the other BENCH_*.json files.
//
// Correctness gate (bench_serve_quick ctest): every remote outcome
// must match the same input analyzed on a local engine — verdict,
// witness, program output, exit code — and the daemon must drain to
// exit 0 after the storm. Wall-clock is informational; divergence is
// the failure.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "serve/Client.h"
#include "serve/Server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace cundef;

namespace {

bool sameOutcome(const DriverOutcome &A, const DriverOutcome &B) {
  return A.CompileOk == B.CompileOk && A.anyUb() == B.anyUb() &&
         A.SearchWitness == B.SearchWitness && A.Output == B.Output &&
         A.ExitCode == B.ExitCode;
}

double percentileUs(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t Idx = static_cast<size_t>(P * (Sorted.size() - 1));
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  const char *JsonPath = "BENCH_serve.json";
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strncmp(argv[I], "--json=", 7))
      JsonPath = argv[I] + 7;
  }
  const unsigned SearchRuns = Quick ? 32 : 64;
  const unsigned JobsPerClient = Quick ? 6 : 24;
  const std::vector<unsigned> ClientCounts = {1, 4, 16};

  // The corpus mixes the shapes a service actually sees: a searchy
  // order-dependent UB unit, a quick script, a deep commuting tree,
  // and a trivially clean unit. Salted deep trees defeat cross-client
  // translation-cache hits on that entry so the engine does real work.
  std::vector<BatchInput> Corpus;
  Corpus.push_back({"int d = 5;\n"
                    "int setDenom(int x) { return d = x; }\n"
                    "int main(void) { return (10 / d) + setDenom(0); }\n",
                    "paper.c"});
  Corpus.push_back({"#include <stdio.h>\n"
                    "int main(void) { printf(\"served\\n\"); return 3; }\n",
                    "hello.c"});
  Corpus.push_back({cundef_bench::deepTreeProgram(5, 64, 11), "deep.c"});
  Corpus.push_back({"int main(void) { return 0; }\n", "clean.c"});

  AnalysisRequest Req =
      AnalysisRequest::Builder().searchRuns(SearchRuns).buildOrDie();

  // Local baseline: the same corpus on an in-process engine. Every
  // remote result is graded against these.
  std::vector<DriverOutcome> Baseline;
  {
    AnalysisEngine Eng(engineConfigFor(Req));
    std::vector<JobHandle> Handles = Eng.submitBatch(Req, Corpus);
    for (JobHandle &H : Handles)
      Baseline.push_back(H.take());
  }

  ServeConfig Cfg;
  Cfg.UnixPath =
      "/tmp/cundef-bench-serve-" + std::to_string(::getpid()) + ".sock";
  Cfg.MaxClients = 32;
  Cfg.MaxInflightPerClient = 32;
  ServeDaemon Daemon(std::move(Cfg));
  std::string Err;
  if (!Daemon.listen(Err)) {
    std::fprintf(stderr, "bench_serve: %s\n", Err.c_str());
    return 1;
  }
  const std::string Sock =
      "/tmp/cundef-bench-serve-" + std::to_string(::getpid()) + ".sock";
  int DaemonExit = -1;
  std::thread Loop([&] { DaemonExit = Daemon.run(); });

  std::printf("Analysis service on unix:%s, %u workers, budget %u%s\n\n",
              Sock.c_str(), Daemon.engine().workers(), SearchRuns,
              Quick ? " [quick]" : "");
  std::printf("%-8s %8s %12s %12s %14s\n", "clients", "jobs", "p50", "p99",
              "throughput");
  std::printf("%s\n", std::string(58, '-').c_str());

  struct Row {
    unsigned Clients;
    unsigned Jobs;
    double WallMs;
    double P50Us;
    double P99Us;
    double JobsPerSec;
    unsigned HitJobs;
    unsigned MissJobs;
    double HitP50Us;
    double HitP99Us;
    double MissP50Us;
    double MissP99Us;
  };
  std::vector<Row> Rows;
  std::atomic<bool> AllMatch{true};
  std::mutex FailMu;
  std::string FirstFailure;

  for (unsigned Clients : ClientCounts) {
    std::vector<std::vector<double>> PerClientUs(Clients);
    std::vector<std::vector<double>> PerClientHitUs(Clients);
    std::vector<std::vector<double>> PerClientMissUs(Clients);
    auto Start = std::chrono::steady_clock::now();
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&, C] {
        RemoteClient Client;
        RemoteEndpoint Ep;
        Ep.IsUnix = true;
        Ep.UnixPath = Sock;
        std::string E;
        if (!Client.connect(Ep, E)) {
          std::lock_guard<std::mutex> G(FailMu);
          if (FirstFailure.empty())
            FirstFailure = "connect: " + E;
          AllMatch = false;
          return;
        }
        for (unsigned J = 0; J < JobsPerClient; ++J) {
          size_t Pick = (C + J) % Corpus.size();
          std::vector<BatchInput> One = {Corpus[Pick]};
          std::vector<DriverOutcome> Out;
          std::vector<double> Micros;
          auto T0 = std::chrono::steady_clock::now();
          if (!Client.runBatch(Req, One, Out, Micros, E)) {
            std::lock_guard<std::mutex> G(FailMu);
            if (FirstFailure.empty())
              FirstFailure = Corpus[Pick].Name + ": " + E;
            AllMatch = false;
            return;
          }
          auto T1 = std::chrono::steady_clock::now();
          double Us =
              std::chrono::duration<double, std::micro>(T1 - T0).count();
          PerClientUs[C].push_back(Us);
          (Out[0].ResultCacheHit ? PerClientHitUs : PerClientMissUs)[C]
              .push_back(Us);
          if (!sameOutcome(Out[0], Baseline[Pick])) {
            std::lock_guard<std::mutex> G(FailMu);
            if (FirstFailure.empty())
              FirstFailure = Corpus[Pick].Name + ": remote outcome diverges";
            AllMatch = false;
          }
        }
      });
    for (std::thread &T : Threads)
      T.join();
    auto End = std::chrono::steady_clock::now();
    double WallMs =
        std::chrono::duration<double, std::milli>(End - Start).count();

    auto gather = [](const std::vector<std::vector<double>> &Per) {
      std::vector<double> All;
      for (const std::vector<double> &V : Per)
        All.insert(All.end(), V.begin(), V.end());
      std::sort(All.begin(), All.end());
      return All;
    };
    std::vector<double> AllUs = gather(PerClientUs);
    std::vector<double> HitUs = gather(PerClientHitUs);
    std::vector<double> MissUs = gather(PerClientMissUs);
    Row R;
    R.Clients = Clients;
    R.Jobs = static_cast<unsigned>(AllUs.size());
    R.WallMs = WallMs;
    R.P50Us = percentileUs(AllUs, 0.50);
    R.P99Us = percentileUs(AllUs, 0.99);
    R.JobsPerSec = WallMs > 0 ? R.Jobs / (WallMs / 1000.0) : 0.0;
    R.HitJobs = static_cast<unsigned>(HitUs.size());
    R.MissJobs = static_cast<unsigned>(MissUs.size());
    R.HitP50Us = percentileUs(HitUs, 0.50);
    R.HitP99Us = percentileUs(HitUs, 0.99);
    R.MissP50Us = percentileUs(MissUs, 0.50);
    R.MissP99Us = percentileUs(MissUs, 0.99);
    Rows.push_back(R);
    std::printf("%-8u %8u %9.2f ms %9.2f ms %10.1f /s\n", R.Clients, R.Jobs,
                R.P50Us / 1000.0, R.P99Us / 1000.0, R.JobsPerSec);
    std::printf("%-8s %8u hits: p50 %6.2f ms p99 %6.2f ms | %u misses: "
                "p50 %6.2f ms p99 %6.2f ms\n",
                "", R.HitJobs, R.HitP50Us / 1000.0, R.HitP99Us / 1000.0,
                R.MissJobs, R.MissP50Us / 1000.0, R.MissP99Us / 1000.0);
  }
  std::printf("%s\n", std::string(58, '-').c_str());

  Daemon.requestStop();
  Loop.join();
  if (DaemonExit != 0) {
    std::lock_guard<std::mutex> G(FailMu);
    if (FirstFailure.empty())
      FirstFailure = "daemon drain exited " + std::to_string(DaemonExit);
    AllMatch = false;
  }
  ServeCounters Counters = Daemon.counters();
  std::printf("daemon: accepted=%llu submitted=%llu completed=%llu "
              "rejected=%llu idle-reclaims=%llu\n",
              static_cast<unsigned long long>(Counters.Accepted),
              static_cast<unsigned long long>(Counters.Submitted),
              static_cast<unsigned long long>(Counters.Completed),
              static_cast<unsigned long long>(Counters.Rejected),
              static_cast<unsigned long long>(Counters.IdleReclaims));
  std::printf("remote outcomes %s\n",
              AllMatch ? "identical to the local engine"
                       : ("DIFFER (bug!): " + FirstFailure).c_str());

  std::string Json = "{\n  \"bench\": \"serve\",\n";
  Json += std::string("  \"quick\": ") + (Quick ? "true" : "false") + ",\n";
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "  \"workers\": %u,\n  \"budget\": %u,\n"
                "  \"jobs_per_client\": %u,\n  \"rows\": [\n",
                Daemon.engine().workers(), SearchRuns, JobsPerClient);
  Json += Buf;
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"clients\": %u, \"jobs\": %u, \"wall_ms\": %.3f, "
                  "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                  "\"throughput_jobs_per_s\": %.1f,\n"
                  "     \"cache_hit\": {\"jobs\": %u, \"p50_us\": %.1f, "
                  "\"p99_us\": %.1f},\n"
                  "     \"cache_miss\": {\"jobs\": %u, \"p50_us\": %.1f, "
                  "\"p99_us\": %.1f}}%s\n",
                  R.Clients, R.Jobs, R.WallMs, R.P50Us, R.P99Us, R.JobsPerSec,
                  R.HitJobs, R.HitP50Us, R.HitP99Us, R.MissJobs, R.MissP50Us,
                  R.MissP99Us, I + 1 < Rows.size() ? "," : "");
    Json += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "  ],\n  \"daemon\": {\"accepted\": %llu, \"submitted\": "
                "%llu, \"completed\": %llu, \"rejected\": %llu, "
                "\"idle_reclaims\": %llu},\n",
                static_cast<unsigned long long>(Counters.Accepted),
                static_cast<unsigned long long>(Counters.Submitted),
                static_cast<unsigned long long>(Counters.Completed),
                static_cast<unsigned long long>(Counters.Rejected),
                static_cast<unsigned long long>(Counters.IdleReclaims));
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"outcomes_identical\": %s\n}\n",
                AllMatch ? "true" : "false");
  Json += Buf;
  cundef_bench::writeJsonFile("bench_serve", JsonPath, Json);
  ::unlink(Sock.c_str());
  return AllMatch ? 0 : 1;
}
