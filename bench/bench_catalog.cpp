//===- bench/bench_catalog.cpp - Section 5.2.1 statistics -------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Regenerates the paper's section 5.2.1 classification numbers: 221
// undefined behaviors, 92 statically and 129 only dynamically
// detectable, and the suite-coverage statement (178 tests over 70
// behaviors, with every one of the 42 dynamic core behaviors covered).
//
//===----------------------------------------------------------------------===//

#include "suites/UndefSuite.h"
#include "ub/Catalog.h"

#include <cstdio>

using namespace cundef;

int main() {
  CatalogStats Stats = catalogStats();
  std::printf("Catalog of C undefined behaviors (paper section 5.2.1)\n");
  std::printf("------------------------------------------------------\n");
  std::printf("total behaviors:                 %3u   (paper: 221)\n",
              Stats.Total);
  std::printf("statically detectable:           %3u   (paper: 92)\n",
              Stats.Static);
  std::printf("only dynamically detectable:     %3u   (paper: 129)\n",
              Stats.Dynamic);
  std::printf("dynamic, core-language, portable: %2u   (paper: 42)\n\n",
              Stats.DynamicCorePortable);

  // Clause-area histogram.
  unsigned Library = 0, ImplSpecific = 0;
  for (const CatalogEntry &Entry : ubCatalog()) {
    if (Entry.isLibrary())
      ++Library;
    if (Entry.isImplSpecific())
      ++ImplSpecific;
  }
  std::printf("library behaviors:               %3u\n", Library);
  std::printf("implementation-specific:         %3u\n\n", ImplSpecific);

  UndefSuiteStats Suite = undefSuiteStats();
  std::printf("Custom suite coverage (paper section 5.2.2)\n");
  std::printf("-------------------------------------------\n");
  std::printf("tests:                 %3u   (paper: 178)\n", Suite.Tests);
  std::printf("behaviors covered:     %3u   (paper: 70)\n",
              Suite.Behaviors);
  std::printf("  static:              %3u\n", Suite.StaticBehaviors);
  std::printf("  dynamic:             %3u\n", Suite.DynamicBehaviors);
  std::printf("dynamic core covered:  %3u   (paper: all 42)\n",
              Suite.DynamicCorePortableCovered);
  std::printf("tests per behavior:    %.1f  (paper: ~2)\n\n",
              double(Suite.Tests) / Suite.Behaviors);

  std::printf("First rows of the catalog:\n");
  for (const CatalogEntry &Entry : ubCatalog()) {
    if (Entry.Id > 20)
      break;
    std::printf("  %3u  [%c%c%c]  %-10s  %s\n", Entry.Id, Entry.DynClass,
                Entry.LibFlag, Entry.ImplFlag, Entry.Clause,
                Entry.Description);
  }
  return 0;
}
