//===- bench/bench_catalog.cpp - Section 5.2.1 statistics -------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Regenerates the paper's section 5.2.1 classification numbers: 221
// undefined behaviors, 92 statically and 129 only dynamically
// detectable, and the suite-coverage statement (178 tests over 70
// behaviors, with every one of the 42 dynamic core behaviors covered).
// On top of the static counts it runs the two live gates: the catalog
// coverage harness (one triggering program per expressible row) and the
// desktop-C scored suite (pass --quick for the reduced search budget;
// verdicts are identical).
//
//===----------------------------------------------------------------------===//

#include "suites/CatalogCoverage.h"
#include "suites/SuiteRunner.h"
#include "suites/UndefSuite.h"
#include "ub/Catalog.h"

#include <cstdio>
#include <cstring>

using namespace cundef;

int main(int argc, char **argv) {
  bool Quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  CatalogStats Stats = catalogStats();
  std::printf("Catalog of C undefined behaviors (paper section 5.2.1)\n");
  std::printf("------------------------------------------------------\n");
  std::printf("total behaviors:                 %3u   (paper: 221)\n",
              Stats.Total);
  std::printf("statically detectable:           %3u   (paper: 92)\n",
              Stats.Static);
  std::printf("only dynamically detectable:     %3u   (paper: 129)\n",
              Stats.Dynamic);
  std::printf("dynamic, core-language, portable: %2u   (paper: 42)\n\n",
              Stats.DynamicCorePortable);

  // Clause-area histogram.
  unsigned Library = 0, ImplSpecific = 0;
  for (const CatalogEntry &Entry : ubCatalog()) {
    if (Entry.isLibrary())
      ++Library;
    if (Entry.isImplSpecific())
      ++ImplSpecific;
  }
  std::printf("library behaviors:               %3u\n", Library);
  std::printf("implementation-specific:         %3u\n\n", ImplSpecific);

  UndefSuiteStats Suite = undefSuiteStats();
  std::printf("Custom suite coverage (paper section 5.2.2)\n");
  std::printf("-------------------------------------------\n");
  std::printf("tests:                 %3u   (paper: 178)\n", Suite.Tests);
  std::printf("behaviors covered:     %3u   (paper: 70)\n",
              Suite.Behaviors);
  std::printf("  static:              %3u\n", Suite.StaticBehaviors);
  std::printf("  dynamic:             %3u\n", Suite.DynamicBehaviors);
  std::printf("dynamic core covered:  %3u   (paper: all 42)\n",
              Suite.DynamicCorePortableCovered);
  std::printf("tests per behavior:    %.1f  (paper: ~2)\n\n",
              double(Suite.Tests) / Suite.Behaviors);

  std::printf("First rows of the catalog:\n");
  for (const CatalogEntry &Entry : ubCatalog()) {
    if (Entry.Id > 20)
      break;
    std::printf("  %3u  [%c%c%c]  %-10s  %s\n", Entry.Id, Entry.DynClass,
                Entry.LibFlag, Entry.ImplFlag, Entry.Clause,
                Entry.Description);
  }

  std::printf("\nCatalog coverage harness (%s mode)\n",
              Quick ? "quick" : "full");
  std::printf("----------------------------------\n");
  CoverageReport Coverage = runCatalogCoverage(coverageRequest(Quick));
  std::printf(
      "coverage: covered=%u wrong-code=%u missed=%u inexpressible=%u "
      "total=%u   wall=%.0fms\n\n",
      Coverage.Covered, Coverage.WrongCode, Coverage.Missed,
      Coverage.Inexpressible, Coverage.total(), Coverage.WallMs);

  DesktopSuite Desktop = loadDesktopSuite();
  if (!Desktop.ok()) {
    std::printf("desktop suite: %s\n", Desktop.Error.c_str());
    return 1;
  }
  DesktopScores Scores =
      scoreDesktopBatched(coverageRequest(Quick), Desktop.Cases);
  std::printf("%s", renderDesktopTable(Scores).c_str());
  return Scores.AsExpected == Scores.PerCase.size() ? 0 : 1;
}
