//===- bench/bench_search.cpp - Section 2.5.2 evaluation-order search --------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// "Any tool seeking to identify all undefined behaviors must search all
// possible evaluation strategies" (paper section 2.5.2). This bench
// measures the cost and the payoff of that search across the engine's
// generations:
//
//   seq        exhaustive prefix enumeration, 1 thread, no dedup,
//              full-state rehash (what the pre-parallel searcher did),
//   replay     + fingerprint visited-set; children replay their pinned
//              prefix from main() and rehash the whole configuration at
//              every choice point (the PR 1 engine),
//   fork       + children fork mid-run from snapshots captured at their
//              choice points, and fingerprints are incremental — still
//              wave-synchronous (the PR 2 engine),
//   steal      the work-stealing scheduler (core/Scheduler.h): same
//              fork engine, but speculative execution with a canonical
//              commit wavefront instead of per-wave barriers,
//   wave x4 / steal x4
//              both schedulers at 4 worker threads; the wave engine
//              barriers every generation (and re-spawns its thread team
//              per wave), the stealing scheduler keeps one pool busy.
//
// Witnesses must be byte-identical across every configuration and
// engine, and dedup hit counts must agree between replay/fork/steal
// (committed dedup decisions are deterministic by construction,
// docs/SEARCH.md) — the bench exits nonzero on either violation, which
// the bench_search_quick ctest guards in CI (--quick runs a reduced
// matrix). Wall-clock numbers are informational: CI containers may
// have one core.
//
// Every run also appends a machine-readable BENCH_search.json
// (--json=PATH to relocate) with per-case (engine, sched, jobs,
// wall-ms, runs, dedup rate, steals) records so the perf trajectory is
// tracked across PRs instead of scrolling away in logs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Scheduler.h"
#include "core/Search.h"
#include "driver/Driver.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

using namespace cundef;

namespace {

struct OrderCase {
  const char *Name;
  std::string Source;
  /// Aggregated into the deep-tree wave-vs-steal speedup printed in the
  /// summary line (informational; the exit code gates only witness
  /// identity and dedup-hit equality, which are timing-independent).
  bool DeepTree = false;
};

/// k statements of commuting two-call sums: 2^k interleavings, linearly
/// many distinct states. The worst honest case for enumeration and the
/// best honest case for deduplication.
std::string symmetricSums(unsigned K) {
  std::string S = "static int g(int x) { return x + 1; }\n"
                  "int main(void) {\n  int t = 0;\n";
  for (unsigned I = 0; I < K; ++I) {
    char Line[64];
    std::snprintf(Line, sizeof(Line), "  t += g(%u) + g(%u);\n", 2 * I,
                  2 * I + 1);
    S += Line;
  }
  S += "  return t > 0 ? 0 : 1;\n}\n";
  return S;
}

/// Like symmetricSums, but the last pair hides the paper's
/// order-dependent division by zero: the search must survive the
/// exponential prefix space to reach it.
std::string symmetricSumsWithUb(unsigned K) {
  std::string S = "int d = 5;\n"
                  "static int g(int x) { return x + 1; }\n"
                  "static int setDenom(int x) { return d = x; }\n"
                  "int main(void) {\n  int t = 0;\n";
  for (unsigned I = 0; I < K; ++I) {
    char Line[64];
    std::snprintf(Line, sizeof(Line), "  t += g(%u) + g(%u);\n", 2 * I,
                  2 * I + 1);
    S += Line;
  }
  S += "  t += (10 / d) + setDenom(0);\n  return t > 0 ? 0 : 1;\n}\n";
  return S;
}

struct Measured {
  const char *Engine = "";
  unsigned Jobs = 1;
  SearchResult R;
  double Millis = 0.0;
};

Measured measure(const AstContext &Ast, const SearchOptions &SO,
                 const char *Engine) {
  MachineOptions MOpts;
  auto Start = std::chrono::steady_clock::now();
  OrderSearch Search(Ast, MOpts, SO);
  Measured M;
  M.Engine = Engine;
  M.Jobs = SO.Jobs;
  M.R = Search.run();
  auto End = std::chrono::steady_clock::now();
  M.Millis = std::chrono::duration<double, std::milli>(End - Start).count();
  return M;
}

/// Stealing search at a worker count forced past the hardware clamp,
/// straight on a SearchScheduler. On a big machine this measures real
/// 16/32-way scaling; on a small CI box it still forces genuine
/// cross-thread interleaving, so the identity gates below stay
/// meaningful everywhere even when the wall-clock numbers are not.
Measured measureForced(const AstContext &Ast, const SearchOptions &SO,
                       const char *Engine, unsigned Workers) {
  MachineOptions MOpts;
  auto Start = std::chrono::steady_clock::now();
  SearchScheduler::Config Cfg;
  Cfg.Jobs = Workers;
  Cfg.ClampJobsToHardware = false;
  Cfg.SnapshotBudget = SO.SnapshotBudget;
  SearchScheduler Sched(Cfg);
  size_t Id = Sched.submit(Ast, MOpts, SO);
  Sched.runAll();
  Measured M;
  M.Engine = Engine;
  M.Jobs = Workers;
  M.R = Sched.takeResult(Id);
  auto End = std::chrono::steady_clock::now();
  M.Millis = std::chrono::duration<double, std::milli>(End - Start).count();
  return M;
}

std::string witnessStr(const std::vector<uint8_t> &W) {
  std::string S = "[";
  for (uint8_t D : W)
    S += D ? '1' : '0';
  return S + "]";
}

void appendEngineJson(std::string &Json, const Measured &M, bool Last) {
  char Buf[256];
  const double Rate = M.R.RunsExplored
                          ? 100.0 * M.R.DedupHits / M.R.RunsExplored
                          : 0.0;
  std::snprintf(Buf, sizeof(Buf),
                "      {\"engine\": \"%s\", \"jobs\": %u, \"wall_ms\": %.3f, "
                "\"runs\": %u, \"dedup_hits\": %u, \"dedup_rate\": %.1f, "
                "\"steals\": %u, \"evictions\": %u}%s\n",
                M.Engine, M.Jobs, M.Millis, M.R.RunsExplored, M.R.DedupHits,
                Rate, M.R.Steals, M.R.SnapshotEvictions, Last ? "" : ",");
  Json += Buf;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  const char *JsonPath = "BENCH_search.json";
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strncmp(argv[I], "--json=", 7))
      JsonPath = argv[I] + 7;
  }
  const unsigned Budget = Quick ? 192 : 512;
  const unsigned Pairs = Quick ? 6 : 8;
  const unsigned DeepPairs = Quick ? 8 : 10;
  const unsigned DeepCells = Quick ? 256 : 512;

  const OrderCase Cases[] = {
      {"paper 2.5.2: (10/d) + setDenom(0)",
       "int d = 5;\n"
       "int setDenom(int x) { return d = x; }\n"
       "int main(void) { return (10 / d) + setDenom(0); }\n"},
      {"mirrored: setDenom(0) + (10/d)",
       "int d = 5;\n"
       "int setDenom(int x) { return d = x; }\n"
       "int main(void) { return setDenom(0) + (10 / d); }\n"},
      {"write/read race: x + x++",
       "int main(void) { int x = 1; return x + x++; }\n"},
      {"nested order dependence",
       "int a = 1;\n"
       "int set(int v) { a = v; return 0; }\n"
       "int main(void) { return (8 / a) + (set(0) + set(1)); }\n"},
      {"commuting pairs (defined)", symmetricSums(Pairs)},
      {"commuting pairs + hidden UB", symmetricSumsWithUb(Pairs)},
      {"deep tree (pairs + hot array)",
       cundef_bench::deepTreeProgram(DeepPairs, DeepCells),
       /*DeepTree=*/true},
  };

  const unsigned HwConcurrency =
      std::max(1u, std::thread::hardware_concurrency());
  std::printf("Evaluation-order search (paper section 2.5.2), budget %u "
              "runs%s, %u hardware threads\n\n",
              Budget, Quick ? " [quick]" : "", HwConcurrency);
  std::printf("%-32s %-8s %6s %7s %9s %9s %8s %8s %9s %9s %10s %8s\n",
              "program", "verdict", "runs", "hits", "seq ms", "replay ms",
              "fork ms", "steal ms", "wave4 ms", "steal4 ms", "steal16 ms",
              "speedup");
  std::printf("%s\n", std::string(134, '-').c_str());

  double DeepWave4Ms = 0, DeepSteal4Ms = 0, DeepSteal16Ms = 0;
  double DeepFork1Ms = 0, DeepSteal1Ms = 0;
  bool WitnessesAgree = true;
  bool HitsOk = true;
  std::string Json;
  Json += "{\n";
  Json += std::string("  \"bench\": \"search\",\n  \"quick\": ") +
          (Quick ? "true" : "false") + ",\n";
  Json += "  \"budget\": " + std::to_string(Budget) + ",\n";
  Json += "  \"cases\": [\n";

  for (size_t CaseIdx = 0; CaseIdx < std::size(Cases); ++CaseIdx) {
    const OrderCase &Case = Cases[CaseIdx];
    Driver Drv;
    Driver::Compiled C = Drv.compile(Case.Source, "order.c");
    if (!C->ok()) {
      std::printf("%-32s  compile error\n", Case.Name);
      continue;
    }

    SearchOptions Seq; // the pre-parallel engine
    Seq.MaxRuns = Budget;
    Seq.Jobs = 1;
    Seq.Dedup = false;
    Seq.UseSnapshots = false;
    Seq.FullRehash = true;
    Seq.Sched = SchedKind::Wave;
    SearchOptions Replay = Seq; // + visited-set (the PR 1 engine)
    Replay.Dedup = true;
    SearchOptions Fork = Replay; // + snapshots + incremental digests
    Fork.UseSnapshots = true;
    Fork.FullRehash = false;
    SearchOptions Steal = Fork; // + work-stealing commit wavefront
    Steal.Sched = SchedKind::Stealing;
    SearchOptions Wave4 = Fork; // both schedulers at 4 workers
    Wave4.Jobs = 4;
    SearchOptions Steal4 = Steal;
    Steal4.Jobs = 4;

    Measured Ms[] = {
        measure(C->ast(), Seq, "seq"),      measure(C->ast(), Replay, "replay"),
        measure(C->ast(), Fork, "fork"),    measure(C->ast(), Steal, "steal"),
        measure(C->ast(), Wave4, "wave4"),  measure(C->ast(), Steal4, "steal4"),
        measureForced(C->ast(), Steal, "steal16", 16),
        measureForced(C->ast(), Steal, "steal32", 32),
    };
    const Measured &MSeq = Ms[0], &MRep = Ms[1], &MFork = Ms[2],
                   &MSteal = Ms[3], &MWave4 = Ms[4], &MSteal4 = Ms[5],
                   &MSteal16 = Ms[6], &MSteal32 = Ms[7];

    const double HitRate =
        MSteal.R.RunsExplored
            ? 100.0 * MSteal.R.DedupHits / MSteal.R.RunsExplored
            : 0.0;
    const double Speedup =
        MSteal4.Millis > 0 ? MWave4.Millis / MSteal4.Millis : 0.0;
    if (Case.DeepTree) {
      DeepWave4Ms += MWave4.Millis;
      DeepSteal4Ms += MSteal4.Millis;
      DeepSteal16Ms += MSteal16.Millis;
      DeepFork1Ms += MFork.Millis;
      DeepSteal1Ms += MSteal.Millis;
    }

    // Witness identity across every engine, scheduler, and job count.
    bool SameVerdict = true, SameWitness = true;
    for (const Measured &M : Ms) {
      SameVerdict &= M.R.UbFound == MSeq.R.UbFound;
      SameWitness &= M.R.Witness == MSeq.R.Witness;
    }
    if (!SameVerdict || !SameWitness)
      WitnessesAgree = false;
    // Committed dedup decisions are deterministic: replay, fork, and
    // steal must agree exactly, at one worker and at four (RunsExplored
    // is compared at one worker; the wave engine's count is
    // timing-dependent when a witness cuts a parallel wave short). The
    // stealing scheduler's committed counts are worker-count-invariant,
    // so the forced 16- and 32-worker runs must match steal1 exactly —
    // this is the high-worker identity gate bench_search_quick runs in
    // CI.
    if (MFork.R.DedupHits != MRep.R.DedupHits ||
        MSteal.R.DedupHits != MFork.R.DedupHits ||
        MSteal4.R.DedupHits != MWave4.R.DedupHits ||
        MSteal16.R.DedupHits != MSteal.R.DedupHits ||
        MSteal32.R.DedupHits != MSteal.R.DedupHits ||
        MFork.R.RunsExplored != MRep.R.RunsExplored ||
        MSteal.R.RunsExplored != MFork.R.RunsExplored ||
        MSteal16.R.RunsExplored != MSteal.R.RunsExplored ||
        MSteal32.R.RunsExplored != MSteal.R.RunsExplored)
      HitsOk = false;

    std::printf("%-32s %-8s %6u %6.0f%% %9.2f %9.2f %8.2f %8.2f %9.2f %9.2f "
                "%10.2f %7.1fx\n",
                Case.Name, MSteal.R.UbFound ? "UNDEF" : "clean",
                MSteal.R.RunsExplored, HitRate, MSeq.Millis, MRep.Millis,
                MFork.Millis, MSteal.Millis, MWave4.Millis, MSteal4.Millis,
                MSteal16.Millis, Speedup);
    if (MSteal.R.UbFound)
      std::printf("%-32s   witness %s%s\n", "",
                  witnessStr(MSteal.R.Witness).c_str(),
                  SameWitness ? " (identical across engines and jobs)"
                              : " MISMATCH ACROSS CONFIGS");

    char Head[128];
    std::snprintf(Head, sizeof(Head),
                  "    {\"name\": \"%s\", \"verdict\": \"%s\", "
                  "\"engines\": [\n",
                  Case.Name, MSteal.R.UbFound ? "UNDEF" : "clean");
    Json += Head;
    for (size_t I = 0; I < std::size(Ms); ++I)
      appendEngineJson(Json, Ms[I], I + 1 == std::size(Ms));
    Json += CaseIdx + 1 == std::size(Cases) ? "    ]}\n" : "    ]},\n";
  }

  const double DeepSpeedup1 =
      DeepSteal1Ms > 0 ? DeepFork1Ms / DeepSteal1Ms : 0.0;
  const double DeepSpeedup4 =
      DeepSteal4Ms > 0 ? DeepWave4Ms / DeepSteal4Ms : 0.0;
  const double DeepSpeedup16 =
      DeepSteal16Ms > 0 ? DeepSteal4Ms / DeepSteal16Ms : 0.0;
  // The steal16-vs-steal4 scaling gate only means something when the
  // hardware can actually run 16 workers; on smaller boxes (CI
  // containers are often 1-core) the number is informational and the
  // exit code gates identity alone.
  const bool ScalingGateActive = HwConcurrency >= 16;
  const bool ScalingOk = !ScalingGateActive || DeepSpeedup16 >= 2.0;
  std::printf("%s\n", std::string(134, '-').c_str());
  std::printf("deep tree, wave vs steal: %.1fx at jobs=1 (%.2f -> %.2f ms), "
              "%.1fx at jobs=4 (%.2f -> %.2f ms)\n",
              DeepSpeedup1, DeepFork1Ms, DeepSteal1Ms, DeepSpeedup4,
              DeepWave4Ms, DeepSteal4Ms);
  std::printf("deep tree, steal4 vs steal16: %.1fx (%.2f -> %.2f ms) "
              "[gate %s on %u hardware threads]\n",
              DeepSpeedup16, DeepSteal4Ms, DeepSteal16Ms,
              ScalingGateActive ? ">=2.0x enforced" : "informational",
              HwConcurrency);
  std::printf("witnesses %s; dedup hits %s\n",
              WitnessesAgree ? "identical in every configuration"
                             : "DIFFER (bug!)",
              HitsOk ? "identical across replay/fork/steal"
                     : "DIFFER between engines (bug!)");
  std::printf("\nThe stealing scheduler executes speculatively on per-worker "
              "deques and\ncommits through a canonical wavefront, so no "
              "generation barriers on its\nslowest machine and the thread "
              "pool is spawned once, not per wave.\n");

  Json += "  ],\n";
  char Summary[512];
  std::snprintf(Summary, sizeof(Summary),
                "  \"summary\": {\"deep_wave4_ms\": %.3f, "
                "\"deep_steal4_ms\": %.3f, \"deep_speedup4\": %.2f, "
                "\"deep_steal16_ms\": %.3f, \"deep_speedup16\": %.2f, "
                "\"hw_concurrency\": %u, \"scaling_gate_active\": %s, "
                "\"witnesses_identical\": %s, \"dedup_identical\": %s}\n",
                DeepWave4Ms, DeepSteal4Ms, DeepSpeedup4, DeepSteal16Ms,
                DeepSpeedup16, HwConcurrency,
                ScalingGateActive ? "true" : "false",
                WitnessesAgree ? "true" : "false", HitsOk ? "true" : "false");
  Json += Summary;
  Json += "}\n";
  cundef_bench::writeJsonFile("bench_search", JsonPath, Json);
  return WitnessesAgree && HitsOk && ScalingOk ? 0 : 1;
}
