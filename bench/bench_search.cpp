//===- bench/bench_search.cpp - Section 2.5.2 evaluation-order search --------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// "Any tool seeking to identify all undefined behaviors must search all
// possible evaluation strategies" (paper section 2.5.2). This bench
// measures the cost and the payoff of that search in three
// configurations of core/Search.h:
//
//   seq        exhaustive prefix enumeration, 1 thread, no dedup
//              (what the pre-parallel searcher effectively did),
//   dedup      1 thread + the fingerprint visited-set,
//   dedup x4   4 worker threads + the visited-set (--search-jobs=4).
//
// Reported per program: verdict, machine runs, dedup hit rate,
// wall-clock, and the speedup of dedup x4 over seq. Witnesses must be
// identical across all three configurations (the search is
// deterministic by construction; docs/SEARCH.md).
//
// The dedup payoff is algorithmic: programs with k independent choice
// points have 2^k interleavings but only O(k) distinct states at each
// depth, so the visited-set collapses the exponential frontier. Worker
// threads additionally spread the surviving replays over cores.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "driver/Driver.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace cundef;

namespace {

struct OrderCase {
  const char *Name;
  std::string Source;
};

/// k statements of commuting two-call sums: 2^k interleavings, linearly
/// many distinct states. The worst honest case for enumeration and the
/// best honest case for deduplication.
std::string symmetricSums(unsigned K) {
  std::string S = "static int g(int x) { return x + 1; }\n"
                  "int main(void) {\n  int t = 0;\n";
  for (unsigned I = 0; I < K; ++I) {
    char Line[64];
    std::snprintf(Line, sizeof(Line), "  t += g(%u) + g(%u);\n", 2 * I,
                  2 * I + 1);
    S += Line;
  }
  S += "  return t > 0 ? 0 : 1;\n}\n";
  return S;
}

/// Like symmetricSums, but the last pair hides the paper's
/// order-dependent division by zero: the search must survive the
/// exponential prefix space to reach it.
std::string symmetricSumsWithUb(unsigned K) {
  std::string S = "int d = 5;\n"
                  "static int g(int x) { return x + 1; }\n"
                  "static int setDenom(int x) { return d = x; }\n"
                  "int main(void) {\n  int t = 0;\n";
  for (unsigned I = 0; I < K; ++I) {
    char Line[64];
    std::snprintf(Line, sizeof(Line), "  t += g(%u) + g(%u);\n", 2 * I,
                  2 * I + 1);
    S += Line;
  }
  S += "  t += (10 / d) + setDenom(0);\n  return t > 0 ? 0 : 1;\n}\n";
  return S;
}

const OrderCase Cases[] = {
    {"paper 2.5.2: (10/d) + setDenom(0)",
     "int d = 5;\n"
     "int setDenom(int x) { return d = x; }\n"
     "int main(void) { return (10 / d) + setDenom(0); }\n"},
    {"mirrored: setDenom(0) + (10/d)",
     "int d = 5;\n"
     "int setDenom(int x) { return d = x; }\n"
     "int main(void) { return setDenom(0) + (10 / d); }\n"},
    {"write/read race: x + x++",
     "int main(void) { int x = 1; return x + x++; }\n"},
    {"nested order dependence",
     "int a = 1;\n"
     "int set(int v) { a = v; return 0; }\n"
     "int main(void) { return (8 / a) + (set(0) + set(1)); }\n"},
    {"8 commuting pairs (defined)", symmetricSums(8)},
    {"8 commuting pairs + hidden UB", symmetricSumsWithUb(8)},
};

struct Measured {
  SearchResult R;
  double Millis = 0.0;
};

Measured measure(const AstContext &Ast, const SearchOptions &SO) {
  MachineOptions MOpts;
  auto Start = std::chrono::steady_clock::now();
  OrderSearch Search(Ast, MOpts, SO);
  Measured M;
  M.R = Search.run();
  auto End = std::chrono::steady_clock::now();
  M.Millis = std::chrono::duration<double, std::milli>(End - Start).count();
  return M;
}

std::string witnessStr(const std::vector<uint8_t> &W) {
  std::string S = "[";
  for (uint8_t D : W)
    S += D ? '1' : '0';
  return S + "]";
}

} // namespace

int main() {
  constexpr unsigned Budget = 512;
  std::printf("Evaluation-order search (paper section 2.5.2), budget %u "
              "runs\n\n", Budget);
  std::printf("%-34s %-10s %6s %6s %6s %9s %9s %9s %8s\n", "program",
              "verdict", "seq", "dedup", "x4", "hit rate", "seq ms",
              "x4 ms", "speedup");
  std::printf("%s\n", std::string(104, '-').c_str());

  double TotalSeqMs = 0, TotalParMs = 0;
  bool WitnessesAgree = true;

  for (const OrderCase &Case : Cases) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Case.Source, "order.c");
    if (!C.Ok) {
      std::printf("%-34s  compile error\n", Case.Name);
      continue;
    }

    SearchOptions Seq;           // exhaustive baseline
    Seq.MaxRuns = Budget;
    Seq.Jobs = 1;
    Seq.Dedup = false;
    SearchOptions Ded = Seq;     // + visited-set
    Ded.Dedup = true;
    SearchOptions Par = Ded;     // + worker threads
    Par.Jobs = 4;

    Measured MSeq = measure(*C.Ast, Seq);
    Measured MDed = measure(*C.Ast, Ded);
    Measured MPar = measure(*C.Ast, Par);

    // Share of started runs the visited-set cancelled mid-flight
    // (DedupHits is a subset of RunsExplored; barrier twin-prunes are
    // separate events and not runs).
    const double HitRate =
        MPar.R.RunsExplored
            ? 100.0 * MPar.R.DedupHits / MPar.R.RunsExplored
            : 0.0;
    const double Speedup = MPar.Millis > 0 ? MSeq.Millis / MPar.Millis : 0.0;
    TotalSeqMs += MSeq.Millis;
    TotalParMs += MPar.Millis;

    bool SameVerdict = MSeq.R.UbFound == MDed.R.UbFound &&
                       MDed.R.UbFound == MPar.R.UbFound;
    bool SameWitness = MSeq.R.Witness == MDed.R.Witness &&
                       MDed.R.Witness == MPar.R.Witness;
    if (!SameVerdict || !SameWitness)
      WitnessesAgree = false;

    std::printf("%-34s %-10s %6u %6u %6u %8.0f%% %9.2f %9.2f %7.1fx\n",
                Case.Name, MPar.R.UbFound ? "UNDEF" : "clean",
                MSeq.R.RunsExplored, MDed.R.RunsExplored,
                MPar.R.RunsExplored, HitRate, MSeq.Millis, MPar.Millis,
                Speedup);
    if (MPar.R.UbFound)
      std::printf("%-34s   witness %s%s\n", "",
                  witnessStr(MPar.R.Witness).c_str(),
                  SameWitness ? " (identical seq/dedup/x4)"
                              : " MISMATCH ACROSS CONFIGS");
  }

  std::printf("%s\n", std::string(104, '-').c_str());
  std::printf("total wall-clock: seq %.2f ms, dedup x4 %.2f ms "
              "(%.1fx speedup); witnesses %s\n",
              TotalSeqMs, TotalParMs,
              TotalParMs > 0 ? TotalSeqMs / TotalParMs : 0.0,
              WitnessesAgree ? "identical in every configuration"
                             : "DIFFER (bug!)");
  std::printf("\nThe exponential cases are why dedup matters: 8 commuting "
              "pairs span 2^8\ninterleavings, but the fingerprint "
              "visited-set proves almost all of them\nreach already-"
              "explored states and prunes them mid-flight. Threads then\n"
              "spread the surviving replays over cores (--search-jobs).\n");
  return WitnessesAgree ? 0 : 1;
}
