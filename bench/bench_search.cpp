//===- bench/bench_search.cpp - Section 2.5.2 evaluation-order search --------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// "Any tool seeking to identify all undefined behaviors must search all
// possible evaluation strategies" (paper section 2.5.2). This bench
// measures the cost and the payoff of that search: programs whose
// undefinedness appears only on some orders, with the number of orders
// explored until detection.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "driver/Driver.h"

#include <cstdio>

using namespace cundef;

namespace {

struct OrderCase {
  const char *Name;
  const char *Source;
  bool DefaultOrderFindsIt; // left-to-right already undefined?
};

const OrderCase Cases[] = {
    {"paper 2.5.2: (10/d) + setDenom(0)",
     "int d = 5;\n"
     "int setDenom(int x) { return d = x; }\n"
     "int main(void) { return (10 / d) + setDenom(0); }\n",
     false},
    {"mirrored: setDenom(0) + (10/d)",
     "int d = 5;\n"
     "int setDenom(int x) { return d = x; }\n"
     "int main(void) { return setDenom(0) + (10 / d); }\n",
     true},
    {"write/read race: x + x++",
     "int main(void) { int x = 1; return x + x++; }\n", false},
    {"both orders defined",
     "int f(void) { return 1; }\n"
     "int g(void) { return 2; }\n"
     "int main(void) { return f() + g() - 3; }\n", false},
    {"nested order dependence",
     "int a = 1;\n"
     "int set(int v) { a = v; return 0; }\n"
     "int main(void) { return (8 / a) + (set(0) + set(1)); }\n",
     false},
};

} // namespace

int main() {
  std::printf("Evaluation-order search (paper section 2.5.2)\n\n");
  std::printf("%-38s %10s %8s %10s\n", "program", "LTR only", "search",
              "orders");
  std::printf("%s\n", std::string(70, '-').c_str());

  for (const OrderCase &Case : Cases) {
    // Single default-order run.
    DriverOptions Single;
    Single.SearchRuns = 1;
    Driver D1(Single);
    bool LtrFound = D1.runSource(Case.Source, "order.c").anyUb();

    // Depth-first search over orders.
    Driver D2{DriverOptions()};
    Driver::Compiled C = D2.compile(Case.Source, "order.c");
    if (!C.Ok) {
      std::printf("%-38s  compile error\n", Case.Name);
      continue;
    }
    MachineOptions MOpts;
    OrderSearch Search(*C.Ast, MOpts, /*MaxRuns=*/64);
    SearchResult R = Search.run();

    std::printf("%-38s %10s %8s %7u\n", Case.Name,
                LtrFound ? "UNDEF" : "clean",
                R.UbFound ? "UNDEF" : "clean", R.RunsExplored);
  }

  std::printf("\nThe first program is the paper's CompCert-vs-GCC "
              "example: left-to-right\nevaluation is defined, "
              "right-to-left divides by zero. Only search finds\nit; "
              "this is why kcc explores evaluation strategies.\n");
  return 0;
}
