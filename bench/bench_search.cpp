//===- bench/bench_search.cpp - Section 2.5.2 evaluation-order search --------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// "Any tool seeking to identify all undefined behaviors must search all
// possible evaluation strategies" (paper section 2.5.2). This bench
// measures the cost and the payoff of that search across the engine's
// generations:
//
//   seq        exhaustive prefix enumeration, 1 thread, no dedup,
//              full-state rehash (what the pre-parallel searcher did),
//   replay     + fingerprint visited-set; children replay their pinned
//              prefix from main() and rehash the whole configuration at
//              every choice point (the PR 1 engine — the baseline the
//              fork engine is measured against),
//   fork       + children fork mid-run from snapshots captured at their
//              choice points, and fingerprints are incremental
//              (O(state touched) instead of O(state)),
//   fork x4    fork with 4 worker threads (--search-jobs=4).
//
// Reported per program: verdict, machine runs, dedup hit rate, and the
// wall-clock of replay vs fork at jobs 1 and 4. Witnesses must be
// byte-identical across every configuration and engine (the search is
// deterministic by construction; docs/SEARCH.md), and the fork engine
// must not regress the dedup hit rate — the bench exits nonzero on
// either violation, which the bench_search_quick ctest guards in CI
// (--quick runs a reduced matrix).
//
// The dedup payoff is algorithmic: programs with k independent choice
// points have 2^k interleavings but only O(k) distinct states at each
// depth. The fork payoff is the two replay-era costs the deep-tree
// workload isolates: re-executing O(depth) pinned prefixes per run, and
// re-hashing O(state) per choice point.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "driver/Driver.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

using namespace cundef;

namespace {

struct OrderCase {
  const char *Name;
  std::string Source;
  /// Aggregated into the deep-tree fork-vs-replay speedup printed in
  /// the summary line (informational; the exit code gates only witness
  /// identity and dedup-hit equality, which are timing-independent).
  bool DeepTree = false;
};

/// k statements of commuting two-call sums: 2^k interleavings, linearly
/// many distinct states. The worst honest case for enumeration and the
/// best honest case for deduplication.
std::string symmetricSums(unsigned K) {
  std::string S = "static int g(int x) { return x + 1; }\n"
                  "int main(void) {\n  int t = 0;\n";
  for (unsigned I = 0; I < K; ++I) {
    char Line[64];
    std::snprintf(Line, sizeof(Line), "  t += g(%u) + g(%u);\n", 2 * I,
                  2 * I + 1);
    S += Line;
  }
  S += "  return t > 0 ? 0 : 1;\n}\n";
  return S;
}

/// Like symmetricSums, but the last pair hides the paper's
/// order-dependent division by zero: the search must survive the
/// exponential prefix space to reach it.
std::string symmetricSumsWithUb(unsigned K) {
  std::string S = "int d = 5;\n"
                  "static int g(int x) { return x + 1; }\n"
                  "static int setDenom(int x) { return d = x; }\n"
                  "int main(void) {\n  int t = 0;\n";
  for (unsigned I = 0; I < K; ++I) {
    char Line[64];
    std::snprintf(Line, sizeof(Line), "  t += g(%u) + g(%u);\n", 2 * I,
                  2 * I + 1);
    S += Line;
  }
  S += "  t += (10 / d) + setDenom(0);\n  return t > 0 ? 0 : 1;\n}\n";
  return S;
}

/// The deep-tree workload: K commuting pairs whose calls write into a
/// sizable global array. Prefix replay re-executes up to the full
/// program per run, and a full-state rehash touches every array byte at
/// every choice point — exactly the two costs fork scheduling and
/// incremental fingerprints remove.
std::string deepTree(unsigned K, unsigned Cells) {
  char Head[128];
  std::snprintf(Head, sizeof(Head),
                "int buf[%u];\n"
                "static int g(int x) { buf[x %% %u] += x; return x + 1; }\n"
                "int main(void) {\n  int t = 0;\n",
                Cells, Cells);
  std::string S = Head;
  for (unsigned I = 0; I < K; ++I) {
    char Line[64];
    std::snprintf(Line, sizeof(Line), "  t += g(%u) + g(%u);\n", 2 * I,
                  2 * I + 1);
    S += Line;
  }
  S += "  return t > 0 ? 0 : 1;\n}\n";
  return S;
}

struct Measured {
  SearchResult R;
  double Millis = 0.0;
};

Measured measure(const AstContext &Ast, const SearchOptions &SO) {
  MachineOptions MOpts;
  auto Start = std::chrono::steady_clock::now();
  OrderSearch Search(Ast, MOpts, SO);
  Measured M;
  M.R = Search.run();
  auto End = std::chrono::steady_clock::now();
  M.Millis = std::chrono::duration<double, std::milli>(End - Start).count();
  return M;
}

std::string witnessStr(const std::vector<uint8_t> &W) {
  std::string S = "[";
  for (uint8_t D : W)
    S += D ? '1' : '0';
  return S + "]";
}

} // namespace

int main(int argc, char **argv) {
  const bool Quick = argc > 1 && !std::strcmp(argv[1], "--quick");
  const unsigned Budget = Quick ? 192 : 512;
  const unsigned Pairs = Quick ? 6 : 8;
  const unsigned DeepPairs = Quick ? 8 : 10;
  const unsigned DeepCells = Quick ? 256 : 512;

  const OrderCase Cases[] = {
      {"paper 2.5.2: (10/d) + setDenom(0)",
       "int d = 5;\n"
       "int setDenom(int x) { return d = x; }\n"
       "int main(void) { return (10 / d) + setDenom(0); }\n"},
      {"mirrored: setDenom(0) + (10/d)",
       "int d = 5;\n"
       "int setDenom(int x) { return d = x; }\n"
       "int main(void) { return setDenom(0) + (10 / d); }\n"},
      {"write/read race: x + x++",
       "int main(void) { int x = 1; return x + x++; }\n"},
      {"nested order dependence",
       "int a = 1;\n"
       "int set(int v) { a = v; return 0; }\n"
       "int main(void) { return (8 / a) + (set(0) + set(1)); }\n"},
      {"commuting pairs (defined)", symmetricSums(Pairs)},
      {"commuting pairs + hidden UB", symmetricSumsWithUb(Pairs)},
      {"deep tree (pairs + hot array)", deepTree(DeepPairs, DeepCells),
       /*DeepTree=*/true},
  };

  std::printf("Evaluation-order search (paper section 2.5.2), budget %u "
              "runs%s\n\n", Budget, Quick ? " [quick]" : "");
  std::printf("%-32s %-8s %6s %6s %7s %9s %9s %8s %9s %9s %8s\n", "program",
              "verdict", "runs", "forked", "hits", "seq ms", "replay ms",
              "fork ms", "rep4 ms", "fork4 ms", "speedup");
  std::printf("%s\n", std::string(122, '-').c_str());

  double TotalReplayMs = 0, TotalForkMs = 0;
  double DeepReplayMs = 0, DeepForkMs = 0;
  double DeepReplay4Ms = 0, DeepFork4Ms = 0;
  bool WitnessesAgree = true;
  bool HitRateOk = true;

  for (const OrderCase &Case : Cases) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Case.Source, "order.c");
    if (!C.Ok) {
      std::printf("%-32s  compile error\n", Case.Name);
      continue;
    }

    SearchOptions Seq; // the pre-parallel engine
    Seq.MaxRuns = Budget;
    Seq.Jobs = 1;
    Seq.Dedup = false;
    Seq.UseSnapshots = false;
    Seq.FullRehash = true;
    SearchOptions Replay = Seq; // + visited-set (the PR 1 engine)
    Replay.Dedup = true;
    SearchOptions Fork = Replay; // + snapshots + incremental digests
    Fork.UseSnapshots = true;
    Fork.FullRehash = false;
    SearchOptions Replay4 = Replay; // both engines at 4 workers
    Replay4.Jobs = 4;
    SearchOptions Fork4 = Fork;
    Fork4.Jobs = 4;

    Measured MSeq = measure(*C.Ast, Seq);
    Measured MRep = measure(*C.Ast, Replay);
    Measured MFork = measure(*C.Ast, Fork);
    Measured MRep4 = measure(*C.Ast, Replay4);
    Measured MFork4 = measure(*C.Ast, Fork4);

    // Share of started runs the visited-set cancelled mid-flight
    // (DedupHits is a subset of RunsExplored; barrier twin-prunes are
    // separate events and not runs).
    const double HitRate =
        MFork.R.RunsExplored
            ? 100.0 * MFork.R.DedupHits / MFork.R.RunsExplored
            : 0.0;
    const double Speedup = MFork.Millis > 0 ? MRep.Millis / MFork.Millis : 0.0;
    TotalReplayMs += MRep.Millis;
    TotalForkMs += MFork.Millis;
    if (Case.DeepTree) {
      DeepReplayMs += MRep.Millis;
      DeepForkMs += MFork.Millis;
      DeepReplay4Ms += MRep4.Millis;
      DeepFork4Ms += MFork4.Millis;
    }

    bool SameVerdict = MSeq.R.UbFound == MRep.R.UbFound &&
                       MRep.R.UbFound == MFork.R.UbFound &&
                       MFork.R.UbFound == MRep4.R.UbFound &&
                       MRep4.R.UbFound == MFork4.R.UbFound;
    bool SameWitness = MSeq.R.Witness == MRep.R.Witness &&
                       MRep.R.Witness == MFork.R.Witness &&
                       MFork.R.Witness == MRep4.R.Witness &&
                       MRep4.R.Witness == MFork4.R.Witness;
    if (!SameVerdict || !SameWitness)
      WitnessesAgree = false;
    // No dedup-hit-rate regression: at one thread both engines make the
    // same decisions, so the counters must agree exactly.
    if (MFork.R.DedupHits != MRep.R.DedupHits ||
        MFork.R.RunsExplored != MRep.R.RunsExplored)
      HitRateOk = false;

    std::printf("%-32s %-8s %6u %6u %6.0f%% %9.2f %9.2f %8.2f %9.2f %9.2f "
                "%7.1fx\n",
                Case.Name, MFork.R.UbFound ? "UNDEF" : "clean",
                MFork.R.RunsExplored, MFork.R.ForkedRuns, HitRate,
                MSeq.Millis, MRep.Millis, MFork.Millis, MRep4.Millis,
                MFork4.Millis, Speedup);
    if (MFork.R.UbFound)
      std::printf("%-32s   witness %s%s\n", "",
                  witnessStr(MFork.R.Witness).c_str(),
                  SameWitness ? " (identical across engines and jobs)"
                              : " MISMATCH ACROSS CONFIGS");
  }

  const double DeepSpeedup =
      DeepForkMs > 0 ? DeepReplayMs / DeepForkMs : 0.0;
  const double DeepSpeedup4 =
      DeepFork4Ms > 0 ? DeepReplay4Ms / DeepFork4Ms : 0.0;
  std::printf("%s\n", std::string(122, '-').c_str());
  std::printf("total wall-clock: replay %.2f ms, fork %.2f ms (%.1fx); "
              "deep tree: %.1fx at jobs=1, %.1fx at jobs=4\n",
              TotalReplayMs, TotalForkMs,
              TotalForkMs > 0 ? TotalReplayMs / TotalForkMs : 0.0,
              DeepSpeedup, DeepSpeedup4);
  std::printf("witnesses %s; dedup hit rate %s\n",
              WitnessesAgree ? "identical in every configuration"
                             : "DIFFER (bug!)",
              HitRateOk ? "identical between engines"
                        : "REGRESSED in fork engine (bug!)");
  std::printf("\nFork scheduling resumes each child from a snapshot of its "
              "choice point\ninstead of re-executing the pinned prefix from "
              "main(), and incremental\nfingerprints digest only the state "
              "touched since the last choice point.\nBoth effects compound "
              "on deep trees, where prefixes are long and the\nconfiguration "
              "is large.\n");
  return WitnessesAgree && HitRateOk ? 0 : 1;
}
