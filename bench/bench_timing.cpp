//===- bench/bench_timing.cpp - Section 5.1.2 runtime comparison -------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The paper reports mean runtimes on the Juliet tests: Valgrind and
// Value Analysis ~0.5 s, kcc ~23 s, CheckPointer ~80 s. The absolute
// numbers reflect the authors' testbed; what carries over is the shape:
// the strict semantics pays a large interpretation overhead relative to
// lighter instrumentation. These google-benchmark timings measure each
// tool end-to-end on representative programs, plus the core machine's
// raw stepping rate.
//
//===----------------------------------------------------------------------===//

#include "analysis/Tool.h"
#include "core/Machine.h"
#include "driver/Driver.h"
#include "suites/JulietGen.h"

#include <benchmark/benchmark.h>

using namespace cundef;

namespace {

const char *WorkloadSource =
    "#include <stdlib.h>\n"
    "#include <string.h>\n"
    "static int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }\n"
    "int main(void) {\n"
    "  int acc = 0; int i;\n"
    "  char buf[32];\n"
    "  int *heap = (int*)malloc(16 * sizeof(int));\n"
    "  if (!heap) { return 1; }\n"
    "  for (i = 0; i < 16; i++) { heap[i] = i; }\n"
    "  for (i = 0; i < 10; i++) { acc += fib(i) + heap[i]; }\n"
    "  strcpy(buf, \"benchmark\");\n"
    "  acc += (int)strlen(buf);\n"
    "  free(heap);\n"
    "  return acc % 256;\n}\n";

void BM_ToolEndToEnd(benchmark::State &State, ToolKind Kind) {
  std::unique_ptr<Tool> T = Tool::create(Kind);
  for (auto _ : State) {
    ToolResult R = T->analyze(WorkloadSource, "workload.c");
    benchmark::DoNotOptimize(R.ExitCode);
  }
}

void BM_MachineSteps(benchmark::State &State) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(WorkloadSource, "workload.c");
  if (!C->ok()) {
    State.SkipWithError("compile failed");
    return;
  }
  uint64_t Steps = 0;
  for (auto _ : State) {
    UbSink Sink;
    MachineOptions Opts;
    Machine M(C->ast(), Opts, Sink);
    M.run();
    Steps += M.config().Steps;
  }
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}

void BM_PermissiveMachineSteps(benchmark::State &State) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(WorkloadSource, "workload.c");
  if (!C->ok()) {
    State.SkipWithError("compile failed");
    return;
  }
  uint64_t Steps = 0;
  for (auto _ : State) {
    UbSink Sink;
    MachineOptions Opts;
    Opts.Strict = false;
    Machine M(C->ast(), Opts, Sink);
    M.run();
    Steps += M.config().Steps;
  }
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}

void BM_CompileOnly(benchmark::State &State) {
  Driver Drv;
  for (auto _ : State) {
    Driver::Compiled C = Drv.compile(WorkloadSource, "workload.c");
    benchmark::DoNotOptimize(C->ok());
  }
}

void BM_JulietGeneration(benchmark::State &State) {
  for (auto _ : State) {
    JulietGenerator Gen(static_cast<unsigned>(State.range(0)));
    auto Tests = Gen.generate();
    benchmark::DoNotOptimize(Tests.size());
  }
}

} // namespace

BENCHMARK_CAPTURE(BM_ToolEndToEnd, kcc, ToolKind::Kcc);
BENCHMARK_CAPTURE(BM_ToolEndToEnd, memgrind, ToolKind::MemGrind);
BENCHMARK_CAPTURE(BM_ToolEndToEnd, ptrcheck, ToolKind::PtrCheck);
BENCHMARK_CAPTURE(BM_ToolEndToEnd, valueanalysis, ToolKind::ValueAnalysis);
BENCHMARK(BM_MachineSteps);
BENCHMARK(BM_PermissiveMachineSteps);
BENCHMARK(BM_CompileOnly);
BENCHMARK(BM_JulietGeneration)->Arg(100)->Arg(10);

BENCHMARK_MAIN();
