//===- bench/bench_batch.cpp - Batched multi-program driver bench ------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// UB tooling has to run over many real translation units, not one file
// at a time (ISSUE 3; Ruohonen & Sierszecki's desktop-scale study) —
// and a service is handed batch after batch, not one (ISSUE 4). This
// bench builds a mixed fleet of programs — order-dependent UB, deep
// clean trees, quick scripts — and compares:
//
//   sequential     one Driver::runSource per program,
//   batch x1       Driver::runBatch, one shared scheduler, 1 worker,
//   batch xN       the same with --search-jobs=N workers,
//   engine xN      ONE persistent AnalysisEngine serving ROUNDS
//                  consecutive batches (pool reused, startup amortized),
//                  vs a fresh Driver (fresh pool) per batch.
//
// A second, duplicate-heavy workload (ISSUE 5) A/Bs the engine's
// translation cache: the same translation unit submitted xN compiles
// once with the cache on and N times with it off, with byte-identical
// outcomes either way. Its cache hit rate lands in BENCH_batch.json.
//
// A third workload (ISSUE 10) A/Bs the *result* cache on the shape
// where the search, not the frontend, is the duplicated cost: a
// search-heavy unit analyzed once cold and then resubmitted xN. Warm
// repeats must come from the published outcome (hit rate > 0), the
// cache-on side must beat the cache-off side by >= 3x wall clock, and
// every outcome must be byte-identical either way. A companion
// snapshot-sharing workload runs duplicates with the result cache OFF
// and requires nonzero SchedulerStats::SnapshotSharedHits without
// changing any committed result.
//
// Per-program outcomes must be identical in every mode and every round
// (verdict, witness, output, exit code); the duplicate workloads' hit
// rates, the result-cache 3x gain, and the shared-donor count are all
// gated — the bench exits nonzero otherwise, and the bench_batch_quick
// ctest guards them in CI. Other wall-clock numbers are informational.
// Results land in BENCH_batch.json next to bench_search's
// BENCH_search.json.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Driver.h"
#include "driver/ResultCache.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

using namespace cundef;

namespace {

double wallOf(const std::function<void()> &Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

bool sameOutcome(const DriverOutcome &A, const DriverOutcome &B) {
  return A.CompileOk == B.CompileOk && A.anyUb() == B.anyUb() &&
         A.SearchWitness == B.SearchWitness && A.Output == B.Output &&
         A.ExitCode == B.ExitCode;
}

/// A frontend-heavy translation unit: hundreds of functions to lex,
/// parse, and type-check, of which main() calls exactly one — so the
/// machine run is trivial and duplicate submissions measure
/// translation cost, which is what the cache amortizes. (This is the
/// real-world shape too: most of a translation unit is headers and
/// helpers the analyzed entry point never touches.)
std::string bigStraightLineProgram(unsigned Funcs) {
  std::string Src;
  for (unsigned F = 0; F < Funcs; ++F) {
    Src += "static int f" + std::to_string(F) + "(int x) {\n";
    Src += "  int a = x + " + std::to_string(F) + "; int b = a * 3;\n";
    Src += "  int c = b - a; int d = c + (a > 0 ? 1 : 2);\n";
    Src += "  return d + b;\n}\n";
  }
  Src += "int main(void) { return f0(1) > 0 ? 0 : 1; }\n";
  return Src;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  const char *JsonPath = "BENCH_batch.json";
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strncmp(argv[I], "--json=", 7))
      JsonPath = argv[I] + 7;
  }
  const unsigned Deep = Quick ? 3 : 6;
  const unsigned Pairs = Quick ? 6 : 8;
  const unsigned SearchRuns = Quick ? 96 : 256;
  const unsigned Jobs = 4;
  const unsigned Rounds = 3; // consecutive batches for the engine mode

  std::vector<BatchInput> Inputs;
  Inputs.push_back({"int d = 5;\n"
                    "int setDenom(int x) { return d = x; }\n"
                    "int main(void) { return (10 / d) + setDenom(0); }\n",
                    "paper.c"});
  Inputs.push_back({"#include <stdio.h>\n"
                    "int main(void) { printf(\"fleet\\n\"); return 0; }\n",
                    "hello.c"});
  for (unsigned I = 0; I < Deep; ++I)
    Inputs.push_back({cundef_bench::deepTreeProgram(Pairs, 128, I * 7),
                      "deep" + std::to_string(I) + ".c"});
  Inputs.push_back({"int a = 1;\n"
                    "int set(int v) { a = v; return 0; }\n"
                    "int main(void) { return (8 / a) + (set(0) + set(1)); }\n",
                    "nested.c"});

  AnalysisRequest Opts =
      AnalysisRequest::Builder().searchRuns(SearchRuns).buildOrDie();
  AnalysisRequest OptsN = AnalysisRequest::Builder()
                              .searchRuns(SearchRuns)
                              .searchJobs(Jobs)
                              .buildOrDie();

  std::printf("Batched multi-program driver, %zu translation units, "
              "search budget %u%s\n\n",
              Inputs.size(), SearchRuns, Quick ? " [quick]" : "");

  // Sequential: one runSource per program.
  std::vector<DriverOutcome> Seq;
  double SeqMs = wallOf([&] {
    Driver Drv(Opts);
    for (const BatchInput &In : Inputs)
      Seq.push_back(Drv.runSource(In.Source, In.Name));
  });

  // Batched, shared scheduler at 1 and N workers.
  BatchResult Batch1, BatchN;
  double Batch1Ms = wallOf([&] {
    Driver Drv(Opts);
    Batch1 = Drv.runBatch(Inputs);
  });
  double BatchNMs = wallOf([&] {
    Driver Drv(OptsN);
    BatchN = Drv.runBatch(Inputs);
  });

  // Engine reuse: one persistent pool across consecutive batches
  // (drained between rounds, like a service between requests), against
  // a fresh Driver — fresh pool — per batch.
  std::vector<double> FreshMs(Rounds), ReuseMs(Rounds);
  std::vector<BatchResult> FreshResults(Rounds), ReuseResults(Rounds);
  for (unsigned R = 0; R < Rounds; ++R)
    FreshMs[R] = wallOf([&] {
      Driver Drv(OptsN);
      FreshResults[R] = Drv.runBatch(Inputs);
    });
  {
    Driver Service(OptsN); // one engine, Rounds batches
    for (unsigned R = 0; R < Rounds; ++R) {
      ReuseMs[R] = wallOf([&] { ReuseResults[R] = Service.runBatch(Inputs); });
      Service.engine().drain(); // reclaim between batches, like a service
    }
  }

  bool OutcomesAgree = true;
  std::printf("%-12s %-10s %8s %8s\n", "program", "verdict", "orders",
              "deduped");
  std::printf("%s\n", std::string(42, '-').c_str());
  for (size_t I = 0; I < Inputs.size(); ++I) {
    const DriverOutcome &O = Batch1.Outcomes[I];
    if (!sameOutcome(Seq[I], O) || !sameOutcome(O, BatchN.Outcomes[I]))
      OutcomesAgree = false;
    for (unsigned R = 0; R < Rounds; ++R)
      if (!sameOutcome(O, FreshResults[R].Outcomes[I]) ||
          !sameOutcome(O, ReuseResults[R].Outcomes[I]))
        OutcomesAgree = false;
    std::printf("%-12s %-10s %8u %8u\n", Inputs[I].Name.c_str(),
                O.anyUb() ? "UNDEF" : "clean", O.OrdersExplored,
                O.OrdersDeduped);
  }
  std::printf("%s\n", std::string(42, '-').c_str());
  std::printf("sequential %.2f ms; batch x1 %.2f ms (%.2fx); batch x%u "
              "%.2f ms (%.2fx)\n",
              SeqMs, Batch1Ms, Batch1Ms > 0 ? SeqMs / Batch1Ms : 0.0, Jobs,
              BatchNMs, BatchNMs > 0 ? SeqMs / BatchNMs : 0.0);

  double FreshTotal = 0, ReuseTotal = 0;
  std::printf("\nengine reuse (x%u workers, %u consecutive batches):\n",
              Jobs, Rounds);
  std::printf("%-8s %12s %12s\n", "round", "fresh-pool", "one-engine");
  for (unsigned R = 0; R < Rounds; ++R) {
    FreshTotal += FreshMs[R];
    ReuseTotal += ReuseMs[R];
    std::printf("%-8u %9.2f ms %9.2f ms\n", R + 1, FreshMs[R], ReuseMs[R]);
  }
  std::printf("%-8s %9.2f ms %9.2f ms (%.2fx)\n", "total", FreshTotal,
              ReuseTotal, ReuseTotal > 0 ? FreshTotal / ReuseTotal : 0.0);

  std::printf("scheduler (x%u): jobs=%u steals=%llu runs=%llu "
              "dedup-hits=%llu peak-frontier=%llu\n",
              Jobs, BatchN.Stats.Jobs,
              static_cast<unsigned long long>(BatchN.Stats.Steals),
              static_cast<unsigned long long>(BatchN.Stats.RunsExecuted),
              static_cast<unsigned long long>(BatchN.Stats.DedupHits),
              static_cast<unsigned long long>(BatchN.Stats.PeakFrontier));
  std::printf("per-program outcomes %s\n",
              OutcomesAgree ? "identical across all modes and rounds"
                            : "DIFFER (bug!)");

  // Duplicate-heavy workload: the same frontend-bound unit xN (the
  // suite-regeneration / repeat-traffic shape), translation cache on
  // vs off. The search is one run per program, so wall-clock here is
  // dominated by exactly the cost the cache removes.
  const unsigned DupCopies = Quick ? 12 : 24;
  const std::string BigSource = bigStraightLineProgram(Quick ? 240 : 480);
  std::vector<BatchInput> DupInputs;
  for (unsigned I = 0; I < DupCopies; ++I)
    DupInputs.push_back({BigSource, "dup.c"});
  DupInputs.push_back({Inputs[0].Source, "paper.c"}); // one searchy unit
  AnalysisRequest DupReq = AnalysisRequest::Builder()
                               .searchRuns(8)
                               .searchJobs(Jobs)
                               .buildOrDie();

  std::vector<DriverOutcome> DupOn, DupOff;
  double HitRate = 0.0;
  double DupOnMs = wallOf([&] {
    AnalysisEngine Eng(engineConfigFor(DupReq));
    std::vector<JobHandle> Handles = Eng.submitBatch(DupReq, DupInputs);
    for (JobHandle &H : Handles)
      DupOn.push_back(H.take());
    HitRate = Eng.translationStats().hitRate();
  });
  double DupOffMs = wallOf([&] {
    EngineConfig Off = engineConfigFor(DupReq);
    Off.TranslationCacheEntries = 0;
    AnalysisEngine Eng(Off);
    std::vector<JobHandle> Handles = Eng.submitBatch(DupReq, DupInputs);
    for (JobHandle &H : Handles)
      DupOff.push_back(H.take());
  });

  bool DupAgree = DupOn.size() == DupOff.size();
  for (size_t I = 0; DupAgree && I < DupOn.size(); ++I)
    DupAgree = sameOutcome(DupOn[I], DupOff[I]);

  std::printf("\nduplicate-heavy translation (%zu units, %u copies of one "
              "file):\n",
              DupInputs.size(), DupCopies);
  std::printf("cache-on %.2f ms; cache-off %.2f ms (%.2fx); hit rate "
              "%.1f%%; outcomes %s\n",
              DupOnMs, DupOffMs, DupOnMs > 0 ? DupOffMs / DupOnMs : 0.0,
              HitRate * 100.0, DupAgree ? "identical" : "DIFFER (bug!)");
  const bool CacheOk = DupAgree && HitRate > 0.0;

  // Result-cache workload (ISSUE 10): repeat traffic where the SEARCH
  // is the duplicated cost. One cold analysis publishes the outcome;
  // the batch of N identical resubmissions must resolve warm (no
  // search at all), while the cache-off A/B runs all N searches on the
  // same worker count. The duplicates reuse ONE unit name — the
  // translation key digests the name (diagnostics embed it), so
  // renamed copies are distinct programs by design.
  const unsigned RcCopies = Quick ? 10 : 20;
  const std::string RcSource = cundef_bench::deepTreeProgram(Pairs, 128, 3);
  std::vector<BatchInput> RcInputs;
  for (unsigned I = 0; I < RcCopies; ++I)
    RcInputs.push_back({RcSource, "rcdup.c"});

  DriverOutcome RcCold;
  std::vector<DriverOutcome> RcWarm, RcOff;
  ResultCacheStats RcStats;
  double RcColdMs = 0, RcWarmMs = 0;
  double RcOnMs = wallOf([&] {
    AnalysisEngine Eng(engineConfigFor(OptsN));
    RcColdMs = wallOf(
        [&] { RcCold = Eng.submit(OptsN, RcSource, "rcdup.c").take(); });
    RcWarmMs = wallOf([&] {
      std::vector<JobHandle> Handles = Eng.submitBatch(OptsN, RcInputs);
      for (JobHandle &H : Handles)
        RcWarm.push_back(H.take());
    });
    RcStats = Eng.resultCacheStats();
  });
  double RcOffMs = wallOf([&] {
    EngineConfig Off = engineConfigFor(OptsN);
    Off.ResultCacheEntries = 0;
    AnalysisEngine Eng(Off);
    std::vector<JobHandle> Handles = Eng.submitBatch(OptsN, RcInputs);
    for (JobHandle &H : Handles)
      RcOff.push_back(H.take());
  });

  bool RcAgree = RcWarm.size() == RcCopies && RcOff.size() == RcCopies;
  for (size_t I = 0; RcAgree && I < RcCopies; ++I)
    RcAgree = sameOutcome(RcCold, RcWarm[I]) && sameOutcome(RcCold, RcOff[I]);
  double RcGain = RcOnMs > 0 ? RcOffMs / RcOnMs : 0.0;

  std::printf("\nduplicate-heavy search (result cache, %u repeats of one "
              "search-heavy unit):\n",
              RcCopies);
  std::printf("cold %.2f ms; warm batch %.2f ms; cache-on total %.2f ms; "
              "cache-off %.2f ms (%.2fx)\n",
              RcColdMs, RcWarmMs, RcOnMs, RcOffMs, RcGain);
  std::printf("result cache: hits=%llu joins=%llu misses=%llu hit rate "
              "%.1f%%; outcomes %s\n",
              static_cast<unsigned long long>(RcStats.Hits),
              static_cast<unsigned long long>(RcStats.InflightJoins),
              static_cast<unsigned long long>(RcStats.Misses),
              RcStats.hitRate() * 100.0,
              RcAgree ? "identical" : "DIFFER (bug!)");
  const bool ResultCacheOk = RcAgree && RcStats.hitRate() > 0.0 &&
                             RcGain >= 3.0;
  if (!ResultCacheOk)
    std::fprintf(stderr, "bench_batch: result-cache gate FAILED "
                         "(agree=%d hit_rate=%.3f gain=%.2fx, need >= 3x)\n",
                 RcAgree ? 1 : 0, RcStats.hitRate(), RcGain);

  // Snapshot-sharing workload: the A/B mode itself (result cache OFF,
  // so duplicates really search) — fingerprint-equal duplicates over
  // one shared artifact must fork from each other's choice-point
  // donors engine-wide. Observable only in SnapshotSharedHits and
  // wall clock; every committed outcome stays identical to a solo
  // run's.
  const char *ShareSource = "int f(int a, int b) { return a * 2 + b; }\n"
                            "int main(void) {\n"
                            "  int r = f(1, 2) + f(3, 4);\n"
                            "  int s = f(r, 5) + f(2, r);\n"
                            "  int t = f(s, r) + f(r, s);\n"
                            "  return (r + s + t) & 0x7f;\n"
                            "}\n";
  const unsigned ShareCopies = 6;
  AnalysisRequest ShareReq = AnalysisRequest::Builder()
                                 .searchRuns(32)
                                 .searchJobs(2)
                                 .resultCache(false)
                                 .buildOrDie();
  DriverOutcome ShareRef;
  {
    EngineConfig Solo = engineConfigFor(ShareReq);
    Solo.ResultCacheEntries = 0;
    AnalysisEngine Reference(Solo);
    ShareRef = Reference.submit(ShareReq, ShareSource, "share.c").take();
  }
  std::vector<DriverOutcome> Shared;
  unsigned long long SharedHits = 0;
  double ShareMs = wallOf([&] {
    EngineConfig Cfg = engineConfigFor(ShareReq);
    Cfg.ResultCacheEntries = 0;
    AnalysisEngine Eng(Cfg);
    std::vector<BatchInput> ShareInputs;
    for (unsigned I = 0; I < ShareCopies; ++I)
      ShareInputs.push_back({ShareSource, "share.c"});
    std::vector<JobHandle> Handles = Eng.submitBatch(ShareReq, ShareInputs);
    for (JobHandle &H : Handles)
      Shared.push_back(H.take());
    SharedHits = Eng.poolStats().SnapshotSharedHits;
  });
  bool ShareAgree = Shared.size() == ShareCopies;
  for (size_t I = 0; ShareAgree && I < Shared.size(); ++I)
    ShareAgree = sameOutcome(ShareRef, Shared[I]);
  std::printf("\ncross-program snapshot sharing (%u duplicates, result "
              "cache off): %.2f ms, shared-hits=%llu, outcomes %s\n",
              ShareCopies, ShareMs, SharedHits,
              ShareAgree ? "identical to solo" : "DIFFER (bug!)");
  const bool ShareOk = ShareAgree && SharedHits > 0;
  if (!ShareOk)
    std::fprintf(stderr, "bench_batch: snapshot-sharing gate FAILED "
                         "(agree=%d shared_hits=%llu, need > 0)\n",
                 ShareAgree ? 1 : 0, SharedHits);

  std::string Json = "{\n  \"bench\": \"batch\",\n";
  Json += std::string("  \"quick\": ") + (Quick ? "true" : "false") + ",\n";
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf),
                "  \"programs\": %zu,\n  \"budget\": %u,\n"
                "  \"modes\": [\n"
                "    {\"mode\": \"sequential\", \"jobs\": 1, "
                "\"wall_ms\": %.3f},\n"
                "    {\"mode\": \"batch\", \"jobs\": 1, \"wall_ms\": %.3f, "
                "\"steals\": %llu, \"runs\": %llu},\n"
                "    {\"mode\": \"batch\", \"jobs\": %u, \"wall_ms\": %.3f, "
                "\"steals\": %llu, \"runs\": %llu}\n"
                "  ],\n",
                Inputs.size(), SearchRuns, SeqMs, Batch1Ms,
                static_cast<unsigned long long>(Batch1.Stats.Steals),
                static_cast<unsigned long long>(Batch1.Stats.RunsExecuted),
                Jobs, BatchNMs,
                static_cast<unsigned long long>(BatchN.Stats.Steals),
                static_cast<unsigned long long>(BatchN.Stats.RunsExecuted));
  Json += Buf;
  auto msArray = [](const std::vector<double> &Ms) {
    std::string Out = "[";
    for (size_t I = 0; I < Ms.size(); ++I) {
      char Cell[32];
      std::snprintf(Cell, sizeof(Cell), "%s%.3f", I ? ", " : "", Ms[I]);
      Out += Cell;
    }
    return Out + "]";
  };
  std::snprintf(Buf, sizeof(Buf),
                "  \"engine_reuse\": {\"jobs\": %u, \"batches\": %u,\n"
                "    \"fresh_pool_ms\": %s,\n"
                "    \"one_engine_ms\": %s,\n"
                "    \"fresh_total_ms\": %.3f, \"one_engine_total_ms\": %.3f"
                "},\n",
                Jobs, Rounds, msArray(FreshMs).c_str(),
                msArray(ReuseMs).c_str(), FreshTotal, ReuseTotal);
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"translation_cache\": {\"units\": %zu, \"copies\": %u,\n"
                "    \"cache_on_ms\": %.3f, \"cache_off_ms\": %.3f,\n"
                "    \"hit_rate\": %.4f, \"outcomes_identical\": %s},\n",
                DupInputs.size(), DupCopies, DupOnMs, DupOffMs, HitRate,
                DupAgree ? "true" : "false");
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"result_cache\": {\"copies\": %u,\n"
                "    \"cold_ms\": %.3f, \"warm_batch_ms\": %.3f,\n"
                "    \"cache_on_ms\": %.3f, \"cache_off_ms\": %.3f, "
                "\"gain\": %.3f,\n"
                "    \"hits\": %llu, \"inflight_joins\": %llu, "
                "\"misses\": %llu,\n"
                "    \"hit_rate\": %.4f, \"outcomes_identical\": %s},\n",
                RcCopies, RcColdMs, RcWarmMs, RcOnMs, RcOffMs, RcGain,
                static_cast<unsigned long long>(RcStats.Hits),
                static_cast<unsigned long long>(RcStats.InflightJoins),
                static_cast<unsigned long long>(RcStats.Misses),
                RcStats.hitRate(), RcAgree ? "true" : "false");
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"snapshot_sharing\": {\"copies\": %u, \"wall_ms\": %.3f,\n"
                "    \"shared_hits\": %llu, \"outcomes_identical\": %s},\n",
                ShareCopies, ShareMs, SharedHits,
                ShareAgree ? "true" : "false");
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"outcomes_identical\": %s\n}\n",
                OutcomesAgree ? "true" : "false");
  Json += Buf;
  cundef_bench::writeJsonFile("bench_batch", JsonPath, Json);
  return OutcomesAgree && CacheOk && ResultCacheOk && ShareOk ? 0 : 1;
}
