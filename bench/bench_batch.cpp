//===- bench/bench_batch.cpp - Batched multi-program driver bench ------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// UB tooling has to run over many real translation units, not one file
// at a time (ISSUE 3; Ruohonen & Sierszecki's desktop-scale study).
// This bench builds a mixed fleet of programs — order-dependent UB,
// deep clean trees, quick scripts — and compares:
//
//   sequential   one Driver::runSource per program (the pre-batch
//                interface: each search drains its own worker pool),
//   batch x1     Driver::runBatch, one shared scheduler, 1 worker,
//   batch xN     the same with --search-jobs=N workers.
//
// Per-program outcomes must be identical in all three modes (verdict,
// witness, output, exit code) — the bench exits nonzero otherwise,
// and the bench_batch_quick ctest guards that in CI. Wall-clock is
// informational. Results land in BENCH_batch.json next to
// bench_search's BENCH_search.json.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Driver.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

using namespace cundef;

namespace {

double wallOf(const std::function<void()> &Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

bool sameOutcome(const DriverOutcome &A, const DriverOutcome &B) {
  return A.CompileOk == B.CompileOk && A.anyUb() == B.anyUb() &&
         A.SearchWitness == B.SearchWitness && A.Output == B.Output &&
         A.ExitCode == B.ExitCode;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  const char *JsonPath = "BENCH_batch.json";
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strncmp(argv[I], "--json=", 7))
      JsonPath = argv[I] + 7;
  }
  const unsigned Deep = Quick ? 3 : 6;
  const unsigned Pairs = Quick ? 6 : 8;
  const unsigned SearchRuns = Quick ? 96 : 256;
  const unsigned Jobs = 4;

  std::vector<BatchInput> Inputs;
  Inputs.push_back({"int d = 5;\n"
                    "int setDenom(int x) { return d = x; }\n"
                    "int main(void) { return (10 / d) + setDenom(0); }\n",
                    "paper.c"});
  Inputs.push_back({"#include <stdio.h>\n"
                    "int main(void) { printf(\"fleet\\n\"); return 0; }\n",
                    "hello.c"});
  for (unsigned I = 0; I < Deep; ++I)
    Inputs.push_back({cundef_bench::deepTreeProgram(Pairs, 128, I * 7),
                      "deep" + std::to_string(I) + ".c"});
  Inputs.push_back({"int a = 1;\n"
                    "int set(int v) { a = v; return 0; }\n"
                    "int main(void) { return (8 / a) + (set(0) + set(1)); }\n",
                    "nested.c"});

  DriverOptions Opts;
  Opts.SearchRuns = SearchRuns;

  std::printf("Batched multi-program driver, %zu translation units, "
              "search budget %u%s\n\n",
              Inputs.size(), SearchRuns, Quick ? " [quick]" : "");

  // Sequential: one runSource per program.
  std::vector<DriverOutcome> Seq;
  double SeqMs = wallOf([&] {
    Driver Drv(Opts);
    for (const BatchInput &In : Inputs)
      Seq.push_back(Drv.runSource(In.Source, In.Name));
  });

  // Batched, shared scheduler at 1 and N workers.
  BatchResult Batch1, BatchN;
  double Batch1Ms = wallOf([&] {
    Driver Drv(Opts);
    Batch1 = Drv.runBatch(Inputs);
  });
  DriverOptions OptsN = Opts;
  OptsN.SearchJobs = Jobs;
  double BatchNMs = wallOf([&] {
    Driver Drv(OptsN);
    BatchN = Drv.runBatch(Inputs);
  });

  bool OutcomesAgree = true;
  std::printf("%-12s %-10s %8s %8s\n", "program", "verdict", "orders",
              "deduped");
  std::printf("%s\n", std::string(42, '-').c_str());
  for (size_t I = 0; I < Inputs.size(); ++I) {
    const DriverOutcome &O = Batch1.Outcomes[I];
    if (!sameOutcome(Seq[I], O) || !sameOutcome(O, BatchN.Outcomes[I]))
      OutcomesAgree = false;
    std::printf("%-12s %-10s %8u %8u\n", Inputs[I].Name.c_str(),
                O.anyUb() ? "UNDEF" : "clean", O.OrdersExplored,
                O.OrdersDeduped);
  }
  std::printf("%s\n", std::string(42, '-').c_str());
  std::printf("sequential %.2f ms; batch x1 %.2f ms (%.2fx); batch x%u "
              "%.2f ms (%.2fx)\n",
              SeqMs, Batch1Ms, Batch1Ms > 0 ? SeqMs / Batch1Ms : 0.0, Jobs,
              BatchNMs, BatchNMs > 0 ? SeqMs / BatchNMs : 0.0);
  std::printf("scheduler (x%u): jobs=%u steals=%llu runs=%llu "
              "dedup-hits=%llu peak-frontier=%llu\n",
              Jobs, BatchN.Stats.Jobs,
              static_cast<unsigned long long>(BatchN.Stats.Steals),
              static_cast<unsigned long long>(BatchN.Stats.RunsExecuted),
              static_cast<unsigned long long>(BatchN.Stats.DedupHits),
              static_cast<unsigned long long>(BatchN.Stats.PeakFrontier));
  std::printf("per-program outcomes %s\n",
              OutcomesAgree ? "identical across sequential/batch modes"
                            : "DIFFER (bug!)");

  std::string Json = "{\n  \"bench\": \"batch\",\n";
  Json += std::string("  \"quick\": ") + (Quick ? "true" : "false") + ",\n";
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "  \"programs\": %zu,\n  \"budget\": %u,\n"
                "  \"modes\": [\n"
                "    {\"mode\": \"sequential\", \"jobs\": 1, "
                "\"wall_ms\": %.3f},\n"
                "    {\"mode\": \"batch\", \"jobs\": 1, \"wall_ms\": %.3f, "
                "\"steals\": %llu, \"runs\": %llu},\n"
                "    {\"mode\": \"batch\", \"jobs\": %u, \"wall_ms\": %.3f, "
                "\"steals\": %llu, \"runs\": %llu}\n"
                "  ],\n  \"outcomes_identical\": %s\n}\n",
                Inputs.size(), SearchRuns, SeqMs, Batch1Ms,
                static_cast<unsigned long long>(Batch1.Stats.Steals),
                static_cast<unsigned long long>(Batch1.Stats.RunsExecuted),
                Jobs, BatchNMs,
                static_cast<unsigned long long>(BatchN.Stats.Steals),
                static_cast<unsigned long long>(BatchN.Stats.RunsExecuted),
                OutcomesAgree ? "true" : "false");
  Json += Buf;
  cundef_bench::writeJsonFile("bench_batch", JsonPath, Json);
  return OutcomesAgree ? 0 : 1;
}
