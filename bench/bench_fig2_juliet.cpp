//===- bench/bench_fig2_juliet.cpp - Regenerate paper Figure 2 --------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Runs the four analysis tools over the Juliet-like benchmark and prints
// the paper's Figure 2 table: per-class detection rates plus mean
// runtime. By default the full 4113-test corpus is used (the paper's
// counts); pass a divisor argument (e.g. "20") for a quick run.
//
// Usage: bench_fig2_juliet [scale-divisor]
//
//===----------------------------------------------------------------------===//

#include "suites/JulietGen.h"
#include "suites/SuiteRunner.h"

#include <cstdio>
#include <cstdlib>

using namespace cundef;

int main(int argc, char **argv) {
  unsigned Divisor = 1;
  if (argc > 1)
    Divisor = static_cast<unsigned>(std::atoi(argv[1]));
  if (Divisor == 0)
    Divisor = 1;

  JulietGenerator Gen(Divisor);
  std::vector<TestCase> Tests = Gen.generate();
  std::printf("Juliet-like benchmark: %zu test pairs (divisor %u; the "
              "paper's corpus is 4113)\n\n",
              Tests.size(), Divisor);

  std::vector<std::pair<std::string, JulietScores>> Rows;
  for (ToolKind Kind : {ToolKind::Kcc, ToolKind::MemGrind, ToolKind::PtrCheck,
                        ToolKind::ValueAnalysis}) {
    std::unique_ptr<Tool> T = Tool::create(Kind);
    std::printf("running %s over %zu pairs...\n", toolName(Kind),
                Tests.size());
    std::fflush(stdout);
    Rows.emplace_back(toolName(Kind), scoreJuliet(*T, Tests));
  }
  std::printf("\n%s\n", renderFigure2(Rows).c_str());

  std::printf("Paper reference (Figure 2):\n"
              "  Use of invalid pointer    Valgrind 70.9  CheckPointer 89.1"
              "  V.Analysis 100.0  kcc 100.0\n"
              "  Division by zero          Valgrind  0.0  CheckPointer  0.0"
              "  V.Analysis 100.0  kcc 100.0\n"
              "  Bad argument to free()    Valgrind 100.0 CheckPointer 99.7"
              "  V.Analysis 100.0  kcc 100.0\n"
              "  Uninitialized memory      Valgrind 100.0 CheckPointer 29.3"
              "  V.Analysis 100.0  kcc 100.0\n"
              "  Bad function call         Valgrind 100.0 CheckPointer 100.0"
              " V.Analysis 100.0  kcc 100.0\n"
              "  Integer overflow          Valgrind  0.0  CheckPointer  0.0"
              "  V.Analysis 100.0  kcc 100.0\n");
  return 0;
}
