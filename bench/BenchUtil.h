//===- bench/BenchUtil.h - Shared bench helpers -----------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Workload generators and reporting helpers shared by the search and
// batch benches, so the two measure the *same* program shapes and emit
// their BENCH_*.json files the same way.
//
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_BENCH_BENCHUTIL_H
#define CUNDEF_BENCH_BENCHUTIL_H

#include <cstdio>
#include <string>

namespace cundef_bench {

/// The deep-tree workload: K commuting pairs whose calls write into a
/// sizable global array. Wide waves with uneven run lengths and a
/// memory-heavy configuration — the shape where prefix replay,
/// full-state rehashing, and wave barriers all hurt. \p Salt offsets
/// the array indexing so batched fleets get distinct (non-dedupable
/// across programs) variants of the same shape.
inline std::string deepTreeProgram(unsigned K, unsigned Cells,
                                   unsigned Salt = 0) {
  char Head[160];
  std::snprintf(Head, sizeof(Head),
                "int buf[%u];\n"
                "static int g(int x) { buf[(x + %u) %% %u] += x; "
                "return x + 1; }\n"
                "int main(void) {\n  int t = 0;\n",
                Cells, Salt, Cells);
  std::string S = Head;
  for (unsigned I = 0; I < K; ++I) {
    char Line[64];
    std::snprintf(Line, sizeof(Line), "  t += g(%u) + g(%u);\n", 2 * I,
                  2 * I + 1);
    S += Line;
  }
  S += "  return t > 0 ? 0 : 1;\n}\n";
  return S;
}

/// Writes \p Json to \p Path, reporting on stdout like the benches'
/// human-readable tail expects. Returns false (with a stderr note) on
/// failure; the bench exit code should not depend on it.
inline bool writeJsonFile(const char *Bench, const char *Path,
                          const std::string &Json) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "%s: cannot write %s\n", Bench, Path);
    return false;
  }
  std::fputs(Json.c_str(), F);
  std::fclose(F);
  std::printf("wrote %s\n", Path);
  return true;
}

} // namespace cundef_bench

#endif // CUNDEF_BENCH_BENCHUTIL_H
