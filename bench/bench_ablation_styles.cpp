//===- bench/bench_ablation_styles.cpp - Section 4.5 style comparison --------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The paper describes three ways to specify undefinedness: side
// conditions on positive rules (4.1), inclusion/exclusion rules with
// precedence (4.5.1), and declarative negative properties (4.5.2). All
// three are implemented here; this bench verifies they give identical
// verdicts on the custom suite and compares their runtime cost and rule
// complexity.
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "driver/Driver.h"
#include "suites/UndefSuite.h"
#include "support/Strings.h"

#include <chrono>
#include <cstdio>

using namespace cundef;

namespace {

struct StyleResult {
  unsigned Detected = 0;
  unsigned Tests = 0;
  double Millis = 0;
  std::vector<bool> Verdicts;
};

StyleResult runStyle(RuleStyle Style) {
  StyleResult Result;
  AnalysisRequest Opts =
      AnalysisRequest::Builder().style(Style).searchRuns(4).buildOrDie();
  auto Start = std::chrono::steady_clock::now();
  for (const TestCase &Test : undefSuite()) {
    if (Test.StaticBehavior)
      continue;
    Driver Drv(Opts);
    bool Flagged = Drv.runSource(Test.Bad, Test.Name + "_bad.c").anyUb();
    Result.Verdicts.push_back(Flagged);
    Result.Detected += Flagged;
    ++Result.Tests;
  }
  auto End = std::chrono::steady_clock::now();
  Result.Millis = std::chrono::duration<double, std::milli>(End - Start)
                      .count();
  return Result;
}

} // namespace

int main() {
  std::printf("Specification-style comparison (paper section 4.5)\n\n");

  StyleResult Side = runStyle(RuleStyle::SideConditions);
  StyleResult Chain = runStyle(RuleStyle::PrecedenceChain);
  StyleResult Decl = runStyle(RuleStyle::Declarative);

  std::printf("%-28s %12s %12s\n", "style", "detected", "time (ms)");
  std::printf("%s\n", std::string(54, '-').c_str());
  std::printf("%-28s %8u/%3u %12.1f\n", "side conditions (4.1)",
              Side.Detected, Side.Tests, Side.Millis);
  std::printf("%-28s %8u/%3u %12.1f\n", "precedence chains (4.5.1)",
              Chain.Detected, Chain.Tests, Chain.Millis);
  std::printf("%-28s %8u/%3u %12.1f\n", "declarative monitors (4.5.2)",
              Decl.Detected, Decl.Tests, Decl.Millis);

  // Verdict agreement: the styles are meant to be equivalent
  // specifications of the same semantics.
  unsigned DisagreeChain = 0, DisagreeDecl = 0;
  for (size_t I = 0; I < Side.Verdicts.size(); ++I) {
    DisagreeChain += Side.Verdicts[I] != Chain.Verdicts[I];
    DisagreeDecl += Side.Verdicts[I] != Decl.Verdicts[I];
  }
  std::printf("\nverdict disagreements vs side conditions: "
              "chains %u, declarative %u\n",
              DisagreeChain, DisagreeDecl);

  // Rule-complexity comparison: how many rules/conditions each style
  // needs for the dereference and division checks.
  UbSink Sink;
  StringInterner Interner;
  AstContext Ctx(TargetConfig::lp64(), Interner);
  MachineOptions Opts;
  Machine M(Ctx, Opts, Sink);
  std::printf("\ninclusion/exclusion chains (applied newest-first, the "
              "paper's\n\"later rules must be applied before earlier "
              "rules\"):\n");
  std::printf("  deref chain (%zu rules):", M.derefChain().size());
  for (const std::string &Name : M.derefChain().names())
    std::printf(" %s", Name.c_str());
  std::printf("\n  division chain (%zu rules):", M.divChain().size());
  for (const std::string &Name : M.divChain().names())
    std::printf(" %s", Name.c_str());
  std::printf("\n\nside-condition style: 1 rule with 6 conditions (deref),"
              " 1 rule with 3\nconditions (division). declarative style:"
              " 3 monitors with 9 negative\nproperties. Same verdicts,"
              " different modularity -- the paper's trade-off\nbetween"
              " side-condition complexity and rule-precedence complexity."
              "\n");
  return 0;
}
