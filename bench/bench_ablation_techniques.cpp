//===- bench/bench_ablation_techniques.cpp - Section 4 technique ablation ----===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// DESIGN.md calls out each mechanism of the paper's section 4 for
// ablation: disable one at a time and measure what the custom suite's
// kcc stops catching. This is the evidence that each technique carries
// real detection weight (the paper's thesis: undefinedness is not
// caught "for free").
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "driver/Driver.h"
#include "suites/UndefSuite.h"
#include "support/Strings.h"

#include <cstdio>
#include <functional>

using namespace cundef;

namespace {

struct Ablation {
  const char *Name;
  const char *Paper;
  std::function<void(MachineOptions &)> Apply;
};

struct AblationScore {
  unsigned Detected = 0;       ///< undefined tests flagged
  unsigned FalsePositives = 0; ///< defined controls flagged
};

AblationScore scoreConfig(const MachineOptions &MOpts) {
  AnalysisRequest Opts =
      AnalysisRequest::Builder().machine(MOpts).searchRuns(4).buildOrDie();
  AblationScore Score;
  for (const TestCase &Test : undefSuite()) {
    if (Test.StaticBehavior)
      continue;
    Driver Drv(Opts);
    if (Drv.runSource(Test.Bad, Test.Name + "_bad.c").anyUb())
      ++Score.Detected;
    Driver Drv2(Opts);
    if (Drv2.runSource(Test.Good, Test.Name + "_good.c").anyUb())
      ++Score.FalsePositives;
  }
  return Score;
}

} // namespace

int main() {
  const Ablation Ablations[] = {
      {"full kcc (all techniques)", "sections 4.1-4.3",
       [](MachineOptions &) {}},
      {"no locsWrittenTo tracking", "section 4.2.1",
       [](MachineOptions &O) { O.TrackSequencing = false; }},
      {"no notWritable tracking", "section 4.2.2",
       [](MachineOptions &O) { O.TrackConst = false; }},
      {"no symbolic pointer bases", "section 4.3.1",
       [](MachineOptions &O) { O.SymbolicPointers = false; }},
      {"no subObject pointer bytes", "section 4.3.2",
       [](MachineOptions &O) { O.PointerBytes = false; }},
      {"no unknown(N) bytes", "section 4.3.3",
       [](MachineOptions &O) { O.UnknownBytes = false; }},
      {"no effective-type checks", "C11 6.5p7",
       [](MachineOptions &O) { O.CheckEffectiveTypes = false; }},
  };

  unsigned DynamicTests = 0;
  for (const TestCase &Test : undefSuite())
    if (!Test.StaticBehavior)
      ++DynamicTests;

  std::printf("Technique ablation on the custom suite's %u dynamic test "
              "pairs\n\n",
              DynamicTests);
  std::printf("%-32s %-18s %10s %6s %10s\n", "configuration",
              "paper mechanism", "detected", "lost", "false pos");
  std::printf("%s\n", std::string(80, '-').c_str());

  unsigned Baseline = 0;
  for (const Ablation &A : Ablations) {
    MachineOptions Opts;
    A.Apply(Opts);
    AblationScore Score = scoreConfig(Opts);
    if (Baseline == 0)
      Baseline = Score.Detected;
    std::printf("%-32s %-18s %6u/%u %6d %10u\n", A.Name, A.Paper,
                Score.Detected, DynamicTests,
                int(Baseline) - int(Score.Detected), Score.FalsePositives);
    std::fflush(stdout);
  }
  std::printf(
      "\nEach mechanism either loses detections or breaks defined "
      "controls when\nremoved. Note the subObject row: storing pointers "
      "as concrete bytes\n*over*-reports (false positives on the byte-"
      "copy controls) -- the paper's\npoint that any concrete byte-"
      "splitting choice would be an\nover-specification (section 4.3.2)."
      "\n");
  return 0;
}
