//===- bench/bench_fig3_custom.cpp - Regenerate paper Figure 3 --------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Scores the four tools on the custom undefinedness suite (178 tests,
// 70 behaviors) and prints the paper's Figure 3: static and dynamic
// detection percentages averaged per behavior.
//
//===----------------------------------------------------------------------===//

#include "suites/SuiteRunner.h"
#include "suites/UndefSuite.h"

#include <cstdio>

using namespace cundef;

int main() {
  const std::vector<TestCase> &Tests = undefSuite();
  UndefSuiteStats Stats = undefSuiteStats();
  std::printf("Custom undefinedness suite: %u tests, %u behaviors "
              "(%u static, %u dynamic; %u of the 42 dynamic core "
              "behaviors covered)\n\n",
              Stats.Tests, Stats.Behaviors, Stats.StaticBehaviors,
              Stats.DynamicBehaviors, Stats.DynamicCorePortableCovered);

  std::vector<std::pair<std::string, CustomScores>> Rows;
  for (ToolKind Kind : {ToolKind::MemGrind, ToolKind::ValueAnalysis,
                        ToolKind::PtrCheck, ToolKind::Kcc}) {
    std::unique_ptr<Tool> T = Tool::create(Kind);
    std::printf("running %s...\n", toolName(Kind));
    std::fflush(stdout);
    Rows.emplace_back(toolName(Kind), scoreCustom(*T, Tests));
  }
  std::printf("\n%s\n", renderFigure3(Rows).c_str());

  std::printf("Paper reference (Figure 3):\n"
              "  Valgrind     0.0 / 2.3\n"
              "  V.Analysis   1.6 / 45.3\n"
              "  CheckPtr.    2.4 / 13.1\n"
              "  kcc         44.8 / 64.0\n");

  // Per-behavior detail for kcc (which behaviors it detects).
  std::unique_ptr<Tool> Kcc = Tool::create(ToolKind::Kcc);
  CustomScores Detail = scoreCustom(*Kcc, Tests);
  std::printf("\nkcc per-behavior detail (id: passed/tests):\n");
  unsigned Col = 0;
  for (const BehaviorScore &B : Detail.PerBehavior) {
    std::printf("  %3u:%u/%u%s", B.CatalogId, B.Passed, B.Tests,
                B.Static ? "s" : " ");
    if (++Col % 6 == 0)
      std::printf("\n");
  }
  std::printf("\n");
  return 0;
}
