//===- bench/bench_fig1_config.cpp - Regenerate paper Figure 1 --------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Figure 1 of the paper shows a subset of the C configuration: the
// nested cell structure of the semantics' state. This bench runs a
// program to a mid-execution point and prints our configuration's cell
// tree, marking the cells Figure 1 names (k, genv, mem, locsWrittenTo,
// notWritable, env/control, callStack).
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "driver/Driver.h"

#include <cstdio>

using namespace cundef;

int main() {
  const char *Source = R"(
static int helper(int n) {
  const int bias = 3;
  int local[4];
  local[0] = n + bias;
  return local[0];
}
int global_counter = 5;
int main(void) {
  int x = helper(global_counter);
  return x - 8;
}
)";
  Driver Drv;
  Driver::Compiled C = Drv.compile(Source, "fig1.c");
  if (!C->ok()) {
    std::printf("compile failed:\n%s", C->errors().c_str());
    return 1;
  }
  UbSink Sink;
  MachineOptions Opts;
  Machine M(C->ast(), Opts, Sink);

  // Step until execution is inside helper() with live cells, then dump.
  std::printf("Figure 1. Subset of the C configuration "
              "(paper: <T> with over 90 cells in the full kcc).\n\n");
  std::printf("Paper's subset:\n"
              "  < <K>k <Map>genv <Map>gtypes <Set>locsWrittenTo "
              "<Set>notWritable\n    <Map>mem < <<Map>env <Map>types"
              ">control <List>callStack >local >T\n\n");

  // Drive the machine a while; snapshot when the call stack is deepest.
  std::string Deepest;
  size_t DeepestFrames = 0;
  unsigned Steps = 0;
  // Manual stepping requires the same setup run() performs; easiest is
  // to run to completion while sampling via a monitor-free loop: we
  // re-run with increasing step budgets and snapshot the configuration.
  for (unsigned Budget = 10; Budget < 400; Budget += 7) {
    UbSink S2;
    MachineOptions O2;
    O2.StepLimit = Budget;
    Machine M2(C->ast(), O2, S2);
    M2.run();
    ++Steps;
    if (M2.config().CallStack.size() >= DeepestFrames) {
      DeepestFrames = M2.config().CallStack.size();
      Deepest = M2.config().describeCells();
    }
  }
  std::printf("Our configuration at the deepest sampled point:\n%s\n",
              Deepest.c_str());

  // Cell inventory of this implementation.
  std::printf("Cell inventory of this implementation:\n"
              "  k (computation stack), value stack, genv, mem,\n"
              "  locsWrittenTo, notWritable, callStack (env + varargs\n"
              "  per frame), function-object map, literal-object map,\n"
              "  heap effective-type map, output, exit status, rand\n"
              "  state  -- 13 top-level cells (the paper's full C\n"
              "  configuration has over 90).\n");
  (void)Steps;
  return 0;
}
