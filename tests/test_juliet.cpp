//===- tests/test_juliet.cpp - Juliet-like generator tests ---------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/ToolRunner.h"
#include "suites/JulietGen.h"
#include "suites/SuiteRunner.h"

#include <gtest/gtest.h>

#include <set>

using namespace cundef;

namespace {

TEST(Juliet, PaperCounts) {
  EXPECT_EQ(JulietGenerator::paperCount(JulietClass::InvalidPointer), 3193u);
  EXPECT_EQ(JulietGenerator::paperCount(JulietClass::DivideByZero), 77u);
  EXPECT_EQ(JulietGenerator::paperCount(JulietClass::BadFree), 334u);
  EXPECT_EQ(JulietGenerator::paperCount(JulietClass::UninitializedMemory),
            422u);
  EXPECT_EQ(JulietGenerator::paperCount(JulietClass::BadFunctionCall), 46u);
  EXPECT_EQ(JulietGenerator::paperCount(JulietClass::IntegerOverflow), 41u);
  unsigned Total = 0;
  for (JulietClass Class :
       {JulietClass::InvalidPointer, JulietClass::DivideByZero,
        JulietClass::BadFree, JulietClass::UninitializedMemory,
        JulietClass::BadFunctionCall, JulietClass::IntegerOverflow})
    Total += JulietGenerator::paperCount(Class);
  EXPECT_EQ(Total, 4113u) << "the paper's extraction yields 4113 tests";
}

TEST(Juliet, FullScaleGeneratesAllTests) {
  JulietGenerator Gen(1);
  std::vector<TestCase> Tests = Gen.generate();
  EXPECT_EQ(Tests.size(), 4113u);
  std::set<std::string> Names;
  for (const TestCase &Test : Tests) {
    EXPECT_TRUE(Test.FromJuliet);
    EXPECT_FALSE(Test.Bad.empty());
    EXPECT_FALSE(Test.Good.empty());
    EXPECT_NE(Test.Bad, Test.Good);
    Names.insert(Test.Name);
  }
  EXPECT_EQ(Names.size(), Tests.size()) << "test names are unique";
}

TEST(Juliet, ScalingDividesCounts) {
  JulietGenerator Gen(100);
  EXPECT_EQ(Gen.scaledCount(JulietClass::InvalidPointer), 31u);
  EXPECT_EQ(Gen.scaledCount(JulietClass::IntegerOverflow), 1u)
      << "every class keeps at least one test";
}

TEST(Juliet, EveryVariantCompiles) {
  // One test from every (subkind x variant) region of each class must
  // compile cleanly in both the bad and good form.
  JulietGenerator Gen(40);
  Driver Drv;
  for (const TestCase &Test : Gen.generate()) {
    Driver::Compiled Bad = Drv.compile(Test.Bad, Test.Name + "_bad.c");
    EXPECT_TRUE(Bad->ok()) << Test.Name << "\n" << Bad->errors() << Test.Bad;
    Driver::Compiled Good = Drv.compile(Test.Good, Test.Name + "_good.c");
    EXPECT_TRUE(Good->ok()) << Test.Name << "\n" << Good->errors() << Test.Good;
  }
}

TEST(Juliet, KccPassesSampledPairs) {
  JulietGenerator Gen(120);
  std::unique_ptr<Tool> Kcc = Tool::create(ToolKind::Kcc);
  for (const TestCase &Test : Gen.generate()) {
    PairVerdict V = runOnPair(*Kcc, Test);
    EXPECT_TRUE(V.FlaggedBad) << Test.Name << " bad not flagged";
    EXPECT_FALSE(V.FlaggedGood) << Test.Name << " control flagged";
  }
}

TEST(Juliet, ScoringAggregatesPerClass) {
  JulietGenerator Gen(200);
  std::unique_ptr<Tool> Kcc = Tool::create(ToolKind::Kcc);
  JulietScores Scores = scoreJuliet(*Kcc, Gen.generate());
  ASSERT_EQ(Scores.PerClass.size(), 6u);
  for (const ClassScore &Score : Scores.PerClass) {
    EXPECT_GT(Score.Tests, 0u);
    EXPECT_EQ(Score.Passed, Score.Tests)
        << julietClassName(Score.Class) << " below 100%";
    EXPECT_EQ(Score.FalsePositives, 0u);
  }
  EXPECT_GT(Scores.MeanMicrosPerTest, 0.0);
}

TEST(Juliet, MemGrindMissesStackButNotHeap) {
  // The class-defining mechanism difference, on generated tests.
  JulietGenerator Gen(1);
  std::unique_ptr<Tool> MG = Tool::create(ToolKind::MemGrind);
  std::vector<TestCase> Tests =
      Gen.generateClass(JulietClass::InvalidPointer);
  // Subkind 0 = stack overflow write, subkind 2 = heap overflow write
  // (variant 0, parameter 0).
  const TestCase &Stack = Tests[0];
  const TestCase &Heap = Tests[2];
  EXPECT_FALSE(MG->analyze(Stack.Bad, "s.c").flagged())
      << "stack smash invisible to the heap shadow";
  EXPECT_TRUE(MG->analyze(Heap.Bad, "h.c").flagged());
}

TEST(Juliet, Figure2TableRenders) {
  JulietGenerator Gen(400);
  std::unique_ptr<Tool> Kcc = Tool::create(ToolKind::Kcc);
  std::vector<std::pair<std::string, JulietScores>> Rows;
  Rows.emplace_back("kcc", scoreJuliet(*Kcc, Gen.generate()));
  std::string Table = renderFigure2(Rows);
  EXPECT_NE(Table.find("Use of invalid pointer"), std::string::npos);
  EXPECT_NE(Table.find("Integer overflow"), std::string::npos);
  EXPECT_NE(Table.find("kcc"), std::string::npos);
  EXPECT_NE(Table.find("100.0"), std::string::npos);
}

} // namespace
