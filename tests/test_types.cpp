//===- tests/test_types.cpp - Type system unit tests --------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "types/Type.h"

#include <gtest/gtest.h>

using namespace cundef;

namespace {

class TypesTest : public ::testing::Test {
protected:
  TypeContext Types{TargetConfig::lp64()};
};

TEST_F(TypesTest, BuiltinSizesLp64) {
  EXPECT_EQ(Types.sizeOf(Types.charTy()), 1u);
  EXPECT_EQ(Types.sizeOf(Types.shortTy()), 2u);
  EXPECT_EQ(Types.sizeOf(Types.intTy()), 4u);
  EXPECT_EQ(Types.sizeOf(Types.longTy()), 8u);
  EXPECT_EQ(Types.sizeOf(Types.longLongTy()), 8u);
  EXPECT_EQ(Types.sizeOf(Types.floatTy()), 4u);
  EXPECT_EQ(Types.sizeOf(Types.doubleTy()), 8u);
  EXPECT_EQ(Types.sizeOf(Types.getPointer(QualType(Types.intTy()))), 8u);
}

TEST_F(TypesTest, Ilp32Pointers) {
  TypeContext T32{TargetConfig::ilp32()};
  EXPECT_EQ(T32.sizeOf(T32.getPointer(QualType(T32.intTy()))), 4u);
  EXPECT_EQ(T32.sizeOf(T32.longTy()), 4u);
  EXPECT_EQ(T32.sizeTy(), T32.uintTy());
}

TEST_F(TypesTest, PointerTypesAreUniqued) {
  const Type *P1 = Types.getPointer(QualType(Types.intTy()));
  const Type *P2 = Types.getPointer(QualType(Types.intTy()));
  EXPECT_EQ(P1, P2);
  const Type *PC =
      Types.getPointer(QualType(Types.intTy(), QualConst));
  EXPECT_NE(P1, PC) << "pointee qualifiers distinguish pointer types";
}

TEST_F(TypesTest, ArrayTypesAreUniqued) {
  const Type *A1 = Types.getArray(QualType(Types.intTy()), 4, true);
  const Type *A2 = Types.getArray(QualType(Types.intTy()), 4, true);
  const Type *A3 = Types.getArray(QualType(Types.intTy()), 5, true);
  EXPECT_EQ(A1, A2);
  EXPECT_NE(A1, A3);
  EXPECT_EQ(Types.sizeOf(A1), 16u);
}

TEST_F(TypesTest, IntegerPromotions) {
  EXPECT_EQ(Types.promote(QualType(Types.charTy())).Ty, Types.intTy());
  EXPECT_EQ(Types.promote(QualType(Types.shortTy())).Ty, Types.intTy());
  EXPECT_EQ(Types.promote(QualType(Types.ushortTy())).Ty, Types.intTy());
  EXPECT_EQ(Types.promote(QualType(Types.boolTy())).Ty, Types.intTy());
  EXPECT_EQ(Types.promote(QualType(Types.intTy())).Ty, Types.intTy());
  EXPECT_EQ(Types.promote(QualType(Types.uintTy())).Ty, Types.uintTy());
  EXPECT_EQ(Types.promote(QualType(Types.longTy())).Ty, Types.longTy());
}

TEST_F(TypesTest, UsualArithmeticConversions) {
  auto Common = [&](const Type *A, const Type *B) {
    return Types.usualArithmetic(QualType(A), QualType(B)).Ty;
  };
  EXPECT_EQ(Common(Types.intTy(), Types.intTy()), Types.intTy());
  EXPECT_EQ(Common(Types.charTy(), Types.charTy()), Types.intTy());
  EXPECT_EQ(Common(Types.intTy(), Types.uintTy()), Types.uintTy());
  EXPECT_EQ(Common(Types.intTy(), Types.longTy()), Types.longTy());
  EXPECT_EQ(Common(Types.uintTy(), Types.longTy()), Types.longTy())
      << "long can represent every unsigned int value on LP64";
  EXPECT_EQ(Common(Types.ulongTy(), Types.longTy()), Types.ulongTy());
  EXPECT_EQ(Common(Types.intTy(), Types.doubleTy()), Types.doubleTy());
  EXPECT_EQ(Common(Types.floatTy(), Types.intTy()), Types.floatTy());
  EXPECT_EQ(Common(Types.floatTy(), Types.doubleTy()), Types.doubleTy());
}

TEST_F(TypesTest, LimitsOfTypes) {
  EXPECT_EQ(Types.maxValueOf(Types.intTy()), 2147483647u);
  EXPECT_EQ(Types.minValueOf(Types.intTy()), -2147483648ll);
  EXPECT_EQ(Types.maxValueOf(Types.ucharTy()), 255u);
  EXPECT_EQ(Types.minValueOf(Types.uintTy()), 0);
  EXPECT_EQ(Types.maxValueOf(Types.boolTy()), 1u);
}

TEST_F(TypesTest, CharSignednessIsConfigurable) {
  EXPECT_TRUE(Types.charTy()->isSignedInteger(Types.config()));
  TargetConfig Unsigned = TargetConfig::lp64();
  Unsigned.CharIsSigned = false;
  TypeContext TU(Unsigned);
  EXPECT_TRUE(TU.charTy()->isUnsignedInteger(TU.config()));
}

TEST_F(TypesTest, RecordLayout) {
  Type *Rec = Types.createRecord(false, NoSymbol);
  std::vector<FieldInfo> Fields(3);
  Fields[0].Ty = QualType(Types.charTy());
  Fields[1].Ty = QualType(Types.doubleTy());
  Fields[2].Ty = QualType(Types.shortTy());
  Types.completeRecord(Rec, Fields);
  EXPECT_EQ(Rec->Record->Fields[0].Offset, 0u);
  EXPECT_EQ(Rec->Record->Fields[1].Offset, 8u) << "double aligns to 8";
  EXPECT_EQ(Rec->Record->Fields[2].Offset, 16u);
  EXPECT_EQ(Rec->Record->Size, 24u) << "tail padding to alignment";
  EXPECT_EQ(Rec->Record->Align, 8u);
}

TEST_F(TypesTest, UnionLayout) {
  Type *Un = Types.createRecord(true, NoSymbol);
  std::vector<FieldInfo> Fields(2);
  Fields[0].Ty = QualType(Types.intTy());
  Fields[1].Ty = QualType(Types.doubleTy());
  Types.completeRecord(Un, Fields);
  EXPECT_EQ(Un->Record->Fields[0].Offset, 0u);
  EXPECT_EQ(Un->Record->Fields[1].Offset, 0u);
  EXPECT_EQ(Un->Record->Size, 8u);
}

TEST_F(TypesTest, Compatibility) {
  QualType Int{Types.intTy()};
  QualType IntPtr{Types.getPointer(Int)};
  QualType ConstIntPtr{
      Types.getPointer(QualType(Types.intTy(), QualConst))};
  EXPECT_TRUE(Types.compatible(Int, Int));
  EXPECT_TRUE(Types.compatible(IntPtr, IntPtr));
  EXPECT_FALSE(Types.compatible(IntPtr, ConstIntPtr))
      << "pointee qualification differs";
  EXPECT_FALSE(Types.compatible(Int, QualType(Types.longTy())));

  const Type *F1 = Types.getFunction(Int, {Int}, false, false);
  const Type *F2 = Types.getFunction(Int, {Int}, false, false);
  const Type *F3 = Types.getFunction(Int, {Int, Int}, false, false);
  const Type *FNoProto = Types.getFunction(Int, {}, false, true);
  EXPECT_TRUE(Types.compatible(QualType(F1), QualType(F2)));
  EXPECT_FALSE(Types.compatible(QualType(F1), QualType(F3)));
  EXPECT_TRUE(Types.compatible(QualType(F1), QualType(FNoProto)))
      << "unprototyped declarations are compatible via return type";
}

TEST_F(TypesTest, DistinctRecordsIncompatible) {
  Type *A = Types.createRecord(false, NoSymbol);
  Type *B = Types.createRecord(false, NoSymbol);
  Types.completeRecord(A, {});
  Types.completeRecord(B, {});
  EXPECT_FALSE(Types.compatible(QualType(A), QualType(B)));
}

TEST_F(TypesTest, TypeNames) {
  StringInterner Interner;
  EXPECT_EQ(Types.typeName(QualType(Types.intTy(), QualConst), Interner),
            "const int");
  EXPECT_EQ(Types.typeName(QualType(Types.getPointer(QualType(
                               Types.charTy(), QualConst))),
                           Interner),
            "const char *");
}

TEST_F(TypesTest, WideIntConfig) {
  TypeContext TW{TargetConfig::wideInt()};
  EXPECT_EQ(TW.sizeOf(TW.intTy()), 8u);
  EXPECT_EQ(TW.bitWidthOf(TW.intTy()), 64u);
}

} // namespace
