//===- tests/test_catalog_coverage.cpp - The coverage contract --------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The catalog coverage harness (suites/CatalogCoverage.h) turns the
// 221-row catalog into a tested contract: one triggering program per
// expressible row, graded covered / wrong-code / missed /
// inexpressible. These tests pin down the generator's invariants, the
// grading, the determinism that makes the committed docs column safe,
// the rendered surfaces, and the engine's memory-reclaim contract
// under the coverage-sized (200+-program) batch.
//
//===----------------------------------------------------------------------===//

#include "driver/Engine.h"
#include "suites/CatalogCoverage.h"
#include "suites/DesktopSuite.h"
#include "ub/Catalog.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

using namespace cundef;

namespace {

/// One report per process: the quick sweep costs ~0.5 s, and every
/// test that only *reads* the verdicts can share it.
const CoverageReport &quickReport() {
  static const CoverageReport R = runCatalogCoverage(coverageRequest(true));
  return R;
}

/// The committed floor: tests/suites/coverage_baseline.txt, found
/// relative to the compiled-in desktop-suite directory (its sibling).
unsigned baselineCovered() {
  std::string Path =
      std::string(desktopSuiteDir()) + "/../coverage_baseline.txt";
  std::ifstream In(Path);
  unsigned Floor = 0;
  In >> Floor;
  EXPECT_TRUE(In.good() || In.eof()) << "cannot read " << Path;
  EXPECT_GT(Floor, 0u) << Path << " must hold the covered-count floor";
  return Floor;
}

} // namespace

//===----------------------------------------------------------------------===//
// Generator invariants.
//===----------------------------------------------------------------------===//

TEST(CatalogCoverage, OneCasePerCatalogRow) {
  const std::vector<CoverageCase> &Cases = catalogCoverageCases();
  CatalogStats Stats = catalogStats();
  ASSERT_EQ(Cases.size(), Stats.Total);
  ASSERT_EQ(Stats.Total, 221u);
  for (size_t I = 0; I < Cases.size(); ++I) {
    const CoverageCase &Case = Cases[I];
    EXPECT_EQ(Case.Id, I + 1) << "cases must be ordered by id";
    ASSERT_NE(catalogEntry(Case.Id), nullptr);
    for (uint16_t Code : Case.ExpectedCodes) {
      EXPECT_GE(Code, 1u) << "row " << Case.Id;
      EXPECT_LE(Code, Stats.Total) << "row " << Case.Id;
    }
    if (!Case.expressible()) {
      // An inexpressible row must say why; the docs column prints it.
      EXPECT_STRNE(Case.Note, "") << "row " << Case.Id;
      EXPECT_TRUE(Case.ExpectedCodes.empty()) << "row " << Case.Id;
    }
  }
}

TEST(CatalogCoverage, EveryRaisedKindHasATriggeringProgram) {
  // The generator convention (docs/ARCHITECTURE.md): a catalog row that
  // mirrors a UbKind our evaluator actually raises must carry a
  // triggering program expecting its own code. Kinds the evaluator
  // cannot yet raise are the explicit exception list; shrinking it is
  // progress, growing it is a regression.
  // The flow-sensitive static layer raised 30/36/49 and the zero-size
  // allocation fix raised 38; only the genuinely untriggering kinds
  // remain.
  const std::set<uint16_t> NeverRaised = {31, 39};
  const std::vector<CoverageCase> &Cases = catalogCoverageCases();
  for (uint16_t Id = 1; Id <= 51; ++Id) {
    const CoverageCase &Case = Cases[Id - 1];
    if (NeverRaised.count(Id))
      continue;
    EXPECT_TRUE(Case.expressible()) << "kind " << Id;
    ASSERT_FALSE(Case.ExpectedCodes.empty()) << "kind " << Id;
    EXPECT_EQ(Case.ExpectedCodes.front(), Id) << "kind " << Id;
  }
}

//===----------------------------------------------------------------------===//
// Grading.
//===----------------------------------------------------------------------===//

TEST(CatalogCoverage, ReportPartitionsTheCatalog) {
  const CoverageReport &R = quickReport();
  ASSERT_EQ(R.Entries.size(), 221u);
  EXPECT_EQ(R.total(), 221u);
  unsigned Covered = 0, Wrong = 0, Missed = 0, Inexpr = 0;
  unsigned Static = 0, Dynamic = 0, Both = 0;
  for (const EntryCoverage &E : R.Entries) {
    const CoverageCase &Case = catalogCoverageCases()[E.Id - 1];
    switch (E.Verdict) {
    case CoverageVerdict::Covered: {
      ++Covered;
      // A covered row's reported code must be one it answers to.
      bool Listed = false;
      for (uint16_t Code : Case.ExpectedCodes)
        Listed |= Code == E.ReportedCode;
      EXPECT_TRUE(Listed) << "row " << E.Id << " reported "
                          << E.ReportedCode;
      // ...and carry its layer attribution.
      EXPECT_NE(E.Source, CoverageSource::None) << "row " << E.Id;
      Static += E.Source == CoverageSource::Static;
      Dynamic += E.Source == CoverageSource::Dynamic;
      Both += E.Source == CoverageSource::Both;
      break;
    }
    case CoverageVerdict::WrongCode:
      ++Wrong;
      EXPECT_NE(E.ReportedCode, 0u) << "row " << E.Id;
      EXPECT_EQ(E.Source, CoverageSource::None) << "row " << E.Id;
      break;
    case CoverageVerdict::Missed:
      ++Missed;
      EXPECT_EQ(E.ReportedCode, 0u) << "row " << E.Id;
      EXPECT_TRUE(Case.expressible()) << "row " << E.Id;
      EXPECT_EQ(E.Source, CoverageSource::None) << "row " << E.Id;
      break;
    case CoverageVerdict::Inexpressible:
      ++Inexpr;
      EXPECT_FALSE(Case.expressible()) << "row " << E.Id;
      EXPECT_EQ(E.Source, CoverageSource::None) << "row " << E.Id;
      break;
    }
  }
  EXPECT_EQ(R.Covered, Covered);
  EXPECT_EQ(R.WrongCode, Wrong);
  EXPECT_EQ(R.Missed, Missed);
  EXPECT_EQ(R.Inexpressible, Inexpr);
  EXPECT_EQ(R.CoveredStatic, Static);
  EXPECT_EQ(R.CoveredDynamic, Dynamic);
  EXPECT_EQ(R.CoveredBoth, Both);
  EXPECT_EQ(R.CoveredStatic + R.CoveredDynamic + R.CoveredBoth, R.Covered);
}

TEST(CatalogCoverage, CoveredCountMeetsCommittedBaseline) {
  // The same floor cmake/CheckCoverageBaseline.cmake gates through the
  // CLI; detector work may move it up, never down.
  EXPECT_GE(quickReport().Covered, baselineCovered());
}

TEST(CatalogCoverage, NoWrongCodeRows) {
  // Every row the evaluator flags must answer to its own catalog code;
  // a wrong-code row means a detector reports a neighbor's code.
  EXPECT_EQ(quickReport().WrongCode, 0u);
}

TEST(CatalogCoverage, VerdictsDeterministicAcrossSchedulers) {
  // The Coverage column of docs/UB_CATALOG.md is committed output kept
  // fresh by the catalog_docs_fresh ctest, so verdicts (and reported
  // codes) must not depend on the scheduler kind that produced them.
  AnalysisRequest Wave = AnalysisRequest::Builder()
                             .searchRuns(4)
                             .searchJobs(1)
                             .sched(SchedKind::Wave)
                             .buildOrDie();
  CoverageReport RW = runCatalogCoverage(Wave);
  const CoverageReport &RS = quickReport(); // stealing, auto workers
  ASSERT_EQ(RW.Entries.size(), RS.Entries.size());
  for (size_t I = 0; I < RW.Entries.size(); ++I) {
    EXPECT_EQ(RW.Entries[I].Verdict, RS.Entries[I].Verdict)
        << "row " << RW.Entries[I].Id;
    EXPECT_EQ(RW.Entries[I].ReportedCode, RS.Entries[I].ReportedCode)
        << "row " << RW.Entries[I].Id;
  }
}

//===----------------------------------------------------------------------===//
// Rendered surfaces.
//===----------------------------------------------------------------------===//

TEST(CatalogCoverage, ReportEndsWithStableSummaryLine) {
  const CoverageReport &R = quickReport();
  std::string Text = renderCoverageReport(R);
  std::ostringstream Want;
  Want << "coverage: covered=" << R.Covered << " wrong-code=" << R.WrongCode
       << " missed=" << R.Missed << " inexpressible=" << R.Inexpressible
       << " total=" << R.total() << " static=" << R.CoveredStatic
       << " dynamic=" << R.CoveredDynamic << " both=" << R.CoveredBoth
       << "\n";
  ASSERT_GE(Text.size(), Want.str().size());
  EXPECT_EQ(Text.substr(Text.size() - Want.str().size()), Want.str())
      << "CheckCoverageBaseline.cmake parses this exact final line";
}

TEST(CatalogCoverage, MarkdownColumnCountsMatchReport) {
  const CoverageReport &R = quickReport();
  CatalogCoverageColumn Col = coverageColumn(R);
  ASSERT_EQ(Col.Cells.size(), R.Entries.size());
  EXPECT_EQ(Col.Covered, R.Covered);
  EXPECT_EQ(Col.WrongCode, R.WrongCode);
  EXPECT_EQ(Col.Missed, R.Missed);
  EXPECT_EQ(Col.Inexpressible, R.Inexpressible);
  std::string Doc = renderCatalogMarkdown(&Col);
  EXPECT_NE(Doc.find("| Coverage |"), std::string::npos);
}

TEST(CatalogCoverage, JsonDocumentCarriesTheCounts) {
  const CoverageReport &R = quickReport();
  std::string Json = renderCoverageJson(R, "quick", R.WallMs);
  EXPECT_NE(Json.find("\"schema\": \"cundef-kcc-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"mode\": \"quick\""), std::string::npos);
  std::ostringstream Covered;
  Covered << "\"covered\": " << R.Covered;
  EXPECT_NE(Json.find(Covered.str()), std::string::npos);
  std::ostringstream Attr;
  Attr << "\"covered_static\": " << R.CoveredStatic
       << ",\n    \"covered_dynamic\": " << R.CoveredDynamic
       << ",\n    \"covered_both\": " << R.CoveredBoth;
  EXPECT_NE(Json.find(Attr.str()), std::string::npos);
  EXPECT_NE(Json.find("\"source\": \"static\""), std::string::npos);
  EXPECT_NE(Json.find("\"source\": \"dynamic\""), std::string::npos);
  EXPECT_NE(Json.find("\"total\": 221"), std::string::npos);
  EXPECT_NE(Json.find("\"exit_code\": 0"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The engine reclaim contract under a coverage-sized batch.
//===----------------------------------------------------------------------===//

TEST(CatalogCoverage, EngineReclaimsAfterLargeBatch) {
  // A long-lived service must hold memory proportional to its largest
  // batch, not its history: after drain() on the idle engine, every
  // per-job resource — pending handles, graveyard artifact refs,
  // per-program search arenas, snapshot-cache entries — is released.
  // The batch is every expressible coverage case plus both halves of
  // the desktop suite: comfortably past 200 programs, the scale the
  // coverage harness actually runs.
  std::vector<BatchInput> Programs;
  char Name[32];
  for (const CoverageCase &Case : catalogCoverageCases()) {
    if (!Case.expressible())
      continue;
    std::snprintf(Name, sizeof(Name), "cov_%03u.c", Case.Id);
    Programs.push_back({Case.Program, Name});
  }
  DesktopSuite Desktop = loadDesktopSuite();
  ASSERT_TRUE(Desktop.ok()) << Desktop.Error;
  for (const DesktopCase &Case : Desktop.Cases) {
    Programs.push_back({Case.Test.Bad, Case.Test.Name + "_bad.c"});
    Programs.push_back({Case.Test.Good, Case.Test.Name + "_good.c"});
  }
  ASSERT_GE(Programs.size(), 200u);

  AnalysisEngine Eng;
  std::vector<JobHandle> Jobs =
      Eng.submitBatch(coverageRequest(true), Programs);
  unsigned Flagged = 0;
  for (JobHandle &Job : Jobs)
    Flagged += Job.wait().anyUb();
  EXPECT_GT(Flagged, 100u) << "the batch should be mostly triggering "
                              "programs";

  // All outcomes are final, but the finished jobs' state is only
  // released by drain(); the graveyard must actually have something to
  // reclaim or this test gates nothing.
  EngineMemoryStats Before = Eng.memoryStats();
  EXPECT_EQ(Before.PendingJobs, 0u);
  EXPECT_GT(Before.GraveyardArtifacts, 100u);
  EXPECT_GT(Before.RetainedPrograms, 100u);

  Eng.drain();
  EngineMemoryStats After = Eng.memoryStats();
  EXPECT_EQ(After.PendingJobs, 0u);
  EXPECT_EQ(After.GraveyardArtifacts, 0u);
  EXPECT_EQ(After.RetainedPrograms, 0u);
  EXPECT_EQ(After.PendingSnapshots, 0u);
  // The index space is monotonic by design; only the states are freed.
  EXPECT_GE(After.ProgramSlots, Before.RetainedPrograms);

  // The engine stays serviceable after reclaim.
  JobHandle Again = Eng.submit(coverageRequest(true),
                               "int main(void) { return 1 / 0; }\n",
                               "again.c");
  EXPECT_TRUE(Again.wait().anyUb());
  Eng.shutdown();
}
