//===- tests/test_infra.cpp - Supporting infrastructure tests -----------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// AST printing, the order chooser, configuration rendering, the tool
// comparison renderer, header registry, and cross-target execution.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ast/AstPrinter.h"
#include "core/EvalOrder.h"
#include "core/Machine.h"
#include "driver/ToolRunner.h"
#include "libc/Headers.h"

using namespace cundef;

namespace {

TEST(AstPrinter, StableExpressionDump) {
  Driver Drv;
  Driver::Compiled C =
      Drv.compile("int v = (1 + 2) * 3;\nint main(void) { return 0; }",
                  "p.c");
  ASSERT_TRUE(C->ok());
  AstPrinter Printer(C->ast());
  ASSERT_FALSE(C->ast().TU.Globals.empty());
  std::string Dump = Printer.print(C->ast().TU.Globals[0]->Init);
  EXPECT_EQ(Dump, "(binary *\n"
                  "  (binary +\n"
                  "    (int 1)\n"
                  "    (int 2)\n"
                  "  )\n"
                  "  (int 3)\n"
                  ")\n");
}

TEST(AstPrinter, FunctionAndStatementDump) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(
      "int main(void) { int x = 1; if (x) { return x; } return 0; }",
      "p.c");
  ASSERT_TRUE(C->ok());
  AstPrinter Printer(C->ast());
  std::string Dump = Printer.print(C->ast().TU.Functions[0]);
  EXPECT_NE(Dump.find("(function main"), std::string::npos);
  EXPECT_NE(Dump.find("(if"), std::string::npos);
  EXPECT_NE(Dump.find("(return"), std::string::npos);
}

TEST(EvalOrder, PoliciesProducePermutations) {
  OrderChooser Ltr(EvalOrderKind::LeftToRight, 1);
  EXPECT_EQ(Ltr.choose(3), (std::vector<uint8_t>{0, 1, 2}));
  OrderChooser Rtl(EvalOrderKind::RightToLeft, 1);
  EXPECT_EQ(Rtl.choose(3), (std::vector<uint8_t>{2, 1, 0}));
  OrderChooser Rand(EvalOrderKind::Random, 7);
  std::vector<uint8_t> P = Rand.choose(4);
  std::vector<uint8_t> Sorted = P;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(Sorted, (std::vector<uint8_t>{0, 1, 2, 3}))
      << "a permutation, whatever the order";
}

TEST(EvalOrder, ReplayOverridesPolicy) {
  OrderChooser Chooser(EvalOrderKind::LeftToRight, 1);
  Chooser.setReplay({1, 0});
  EXPECT_EQ(Chooser.choose(2), (std::vector<uint8_t>{1, 0}));
  EXPECT_EQ(Chooser.choose(2), (std::vector<uint8_t>{0, 1}));
  // Replay exhausted: the policy takes over.
  EXPECT_EQ(Chooser.choose(2), (std::vector<uint8_t>{0, 1}));
  ASSERT_EQ(Chooser.trace().size(), 3u);
  EXPECT_EQ(Chooser.trace()[0].first, 1);
  EXPECT_EQ(Chooser.trace()[0].second, 2);
}

TEST(EvalOrder, SingleOperandHasNoAlternative) {
  OrderChooser Chooser(EvalOrderKind::LeftToRight, 1);
  Chooser.choose(1);
  ASSERT_EQ(Chooser.trace().size(), 1u);
  EXPECT_EQ(Chooser.trace()[0].second, 1) << "arity 1: nothing to search";
}

TEST(Configuration, DescribeCellsNamesPaperCells) {
  Driver Drv;
  Driver::Compiled C =
      Drv.compile("int g = 1;\nint main(void) { return 0; }", "c.c");
  ASSERT_TRUE(C->ok());
  UbSink Sink;
  MachineOptions Opts;
  Machine M(C->ast(), Opts, Sink);
  M.run();
  std::string Cells = M.config().describeCells();
  for (const char *Cell : {"<T>", "<k>", "<genv>", "<mem>",
                           "<locsWrittenTo>", "<notWritable>", "<control>",
                           "<env>", "<callStack>"})
    EXPECT_NE(Cells.find(Cell), std::string::npos) << Cell;
}

TEST(ToolRunner, ComparisonRendersAllTools) {
  std::vector<ComparisonRow> Rows =
      compareTools("int main(void) { int d = 0; return 1 / d; }", "c.c");
  ASSERT_EQ(Rows.size(), 4u);
  std::string Table = renderComparison(Rows);
  for (const char *Name : {"kcc", "MemGrind", "PtrCheck", "ValueAnalysis"})
    EXPECT_NE(Table.find(Name), std::string::npos);
  EXPECT_NE(Table.find("UNDEFINED"), std::string::npos);
}

TEST(Headers, RegistryServesStandardHeaders) {
  HeaderRegistry Registry;
  registerStandardHeaders(Registry);
  for (const char *Name : {"stdio.h", "stdlib.h", "string.h", "stddef.h",
                           "limits.h", "stdbool.h"})
    EXPECT_NE(Registry.find(Name), nullptr) << Name;
  EXPECT_EQ(Registry.find("threads.h"), nullptr);
}

TEST(Headers, UserHeadersResolve) {
  Driver Drv;
  Drv.headers().add("config.h", "#define ANSWER 42\n");
  DriverOutcome O = Drv.runSource("#include <config.h>\n"
                                  "int main(void) { return ANSWER - 42; }",
                                  "t.c");
  EXPECT_TRUE(O.CompileOk) << O.CompileErrors;
  EXPECT_EQ(O.ExitCode, 0);
}

TEST(Targets, Ilp32ExecutesWithNarrowTypes) {
  Driver Drv(
      AnalysisRequest::Builder().target(TargetConfig::ilp32()).buildOrDie());
  DriverOutcome O = Drv.runSource(
      "int main(void) {\n"
      "  return (int)sizeof(long) - 4 + (int)sizeof(int*) - 4;\n}\n",
      "t.c");
  EXPECT_TRUE(O.CompileOk) << O.CompileErrors;
  EXPECT_FALSE(O.anyUb()) << O.renderReport();
  EXPECT_EQ(O.ExitCode, 0);
}

TEST(Targets, Ilp32PointerBytesStillReassemble) {
  Driver Drv(
      AnalysisRequest::Builder().target(TargetConfig::ilp32()).buildOrDie());
  DriverOutcome O = Drv.runSource(
      "int main(void) {\n"
      "  int x = 9; int *p = &x; int *q;\n"
      "  unsigned char *from = (unsigned char*)&p;\n"
      "  unsigned char *to = (unsigned char*)&q;\n"
      "  unsigned i;\n"
      "  for (i = 0; i < sizeof p; i++) { to[i] = from[i]; }\n"
      "  return *q - 9;\n}\n",
      "t.c");
  EXPECT_FALSE(O.anyUb()) << O.renderReport();
  EXPECT_EQ(O.ExitCode, 0) << "4 fragment bytes suffice on ILP32";
}

TEST(Machine, StepCountAdvances) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(
      "int main(void) { int s = 0; int i;"
      " for (i = 0; i < 10; i++) { s += i; } return s - 45; }",
      "t.c");
  ASSERT_TRUE(C->ok());
  UbSink Sink;
  MachineOptions Opts;
  Machine M(C->ast(), Opts, Sink);
  EXPECT_EQ(M.run(), RunStatus::Completed);
  EXPECT_GT(M.config().Steps, 100u);
  EXPECT_EQ(M.config().ExitCode, 0);
}

TEST(Machine, StepLimitStopsRunawayPrograms) {
  Driver Drv;
  Driver::Compiled C =
      Drv.compile("int main(void) { while (1) { } return 0; }", "t.c");
  ASSERT_TRUE(C->ok());
  UbSink Sink;
  MachineOptions Opts;
  Opts.StepLimit = 5000;
  Machine M(C->ast(), Opts, Sink);
  EXPECT_EQ(M.run(), RunStatus::StepLimit)
      << "the guard() undecidability bound (paper 2.6)";
}

} // namespace
