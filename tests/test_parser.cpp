//===- tests/test_parser.cpp - Parser unit tests -----------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "libc/Headers.h"
#include "parse/Parser.h"
#include "text/Preprocessor.h"

#include <gtest/gtest.h>

using namespace cundef;

namespace {

struct ParseFixture {
  StringInterner Interner;
  DiagnosticEngine Diags;
  HeaderRegistry Headers;
  std::unique_ptr<AstContext> Ctx;

  ParseFixture() { registerStandardHeaders(Headers); }

  bool parse(const std::string &Source) {
    Preprocessor PP(Interner, Diags, Headers);
    std::vector<Token> Toks = PP.run(Source, "t.c");
    Ctx = std::make_unique<AstContext>(TargetConfig::lp64(), Interner);
    Parser P(std::move(Toks), *Ctx, Diags);
    return P.parseTranslationUnit();
  }

  const FunctionDecl *fn(const char *Name) {
    return Ctx->TU.findFunction(Interner.lookup(Name));
  }
  std::string typeOfGlobal(const char *Name) {
    for (const VarDecl *G : Ctx->TU.Globals)
      if (Interner.str(G->Name) == Name)
        return Ctx->Types.typeName(G->Ty, Interner);
    return "<not found>";
  }
};

TEST(Parser, SimpleFunction) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("int main(void) { return 0; }"));
  const FunctionDecl *Main = F.fn("main");
  ASSERT_NE(Main, nullptr);
  ASSERT_NE(Main->Body, nullptr);
  EXPECT_EQ(Main->Params.size(), 0u);
  EXPECT_FALSE(Main->FnTy->NoProto);
}

TEST(Parser, DeclaratorShapes) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("int *a;\n"
                      "int b[3];\n"
                      "int *c[4];\n"
                      "int (*d)[5];\n"
                      "int (*e)(int, char);\n"
                      "int (*f(void))(int);\n"
                      "const char *g;\n"
                      "char * const h = 0;\n"));
  EXPECT_EQ(F.typeOfGlobal("a"), "int *");
  EXPECT_EQ(F.typeOfGlobal("b"), "int [3]");
  EXPECT_EQ(F.typeOfGlobal("c"), "int * [4]");
  EXPECT_EQ(F.typeOfGlobal("d"), "int [5] *");
  EXPECT_EQ(F.typeOfGlobal("e"), "int (int, char) *");
  EXPECT_EQ(F.typeOfGlobal("g"), "const char *");
  EXPECT_EQ(F.typeOfGlobal("h"), "char * const ");
  const FunctionDecl *Fn = F.fn("f");
  ASSERT_NE(Fn, nullptr);
  EXPECT_EQ(F.Ctx->Types.typeName(QualType(Fn->FnTy), F.Interner),
            "int (int) * ()");
}

TEST(Parser, TypedefResolves) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("typedef unsigned long word;\n"
                      "word w;\n"
                      "typedef word *wptr;\n"
                      "wptr p;\n"));
  EXPECT_EQ(F.typeOfGlobal("w"), "unsigned long");
  EXPECT_EQ(F.typeOfGlobal("p"), "unsigned long *");
}

TEST(Parser, StructLayoutAndMembers) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("struct point { int x; int y; };\n"
                      "struct point origin;\n"));
  EXPECT_EQ(F.typeOfGlobal("origin"), "struct point");
  // Find the tag type through the global.
  for (const VarDecl *G : F.Ctx->TU.Globals) {
    if (F.Interner.str(G->Name) != "origin")
      continue;
    const RecordInfo *Rec = G->Ty.Ty->Record;
    ASSERT_NE(Rec, nullptr);
    ASSERT_EQ(Rec->Fields.size(), 2u);
    EXPECT_EQ(Rec->Fields[0].Offset, 0u);
    EXPECT_EQ(Rec->Fields[1].Offset, 4u);
    EXPECT_EQ(Rec->Size, 8u);
  }
}

TEST(Parser, StructPadding) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("struct padded { char c; int i; } p;"));
  for (const VarDecl *G : F.Ctx->TU.Globals) {
    const RecordInfo *Rec = G->Ty.Ty->Record;
    ASSERT_NE(Rec, nullptr);
    EXPECT_EQ(Rec->Fields[1].Offset, 4u) << "int aligned to 4";
    EXPECT_EQ(Rec->Size, 8u);
  }
}

TEST(Parser, UnionSharesOffsets) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("union u { char c; int i; double d; } v;"));
  for (const VarDecl *G : F.Ctx->TU.Globals) {
    const RecordInfo *Rec = G->Ty.Ty->Record;
    ASSERT_NE(Rec, nullptr);
    for (const FieldInfo &Field : Rec->Fields)
      EXPECT_EQ(Field.Offset, 0u);
    EXPECT_EQ(Rec->Size, 8u);
  }
}

TEST(Parser, EnumConstantsFold) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("enum color { RED, GREEN = 5, BLUE };\n"
                      "int x = BLUE;\n"));
  // BLUE folds to 6 in the initializer.
  for (const VarDecl *G : F.Ctx->TU.Globals) {
    if (F.Interner.str(G->Name) != "x")
      continue;
    const auto *Lit = dynCast<IntLitExpr>(G->Init);
    ASSERT_NE(Lit, nullptr);
    EXPECT_EQ(Lit->Value, 6u);
  }
}

TEST(Parser, PrecedenceInAst) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("int x = 1 + 2 * 3;"));
  for (const VarDecl *G : F.Ctx->TU.Globals) {
    AstPrinter Printer(*F.Ctx);
    std::string Dump = Printer.print(G->Init);
    // Multiplication binds tighter: (+ 1 (* 2 3)).
    size_t PlusPos = Dump.find("(binary +");
    size_t MulPos = Dump.find("(binary *");
    ASSERT_NE(PlusPos, std::string::npos);
    ASSERT_NE(MulPos, std::string::npos);
    EXPECT_LT(PlusPos, MulPos);
  }
}

TEST(Parser, AssignmentRightAssociative) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("int f(void) { int a; int b; a = b = 1; return a; }"));
}

TEST(Parser, TernaryAndComma) {
  ParseFixture F;
  ASSERT_TRUE(
      F.parse("int f(int c) { int a = c ? 1 : 2; return (a, c, a + 1); }"));
}

TEST(Parser, SizeofForms) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("int a = sizeof(int);\n"
                      "int b = sizeof(int*);\n"
                      "int f(void) { int x; return sizeof x + sizeof(x); }"));
  EXPECT_FALSE(F.Diags.hasErrors());
}

TEST(Parser, CastVsParenExpr) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("int f(int y) { int x = (int)y; return (y) + 1; }"));
}

TEST(Parser, ControlFlowStatements) {
  ParseFixture F;
  ASSERT_TRUE(F.parse(
      "int f(int n) {\n"
      "  int acc = 0; int i;\n"
      "  for (i = 0; i < n; i++) { acc += i; }\n"
      "  while (acc > 100) { acc -= 10; }\n"
      "  do { acc++; } while (acc < 0);\n"
      "  switch (acc) { case 0: acc = 1; break; default: break; }\n"
      "  if (acc) { return acc; } else { return -1; }\n"
      "}\n"));
}

TEST(Parser, GotoAndLabels) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("int f(void) {\n"
                      "  int x = 0;\n"
                      "top: x++;\n"
                      "  if (x < 3) { goto top; }\n"
                      "  return x;\n}\n"));
}

TEST(Parser, InitializerLists) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("int a[3] = {1, 2, 3};\n"
                      "struct p { int x; int y; };\n"
                      "struct p q = {4, 5};\n"
                      "int m[2][2] = {{1, 2}, {3, 4}};\n"
                      "char s[] = \"hi\";\n"));
  EXPECT_FALSE(F.Diags.hasErrors());
}

TEST(Parser, ErrorOnMissingSemicolon) {
  ParseFixture F;
  EXPECT_FALSE(F.parse("int main(void) { return 0 }"));
  EXPECT_TRUE(F.Diags.hasErrors());
}

TEST(Parser, ErrorOnUndeclaredIdentifier) {
  ParseFixture F;
  EXPECT_FALSE(F.parse("int main(void) { return nope; }"));
}

TEST(Parser, ShadowingInNestedScopes) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("int f(void) {\n"
                      "  int x = 1;\n"
                      "  { int x = 2; (void)x; }\n"
                      "  return x;\n}\n"));
}

TEST(Parser, FunctionPointerCall) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("static int g(int a) { return a; }\n"
                      "int main(void) {\n"
                      "  int (*fp)(int) = g;\n"
                      "  return fp(1) + (*fp)(2);\n}\n"));
}

TEST(Parser, NoProtoDeclaration) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("int old();\n"
                      "int main(void) { return 0; }\n"));
  const FunctionDecl *Old = F.fn("old");
  ASSERT_NE(Old, nullptr);
  EXPECT_TRUE(Old->FnTy->NoProto);
}

TEST(Parser, VariadicPrototype) {
  ParseFixture F;
  ASSERT_TRUE(F.parse("int logf2(const char *fmt, ...);\n"
                      "int main(void) { return 0; }\n"));
  const FunctionDecl *Fn = F.fn("logf2");
  ASSERT_NE(Fn, nullptr);
  EXPECT_TRUE(Fn->FnTy->Variadic);
}

} // namespace
