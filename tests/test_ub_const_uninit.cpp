//===- tests/test_ub_const_uninit.cpp - const and indeterminate values --------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The notWritable cell (paper 4.2.2) including the strchr laundering
// example, string literals, and unknown(N) bytes (4.3.3).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cundef;

namespace {

TEST(UbConst, StrchrLaunderingCaught) {
  // The paper's flagship const example: strchr removes const, but the
  // memory itself was defined const, so the write is undefined.
  expectUb("#include <string.h>\n"
           "int main(void) {\n"
           "  const char p[] = \"hello\";\n"
           "  char *q = strchr(p, p[0]);\n"
           "  *q = 'H';\n"
           "  return 0;\n}\n",
           UbKind::WriteThroughConstPointer);
}

TEST(UbConst, StrchrOnMutableArrayOk) {
  expectClean("#include <string.h>\n"
              "int main(void) {\n"
              "  char p[] = \"hello\";\n"
              "  char *q = strchr(p, 'l');\n"
              "  *q = 'L';\n"
              "  return p[2] == 'L' ? 0 : 1;\n}\n");
}

TEST(UbConst, CastAwayConstWrite) {
  // The const-defined object is visible at translation time, so the
  // flow-sensitive static layer reports the catalog's dedicated code
  // (49); the dynamic const-write rule (17) still backs it up.
  expectUb("int main(void) { const int c = 1; *(int*)&c = 2; return c; }",
           UbKind::ConstWriteStatic);
}

TEST(UbConst, ConstStructField) {
  expectUb("struct s { const int locked; int open; };\n"
           "int main(void) {\n"
           "  struct s v = {1, 2};\n"
           "  *(int*)&v.locked = 9;\n"
           "  return 0;\n}\n",
           UbKind::ConstWriteStatic);
}

TEST(UbConst, MutableFieldOfConstlessStructOk) {
  expectClean("struct s { const int locked; int open; };\n"
              "int main(void) {\n"
              "  struct s v = {1, 2};\n"
              "  v.open = 5;\n"
              "  return v.open - 5;\n}\n");
}

TEST(UbConst, StringLiteralWrite) {
  expectUb("int main(void) { char *s = \"abc\"; s[1] = 'X'; return 0; }",
           UbKind::ModifyStringLiteral);
}

TEST(UbConst, StringLiteralReadOk) {
  expectClean("int main(void) { const char *s = \"abc\";"
              " return s[1] - 'b'; }");
}

TEST(UbConst, ArrayCopyOfLiteralIsWritable) {
  expectClean("int main(void) { char s[] = \"abc\"; s[1] = 'X';"
              " return s[1] - 'X'; }");
}

TEST(UbConst, InitializationOfConstIsAllowed) {
  expectClean("int main(void) { const int x = 3; return x - 3; }");
}

TEST(UbUninit, ReadUninitializedInt) {
  expectUb("int main(void) { int x; return x; }",
           UbKind::ReadIndeterminateValue);
}

TEST(UbUninit, ReadInitializedOk) {
  expectClean("int main(void) { int x = 7; return x - 7; }");
}

TEST(UbUninit, UninitUsedInArithmetic) {
  expectUb("int main(void) { int x; int y = 2 * x; return y; }",
           UbKind::ReadIndeterminateValue);
}

TEST(UbUninit, UninitBranch) {
  expectUb("int main(void) { int c; if (c) { return 1; } return 0; }",
           UbKind::ReadIndeterminateValue);
}

TEST(UbUninit, PartialStructInitZeroFillsRest) {
  // {1} zero-initializes .b (C11 6.7.9p19): reading it is defined.
  expectClean("struct p { int a; int b; };\n"
              "int main(void) { struct p v = {1}; return v.b; }");
}

TEST(UbUninit, WhollyUninitStructFieldRead) {
  expectUb("struct p { int a; int b; };\n"
           "int main(void) { struct p v; return v.b; }",
           UbKind::ReadIndeterminateValue);
}

TEST(UbUninit, StructCopyCarriesUnknownBytes) {
  // Copying a partially-uninitialized struct is fine; using the copied
  // indeterminate member is not (paper 4.3.3).
  expectClean("struct p { int a; int b; };\n"
              "int main(void) {\n"
              "  struct p v; v.a = 1;\n"
              "  struct p w = v;\n"
              "  return w.a - 1;\n}\n");
  expectUb("struct p { int a; int b; };\n"
           "int main(void) {\n"
           "  struct p v; v.a = 1;\n"
           "  struct p w = v;\n"
           "  return w.b;\n}\n",
           UbKind::ReadIndeterminateValue);
}

TEST(UbUninit, UnsignedCharMayCarryUnknownBytes) {
  // The unsigned-character exemption (paper 4.3.3): copying
  // uninitialized bytes through unsigned char lvalues is allowed...
  expectClean("int main(void) {\n"
              "  int a; int b = 5;\n"
              "  unsigned char *src = (unsigned char*)&a;\n"
              "  unsigned char *dst = (unsigned char*)&b;\n"
              "  unsigned long i;\n"
              "  for (i = 0; i < sizeof(int); i++) { dst[i] = src[i]; }\n"
              "  return 0;\n}\n");
}

TEST(UbUninit, ArithmeticOnCarriedUnknownByteIsUb) {
  // ...but computing with such a byte is undefined.
  expectUb("int main(void) {\n"
           "  int a;\n"
           "  unsigned char *p = (unsigned char*)&a;\n"
           "  return p[0] + 1;\n}\n",
           UbKind::ReadIndeterminateValue);
}

TEST(UbUninit, PointerBytesReassemble) {
  // The paper's 4.3.2 example: copying every byte of a pointer through
  // unsigned char reconstructs a usable pointer.
  expectClean("int main(void) {\n"
              "  int x = 5, y = 6;\n"
              "  int *p = &x; int *q = &y;\n"
              "  unsigned char *a = (unsigned char*)&p;\n"
              "  unsigned char *b = (unsigned char*)&q;\n"
              "  unsigned long i;\n"
              "  for (i = 0; i < sizeof p; i++) { a[i] = b[i]; }\n"
              "  return *p - 6;\n}\n");
}

TEST(UbUninit, PartialPointerCopyIsUnusable) {
  expectUb("int main(void) {\n"
           "  int x = 5, y = 6;\n"
           "  int *p = &x; int *q = &y;\n"
           "  unsigned char *a = (unsigned char*)&p;\n"
           "  unsigned char *b = (unsigned char*)&q;\n"
           "  unsigned long i;\n"
           "  for (i = 0; i + 1 < sizeof p; i++) { a[i] = b[i]; }\n"
           "  return *p;\n}\n",
           UbKind::ReadIndeterminateValue);
}

TEST(UbUninit, StaticStorageIsZeroInitialized) {
  expectClean("int global_zero;\n"
              "int main(void) { static int s; return global_zero + s; }");
}

TEST(UbUninit, HeapIsUninitialized) {
  expectUb("#include <stdlib.h>\n"
           "int main(void) {\n"
           "  int *p = (int*)malloc(sizeof(int));\n"
           "  if (!p) { return 1; }\n"
           "  return *p;\n}\n",
           UbKind::ReadIndeterminateValue);
}

TEST(UbUninit, CallocIsZeroed) {
  expectClean("#include <stdlib.h>\n"
              "int main(void) {\n"
              "  int *p = (int*)calloc(4, sizeof(int));\n"
              "  if (!p) { return 1; }\n"
              "  int r = p[3];\n"
              "  free(p);\n"
              "  return r;\n}\n");
}

} // namespace
