//===- tests/test_static_ub.cpp - Static undefinedness checks -----------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The statically detectable behaviors (paper section 5.2.1: "92 are
// statically detectable"): each implemented check fires on its trigger
// and stays quiet on the control.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cundef;

namespace {

/// Compiles and returns the static findings only.
std::vector<UbReport> staticFindings(const std::string &Source) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(Source, "t.c");
  return C->staticUb();
}

bool hasStatic(const std::string &Source, UbKind Kind) {
  for (const UbReport &R : staticFindings(Source))
    if (R.Kind == Kind)
      return true;
  return false;
}

TEST(StaticUb, ZeroLengthArray) {
  EXPECT_TRUE(hasStatic("int main(void) { int a[0]; return 0; }",
                        UbKind::ArraySizeNotPositive));
  EXPECT_FALSE(hasStatic("int main(void) { int a[1]; a[0] = 0;"
                         " return a[0]; }",
                         UbKind::ArraySizeNotPositive));
}

TEST(StaticUb, NegativeLengthArray) {
  EXPECT_TRUE(hasStatic("int main(void) { int a[-4]; return 0; }",
                        UbKind::ArraySizeNotPositive));
}

TEST(StaticUb, ZeroLengthArrayInGlobal) {
  EXPECT_TRUE(hasStatic("int g[0];\nint main(void) { return 0; }",
                        UbKind::ArraySizeNotPositive));
}

TEST(StaticUb, QualifiedFunctionType) {
  EXPECT_TRUE(hasStatic("typedef int fn(void);\nconst fn f;\n"
                        "int main(void) { return 0; }",
                        UbKind::FunctionTypeQualified));
  EXPECT_FALSE(hasStatic("typedef int fn(void);\nfn f;\n"
                         "int main(void) { return 0; }",
                         UbKind::FunctionTypeQualified));
}

TEST(StaticUb, VoidValueUse) {
  EXPECT_TRUE(hasStatic("int main(void) { if (0) { (int)(void)5; }"
                        " return 0; }",
                        UbKind::UseOfVoidExpressionValue));
  EXPECT_FALSE(hasStatic("int main(void) { if (0) { (void)5; }"
                         " return 0; }",
                         UbKind::UseOfVoidExpressionValue));
}

TEST(StaticUb, AssignToConst) {
  EXPECT_TRUE(hasStatic("int main(void) { const int c = 1; c = 2;"
                        " return 0; }",
                        UbKind::AssignToConstLvalue));
  EXPECT_TRUE(hasStatic("int main(void) { const int c = 1; c += 1;"
                        " return 0; }",
                        UbKind::AssignToConstLvalue));
  EXPECT_TRUE(hasStatic("int main(void) { const int c = 1;"
                        " int *p = (int*)&c; c++; return *p; }",
                        UbKind::AssignToConstLvalue));
}

TEST(StaticUb, IncompatibleRedeclaration) {
  EXPECT_TRUE(hasStatic("int f(int);\nint f(void);\n"
                        "int main(void) { return 0; }",
                        UbKind::IncompatibleRedeclaration));
  EXPECT_FALSE(hasStatic("int f(int);\nint f(int);\n"
                         "int main(void) { return 0; }",
                         UbKind::IncompatibleRedeclaration));
}

TEST(StaticUb, IdentifiersNotDistinct) {
  std::string Long(70, 'q');
  EXPECT_TRUE(hasStatic("int " + Long + "1 = 1;\nint " + Long + "2 = 2;\n"
                        "int main(void) { return 0; }",
                        UbKind::IdentifiersNotDistinct));
  EXPECT_FALSE(hasStatic("int q1 = 1;\nint q2 = 2;\n"
                         "int main(void) { return 0; }",
                         UbKind::IdentifiersNotDistinct));
}

TEST(StaticUb, MainSignature) {
  EXPECT_TRUE(hasStatic("char main(void) { return 'x'; }",
                        UbKind::MainWrongSignature));
  EXPECT_TRUE(hasStatic("int main(int only) { return only * 0; }",
                        UbKind::MainWrongSignature));
  EXPECT_FALSE(hasStatic("int main(void) { return 0; }",
                         UbKind::MainWrongSignature));
}

TEST(StaticUb, ConstantNullDeref) {
  EXPECT_TRUE(hasStatic("int main(void) { if (0) { *(char*)0; }"
                        " return 0; }",
                        UbKind::DerefNullConstant));
  EXPECT_FALSE(hasStatic("int main(void) { char c = 1;"
                         " if (0) { *(&c); } return 0; }",
                         UbKind::DerefNullConstant));
}

TEST(StaticUb, ConstantDivByZero) {
  EXPECT_TRUE(hasStatic("int main(void) { if (0) { 5 / 0; } return 0; }",
                        UbKind::DivByZeroConstant));
  EXPECT_TRUE(hasStatic("int main(void) { if (0) { 5 % 0; } return 0; }",
                        UbKind::DivByZeroConstant));
  EXPECT_FALSE(hasStatic("int main(void) { return 5 / 5 - 1; }",
                         UbKind::DivByZeroConstant));
}

TEST(StaticUb, IncompleteObjectType) {
  EXPECT_TRUE(hasStatic("struct nope;\n"
                        "int main(void) { struct nope n; (void)&n;"
                        " return 0; }",
                        UbKind::IncompleteTypeObject));
}

TEST(StaticUb, ReturnValueFromVoidFunction) {
  EXPECT_TRUE(hasStatic("static void f(void) { return 1; }\n"
                        "int main(void) { f(); return 0; }",
                        UbKind::ReturnVoidValue));
  EXPECT_FALSE(hasStatic("static void f(void) { return; }\n"
                         "int main(void) { f(); return 0; }",
                         UbKind::ReturnVoidValue));
}

TEST(StaticUb, ArityMismatchAgainstPrototype) {
  EXPECT_TRUE(hasStatic("static int two(int a, int b) { return a + b; }\n"
                        "int main(void) { return two(1); }",
                        UbKind::CallArityMismatch));
}

TEST(StaticUb, FindingsAreMarkedStatic) {
  for (const UbReport &R :
       staticFindings("int main(void) { int a[0]; return 0; }"))
    EXPECT_TRUE(R.StaticFinding);
}

TEST(StaticUb, UnreachabilityDoesNotMatter) {
  // The paper's 5.2.1 point: statically undefined behaviors are flagged
  // regardless of control flow around them.
  EXPECT_TRUE(hasStatic("int main(void) {\n"
                        "  return 0;\n"
                        "  { int dead[0]; }\n"
                        "}\n",
                        UbKind::ArraySizeNotPositive));
}

} // namespace
