//===- tests/test_result_cache.cpp - Content-addressed search results ---------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The result-cache contract, pinned from four sides (mirroring
// tests/test_translation_cache.cpp one rung up the pipeline):
//
//  * **Content addressing is total.** Everything a search's observable
//    outcome depends on is in the key: the frontend content address
//    (source, name, target, static checks, header registry) plus the
//    MachineOptions and SearchOptions fingerprints. Wall-clock-only
//    knobs (worker count, snapshot budget) are deliberately excluded —
//    a 4-job and an 8-job search share one entry.
//  * **Singleflight.** N concurrent identical submissions run exactly
//    one search; joiners complete with the owner's outcome. Under
//    -DCUNDEF_TSAN=ON this suite runs instrumented (ctest -L tsan).
//  * **The cache is invisible in the results.** Byte-identical outcomes
//    with the cache on, off, hot, or cold — the honest counters
//    (BatchStats::ResultCacheHits/Misses) are the only observable
//    difference.
//  * **Cross-program snapshot sharing is sound and silent.** With the
//    result cache off, duplicate programs that search concurrently
//    share choice-point snapshots through the scheduler's share index
//    (SchedulerStats::SnapshotSharedHits) without changing any
//    committed outcome.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "driver/Driver.h"
#include "driver/ResultCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace cundef;

namespace {

const char *PaperSource = "int d = 5;\n"
                          "int setDenom(int x) { return d = x; }\n"
                          "int main(void) { return (10 / d) + setDenom(0); }\n";

/// UB-free with several flippable choice points, so searches fan out
/// and capture snapshots (the cross-program sharing tests need real
/// donors, not a first-run UB stop).
const char *CleanFanout = "int f(int a, int b) { return a * 2 + b; }\n"
                          "int main(void) {\n"
                          "  int r = f(1, 2) + f(3, 4);\n"
                          "  int s = f(r, 5) + f(2, r);\n"
                          "  int t = f(s, r) + f(r, s);\n"
                          "  return (r + s + t) & 0x7f;\n"
                          "}\n";

/// Full observable-outcome equality: every deterministic field. Wall
/// times legitimately differ; cache flags are the point under test and
/// are asserted separately.
void expectIdentical(const DriverOutcome &A, const DriverOutcome &B,
                     const std::string &Tag) {
  EXPECT_EQ(A.CompileOk, B.CompileOk) << Tag;
  EXPECT_EQ(A.CompileErrors, B.CompileErrors) << Tag;
  EXPECT_EQ(A.Status, B.Status) << Tag;
  EXPECT_EQ(A.ExitCode, B.ExitCode) << Tag;
  EXPECT_EQ(A.Output, B.Output) << Tag;
  EXPECT_EQ(A.SearchWitness, B.SearchWitness) << Tag;
  EXPECT_EQ(A.OrdersExplored, B.OrdersExplored) << Tag;
  EXPECT_EQ(A.OrdersDeduped, B.OrdersDeduped) << Tag;
  EXPECT_EQ(A.SearchTruncated, B.SearchTruncated) << Tag;
  EXPECT_EQ(A.SearchDropped, B.SearchDropped) << Tag;
  EXPECT_EQ(A.renderReport(), B.renderReport()) << Tag;
  ASSERT_EQ(A.DynamicUb.size(), B.DynamicUb.size()) << Tag;
  for (size_t I = 0; I < A.DynamicUb.size(); ++I) {
    EXPECT_EQ(A.DynamicUb[I].Kind, B.DynamicUb[I].Kind) << Tag;
    EXPECT_EQ(A.DynamicUb[I].Loc.Line, B.DynamicUb[I].Loc.Line) << Tag;
  }
}

ResultKey rkey(uint64_t Source, uint64_t Context, uint64_t MachineFp = 1,
               uint64_t SearchFp = 1) {
  ResultKey K;
  K.Translation.SourceHash = Source;
  K.Translation.ContextHash = Context;
  K.MachineFp = MachineFp;
  K.SearchFp = SearchFp;
  return K;
}

/// A distinguishable outcome for cache unit tests (the cache never
/// looks inside what it stores).
CachedOutcome makeOutcome(int ExitCode) {
  auto O = std::make_shared<DriverOutcome>();
  O->CompileOk = true;
  O->ExitCode = ExitCode;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// ResultCache unit behavior.
//===----------------------------------------------------------------------===//

TEST(ResultCacheUnit, CapacityZeroDisables) {
  ResultCache Cache(0);
  EXPECT_FALSE(Cache.enabled());
  ResultCache::Claim C = Cache.begin(rkey(1, 1), nullptr);
  EXPECT_EQ(C.K, ResultCache::Claim::Kind::Disabled);
  Cache.publish(rkey(1, 1), makeOutcome(0));
  C = Cache.begin(rkey(1, 1), nullptr);
  EXPECT_EQ(C.K, ResultCache::Claim::Kind::Disabled);
  ResultCacheStats St = Cache.stats();
  EXPECT_EQ(St.Lookups, 0u);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(ResultCacheUnit, OwnerPublishesThenHitsShareOneOutcome) {
  ResultCache Cache(8, /*ShardCount=*/1);
  ResultCache::Claim First = Cache.begin(rkey(1, 1), nullptr);
  ASSERT_EQ(First.K, ResultCache::Claim::Kind::Owner);

  CachedOutcome Published = makeOutcome(7);
  Cache.publish(rkey(1, 1), Published);
  EXPECT_EQ(Cache.size(), 1u);

  ResultCache::Claim Again = Cache.begin(rkey(1, 1), nullptr);
  ASSERT_EQ(Again.K, ResultCache::Claim::Kind::Hit);
  EXPECT_EQ(Again.Ready.get(), Published.get()) << "hits share one artifact";

  // A different fingerprint is a different analysis: fresh claim.
  ResultCache::Claim Other = Cache.begin(rkey(1, 1, 2), nullptr);
  EXPECT_EQ(Other.K, ResultCache::Claim::Kind::Owner);

  ResultCacheStats St = Cache.stats();
  EXPECT_EQ(St.Lookups, 3u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 2u);
  EXPECT_EQ(St.InflightJoins, 0u);
}

TEST(ResultCacheUnit, AbandonReleasesTheClaim) {
  // An owner that finishes without a cacheable outcome (shutdown
  // mid-job) must release the key: waiters fire with null, and the
  // next submission starts fresh instead of joining a dead entry.
  ResultCache Cache(8, /*ShardCount=*/1);
  ASSERT_EQ(Cache.begin(rkey(1, 1), nullptr).K,
            ResultCache::Claim::Kind::Owner);
  bool WaiterFired = false;
  bool WaiterGotOutcome = true;
  ASSERT_EQ(Cache
                .begin(rkey(1, 1),
                       [&](CachedOutcome O) {
                         WaiterFired = true;
                         WaiterGotOutcome = O != nullptr;
                       })
                .K,
            ResultCache::Claim::Kind::Joined);

  Cache.publish(rkey(1, 1), nullptr);
  EXPECT_TRUE(WaiterFired);
  EXPECT_FALSE(WaiterGotOutcome) << "abandon fires waiters with null";
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.stats().Abandoned, 1u);
  EXPECT_EQ(Cache.begin(rkey(1, 1), nullptr).K,
            ResultCache::Claim::Kind::Owner)
      << "the key is claimable again";
}

TEST(ResultCacheUnit, EvictsLeastRecentlyUsed) {
  ResultCache Cache(2, /*ShardCount=*/1);
  for (uint64_t K = 1; K <= 2; ++K) {
    ASSERT_EQ(Cache.begin(rkey(K, 0), nullptr).K,
              ResultCache::Claim::Kind::Owner);
    Cache.publish(rkey(K, 0), makeOutcome(static_cast<int>(K)));
  }
  // Touch key 1: key 2 becomes the LRU victim.
  ASSERT_EQ(Cache.begin(rkey(1, 0), nullptr).K,
            ResultCache::Claim::Kind::Hit);
  ASSERT_EQ(Cache.begin(rkey(3, 0), nullptr).K,
            ResultCache::Claim::Kind::Owner);
  Cache.publish(rkey(3, 0), makeOutcome(3));

  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  EXPECT_EQ(Cache.begin(rkey(1, 0), nullptr).K, ResultCache::Claim::Kind::Hit)
      << "the recently-touched entry survived";
  EXPECT_EQ(Cache.begin(rkey(2, 0), nullptr).K,
            ResultCache::Claim::Kind::Owner)
      << "the LRU entry was evicted";
}

TEST(ResultCacheUnit, SingleflightJoinersRideTheOwner) {
  // N threads race one cold key: exactly one Owner; every joiner's
  // waiter fires exactly once with the owner's published outcome.
  ResultCache Cache(8);
  constexpr unsigned N = 8;
  std::atomic<unsigned> Owners{0};
  std::atomic<unsigned> WaitersFired{0};
  CachedOutcome Published = makeOutcome(42);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < N; ++T)
    Threads.emplace_back([&] {
      ResultCache::Claim C = Cache.begin(rkey(9, 9), [&](CachedOutcome O) {
        EXPECT_EQ(O.get(), Published.get());
        WaitersFired.fetch_add(1);
      });
      if (C.K == ResultCache::Claim::Kind::Owner) {
        Owners.fetch_add(1);
        // Linger so joiners really do arrive in flight on most runs.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        Cache.publish(rkey(9, 9), Published);
      } else if (C.K == ResultCache::Claim::Kind::Hit) {
        EXPECT_EQ(C.Ready.get(), Published.get());
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Owners.load(), 1u) << "exactly one search";
  ResultCacheStats St = Cache.stats();
  EXPECT_EQ(St.Lookups, N);
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Hits + St.InflightJoins, N - 1);
  EXPECT_EQ(WaitersFired.load(), St.InflightJoins);
}

TEST(ResultCacheUnit, InvalidateContextsExceptSweepsStaleEntries) {
  ResultCache Cache(16, /*ShardCount=*/1);
  for (uint64_t K = 1; K <= 3; ++K) {
    Cache.begin(rkey(K, /*Context=*/100), nullptr);
    Cache.publish(rkey(K, 100), makeOutcome(static_cast<int>(K)));
  }
  Cache.begin(rkey(4, /*Context=*/200), nullptr);
  Cache.publish(rkey(4, 200), makeOutcome(4));
  ASSERT_EQ(Cache.size(), 4u);

  // The live-header-edit sweep: everything not under the new context
  // digest is dropped; the current context's entries survive.
  Cache.invalidateContextsExcept(200);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Cache.stats().Evictions, 3u);
  EXPECT_EQ(Cache.begin(rkey(4, 200), nullptr).K,
            ResultCache::Claim::Kind::Hit);
  EXPECT_EQ(Cache.begin(rkey(1, 100), nullptr).K,
            ResultCache::Claim::Kind::Owner);
}

//===----------------------------------------------------------------------===//
// Configuration fingerprints: the non-frontend half of the address.
//===----------------------------------------------------------------------===//

TEST(ResultCacheFingerprints, MachineFingerprintCoversEveryField) {
  MachineOptions Base;
  const uint64_t Fp = machineOptionsFingerprint(Base);
  EXPECT_EQ(Fp, machineOptionsFingerprint(MachineOptions()))
      << "stable across equal configurations";

  MachineOptions M = Base;
  M.Strict = !M.Strict;
  EXPECT_NE(Fp, machineOptionsFingerprint(M));
  M = Base;
  M.StopAtFirstUb = !M.StopAtFirstUb;
  EXPECT_NE(Fp, machineOptionsFingerprint(M));
  M = Base;
  M.StepLimit += 1;
  EXPECT_NE(Fp, machineOptionsFingerprint(M));
  M = Base;
  M.Order = EvalOrderKind::RightToLeft;
  EXPECT_NE(Fp, machineOptionsFingerprint(M));
  M = Base;
  M.Seed += 1;
  EXPECT_NE(Fp, machineOptionsFingerprint(M));
  M = Base;
  M.Style = RuleStyle::PrecedenceChain;
  EXPECT_NE(Fp, machineOptionsFingerprint(M));
}

TEST(ResultCacheFingerprints, SearchFingerprintExcludesWallClockKnobs) {
  SearchOptions Base;
  const uint64_t Fp = searchOptionsFingerprint(Base);

  // Outcome-affecting fields re-key.
  SearchOptions S = Base;
  S.MaxRuns += 1;
  EXPECT_NE(Fp, searchOptionsFingerprint(S));
  S = Base;
  S.Dedup = !S.Dedup;
  EXPECT_NE(Fp, searchOptionsFingerprint(S));
  S = Base;
  S.UseSnapshots = !S.UseSnapshots;
  EXPECT_NE(Fp, searchOptionsFingerprint(S));
  S = Base;
  S.Sched = SchedKind::Wave;
  EXPECT_NE(Fp, searchOptionsFingerprint(S))
      << "cached outcomes replay per-program counters verbatim, so the "
         "scheduler stays in the key";

  // Wall-clock-only knobs share one entry by design: a 4-job and an
  // 8-job search of the same program are the same analysis.
  S = Base;
  S.Jobs = Base.Jobs + 7;
  EXPECT_EQ(Fp, searchOptionsFingerprint(S));
  S = Base;
  S.SnapshotBudget = Base.SnapshotBudget / 2;
  EXPECT_EQ(Fp, searchOptionsFingerprint(S));
  S = Base;
  S.FullRehash = !S.FullRehash;
  EXPECT_EQ(Fp, searchOptionsFingerprint(S));
  S = Base;
  S.CollectRuns = !S.CollectRuns;
  EXPECT_EQ(Fp, searchOptionsFingerprint(S));
}

//===----------------------------------------------------------------------===//
// Engine integration.
//===----------------------------------------------------------------------===//

TEST(ResultCacheEngine, ConcurrentIdenticalSubmitsSearchOnce) {
  // The ISSUE's stress shape: 8 threads submit one identical
  // (source, config) to a live engine. Exactly one search runs;
  // every outcome is byte-identical to a cache-off engine's. TSan-
  // instrumented under -DCUNDEF_TSAN=ON (submit(), the cache, the
  // waiter fan-out, and the shared outcome all cross threads here).
  AnalysisRequest Req = AnalysisRequest::Builder().searchRuns(64).buildOrDie();

  EngineConfig Off;
  Off.ResultCacheEntries = 0;
  AnalysisEngine Reference(Off);
  DriverOutcome Ref = Reference.submit(Req, PaperSource, "stress.c").take();
  EXPECT_TRUE(Ref.anyUb());
  EXPECT_FALSE(Ref.ResultCacheHit);

  AnalysisEngine Eng;
  constexpr unsigned N = 8;
  std::vector<JobHandle> Handles(N);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < N; ++T)
    Threads.emplace_back(
        [&, T] { Handles[T] = Eng.submit(Req, PaperSource, "stress.c"); });
  for (std::thread &T : Threads)
    T.join();
  Eng.drain();

  unsigned CacheHits = 0;
  for (unsigned T = 0; T < N; ++T) {
    DriverOutcome O = Handles[T].take();
    expectIdentical(Ref, O, "thread " + std::to_string(T));
    CacheHits += O.ResultCacheHit ? 1 : 0;
  }
  ResultCacheStats St = Eng.resultCacheStats();
  EXPECT_EQ(St.Misses, 1u) << "exactly one search";
  EXPECT_EQ(St.Hits + St.InflightJoins, N - 1);
  EXPECT_EQ(CacheHits, N - 1) << "every other job reported the hit";
}

TEST(ResultCacheEngine, HeaderEditInvalidatesResidentOutcomes) {
  // The satellite regression: editing the header registry on a live
  // engine must (a) never serve a stale outcome — guaranteed by
  // content addressing, the registry fingerprint is in the key — and
  // (b) sweep the old context's resident entries so the LRU does not
  // carry dead weight across the edit.
  AnalysisRequest Req = AnalysisRequest::Builder().buildOrDie();
  const std::string Source = "#include <cfg.h>\n"
                             "int main(void) { return V; }\n";
  AnalysisEngine Eng;
  Eng.headers().add("cfg.h", "#define V 7\n");
  DriverOutcome First = Eng.submit(Req, Source, "cfg.c").take();
  ASSERT_TRUE(First.CompileOk) << First.CompileErrors;
  EXPECT_EQ(First.ExitCode, 7);
  EXPECT_FALSE(First.ResultCacheHit);

  // Unchanged registry: the outcome is replayed, no search runs.
  DriverOutcome Warm = Eng.submit(Req, Source, "cfg.c").take();
  EXPECT_EQ(Warm.ExitCode, 7);
  EXPECT_TRUE(Warm.ResultCacheHit);

  // Edited header: fresh search under the new key, and the V=7 entry
  // is swept (visible as an eviction, not a lookup miss-then-linger).
  const uint64_t EvictionsBefore = Eng.resultCacheStats().Evictions;
  Eng.headers().add("cfg.h", "#define V 9\n");
  DriverOutcome Second = Eng.submit(Req, Source, "cfg.c").take();
  EXPECT_EQ(Second.ExitCode, 9) << "stale outcome served after header edit";
  EXPECT_FALSE(Second.ResultCacheHit);
  EXPECT_GT(Eng.resultCacheStats().Evictions, EvictionsBefore)
      << "the old context's entries were swept";

  // The new context is warm in turn.
  DriverOutcome Third = Eng.submit(Req, Source, "cfg.c").take();
  EXPECT_EQ(Third.ExitCode, 9);
  EXPECT_TRUE(Third.ResultCacheHit);
}

TEST(ResultCacheEngine, CacheIsInvisibleInBatchResults) {
  // Duplicate-heavy batch through a cache-enabled driver vs per-file
  // fresh cache-off engines: outcomes byte-identical; the honest
  // counters are the only observable difference (Hits + Misses ==
  // Programs, duplicates resolved without a search).
  AnalysisRequest Req =
      AnalysisRequest::Builder().searchRuns(64).searchJobs(2).buildOrDie();
  std::vector<BatchInput> Inputs;
  for (int I = 0; I < 4; ++I)
    Inputs.push_back({PaperSource, "dup.c"});
  Inputs.push_back({CleanFanout, "clean.c"});
  for (int I = 0; I < 3; ++I)
    Inputs.push_back({"int main(void) { return 0; }\n", "triv.c"});

  Driver Batched(Req);
  BatchResult Batch = Batched.runBatch(Inputs);
  ASSERT_EQ(Batch.Outcomes.size(), Inputs.size());
  EXPECT_EQ(Batch.Stats.ResultCacheMisses, 3u) << "three distinct analyses";
  EXPECT_EQ(Batch.Stats.ResultCacheHits, Inputs.size() - 3);

  EngineConfig Off;
  Off.ResultCacheEntries = 0;
  for (size_t I = 0; I < Inputs.size(); ++I) {
    AnalysisEngine Fresh(Off);
    DriverOutcome Ref =
        Fresh.submit(Req, Inputs[I].Source, Inputs[I].Name).take();
    EXPECT_FALSE(Ref.ResultCacheHit);
    expectIdentical(Ref, Batch.Outcomes[I],
                    Inputs[I].Name + " #" + std::to_string(I));
  }
}

TEST(ResultCacheEngine, OptOutRequestsBypassTheCache) {
  // --result-cache=off is per-request (it rides the serve wire), so an
  // opted-out request on a cache-enabled engine must neither read nor
  // write entries.
  AnalysisRequest Off =
      AnalysisRequest::Builder().resultCache(false).buildOrDie();
  AnalysisEngine Eng;
  DriverOutcome A = Eng.submit(Off, PaperSource, "p.c").take();
  DriverOutcome B = Eng.submit(Off, PaperSource, "p.c").take();
  EXPECT_FALSE(A.ResultCacheHit);
  EXPECT_FALSE(B.ResultCacheHit);
  expectIdentical(A, B, "opted-out duplicates");
  ResultCacheStats St = Eng.resultCacheStats();
  EXPECT_EQ(St.Lookups, 0u) << "the cache never saw the opted-out requests";

  // An opted-in duplicate afterwards starts cold: nothing was written.
  AnalysisRequest On = AnalysisRequest::Builder().buildOrDie();
  DriverOutcome C = Eng.submit(On, PaperSource, "p.c").take();
  EXPECT_FALSE(C.ResultCacheHit);
  expectIdentical(A, C, "first opted-in submission");
}

//===----------------------------------------------------------------------===//
// Cross-program snapshot sharing.
//===----------------------------------------------------------------------===//

TEST(SnapshotSharing, DuplicateProgramsShareDonorsWithoutChangingResults) {
  // With the result cache off (the A/B mode), duplicate programs all
  // search — and fingerprint-equal machine configurations over the
  // same shared artifact share choice-point snapshots engine-wide:
  // later programs fork from the first program's donors instead of
  // capturing their own. Observable only in SnapshotSharedHits and
  // wall clock; every committed outcome stays byte-identical to a
  // solo run's.
  AnalysisRequest Req = AnalysisRequest::Builder()
                            .searchRuns(32)
                            .searchJobs(2)
                            .resultCache(false)
                            .buildOrDie();

  EngineConfig Solo;
  Solo.ResultCacheEntries = 0;
  AnalysisEngine Reference(Solo);
  DriverOutcome Ref = Reference.submit(Req, CleanFanout, "share.c").take();
  ASSERT_TRUE(Ref.CompileOk) << Ref.CompileErrors;
  EXPECT_FALSE(Ref.anyUb());

  AnalysisEngine Eng;
  std::vector<BatchInput> Inputs;
  for (int I = 0; I < 6; ++I)
    Inputs.push_back({CleanFanout, "share.c"});
  std::vector<JobHandle> Handles = Eng.submitBatch(Req, Inputs);
  for (size_t I = 0; I < Handles.size(); ++I) {
    DriverOutcome O = Handles[I].take();
    EXPECT_FALSE(O.ResultCacheHit) << "the A/B mode really searched";
    expectIdentical(Ref, O, "duplicate #" + std::to_string(I));
  }
  EXPECT_GT(Eng.poolStats().SnapshotSharedHits, 0u)
      << "duplicate programs forked from shared donors";
}

TEST(SnapshotSharing, SharedHitsStayZeroAcrossDistinctPrograms) {
  // The soundness gate in the other direction: programs that are not
  // fingerprint-and-artifact equal must never share (the share key is
  // the artifact pointer + machine fingerprint + decision-trace
  // digest + configuration digest).
  AnalysisRequest Req = AnalysisRequest::Builder()
                            .searchRuns(32)
                            .searchJobs(2)
                            .resultCache(false)
                            .buildOrDie();
  AnalysisEngine Eng;
  std::vector<BatchInput> Inputs = {
      {CleanFanout, "a.c"},
      {"int g(int x) { return x + 1; }\n"
       "int main(void) { return g(1) + g(2) + g(3); }\n",
       "b.c"},
      {PaperSource, "c.c"},
  };
  std::vector<JobHandle> Handles = Eng.submitBatch(Req, Inputs);
  for (JobHandle &H : Handles)
    H.take();
  EXPECT_EQ(Eng.poolStats().SnapshotSharedHits, 0u)
      << "distinct programs must not alias donors";
}
