//===- tests/test_ub_sequence.cpp - Sequencing undefinedness -----------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The locsWrittenTo cell (paper 4.2.1): unsequenced writes/reads of the
// same scalar, sequence points, and evaluation-order search.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cundef;

namespace {

TEST(UbSequence, TwoWritesInOneExpression) {
  expectUb("int main(void) { int x = 0; return (x = 1) + (x = 2); }",
           UbKind::UnsequencedSideEffect);
}

TEST(UbSequence, WriteAndReadSearchFindsIt) {
  expectUb("int main(void) { int x = 1; return x + x++; }",
           UbKind::UnsequencedSideEffect, /*SearchRuns=*/8);
}

TEST(UbSequence, DoubleIncrementSameVariable) {
  expectUb("int main(void) { int i = 0; return i++ + i++; }",
           UbKind::UnsequencedSideEffect);
}

TEST(UbSequence, IEqualsIPlusPlus) {
  expectUb("int main(void) { int i = 0; i = i++; return i; }",
           UbKind::UnsequencedSideEffect, /*SearchRuns=*/8);
}

TEST(UbSequence, SelfAssignPlusOneIsDefined) {
  // x = x + 1 is fine: the write is sequenced after both value
  // computations (C11 6.5.16p3).
  expectClean("int main(void) { int x = 4; x = x + 1; return x - 5; }");
}

TEST(UbSequence, CompoundAssignReadIsSequenced) {
  expectClean("int main(void) { int x = 4; x += x; return x - 8; }");
}

TEST(UbSequence, SeparateStatementsAreSequenced) {
  expectClean("int main(void) { int x = 0; x = 1; x = 2;"
              " return x + x - 4; }");
}

TEST(UbSequence, CommaOperatorSequences) {
  expectClean("int main(void) { int x = 0;"
              " return (x = 1, x = 2, x - 2); }");
}

TEST(UbSequence, LogicalAndSequences) {
  expectClean("int main(void) { int x = 0;"
              " return ((x = 1) && (x = 2)) ? x - 2 : 1; }");
}

TEST(UbSequence, LogicalOrShortCircuits) {
  // The rhs write never happens when the lhs is true.
  expectClean("int main(void) { int x = 0;"
              " return ((x = 1) || (x = 2)) ? x - 1 : 1; }");
}

TEST(UbSequence, ConditionalSequencesArms) {
  expectClean("int main(void) { int x = 0;"
              " return (x = 1) ? (x = 2) - 2 : (x = 3); }");
}

TEST(UbSequence, DistinctObjectsNoConflict) {
  expectClean("int main(void) { int x = 0; int y = 0;"
              " return (x = 1) + (y = 2) - 3; }");
}

TEST(UbSequence, CallArgumentsUnsequenced) {
  expectUb("static int f(int a, int b) { return a + b; }\n"
           "int main(void) { int x = 0; return f(x = 1, x = 2); }",
           UbKind::UnsequencedSideEffect);
}

TEST(UbSequence, CallsThemselvesAreSequenced) {
  // Two calls in one expression are indeterminately sequenced, not
  // unsequenced: the writes inside them do not conflict (C11 6.5.2.2p10).
  expectClean("int g;\n"
              "static int set(int v) { g = v; return v; }\n"
              "int main(void) { return set(1) + set(2) - 3; }");
}

TEST(UbSequence, DifferentArrayElementsOk) {
  expectClean("int main(void) { int a[2];"
              " return (a[0] = 1) + (a[1] = 2) - 3; }");
}

TEST(UbSequence, SameArrayElementConflicts) {
  expectUb("int main(void) { int a[2];"
           " return (a[0] = 1) + (a[0] = 2); }",
           UbKind::UnsequencedSideEffect);
}

TEST(UbSequence, ForLoopHeadersAreSequenced) {
  expectClean("int main(void) {\n"
              "  int acc = 0; int i;\n"
              "  for (i = 0; i < 4; i++) { acc += i; }\n"
              "  return acc - 6;\n}\n");
}

TEST(UbSequence, OrderSearchRequiredForOneDirection) {
  // Left-to-right alone misses this; the searched right-to-left order
  // writes d before the division (paper 2.5.2).
  expectUb("int d = 5;\n"
           "int setDenom(int x) { return d = x; }\n"
           "int main(void) { return (10 / d) + setDenom(0); }",
           UbKind::DivisionByZero, /*SearchRuns=*/16);
}

} // namespace
