//===- tests/test_translation_cache.cpp - Content-addressed frontend ----------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The frontend refactor's contract, pinned from four sides:
//
//  * **Content addressing is total.** Everything that can change what
//    the frontend produces — source bytes, unit name, TargetConfig,
//    the static-checks flag, the header registry — changes the
//    TranslationKey. The header-registry half is the regression that
//    motivated it: a registry mutated after the engine started must
//    invalidate cached artifacts, never silently serve stale ASTs.
//  * **Singleflight.** N concurrent submissions of one translation
//    unit run exactly one frontend pass; everyone shares the immutable
//    artifact. Under -DCUNDEF_TSAN=ON this suite runs instrumented
//    (ctest -L tsan) — the stress tests below are its reason to exist.
//  * **The cache is invisible in the results.** Byte-identical
//    outcomes with the cache on, off, hot, or cold, for single submits
//    and duplicate-heavy batches.
//  * **One counter semantics across schedulers.** The wave reference
//    path reports the same OrdersExplored as the pooled steal path
//    (the documented +1 divergence is gone now that both run off the
//    submitting thread).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "frontend/Frontend.h"
#include "frontend/TranslationCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace cundef;

namespace {

const char *PaperSource = "int d = 5;\n"
                          "int setDenom(int x) { return d = x; }\n"
                          "int main(void) { return (10 / d) + setDenom(0); }\n";

/// Full observable-outcome equality (the engine suite's notion,
/// extended with the search/compile timing split left out — wall
/// times legitimately differ between runs).
void expectIdentical(const DriverOutcome &A, const DriverOutcome &B,
                     const std::string &Tag) {
  EXPECT_EQ(A.CompileOk, B.CompileOk) << Tag;
  EXPECT_EQ(A.CompileErrors, B.CompileErrors) << Tag;
  EXPECT_EQ(A.Status, B.Status) << Tag;
  EXPECT_EQ(A.ExitCode, B.ExitCode) << Tag;
  EXPECT_EQ(A.Output, B.Output) << Tag;
  EXPECT_EQ(A.SearchWitness, B.SearchWitness) << Tag;
  EXPECT_EQ(A.OrdersExplored, B.OrdersExplored) << Tag;
  EXPECT_EQ(A.OrdersDeduped, B.OrdersDeduped) << Tag;
  EXPECT_EQ(A.SearchTruncated, B.SearchTruncated) << Tag;
  EXPECT_EQ(A.SearchDropped, B.SearchDropped) << Tag;
  EXPECT_EQ(A.renderReport(), B.renderReport()) << Tag;
  ASSERT_EQ(A.DynamicUb.size(), B.DynamicUb.size()) << Tag;
  for (size_t I = 0; I < A.DynamicUb.size(); ++I) {
    EXPECT_EQ(A.DynamicUb[I].Kind, B.DynamicUb[I].Kind) << Tag;
    EXPECT_EQ(A.DynamicUb[I].Loc.Line, B.DynamicUb[I].Loc.Line) << Tag;
  }
}

/// A trivial artifact for cache unit tests (the cache never looks
/// inside what it stores).
CompiledProgramRef makeArtifact() {
  HeaderRegistry Headers;
  FrontendOptions FO;
  return compileTranslationUnit(FO, "int main(void) { return 0; }", "k.c",
                                Headers);
}

TranslationKey keyOf(uint64_t A, uint64_t B) {
  TranslationKey K;
  K.SourceHash = A;
  K.ContextHash = B;
  return K;
}

} // namespace

//===----------------------------------------------------------------------===//
// Content addressing.
//===----------------------------------------------------------------------===//

TEST(TranslationKey, CoversEveryFrontendInput) {
  HeaderRegistry Headers;
  FrontendOptions FO;
  const uint64_t HFp = Headers.fingerprint();
  TranslationKey Base = translationKeyFor(FO, "int x;", "a.c", HFp);

  // Source bytes.
  EXPECT_NE(Base, translationKeyFor(FO, "int y;", "a.c", HFp));
  // Unit name (diagnostics embed it, so artifacts must not be shared
  // across names).
  EXPECT_NE(Base, translationKeyFor(FO, "int x;", "b.c", HFp));
  // Name/source split (length-prefixed hashing: "ab"+"c" != "a"+"bc").
  EXPECT_NE(translationKeyFor(FO, "bc.c", "a", HFp),
            translationKeyFor(FO, "c.c", "ab", HFp));
  // Target configuration.
  FrontendOptions Wide = FO;
  Wide.Target = TargetConfig::wideInt();
  EXPECT_NE(Base, translationKeyFor(Wide, "int x;", "a.c", HFp));
  // Static-checks flag (the artifact embeds static findings).
  FrontendOptions NoStatic = FO;
  NoStatic.StaticChecks = false;
  EXPECT_NE(Base, translationKeyFor(NoStatic, "int x;", "a.c", HFp));
  // Header registry contents.
  EXPECT_NE(Base, translationKeyFor(FO, "int x;", "a.c", HFp ^ 1));
}

TEST(TranslationKey, HeaderRegistryFingerprintTracksContent) {
  HeaderRegistry A;
  const uint64_t Empty = A.fingerprint();
  A.add("cfg.h", "#define V 7\n");
  const uint64_t V7 = A.fingerprint();
  EXPECT_NE(Empty, V7);
  // Overwriting one header's body changes the digest...
  A.add("cfg.h", "#define V 9\n");
  const uint64_t V9 = A.fingerprint();
  EXPECT_NE(V7, V9);
  // ...and restoring it restores the digest (pure content address).
  A.add("cfg.h", "#define V 7\n");
  EXPECT_EQ(V7, A.fingerprint());
}

//===----------------------------------------------------------------------===//
// TranslationCache unit behavior.
//===----------------------------------------------------------------------===//

TEST(TranslationCache, CapacityZeroDisablesReuse) {
  TranslationCache Cache(0);
  EXPECT_FALSE(Cache.enabled());
  unsigned Compiles = 0;
  auto Compile = [&] {
    ++Compiles;
    return makeArtifact();
  };
  bool Hit = true;
  Cache.getOrCompile(keyOf(1, 1), Compile, &Hit);
  EXPECT_FALSE(Hit);
  Cache.getOrCompile(keyOf(1, 1), Compile, &Hit);
  EXPECT_FALSE(Hit);
  EXPECT_EQ(Compiles, 2u);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(TranslationCache, ServesSharedArtifactOnHit) {
  TranslationCache Cache(8, /*ShardCount=*/1);
  unsigned Compiles = 0;
  auto Compile = [&] {
    ++Compiles;
    return makeArtifact();
  };
  bool Hit = true;
  CompiledProgramRef First = Cache.getOrCompile(keyOf(1, 1), Compile, &Hit);
  EXPECT_FALSE(Hit);
  CompiledProgramRef Again = Cache.getOrCompile(keyOf(1, 1), Compile, &Hit);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(First.get(), Again.get()) << "hits share one artifact";
  EXPECT_EQ(Compiles, 1u);
  TranslationCacheStats St = Cache.stats();
  EXPECT_EQ(St.Lookups, 2u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_DOUBLE_EQ(St.hitRate(), 0.5);
}

TEST(TranslationCache, EvictsLeastRecentlyUsed) {
  TranslationCache Cache(2, /*ShardCount=*/1);
  unsigned Compiles = 0;
  auto Compile = [&] {
    ++Compiles;
    return makeArtifact();
  };
  Cache.getOrCompile(keyOf(1, 0), Compile);
  Cache.getOrCompile(keyOf(2, 0), Compile);
  // Touch key 1: key 2 becomes the LRU victim.
  bool Hit = false;
  Cache.getOrCompile(keyOf(1, 0), Compile, &Hit);
  EXPECT_TRUE(Hit);
  Cache.getOrCompile(keyOf(3, 0), Compile); // evicts key 2
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  Cache.getOrCompile(keyOf(1, 0), Compile, &Hit);
  EXPECT_TRUE(Hit) << "the recently-touched entry survived";
  Cache.getOrCompile(keyOf(2, 0), Compile, &Hit);
  EXPECT_FALSE(Hit) << "the LRU entry was evicted";
  EXPECT_EQ(Compiles, 4u); // keys 1, 2, 3, and 2 again
}

TEST(TranslationCache, SingleflightCompilesOncePerKey) {
  // N threads race one cold key: exactly one compile; everyone gets
  // the same artifact. (The compile sleeps a moment so joiners really
  // do arrive while it is in flight — on most runs at least one lands
  // as an InflightJoin, but the assertion only needs Hits + Joins.)
  TranslationCache Cache(8);
  std::atomic<unsigned> Compiles{0};
  auto Compile = [&] {
    Compiles.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return makeArtifact();
  };
  constexpr unsigned N = 8;
  std::vector<CompiledProgramRef> Got(N);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < N; ++T)
    Threads.emplace_back(
        [&, T] { Got[T] = Cache.getOrCompile(keyOf(7, 7), Compile); });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Compiles.load(), 1u);
  for (unsigned T = 1; T < N; ++T)
    EXPECT_EQ(Got[0].get(), Got[T].get()) << T;
  TranslationCacheStats St = Cache.stats();
  EXPECT_EQ(St.Lookups, N);
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Hits + St.InflightJoins, N - 1);
}

//===----------------------------------------------------------------------===//
// Engine integration.
//===----------------------------------------------------------------------===//

TEST(TranslationCacheEngine, CompileEntryPointSharesArtifacts) {
  // Driver::compile routes through the engine cache: recompiling the
  // same unit returns the *same* immutable artifact, and a different
  // unit does not.
  Driver Drv;
  Driver::Compiled A = Drv.compile(PaperSource, "p.c");
  Driver::Compiled B = Drv.compile(PaperSource, "p.c");
  ASSERT_TRUE(A->ok());
  EXPECT_EQ(A.get(), B.get());
  Driver::Compiled C = Drv.compile(PaperSource, "q.c");
  EXPECT_NE(A.get(), C.get()) << "unit name is part of the address";
}

TEST(TranslationCacheEngine, ConcurrentIdenticalSubmitsCompileOnce) {
  // The ISSUE's stress shape: 8 threads submit one identical source to
  // a live engine. Exactly one frontend pass may run; every outcome is
  // byte-identical to a cache-off engine's. TSan-instrumented under
  // -DCUNDEF_TSAN=ON (submit(), the cache, and the shared artifact all
  // cross threads here).
  AnalysisRequest Req = AnalysisRequest::Builder().searchRuns(64).buildOrDie();

  EngineConfig Off;
  Off.TranslationCacheEntries = 0;
  AnalysisEngine Reference(Off);
  DriverOutcome Ref =
      Reference.submit(Req, PaperSource, "stress.c").take();
  EXPECT_TRUE(Ref.anyUb());
  EXPECT_FALSE(Ref.TranslationCacheHit);

  AnalysisEngine Eng;
  constexpr unsigned N = 8;
  std::vector<JobHandle> Handles(N);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < N; ++T)
    Threads.emplace_back(
        [&, T] { Handles[T] = Eng.submit(Req, PaperSource, "stress.c"); });
  for (std::thread &T : Threads)
    T.join();
  Eng.drain();

  unsigned CacheHits = 0;
  for (unsigned T = 0; T < N; ++T) {
    DriverOutcome O = Handles[T].take();
    expectIdentical(Ref, O, "thread " + std::to_string(T));
    CacheHits += O.TranslationCacheHit ? 1 : 0;
  }
  TranslationCacheStats St = Eng.translationStats();
  EXPECT_EQ(St.Misses, 1u) << "exactly one frontend pass";
  EXPECT_EQ(St.Hits + St.InflightJoins, N - 1);
  EXPECT_EQ(CacheHits, N - 1) << "every other job reported the hit";
}

TEST(TranslationCacheEngine, HeaderChangeInvalidatesCachedArtifact) {
  // The satellite regression: mutating the header registry after the
  // engine started must invalidate cached artifacts. With the registry
  // fingerprint outside the key, the second submission would reuse the
  // V=7 artifact and exit 7.
  AnalysisRequest Req = AnalysisRequest::Builder().buildOrDie();
  const std::string Source = "#include <cfg.h>\n"
                             "int main(void) { return V; }\n";
  AnalysisEngine Eng;
  Eng.headers().add("cfg.h", "#define V 7\n");
  DriverOutcome First = Eng.submit(Req, Source, "cfg.c").take();
  ASSERT_TRUE(First.CompileOk) << First.CompileErrors;
  EXPECT_EQ(First.ExitCode, 7);
  EXPECT_FALSE(First.TranslationCacheHit);

  // Unchanged registry: the artifact is reused.
  DriverOutcome Warm = Eng.submit(Req, Source, "cfg.c").take();
  EXPECT_EQ(Warm.ExitCode, 7);
  EXPECT_TRUE(Warm.TranslationCacheHit);

  // Edited header: new fingerprint, new key, fresh compile.
  Eng.headers().add("cfg.h", "#define V 9\n");
  DriverOutcome Second = Eng.submit(Req, Source, "cfg.c").take();
  EXPECT_EQ(Second.ExitCode, 9) << "stale artifact served after header edit";
  EXPECT_FALSE(Second.TranslationCacheHit);
}

TEST(TranslationCacheEngine, DuplicateHeavyBatchMatchesFreshCompiles) {
  // Driver::runBatch over a duplicate-heavy input list (same file xN
  // plus distinct ones) vs per-file fresh cache-off drivers: outcomes
  // byte-identical, and the batch stats show the duplicates resolved
  // as cache hits.
  AnalysisRequest Req =
      AnalysisRequest::Builder().searchRuns(64).searchJobs(2).buildOrDie();
  std::vector<BatchInput> Inputs;
  for (int I = 0; I < 4; ++I)
    Inputs.push_back({PaperSource, "dup.c"});
  Inputs.push_back({"#include <stdio.h>\n"
                    "int main(void) { printf(\"once\\n\"); return 3; }\n",
                    "hello.c"});
  for (int I = 0; I < 3; ++I)
    Inputs.push_back({"int main(void) { return 0; }\n", "triv.c"});

  Driver Batched(Req);
  BatchResult Batch = Batched.runBatch(Inputs);
  ASSERT_EQ(Batch.Outcomes.size(), Inputs.size());
  EXPECT_EQ(Batch.Stats.TranslationMisses, 3u) << "three distinct units";
  EXPECT_EQ(Batch.Stats.TranslationHits, Inputs.size() - 3);

  EngineConfig Off;
  Off.TranslationCacheEntries = 0;
  for (size_t I = 0; I < Inputs.size(); ++I) {
    AnalysisEngine Fresh(Off);
    DriverOutcome Ref =
        Fresh.submit(Req, Inputs[I].Source, Inputs[I].Name).take();
    EXPECT_FALSE(Ref.TranslationCacheHit);
    expectIdentical(Ref, Batch.Outcomes[I],
                    Inputs[I].Name + " #" + std::to_string(I));
  }
}

//===----------------------------------------------------------------------===//
// One counter semantics across schedulers.
//===----------------------------------------------------------------------===//

TEST(TranslationCacheEngine, WaveAndStealAgreeOnOrdersExplored) {
  // The former wave-inline path double-counted the default order (the
  // documented "+1 divergence"). Both schedulers now report identical
  // outcomes including OrdersExplored, for every verdict shape: UB
  // found by search, UB in the default order, clean-exhaustive, and
  // clean-truncated.
  const std::vector<BatchInput> Corpus = {
      {PaperSource, "paper.c"},
      {"int main(void) { return 1 / 0; }\n", "default_ub.c"},
      {"int f(int x) { return x; }\n"
       "int main(void) { return f(1) + f(2); }\n",
       "clean.c"},
      {"static int g(int x) { return x + 1; }\n"
       "int main(void) { int t = 0; t += g(0) + g(1); t += g(2) + g(3);\n"
       "  t += g(4) + g(5); return t > 0 ? 0 : 1; }\n",
       "commute.c"},
  };
  for (unsigned Runs : {1u, 2u, 64u}) {
    AnalysisRequest Steal =
        AnalysisRequest::Builder().searchRuns(Runs).buildOrDie();
    AnalysisRequest Wave = AnalysisRequest::Builder()
                               .searchRuns(Runs)
                               .sched(SchedKind::Wave)
                               .buildOrDie();
    BatchResult RS = Driver(Steal).runBatch(Corpus);
    BatchResult RW = Driver(Wave).runBatch(Corpus);
    ASSERT_EQ(RS.Outcomes.size(), RW.Outcomes.size());
    for (size_t I = 0; I < RS.Outcomes.size(); ++I)
      expectIdentical(RS.Outcomes[I], RW.Outcomes[I],
                      Corpus[I].Name + " runs=" + std::to_string(Runs));
  }
}
