//===- tests/test_interp_defined.cpp - Defined-program semantics --------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// A miniature torture suite: the positive semantics must compute the
// right answers for defined programs (the paper's sister-paper goal);
// every test here must be clean AND produce the expected result.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cundef;

namespace {

TEST(InterpDefined, ArithmeticPrecedence) {
  expectClean("int main(void) { return 2 + 3 * 4 - 14; }");
  expectClean("int main(void) { return (2 + 3) * 4 - 20; }");
  expectClean("int main(void) { return 17 % 5 - 2; }");
  expectClean("int main(void) { return (1 << 4) - 16; }");
}

TEST(InterpDefined, ComparisonAndLogic) {
  expectClean("int main(void) { return (3 < 4 && 4 <= 4 && 5 > 4 &&"
              " 4 >= 4 && 3 != 4 && 4 == 4) ? 0 : 1; }");
  expectClean("int main(void) { int x = 0;"
              " return (x || 1) && !(x && 1) ? 0 : 1; }");
}

TEST(InterpDefined, MixedSignednessComparison) {
  // -1 converts to UINT_MAX when compared against unsigned (defined,
  // surprising, and a classic torture-test case).
  expectClean("int main(void) { unsigned u = 1;"
              " return (-1 < u) ? 1 : 0; }");
}

TEST(InterpDefined, WhileLoopSum) {
  expectClean("int main(void) {\n"
              "  int n = 10, sum = 0;\n"
              "  while (n) { sum += n; n--; }\n"
              "  return sum - 55;\n}\n");
}

TEST(InterpDefined, DoWhileRunsOnce) {
  expectClean("int main(void) {\n"
              "  int n = 0;\n"
              "  do { n++; } while (0);\n"
              "  return n - 1;\n}\n");
}

TEST(InterpDefined, ForWithBreakContinue) {
  expectClean("int main(void) {\n"
              "  int sum = 0; int i;\n"
              "  for (i = 0; i < 100; i++) {\n"
              "    if (i % 2) { continue; }\n"
              "    if (i > 8) { break; }\n"
              "    sum += i;\n"
              "  }\n"
              "  return sum - 20;\n}\n");
}

TEST(InterpDefined, NestedLoopsAndBreak) {
  expectClean("int main(void) {\n"
              "  int hits = 0; int i; int j;\n"
              "  for (i = 0; i < 3; i++) {\n"
              "    for (j = 0; j < 3; j++) {\n"
              "      if (j == 2) { break; }\n"
              "      hits++;\n"
              "    }\n"
              "  }\n"
              "  return hits - 6;\n}\n");
}

TEST(InterpDefined, SwitchFallthrough) {
  expectClean("int main(void) {\n"
              "  int r = 0;\n"
              "  switch (2) {\n"
              "  case 1: r += 1;\n"
              "  case 2: r += 2;\n"
              "  case 3: r += 3; break;\n"
              "  case 4: r += 100;\n"
              "  default: r += 1000;\n"
              "  }\n"
              "  return r - 5;\n}\n");
}

TEST(InterpDefined, SwitchDefault) {
  expectClean("int main(void) {\n"
              "  switch (42) { case 1: return 1; default: return 0; }\n"
              "}\n");
}

TEST(InterpDefined, SwitchNoMatchFallsThrough) {
  expectClean("int main(void) {\n"
              "  switch (9) { case 1: return 1; case 2: return 2; }\n"
              "  return 0;\n}\n");
}

TEST(InterpDefined, GotoForwardAndBackward) {
  expectClean("int main(void) {\n"
              "  int n = 0;\n"
              "  goto middle;\n"
              "top:\n"
              "  n += 10;\n"
              "  goto end;\n"
              "middle:\n"
              "  n += 1;\n"
              "  goto top;\n"
              "end:\n"
              "  return n - 11;\n}\n");
}

TEST(InterpDefined, TernaryChains) {
  expectClean("int main(void) {\n"
              "  int grade = 77;\n"
              "  int band = grade > 90 ? 4 : grade > 75 ? 3 :"
              " grade > 60 ? 2 : 1;\n"
              "  return band - 3;\n}\n");
}

TEST(InterpDefined, RecursionAckermannSmall) {
  expectClean("static int ack(int m, int n) {\n"
              "  if (m == 0) { return n + 1; }\n"
              "  if (n == 0) { return ack(m - 1, 1); }\n"
              "  return ack(m - 1, ack(m, n - 1));\n}\n"
              "int main(void) { return ack(2, 3) - 9; }\n");
}

TEST(InterpDefined, MutualRecursion) {
  expectClean("static int isOdd(int n);\n"
              "static int isEven(int n) {"
              " return n == 0 ? 1 : isOdd(n - 1); }\n"
              "static int isOdd(int n) {"
              " return n == 0 ? 0 : isEven(n - 1); }\n"
              "int main(void) { return isEven(10) - 1 + isOdd(7) - 1; }\n");
}

TEST(InterpDefined, ArraysAndPointerWalk) {
  expectClean("int main(void) {\n"
              "  int a[5]; int *p; int sum = 0; int i;\n"
              "  for (i = 0; i < 5; i++) { a[i] = i * i; }\n"
              "  for (p = a; p < a + 5; p++) { sum += *p; }\n"
              "  return sum - 30;\n}\n");
}

TEST(InterpDefined, TwoDimensionalArray) {
  expectClean("int main(void) {\n"
              "  int m[3][4]; int i; int j; int sum = 0;\n"
              "  for (i = 0; i < 3; i++) {\n"
              "    for (j = 0; j < 4; j++) { m[i][j] = i * 4 + j; }\n"
              "  }\n"
              "  for (i = 0; i < 3; i++) { sum += m[i][i]; }\n"
              "  return sum - 15;\n}\n");
}

TEST(InterpDefined, StructsByValue) {
  expectClean("struct vec { int x; int y; };\n"
              "static struct vec add(struct vec a, struct vec b) {\n"
              "  struct vec r; r.x = a.x + b.x; r.y = a.y + b.y;"
              " return r;\n}\n"
              "int main(void) {\n"
              "  struct vec p = {1, 2};\n"
              "  struct vec q = {30, 40};\n"
              "  struct vec s = add(p, q);\n"
              "  return s.x + s.y - 73;\n}\n");
}

TEST(InterpDefined, StructAssignmentCopies) {
  expectClean("struct pair { int a; int b; };\n"
              "int main(void) {\n"
              "  struct pair x = {1, 2};\n"
              "  struct pair y;\n"
              "  y = x;\n"
              "  x.a = 100;\n"
              "  return y.a - 1 + y.b - 2;\n}\n");
}

TEST(InterpDefined, UnionPunningViaMembers) {
  expectClean("union u { int i; unsigned char bytes[4]; };\n"
              "int main(void) {\n"
              "  union u v;\n"
              "  v.i = 0x01020304;\n"
              "  return v.bytes[0] - 4;\n}\n");
}

TEST(InterpDefined, EnumsInSwitch) {
  expectClean("enum mode { OFF, ON = 10, AUTO };\n"
              "int main(void) {\n"
              "  enum mode m = AUTO;\n"
              "  switch (m) { case OFF: return 1; case ON: return 2;"
              " case AUTO: return 0; }\n"
              "  return 3;\n}\n");
}

TEST(InterpDefined, FunctionPointerTable) {
  expectClean("static int inc(int x) { return x + 1; }\n"
              "static int dbl(int x) { return x * 2; }\n"
              "int main(void) {\n"
              "  int (*ops[2])(int);\n"
              "  ops[0] = inc; ops[1] = dbl;\n"
              "  return ops[0](3) + ops[1](5) - 14;\n}\n");
}

TEST(InterpDefined, CharArithmeticAndPromotion) {
  expectClean("int main(void) {\n"
              "  char a = 'A';\n"
              "  char z = a + 25;\n"
              "  return z - 'Z';\n}\n");
}

TEST(InterpDefined, FloatDoubleArithmetic) {
  expectClean("int main(void) {\n"
              "  double d = 0.5;\n"
              "  float f = 0.25f;\n"
              "  double sum = d + f + 0.25;\n"
              "  return sum == 1.0 ? 0 : 1;\n}\n");
}

TEST(InterpDefined, SizeofValues) {
  expectClean("int main(void) {\n"
              "  int a[10];\n"
              "  return (int)(sizeof a / sizeof a[0]) - 10\n"
              "       + (int)sizeof(char) - 1\n"
              "       + (int)sizeof(int) - 4\n"
              "       + (int)sizeof(long) - 8\n"
              "       + (int)sizeof(int*) - 8;\n}\n");
}

TEST(InterpDefined, GlobalInitializersRunInOrder) {
  expectClean("int a = 5;\n"
              "int b[3] = {1, 2, 3};\n"
              "const char *msg = \"hi\";\n"
              "int main(void) { return a + b[2] - 8 + (msg[0] - 'h'); }\n");
}

TEST(InterpDefined, PrintfFormats) {
  std::string Out = outputOf(
      "#include <stdio.h>\n"
      "int main(void) {\n"
      "  printf(\"%d %u %x %c %s\\n\", -3, 7u, 255, 'q', \"str\");\n"
      "  printf(\"%05d|%-4d|\\n\", 42, 7);\n"
      "  printf(\"%g\\n\", 1.5);\n"
      "  return 0;\n}\n");
  EXPECT_EQ(Out, "-3 7 ff q str\n00042|7   |\n1.5\n");
}

TEST(InterpDefined, ExitCodePropagates) {
  DriverOutcome O = runKcc("#include <stdlib.h>\n"
                           "static void die(void) { exit(3); }\n"
                           "int main(void) { die(); return 0; }\n");
  EXPECT_EQ(O.Status, RunStatus::Completed);
  EXPECT_EQ(O.ExitCode, 3);
}

TEST(InterpDefined, ShadowingScopes) {
  expectClean("int x = 1;\n"
              "int main(void) {\n"
              "  int x = 2;\n"
              "  { int x = 3; if (x != 3) { return 1; } }\n"
              "  return x - 2;\n}\n");
}

} // namespace
