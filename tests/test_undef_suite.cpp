//===- tests/test_undef_suite.cpp - Custom suite conformance ----------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The custom suite doubles as a conformance corpus for kcc itself:
// every control program must compile and run clean (no false
// positives), and the suite's shape must match the paper's numbers
// (178 tests, 70 behaviors, all 42 dynamic core behaviors covered).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "suites/UndefSuite.h"
#include "ub/Catalog.h"

#include <gtest/gtest.h>

using namespace cundef;

namespace {

TEST(UndefSuite, PaperShape) {
  UndefSuiteStats Stats = undefSuiteStats();
  EXPECT_EQ(Stats.Tests, 178u);
  EXPECT_EQ(Stats.Behaviors, 70u);
  EXPECT_EQ(Stats.StaticBehaviors, 22u);
  EXPECT_EQ(Stats.DynamicBehaviors, 48u);
  EXPECT_EQ(Stats.DynamicCorePortableCovered, 42u)
      << "every dynamic core portable behavior needs at least one test";
}

TEST(UndefSuite, AboutTwoTestsPerBehavior) {
  UndefSuiteStats Stats = undefSuiteStats();
  double Ratio = double(Stats.Tests) / Stats.Behaviors;
  EXPECT_GE(Ratio, 2.0);
  EXPECT_LE(Ratio, 3.0); // the paper reports ~2 tests per behavior
}

TEST(UndefSuite, EveryBehaviorIdExistsInCatalog) {
  for (const TestCase &Test : undefSuite()) {
    const CatalogEntry *Entry = catalogEntry(Test.CatalogId);
    ASSERT_NE(Entry, nullptr) << Test.Name;
    EXPECT_EQ(Entry->isStatic(), Test.StaticBehavior) << Test.Name;
  }
}

/// Every *control* must be clean under kcc: controls are the
/// false-positive guard the paper insists on.
TEST(UndefSuite, ControlsAreCleanUnderKcc) {
  AnalysisRequest Req = AnalysisRequest::Builder().searchRuns(4).buildOrDie();
  unsigned Failures = 0;
  for (const TestCase &Test : undefSuite()) {
    Driver Drv(Req);
    DriverOutcome O = Drv.runSource(Test.Good, Test.Name + "_good.c");
    if (!O.CompileOk || O.anyUb() || O.Status != RunStatus::Completed) {
      ++Failures;
      ADD_FAILURE() << Test.Name << " control flagged or failed:\n"
                    << O.CompileErrors << O.renderReport()
                    << "status=" << static_cast<int>(O.Status);
      if (Failures > 8)
        break; // keep the log readable
    }
  }
}

/// kcc's overall detection on the undefined programs: the paper's
/// Figure 3 shows kcc detecting most dynamic behaviors; this asserts a
/// floor so regressions surface.
TEST(UndefSuite, KccDetectsMostDynamicTests) {
  AnalysisRequest Req = AnalysisRequest::Builder().searchRuns(8).buildOrDie();
  unsigned Dynamic = 0, Detected = 0;
  for (const TestCase &Test : undefSuite()) {
    if (Test.StaticBehavior)
      continue;
    ++Dynamic;
    Driver Drv(Req);
    DriverOutcome O = Drv.runSource(Test.Bad, Test.Name + "_bad.c");
    if (O.anyUb())
      ++Detected;
  }
  EXPECT_GE(Detected * 100, Dynamic * 60)
      << "kcc detected only " << Detected << "/" << Dynamic
      << " dynamic undefined tests";
}

TEST(UndefSuite, KccDetectsNamedStaticBehaviors) {
  // The implemented static checks (catalog ids 40-51) must all fire.
  AnalysisRequest Req;
  for (const TestCase &Test : undefSuite()) {
    if (!Test.StaticBehavior || Test.CatalogId > 51)
      continue;
    Driver Drv(Req);
    DriverOutcome O = Drv.runSource(Test.Bad, Test.Name + "_bad.c");
    EXPECT_TRUE(O.anyUb()) << Test.Name << " not flagged";
  }
}

} // namespace
