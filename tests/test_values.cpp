//===- tests/test_values.cpp - Runtime value unit tests ------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "core/Value.h"

#include <gtest/gtest.h>

using namespace cundef;

namespace {

class ValuesTest : public ::testing::Test {
protected:
  TypeContext Types{TargetConfig::lp64()};
};

TEST_F(ValuesTest, SignedViewOfBits) {
  Value V = Value::makeInt(Types.intTy(), 0xFFFFFFFFu);
  EXPECT_EQ(V.asSigned(Types), -1);
  EXPECT_EQ(V.asUnsigned(Types), 0xFFFFFFFFu);
  Value C = Value::makeInt(Types.scharTy(), 0x80);
  EXPECT_EQ(C.asSigned(Types), -128);
}

TEST_F(ValuesTest, Truthiness) {
  EXPECT_FALSE(Value::makeInt(Types.intTy(), 0).truthy(Types));
  EXPECT_TRUE(Value::makeInt(Types.intTy(), 2).truthy(Types));
  EXPECT_FALSE(Value::makeFloat(Types.doubleTy(), 0.0).truthy(Types));
  EXPECT_TRUE(Value::makeFloat(Types.doubleTy(), 0.5).truthy(Types));
  const Type *Ptr = Types.getPointer(QualType(Types.intTy()));
  EXPECT_FALSE(Value::makePointer(Ptr, SymPointer::null()).truthy(Types));
  EXPECT_TRUE(Value::makePointer(Ptr, SymPointer(3, 0)).truthy(Types));
}

TEST_F(ValuesTest, AddOverflowDetected) {
  Value Max = Value::makeInt(Types.intTy(), 0x7FFFFFFFu);
  Value One = Value::makeInt(Types.intTy(), 1);
  ArithOutcome Out =
      evalIntBinary(BinaryOp::Add, Max, One, Types.intTy(), Types);
  EXPECT_TRUE(Out.Overflow);
  Out = evalIntBinary(BinaryOp::Add, One, One, Types.intTy(), Types);
  EXPECT_FALSE(Out.Overflow);
  EXPECT_EQ(Out.V.asSigned(Types), 2);
}

TEST_F(ValuesTest, UnsignedWrapsWithoutOverflow) {
  Value Max = Value::makeInt(Types.uintTy(), 0xFFFFFFFFu);
  Value One = Value::makeInt(Types.uintTy(), 1);
  ArithOutcome Out =
      evalIntBinary(BinaryOp::Add, Max, One, Types.uintTy(), Types);
  EXPECT_FALSE(Out.Overflow);
  EXPECT_EQ(Out.V.asUnsigned(Types), 0u);
}

TEST_F(ValuesTest, DivZeroFlag) {
  Value A = Value::makeInt(Types.intTy(), 5);
  Value Z = Value::makeInt(Types.intTy(), 0);
  EXPECT_TRUE(evalIntBinary(BinaryOp::Div, A, Z, Types.intTy(), Types)
                  .DivZero);
  EXPECT_TRUE(evalIntBinary(BinaryOp::Rem, A, Z, Types.intTy(), Types)
                  .DivZero);
}

TEST_F(ValuesTest, IntMinDivMinusOneOverflows) {
  Value Min = Value::makeInt(Types.intTy(), 0x80000000u);
  Value MinusOne = Value::makeInt(Types.intTy(), 0xFFFFFFFFu);
  EXPECT_TRUE(evalIntBinary(BinaryOp::Div, Min, MinusOne, Types.intTy(),
                            Types)
                  .Overflow);
}

TEST_F(ValuesTest, ShiftFlags) {
  Value One = Value::makeInt(Types.intTy(), 1);
  Value W32 = Value::makeInt(Types.intTy(), 32);
  Value Neg = Value::makeInt(Types.intTy(), static_cast<uint64_t>(-2));
  EXPECT_TRUE(evalIntBinary(BinaryOp::Shl, One, W32, Types.intTy(), Types)
                  .ShiftTooWide);
  EXPECT_TRUE(evalIntBinary(BinaryOp::Shl, One, Neg, Types.intTy(), Types)
                  .ShiftNegCount);
  EXPECT_TRUE(evalIntBinary(BinaryOp::Shl, Neg, One, Types.intTy(), Types)
                  .ShiftOfNeg);
  ArithOutcome Ok =
      evalIntBinary(BinaryOp::Shl, One, One, Types.intTy(), Types);
  EXPECT_FALSE(Ok.ShiftTooWide || Ok.ShiftNegCount || Ok.ShiftOfNeg);
  EXPECT_EQ(Ok.V.asSigned(Types), 2);
}

TEST_F(ValuesTest, ComparisonsRespectSignedness) {
  Value MinusOne = Value::makeInt(Types.intTy(), 0xFFFFFFFFu);
  Value One = Value::makeInt(Types.intTy(), 1);
  EXPECT_EQ(evalIntBinary(BinaryOp::Lt, MinusOne, One, Types.intTy(), Types)
                .V.asSigned(Types),
            1);
  Value UMinusOne = Value::makeInt(Types.uintTy(), 0xFFFFFFFFu);
  Value UOne = Value::makeInt(Types.uintTy(), 1);
  EXPECT_EQ(evalIntBinary(BinaryOp::Lt, UMinusOne, UOne, Types.uintTy(),
                          Types)
                .V.asSigned(Types),
            0)
      << "as unsigned, 0xFFFFFFFF is the larger value";
}

TEST_F(ValuesTest, FloatOperations) {
  Value A = Value::makeFloat(Types.doubleTy(), 1.5);
  Value B = Value::makeFloat(Types.doubleTy(), 0.5);
  EXPECT_DOUBLE_EQ(
      evalFloatBinary(BinaryOp::Add, A, B, Types.doubleTy(), Types).F, 2.0);
  EXPECT_DOUBLE_EQ(
      evalFloatBinary(BinaryOp::Div, A, B, Types.doubleTy(), Types).F, 3.0);
  EXPECT_EQ(evalFloatBinary(BinaryOp::Lt, B, A, Types.doubleTy(), Types)
                .asSigned(Types),
            1);
  // Division by zero is defined for floating point (Annex F).
  Value Z = Value::makeFloat(Types.doubleTy(), 0.0);
  Value Inf = evalFloatBinary(BinaryOp::Div, A, Z, Types.doubleTy(), Types);
  EXPECT_TRUE(Inf.F > 1e300);
}

TEST_F(ValuesTest, ConversionTruncates) {
  Value Big = Value::makeInt(Types.intTy(), 0x12345678u);
  ConvOutcome Out =
      convertScalar(Big, Types.scharTy(), CastKind::IntegralCast, Types);
  EXPECT_EQ(Out.V.asSigned(Types), 0x78);
}

TEST_F(ValuesTest, FloatToIntOverflowFlagged) {
  Value Huge = Value::makeFloat(Types.doubleTy(), 1e12);
  ConvOutcome Out =
      convertScalar(Huge, Types.intTy(), CastKind::FloatToInt, Types);
  EXPECT_TRUE(Out.FloatToIntOverflow);
  Value Fits = Value::makeFloat(Types.doubleTy(), 100.9);
  Out = convertScalar(Fits, Types.intTy(), CastKind::FloatToInt, Types);
  EXPECT_FALSE(Out.FloatToIntOverflow);
  EXPECT_EQ(Out.V.asSigned(Types), 100) << "truncation toward zero";
}

TEST_F(ValuesTest, ToBool) {
  Value V = Value::makeInt(Types.intTy(), 42);
  ConvOutcome Out =
      convertScalar(V, Types.boolTy(), CastKind::ToBool, Types);
  EXPECT_EQ(Out.V.asUnsigned(Types), 1u);
}

TEST_F(ValuesTest, MissingReturnMarker) {
  Value V = Value::empty();
  V.MissingReturn = true;
  EXPECT_TRUE(V.isEmpty());
  EXPECT_TRUE(V.MissingReturn);
}

TEST_F(ValuesTest, LValueCarriesQualifiers) {
  Value Lv = Value::makeLValue(SymPointer(5, 8),
                               QualType(Types.intTy(), QualConst));
  EXPECT_TRUE(Lv.isLValue());
  EXPECT_TRUE(Lv.lvalueType().isConst());
  EXPECT_EQ(Lv.Ptr.Base, 5u);
  EXPECT_EQ(Lv.Ptr.Offset, 8);
}

TEST_F(ValuesTest, TruncateBits) {
  EXPECT_EQ(truncateBits(0x1FF, Types.ucharTy(), Types), 0xFFu);
  EXPECT_EQ(truncateBits(0x1FF, Types.intTy(), Types), 0x1FFu);
  EXPECT_EQ(truncateBits(~0ull, Types.boolTy(), Types), 1u);
}

} // namespace
