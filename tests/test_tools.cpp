//===- tests/test_tools.cpp - Baseline analyzer profiles -----------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Each modelled tool's detection profile (what it catches and, just as
// important, what its mechanism cannot see) -- the profiles that make
// the Figure 2/3 shapes emerge.
//
//===----------------------------------------------------------------------===//

#include "analysis/Tool.h"

#include <gtest/gtest.h>

using namespace cundef;

namespace {

bool flags(ToolKind Kind, const char *Source) {
  std::unique_ptr<Tool> T = Tool::create(Kind);
  ToolResult R = T->analyze(Source, "t.c");
  EXPECT_TRUE(R.CompileOk);
  return R.flagged();
}

const char *HeapOverflow =
    "#include <stdlib.h>\n"
    "int main(void) {\n"
    "  int *p = (int*)malloc(4 * sizeof(int));\n"
    "  if (!p) { return 1; }\n"
    "  p[0] = 1;\n  int r = p[5];\n  free(p);\n  return r;\n}\n";

const char *StackOverflowRead =
    "int main(void) {\n"
    "  int a[4]; int i;\n"
    "  for (i = 0; i < 4; i++) { a[i] = i; }\n"
    "  return a[5];\n}\n";

const char *DivZero = "int main(void) { int d = 0; return 8 / d; }\n";

const char *Overflow =
    "int main(void) { int x = 2147483647; return (x + 1) != 0; }\n";

const char *UseAfterFree =
    "#include <stdlib.h>\n"
    "int main(void) {\n"
    "  int *p = (int*)malloc(sizeof(int));\n"
    "  if (!p) { return 1; }\n"
    "  *p = 1;\n  free(p);\n  return *p;\n}\n";

const char *BadFree =
    "#include <stdlib.h>\n"
    "int main(void) { int x; free(&x); return 0; }\n";

const char *UninitInt = "int main(void) { int x; return x; }\n";

const char *BadCall =
    "static int two(int a, int b) { return a + b; }\n"
    "int main(void) { int (*f)(int) = (int (*)(int))two; return f(1); }\n";

const char *Clean =
    "#include <stdio.h>\n"
    "int main(void) { printf(\"ok\\n\"); return 0; }\n";

const char *Unsequenced =
    "int main(void) { int x = 0; return (x = 1) + (x = 2); }\n";

TEST(Tools, KccCatchesEverything) {
  for (const char *Source :
       {HeapOverflow, StackOverflowRead, DivZero, Overflow, UseAfterFree,
        BadFree, UninitInt, BadCall, Unsequenced})
    EXPECT_TRUE(flags(ToolKind::Kcc, Source)) << Source;
  EXPECT_FALSE(flags(ToolKind::Kcc, Clean));
}

TEST(Tools, MemGrindProfile) {
  // Heap shadow: catches heap overflow, UAF, bad free, uninit, calls.
  EXPECT_TRUE(flags(ToolKind::MemGrind, HeapOverflow));
  EXPECT_TRUE(flags(ToolKind::MemGrind, UseAfterFree));
  EXPECT_TRUE(flags(ToolKind::MemGrind, BadFree));
  EXPECT_TRUE(flags(ToolKind::MemGrind, UninitInt));
  EXPECT_TRUE(flags(ToolKind::MemGrind, BadCall));
  // Mechanism gaps: stack frames are plain memory; no arithmetic view.
  EXPECT_FALSE(flags(ToolKind::MemGrind, StackOverflowRead))
      << "stack smash lands in mapped memory: invisible to Memcheck";
  EXPECT_FALSE(flags(ToolKind::MemGrind, DivZero));
  EXPECT_FALSE(flags(ToolKind::MemGrind, Overflow));
  EXPECT_FALSE(flags(ToolKind::MemGrind, Unsequenced));
  EXPECT_FALSE(flags(ToolKind::MemGrind, Clean));
}

TEST(Tools, PtrCheckProfile) {
  // Pointer provenance: all storage kinds bounds-checked.
  EXPECT_TRUE(flags(ToolKind::PtrCheck, HeapOverflow));
  EXPECT_TRUE(flags(ToolKind::PtrCheck, StackOverflowRead));
  EXPECT_TRUE(flags(ToolKind::PtrCheck, UseAfterFree));
  EXPECT_TRUE(flags(ToolKind::PtrCheck, BadFree));
  EXPECT_TRUE(flags(ToolKind::PtrCheck, BadCall));
  // Mechanism gaps: no definedness bits, no arithmetic checks.
  EXPECT_FALSE(flags(ToolKind::PtrCheck, UninitInt))
      << "uninitialized integers flow silently through CheckPointer";
  EXPECT_FALSE(flags(ToolKind::PtrCheck, DivZero));
  EXPECT_FALSE(flags(ToolKind::PtrCheck, Overflow));
  EXPECT_FALSE(flags(ToolKind::PtrCheck, Unsequenced));
  EXPECT_FALSE(flags(ToolKind::PtrCheck, Clean));
}

TEST(Tools, PtrCheckCatchesUninitPointerDeref) {
  // An uninitialized *pointer* dereference manifests as a garbage
  // address: PtrCheck sees it (why the real tool scored ~29% on the
  // uninitialized class).
  EXPECT_TRUE(flags(ToolKind::PtrCheck,
                    "int main(void) { int *p; return *p; }\n"));
}

TEST(Tools, ValueAnalysisProfile) {
  // Interpreter-mode Value Analysis: all six Juliet classes.
  EXPECT_TRUE(flags(ToolKind::ValueAnalysis, HeapOverflow));
  EXPECT_TRUE(flags(ToolKind::ValueAnalysis, StackOverflowRead));
  EXPECT_TRUE(flags(ToolKind::ValueAnalysis, DivZero));
  EXPECT_TRUE(flags(ToolKind::ValueAnalysis, Overflow));
  EXPECT_TRUE(flags(ToolKind::ValueAnalysis, UseAfterFree));
  EXPECT_TRUE(flags(ToolKind::ValueAnalysis, BadFree));
  EXPECT_TRUE(flags(ToolKind::ValueAnalysis, UninitInt));
  EXPECT_TRUE(flags(ToolKind::ValueAnalysis, BadCall));
  // Mechanism gap: no sequencing (locsWrittenTo) machinery.
  EXPECT_FALSE(flags(ToolKind::ValueAnalysis, Unsequenced));
  EXPECT_FALSE(flags(ToolKind::ValueAnalysis, Clean));
}

TEST(Tools, OnlyKccSeesSemanticLevelUb) {
  // The paper's Figure 3 separation: const-laundering, string-literal
  // writes, symbolic pointer comparisons are visible only to the
  // semantics-based tool.
  const char *ConstWrite =
      "#include <string.h>\n"
      "int main(void) {\n"
      "  const char p[] = \"hello\";\n"
      "  char *q = strchr(p, p[0]);\n"
      "  *q = 'H';\n  return 0;\n}\n";
  const char *LiteralWrite =
      "int main(void) { char *s = \"abc\"; s[0] = 'A'; return 0; }\n";
  const char *PtrCompare =
      "int main(void) { int a; int b; return &a < &b; }\n";
  for (const char *Source : {ConstWrite, LiteralWrite, PtrCompare}) {
    EXPECT_TRUE(flags(ToolKind::Kcc, Source)) << Source;
    EXPECT_FALSE(flags(ToolKind::MemGrind, Source)) << Source;
    EXPECT_FALSE(flags(ToolKind::PtrCheck, Source)) << Source;
    EXPECT_FALSE(flags(ToolKind::ValueAnalysis, Source)) << Source;
  }
}

TEST(Tools, ToolResultCarriesRunDetails) {
  std::unique_ptr<Tool> T = Tool::create(ToolKind::MemGrind);
  ToolResult R = T->analyze(Clean, "clean.c");
  EXPECT_TRUE(R.CompileOk);
  EXPECT_EQ(R.Status, RunStatus::Completed);
  EXPECT_EQ(R.Output, "ok\n");
  EXPECT_GT(R.Micros, 0.0);
}

TEST(Tools, NamesAreStable) {
  EXPECT_STREQ(toolName(ToolKind::Kcc), "kcc");
  EXPECT_STREQ(toolName(ToolKind::MemGrind), "MemGrind");
  EXPECT_STREQ(toolName(ToolKind::PtrCheck), "PtrCheck");
  EXPECT_STREQ(toolName(ToolKind::ValueAnalysis), "ValueAnalysis");
  for (ToolKind Kind : {ToolKind::Kcc, ToolKind::MemGrind,
                        ToolKind::PtrCheck, ToolKind::ValueAnalysis})
    EXPECT_STREQ(Tool::create(Kind)->name(), toolName(Kind));
}

} // namespace
