//===- tests/test_property_memory.cpp - Memory model properties ----------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Properties of the symbolic memory: last-write-wins byte semantics
// against a reference map, byte-wise copies preserving arbitrary
// patterns (including pointer fragments, paper 4.3.2), and memcpy
// agreeing with a manual loop.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "mem/SymbolicMemory.h"

#include <map>

using namespace cundef;

namespace {

struct Rng {
  uint32_t State;
  explicit Rng(uint32_t Seed) : State(Seed ? Seed : 1) {}
  uint32_t next() {
    State ^= State << 13;
    State ^= State >> 17;
    State ^= State << 5;
    return State;
  }
  uint32_t below(uint32_t N) { return next() % N; }
};

class MemoryProperty : public ::testing::TestWithParam<int> {};

/// Random interleaved writes/reads against a std::map oracle.
TEST_P(MemoryProperty, LastWriteWins) {
  Rng R(static_cast<uint32_t>(GetParam() * 2654435761u + 13));
  SymbolicMemory Mem;
  uint32_t Id = Mem.create(StorageKind::Heap, 64, QualType(), NoSymbol);
  std::map<int64_t, uint8_t> Oracle;
  for (int Step = 0; Step < 200; ++Step) {
    int64_t Off = R.below(64);
    if (R.below(2)) {
      uint8_t V = static_cast<uint8_t>(R.next());
      ASSERT_EQ(Mem.writeByte(Id, Off, Byte::concrete(V)), MemStatus::Ok);
      Oracle[Off] = V;
    } else {
      Byte Out;
      ASSERT_EQ(Mem.readByte(Id, Off, Out), MemStatus::Ok);
      auto It = Oracle.find(Off);
      if (It == Oracle.end()) {
        EXPECT_TRUE(Out.isUnknown()) << "untouched bytes stay unknown";
      } else {
        ASSERT_TRUE(Out.isConcrete());
        EXPECT_EQ(Out.Value, It->second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryProperty, ::testing::Range(0, 24));

class ByteCopyProperty : public ::testing::TestWithParam<int> {};

/// A generated program fills a buffer with a random pattern, copies it
/// byte-wise, and verifies every byte: must be clean and exit 0.
TEST_P(ByteCopyProperty, PatternSurvivesByteCopy) {
  Rng R(static_cast<uint32_t>(GetParam() * 48271u + 5));
  unsigned N = 4 + R.below(24);
  std::string Fill, Check;
  for (unsigned I = 0; I < N; ++I) {
    unsigned V = R.below(256);
    Fill += "  src[" + std::to_string(I) + "] = " + std::to_string(V) +
            ";\n";
    Check += "  if (dst[" + std::to_string(I) +
             "] != " + std::to_string(V) + ") { return 1; }\n";
  }
  std::string Source =
      "int main(void) {\n"
      "  unsigned char src[" + std::to_string(N) + "];\n"
      "  unsigned char dst[" + std::to_string(N) + "];\n"
      "  unsigned long i;\n" +
      Fill +
      "  for (i = 0; i < sizeof src; i++) { dst[i] = src[i]; }\n" +
      Check +
      "  return 0;\n}\n";
  expectClean(Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteCopyProperty, ::testing::Range(0, 16));

class MemcpyProperty : public ::testing::TestWithParam<int> {};

/// memcpy must agree with the manual loop for random sizes and data,
/// including struct-typed buffers with padding.
TEST_P(MemcpyProperty, MemcpyMatchesLoop) {
  Rng R(static_cast<uint32_t>(GetParam() * 16807u + 29));
  unsigned N = 1 + R.below(16);
  std::string Seeds;
  for (unsigned I = 0; I < N; ++I)
    Seeds += "  a[" + std::to_string(I) + "] = " +
             std::to_string(R.below(90) + 1) + ";\n";
  std::string Source =
      "#include <string.h>\n"
      "int main(void) {\n"
      "  int a[" + std::to_string(N) + "];\n"
      "  int viaMemcpy[" + std::to_string(N) + "];\n"
      "  int viaLoop[" + std::to_string(N) + "];\n"
      "  unsigned long i;\n" +
      Seeds +
      "  memcpy(viaMemcpy, a, sizeof a);\n"
      "  for (i = 0; i < " + std::to_string(N) + "ul; i++) {"
      " viaLoop[i] = a[i]; }\n"
      "  return memcmp(viaMemcpy, viaLoop, sizeof a);\n}\n";
  expectClean(Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemcpyProperty, ::testing::Range(0, 16));

class PointerFragProperty : public ::testing::TestWithParam<int> {};

/// Pointer fragments reassemble for any element of any array: copying
/// &arr[k]'s bytes yields a pointer that reads arr[k] (paper 4.3.2).
TEST_P(PointerFragProperty, AnyElementPointerSurvivesByteCopy) {
  Rng R(static_cast<uint32_t>(GetParam() * 97u + 41));
  unsigned N = 2 + R.below(10);
  unsigned K = R.below(N);
  std::string Source =
      "int main(void) {\n"
      "  int arr[" + std::to_string(N) + "];\n"
      "  int *src; int *dst; unsigned long i;\n"
      "  unsigned char *from; unsigned char *to;\n"
      "  for (i = 0; i < " + std::to_string(N) + "ul; i++) {"
      " arr[i] = (int)(i * 7ul); }\n"
      "  src = &arr[" + std::to_string(K) + "];\n"
      "  from = (unsigned char*)&src;\n"
      "  to = (unsigned char*)&dst;\n"
      "  for (i = 0; i < sizeof src; i++) { to[i] = from[i]; }\n"
      "  return *dst == " + std::to_string(K * 7) + " ? 0 : 1;\n}\n";
  expectClean(Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointerFragProperty,
                         ::testing::Range(0, 16));

class StructLayoutProperty : public ::testing::TestWithParam<int> {};

/// Random struct shapes: field writes are independent (no overlap), and
/// whole-struct assignment copies every field.
TEST_P(StructLayoutProperty, FieldsIndependentAndCopied) {
  Rng R(static_cast<uint32_t>(GetParam() * 31337u + 3));
  const char *FieldTypes[] = {"char", "short", "int", "long"};
  unsigned NumFields = 2 + R.below(5);
  std::string Def = "struct shape {\n";
  for (unsigned I = 0; I < NumFields; ++I)
    Def += std::string("  ") + FieldTypes[R.below(4)] + " f" +
           std::to_string(I) + ";\n";
  Def += "};\n";
  std::string Writes, Checks;
  for (unsigned I = 0; I < NumFields; ++I) {
    unsigned V = R.below(100);
    Writes += "  a.f" + std::to_string(I) + " = " + std::to_string(V) +
              ";\n";
    Checks += "  if (b.f" + std::to_string(I) +
              " != " + std::to_string(V) + ") { return 1; }\n";
  }
  std::string Source = Def +
                       "int main(void) {\n"
                       "  struct shape a;\n"
                       "  struct shape b;\n" +
                       Writes + "  b = a;\n" + Checks + "  return 0;\n}\n";
  expectClean(Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructLayoutProperty,
                         ::testing::Range(0, 16));

} // namespace
