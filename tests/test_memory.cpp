//===- tests/test_memory.cpp - Symbolic memory unit tests ----------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "mem/SymbolicMemory.h"

#include <gtest/gtest.h>

using namespace cundef;

namespace {

TEST(SymbolicMemory, CreateAndAccess) {
  SymbolicMemory Mem;
  uint32_t Id = Mem.create(StorageKind::Auto, 8, QualType(), NoSymbol);
  ASSERT_NE(Id, 0u);
  const MemObject *Obj = Mem.find(Id);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->Size, 8u);
  EXPECT_TRUE(Obj->isAlive());
  for (const Byte &B : Obj->Bytes)
    EXPECT_TRUE(B.isUnknown()) << "fresh storage is unknown(N)";
}

TEST(SymbolicMemory, ByteRoundTrip) {
  SymbolicMemory Mem;
  uint32_t Id = Mem.create(StorageKind::Heap, 4, QualType(), NoSymbol);
  EXPECT_EQ(Mem.writeByte(Id, 2, Byte::concrete(0xAB)), MemStatus::Ok);
  Byte Out;
  EXPECT_EQ(Mem.readByte(Id, 2, Out), MemStatus::Ok);
  EXPECT_TRUE(Out.isConcrete());
  EXPECT_EQ(Out.Value, 0xAB);
}

TEST(SymbolicMemory, BoundsChecked) {
  SymbolicMemory Mem;
  uint32_t Id = Mem.create(StorageKind::Auto, 4, QualType(), NoSymbol);
  Byte Out;
  EXPECT_EQ(Mem.readByte(Id, 4, Out), MemStatus::OutOfBounds);
  EXPECT_EQ(Mem.readByte(Id, -1, Out), MemStatus::OutOfBounds);
  EXPECT_EQ(Mem.probe(Id, 0, 5), MemStatus::OutOfBounds);
  EXPECT_EQ(Mem.probe(Id, 0, 4), MemStatus::Ok);
}

TEST(SymbolicMemory, LifetimeStates) {
  SymbolicMemory Mem;
  uint32_t Stack = Mem.create(StorageKind::Auto, 4, QualType(), NoSymbol);
  uint32_t Heap = Mem.create(StorageKind::Heap, 4, QualType(), NoSymbol);
  Mem.markDead(Stack);
  Mem.markFreed(Heap);
  Byte Out;
  EXPECT_EQ(Mem.readByte(Stack, 0, Out), MemStatus::Dead);
  EXPECT_EQ(Mem.readByte(Heap, 0, Out), MemStatus::Freed);
  EXPECT_EQ(Mem.readByte(999, 0, Out), MemStatus::NoObject);
}

TEST(SymbolicMemory, TombstonesKeepBytes) {
  SymbolicMemory Mem;
  uint32_t Id = Mem.create(StorageKind::Heap, 2, QualType(), NoSymbol);
  Mem.writeByte(Id, 0, Byte::concrete(7));
  Mem.markFreed(Id);
  // The permissive machine still finds the object by address.
  const MemObject *Obj = Mem.find(Id);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->Bytes[0].Value, 7);
}

TEST(SymbolicMemory, DistinctAddressRegions) {
  SymbolicMemory Mem;
  uint32_t Global = Mem.create(StorageKind::Global, 16, QualType(), NoSymbol);
  uint32_t Heap = Mem.create(StorageKind::Heap, 16, QualType(), NoSymbol);
  uint32_t Stack = Mem.create(StorageKind::Auto, 16, QualType(), NoSymbol);
  uint64_t G = Mem.find(Global)->ConcreteAddr;
  uint64_t H = Mem.find(Heap)->ConcreteAddr;
  uint64_t S = Mem.find(Stack)->ConcreteAddr;
  EXPECT_LT(G, H);
  EXPECT_LT(H, S);
}

TEST(SymbolicMemory, StackGrowsDownContiguously) {
  SymbolicMemory Mem;
  uint32_t First = Mem.create(StorageKind::Auto, 8, QualType(), NoSymbol);
  uint32_t Second = Mem.create(StorageKind::Auto, 8, QualType(), NoSymbol);
  EXPECT_GT(Mem.find(First)->ConcreteAddr, Mem.find(Second)->ConcreteAddr)
      << "later stack objects sit at lower addresses";
  // Overflowing the second object reaches the first: the stack-smash
  // model the permissive machine relies on.
  uint64_t Gap = Mem.find(First)->ConcreteAddr -
                 (Mem.find(Second)->ConcreteAddr + 8);
  EXPECT_LT(Gap, 8u);
}

TEST(SymbolicMemory, FindByAddress) {
  SymbolicMemory Mem;
  uint32_t Id = Mem.create(StorageKind::Heap, 10, QualType(), NoSymbol);
  uint64_t Addr = Mem.find(Id)->ConcreteAddr;
  int64_t Off = -1;
  EXPECT_EQ(Mem.findByAddress(Addr + 3, Off), Id);
  EXPECT_EQ(Off, 3);
  EXPECT_EQ(Mem.findByAddress(Addr + 10, Off), 0u) << "one past: no object";
  EXPECT_EQ(Mem.findByAddress(0, Off), 0u) << "null page unmapped";
}

TEST(SymbolicMemory, CountAlive) {
  SymbolicMemory Mem;
  uint32_t A = Mem.create(StorageKind::Heap, 4, QualType(), NoSymbol);
  Mem.create(StorageKind::Heap, 4, QualType(), NoSymbol);
  EXPECT_EQ(Mem.countAlive(StorageKind::Heap), 2u);
  Mem.markFreed(A);
  EXPECT_EQ(Mem.countAlive(StorageKind::Heap), 1u);
}

TEST(Byte, Factories) {
  Byte U = Byte::unknown();
  EXPECT_TRUE(U.isUnknown());
  Byte C = Byte::concrete(42);
  EXPECT_TRUE(C.isConcrete());
  EXPECT_EQ(C.Value, 42);
  SymPointer P(7, 3);
  Byte F = Byte::ptrFrag(P, 1, 8);
  EXPECT_TRUE(F.isPtrFrag());
  EXPECT_EQ(F.Ptr, P);
  EXPECT_EQ(F.FragIndex, 1);
  EXPECT_EQ(F.FragCount, 8);
}

TEST(SymPointer, NullAndForged) {
  SymPointer Null = SymPointer::null();
  EXPECT_TRUE(Null.isNull());
  SymPointer Forged = SymPointer::fromInteger(0x1000);
  EXPECT_FALSE(Forged.isNull());
  EXPECT_TRUE(Forged.FromInteger);
  EXPECT_NE(Null, Forged);
  SymPointer Obj(3, 4);
  EXPECT_FALSE(Obj.isNull());
  EXPECT_EQ(Obj, SymPointer(3, 4));
  EXPECT_NE(Obj, SymPointer(3, 5));
  EXPECT_NE(Obj, SymPointer(4, 4));
}

} // namespace
