//===- tests/test_static_dataflow.cpp - CFG + dataflow layer -------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The flow-sensitive static layer in isolation: CFG construction
// (static/Cfg.h) pinned by shape goldens, the three abstract domains
// (static/Domains.h) driven to fixpoints through real sources, the
// must/may verdict split, and the layer's determinism contract — the
// findings are a pure function of the AST, byte-identical across
// schedulers, worker counts, and translation-cache state.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "static/Cfg.h"

#include <algorithm>

using namespace cundef;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// Compiles \p Source and renders the CFG of \p Fn via Cfg::dump — the
/// golden-test surface.
std::string cfgDump(const std::string &Source, const char *Fn = "main") {
  Driver Drv;
  Driver::Compiled C = Drv.compile(Source, "t.c");
  EXPECT_TRUE(C->ok()) << C->errors() << "\nsource:\n" << Source;
  if (!C->ok())
    return "";
  const FunctionDecl *F = C->ast().TU.findFunction(C->interner().lookup(Fn));
  EXPECT_TRUE(F && F->Body) << "no definition of " << Fn;
  if (!F || !F->Body)
    return "";
  return Cfg::build(F).dump(C->interner());
}

/// Static *must* findings of the flow layer only (Domain set by one of
/// the three dataflow domains; the syntactic checker's rows are
/// excluded so these tests pin the dataflow half alone).
std::vector<UbReport> flowMust(const std::string &Source) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(Source, "t.c");
  EXPECT_TRUE(C->ok()) << C->errors() << "\nsource:\n" << Source;
  std::vector<UbReport> Out;
  for (const UbReport &R : C->staticUb())
    if (std::string(R.Domain) != "syntactic")
      Out.push_back(R);
  return Out;
}

/// Flow-layer *may* hints (never part of the verdict).
std::vector<UbReport> flowHints(const std::string &Source) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(Source, "t.c");
  EXPECT_TRUE(C->ok()) << C->errors() << "\nsource:\n" << Source;
  return C->staticHints();
}

bool hasCode(const std::vector<UbReport> &Reports, unsigned Code) {
  for (const UbReport &R : Reports)
    if (ubCode(R.Kind) == Code)
      return true;
  return false;
}

/// Renders every static finding (must then may) to one comparable
/// string: code@line:col verdict/domain.
std::string renderStatic(const DriverOutcome &O) {
  std::string Out;
  auto Add = [&](const UbReport &R) {
    Out += std::to_string(ubCode(R.Kind)) + "@" + std::to_string(R.Loc.Line) +
           ":" + std::to_string(R.Loc.Col) + " " +
           (R.Verdict == FindingVerdict::Must ? "must" : "may") + "/" +
           R.Domain + "\n";
  };
  for (const UbReport &R : O.StaticUb)
    Add(R);
  for (const UbReport &R : O.StaticHints)
    Add(R);
  return Out;
}

//===----------------------------------------------------------------------===//
// CFG shape goldens
//===----------------------------------------------------------------------===//

TEST(CfgShape, StraightLineIsOneBlock) {
  EXPECT_EQ(cfgDump("int main(void) { int x = 1; int y = 2;"
                    " return x + y; }"),
            "cfg main: blocks=3 entry=B0 exit=B1\n"
            "  B0: stmts=3 -> B1\n"
            "  B1: exit\n"
            "  B2: -> B1\n");
}

TEST(CfgShape, IfElseDiamond) {
  EXPECT_EQ(cfgDump("int main(void) {\n"
                    "  int x = 1;\n"
                    "  if (x) { x = 2; } else { x = 3; }\n"
                    "  return x;\n"
                    "}"),
            "cfg main: blocks=6 entry=B0 exit=B1\n"
            "  B0: stmts=1 if -> B2 B4\n"
            "  B1: exit\n"
            "  B2: stmts=1 -> B3\n"
            "  B3: stmts=1 -> B1\n"
            "  B4: stmts=1 -> B3\n"
            "  B5: -> B1\n");
}

TEST(CfgShape, ShortCircuitAndDecomposesIntoAtomicConditions) {
  // `a && b` in branch position becomes two conditional blocks, each
  // with an atomic leaf condition: B0 tests `a` (false edge bypasses
  // `b` entirely), B4 tests `b`.
  EXPECT_EQ(cfgDump("int main(void) {\n"
                    "  int a = 1, b = 2;\n"
                    "  if (a && b) { return 1; }\n"
                    "  return 0;\n"
                    "}"),
            "cfg main: blocks=7 entry=B0 exit=B1\n"
            "  B0: stmts=1 if -> B4 B3\n"
            "  B1: exit\n"
            "  B2: stmts=1 -> B1\n"
            "  B3: stmts=1 -> B1\n"
            "  B4: if -> B2 B3\n"
            "  B5: -> B3\n"
            "  B6: -> B1\n");
}

TEST(CfgShape, TernaryInBranchPositionForksTheCondition) {
  // `a ? b : c` as an if-condition: B0 tests `a` and dispatches to the
  // two arm-condition blocks B4 (`b`) and B5 (`c`), both of which
  // branch to the common then/else targets.
  EXPECT_EQ(cfgDump("int main(void) {\n"
                    "  int a = 1, b = 0, c = 1;\n"
                    "  if (a ? b : c) { return 1; }\n"
                    "  return 0;\n"
                    "}"),
            "cfg main: blocks=8 entry=B0 exit=B1\n"
            "  B0: stmts=1 if -> B4 B5\n"
            "  B1: exit\n"
            "  B2: stmts=1 -> B1\n"
            "  B3: stmts=1 -> B1\n"
            "  B4: if -> B2 B3\n"
            "  B5: if -> B2 B3\n"
            "  B6: -> B3\n"
            "  B7: -> B1\n");
}

TEST(CfgShape, WhileLoopBackEdge) {
  EXPECT_EQ(cfgDump("int main(void) {\n"
                    "  int i = 0;\n"
                    "  while (i < 10) { i = i + 1; }\n"
                    "  return i;\n"
                    "}"),
            "cfg main: blocks=6 entry=B0 exit=B1\n"
            "  B0: stmts=1 -> B2\n"
            "  B1: exit\n"
            "  B2: if -> B3 B4\n"
            "  B3: stmts=1 -> B2\n"
            "  B4: stmts=1 -> B1\n"
            "  B5: -> B1\n");
}

TEST(CfgShape, ForLoopHasDedicatedIncrementBlock) {
  // B4 is the increment block (the ForStmt in its statement list stands
  // for the increment expression — static/Dataflow.h's convention).
  EXPECT_EQ(cfgDump("int main(void) {\n"
                    "  int s = 0;\n"
                    "  for (int i = 0; i < 4; i++) { s = s + i; }\n"
                    "  return s;\n"
                    "}"),
            "cfg main: blocks=7 entry=B0 exit=B1\n"
            "  B0: stmts=2 -> B2\n"
            "  B1: exit\n"
            "  B2: if -> B3 B5\n"
            "  B3: stmts=1 -> B4\n"
            "  B4: stmts=1 -> B2\n"
            "  B5: stmts=1 -> B1\n"
            "  B6: -> B1\n");
}

TEST(CfgShape, SwitchDispatchWithFallthroughAndDefault) {
  // One switch terminator with labeled edges; case 2's block falls
  // through into case 3's (B4 -> B5) with no re-dispatch.
  EXPECT_EQ(cfgDump("int main(void) {\n"
                    "  int x = 2, r = 0;\n"
                    "  switch (x) {\n"
                    "  case 1: r = 1; break;\n"
                    "  case 2: r = 2;\n"
                    "  case 3: r = r + 3; break;\n"
                    "  default: r = 9;\n"
                    "  }\n"
                    "  return r;\n"
                    "}"),
            "cfg main: blocks=11 entry=B0 exit=B1\n"
            "  B0: stmts=1 switch -> B3(case 1) B4(case 2) B5(case 3) "
            "B6(default)\n"
            "  B1: exit\n"
            "  B2: stmts=1 -> B1\n"
            "  B3: stmts=1 -> B2\n"
            "  B4: stmts=1 -> B5\n"
            "  B5: stmts=1 -> B2\n"
            "  B6: stmts=1 -> B2\n"
            "  B7: -> B3\n"
            "  B8: -> B4\n"
            "  B9: -> B6\n"
            "  B10: -> B1\n");
}

TEST(CfgShape, GotoFormsBackEdgeThroughLabelBlock) {
  EXPECT_EQ(cfgDump("int main(void) {\n"
                    "  int i = 0;\n"
                    "again:\n"
                    "  i = i + 1;\n"
                    "  if (i < 3) goto again;\n"
                    "  return i;\n"
                    "}"),
            "cfg main: blocks=7 entry=B0 exit=B1\n"
            "  B0: stmts=1 -> B2\n"
            "  B1: exit\n"
            "  B2: stmts=1 if -> B3 B4\n"
            "  B3: -> B2\n"
            "  B4: stmts=1 -> B1\n"
            "  B5: -> B4\n"
            "  B6: -> B1\n");
}

TEST(CfgShape, RpoIsDeterministicAndStartsAtEntry) {
  const std::string Source = "int main(void) {\n"
                             "  int s = 0;\n"
                             "  for (int i = 0; i < 4; i++) {\n"
                             "    if (i == 2) continue;\n"
                             "    s = s + i;\n"
                             "  }\n"
                             "  return s;\n"
                             "}";
  Driver Drv;
  Driver::Compiled C = Drv.compile(Source, "t.c");
  ASSERT_TRUE(C->ok()) << C->errors();
  const FunctionDecl *F =
      C->ast().TU.findFunction(C->interner().lookup("main"));
  ASSERT_TRUE(F && F->Body);

  Cfg A = Cfg::build(F);
  Cfg B = Cfg::build(F);
  EXPECT_EQ(A.dump(C->interner()), B.dump(C->interner()))
      << "equal ASTs must produce equal graphs";
  EXPECT_EQ(A.rpo(), B.rpo());

  ASSERT_FALSE(A.rpo().empty());
  EXPECT_EQ(A.rpo().front(), A.entry());
  std::vector<BlockId> Sorted = A.rpo();
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(std::adjacent_find(Sorted.begin(), Sorted.end()), Sorted.end())
      << "RPO visits each reachable block exactly once";
  // Exit is reachable here, and every RPO id is a real block.
  EXPECT_NE(std::find(A.rpo().begin(), A.rpo().end(), A.exit()),
            A.rpo().end());
  for (BlockId Id : A.rpo())
    EXPECT_LT(Id, A.size());
}

//===----------------------------------------------------------------------===//
// Nullness domain
//===----------------------------------------------------------------------===//

TEST(NullnessFlow, UnconditionalNullDerefIsMust) {
  std::vector<UbReport> Must =
      flowMust("int main(void) { int *p = 0; return *p; }");
  ASSERT_TRUE(hasCode(Must, 6));
  for (const UbReport &R : Must)
    if (ubCode(R.Kind) == 6) {
      EXPECT_EQ(R.Verdict, FindingVerdict::Must);
      EXPECT_STREQ(R.Domain, "nullness");
    }
}

TEST(NullnessFlow, GuardRefinesAwayTheDeref) {
  // The true edge of `if (p)` proves p non-null: no finding anywhere.
  const std::string Source = "int main(void) {\n"
                             "  int *p = 0;\n"
                             "  if (p) { return *p; }\n"
                             "  return 0;\n"
                             "}";
  EXPECT_FALSE(hasCode(flowMust(Source), 6));
  EXPECT_FALSE(hasCode(flowHints(Source), 6));
}

TEST(NullnessFlow, BranchJoinDemotesToMayHint) {
  // p is null on one path and non-null on the other; after the join the
  // deref is possible-but-not-certain — a triage hint, not a verdict.
  const std::string Source = "int main(void) {\n"
                             "  int x = 1;\n"
                             "  int *p = 0;\n"
                             "  if (x) { p = &x; }\n"
                             "  return *p;\n"
                             "}";
  EXPECT_FALSE(hasCode(flowMust(Source), 6));
  std::vector<UbReport> Hints = flowHints(Source);
  ASSERT_TRUE(hasCode(Hints, 6));
  for (const UbReport &R : Hints)
    if (ubCode(R.Kind) == 6)
      EXPECT_EQ(R.Verdict, FindingVerdict::May);
}

TEST(NullnessFlow, AddressTakenPointerIsNeverTracked) {
  // &p escapes p: aliased mutation could rewrite it, so the domain must
  // not claim the deref — soundness discipline over precision.
  const std::string Source = "int f(int **h) { *h = (int *)0; return 0; }\n"
                             "int main(void) {\n"
                             "  int *p = 0;\n"
                             "  f(&p);\n"
                             "  return p ? *p : 0;\n"
                             "}";
  EXPECT_FALSE(hasCode(flowMust(Source), 6));
}

//===----------------------------------------------------------------------===//
// Initialization domain
//===----------------------------------------------------------------------===//

TEST(InitFlow, UninitializedReadIsMust) {
  std::vector<UbReport> Must =
      flowMust("int main(void) { int x; return x; }");
  ASSERT_TRUE(hasCode(Must, 19));
  for (const UbReport &R : Must)
    if (ubCode(R.Kind) == 19)
      EXPECT_STREQ(R.Domain, "init");
}

TEST(InitFlow, UninitializedPointerUseGetsItsOwnCode) {
  EXPECT_TRUE(hasCode(flowMust("int main(void) { int *p; return *p; }"),
                      30));
}

TEST(InitFlow, AssignmentOnEveryPathIsClean) {
  const std::string Source = "int main(void) {\n"
                             "  int a = 1;\n"
                             "  int x;\n"
                             "  if (a) { x = 1; } else { x = 2; }\n"
                             "  return x;\n"
                             "}";
  EXPECT_FALSE(hasCode(flowMust(Source), 19));
  EXPECT_FALSE(hasCode(flowHints(Source), 19));
}

TEST(InitFlow, AssignmentOnOnePathIsMayHint) {
  // The init lattice alone cannot rule the else path out, so the read
  // joins to maybe-initialized: hint, not verdict.
  const std::string Source = "int main(void) {\n"
                             "  int a = 1;\n"
                             "  int x;\n"
                             "  if (a) { x = 1; }\n"
                             "  return x;\n"
                             "}";
  EXPECT_FALSE(hasCode(flowMust(Source), 19));
  EXPECT_TRUE(hasCode(flowHints(Source), 19));
}

//===----------------------------------------------------------------------===//
// Interval domain
//===----------------------------------------------------------------------===//

TEST(IntervalFlow, FlowPropagatedZeroDivisorIsMust) {
  // The zero reaches the division through an assignment chain the
  // syntactic checker cannot see.
  std::vector<UbReport> Must =
      flowMust("int main(void) { int d = 5; d = d - 5; return 1 / d; }");
  ASSERT_TRUE(hasCode(Must, 1));
  for (const UbReport &R : Must)
    if (ubCode(R.Kind) == 1)
      EXPECT_STREQ(R.Domain, "interval");
}

TEST(IntervalFlow, ComparisonGuardRefinesTheInterval) {
  // d == [0,0] makes the true edge of `d != 0` infeasible: the guarded
  // division is unreachable and must produce nothing.
  const std::string Source = "int main(void) {\n"
                             "  int d = 0;\n"
                             "  if (d != 0) { return 1 / d; }\n"
                             "  return 0;\n"
                             "}";
  EXPECT_FALSE(hasCode(flowMust(Source), 1));
  EXPECT_FALSE(hasCode(flowHints(Source), 1));
}

TEST(IntervalFlow, OversizedAndNegativeShiftCounts) {
  EXPECT_TRUE(hasCode(flowMust("int main(void) { int s = 33;"
                               " return 1 << s; }"),
                      4));
  EXPECT_TRUE(hasCode(flowMust("int main(void) { int s = -1;"
                               " return 1 << s; }"),
                      32));
  EXPECT_FALSE(hasCode(flowMust("int main(void) { int s = 3;"
                                " return 1 << s; }"),
                      4));
}

TEST(IntervalFlow, ConstantIndexOutOfBoundsAtPointerFormation) {
  // &a[5] with a 3-element array: code 13 at formation (C11 6.5.6p8),
  // matching the machine's code assignment.
  EXPECT_TRUE(hasCode(flowMust("int main(void) { int a[3]; int i = 5;\n"
                               "  a[i] = 1; return 0; }"),
                      13));
  EXPECT_FALSE(hasCode(flowMust("int main(void) { int a[3]; int i = 2;\n"
                                "  a[i] = 1; return a[i]; }"),
                      13));
}

TEST(IntervalFlow, WideningTerminatesUnboundedLoops) {
  // The interval of i grows every sweep; without widening the fixpoint
  // would climb to the loop bound one sweep at a time. The assertion is
  // simply that compilation converges and stays quiet.
  const std::string Source = "int main(void) {\n"
                             "  int s = 0;\n"
                             "  for (int i = 0; i < 1000000; i++) {\n"
                             "    s = i - i;\n"
                             "  }\n"
                             "  return s;\n"
                             "}";
  EXPECT_FALSE(hasCode(flowMust(Source), 3));
  EXPECT_FALSE(hasCode(flowMust(Source), 1));
}

//===----------------------------------------------------------------------===//
// Determinism: the findings are a pure function of the AST
//===----------------------------------------------------------------------===//

// One source with findings from all three domains plus a may hint.
const char *DeterminismSource =
    "int main(void) {\n"
    "  int a = 1;\n"
    "  int x;\n"
    "  if (a) { x = 1; }\n"
    "  int d = 5; d = d - 5;\n"
    "  int *p = 0;\n"
    "  int r = x + 1 / d;\n"
    "  return r + *p;\n"
    "}";

TEST(FlowDeterminism, IdenticalAcrossSchedulers) {
  DriverOutcome Wave =
      Driver(AnalysisRequest::Builder()
                 .searchRuns(8)
                 .sched(SchedKind::Wave)
                 .buildOrDie())
          .runSource(DeterminismSource);
  DriverOutcome Steal =
      Driver(AnalysisRequest::Builder()
                 .searchRuns(8)
                 .sched(SchedKind::Stealing)
                 .buildOrDie())
          .runSource(DeterminismSource);
  ASSERT_TRUE(Wave.CompileOk && Steal.CompileOk);
  EXPECT_FALSE(renderStatic(Wave).empty());
  EXPECT_EQ(renderStatic(Wave), renderStatic(Steal));
}

TEST(FlowDeterminism, IdenticalAcrossWorkerCounts) {
  DriverOutcome One = Driver(AnalysisRequest::Builder()
                                 .searchRuns(8)
                                 .searchJobs(1)
                                 .buildOrDie())
                          .runSource(DeterminismSource);
  DriverOutcome Eight = Driver(AnalysisRequest::Builder()
                                   .searchRuns(8)
                                   .searchJobs(8)
                                   .buildOrDie())
                            .runSource(DeterminismSource);
  ASSERT_TRUE(One.CompileOk && Eight.CompileOk);
  EXPECT_FALSE(renderStatic(One).empty());
  EXPECT_EQ(renderStatic(One), renderStatic(Eight));
}

TEST(FlowDeterminism, IdenticalAcrossTranslationCacheStates) {
  AnalysisRequest Req = AnalysisRequest::Builder().buildOrDie();

  EngineConfig Off;
  Off.TranslationCacheEntries = 0;
  AnalysisEngine Cold(Off);
  DriverOutcome Uncached =
      Cold.submit(Req, DeterminismSource, "det.c").take();
  ASSERT_TRUE(Uncached.CompileOk);
  EXPECT_FALSE(Uncached.TranslationCacheHit);

  AnalysisEngine Warm;
  DriverOutcome Miss = Warm.submit(Req, DeterminismSource, "det.c").take();
  DriverOutcome Hit = Warm.submit(Req, DeterminismSource, "det.c").take();
  EXPECT_TRUE(Hit.TranslationCacheHit) << "second submit must hit";

  EXPECT_FALSE(renderStatic(Uncached).empty());
  EXPECT_EQ(renderStatic(Uncached), renderStatic(Miss));
  EXPECT_EQ(renderStatic(Uncached), renderStatic(Hit));
}

} // namespace
