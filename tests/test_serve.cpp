//===- tests/test_serve.cpp - kcc-serve daemon and protocol tests -------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The analysis daemon (serve/Server.h) multiplexes concurrent network
// clients onto one warm AnalysisEngine, and four properties carry the
// subsystem:
//
//  * Fidelity: outcomes that cross the wire are the outcomes a local
//    engine produces — N concurrent clients submitting a
//    duplicate-heavy corpus get results identical to a local run, for
//    every deterministic field (verdicts, reports, output, exit codes,
//    witnesses, order counts).
//  * Backpressure is structured: past the per-client or engine-wide
//    in-flight bound, submits are rejected with an `overloaded` error
//    frame — never queued without bound, never a hang.
//  * Hostile or unlucky clients cost only their own connection:
//    half-written frames, garbage, oversized announcements, and
//    mid-job disconnects leave the daemon serving everyone else.
//  * Drain is graceful: requestStop() finishes in-flight jobs, flushes
//    their results, and run() returns 0 — and a long-lived daemon's
//    reclaimable memory returns to zero between bursts (the
//    service-mode reclaim blind spot, fixed by the loop's idle-point
//    reclamation).
//
// Everything runs in-process (the daemon on its own thread, clients on
// the test thread) over Unix-domain sockets under /tmp; under
// -DCUNDEF_TSAN=ON this suite runs instrumented (ctest -L tsan).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"
#include "support/Strings.h"

#include "../bench/BenchUtil.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cundef;

namespace {

//===----------------------------------------------------------------------===//
// Fixture: an in-process daemon on its own thread.
//===----------------------------------------------------------------------===//

struct DaemonFixture {
  std::unique_ptr<ServeDaemon> Daemon;
  std::thread Loop;
  std::string Path;
  int ExitCode = -1;

  ~DaemonFixture() {
    if (Loop.joinable())
      stop();
  }

  void start(ServeConfig Cfg = ServeConfig()) {
    static unsigned Counter = 0;
    Path = strFormat("/tmp/cundef-serve-%d-%u.sock", ::getpid(), Counter++);
    Cfg.UnixPath = Path;
    Daemon = std::make_unique<ServeDaemon>(std::move(Cfg));
    std::string Err;
    ASSERT_TRUE(Daemon->listen(Err)) << Err;
    Loop = std::thread([this] { ExitCode = Daemon->run(); });
  }

  /// Graceful stop; the drain contract says run() returns 0.
  void stop() {
    Daemon->requestStop();
    Loop.join();
    EXPECT_EQ(ExitCode, 0);
    ::unlink(Path.c_str());
  }

  RemoteEndpoint endpoint() const {
    RemoteEndpoint Ep;
    Ep.IsUnix = true;
    Ep.UnixPath = Path;
    return Ep;
  }

  /// Spin until \p Pred or ~10s (1-core CI is slow under TSan).
  template <typename Fn> bool waitFor(Fn Pred) {
    for (int I = 0; I < 2000; ++I) {
      if (Pred())
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return Pred();
  }
};

/// A raw (protocol-bypassing) connection for the hostile-client tests.
struct RawConn {
  int Fd = -1;
  std::string ReadBuf;

  ~RawConn() { close(); }

  bool open(const std::string &Path) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strcpy(Addr.sun_path, Path.c_str());
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
      close();
      return false;
    }
    return true;
  }

  void close() {
    if (Fd >= 0) {
      ::close(Fd);
      Fd = -1;
    }
  }

  bool sendRaw(const std::string &Bytes) {
    size_t Sent = 0;
    while (Sent < Bytes.size()) {
      ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                         MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Sent += static_cast<size_t>(N);
    }
    return true;
  }

  bool readFrame(std::string &Payload, std::string &Err,
                 int TimeoutMs = 10000) {
    return readFrameBlocking(Fd, ReadBuf, Payload, Err, TimeoutMs);
  }

  /// Consumes the server hello every connection starts with.
  bool eatHello() {
    std::string Payload, Err;
    return readFrame(Payload, Err) &&
           Payload.find("\"type\":\"hello\"") != std::string::npos;
  }
};

AnalysisRequest defaultRequest(unsigned Runs = 16) {
  AnalysisRequest::Builder B;
  B.searchRuns(Runs);
  auto R = B.build();
  EXPECT_TRUE(R.ok());
  return R.Request;
}

/// The duplicate-heavy corpus: order-dependent UB, output + exit code
/// passthrough, a compile error, clean commuting trees — each shape
/// twice, so the daemon's translation cache sees duplicates within one
/// client and across concurrent ones.
std::vector<BatchInput> corpus() {
  std::vector<BatchInput> Base = {
      {"int d = 5;\n"
       "int setDenom(int x) { return d = x; }\n"
       "int main(void) { return (10 / d) + setDenom(0); }\n",
       "paper.c"},
      {"#include <stdio.h>\n"
       "int main(void) { printf(\"out-%d\\n\", 42); return 7; }\n",
       "hello.c"},
      {"int main(void) { return 0 }\n", "broken.c"},
      {"static int g(int x) { return x + 1; }\n"
       "int main(void) { int t = 0; t += g(0) + g(1); t += g(2) + g(3);\n"
       "  return t > 0 ? 0 : 1; }\n",
       "commute.c"},
  };
  std::vector<BatchInput> Out = Base;
  for (const BatchInput &In : Base)
    Out.push_back({In.Source, "dup-" + In.Name});
  return Out;
}

/// Every deterministic field must survive the wire; volatile ones
/// (timings, cache hits, steal counts) legitimately differ.
void expectSameOutcome(const DriverOutcome &A, const DriverOutcome &B,
                       const std::string &Tag) {
  EXPECT_EQ(A.CompileOk, B.CompileOk) << Tag;
  EXPECT_EQ(A.CompileErrors, B.CompileErrors) << Tag;
  EXPECT_EQ(A.anyUb(), B.anyUb()) << Tag;
  EXPECT_EQ(A.renderReport(), B.renderReport()) << Tag;
  EXPECT_EQ(A.StaticUb.size(), B.StaticUb.size()) << Tag;
  EXPECT_EQ(A.StaticHints.size(), B.StaticHints.size()) << Tag;
  EXPECT_EQ(A.DynamicUb.size(), B.DynamicUb.size()) << Tag;
  EXPECT_EQ(A.Status, B.Status) << Tag;
  EXPECT_EQ(A.ExitCode, B.ExitCode) << Tag;
  EXPECT_EQ(A.Output, B.Output) << Tag;
  EXPECT_EQ(A.OrdersExplored, B.OrdersExplored) << Tag;
  EXPECT_EQ(A.OrdersDeduped, B.OrdersDeduped) << Tag;
  EXPECT_EQ(A.SearchTruncated, B.SearchTruncated) << Tag;
  EXPECT_EQ(A.SearchWitness, B.SearchWitness) << Tag;
  EXPECT_EQ(A.StaticOnly, B.StaticOnly) << Tag;
}

//===----------------------------------------------------------------------===//
// Endpoint parsing (the kcc --remote surface).
//===----------------------------------------------------------------------===//

TEST(ServeEndpoint, ParsesTcpAndUnixForms) {
  RemoteEndpoint Ep;
  std::string Err;
  ASSERT_TRUE(parseRemoteEndpoint("localhost:7777", Ep, Err)) << Err;
  EXPECT_FALSE(Ep.IsUnix);
  EXPECT_EQ(Ep.Host, "localhost");
  EXPECT_EQ(Ep.Port, 7777u);

  ASSERT_TRUE(parseRemoteEndpoint("127.0.0.1:1", Ep, Err)) << Err;
  EXPECT_EQ(Ep.Port, 1u);

  ASSERT_TRUE(parseRemoteEndpoint("unix:/tmp/x.sock", Ep, Err)) << Err;
  EXPECT_TRUE(Ep.IsUnix);
  EXPECT_EQ(Ep.UnixPath, "/tmp/x.sock");
}

TEST(ServeEndpoint, RejectsMalformedTargets) {
  RemoteEndpoint Ep;
  std::string Err;
  // Each of these is an exit-2 usage error in kcc, never coerced.
  for (const char *Bad :
       {"unix:", "nocolon", ":7777", "host:", "host:0", "host:abc",
        "host:70000", "host:-1", "host:1O"}) {
    EXPECT_FALSE(parseRemoteEndpoint(Bad, Ep, Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

//===----------------------------------------------------------------------===//
// Codec roundtrips: the wire must be lossless for deterministic state.
//===----------------------------------------------------------------------===//

TEST(ServeProtocol, OutcomeRoundtripsLosslessly) {
  DriverOutcome O;
  O.CompileOk = true;
  O.CompileErrors = "warn: line\n";
  UbReport R;
  R.Kind = static_cast<UbKind>(33);
  R.Description = "unsequenced modification of 'x' \"quoted\"";
  R.Function = "main";
  R.Loc = SourceLoc(2, 4, 7);
  R.StaticFinding = false;
  R.Verdict = FindingVerdict::Must;
  R.Domain = "nullness";
  O.DynamicUb.push_back(R);
  R.StaticFinding = true;
  R.Verdict = FindingVerdict::May;
  O.StaticHints.push_back(R);
  O.Status = RunStatus::UbDetected;
  O.ExitCode = 42;
  O.Output = std::string("bin\x01\xffout\n", 9);
  O.OrdersExplored = 12;
  O.OrdersDeduped = 3;
  O.SearchTruncated = true;
  O.SearchDropped = 2;
  O.SearchSteals = 5;
  O.SearchEvictions = 1;
  O.SearchPeakFrontier = 9;
  O.TranslationCacheHit = true;
  O.FrontendMicros = 123.5;
  O.SearchMicros = 456.25;
  O.SearchWitness = {1, 0, 1, 1};

  std::string Json = serializeOutcome(O);
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(JsonValue::parse(Json, V, Err)) << Err;
  DriverOutcome Back;
  ASSERT_TRUE(parseOutcome(V, Back, Err)) << Err;

  expectSameOutcome(O, Back, "roundtrip");
  // The volatile fields round-trip too (the daemon's honest values).
  EXPECT_EQ(Back.SearchSteals, O.SearchSteals);
  EXPECT_EQ(Back.SearchEvictions, O.SearchEvictions);
  EXPECT_EQ(Back.SearchPeakFrontier, O.SearchPeakFrontier);
  EXPECT_EQ(Back.TranslationCacheHit, O.TranslationCacheHit);
  EXPECT_DOUBLE_EQ(Back.FrontendMicros, O.FrontendMicros);
  EXPECT_DOUBLE_EQ(Back.SearchMicros, O.SearchMicros);
  ASSERT_EQ(Back.DynamicUb.size(), 1u);
  EXPECT_EQ(Back.DynamicUb[0].Kind, O.DynamicUb[0].Kind);
  EXPECT_EQ(Back.DynamicUb[0].Description, O.DynamicUb[0].Description);
  EXPECT_EQ(Back.DynamicUb[0].Loc.File, 2u);
  EXPECT_EQ(Back.DynamicUb[0].Loc.Line, 4u);
  EXPECT_EQ(Back.DynamicUb[0].Loc.Col, 7u);
  EXPECT_EQ(Back.DynamicUb[0].Verdict, FindingVerdict::Must);
  // Domain strings intern back to the static literals (never owned).
  EXPECT_STREQ(Back.DynamicUb[0].Domain, "nullness");
  ASSERT_EQ(Back.StaticHints.size(), 1u);
  EXPECT_EQ(Back.StaticHints[0].Verdict, FindingVerdict::May);
}

TEST(ServeProtocol, RequestRoundtripsAndRevalidates) {
  AnalysisRequest::Builder B;
  B.target(TargetConfig::ilp32())
      .style(RuleStyle::PrecedenceChain)
      .order(EvalOrderKind::RightToLeft)
      .seed(77)
      .searchRuns(32)
      .searchJobs(3)
      .dedup(false)
      .snapshots(false)
      .sched(SchedKind::Wave)
      .staticAnalyze(StaticAnalysisMode::On);
  auto Built = B.build();
  ASSERT_TRUE(Built.ok());

  std::string Json = serializeRequest(Built.Request);
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(JsonValue::parse(Json, V, Err)) << Err;
  AnalysisRequest Back;
  ASSERT_TRUE(parseRequest(V, Back, Err)) << Err;

  EXPECT_EQ(Back.target().IntSize, Built.Request.target().IntSize);
  EXPECT_EQ(Back.target().PointerSize, Built.Request.target().PointerSize);
  EXPECT_EQ(Back.machine().Style, RuleStyle::PrecedenceChain);
  EXPECT_EQ(Back.machine().Order, EvalOrderKind::RightToLeft);
  EXPECT_EQ(Back.machine().Seed, 77u);
  EXPECT_EQ(Back.searchRuns(), 32u);
  EXPECT_EQ(Back.searchJobs(), 3u);
  EXPECT_FALSE(Back.searchDedup());
  EXPECT_FALSE(Back.searchSnapshots());
  EXPECT_EQ(Back.searchSched(), SchedKind::Wave);

  // Parsing re-validates through the Builder: a daemon cannot be
  // talked into a configuration local kcc would reject.
  JsonValue Hostile;
  ASSERT_TRUE(JsonValue::parse("{\"search_runs\":0}", Hostile, Err)) << Err;
  AnalysisRequest Rejected;
  EXPECT_FALSE(parseRequest(Hostile, Rejected, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(ServeProtocol, StatsRoundtrip) {
  SchedulerStats P;
  P.Programs = 3;
  P.Jobs = 4;
  P.Steals = 11;
  P.RunsExecuted = 100;
  P.RunsCommitted = 90;
  P.DedupHits = 7;
  P.SnapshotTakes = 5;
  EngineMemoryStats M;
  M.PendingJobs = 1;
  M.ProgramSlots = 9;
  TranslationCacheStats T;
  T.Lookups = 8;
  T.Hits = 6;
  T.Misses = 2;
  ResultCacheStats R;
  R.Lookups = 12;
  R.Hits = 4;
  R.Misses = 8;
  R.InflightJoins = 3;
  P.SnapshotSharedHits = 13;

  std::string Json = serializeStats(P, M, T, R);
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(JsonValue::parse(Json, V, Err)) << Err;
  SchedulerStats P2;
  EngineMemoryStats M2;
  TranslationCacheStats T2;
  ResultCacheStats R2;
  ASSERT_TRUE(parseStats(V, P2, M2, T2, R2, Err)) << Err;
  EXPECT_EQ(P2.Programs, 3u);
  EXPECT_EQ(P2.Jobs, 4u);
  EXPECT_EQ(P2.Steals, 11u);
  EXPECT_EQ(P2.RunsExecuted, 100u);
  EXPECT_EQ(P2.RunsCommitted, 90u);
  EXPECT_EQ(P2.DedupHits, 7u);
  EXPECT_EQ(P2.SnapshotTakes, 5u);
  EXPECT_EQ(M2.PendingJobs, 1u);
  EXPECT_EQ(M2.ProgramSlots, 9u);
  EXPECT_EQ(T2.Lookups, 8u);
  EXPECT_EQ(T2.Hits, 6u);
  EXPECT_EQ(T2.Misses, 2u);
  EXPECT_EQ(R2.Lookups, 12u);
  EXPECT_EQ(R2.Hits, 4u);
  EXPECT_EQ(R2.Misses, 8u);
  EXPECT_EQ(R2.InflightJoins, 3u);
  EXPECT_EQ(P2.SnapshotSharedHits, 13u);
}

TEST(ServeProtocol, FramingSplitsAndCoalesces) {
  // One buffer, three frames appended back to back: extraction must
  // yield each in order, and a partial tail must wait for more bytes.
  std::string Buffer;
  appendFrame(Buffer, "{\"a\":1}");
  appendFrame(Buffer, "{\"b\":2}");
  std::string Tail;
  appendFrame(Tail, "{\"c\":3}");
  Buffer += Tail.substr(0, 5); // header + 1 byte of the third frame

  std::string Payload;
  ASSERT_EQ(extractFrame(Buffer, Payload), 1);
  EXPECT_EQ(Payload, "{\"a\":1}");
  ASSERT_EQ(extractFrame(Buffer, Payload), 1);
  EXPECT_EQ(Payload, "{\"b\":2}");
  EXPECT_EQ(extractFrame(Buffer, Payload), 0); // partial: need more
  Buffer += Tail.substr(5);
  ASSERT_EQ(extractFrame(Buffer, Payload), 1);
  EXPECT_EQ(Payload, "{\"c\":3}");
  EXPECT_TRUE(Buffer.empty());

  // An announced length beyond the cap is a protocol error, detected
  // from the 4 header bytes alone.
  std::string Huge("\xFF\xFF\xFF\xFF", 4);
  EXPECT_EQ(extractFrame(Huge, Payload), -1);
}

//===----------------------------------------------------------------------===//
// Fidelity: concurrent clients vs a local engine.
//===----------------------------------------------------------------------===//

TEST(ServeDaemonTest, ConcurrentClientsMatchLocalEngine) {
  const AnalysisRequest Req = defaultRequest();
  const std::vector<BatchInput> Inputs = corpus();

  // The local baseline: one engine, same request, same corpus.
  std::vector<DriverOutcome> Local;
  {
    AnalysisEngine Eng(engineConfigFor(Req));
    std::vector<JobHandle> Handles = Eng.submitBatch(Req, Inputs);
    for (JobHandle &H : Handles)
      Local.push_back(H.take());
  }

  DaemonFixture D;
  D.start();
  if (HasFatalFailure())
    return;

  constexpr unsigned NumClients = 4;
  std::vector<std::vector<DriverOutcome>> Results(NumClients);
  std::vector<std::string> Errors(NumClients);
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C < NumClients; ++C) {
    Clients.emplace_back([&, C] {
      RemoteClient Client;
      std::string Err;
      if (!Client.connect(D.endpoint(), Err)) {
        Errors[C] = Err;
        return;
      }
      std::vector<double> Micros;
      if (!Client.runBatch(Req, Inputs, Results[C], Micros, Err))
        Errors[C] = Err;
    });
  }
  for (std::thread &T : Clients)
    T.join();

  for (unsigned C = 0; C < NumClients; ++C) {
    ASSERT_TRUE(Errors[C].empty()) << "client " << C << ": " << Errors[C];
    ASSERT_EQ(Results[C].size(), Inputs.size());
    for (size_t I = 0; I < Inputs.size(); ++I)
      expectSameOutcome(Local[I], Results[C][I],
                        strFormat("client %u, %s", C,
                                  Inputs[I].Name.c_str()));
  }

  ServeCounters Counters = D.Daemon->counters();
  EXPECT_EQ(Counters.Accepted, NumClients);
  EXPECT_EQ(Counters.Submitted, NumClients * Inputs.size());
  EXPECT_EQ(Counters.Completed, NumClients * Inputs.size());
  EXPECT_EQ(Counters.Rejected, 0u);
  D.stop();
}

//===----------------------------------------------------------------------===//
// Backpressure: structured rejection, never a hang.
//===----------------------------------------------------------------------===//

TEST(ServeDaemonTest, OverloadedSubmitsRejectedStructurally) {
  ServeConfig Cfg;
  Cfg.MaxInflightPerClient = 1;
  Cfg.Engine.Workers = 1;
  DaemonFixture D;
  D.start(std::move(Cfg));
  if (HasFatalFailure())
    return;

  // Job 1 is slow (deep tree, generous budget, one worker); submits
  // 2..5 arrive while it is in flight and the per-client bound is 1,
  // so all four are rejected deterministically.
  const AnalysisRequest Slow = defaultRequest(1024);
  RemoteClient Client;
  std::string Err;
  ASSERT_TRUE(Client.connect(D.endpoint(), Err)) << Err;
  ASSERT_TRUE(Client.send(submitFrame(1, "slow.c",
                                      cundef_bench::deepTreeProgram(12, 128),
                                      Slow),
                          Err))
      << Err;
  for (uint64_t Id = 2; Id <= 5; ++Id)
    ASSERT_TRUE(Client.send(
        submitFrame(Id, "quick.c", "int main(void){return 0;}", Slow), Err))
        << Err;

  unsigned Overloaded = 0, Finished = 0;
  while (Finished == 0 || Overloaded < 4) {
    RemoteMessage Msg;
    ASSERT_TRUE(Client.receive(Msg, Err, /*TimeoutMs=*/60000)) << Err;
    if (Msg.Type == "error") {
      EXPECT_EQ(Msg.Code, serveerr::Overloaded);
      EXPECT_GE(Msg.Id, 2u);
      ++Overloaded;
    } else if (Msg.Type == "finished") {
      EXPECT_EQ(Msg.Id, 1u);
      ++Finished;
    }
  }
  EXPECT_EQ(Overloaded, 4u);
  EXPECT_EQ(Finished, 1u);
  EXPECT_GE(D.Daemon->counters().Rejected, 4u);

  // The connection survived the rejections: the next submit runs.
  std::vector<DriverOutcome> Outcomes;
  std::vector<double> Micros;
  ASSERT_TRUE(Client.runBatch(defaultRequest(),
                              {{"int main(void){return 5;}", "after.c"}},
                              Outcomes, Micros, Err))
      << Err;
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].ExitCode, 5);
  D.stop();
}

TEST(ServeDaemonTest, QueueDepthBoundsAcrossClients) {
  ServeConfig Cfg;
  Cfg.MaxQueueDepth = 1;
  Cfg.Engine.Workers = 1;
  DaemonFixture D;
  D.start(std::move(Cfg));
  if (HasFatalFailure())
    return;

  const AnalysisRequest Slow = defaultRequest(1024);
  RemoteClient A, B;
  std::string Err;
  ASSERT_TRUE(A.connect(D.endpoint(), Err)) << Err;
  ASSERT_TRUE(B.connect(D.endpoint(), Err)) << Err;
  ASSERT_TRUE(A.send(submitFrame(1, "slow.c",
                                 cundef_bench::deepTreeProgram(12, 128), Slow),
                     Err))
      << Err;
  // A's job must be admitted before B's arrives for the rejection to
  // be deterministic; the Submitted counter observes admission.
  ASSERT_TRUE(D.waitFor([&] { return D.Daemon->counters().Submitted >= 1; }));

  ASSERT_TRUE(
      B.send(submitFrame(1, "b.c", "int main(void){return 0;}", Slow), Err))
      << Err;
  RemoteMessage Msg;
  ASSERT_TRUE(B.receive(Msg, Err, /*TimeoutMs=*/60000)) << Err;
  EXPECT_EQ(Msg.Type, "error");
  EXPECT_EQ(Msg.Code, serveerr::Overloaded);

  ASSERT_TRUE(A.receive(Msg, Err, /*TimeoutMs=*/120000)) << Err;
  while (Msg.Type != "finished")
    ASSERT_TRUE(A.receive(Msg, Err, /*TimeoutMs=*/120000)) << Err;
  EXPECT_EQ(Msg.Id, 1u);
  D.stop();
}

//===----------------------------------------------------------------------===//
// Hostile clients cost only their own connection.
//===----------------------------------------------------------------------===//

TEST(ServeDaemonTest, HalfWrittenFrameDoesNotWedgeTheDaemon) {
  DaemonFixture D;
  D.start();
  if (HasFatalFailure())
    return;

  RawConn Raw;
  ASSERT_TRUE(Raw.open(D.Path));
  ASSERT_TRUE(Raw.eatHello());
  // A frame header promising 100 bytes, followed by 10 and silence.
  std::string Partial("\x00\x00\x00\x64", 4);
  Partial += "{\"type\":\"";
  ASSERT_TRUE(Raw.sendRaw(Partial));

  // The daemon must keep serving other clients while that frame hangs.
  RemoteClient Client;
  std::string Err;
  ASSERT_TRUE(Client.connect(D.endpoint(), Err)) << Err;
  std::vector<DriverOutcome> Outcomes;
  std::vector<double> Micros;
  ASSERT_TRUE(Client.runBatch(defaultRequest(),
                              {{"int main(void){return 3;}", "ok.c"}},
                              Outcomes, Micros, Err))
      << Err;
  EXPECT_EQ(Outcomes[0].ExitCode, 3);

  Raw.close(); // the half-writer vanishes mid-frame
  D.stop();
}

TEST(ServeDaemonTest, GarbageFrameGetsProtocolErrorAndClose) {
  DaemonFixture D;
  D.start();
  if (HasFatalFailure())
    return;

  RawConn Raw;
  ASSERT_TRUE(Raw.open(D.Path));
  ASSERT_TRUE(Raw.eatHello());
  std::string Frame;
  appendFrame(Frame, "this is not json");
  ASSERT_TRUE(Raw.sendRaw(Frame));

  std::string Payload, Err;
  ASSERT_TRUE(Raw.readFrame(Payload, Err)) << Err;
  EXPECT_NE(Payload.find("\"type\":\"error\""), std::string::npos) << Payload;
  EXPECT_NE(Payload.find("\"code\":\"protocol\""), std::string::npos)
      << Payload;
  // Protocol errors are connection-fatal: the next read is EOF.
  EXPECT_FALSE(Raw.readFrame(Payload, Err));
  EXPECT_GE(D.Daemon->counters().ProtocolErrors, 1u);
  D.stop();
}

TEST(ServeDaemonTest, OversizedFrameAnnouncementRejected) {
  DaemonFixture D;
  D.start();
  if (HasFatalFailure())
    return;

  RawConn Raw;
  ASSERT_TRUE(Raw.open(D.Path));
  ASSERT_TRUE(Raw.eatHello());
  // 4 GiB - 1 announced: rejected from the header alone, nothing
  // allocated, connection closed after a structured error.
  ASSERT_TRUE(Raw.sendRaw(std::string("\xFF\xFF\xFF\xFF", 4)));
  std::string Payload, Err;
  ASSERT_TRUE(Raw.readFrame(Payload, Err)) << Err;
  EXPECT_NE(Payload.find("\"code\":\"protocol\""), std::string::npos);
  EXPECT_FALSE(Raw.readFrame(Payload, Err));
  D.stop();
}

TEST(ServeDaemonTest, MidJobDisconnectDropsOnlyThatClient) {
  ServeConfig Cfg;
  Cfg.Engine.Workers = 1;
  DaemonFixture D;
  D.start(std::move(Cfg));
  if (HasFatalFailure())
    return;

  {
    RawConn Raw;
    ASSERT_TRUE(Raw.open(D.Path));
    ASSERT_TRUE(Raw.eatHello());
    std::string Frame;
    appendFrame(Frame,
                submitFrame(1, "doomed.c",
                            cundef_bench::deepTreeProgram(8, 64),
                            defaultRequest(64)));
    ASSERT_TRUE(Raw.sendRaw(Frame));
    ASSERT_TRUE(
        D.waitFor([&] { return D.Daemon->counters().Submitted >= 1; }));
  } // the client vanishes with its job in flight

  // The orphaned job still completes (results dropped), and the daemon
  // keeps serving.
  ASSERT_TRUE(D.waitFor([&] { return D.Daemon->counters().Completed >= 1; }));
  RemoteClient Client;
  std::string Err;
  ASSERT_TRUE(Client.connect(D.endpoint(), Err)) << Err;
  std::vector<DriverOutcome> Outcomes;
  std::vector<double> Micros;
  ASSERT_TRUE(Client.runBatch(defaultRequest(),
                              {{"int main(void){return 9;}", "alive.c"}},
                              Outcomes, Micros, Err))
      << Err;
  EXPECT_EQ(Outcomes[0].ExitCode, 9);
  D.stop();
}

//===----------------------------------------------------------------------===//
// Graceful drain.
//===----------------------------------------------------------------------===//

TEST(ServeDaemonTest, SigtermDrainFinishesInflightAndFlushes) {
  ServeConfig Cfg;
  Cfg.Engine.Workers = 1;
  DaemonFixture D;
  D.start(std::move(Cfg));
  if (HasFatalFailure())
    return;

  RemoteClient Client;
  std::string Err;
  ASSERT_TRUE(Client.connect(D.endpoint(), Err)) << Err;
  const AnalysisRequest Req = defaultRequest(64);
  for (uint64_t Id = 1; Id <= 3; ++Id)
    ASSERT_TRUE(Client.send(
        submitFrame(Id, strFormat("drain%llu.c",
                                  static_cast<unsigned long long>(Id)),
                    cundef_bench::deepTreeProgram(6, 32, unsigned(Id)), Req),
        Err))
        << Err;
  ASSERT_TRUE(D.waitFor([&] { return D.Daemon->counters().Submitted >= 3; }));

  // Stop with all three in flight: the drain contract is that every
  // admitted job finishes and its result reaches the client.
  D.Daemon->requestStop();
  unsigned Finished = 0;
  while (Finished < 3) {
    RemoteMessage Msg;
    ASSERT_TRUE(Client.receive(Msg, Err, /*TimeoutMs=*/120000)) << Err;
    if (Msg.Type == "finished")
      ++Finished;
  }
  D.Loop.join();
  EXPECT_EQ(D.ExitCode, 0);
  ::unlink(D.Path.c_str());

  // After the drain the engine saw a clean shutdown; submits to a dead
  // socket fail at the transport, not by wedging.
  RemoteClient Late;
  EXPECT_FALSE(Late.connect(D.endpoint(), Err));
}

//===----------------------------------------------------------------------===//
// The service-mode reclaim fix + stats over the wire.
//===----------------------------------------------------------------------===//

TEST(ServeDaemonTest, ReclaimablesReturnToZeroBetweenBursts) {
  DaemonFixture D;
  D.start();
  if (HasFatalFailure())
    return;

  RemoteClient Client;
  std::string Err;
  ASSERT_TRUE(Client.connect(D.endpoint(), Err)) << Err;

  // Three bursts through the long-lived daemon; after each, the
  // loop's idle-point reclamation must return every reclaimable
  // counter to zero — the service-mode blind spot this PR fixes (a
  // daemon never calls drain() in the batch sense, so without the
  // idle hook, graveyard artifacts and retained search state would
  // accumulate for the process lifetime).
  for (int Burst = 0; Burst < 3; ++Burst) {
    std::vector<DriverOutcome> Outcomes;
    std::vector<double> Micros;
    ASSERT_TRUE(
        Client.runBatch(defaultRequest(), corpus(), Outcomes, Micros, Err))
        << Err;
    ASSERT_TRUE(D.waitFor([&] {
      EngineMemoryStats M = D.Daemon->engine().memoryStats();
      return M.PendingJobs == 0 && M.GraveyardArtifacts == 0 &&
             M.RetainedPrograms == 0 && M.PendingSnapshots == 0;
    })) << "burst " << Burst << " left reclaimable state behind";
  }
  EXPECT_GE(D.Daemon->counters().IdleReclaims, 1u);

  // The same numbers are visible over the wire via a stats request.
  SchedulerStats Pool;
  EngineMemoryStats Memory;
  TranslationCacheStats Translation;
  ResultCacheStats ResultC;
  ASSERT_TRUE(Client.queryStats(Pool, Memory, Translation, ResultC, Err))
      << Err;
  EXPECT_EQ(Memory.PendingJobs, 0u);
  EXPECT_EQ(Memory.GraveyardArtifacts, 0u);
  EXPECT_EQ(Memory.RetainedPrograms, 0u);
  EXPECT_GT(Pool.RunsExecuted, 0u);
  // The duplicate-heavy corpus hits the warm translation cache.
  EXPECT_GT(Translation.Lookups, 0u);
  EXPECT_GT(Translation.Hits, 0u);
  D.stop();
}

TEST(ServeDaemonTest, WarmResultCacheSurvivesIdleReclamation) {
  // The result-cache satellite regression: the daemon's idle-point
  // reclamation releases per-job state (graveyard artifacts, retained
  // programs, pending snapshots) but must NOT flush the warm caches —
  // they are the point of a persistent service. Two identical bursts
  // separated by a real idle reclaim: the second burst must resolve
  // from the result cache (hit rate > 0 over the wire) with outcomes
  // identical to the first burst's.
  DaemonFixture D;
  D.start();
  if (HasFatalFailure())
    return;

  RemoteClient Client;
  std::string Err;
  ASSERT_TRUE(Client.connect(D.endpoint(), Err)) << Err;

  std::vector<DriverOutcome> First, Second;
  std::vector<double> Micros;
  ASSERT_TRUE(Client.runBatch(defaultRequest(), corpus(), First, Micros, Err))
      << Err;

  // A genuine idle pass ran and the reclaimables are gone before the
  // second burst arrives.
  ASSERT_TRUE(D.waitFor([&] {
    EngineMemoryStats M = D.Daemon->engine().memoryStats();
    return D.Daemon->counters().IdleReclaims >= 1 && M.PendingJobs == 0 &&
           M.GraveyardArtifacts == 0 && M.RetainedPrograms == 0 &&
           M.PendingSnapshots == 0;
  })) << "no idle reclaim between the bursts";

  ResultCacheStats Before = D.Daemon->engine().resultCacheStats();
  ASSERT_TRUE(Client.runBatch(defaultRequest(), corpus(), Second, Micros, Err))
      << Err;
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I < First.size(); ++I)
    expectSameOutcome(First[I], Second[I], "burst #" + std::to_string(I));

  // Every submission of the identical second burst skipped its search:
  // the idle reclaim did not cost the cache a single warm entry.
  SchedulerStats Pool;
  EngineMemoryStats Memory;
  TranslationCacheStats Translation;
  ResultCacheStats ResultC;
  ASSERT_TRUE(Client.queryStats(Pool, Memory, Translation, ResultC, Err))
      << Err;
  EXPECT_GT(ResultC.hitRate(), 0.0);
  EXPECT_EQ(ResultC.Hits - Before.Hits, corpus().size())
      << "the whole second burst was served warm";
  EXPECT_EQ(ResultC.Misses, Before.Misses)
      << "no second-burst submission re-ran its search";
  D.stop();
}

} // namespace
