//===- tests/test_preprocessor.cpp - Preprocessor unit tests -----------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "libc/Headers.h"
#include "text/Preprocessor.h"

#include <gtest/gtest.h>

using namespace cundef;

namespace {

struct PpFixture {
  StringInterner Interner;
  DiagnosticEngine Diags;
  HeaderRegistry Headers;

  PpFixture() { registerStandardHeaders(Headers); }

  /// Preprocesses and renders the surviving tokens as spellings.
  std::string expand(const std::string &Source) {
    Preprocessor PP(Interner, Diags, Headers);
    std::vector<Token> Toks = PP.run(Source, "t.c");
    std::string Out;
    for (const Token &T : Toks) {
      if (T.is(TokenKind::Eof))
        break;
      if (!Out.empty())
        Out += ' ';
      switch (T.Kind) {
      case TokenKind::Identifier:
        Out += Interner.str(T.Sym);
        break;
      case TokenKind::IntLiteral:
      case TokenKind::FloatLiteral:
      case TokenKind::CharLiteral:
        Out += T.Text;
        break;
      case TokenKind::StringLiteral:
        Out += '"' + T.Text + '"';
        break;
      default: {
        std::string Name = tokenKindName(T.Kind);
        if (Name.size() >= 2 && Name.front() == '\'')
          Out += Name.substr(1, Name.size() - 2);
        else
          Out += Name;
      }
      }
    }
    return Out;
  }
};

TEST(Preprocessor, ObjectMacro) {
  PpFixture F;
  EXPECT_EQ(F.expand("#define N 42\nint x = N;"), "int x = 42 ;");
}

TEST(Preprocessor, FunctionMacro) {
  PpFixture F;
  EXPECT_EQ(F.expand("#define SQ(x) ((x)*(x))\nSQ(3)"),
            "( ( 3 ) * ( 3 ) )");
}

TEST(Preprocessor, NestedExpansion) {
  PpFixture F;
  EXPECT_EQ(F.expand("#define A B\n#define B 7\nA"), "7");
}

TEST(Preprocessor, RecursionIsPainted) {
  PpFixture F;
  EXPECT_EQ(F.expand("#define X X\nX"), "X");
}

TEST(Preprocessor, Stringize) {
  PpFixture F;
  EXPECT_EQ(F.expand("#define STR(x) #x\nSTR(a + b)"), "\"a + b\"");
}

TEST(Preprocessor, Paste) {
  PpFixture F;
  EXPECT_EQ(F.expand("#define GLUE(a, b) a##b\nGLUE(foo, bar)"), "foobar");
}

TEST(Preprocessor, ConditionalTaken) {
  PpFixture F;
  EXPECT_EQ(F.expand("#define ON 1\n#if ON\nyes\n#else\nno\n#endif"),
            "yes");
}

TEST(Preprocessor, ConditionalElse) {
  PpFixture F;
  EXPECT_EQ(F.expand("#if 0\nyes\n#else\nno\n#endif"), "no");
}

TEST(Preprocessor, ElifChain) {
  PpFixture F;
  EXPECT_EQ(
      F.expand("#define V 2\n#if V == 1\na\n#elif V == 2\nb\n#elif V == 3\n"
               "c\n#else\nd\n#endif"),
      "b");
}

TEST(Preprocessor, NestedConditionalsSkippedCorrectly) {
  PpFixture F;
  EXPECT_EQ(F.expand("#if 0\n#if 1\nx\n#endif\ny\n#endif\nz"), "z");
}

TEST(Preprocessor, DefinedOperator) {
  PpFixture F;
  EXPECT_EQ(F.expand("#define P\n#if defined(P) && !defined(Q)\nok\n#endif"),
            "ok");
}

TEST(Preprocessor, Undef) {
  PpFixture F;
  EXPECT_EQ(F.expand("#define N 1\n#undef N\nN"), "N");
}

TEST(Preprocessor, IncludeStandardHeader) {
  PpFixture F;
  std::string Out = F.expand("#include <stddef.h>\nsize_t n = NULL;");
  EXPECT_NE(Out.find("unsigned long"), std::string::npos);
  EXPECT_NE(Out.find("( ( void * ) 0 )"), std::string::npos);
  EXPECT_FALSE(F.Diags.hasErrors());
}

TEST(Preprocessor, IncludeGuardsWork) {
  PpFixture F;
  std::string Once = F.expand("#include <stddef.h>\n");
  std::string Twice = F.expand("#include <stddef.h>\n#include <stddef.h>\n");
  EXPECT_EQ(Once, Twice);
}

TEST(Preprocessor, MissingHeaderIsAnError) {
  PpFixture F;
  F.expand("#include <no_such_header.h>\n");
  EXPECT_TRUE(F.Diags.hasErrors());
}

TEST(Preprocessor, ErrorDirective) {
  PpFixture F;
  F.expand("#error custom message\n");
  ASSERT_TRUE(F.Diags.hasErrors());
  EXPECT_NE(F.Diags.render().find("custom message"), std::string::npos);
}

TEST(Preprocessor, ErrorInsideFalseBranchIgnored) {
  PpFixture F;
  F.expand("#if 0\n#error never\n#endif\nok");
  EXPECT_FALSE(F.Diags.hasErrors());
}

TEST(Preprocessor, KeywordsPromoted) {
  PpFixture F;
  Preprocessor PP(F.Interner, F.Diags, F.Headers);
  std::vector<Token> Toks = PP.run("int while_2 while", "t.c");
  ASSERT_GE(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwInt);
  EXPECT_EQ(Toks[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Toks[2].Kind, TokenKind::KwWhile);
}

TEST(Preprocessor, MacroShadowingKeyword) {
  PpFixture F;
  // A macro may expand to a keyword; promotion happens afterwards.
  Preprocessor PP(F.Interner, F.Diags, F.Headers);
  std::vector<Token> Toks = PP.run("#define LOOP while\nLOOP", "t.c");
  ASSERT_GE(Toks.size(), 1u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwWhile);
}

TEST(Preprocessor, VariadicMacro) {
  PpFixture F;
  EXPECT_EQ(F.expand("#define CALL(f, ...) f(__VA_ARGS__)\nCALL(g, 1, 2)"),
            "g ( 1 , 2 )");
}

TEST(Preprocessor, LineMacro) {
  PpFixture F;
  EXPECT_EQ(F.expand("\n\n__LINE__"), "3");
}

TEST(Preprocessor, PredefinedMacros) {
  PpFixture F;
  Preprocessor PP(F.Interner, F.Diags, F.Headers);
  EXPECT_TRUE(PP.isDefined("__STDC__"));
  EXPECT_TRUE(PP.isDefined("__CUNDEF__"));
}

TEST(Preprocessor, DefineFromApi) {
  PpFixture F;
  Preprocessor PP(F.Interner, F.Diags, F.Headers);
  PP.define("MODE", "3");
  std::vector<Token> Toks = PP.run("#if MODE == 3\nok\n#endif\n", "t.c");
  ASSERT_GE(Toks.size(), 1u);
  EXPECT_EQ(F.Interner.str(Toks[0].Sym), "ok");
}

} // namespace
