//===- tests/test_desktop_suite.cpp - The desktop-C scored suite ------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The desktop suite (suites/DesktopSuite.h) is test data on disk:
// slice-sized argv/file-I/O/string-munging pairs with manifest
// expectations. These tests pin down the loader (including its
// rejection of malformed manifests — a partially loaded suite would
// silently shrink the contract), the scored verdicts against the
// manifest, and the scheduler-independence of every verdict and
// witness at forced worker counts 1 and 4.
//
//===----------------------------------------------------------------------===//

#include "driver/Engine.h"
#include "suites/CatalogCoverage.h"
#include "suites/SuiteRunner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <unistd.h>

using namespace cundef;

namespace {

const DesktopSuite &suite() {
  static const DesktopSuite S = loadDesktopSuite();
  return S;
}

/// Writes a throwaway suite directory for loader-failure tests.
class TempSuiteDir {
public:
  TempSuiteDir() {
    static unsigned Counter = 0;
    Dir = ::testing::TempDir() + "cundef_desktop_" +
          std::to_string(::getpid()) + "_" + std::to_string(Counter++);
    std::string Cmd = "mkdir -p " + Dir;
    EXPECT_EQ(std::system(Cmd.c_str()), 0);
  }
  const std::string &path() const { return Dir; }
  void write(const std::string &Name, const std::string &Text) const {
    std::ofstream Out(Dir + "/" + Name);
    Out << Text;
  }

private:
  std::string Dir;
};

} // namespace

//===----------------------------------------------------------------------===//
// Loading.
//===----------------------------------------------------------------------===//

TEST(DesktopSuite, LoadsTheCommittedSuite) {
  const DesktopSuite &S = suite();
  ASSERT_TRUE(S.ok()) << S.Error;
  EXPECT_GE(S.Cases.size(), 25u);
  std::set<std::string> Names;
  unsigned KnownMisses = 0;
  for (const DesktopCase &Case : S.Cases) {
    EXPECT_TRUE(Names.insert(Case.Test.Name).second)
        << "duplicate case " << Case.Test.Name;
    EXPECT_FALSE(Case.Test.Bad.empty()) << Case.Test.Name;
    EXPECT_FALSE(Case.Test.Good.empty()) << Case.Test.Name;
    EXPECT_NE(Case.Test.Bad, Case.Test.Good) << Case.Test.Name;
    if (Case.ExpectFlagged) {
      EXPECT_GE(Case.ExpectedCode, 1u) << Case.Test.Name;
      EXPECT_LE(Case.ExpectedCode, 221u) << Case.Test.Name;
    } else {
      ++KnownMisses;
      EXPECT_EQ(Case.ExpectedCode, 0u) << Case.Test.Name;
    }
  }
  // The suite deliberately documents model gaps alongside detections.
  EXPECT_GE(KnownMisses, 1u);
  EXPECT_LT(KnownMisses, S.Cases.size() / 2);
}

TEST(DesktopSuite, RejectsMissingManifest) {
  TempSuiteDir Dir;
  DesktopSuite S = loadDesktopSuite(Dir.path());
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.Error.find("manifest.txt"), std::string::npos);
}

TEST(DesktopSuite, RejectsMalformedManifestLines) {
  struct BadLine {
    const char *Line;
    const char *WhyFragment;
  };
  const BadLine Cases[] = {
      {"lonely", "flag|miss"},
      {"c flag 9 extra", "trailing"},
      {"c maybe 9", "'flag' or 'miss'"},
      {"c flag 0", "nonzero code"},
      {"c miss 7", "code 0"},
      {"ghost flag 9", "ghost_bad.c"},
  };
  for (const BadLine &Bad : Cases) {
    TempSuiteDir Dir;
    Dir.write("manifest.txt", std::string(Bad.Line) + "\n");
    DesktopSuite S = loadDesktopSuite(Dir.path());
    EXPECT_FALSE(S.ok()) << Bad.Line;
    EXPECT_TRUE(S.Cases.empty()) << Bad.Line;
    EXPECT_NE(S.Error.find(Bad.WhyFragment), std::string::npos)
        << Bad.Line << " -> " << S.Error;
  }
}

TEST(DesktopSuite, LoadsMinimalValidDirectory) {
  TempSuiteDir Dir;
  Dir.write("manifest.txt", "# comment line\n\nmini flag 1\n");
  Dir.write("mini_bad.c", "int main(void) { return 1 / 0; }\n");
  Dir.write("mini_good.c", "int main(void) { return 0; }\n");
  DesktopSuite S = loadDesktopSuite(Dir.path());
  ASSERT_TRUE(S.ok()) << S.Error;
  ASSERT_EQ(S.Cases.size(), 1u);
  EXPECT_EQ(S.Cases[0].Test.Name, "mini");
  EXPECT_TRUE(S.Cases[0].ExpectFlagged);
  EXPECT_EQ(S.Cases[0].ExpectedCode, 1u);
}

//===----------------------------------------------------------------------===//
// Scoring against the manifest.
//===----------------------------------------------------------------------===//

TEST(DesktopSuite, EveryCaseMeetsItsManifestExpectation) {
  const DesktopSuite &S = suite();
  ASSERT_TRUE(S.ok()) << S.Error;
  DesktopScores Scores = scoreDesktopBatched(coverageRequest(true), S.Cases);
  ASSERT_EQ(Scores.PerCase.size(), S.Cases.size());
  for (const DesktopCaseScore &Case : Scores.PerCase)
    EXPECT_TRUE(Case.asExpected())
        << Case.Name << ": expected "
        << (Case.ExpectFlagged ? "flag" : "miss") << " "
        << Case.ExpectedCode << ", bad half "
        << (Case.FlaggedBad ? "flagged" : "clean") << " code "
        << Case.ReportedCode
        << (Case.FlaggedGood ? " (good half FLAGGED)" : "");
  EXPECT_EQ(Scores.AsExpected, Scores.PerCase.size());
  EXPECT_EQ(Scores.FalsePositives, 0u);
  EXPECT_EQ(Scores.WrongCode, 0u);
  EXPECT_EQ(Scores.MissedExpected, 0u);
  EXPECT_EQ(Scores.Detected + Scores.KnownMisses, Scores.PerCase.size());
  // Committed floor: the flow-sensitive static layer alone proves at
  // least these many bad halves without executing them (currently
  // scratch_return, lookup_signed, stats_uninit, and lower_const).
  EXPECT_GE(Scores.StaticDetected, 4u);
  EXPECT_LE(Scores.StaticDetected, Scores.Detected);

  std::string Table = renderDesktopTable(Scores);
  EXPECT_NE(Table.find("desktop: as-expected="), std::string::npos);
  EXPECT_NE(Table.find(" static="), std::string::npos);
  EXPECT_EQ(Table.find("UNEXPECTED"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Wave-vs-steal byte equality over the whole suite.
//===----------------------------------------------------------------------===//

namespace {

void expectIdentical(const DriverOutcome &A, const DriverOutcome &B,
                     const std::string &Tag) {
  EXPECT_EQ(A.CompileOk, B.CompileOk) << Tag;
  EXPECT_EQ(A.Status, B.Status) << Tag;
  EXPECT_EQ(A.ExitCode, B.ExitCode) << Tag;
  EXPECT_EQ(A.Output, B.Output) << Tag;
  EXPECT_EQ(A.SearchWitness, B.SearchWitness) << Tag;
  EXPECT_EQ(A.OrdersExplored, B.OrdersExplored) << Tag;
  EXPECT_EQ(A.OrdersDeduped, B.OrdersDeduped) << Tag;
  EXPECT_EQ(A.SearchTruncated, B.SearchTruncated) << Tag;
  EXPECT_EQ(A.renderReport(), B.renderReport()) << Tag;
}

} // namespace

TEST(DesktopSuite, WaveVsStealVerdictsAndWitnessesIdentical) {
  // The desktop programs are pointer-heavy and order-sensitive — the
  // shapes where a scheduler bug would first show. Every half of every
  // pair must produce byte-identical outcomes (verdict, witness,
  // report, program output) between the wave reference and the
  // stealing pool at forced widths 1 and 4.
  const DesktopSuite &S = suite();
  ASSERT_TRUE(S.ok()) << S.Error;
  std::vector<BatchInput> Programs;
  for (const DesktopCase &Case : S.Cases) {
    Programs.push_back({Case.Test.Bad, Case.Test.Name + "_bad.c"});
    Programs.push_back({Case.Test.Good, Case.Test.Name + "_good.c"});
  }

  AnalysisRequest Wave = AnalysisRequest::Builder()
                             .searchRuns(16)
                             .searchJobs(1)
                             .sched(SchedKind::Wave)
                             .buildOrDie();
  AnalysisRequest Steal = AnalysisRequest::Builder()
                              .searchRuns(16)
                              .searchJobs(1)
                              .sched(SchedKind::Stealing)
                              .buildOrDie();

  AnalysisEngine Ref;
  std::vector<JobHandle> RefJobs = Ref.submitBatch(Wave, Programs);
  for (unsigned Workers : {1u, 4u}) {
    EngineConfig Cfg;
    Cfg.Workers = Workers;
    Cfg.ClampWorkersToHardware = false;
    AnalysisEngine Eng(Cfg);
    std::vector<JobHandle> Jobs = Eng.submitBatch(Steal, Programs);
    ASSERT_EQ(Jobs.size(), RefJobs.size());
    for (size_t I = 0; I < Jobs.size(); ++I)
      expectIdentical(RefJobs[I].wait(), Jobs[I].wait(),
                      Programs[I].Name + " workers=" +
                          std::to_string(Workers));
    Eng.shutdown();
  }
  Ref.shutdown();
}
