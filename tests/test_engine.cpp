//===- tests/test_engine.cpp - AnalysisEngine service-layer tests -------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The persistent engine (driver/Engine.h) is the single submission
// path every entry point adapts to, so two properties carry the whole
// redesign:
//
//  * Request validation is total and typed: the builder rejects
//    nonsense combinations (zero budgets, absurd pools) once, at build
//    time, instead of every call site clamping differently.
//  * Pool persistence is invisible in the results: repeated submit()
//    batches through ONE engine — its worker pool, visited-set
//    generations, and snapshot cache reused across batches — produce
//    outcomes byte-identical to fresh per-batch drivers, at forced
//    worker counts 1 and 8 (the hardware clamp disabled so 8 really
//    means 8 interleaving workers, even on 1-core CI). Under
//    -DCUNDEF_TSAN=ON this suite runs instrumented (ctest -L tsan).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/ToolRunner.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace cundef;

namespace {

/// The batch every persistence round resubmits: order-dependent UB,
/// program output + exit code, a compile error, commuting clean trees.
const std::vector<BatchInput> &corpus() {
  static const std::vector<BatchInput> Inputs = {
      {"int d = 5;\n"
       "int setDenom(int x) { return d = x; }\n"
       "int main(void) { return (10 / d) + setDenom(0); }\n",
       "paper.c"},
      {"#include <stdio.h>\n"
       "int main(void) { printf(\"out-%d\\n\", 42); return 7; }\n",
       "hello.c"},
      {"int main(void) { return 0 }\n", "broken.c"},
      {"int a = 1;\n"
       "int set(int v) { a = v; return 0; }\n"
       "int main(void) { return (8 / a) + (set(0) + set(1)); }\n",
       "nested.c"},
      {"static int g(int x) { return x + 1; }\n"
       "int main(void) { int t = 0; t += g(0) + g(1); t += g(2) + g(3);\n"
       "  t += g(4) + g(5); return t > 0 ? 0 : 1; }\n",
       "commute.c"},
  };
  return Inputs;
}

void expectIdentical(const DriverOutcome &A, const DriverOutcome &B,
                     const std::string &Tag) {
  EXPECT_EQ(A.CompileOk, B.CompileOk) << Tag;
  EXPECT_EQ(A.CompileErrors, B.CompileErrors) << Tag;
  EXPECT_EQ(A.Status, B.Status) << Tag;
  EXPECT_EQ(A.ExitCode, B.ExitCode) << Tag;
  EXPECT_EQ(A.Output, B.Output) << Tag;
  EXPECT_EQ(A.SearchWitness, B.SearchWitness) << Tag;
  EXPECT_EQ(A.OrdersExplored, B.OrdersExplored) << Tag;
  EXPECT_EQ(A.OrdersDeduped, B.OrdersDeduped) << Tag;
  EXPECT_EQ(A.SearchTruncated, B.SearchTruncated) << Tag;
  EXPECT_EQ(A.SearchDropped, B.SearchDropped) << Tag;
  EXPECT_EQ(A.renderReport(), B.renderReport()) << Tag;
  ASSERT_EQ(A.DynamicUb.size(), B.DynamicUb.size()) << Tag;
  for (size_t I = 0; I < A.DynamicUb.size(); ++I) {
    EXPECT_EQ(A.DynamicUb[I].Kind, B.DynamicUb[I].Kind) << Tag;
    EXPECT_EQ(A.DynamicUb[I].Loc.Line, B.DynamicUb[I].Loc.Line) << Tag;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Request builder validation.
//===----------------------------------------------------------------------===//

TEST(RequestBuilder, DefaultsAreValid) {
  AnalysisRequest::Builder B;
  auto R = B.build();
  ASSERT_TRUE(R.ok()) << R.Err.Message;
  EXPECT_EQ(R.Request.searchRuns(), 1u);
  EXPECT_EQ(R.Request.searchJobs(), 1u);
  EXPECT_TRUE(R.Request.staticChecks());
  EXPECT_TRUE(R.Request.searchDedup());
  EXPECT_EQ(R.Request.searchSched(), SchedKind::Stealing);
}

TEST(RequestBuilder, RejectsZeroSearchBudget) {
  auto R = AnalysisRequest::Builder().searchRuns(0).build();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Err.Kind, RequestError::Code::ZeroSearchBudget);
  EXPECT_NE(R.Err.Message.find("budget"), std::string::npos);
}

TEST(RequestBuilder, RejectsOversizedWorkerCounts) {
  auto Bad = AnalysisRequest::Builder().searchJobs(MaxSearchJobs + 1).build();
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.Err.Kind, RequestError::Code::OversizedSearchJobs);
  // The cap itself and the auto-detect sentinel are both fine.
  EXPECT_TRUE(AnalysisRequest::Builder().searchJobs(MaxSearchJobs).build().ok());
  EXPECT_TRUE(AnalysisRequest::Builder().searchJobs(0).build().ok());
}

TEST(RequestBuilder, RejectsMachinesThatCannotStep) {
  MachineOptions NoFuel;
  NoFuel.StepLimit = 0;
  auto R1 = AnalysisRequest::Builder().machine(NoFuel).build();
  ASSERT_FALSE(R1.ok());
  EXPECT_EQ(R1.Err.Kind, RequestError::Code::ZeroStepLimit);

  MachineOptions NoStack;
  NoStack.MaxCallDepth = 0;
  auto R2 = AnalysisRequest::Builder().machine(NoStack).build();
  ASSERT_FALSE(R2.ok());
  EXPECT_EQ(R2.Err.Kind, RequestError::Code::ZeroCallDepth);
}

TEST(RequestBuilder, BuiltRequestIsReusable) {
  // "Validated once, reused across submissions": one request drives
  // many drivers and many runs without re-validation or drift.
  AnalysisRequest Req =
      AnalysisRequest::Builder().searchRuns(16).buildOrDie();
  Driver D1(Req), D2(Req);
  DriverOutcome A = D1.runSource(corpus()[0].Source, "a.c");
  DriverOutcome B = D2.runSource(corpus()[0].Source, "a.c");
  expectIdentical(A, B, "one request, two drivers");
  EXPECT_TRUE(A.anyUb());
}

//===----------------------------------------------------------------------===//
// Engine persistence.
//===----------------------------------------------------------------------===//

TEST(Engine, PersistentPoolMatchesFreshBatches) {
  // Three consecutive batches through one engine vs a fresh engine per
  // batch: byte-identical outcomes (witnesses, reports, dedup hits) at
  // forced worker counts 1 and 8.
  AnalysisRequest Req =
      AnalysisRequest::Builder().searchRuns(64).buildOrDie();
  for (unsigned Workers : {1u, 8u}) {
    EngineConfig Cfg;
    Cfg.Workers = Workers;
    Cfg.ClampWorkersToHardware = false;

    AnalysisEngine Persistent(Cfg);
    for (int Round = 0; Round < 3; ++Round) {
      AnalysisEngine Fresh(Cfg);
      std::vector<JobHandle> Ref = Fresh.submitBatch(Req, corpus());
      std::vector<JobHandle> Got = Persistent.submitBatch(Req, corpus());
      ASSERT_EQ(Ref.size(), Got.size());
      for (size_t I = 0; I < Ref.size(); ++I) {
        DriverOutcome A = Ref[I].take();
        DriverOutcome B = Got[I].take();
        expectIdentical(A, B,
                        corpus()[I].Name + " workers=" +
                            std::to_string(Workers) + " round=" +
                            std::to_string(Round));
      }
      // Between batches the service reclaims search state; results of
      // the next round must not notice.
      Persistent.drain();
    }
  }
}

TEST(Engine, DriverFacadeMatchesDirectSubmission) {
  // The blocking Driver adapters add nothing to the outcome.
  AnalysisRequest Req =
      AnalysisRequest::Builder().searchRuns(64).buildOrDie();
  Driver Drv(Req);
  AnalysisEngine Eng(engineConfigFor(Req));
  for (const BatchInput &In : corpus()) {
    DriverOutcome A = Drv.runSource(In.Source, In.Name);
    DriverOutcome B = Eng.submit(Req, In.Source, In.Name).take();
    expectIdentical(A, B, In.Name);
  }
}

//===----------------------------------------------------------------------===//
// Streaming events and job handles.
//===----------------------------------------------------------------------===//

namespace {

/// Thread-safe counting sink (callbacks fire on worker threads).
struct CountingSink : EngineSink {
  std::atomic<unsigned> Finished{0};
  std::atomic<unsigned> UbEvents{0};
  std::atomic<unsigned> Truncations{0};
  std::atomic<unsigned> EmptyReportEvents{0};
  std::atomic<unsigned> NonPositiveWalls{0};

  void onProgramFinished(const EngineJobInfo &Job,
                         const DriverOutcome &Outcome,
                         double WallMicros) override {
    Finished.fetch_add(1);
    if (WallMicros <= 0.0)
      NonPositiveWalls.fetch_add(1);
  }
  void onUbFound(const EngineJobInfo &Job,
                 const std::vector<UbReport> &Reports) override {
    UbEvents.fetch_add(1);
    if (Reports.empty())
      EmptyReportEvents.fetch_add(1);
  }
  void onFrontierTruncated(const EngineJobInfo &Job,
                           unsigned DroppedSubtrees) override {
    Truncations.fetch_add(1);
  }
};

} // namespace

TEST(Engine, SinkStreamsPerJobEvents) {
  AnalysisRequest Req =
      AnalysisRequest::Builder().searchRuns(64).buildOrDie();
  AnalysisEngine Eng;
  CountingSink Sink;
  std::vector<JobHandle> Handles = Eng.submitBatch(Req, corpus(), &Sink);
  Eng.drain();
  EXPECT_EQ(Sink.Finished.load(), corpus().size());
  // paper.c and nested.c are undefined by order.
  EXPECT_EQ(Sink.UbEvents.load(), 2u);
  EXPECT_EQ(Sink.EmptyReportEvents.load(), 0u);
  EXPECT_EQ(Sink.NonPositiveWalls.load(), 0u);
  for (JobHandle &H : Handles) {
    EXPECT_TRUE(H.done());
    EXPECT_GT(H.wallMicros(), 0.0);
  }
}

TEST(Engine, SinkReportsFrontierTruncation) {
  // A 2-run budget cannot cover commute.c's first wave: the truncation
  // event must fire (the verdict is not exhaustive).
  AnalysisRequest Req =
      AnalysisRequest::Builder().searchRuns(2).buildOrDie();
  AnalysisEngine Eng;
  CountingSink Sink;
  DriverOutcome O =
      Eng.submit(Req, corpus()[4].Source, corpus()[4].Name, &Sink).take();
  EXPECT_TRUE(O.SearchTruncated);
  EXPECT_GT(O.SearchDropped, 0u);
  EXPECT_EQ(Sink.Truncations.load(), 1u);
  EXPECT_EQ(Sink.Finished.load(), 1u);
}

TEST(Engine, PerJobMicrosAreHonest) {
  // The batched tool runner's Micros comes from per-job completion
  // timestamps now, not from dividing batch wall-clock evenly: every
  // job reports a positive wall time of its own.
  AnalysisRequest Req =
      AnalysisRequest::Builder().searchRuns(16).searchJobs(2).buildOrDie();
  std::vector<ToolResult> Results = runKccBatched(Req, corpus());
  ASSERT_EQ(Results.size(), corpus().size());
  for (const ToolResult &R : Results)
    EXPECT_GT(R.Micros, 0.0);
  EXPECT_TRUE(Results[0].flagged());  // paper.c
  EXPECT_FALSE(Results[4].flagged()); // commute.c
  EXPECT_EQ(Results[1].Output, "out-42\n");
}

//===----------------------------------------------------------------------===//
// Shutdown semantics.
//===----------------------------------------------------------------------===//

TEST(Engine, ShutdownIsGracefulAndFinal) {
  AnalysisRequest Req =
      AnalysisRequest::Builder().searchRuns(16).buildOrDie();
  AnalysisEngine Eng;
  JobHandle H = Eng.submit(Req, corpus()[0].Source, "pre.c");
  Eng.shutdown(); // drains outstanding work first
  EXPECT_TRUE(H.done());
  EXPECT_TRUE(H.wait().anyUb());
  EXPECT_TRUE(Eng.isShutdown());

  // Submissions after shutdown are rejected, not analyzed.
  JobHandle Rejected = Eng.submit(Req, corpus()[1].Source, "post.c");
  EXPECT_TRUE(Rejected.done());
  const DriverOutcome &O = Rejected.wait();
  EXPECT_FALSE(O.CompileOk);
  EXPECT_EQ(O.Status, RunStatus::Internal);
  EXPECT_NE(O.CompileErrors.find("shut down"), std::string::npos);

  Eng.shutdown(); // idempotent
  Eng.drain();    // harmless on a stopped engine
}
