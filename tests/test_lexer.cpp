//===- tests/test_lexer.cpp - Lexer unit tests -------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "text/Lexer.h"
#include "text/Numbers.h"

#include <gtest/gtest.h>

using namespace cundef;

namespace {

struct LexResult {
  std::vector<Token> Toks;
  StringInterner Interner;
  DiagnosticEngine Diags;
};

std::vector<Token> lexAll(const std::string &Source, LexResult &R) {
  Lexer Lex(Source, 1, R.Interner, R.Diags);
  std::vector<Token> Out;
  for (Token T = Lex.next(); T.isNot(TokenKind::Eof); T = Lex.next())
    Out.push_back(T);
  return Out;
}

TEST(Lexer, IdentifiersAndPunctuation) {
  LexResult R;
  auto Toks = lexAll("foo + bar_2;", R);
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(R.Interner.str(Toks[0].Sym), "foo");
  EXPECT_EQ(Toks[1].Kind, TokenKind::Plus);
  EXPECT_EQ(R.Interner.str(Toks[2].Sym), "bar_2");
  EXPECT_EQ(Toks[3].Kind, TokenKind::Semi);
  EXPECT_FALSE(R.Diags.hasErrors());
}

TEST(Lexer, MaximalMunch) {
  LexResult R;
  auto Toks = lexAll("a+++b a<<=b a->b a...b", R);
  std::vector<TokenKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  // a ++ + b, a <<= b, a -> b, a ... b
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::PlusPlus,      TokenKind::Plus,
      TokenKind::Identifier, TokenKind::Identifier,    TokenKind::LessLessEqual,
      TokenKind::Identifier, TokenKind::Identifier,    TokenKind::Arrow,
      TokenKind::Identifier, TokenKind::Identifier,    TokenKind::Ellipsis,
      TokenKind::Identifier};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, IntegerLiterals) {
  LexResult R;
  auto Toks = lexAll("42 0x1f 017 5u 5L 5ull", R);
  ASSERT_EQ(Toks.size(), 6u);
  for (const Token &T : Toks)
    EXPECT_EQ(T.Kind, TokenKind::IntLiteral);
  EXPECT_EQ(decodeIntLiteral(Toks[0].Text).Value, 42u);
  EXPECT_EQ(decodeIntLiteral(Toks[1].Text).Value, 0x1fu);
  EXPECT_EQ(decodeIntLiteral(Toks[2].Text).Value, 017u);
  EXPECT_TRUE(decodeIntLiteral(Toks[3].Text).Unsigned);
  EXPECT_EQ(decodeIntLiteral(Toks[4].Text).LongCount, 1u);
  DecodedInt Ull = decodeIntLiteral(Toks[5].Text);
  EXPECT_TRUE(Ull.Unsigned);
  EXPECT_EQ(Ull.LongCount, 2u);
}

TEST(Lexer, FloatLiterals) {
  LexResult R;
  auto Toks = lexAll("1.5 2e3 1.5f .25", R);
  ASSERT_EQ(Toks.size(), 4u);
  for (const Token &T : Toks)
    EXPECT_EQ(T.Kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(decodeFloatLiteral(Toks[0].Text).Value, 1.5);
  EXPECT_DOUBLE_EQ(decodeFloatLiteral(Toks[1].Text).Value, 2000.0);
  EXPECT_TRUE(decodeFloatLiteral(Toks[2].Text).IsFloat);
  EXPECT_DOUBLE_EQ(decodeFloatLiteral(Toks[3].Text).Value, 0.25);
}

TEST(Lexer, CharConstants) {
  LexResult R;
  auto Toks = lexAll("'a' '\\n' '\\x41' '\\0'", R);
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Text, "97");
  EXPECT_EQ(Toks[1].Text, "10");
  EXPECT_EQ(Toks[2].Text, "65");
  EXPECT_EQ(Toks[3].Text, "0");
}

TEST(Lexer, StringLiteralsDecodeEscapes) {
  LexResult R;
  auto Toks = lexAll("\"hi\\n\" \"a\\tb\"", R);
  ASSERT_EQ(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].Text, "hi\n");
  EXPECT_EQ(Toks[1].Text, "a\tb");
}

TEST(Lexer, CommentsAreSkipped) {
  LexResult R;
  auto Toks = lexAll("a /* comment */ b // line\nc", R);
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_FALSE(R.Diags.hasErrors());
}

TEST(Lexer, UnterminatedCommentIsAnError) {
  LexResult R;
  lexAll("a /* forever", R);
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(Lexer, LineTracking) {
  LexResult R;
  auto Toks = lexAll("one\ntwo three\n  four", R);
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[2].Loc.Line, 2u);
  EXPECT_EQ(Toks[3].Loc.Line, 3u);
  EXPECT_TRUE(Toks[1].AtLineStart);
  EXPECT_FALSE(Toks[2].AtLineStart);
  EXPECT_EQ(Toks[3].Loc.Col, 3u);
}

TEST(Lexer, LineSpliceContinuesLine) {
  LexResult R;
  auto Toks = lexAll("ab\\\ncd", R);
  ASSERT_EQ(Toks.size(), 2u); // splice splits tokens but not lines
  EXPECT_FALSE(Toks[1].AtLineStart);
}

TEST(Lexer, HashAtLineStartFlag) {
  LexResult R;
  auto Toks = lexAll("#define X 1\nY", R);
  ASSERT_GE(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::Hash);
  EXPECT_TRUE(Toks[0].AtLineStart);
}

TEST(Numbers, OverflowDetected) {
  DecodedInt D = decodeIntLiteral("99999999999999999999999999");
  EXPECT_TRUE(D.Overflowed);
}

TEST(Numbers, MalformedSuffixRejected) {
  EXPECT_FALSE(decodeIntLiteral("12abc").Valid);
  EXPECT_FALSE(decodeIntLiteral("1lll").Valid);
}

} // namespace
