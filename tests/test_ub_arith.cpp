//===- tests/test_ub_arith.cpp - Arithmetic undefinedness --------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Division, overflow, shifts, and conversions: paper sections 4.1.1
// (side conditions on division) and the arithmetic rows of the catalog.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cundef;

namespace {

TEST(UbArith, DivisionByZero) {
  expectUb("int main(void) { int d = 0; return 1 / d; }",
           UbKind::DivisionByZero);
}

TEST(UbArith, DivisionByZeroValueDiscarded) {
  // The paper's 4.1.1 point: 5/0; must not slip through just because
  // the semicolon discards the value.
  expectUb("int main(void) { int d = 0; 5 / d; return 0; }",
           UbKind::DivisionByZero);
}

TEST(UbArith, ModuloByZero) {
  expectUb("int main(void) { int d = 0; return 1 % d; }",
           UbKind::ModuloByZero);
}

TEST(UbArith, DivisionOk) {
  expectClean("int main(void) { int d = 2; return (9 / d) - 4; }");
}

TEST(UbArith, UnsignedDivisionByZeroStillUb) {
  expectUb("int main(void) { unsigned d = 0u; return (int)(1u / d); }",
           UbKind::DivisionByZero);
}

TEST(UbArith, IntMinDividedByMinusOne) {
  expectUb("int main(void) { int m = -2147483647 - 1; int d = -1;"
           " return m / d; }",
           UbKind::SignedOverflow);
}

TEST(UbArith, AddOverflow) {
  expectUb("int main(void) { int x = 2147483647; return (x + 1) != 0; }",
           UbKind::SignedOverflow);
}

TEST(UbArith, SubOverflow) {
  expectUb("int main(void) { int x = -2147483647 - 1; return (x - 1) != 0;"
           " }",
           UbKind::SignedOverflow);
}

TEST(UbArith, MulOverflow) {
  expectUb("int main(void) { int x = 65536; return (x * x) != 0; }",
           UbKind::SignedOverflow);
}

TEST(UbArith, UnsignedWrapIsDefined) {
  expectClean("int main(void) { unsigned x = 4294967295u;"
              " return (x + 1u) == 0u ? 0 : 1; }");
}

TEST(UbArith, LongArithmeticAvoidsIntOverflow) {
  expectClean("int main(void) { long x = 2147483647;"
              " return (x + 1) == 2147483648 ? 0 : 1; }");
}

TEST(UbArith, IncrementOverflow) {
  expectUb("int main(void) { int x = 2147483647; x++; return 0; }",
           UbKind::SignedOverflow);
}

TEST(UbArith, CharIncrementNeverOverflows) {
  // char computes in int; conversion back is implementation-defined,
  // not undefined.
  expectClean("int main(void) { char c = 127; c++; return 0; }");
}

TEST(UbArith, ShiftTooWide) {
  expectUb("int main(void) { int x = 1; return (x << 32) != 0; }",
           UbKind::ShiftExponentOutOfRange);
}

TEST(UbArith, ShiftWidthOfLongIsWider) {
  expectClean("int main(void) { long x = 1; return (x << 32) == 0; }");
}

TEST(UbArith, NegativeShiftCount) {
  expectUb("int main(void) { int n = -1; return (1 << n) != 0; }",
           UbKind::NegativeShiftCount);
}

TEST(UbArith, ShiftOfNegative) {
  expectUb("int main(void) { int x = -1; return (x << 1) != 0; }",
           UbKind::ShiftOfNegative);
}

TEST(UbArith, ShiftProducingUnrepresentable) {
  expectUb("int main(void) { int x = 1073741824; return (x << 1) != 0; }",
           UbKind::ShiftOfNegative);
}

TEST(UbArith, RightShiftOfNegativeIsImplDefined) {
  // Implementation-defined, not undefined (C11 6.5.7p5).
  expectClean("int main(void) { int x = -8; return (x >> 1) != -4; }");
}

TEST(UbArith, UnsignedShiftWraps) {
  expectClean("int main(void) { unsigned x = 0x80000000u;"
              " return (x << 1) == 0u ? 0 : 1; }");
}

TEST(UbArith, FloatToIntOverflow) {
  expectUb("int main(void) { double d = 1e10; return (int)d; }",
           UbKind::FloatToIntOverflow);
}

TEST(UbArith, FloatToIntFits) {
  expectClean("int main(void) { double d = 42.9; return (int)d - 42; }");
}

TEST(UbArith, FloatDivisionByZeroIsDefined) {
  // Annex F semantics: infinity, not undefined.
  expectClean("int main(void) { double d = 0.0; double r = 1.0 / d;"
              " return r > 0.0 ? 0 : 1; }");
}

TEST(UbArith, NegateIntMin) {
  expectUb("int main(void) { int m = -2147483647 - 1; return -m; }",
           UbKind::SignedOverflow);
}

TEST(UbArith, CompoundDivZero) {
  expectUb("int main(void) { int x = 6; int d = 0; x /= d; return x; }",
           UbKind::DivisionByZero);
}

TEST(UbArith, CompoundOverflow) {
  expectUb("int main(void) { int x = 2147483647; x += 1; return x; }",
           UbKind::SignedOverflow);
}

TEST(UbArith, AbsOfIntMin) {
  expectUb("#include <stdlib.h>\n"
           "int main(void) { int m = -2147483647 - 1; return abs(m); }",
           UbKind::SignedOverflow);
}

TEST(UbArith, BitwiseOpsNeverOverflow) {
  expectClean("int main(void) { int x = -1; int y = x & 0x7fffffff;"
              " return (x | y) == -1 && (x ^ x) == 0 && ~0 == -1 ? 0 : 1;"
              " }");
}

} // namespace
