//===- tests/test_search.cpp - Evaluation-order search tests -------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "driver/Driver.h"

#include <gtest/gtest.h>

using namespace cundef;

namespace {

SearchResult searchSource(const char *Source, unsigned MaxRuns = 64,
                          Driver::Compiled *Keep = nullptr) {
  static std::vector<Driver::Compiled> Keeper;
  Driver Drv;
  Driver::Compiled C = Drv.compile(Source, "s.c");
  EXPECT_TRUE(C->ok()) << C->errors();
  MachineOptions Opts;
  OrderSearch Search(C->ast(), Opts, MaxRuns);
  SearchResult R = Search.run();
  if (Keep)
    *Keep = C;
  else
    Keeper.push_back(C); // keep the AST alive for reports
  return R;
}

TEST(Search, PaperExampleFoundOnReversedOrder) {
  SearchResult R = searchSource(
      "int d = 5;\n"
      "int setDenom(int x) { return d = x; }\n"
      "int main(void) { return (10 / d) + setDenom(0); }\n");
  EXPECT_TRUE(R.UbFound);
  ASSERT_FALSE(R.Reports.empty());
  EXPECT_EQ(R.Reports.front().Kind, UbKind::DivisionByZero);
  EXPECT_GE(R.RunsExplored, 2u) << "the default order is defined";
  EXPECT_FALSE(R.Witness.empty());
}

TEST(Search, DefinedProgramExhaustsCleanly) {
  SearchResult R = searchSource(
      "static int f(void) { return 1; }\n"
      "static int g(void) { return 2; }\n"
      "int main(void) { return f() + g() - 3; }\n");
  EXPECT_FALSE(R.UbFound);
  EXPECT_EQ(R.LastStatus, RunStatus::Completed);
}

TEST(Search, FirstRunUbNeedsNoSearch) {
  SearchResult R = searchSource(
      "int main(void) { int d = 0; return 1 / d; }\n");
  EXPECT_TRUE(R.UbFound);
  EXPECT_EQ(R.RunsExplored, 1u);
  EXPECT_TRUE(R.Witness.empty()) << "default order is the witness";
}

TEST(Search, TwoFlipDependenceFound) {
  SearchResult R = searchSource(
      "int a = 1;\n"
      "int set(int v) { a = v; return 0; }\n"
      "int main(void) { return (8 / a) + (set(0) + set(1)); }\n");
  EXPECT_TRUE(R.UbFound) << "needs the outer AND inner order reversed";
}

TEST(Search, BudgetIsRespected) {
  SearchResult R = searchSource(
      "static int f(int a, int b) { return a + b; }\n"
      "int main(void) {\n"
      "  int t = 0; int i;\n"
      "  for (i = 0; i < 6; i++) { t += f(i, i + 1) + f(i, i); }\n"
      "  return t > 0 ? 0 : 1;\n}\n",
      /*MaxRuns=*/5);
  EXPECT_FALSE(R.UbFound);
  EXPECT_LE(R.RunsExplored, 5u);
}

TEST(Search, ReplayIsDeterministic) {
  // Replaying the recorded witness must reproduce the same verdict.
  Driver Drv;
  Driver::Compiled C = Drv.compile(
      "int d = 5;\n"
      "int setDenom(int x) { return d = x; }\n"
      "int main(void) { return (10 / d) + setDenom(0); }\n",
      "replay.c");
  ASSERT_TRUE(C->ok());
  MachineOptions Opts;
  OrderSearch Search(C->ast(), Opts, 64);
  SearchResult R = Search.run();
  ASSERT_TRUE(R.UbFound);

  for (int Round = 0; Round < 3; ++Round) {
    UbSink Sink;
    Machine M(C->ast(), Opts, Sink);
    M.setReplayDecisions(R.Witness);
    RunStatus Status = M.run();
    EXPECT_EQ(Status, RunStatus::UbDetected);
    ASSERT_FALSE(Sink.all().empty());
    EXPECT_EQ(Sink.all().front().Kind, UbKind::DivisionByZero);
  }
}

TEST(Search, OrderPoliciesDiffer) {
  // Right-to-left alone already finds the paper's example.
  Driver Drv;
  Driver::Compiled C = Drv.compile(
      "int d = 5;\n"
      "int setDenom(int x) { return d = x; }\n"
      "int main(void) { return (10 / d) + setDenom(0); }\n",
      "rtl.c");
  ASSERT_TRUE(C->ok());

  MachineOptions Ltr;
  Ltr.Order = EvalOrderKind::LeftToRight;
  UbSink SinkL;
  Machine ML(C->ast(), Ltr, SinkL);
  EXPECT_EQ(ML.run(), RunStatus::Completed);
  EXPECT_TRUE(SinkL.empty());

  MachineOptions Rtl;
  Rtl.Order = EvalOrderKind::RightToLeft;
  UbSink SinkR;
  Machine MR(C->ast(), Rtl, SinkR);
  EXPECT_EQ(MR.run(), RunStatus::UbDetected);
  EXPECT_TRUE(SinkR.has(UbKind::DivisionByZero));
}

//===----------------------------------------------------------------------===//
// Parallel search: determinism, deduplication, cancellation.
//===----------------------------------------------------------------------===//

namespace {

/// The paper's order-dependent division by zero.
const char *PaperSource =
    "int d = 5;\n"
    "int setDenom(int x) { return d = x; }\n"
    "int main(void) { return (10 / d) + setDenom(0); }\n";

/// K statements of commuting pure-call sums: 2^K interleavings that all
/// converge, the dedup's best case.
std::string symmetricSource(unsigned K) {
  std::string S = "static int g(int x) { return x + 1; }\n"
                  "int main(void) {\n  int t = 0;\n";
  for (unsigned I = 0; I < K; ++I) {
    char Line[64];
    std::snprintf(Line, sizeof(Line), "  t += g(%u) + g(%u);\n", 2 * I,
                  2 * I + 1);
    S += Line;
  }
  S += "  return t > 0 ? 0 : 1;\n}\n";
  return S;
}

SearchResult searchWith(const Driver::Compiled &C, SearchOptions SO) {
  MachineOptions Opts;
  OrderSearch Search(C->ast(), Opts, SO);
  return Search.run();
}

} // namespace

TEST(ParallelSearch, WitnessDeterministicAcrossJobCounts) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(PaperSource, "jobs.c");
  ASSERT_TRUE(C->ok());
  SearchOptions SO;
  SO.MaxRuns = 64;

  SO.Jobs = 1;
  SearchResult R1 = searchWith(C, SO);
  ASSERT_TRUE(R1.UbFound);

  for (unsigned Jobs : {2u, 4u, 8u}) {
    SO.Jobs = Jobs;
    // Repeat each parallel configuration: thread scheduling must never
    // leak into the verdict or the witness.
    for (int Round = 0; Round < 3; ++Round) {
      SearchResult R = searchWith(C, SO);
      EXPECT_TRUE(R.UbFound) << "jobs=" << Jobs;
      EXPECT_EQ(R.Witness, R1.Witness) << "jobs=" << Jobs;
      ASSERT_FALSE(R.Reports.empty());
      EXPECT_EQ(R.Reports.front().Kind, R1.Reports.front().Kind);
      EXPECT_EQ(R.Reports.front().Loc.Line, R1.Reports.front().Loc.Line);
    }
  }
}

TEST(ParallelSearch, PaperExampleFoundWithJobsAndDedup) {
  // Regression: the (10/d) + setDenom(0) order must survive both the
  // dedup pruning and parallel scheduling.
  Driver Drv;
  Driver::Compiled C = Drv.compile(PaperSource, "paper_par.c");
  ASSERT_TRUE(C->ok());
  SearchOptions SO;
  SO.MaxRuns = 64;
  SO.Jobs = 4;
  SO.Dedup = true;
  SearchResult R = searchWith(C, SO);
  ASSERT_TRUE(R.UbFound);
  EXPECT_EQ(R.Reports.front().Kind, UbKind::DivisionByZero);
  EXPECT_FALSE(R.Witness.empty());
}

TEST(ParallelSearch, DedupPreservesVerdictAndReports) {
  // Same fingerprint => same future: pruning duplicates may change how
  // many runs execute, never what is found.
  for (const char *Source :
       {PaperSource,
        "int a = 1;\n"
        "int set(int v) { a = v; return 0; }\n"
        "int main(void) { return (8 / a) + (set(0) + set(1)); }\n",
        "int main(void) { int x = 1; return x + x++; }\n",
        "static int f(void) { return 1; }\n"
        "static int g(void) { return 2; }\n"
        "int main(void) { return f() + g() - 3; }\n"}) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Source, "dedup.c");
    ASSERT_TRUE(C->ok());
    SearchOptions On, Off;
    On.MaxRuns = Off.MaxRuns = 4096; // ample: enumeration may need more
    On.Dedup = true;
    Off.Dedup = false;
    SearchResult ROn = searchWith(C, On);
    SearchResult ROff = searchWith(C, Off);
    EXPECT_EQ(ROn.UbFound, ROff.UbFound) << Source;
    EXPECT_EQ(ROn.Witness, ROff.Witness) << Source;
    ASSERT_EQ(ROn.Reports.size(), ROff.Reports.size()) << Source;
    for (size_t I = 0; I < ROn.Reports.size(); ++I) {
      EXPECT_EQ(ROn.Reports[I].Kind, ROff.Reports[I].Kind);
      EXPECT_EQ(ROn.Reports[I].Loc.Line, ROff.Reports[I].Loc.Line);
    }
  }
}

TEST(ParallelSearch, DedupCollapsesSymmetricInterleavings) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(symmetricSource(5), "sym.c");
  ASSERT_TRUE(C->ok()) << C->errors();
  SearchOptions On, Off;
  On.MaxRuns = Off.MaxRuns = 20000;
  On.Dedup = true;
  Off.Dedup = false;
  SearchResult ROn = searchWith(C, On);
  SearchResult ROff = searchWith(C, Off);
  EXPECT_FALSE(ROn.UbFound);
  EXPECT_FALSE(ROff.UbFound);
  EXPECT_GT(ROn.DedupHits, 0u) << "symmetric states must collide";
  EXPECT_LT(ROn.RunsExplored, ROff.RunsExplored)
      << "dedup must prune the exponential interleaving space";
}

TEST(ParallelSearch, ParallelWitnessReplaysDeterministically) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(PaperSource, "replay_par.c");
  ASSERT_TRUE(C->ok());
  SearchOptions SO;
  SO.MaxRuns = 64;
  SO.Jobs = 4;
  SearchResult R = searchWith(C, SO);
  ASSERT_TRUE(R.UbFound);
  for (int Round = 0; Round < 3; ++Round) {
    MachineOptions Opts;
    UbSink Sink;
    Machine M(C->ast(), Opts, Sink);
    M.setReplayDecisions(R.Witness);
    EXPECT_EQ(M.run(), RunStatus::UbDetected);
    ASSERT_FALSE(Sink.all().empty());
    EXPECT_EQ(Sink.all().front().Kind, UbKind::DivisionByZero);
  }
}

TEST(ParallelSearch, FingerprintIsReplayStable) {
  // The dedup's foundation: identical decision prefixes must produce
  // identical configuration fingerprints in independent machines.
  Driver Drv;
  Driver::Compiled C = Drv.compile(symmetricSource(2), "fp.c");
  ASSERT_TRUE(C->ok());
  MachineOptions Opts;
  auto FinalFp = [&](std::vector<uint8_t> Decisions) {
    UbSink Sink;
    Machine M(C->ast(), Opts, Sink);
    M.setReplayDecisions(std::move(Decisions));
    M.run();
    return M.configFingerprint();
  };
  EXPECT_EQ(FinalFp({}), FinalFp({}));
  EXPECT_EQ(FinalFp({1}), FinalFp({1}));
  // Commuting interleavings converge to the same final configuration
  // even though they took different decisions: that equality is exactly
  // what the visited-set exploits.
  EXPECT_EQ(FinalFp({}), FinalFp({1}));
}

TEST(ParallelSearch, DriverThreadsSearchJobs) {
  Driver Drv(AnalysisRequest::Builder()
                 .searchRuns(64)
                 .searchJobs(4)
                 .buildOrDie());
  DriverOutcome O = Drv.runSource(PaperSource, "drv.c");
  ASSERT_TRUE(O.CompileOk);
  EXPECT_FALSE(O.DynamicUb.empty());
  EXPECT_FALSE(O.SearchWitness.empty());
  EXPECT_EQ(O.DynamicUb.front().Kind, UbKind::DivisionByZero);

  // The same outcome with one job: verdict and witness agree.
  Driver Drv1(AnalysisRequest::Builder().searchRuns(64).buildOrDie());
  DriverOutcome O1 = Drv1.runSource(PaperSource, "drv1.c");
  EXPECT_EQ(O1.SearchWitness, O.SearchWitness);
}

TEST(Search, RandomOrderIsSeedDeterministic) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(
      "static int f(int a, int b) { return a * 10 + b; }\n"
      "int main(void) { int x = 0; return f(x = 1, x = 2) > 0 ? 0 : 1; }\n",
      "rand.c");
  ASSERT_TRUE(C->ok());
  auto RunSeed = [&](uint32_t Seed) {
    MachineOptions Opts;
    Opts.Order = EvalOrderKind::Random;
    Opts.Seed = Seed;
    UbSink Sink;
    Machine M(C->ast(), Opts, Sink);
    M.run();
    return Sink.size();
  };
  EXPECT_EQ(RunSeed(42), RunSeed(42)) << "same seed, same verdict";
}

} // namespace
