//===- tests/test_search.cpp - Evaluation-order search tests -------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "driver/Driver.h"

#include <gtest/gtest.h>

using namespace cundef;

namespace {

SearchResult searchSource(const char *Source, unsigned MaxRuns = 64,
                          Driver::Compiled *Keep = nullptr) {
  static std::vector<std::unique_ptr<Driver::Compiled>> Keeper;
  Driver Drv;
  auto C = std::make_unique<Driver::Compiled>(Drv.compile(Source, "s.c"));
  EXPECT_TRUE(C->Ok) << C->Errors;
  MachineOptions Opts;
  OrderSearch Search(*C->Ast, Opts, MaxRuns);
  SearchResult R = Search.run();
  if (Keep)
    *Keep = std::move(*C);
  else
    Keeper.push_back(std::move(C)); // keep the AST alive for reports
  return R;
}

TEST(Search, PaperExampleFoundOnReversedOrder) {
  SearchResult R = searchSource(
      "int d = 5;\n"
      "int setDenom(int x) { return d = x; }\n"
      "int main(void) { return (10 / d) + setDenom(0); }\n");
  EXPECT_TRUE(R.UbFound);
  ASSERT_FALSE(R.Reports.empty());
  EXPECT_EQ(R.Reports.front().Kind, UbKind::DivisionByZero);
  EXPECT_GE(R.RunsExplored, 2u) << "the default order is defined";
  EXPECT_FALSE(R.Witness.empty());
}

TEST(Search, DefinedProgramExhaustsCleanly) {
  SearchResult R = searchSource(
      "static int f(void) { return 1; }\n"
      "static int g(void) { return 2; }\n"
      "int main(void) { return f() + g() - 3; }\n");
  EXPECT_FALSE(R.UbFound);
  EXPECT_EQ(R.LastStatus, RunStatus::Completed);
}

TEST(Search, FirstRunUbNeedsNoSearch) {
  SearchResult R = searchSource(
      "int main(void) { int d = 0; return 1 / d; }\n");
  EXPECT_TRUE(R.UbFound);
  EXPECT_EQ(R.RunsExplored, 1u);
  EXPECT_TRUE(R.Witness.empty()) << "default order is the witness";
}

TEST(Search, TwoFlipDependenceFound) {
  SearchResult R = searchSource(
      "int a = 1;\n"
      "int set(int v) { a = v; return 0; }\n"
      "int main(void) { return (8 / a) + (set(0) + set(1)); }\n");
  EXPECT_TRUE(R.UbFound) << "needs the outer AND inner order reversed";
}

TEST(Search, BudgetIsRespected) {
  SearchResult R = searchSource(
      "static int f(int a, int b) { return a + b; }\n"
      "int main(void) {\n"
      "  int t = 0; int i;\n"
      "  for (i = 0; i < 6; i++) { t += f(i, i + 1) + f(i, i); }\n"
      "  return t > 0 ? 0 : 1;\n}\n",
      /*MaxRuns=*/5);
  EXPECT_FALSE(R.UbFound);
  EXPECT_LE(R.RunsExplored, 5u);
}

TEST(Search, ReplayIsDeterministic) {
  // Replaying the recorded witness must reproduce the same verdict.
  Driver Drv;
  Driver::Compiled C = Drv.compile(
      "int d = 5;\n"
      "int setDenom(int x) { return d = x; }\n"
      "int main(void) { return (10 / d) + setDenom(0); }\n",
      "replay.c");
  ASSERT_TRUE(C.Ok);
  MachineOptions Opts;
  OrderSearch Search(*C.Ast, Opts, 64);
  SearchResult R = Search.run();
  ASSERT_TRUE(R.UbFound);

  for (int Round = 0; Round < 3; ++Round) {
    UbSink Sink;
    Machine M(*C.Ast, Opts, Sink);
    M.setReplayDecisions(R.Witness);
    RunStatus Status = M.run();
    EXPECT_EQ(Status, RunStatus::UbDetected);
    ASSERT_FALSE(Sink.all().empty());
    EXPECT_EQ(Sink.all().front().Kind, UbKind::DivisionByZero);
  }
}

TEST(Search, OrderPoliciesDiffer) {
  // Right-to-left alone already finds the paper's example.
  Driver Drv;
  Driver::Compiled C = Drv.compile(
      "int d = 5;\n"
      "int setDenom(int x) { return d = x; }\n"
      "int main(void) { return (10 / d) + setDenom(0); }\n",
      "rtl.c");
  ASSERT_TRUE(C.Ok);

  MachineOptions Ltr;
  Ltr.Order = EvalOrderKind::LeftToRight;
  UbSink SinkL;
  Machine ML(*C.Ast, Ltr, SinkL);
  EXPECT_EQ(ML.run(), RunStatus::Completed);
  EXPECT_TRUE(SinkL.empty());

  MachineOptions Rtl;
  Rtl.Order = EvalOrderKind::RightToLeft;
  UbSink SinkR;
  Machine MR(*C.Ast, Rtl, SinkR);
  EXPECT_EQ(MR.run(), RunStatus::UbDetected);
  EXPECT_TRUE(SinkR.has(UbKind::DivisionByZero));
}

TEST(Search, RandomOrderIsSeedDeterministic) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(
      "static int f(int a, int b) { return a * 10 + b; }\n"
      "int main(void) { int x = 0; return f(x = 1, x = 2) > 0 ? 0 : 1; }\n",
      "rand.c");
  ASSERT_TRUE(C.Ok);
  auto RunSeed = [&](uint32_t Seed) {
    MachineOptions Opts;
    Opts.Order = EvalOrderKind::Random;
    Opts.Seed = Seed;
    UbSink Sink;
    Machine M(*C.Ast, Opts, Sink);
    M.run();
    return Sink.size();
  };
  EXPECT_EQ(RunSeed(42), RunSeed(42)) << "same seed, same verdict";
}

} // namespace
