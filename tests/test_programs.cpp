//===- tests/test_programs.cpp - Whole-program torture tests -------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Realistic small programs (the flavor of the GCC torture tests the
// paper's sister work used for the positive semantics): data structures
// on the heap, string algorithms, numeric kernels. Every program must
// run clean and produce its expected result.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cundef;

namespace {

TEST(Programs, LinkedListBuildSumFree) {
  expectClean(R"(#include <stdlib.h>
struct node { int value; struct node *next; };

static struct node *push(struct node *head, int value) {
  struct node *n = (struct node*)malloc(sizeof(struct node));
  if (n == 0) { exit(1); }
  n->value = value;
  n->next = head;
  return n;
}

int main(void) {
  struct node *head = 0;
  int i;
  for (i = 1; i <= 10; i++) { head = push(head, i); }
  int sum = 0;
  struct node *it;
  for (it = head; it != 0; it = it->next) { sum += it->value; }
  while (head != 0) {
    struct node *dead = head;
    head = head->next;
    free(dead);
  }
  return sum - 55;
}
)");
}

TEST(Programs, ListReversal) {
  expectClean(R"(#include <stdlib.h>
struct node { int value; struct node *next; };

int main(void) {
  struct node *head = 0;
  int i;
  for (i = 0; i < 5; i++) {
    struct node *n = (struct node*)malloc(sizeof(struct node));
    if (n == 0) { exit(1); }
    n->value = i;
    n->next = head;
    head = n;
  }
  /* head is 4,3,2,1,0; reverse it in place */
  struct node *prev = 0;
  while (head != 0) {
    struct node *next = head->next;
    head->next = prev;
    prev = head;
    head = next;
  }
  int expect = 0;
  int ok = 1;
  struct node *it = prev;
  while (it != 0) {
    if (it->value != expect) { ok = 0; }
    expect++;
    struct node *dead = it;
    it = it->next;
    free(dead);
  }
  return ok && expect == 5 ? 0 : 1;
}
)");
}

TEST(Programs, BinaryTreeInsertContains) {
  expectClean(R"(#include <stdlib.h>
struct tree { int key; struct tree *left; struct tree *right; };

static struct tree *insert(struct tree *root, int key) {
  if (root == 0) {
    struct tree *n = (struct tree*)malloc(sizeof(struct tree));
    if (n == 0) { exit(1); }
    n->key = key;
    n->left = 0;
    n->right = 0;
    return n;
  }
  if (key < root->key) { root->left = insert(root->left, key); }
  else if (key > root->key) { root->right = insert(root->right, key); }
  return root;
}

static int contains(struct tree *root, int key) {
  while (root != 0) {
    if (key == root->key) { return 1; }
    root = key < root->key ? root->left : root->right;
  }
  return 0;
}

static void drop(struct tree *root) {
  if (root == 0) { return; }
  drop(root->left);
  drop(root->right);
  free(root);
}

int main(void) {
  struct tree *root = 0;
  int keys[7] = {50, 30, 70, 20, 40, 60, 80};
  int i;
  for (i = 0; i < 7; i++) { root = insert(root, keys[i]); }
  int ok = contains(root, 40) && contains(root, 80) &&
           !contains(root, 55) && !contains(root, 0);
  drop(root);
  return ok ? 0 : 1;
}
)");
}

TEST(Programs, StringReverseInPlace) {
  expectClean(R"(#include <string.h>
int main(void) {
  char s[] = "undefined";
  unsigned long n = strlen(s);
  unsigned long i;
  for (i = 0; i < n / 2; i++) {
    char tmp = s[i];
    s[i] = s[n - 1 - i];
    s[n - 1 - i] = tmp;
  }
  return strcmp(s, "denifednu");
}
)");
}

TEST(Programs, WordCount) {
  expectClean(R"(int main(void) {
  const char *text = "the quick  brown fox\tjumps";
  int words = 0;
  int inWord = 0;
  const char *p;
  for (p = text; *p != 0; p++) {
    int space = *p == ' ' || *p == '\t';
    if (!space && !inWord) { words++; }
    inWord = !space;
  }
  return words - 5;
}
)");
}

TEST(Programs, MatrixMultiply) {
  expectClean(R"(int main(void) {
  int a[2][3] = {{1, 2, 3}, {4, 5, 6}};
  int b[3][2] = {{7, 8}, {9, 10}, {11, 12}};
  int c[2][2];
  int i; int j; int k;
  for (i = 0; i < 2; i++) {
    for (j = 0; j < 2; j++) {
      c[i][j] = 0;
      for (k = 0; k < 3; k++) { c[i][j] += a[i][k] * b[k][j]; }
    }
  }
  return (c[0][0] == 58 && c[0][1] == 64 &&
          c[1][0] == 139 && c[1][1] == 154) ? 0 : 1;
}
)");
}

TEST(Programs, SieveOfEratosthenes) {
  expectClean(R"(#include <string.h>
int main(void) {
  char composite[50];
  memset(composite, 0, sizeof composite);
  int primes = 0;
  int i;
  for (i = 2; i < 50; i++) {
    if (!composite[i]) {
      primes++;
      int j;
      for (j = i + i; j < 50; j += i) { composite[j] = 1; }
    }
  }
  return primes - 15; /* primes below 50 */
}
)");
}

TEST(Programs, QsortStructsByField) {
  expectClean(R"(#include <stdlib.h>
struct person { int age; int id; };

static int byAge(const void *a, const void *b) {
  const struct person *x = (const struct person*)a;
  const struct person *y = (const struct person*)b;
  return (x->age > y->age) - (x->age < y->age);
}

int main(void) {
  struct person people[4];
  people[0].age = 42; people[0].id = 0;
  people[1].age = 17; people[1].id = 1;
  people[2].age = 64; people[2].id = 2;
  people[3].age = 30; people[3].id = 3;
  qsort(people, 4, sizeof(struct person), byAge);
  return (people[0].id == 1 && people[1].id == 3 &&
          people[2].id == 0 && people[3].id == 2) ? 0 : 1;
}
)");
}

TEST(Programs, DynamicGrowingBuffer) {
  expectClean(R"(#include <stdlib.h>
int main(void) {
  int capacity = 2;
  int count = 0;
  int *data = (int*)malloc(capacity * sizeof(int));
  if (data == 0) { exit(1); }
  int i;
  for (i = 0; i < 33; i++) {
    if (count == capacity) {
      capacity = capacity * 2;
      data = (int*)realloc(data, capacity * sizeof(int));
      if (data == 0) { exit(1); }
    }
    data[count++] = i;
  }
  int sum = 0;
  for (i = 0; i < count; i++) { sum += data[i]; }
  free(data);
  return sum - 528;
}
)");
}

TEST(Programs, FunctionPointerStateMachine) {
  expectClean(R"(static int stateA(int input);
static int stateB(int input);

static int (*current)(int) = stateA;

static int stateA(int input) {
  current = stateB;
  return input + 1;
}

static int stateB(int input) {
  current = stateA;
  return input * 2;
}

int main(void) {
  int value = 1;
  int i;
  for (i = 0; i < 4; i++) { value = current(value); }
  /* A: 2, B: 4, A: 5, B: 10 */
  return value - 10;
}
)");
}

TEST(Programs, Fibonacci) {
  std::string Out = outputOf(R"(#include <stdio.h>
int main(void) {
  int prev = 0; int cur = 1; int i;
  for (i = 0; i < 10; i++) {
    printf("%d ", cur);
    int next = prev + cur;
    prev = cur;
    cur = next;
  }
  printf("\n");
  return 0;
}
)");
  EXPECT_EQ(Out, "1 1 2 3 5 8 13 21 34 55 \n");
}

TEST(Programs, CaesarCipherRoundTrip) {
  expectClean(R"(#include <string.h>
static void shift(char *s, int by) {
  for (; *s != 0; s++) {
    if (*s >= 'a' && *s <= 'z') {
      *s = (char)('a' + (((*s - 'a') + by + 26) % 26));
    }
  }
}

int main(void) {
  char msg[] = "undefined behavior";
  char copy[32];
  strcpy(copy, msg);
  shift(copy, 13);
  if (strcmp(copy, msg) == 0) { return 1; }
  shift(copy, 13);
  return strcmp(copy, msg);
}
)");
}

TEST(Programs, UnionTaggedValue) {
  expectClean(R"(struct tagged {
  int tag; /* 0 = int, 1 = double */
  union { int i; double d; } as;
};

static double valueOf(struct tagged t) {
  return t.tag == 0 ? (double)t.as.i : t.as.d;
}

int main(void) {
  struct tagged a;
  a.tag = 0;
  a.as.i = 3;
  struct tagged b;
  b.tag = 1;
  b.as.d = 0.5;
  return valueOf(a) + valueOf(b) == 3.5 ? 0 : 1;
}
)");
}

TEST(Programs, GlobalStateAcrossCalls) {
  expectClean(R"(static int log_[8];
static int logged = 0;

static void record(int event) {
  if (logged < 8) { log_[logged++] = event; }
}

static int replay(void) {
  int sum = 0; int i;
  for (i = 0; i < logged; i++) { sum = sum * 10 + log_[i]; }
  return sum;
}

int main(void) {
  record(1); record(2); record(3);
  return replay() - 123;
}
)");
}

} // namespace
