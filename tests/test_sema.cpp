//===- tests/test_sema.cpp - Semantic analysis tests ---------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cundef;

namespace {

/// Compiles only; returns whether type checking succeeded.
bool compiles(const std::string &Source, std::string *Errors = nullptr) {
  Driver Drv;
  Driver::Compiled C = Drv.compile(Source, "t.c");
  if (Errors)
    *Errors = C->errors();
  return C->ok();
}

TEST(Sema, RejectsPointerArithOnNonPointers) {
  EXPECT_FALSE(compiles("struct s { int v; };\n"
                        "int main(void) { struct s a; struct s b;"
                        " a + b; return 0; }"));
}

TEST(Sema, RejectsCallOfNonFunction) {
  EXPECT_FALSE(compiles("int main(void) { int x = 1; return x(); }"));
}

TEST(Sema, RejectsMemberOfNonStruct) {
  EXPECT_FALSE(compiles("int main(void) { int x = 1; return x.field; }"));
}

TEST(Sema, RejectsUnknownMember) {
  EXPECT_FALSE(compiles("struct s { int a; };\n"
                        "int main(void) { struct s v; return v.b; }"));
}

TEST(Sema, RejectsAssignToRValue) {
  EXPECT_FALSE(compiles("int main(void) { int x; (x + 1) = 2; return 0; }"));
}

TEST(Sema, RejectsAddressOfRValue) {
  EXPECT_FALSE(compiles("int main(void) { int x = 1; return &(x + 1) != 0; }"));
}

TEST(Sema, RejectsArrayAssignment) {
  EXPECT_FALSE(compiles("int main(void) { int a[2]; int b[2]; a = b;"
                        " return 0; }"));
}

TEST(Sema, RejectsDerefOfInt) {
  EXPECT_FALSE(compiles("int main(void) { int x = 1; return *x; }"));
}

TEST(Sema, RejectsDuplicateCaseLabels) {
  EXPECT_FALSE(compiles("int main(void) {\n"
                        "  switch (1) { case 1: return 0; case 1:"
                        " return 1; }\n  return 2;\n}"));
}

TEST(Sema, RejectsBreakOutsideLoop) {
  EXPECT_FALSE(compiles("int main(void) { break; return 0; }"));
}

TEST(Sema, RejectsContinueOutsideLoop) {
  EXPECT_FALSE(compiles("int main(void) { continue; return 0; }"));
}

TEST(Sema, RejectsUndeclaredLabel) {
  EXPECT_FALSE(compiles("int main(void) { goto nowhere; return 0; }"));
}

TEST(Sema, RejectsDuplicateLabel) {
  EXPECT_FALSE(compiles("int main(void) { l: ; l: ; return 0; }"));
}

TEST(Sema, RejectsNonConstantCase) {
  EXPECT_FALSE(compiles("int main(void) {\n"
                        "  int v = 1;\n"
                        "  switch (1) { case 0: return 0; case 1 + 0:"
                        " return 1; }\n"
                        "  switch (v) { case 2: return v; }\n"
                        "  return 2;\n}")
                   ? false
                   : !compiles("int main(void) { int v = 1;"
                               " switch (1) { case v: return 0; }"
                               " return 1; }"));
}

TEST(Sema, RejectsWrongArityCall) {
  EXPECT_FALSE(compiles("static int f(int a, int b) { return a + b; }\n"
                        "int main(void) { return f(1); }"));
}

TEST(Sema, AcceptsVariadicExtraArgs) {
  EXPECT_TRUE(compiles("#include <stdio.h>\n"
                       "int main(void) { printf(\"%d %d\\n\", 1, 2);"
                       " return 0; }"));
}

TEST(Sema, WarnsButAcceptsIncompatiblePointerAssign) {
  std::string Errors;
  EXPECT_TRUE(compiles("int main(void) { int x = 1; long *p = &x;"
                       " return p != 0; }",
                       &Errors));
  EXPECT_NE(Errors.find("warning"), std::string::npos);
}

TEST(Sema, ImplicitConversionsInserted) {
  // double -> int in initialization, int -> double in call, char
  // promotion in arithmetic: all must type-check and run.
  expectClean("static double half(double d) { return d / 2.0; }\n"
              "int main(void) {\n"
              "  int truncated = 7.9;\n"
              "  double widened = half(7);\n"
              "  char c = 'a';\n"
              "  int sum = c + 1;\n"
              "  return truncated - 7 + (widened == 3.5 ? 0 : 1)"
              " + sum - 'b';\n}\n");
}

TEST(Sema, NullPointerConstantForms) {
  expectClean("#include <stddef.h>\n"
              "int main(void) {\n"
              "  int *a = 0;\n"
              "  int *b = NULL;\n"
              "  int *c = (void*)0;\n"
              "  return (a == b && b == c) ? 0 : 1;\n}\n");
}

TEST(Sema, ConditionalPointerMix) {
  expectClean("int main(void) {\n"
              "  int x = 1;\n"
              "  int *p = x ? &x : 0;\n"
              "  void *v = x ? (void*)&x : (void*)0;\n"
              "  return (p && v) ? 0 : 1;\n}\n");
}

TEST(Sema, StaticFindingsDoNotBlockExecution) {
  Driver Drv;
  DriverOutcome O =
      Drv.runSource("int main(void) {\n"
                    "  if (0) { 1 / 0; }\n"
                    "  return 0;\n}\n",
                    "t.c");
  EXPECT_TRUE(O.CompileOk);
  EXPECT_FALSE(O.StaticUb.empty());
  EXPECT_EQ(O.Status, RunStatus::Completed);
  EXPECT_EQ(O.ExitCode, 0);
}

TEST(Sema, VoidFunctionValueUseRejected) {
  std::string Errors;
  EXPECT_FALSE(compiles("static void v(void) {}\n"
                        "int main(void) { return v() + 1; }",
                        &Errors));
}

TEST(Sema, SizeofNonEvaluatedOperand) {
  // sizeof's operand is not evaluated: no uninitialized-read report.
  expectClean("int main(void) { int x;"
              " return (int)sizeof(x) - 4; }");
}

} // namespace
