//===- tests/test_property_arith.cpp - Random expression properties -----------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Property test: for randomly generated (defined!) unsigned-arithmetic
// expressions, the machine must agree with a host-side oracle, and must
// never report undefinedness. Unsigned arithmetic keeps the generated
// programs defined by construction (wraparound, masked shifts, guarded
// divisors).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <string>

using namespace cundef;

namespace {

/// Deterministic xorshift so every seed regenerates the same program.
struct Rng {
  uint32_t State;
  explicit Rng(uint32_t Seed) : State(Seed ? Seed : 1) {}
  uint32_t next() {
    State ^= State << 13;
    State ^= State >> 17;
    State ^= State << 5;
    return State;
  }
  uint32_t below(uint32_t N) { return next() % N; }
};

struct GenExpr {
  std::string Text;
  uint64_t Value;
};

/// Variables available to generated expressions, with fixed values.
constexpr uint64_t VarA = 0x1234567890abcdefull;
constexpr uint64_t VarB = 17;
constexpr uint64_t VarC = 0xfffffffffffffff0ull;

GenExpr genExpr(Rng &R, int Depth) {
  if (Depth == 0 || R.below(4) == 0) {
    switch (R.below(4)) {
    case 0:
      return {"a", VarA};
    case 1:
      return {"b", VarB};
    case 2:
      return {"c", VarC};
    default: {
      uint64_t K = R.below(1000);
      return {std::to_string(K) + "ul", K};
    }
    }
  }
  GenExpr L = genExpr(R, Depth - 1);
  GenExpr Rhs = genExpr(R, Depth - 1);
  switch (R.below(8)) {
  case 0:
    return {"(" + L.Text + " + " + Rhs.Text + ")", L.Value + Rhs.Value};
  case 1:
    return {"(" + L.Text + " - " + Rhs.Text + ")", L.Value - Rhs.Value};
  case 2:
    return {"(" + L.Text + " * " + Rhs.Text + ")", L.Value * Rhs.Value};
  case 3:
    return {"(" + L.Text + " & " + Rhs.Text + ")", L.Value & Rhs.Value};
  case 4:
    return {"(" + L.Text + " | " + Rhs.Text + ")", L.Value | Rhs.Value};
  case 5:
    return {"(" + L.Text + " ^ " + Rhs.Text + ")", L.Value ^ Rhs.Value};
  case 6: {
    // Defined shift: count masked to [0, 63].
    std::string Text =
        "(" + L.Text + " << (" + Rhs.Text + " & 63ul))";
    return {Text, L.Value << (Rhs.Value & 63)};
  }
  default: {
    // Defined division: divisor forced nonzero.
    std::string Text = "(" + L.Text + " / (" + Rhs.Text + " | 1ul))";
    return {Text, L.Value / (Rhs.Value | 1)};
  }
  }
}

class ArithProperty : public ::testing::TestWithParam<int> {};

TEST_P(ArithProperty, MachineMatchesOracle) {
  Rng R(static_cast<uint32_t>(GetParam() * 2654435761u + 7));
  GenExpr E = genExpr(R, 4);
  std::string Source =
      "int main(void) {\n"
      "  unsigned long a = 0x1234567890abcdeful;\n"
      "  unsigned long b = 17ul;\n"
      "  unsigned long c = 0xfffffffffffffff0ul;\n"
      "  unsigned long r = " + E.Text + ";\n"
      "  return r == " + std::to_string(E.Value) + "ul ? 0 : 1;\n}\n";
  expectClean(Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArithProperty, ::testing::Range(0, 48));

/// The same property through comparisons: the machine's relational
/// operators agree with the oracle's.
class CompareProperty : public ::testing::TestWithParam<int> {};

TEST_P(CompareProperty, ComparisonsMatchOracle) {
  Rng R(static_cast<uint32_t>(GetParam() * 40503u + 3));
  GenExpr L = genExpr(R, 3);
  GenExpr Rhs = genExpr(R, 3);
  const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
  unsigned Which = R.below(6);
  bool Expected;
  switch (Which) {
  case 0: Expected = L.Value < Rhs.Value; break;
  case 1: Expected = L.Value <= Rhs.Value; break;
  case 2: Expected = L.Value > Rhs.Value; break;
  case 3: Expected = L.Value >= Rhs.Value; break;
  case 4: Expected = L.Value == Rhs.Value; break;
  default: Expected = L.Value != Rhs.Value; break;
  }
  std::string Source =
      "int main(void) {\n"
      "  unsigned long a = 0x1234567890abcdeful;\n"
      "  unsigned long b = 17ul;\n"
      "  unsigned long c = 0xfffffffffffffff0ul;\n"
      "  int r = (" + L.Text + ") " + Ops[Which] + " (" + Rhs.Text + ");\n"
      "  return r == " + (Expected ? "1" : "0") + " ? 0 : 1;\n}\n";
  expectClean(Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompareProperty, ::testing::Range(0, 32));

/// Signed arithmetic stays in oracle agreement while the values are
/// small enough to be defined.
class SignedSmallProperty : public ::testing::TestWithParam<int> {};

TEST_P(SignedSmallProperty, SmallSignedArithMatches) {
  Rng R(static_cast<uint32_t>(GetParam() * 69069u + 11));
  int64_t A = static_cast<int64_t>(R.below(2000)) - 1000;
  int64_t B = static_cast<int64_t>(R.below(2000)) - 1000;
  int64_t Div = B == 0 ? 1 : B;
  int64_t Expected = (A + B) * 3 - A / Div + (A % Div);
  std::string Source =
      "int main(void) {\n"
      "  int a = " + std::to_string(A) + ";\n"
      "  int b = " + std::to_string(B) + ";\n"
      "  int div = b == 0 ? 1 : b;\n"
      "  int r = (a + b) * 3 - a / div + (a % div);\n"
      "  return r == " + std::to_string(Expected) + " ? 0 : 1;\n}\n";
  expectClean(Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignedSmallProperty,
                         ::testing::Range(0, 32));

} // namespace
