//===- tests/test_styles.cpp - Specification style equivalence -----------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The paper's three specification styles (side conditions 4.1,
// inclusion/exclusion precedence chains 4.5.1, declarative monitors
// 4.5.2) must agree on every verdict.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <gtest/gtest.h>

using namespace cundef;

namespace {

struct Verdict {
  bool Flagged;
  uint16_t Code;
};

Verdict runWithStyle(const char *Source, RuleStyle Style) {
  // staticChecks off isolates the dynamic rules.
  Driver Drv(AnalysisRequest::Builder()
                 .style(Style)
                 .staticChecks(false)
                 .buildOrDie());
  DriverOutcome O = Drv.runSource(Source, "style.c");
  EXPECT_TRUE(O.CompileOk) << O.CompileErrors;
  if (O.DynamicUb.empty())
    return {false, 0};
  return {true, ubCode(O.DynamicUb.front().Kind)};
}

void expectAllStylesAgree(const char *Source, bool ExpectFlagged,
                          uint16_t ExpectCode = 0) {
  for (RuleStyle Style : {RuleStyle::SideConditions,
                          RuleStyle::PrecedenceChain,
                          RuleStyle::Declarative}) {
    Verdict V = runWithStyle(Source, Style);
    EXPECT_EQ(V.Flagged, ExpectFlagged)
        << "style " << static_cast<int>(Style) << "\n" << Source;
    if (ExpectFlagged && ExpectCode) {
      EXPECT_EQ(V.Code, ExpectCode)
          << "style " << static_cast<int>(Style) << "\n" << Source;
    }
  }
}

TEST(Styles, DivisionByZero) {
  expectAllStylesAgree("int main(void) { int d = 0; return 3 / d; }", true,
                       ubCode(UbKind::DivisionByZero));
}

TEST(Styles, DivisionOk) {
  expectAllStylesAgree("int main(void) { int d = 3; return (9 / d) - 3; }",
                       false);
}

TEST(Styles, NullDeref) {
  expectAllStylesAgree("int main(void) { int *p = 0; return *p; }", true,
                       ubCode(UbKind::DerefNullPointer));
}

TEST(Styles, VoidDeref) {
  expectAllStylesAgree(
      "int main(void) { int x = 1; void *p = &x; *p; return 0; }", true,
      ubCode(UbKind::DerefVoidPointer));
}

TEST(Styles, DanglingDeref) {
  expectAllStylesAgree(
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  int *p = (int*)malloc(sizeof(int));\n"
      "  if (!p) { return 1; }\n"
      "  free(p);\n  return *p;\n}\n",
      true, ubCode(UbKind::UseAfterFree));
}

TEST(Styles, ValidDerefOk) {
  expectAllStylesAgree(
      "int main(void) { int x = 5; int *p = &x; return *p - 5; }", false);
}

TEST(Styles, Unsequenced) {
  expectAllStylesAgree(
      "int main(void) { int x = 0; return (x = 1) + (x = 2); }", true,
      ubCode(UbKind::UnsequencedSideEffect));
}

TEST(Styles, SequencedOk) {
  expectAllStylesAgree(
      "int main(void) { int x = 0; x = 1; x = 2; return x - 2; }", false);
}

TEST(Styles, Overflow) {
  expectAllStylesAgree(
      "int main(void) { int x = 2147483647; return (x + 1) != 0; }", true,
      ubCode(UbKind::SignedOverflow));
}

TEST(Styles, OutOfBoundsDeref) {
  expectAllStylesAgree(
      "int main(void) { int a[2]; a[0] = 1; int *p = a + 2; return *p; }",
      true, ubCode(UbKind::DerefOnePastEnd));
}

TEST(Styles, PrecedenceChainShape) {
  // The chains themselves: positive rule registered first, negative
  // refinements after (applied newest-first).
  StringInterner Interner;
  AstContext Ctx(TargetConfig::lp64(), Interner);
  UbSink Sink;
  MachineOptions Opts;
  Machine M(Ctx, Opts, Sink);
  auto DerefNames = M.derefChain().names();
  ASSERT_GE(DerefNames.size(), 5u);
  EXPECT_EQ(DerefNames.front(), "deref") << "positive rule first";
  EXPECT_EQ(DerefNames.back(), "deref-neg-void")
      << "most-refined negative rule last (applied first)";
  auto DivNames = M.divChain().names();
  ASSERT_EQ(DivNames.size(), 3u);
  EXPECT_EQ(DivNames.front(), "div-int");
  EXPECT_EQ(DivNames.back(), "div-by-zero");
}

} // namespace
