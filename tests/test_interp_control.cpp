//===- tests/test_interp_control.cpp - Control-transfer deep tests ------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// goto into/out of blocks, switch into nested statements, lifetimes at
// the boundaries -- the machine's unwinding/path-pushing machinery.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cundef;

namespace {

TEST(InterpControl, GotoOutOfNestedBlocks) {
  expectClean("int main(void) {\n"
              "  int n = 0;\n"
              "  { { { n = 1; goto out; } } }\n"
              "out:\n"
              "  return n - 1;\n}\n");
}

TEST(InterpControl, GotoBackwardKeepsOuterValues) {
  expectClean("int main(void) {\n"
              "  int rounds = 0; int total = 0;\n"
              "again:\n"
              "  total += 5;\n"
              "  rounds++;\n"
              "  if (rounds < 4) { goto again; }\n"
              "  return total - 20;\n}\n");
}

TEST(InterpControl, GotoIntoBlockSkipsInitializer) {
  // Jumping into a block: storage exists but the skipped initializer
  // never ran, so the object is indeterminate (C11 6.2.4p6).
  expectUb("int main(void) {\n"
           "  goto inside;\n"
           "  {\n"
           "    int x = 5;\n"
           "inside:\n"
           "    return x;\n"
           "  }\n"
           "}\n",
           UbKind::ReadIndeterminateValue);
}

TEST(InterpControl, GotoIntoBlockThenAssignIsFine) {
  expectClean("int main(void) {\n"
              "  goto inside;\n"
              "  {\n"
              "    int x = 5;\n"
              "inside:\n"
              "    x = 1;\n"
              "    return x - 1;\n"
              "  }\n"
              "}\n");
}

TEST(InterpControl, GotoIntoLoopBody) {
  expectClean("int main(void) {\n"
              "  int i = 0; int visits = 0;\n"
              "  goto body;\n"
              "  for (i = 0; i < 3; i++) {\n"
              "body:\n"
              "    visits++;\n"
              "  }\n"
              "  return visits - 3;\n}\n");
}

TEST(InterpControl, GotoOutOfLoopEndsIteration) {
  expectClean("int main(void) {\n"
              "  int i; int seen = 0;\n"
              "  for (i = 0; i < 100; i++) {\n"
              "    seen++;\n"
              "    if (i == 2) { goto done; }\n"
              "  }\n"
              "done:\n"
              "  return seen - 3;\n}\n");
}

TEST(InterpControl, SwitchIntoNestedBlock) {
  // Duff's-device-style: case labels inside an inner block.
  expectClean("int main(void) {\n"
              "  int r = 0;\n"
              "  switch (2) {\n"
              "  case 1: r += 100;\n"
              "    {\n"
              "  case 2: r += 10;\n"
              "  case 3: r += 1;\n"
              "    }\n"
              "  }\n"
              "  return r - 11;\n}\n");
}

TEST(InterpControl, DuffsDevice) {
  expectClean("int main(void) {\n"
              "  int count = 7; int acc = 0;\n"
              "  int n = (count + 3) / 4;\n"
              "  switch (count % 4) {\n"
              "  case 0: do { acc++;\n"
              "  case 3:      acc++;\n"
              "  case 2:      acc++;\n"
              "  case 1:      acc++;\n"
              "          } while (--n > 0);\n"
              "  }\n"
              "  return acc - 7;\n}\n");
}

TEST(InterpControl, BreakInsideSwitchInsideLoop) {
  expectClean("int main(void) {\n"
              "  int i; int hits = 0;\n"
              "  for (i = 0; i < 4; i++) {\n"
              "    switch (i) {\n"
              "    case 2: break;\n"
              "    default: hits++; break;\n"
              "    }\n"
              "  }\n"
              "  return hits - 3;\n}\n");
}

TEST(InterpControl, ContinueSkipsSwitch) {
  expectClean("int main(void) {\n"
              "  int i; int after = 0;\n"
              "  for (i = 0; i < 4; i++) {\n"
              "    switch (i) { case 1: case 3: continue; default: break; }\n"
              "    after++;\n"
              "  }\n"
              "  return after - 2;\n}\n");
}

TEST(InterpControl, BlockReentryFreshLifetime) {
  // Each loop iteration re-enters the block: a fresh, uninitialized
  // object each time (the control's initialization makes it defined).
  expectClean("int main(void) {\n"
              "  int total = 0; int i;\n"
              "  for (i = 0; i < 3; i++) {\n"
              "    int fresh = i * 2;\n"
              "    total += fresh;\n"
              "  }\n"
              "  return total - 6;\n}\n");
}

TEST(InterpControl, WhileConditionSequencePoint) {
  expectClean("int main(void) {\n"
              "  int n = 3;\n"
              "  while (n--) { }\n"
              "  return n + 1;\n}\n");
}

TEST(InterpControl, NestedFunctionCallsInConditions) {
  expectClean("static int dec(int *p) { *p = *p - 1; return *p; }\n"
              "int main(void) {\n"
              "  int n = 4; int spins = 0;\n"
              "  while (dec(&n) > 0) { spins++; }\n"
              "  return spins - 3;\n}\n");
}

TEST(InterpControl, EarlyReturnUnwindsBlocks) {
  expectClean("static int pick(int c) {\n"
              "  { int a = 1;\n"
              "    { int b = 2;\n"
              "      if (c) { return a + b; }\n"
              "    }\n"
              "  }\n"
              "  return 0;\n}\n"
              "int main(void) { return pick(1) - 3 + pick(0); }\n");
}

} // namespace
