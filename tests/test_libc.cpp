//===- tests/test_libc.cpp - Library builtin semantics -------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cundef;

namespace {

TEST(Libc, StrlenStrcpy) {
  expectClean("#include <string.h>\n"
              "int main(void) {\n"
              "  char buf[16];\n"
              "  strcpy(buf, \"hello\");\n"
              "  return (int)strlen(buf) - 5;\n}\n");
}

TEST(Libc, StrcmpOrdering) {
  expectClean("#include <string.h>\n"
              "int main(void) {\n"
              "  return (strcmp(\"abc\", \"abc\") == 0 &&\n"
              "          strcmp(\"abc\", \"abd\") < 0 &&\n"
              "          strcmp(\"b\", \"a\") > 0 &&\n"
              "          strncmp(\"abcx\", \"abcy\", 3) == 0) ? 0 : 1;\n}\n");
}

TEST(Libc, StrchrFindsAndMisses) {
  expectClean("#include <string.h>\n"
              "int main(void) {\n"
              "  char s[] = \"hello\";\n"
              "  char *l = strchr(s, 'l');\n"
              "  char *z = strchr(s, 'z');\n"
              "  return (l == s + 2 && z == 0) ? 0 : 1;\n}\n");
}

TEST(Libc, StrchrFindsTerminator) {
  expectClean("#include <string.h>\n"
              "int main(void) {\n"
              "  char s[] = \"hi\";\n"
              "  return strchr(s, 0) == s + 2 ? 0 : 1;\n}\n");
}

TEST(Libc, StrcatAppends) {
  expectClean("#include <string.h>\n"
              "int main(void) {\n"
              "  char buf[16];\n"
              "  strcpy(buf, \"ab\");\n"
              "  strcat(buf, \"cd\");\n"
              "  return strcmp(buf, \"abcd\");\n}\n");
}

TEST(Libc, MemcpyAndMemcmp) {
  expectClean("#include <string.h>\n"
              "int main(void) {\n"
              "  int src[3]; int dst[3]; int i;\n"
              "  for (i = 0; i < 3; i++) { src[i] = i + 1; }\n"
              "  memcpy(dst, src, sizeof src);\n"
              "  return memcmp(dst, src, sizeof src);\n}\n");
}

TEST(Libc, MemcpyCopiesStructPadding) {
  // The paper's 4.3.3 motivation: byte-wise copies must move padding
  // and uninitialized fields without error.
  expectClean("#include <string.h>\n"
              "struct padded { char c; int i; };\n"
              "int main(void) {\n"
              "  struct padded a; struct padded b;\n"
              "  a.c = 'x'; a.i = 3;\n"
              "  memcpy(&b, &a, sizeof a);\n"
              "  return b.i - 3;\n}\n");
}

TEST(Libc, MemcpyOverlapUb) {
  expectUb("#include <string.h>\n"
           "int main(void) {\n"
           "  char buf[8] = \"abcdefg\";\n"
           "  memcpy(buf + 1, buf, 3);\n"
           "  return 0;\n}\n",
           UbKind::MemcpyOverlap);
}

TEST(Libc, MemmoveOverlapOk) {
  expectClean("#include <string.h>\n"
              "int main(void) {\n"
              "  char buf[8] = \"abcdefg\";\n"
              "  memmove(buf + 1, buf, 3);\n"
              "  return (buf[1] == 'a' && buf[3] == 'c') ? 0 : 1;\n}\n");
}

TEST(Libc, MemsetFills) {
  expectClean("#include <string.h>\n"
              "int main(void) {\n"
              "  unsigned char b[4];\n"
              "  memset(b, 0x5A, sizeof b);\n"
              "  return (b[0] == 0x5A && b[3] == 0x5A) ? 0 : 1;\n}\n");
}

TEST(Libc, MemsetOutOfBounds) {
  expectUb("#include <string.h>\n"
           "int main(void) { char b[4]; memset(b, 0, 5); return 0; }\n",
           UbKind::WriteOutOfBounds);
}

TEST(Libc, StrlenOfNonString) {
  expectUb("#include <string.h>\n"
           "int main(void) {\n"
           "  char b[3]; b[0] = 'a'; b[1] = 'b'; b[2] = 'c';\n"
           "  return (int)strlen(b);\n}\n",
           UbKind::DerefOnePastEnd);
}

TEST(Libc, StrlenOfUninitBuffer) {
  expectUb("#include <string.h>\n"
           "int main(void) { char b[8]; return (int)strlen(b); }\n",
           UbKind::ReadIndeterminateValue);
}

TEST(Libc, PrintfBasics) {
  std::string Out = outputOf("#include <stdio.h>\n"
                             "int main(void) {\n"
                             "  printf(\"n=%d s=%s c=%c\\n\", 5, \"ok\","
                             " 'y');\n"
                             "  putchar('z');\n  putchar('\\n');\n"
                             "  puts(\"end\");\n"
                             "  return 0;\n}\n");
  EXPECT_EQ(Out, "n=5 s=ok c=y\nz\nend\n");
}

TEST(Libc, PrintfReturnsCount) {
  expectClean("#include <stdio.h>\n"
              "int main(void) { return printf(\"abc\\n\") - 4; }\n");
}

TEST(Libc, PrintfMissingArgument) {
  DriverOutcome O = runKcc("#include <stdio.h>\n"
                           "int main(void) { printf(\"%d %d\\n\", 1);"
                           " return 0; }\n");
  ASSERT_TRUE(O.anyUb());
  EXPECT_EQ(ubCode(O.DynamicUb.front().Kind), 72u);
}

TEST(Libc, PrintfWrongType) {
  expectUb("#include <stdio.h>\n"
           "int main(void) { printf(\"%s\\n\", 7); return 0; }\n",
           UbKind::VaArgTypeMismatch);
}

TEST(Libc, AtoiParses) {
  expectClean("#include <stdlib.h>\n"
              "int main(void) { return atoi(\"42\") - 42; }\n");
}

TEST(Libc, RandIsDeterministicAndSeeded) {
  expectClean("#include <stdlib.h>\n"
              "int main(void) {\n"
              "  srand(7);\n"
              "  int a = rand();\n"
              "  srand(7);\n"
              "  int b = rand();\n"
              "  return a == b ? 0 : 1;\n}\n");
}

TEST(Libc, AbortStopsExecution) {
  DriverOutcome O = runKcc("#include <stdlib.h>\n"
                           "#include <stdio.h>\n"
                           "int main(void) {\n"
                           "  printf(\"before\\n\");\n"
                           "  abort();\n"
                           "  printf(\"after\\n\");\n"
                           "  return 0;\n}\n");
  EXPECT_EQ(O.Status, RunStatus::Completed);
  EXPECT_EQ(O.ExitCode, 134);
  EXPECT_EQ(O.Output, "before\n");
}

TEST(Libc, MallocZeroUsable) {
  // Zero-size allocation: the pointer exists, any dereference is UB
  // under the catalog's dedicated code (38), not one-past-the-end —
  // a zero-size object has no "end" to be one past.
  expectUb("#include <stdlib.h>\n"
           "int main(void) {\n"
           "  char *p = (char*)malloc(0);\n"
           "  if (!p) { return 0; }\n"
           "  return p[0];\n}\n",
           UbKind::ZeroSizeAllocationUse);
}

TEST(Libc, MallocHugeReturnsNull) {
  expectClean("#include <stdlib.h>\n"
              "int main(void) {\n"
              "  void *p = malloc(1024ul * 1024ul * 1024ul);\n"
              "  return p == 0 ? 0 : 1;\n}\n");
}

TEST(Libc, CallocOverflowReturnsNull) {
  expectClean("#include <stdlib.h>\n"
              "int main(void) {\n"
              "  void *p = calloc(0xffffffffffffffffUL, 16);\n"
              "  return p == 0 ? 0 : 1;\n}\n");
}

TEST(Libc, QsortSortsWithUserComparator) {
  expectClean("#include <stdlib.h>\n"
              "static int cmp(const void *a, const void *b) {\n"
              "  const int *x = (const int*)a;\n"
              "  const int *y = (const int*)b;\n"
              "  return (*x > *y) - (*x < *y);\n}\n"
              "int main(void) {\n"
              "  int d[6] = {4, 1, 5, 2, 6, 3};\n"
              "  int i;\n"
              "  qsort(d, 6, sizeof(int), cmp);\n"
              "  for (i = 0; i < 6; i++) {\n"
              "    if (d[i] != i + 1) { return 1; }\n"
              "  }\n"
              "  return 0;\n}\n");
}

TEST(Libc, QsortIsStableAgainstDescendingComparator) {
  expectClean("#include <stdlib.h>\n"
              "static int desc(const void *a, const void *b) {\n"
              "  return *(const int*)b - *(const int*)a;\n}\n"
              "int main(void) {\n"
              "  int d[4] = {1, 3, 2, 4};\n"
              "  qsort(d, 4, sizeof(int), desc);\n"
              "  return (d[0] == 4 && d[3] == 1) ? 0 : 1;\n}\n");
}

TEST(Libc, BsearchFindsAndMisses) {
  expectClean("#include <stdlib.h>\n"
              "static int cmp(const void *a, const void *b) {\n"
              "  return *(const int*)a - *(const int*)b;\n}\n"
              "int main(void) {\n"
              "  int d[5] = {2, 4, 6, 8, 10};\n"
              "  int six = 6; int seven = 7;\n"
              "  int *hit = (int*)bsearch(&six, d, 5, sizeof(int), cmp);\n"
              "  void *miss = bsearch(&seven, d, 5, sizeof(int), cmp);\n"
              "  return (hit == &d[2] && miss == 0) ? 0 : 1;\n}\n");
}

TEST(Libc, QsortComparatorUbSurfaces) {
  // Undefinedness inside the callback propagates out of the library
  // call: the comparator divides by zero.
  expectUb("#include <stdlib.h>\n"
           "static int bad(const void *a, const void *b) {\n"
           "  int zero = *(const int*)a - *(const int*)a;\n"
           "  return *(const int*)b / zero;\n}\n"
           "int main(void) {\n"
           "  int d[3] = {3, 1, 2};\n"
           "  qsort(d, 3, sizeof(int), bad);\n"
           "  return d[0];\n}\n",
           UbKind::DivisionByZero);
}

TEST(Libc, QsortOfUninitializedElementsUb) {
  expectUb("#include <stdlib.h>\n"
           "static int cmp(const void *a, const void *b) {\n"
           "  return *(const int*)a - *(const int*)b;\n}\n"
           "int main(void) {\n"
           "  int d[3];\n"
           "  d[0] = 1;\n"
           "  qsort(d, 3, sizeof(int), cmp);\n"
           "  return d[0];\n}\n",
           UbKind::ReadIndeterminateValue);
}

TEST(Libc, VarargsSum) {
  expectClean("#include <stdarg.h>\n"
              "static int sumOf(int count, ...) {\n"
              "  va_list ap;\n"
              "  va_start(ap, count);\n"
              "  int total = 0; int i;\n"
              "  for (i = 0; i < count; i++) { total += va_arg(ap, int); }\n"
              "  va_end(ap);\n"
              "  return total;\n}\n"
              "int main(void) { return sumOf(4, 10, 20, 30, 40) - 100; }\n");
}

TEST(Libc, VarargsMixedTypes) {
  // float arguments arrive default-promoted to double (C11 6.5.2.2p6).
  expectClean("#include <stdarg.h>\n"
              "static double total(int count, ...) {\n"
              "  va_list ap;\n"
              "  va_start(ap, count);\n"
              "  double acc = 0.0; int i;\n"
              "  for (i = 0; i < count; i++) {"
              " acc += va_arg(ap, double); }\n"
              "  va_end(ap);\n"
              "  return acc;\n}\n"
              "int main(void) { return total(2, 1.5, 2.5) == 4.0 ? 0 : 1;"
              " }\n");
}

TEST(Libc, VaArgPastEndUb) {
  DriverOutcome O = runKcc("#include <stdarg.h>\n"
                           "static int first(int count, ...) {\n"
                           "  va_list ap;\n"
                           "  va_start(ap, count);\n"
                           "  int a = va_arg(ap, int);\n"
                           "  int b = va_arg(ap, int);\n"
                           "  va_end(ap);\n"
                           "  return a + b;\n}\n"
                           "int main(void) { return first(1, 7); }\n");
  ASSERT_TRUE(O.anyUb());
  EXPECT_EQ(ubCode(O.DynamicUb.front().Kind), 98u)
      << "va_arg with no next argument";
}

TEST(Libc, VaArgWrongTypeUb) {
  // An int argument read as double: undefined (C11 7.16.1.1p2);
  // surfaces through the typed-cell model as an invalid read.
  DriverOutcome O = runKcc("#include <stdarg.h>\n"
                           "static double asDouble(int count, ...) {\n"
                           "  va_list ap;\n"
                           "  va_start(ap, count);\n"
                           "  double d = va_arg(ap, double);\n"
                           "  va_end(ap);\n"
                           "  return d;\n}\n"
                           "int main(void) { return asDouble(1, 42) > 0.0;"
                           " }\n");
  EXPECT_TRUE(O.anyUb());
}

TEST(Libc, VaArgAliasMismatchUb) {
  // Same-size mismatch (double argument read as long): caught by the
  // effective-type rule on the materialized cell.
  DriverOutcome O = runKcc("#include <stdarg.h>\n"
                           "static long asLong(int count, ...) {\n"
                           "  va_list ap;\n"
                           "  va_start(ap, count);\n"
                           "  long v = va_arg(ap, long);\n"
                           "  va_end(ap);\n"
                           "  return v;\n}\n"
                           "int main(void) { return asLong(1, 1.25) != 0;"
                           " }\n");
  ASSERT_TRUE(O.anyUb());
  EXPECT_EQ(O.DynamicUb.front().Kind, UbKind::StrictAliasingViolation);
}

TEST(Libc, SprintfFormatsIntoBuffer) {
  expectClean("#include <stdio.h>\n"
              "#include <string.h>\n"
              "int main(void) {\n"
              "  char buf[32];\n"
              "  int n = sprintf(buf, \"<%d|%s>\", 42, \"ok\");\n"
              "  return strcmp(buf, \"<42|ok>\") + (n - 7);\n}\n");
}

TEST(Libc, SprintfOverflowIsUb) {
  DriverOutcome O = runKcc("#include <stdio.h>\n"
                           "int main(void) {\n"
                           "  char tiny[4];\n"
                           "  sprintf(tiny, \"%d\", 123456);\n"
                           "  return 0;\n}\n");
  EXPECT_TRUE(O.anyUb()) << "writing past the destination buffer";
}

TEST(Libc, SnprintfTruncatesAndReportsFullLength) {
  expectClean("#include <stdio.h>\n"
              "#include <string.h>\n"
              "int main(void) {\n"
              "  char tiny[8];\n"
              "  int full = snprintf(tiny, sizeof tiny, \"123456789\");\n"
              "  return strcmp(tiny, \"1234567\") + (full - 9);\n}\n");
}

TEST(Libc, AssertPassesAndFails) {
  expectClean("#include <assert.h>\n"
              "int main(void) { assert(1 + 1 == 2); return 0; }\n");
  DriverOutcome O = runKcc("#include <assert.h>\n"
                           "int main(void) { assert(1 == 2); return 0; }\n");
  EXPECT_EQ(O.Status, RunStatus::Completed);
  EXPECT_EQ(O.ExitCode, 134) << "failed assert aborts";
}

TEST(Libc, CtypeClassifiers) {
  expectClean("#include <ctype.h>\n"
              "int main(void) {\n"
              "  return (isdigit('5') && !isdigit('a') &&\n"
              "          isalpha('z') && !isalpha('1') &&\n"
              "          isspace(' ') && !isspace('x') &&\n"
              "          toupper('b') == 'B' && tolower('C') == 'c')\n"
              "             ? 0 : 1;\n}\n");
}

TEST(Libc, UserDefinitionShadowsBuiltin) {
  // A program-local strlen is an ordinary function, not the builtin.
  expectClean("static unsigned long strlen(const char *s) {\n"
              "  (void)s;\n  return 99;\n}\n"
              "int main(void) { return strlen(\"ab\") == 99 ? 0 : 1; }\n");
}

} // namespace
