//===- tests/test_search_fork.cpp - Fork-vs-replay equivalence ----------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The fork engine (core/Search.h: children resume from configuration
// snapshots captured at their choice points) must be observationally
// identical to forced prefix replay: same decision traces, same
// fingerprint streams, same witnesses, at any job count. This suite
// asserts that equivalence on the seed UB-sequence programs, plus the
// foundations it rests on: incremental fingerprints equal full-state
// rehashes at every choice point, and the visited-set key does not
// alias structured (depth, fingerprint) pairs.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "driver/Driver.h"

#include <gtest/gtest.h>

#include <set>

using namespace cundef;

namespace {

/// Seed UB-sequence and order-dependence programs (tests/test_ub_sequence
/// and the paper's section 2.5.2 example), plus defined controls: the
/// corpus every engine comparison runs over.
const char *Corpus[] = {
    // Order-dependent division by zero (paper 2.5.2).
    "int d = 5;\n"
    "int setDenom(int x) { return d = x; }\n"
    "int main(void) { return (10 / d) + setDenom(0); }\n",
    // Unsequenced read/write pairs.
    "int main(void) { int x = 1; return x + x++; }\n",
    "int main(void) { int i = 0; i = i++; return i; }\n",
    "int main(void) { int x = 0; return (x = 1) + (x = 2); }\n",
    "static int f(int a, int b) { return a + b; }\n"
    "int main(void) { int x = 0; return f(x = 1, x = 2); }\n",
    // Nested order dependence: needs two flips.
    "int a = 1;\n"
    "int set(int v) { a = v; return 0; }\n"
    "int main(void) { return (8 / a) + (set(0) + set(1)); }\n",
    // Defined controls with commuting choice points.
    "static int f(void) { return 1; }\n"
    "static int g(void) { return 2; }\n"
    "int main(void) { return f() + g() - 3; }\n",
    "static int g(int x) { return x + 1; }\n"
    "int main(void) { int t = 0; t += g(0) + g(1); t += g(2) + g(3);\n"
    "  t += g(4) + g(5); return t > 0 ? 0 : 1; }\n",
};

SearchResult searchWith(const Driver::Compiled &C, SearchOptions SO) {
  MachineOptions Opts;
  OrderSearch Search(C->ast(), Opts, SO);
  return Search.run();
}

void expectSameVerdict(const SearchResult &A, const SearchResult &B,
                       const char *Source) {
  EXPECT_EQ(A.UbFound, B.UbFound) << Source;
  EXPECT_EQ(A.Witness, B.Witness) << Source;
  ASSERT_EQ(A.Reports.size(), B.Reports.size()) << Source;
  for (size_t I = 0; I < A.Reports.size(); ++I) {
    EXPECT_EQ(A.Reports[I].Kind, B.Reports[I].Kind) << Source;
    EXPECT_EQ(A.Reports[I].Loc.Line, B.Reports[I].Loc.Line) << Source;
  }
}

} // namespace

TEST(ForkSearch, EquivalentToReplayAtJobs1) {
  // At one thread everything is deterministic, so the comparison is
  // total: every run's pinned prefix, full decision trace, fingerprint
  // stream, status, and dedup outcome must match between engines. Only
  // the Forked start-mode marker may differ.
  for (const char *Source : Corpus) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Source, "fork1.c");
    ASSERT_TRUE(C->ok()) << C->errors();
    SearchOptions Fork;
    Fork.MaxRuns = 256;
    Fork.Jobs = 1;
    Fork.UseSnapshots = true;
    Fork.CollectRuns = true;
    SearchOptions Replay = Fork;
    Replay.UseSnapshots = false;

    SearchResult RF = searchWith(C, Fork);
    SearchResult RR = searchWith(C, Replay);
    expectSameVerdict(RF, RR, Source);
    EXPECT_EQ(RF.RunsExplored, RR.RunsExplored) << Source;
    EXPECT_EQ(RF.DedupHits, RR.DedupHits) << Source;
    EXPECT_EQ(RF.SubtreesPruned, RR.SubtreesPruned) << Source;
    EXPECT_EQ(RF.Waves, RR.Waves) << Source;
    EXPECT_EQ(RR.ForkedRuns, 0u) << Source;

    ASSERT_EQ(RF.Runs.size(), RR.Runs.size()) << Source;
    for (size_t I = 0; I < RF.Runs.size(); ++I) {
      const SearchRunRecord &F = RF.Runs[I];
      const SearchRunRecord &R = RR.Runs[I];
      EXPECT_EQ(F.Pinned, R.Pinned) << Source << " run " << I;
      EXPECT_EQ(F.Trace, R.Trace) << Source << " run " << I
                                  << ": decision traces diverge";
      EXPECT_EQ(F.FpStream, R.FpStream)
          << Source << " run " << I << ": fingerprint streams diverge";
      EXPECT_EQ(F.Status, R.Status) << Source << " run " << I;
      EXPECT_EQ(F.DedupAborted, R.DedupAborted) << Source << " run " << I;
    }
  }
}

TEST(ForkSearch, EquivalentToReplayAtJobs4) {
  // With workers, runs cancelled by a concurrently found witness may
  // record partial streams, but the committed outputs — verdict,
  // witness, reports — are deterministic and must match across engines
  // and repetitions.
  for (const char *Source : Corpus) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Source, "fork4.c");
    ASSERT_TRUE(C->ok()) << C->errors();
    SearchOptions Fork;
    Fork.MaxRuns = 256;
    Fork.Jobs = 4;
    Fork.UseSnapshots = true;
    SearchOptions Replay = Fork;
    Replay.UseSnapshots = false;

    SearchResult RF0 = searchWith(C, Fork);
    for (int Round = 0; Round < 3; ++Round) {
      SearchResult RF = searchWith(C, Fork);
      SearchResult RR = searchWith(C, Replay);
      expectSameVerdict(RF, RR, Source);
      expectSameVerdict(RF, RF0, Source);
    }
  }
}

TEST(ForkSearch, ForkingActuallyHappens) {
  // Guard against the engine silently degrading to replay-only: on a
  // multi-wave program with the default budget, children must fork.
  Driver Drv;
  Driver::Compiled C = Drv.compile(Corpus[7], "forked.c");
  ASSERT_TRUE(C->ok());
  SearchOptions SO;
  SO.MaxRuns = 256;
  SearchResult R = searchWith(C, SO);
  EXPECT_GT(R.ForkedRuns, 0u);
  EXPECT_GT(R.RunsExplored, 1u);
}

TEST(ForkSearch, SnapshotBudgetZeroFallsBackToReplay) {
  for (const char *Source : {Corpus[0], Corpus[5], Corpus[7]}) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Source, "budget.c");
    ASSERT_TRUE(C->ok());
    SearchOptions Capped;
    Capped.MaxRuns = 256;
    Capped.UseSnapshots = true;
    Capped.SnapshotBudget = 0; // every capture is declined
    SearchOptions Free = Capped;
    Free.SnapshotBudget = 1024;

    SearchResult RCap = searchWith(C, Capped);
    SearchResult RFree = searchWith(C, Free);
    EXPECT_EQ(RCap.ForkedRuns, 0u) << Source;
    expectSameVerdict(RCap, RFree, Source);
    EXPECT_EQ(RCap.RunsExplored, RFree.RunsExplored) << Source;
  }
}

TEST(ForkSearch, TinySnapshotBudgetStillCorrect) {
  // A budget of 1 forces constant admission churn: most children fall
  // back to replay, a few fork. Outcomes must not change.
  Driver Drv;
  Driver::Compiled C = Drv.compile(Corpus[5], "tiny.c");
  ASSERT_TRUE(C->ok());
  SearchOptions Tiny;
  Tiny.MaxRuns = 256;
  Tiny.SnapshotBudget = 1;
  SearchOptions Free = Tiny;
  Free.SnapshotBudget = 1024;
  expectSameVerdict(searchWith(C, Tiny), searchWith(C, Free), Corpus[5]);
}

TEST(ForkSearch, IncrementalFingerprintEqualsFullRehash) {
  // The incremental digests (cached memory objects, k prefix hashes,
  // sequencing-set sums, frame caches) must agree with a from-scratch
  // rehash at every choice point of a real run — this is the
  // correctness argument for every cache, exercised over programs that
  // hit arrays, structs, heap allocation, strings, and scope exit.
  const char *Programs[] = {
      Corpus[0],
      Corpus[7],
      "int buf[64];\n"
      "static int g(int x) { buf[x % 64] += x; return x + 1; }\n"
      "int main(void) { int t = 0; t += g(0) + g(1); t += g(2) + g(3);\n"
      "  return t > 0 ? 0 : 1; }\n",
      "typedef struct { int a; int b; } P;\n"
      "static int f(P *p) { p->a += p->b; return p->a; }\n"
      "int main(void) { P p; p.a = 1; p.b = 2;\n"
      "  return f(&p) + f(&p) - 8 ? 1 : 0; }\n",
      "#include <stdlib.h>\n"
      "static int g(int x) {\n"
      "  int *p = malloc(sizeof(int)); *p = x; x = *p; free(p);\n"
      "  return x; }\n"
      "int main(void) { int t = g(1) + g(2); return t - 3; }\n",
  };
  for (const char *Source : Programs) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Source, "incr.c");
    ASSERT_TRUE(C->ok()) << C->errors();
    MachineOptions Opts;
    UbSink Sink;
    Machine M(C->ast(), Opts, Sink);
    unsigned Checked = 0;
    M.setChoiceHook([&](Machine &Mach) {
      EXPECT_EQ(Mach.configFingerprint(), Mach.configFingerprintFull())
          << Source << " at choice point " << Mach.decisionTrace().size();
      ++Checked;
      return true;
    });
    M.run();
    EXPECT_GT(Checked, 0u) << Source;
    EXPECT_EQ(M.configFingerprint(), M.configFingerprintFull()) << Source;
  }
}

TEST(ForkSearch, FullRehashSearchMatchesIncremental) {
  // End-to-end version of the same equivalence: a search whose dedup
  // keys come from full rehashes must make the identical decisions —
  // runs, hits, fingerprint streams — as one using the incremental
  // path.
  for (const char *Source : {Corpus[0], Corpus[5], Corpus[7]}) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Source, "rehash.c");
    ASSERT_TRUE(C->ok());
    SearchOptions Incr;
    Incr.MaxRuns = 256;
    Incr.Jobs = 1;
    Incr.CollectRuns = true;
    SearchOptions Full = Incr;
    Full.FullRehash = true;

    SearchResult RI = searchWith(C, Incr);
    SearchResult RO = searchWith(C, Full);
    expectSameVerdict(RI, RO, Source);
    EXPECT_EQ(RI.DedupHits, RO.DedupHits) << Source;
    ASSERT_EQ(RI.Runs.size(), RO.Runs.size()) << Source;
    for (size_t I = 0; I < RI.Runs.size(); ++I)
      EXPECT_EQ(RI.Runs[I].FpStream, RO.Runs[I].FpStream)
          << Source << " run " << I;
  }
}

TEST(ForkSearch, VisitKeyCollisionRegression) {
  // The old key was fp ^ (depth * phi): every pair on a phi-stride line
  // collapsed to one key — (d, X ^ d*phi) aliased for all d. The mixed
  // key must keep all such adversarial families distinct.
  constexpr uint64_t Phi = 0x9e3779b97f4a7c15ull;
  std::set<std::pair<uint64_t, uint64_t>> Pairs;
  for (uint64_t Base : {uint64_t(0), uint64_t(1), Phi,
                        uint64_t(0xdeadbeef)}) {
    for (uint64_t Depth = 0; Depth < 64; ++Depth) {
      // Adversarial: the old scheme maps every one of these to Base.
      Pairs.emplace(Depth, Base ^ (Depth * Phi));
      // And the plain grid around small fingerprints.
      Pairs.emplace(Depth, Base + Depth);
    }
  }
  std::set<uint64_t> Keys;
  for (const auto &[Depth, Fp] : Pairs)
    Keys.insert(searchVisitKey(Depth, Fp));
  EXPECT_EQ(Keys.size(), Pairs.size()) << "distinct (depth, fp) pairs alias";

  // The concrete aliases that motivated the fix.
  EXPECT_NE(searchVisitKey(0, Phi), searchVisitKey(1, 0));
  EXPECT_NE(searchVisitKey(2, 0), searchVisitKey(0, 2 * Phi));
}

TEST(ForkSearch, JobsZeroAutoDetects) {
  // --search-jobs=0 resolves to hardware concurrency inside the search;
  // verdict and witness are job-count independent, so the observable
  // contract is simply "same results, no crash".
  Driver Drv;
  Driver::Compiled C = Drv.compile(Corpus[0], "auto.c");
  ASSERT_TRUE(C->ok());
  SearchOptions One;
  One.MaxRuns = 64;
  One.Jobs = 1;
  SearchOptions Auto = One;
  Auto.Jobs = 0;
  expectSameVerdict(searchWith(C, Auto), searchWith(C, One), Corpus[0]);

  Driver DrvAuto(AnalysisRequest::Builder()
                     .searchRuns(64)
                     .searchJobs(0)
                     .buildOrDie());
  DriverOutcome O = DrvAuto.runSource(Corpus[0], "auto_drv.c");
  ASSERT_TRUE(O.CompileOk);
  EXPECT_FALSE(O.DynamicUb.empty());
}

TEST(ForkSearch, TruncationIsReported) {
  // A budget too small for the frontier must be called out, never
  // silently absorbed. The symmetric program's first wave alone exceeds
  // MaxRuns=2.
  Driver Drv;
  Driver::Compiled C = Drv.compile(Corpus[7], "trunc.c");
  ASSERT_TRUE(C->ok());
  SearchOptions SO;
  SO.MaxRuns = 2;
  SearchResult R = searchWith(C, SO);
  EXPECT_FALSE(R.UbFound);
  EXPECT_TRUE(R.FrontierTruncated);
  EXPECT_GT(R.DroppedSubtrees, 0u);

  // An ample budget explores everything: no truncation flag.
  SO.MaxRuns = 4096;
  SearchResult RFull = searchWith(C, SO);
  EXPECT_FALSE(RFull.FrontierTruncated);
  EXPECT_EQ(RFull.DroppedSubtrees, 0u);

  // The driver surfaces it for kcc --show-witness.
  Driver DrvT(AnalysisRequest::Builder().searchRuns(2).buildOrDie());
  DriverOutcome O = DrvT.runSource(Corpus[7], "trunc_drv.c");
  ASSERT_TRUE(O.CompileOk);
  EXPECT_TRUE(O.SearchTruncated);
  EXPECT_GT(O.SearchDropped, 0u);
}

TEST(ForkSearch, WitnessReplaysOutsideTheEngine) {
  // A witness found by the fork engine must reproduce on a plain
  // machine via setReplayDecisions — forks never leak into the
  // reported decision vector.
  Driver Drv;
  Driver::Compiled C = Drv.compile(Corpus[5], "replayw.c");
  ASSERT_TRUE(C->ok());
  SearchOptions SO;
  SO.MaxRuns = 256;
  SearchResult R = searchWith(C, SO);
  ASSERT_TRUE(R.UbFound);
  ASSERT_FALSE(R.Witness.empty());
  for (int Round = 0; Round < 3; ++Round) {
    MachineOptions Opts;
    UbSink Sink;
    Machine M(C->ast(), Opts, Sink);
    M.setReplayDecisions(R.Witness);
    EXPECT_EQ(M.run(), RunStatus::UbDetected);
    ASSERT_FALSE(Sink.all().empty());
    EXPECT_EQ(Sink.all().front().Kind, R.Reports.front().Kind);
  }
}
