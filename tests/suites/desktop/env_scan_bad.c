/* Match a simulated environment entry; the copy dropped the NUL. */
#include <string.h>

int main(void) {
  char entry[8];
  memcpy(entry, "HOME=/rt", 8); /* exactly fills: no terminator */
  if (strncmp(entry, "HOME=", 5) != 0)
    return 1;
  return strlen(entry) > 5; /* walks past the unterminated entry */
}
