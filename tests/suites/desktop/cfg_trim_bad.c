/* Trim trailing blanks from a config value, pointer-walking backward. */
int main(void) {
  char buf[4];
  buf[0] = ' ';
  buf[1] = ' ';
  buf[2] = ' ';
  buf[3] = ' ';
  char *end = buf + 3;
  while (*end == ' ') {
    end = end - 1; /* an all-blank value walks off the front */
  }
  return end < buf;
}
