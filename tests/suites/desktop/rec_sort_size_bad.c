/* Sort record keys before a report; the element size is wrong. */
#include <stdlib.h>

static int by_key(const void *a, const void *b) {
  return *(const int *)a - *(const int *)b;
}

int main(void) {
  int keys[4];
  keys[0] = 42;
  keys[1] = 7;
  keys[2] = 19;
  keys[3] = 3;
  qsort(keys, 4, 1, by_key); /* 1 byte per element, not sizeof(int) */
  return keys[0];
}
