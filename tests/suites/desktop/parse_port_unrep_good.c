/* Parse a port from a config line; the value fits comfortably. */
#include <stdlib.h>

int main(void) {
  char port[8] = "8080";
  int p = atoi(port);
  return p == 8080 ? 0 : 1;
}
