/* Drain a file-like buffer in fixed chunks, clamping the tail. */
#include <string.h>

int main(void) {
  char file[20];
  memset(file, 'd', 20);
  char out[24];
  int off = 0;
  while (off < 20) {
    int n = 20 - off < 8 ? 20 - off : 8;
    memcpy(out + off, file + off, n);
    off = off + n;
  }
  return out[0] == 'd';
}
