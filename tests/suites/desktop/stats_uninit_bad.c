/* A counters struct is filled field by field; one never is. */
struct stats {
  int hits;
  int misses;
};

int main(void) {
  struct stats s;
  s.hits = 3;
  return s.hits + s.misses; /* misses was never assigned */
}
