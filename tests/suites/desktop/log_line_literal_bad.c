/* Strip the newline from a log line held in a string literal. */
int main(void) {
  char *line = "msg\n";
  line[3] = 0; /* string literals are not writable */
  return line[0] == 'm';
}
