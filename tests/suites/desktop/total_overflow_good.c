/* Sum content lengths in a long, wide enough for the total. */
int main(void) {
  int sizes[3];
  sizes[0] = 2000000000;
  sizes[1] = 2000000000;
  sizes[2] = 1;
  long total = 0;
  int i;
  for (i = 0; i < 3; i = i + 1) {
    total = total + sizes[i];
  }
  return total > 0;
}
