/* Match a simulated environment entry; the buffer holds a string. */
#include <string.h>

int main(void) {
  char entry[9];
  memcpy(entry, "HOME=/rt", 8);
  entry[8] = 0;
  if (strncmp(entry, "HOME=", 5) != 0)
    return 1;
  return strlen(entry) > 5;
}
