/* Drain a file-like buffer in fixed chunks; the tail chunk overruns. */
#include <string.h>

int main(void) {
  char file[20];
  memset(file, 'd', 20);
  char out[24];
  int off = 0;
  while (off < 20) {
    memcpy(out + off, file + off, 8); /* final chunk reads file[20..23] */
    off = off + 8;
  }
  return out[0] == 'd';
}
