/* A formatting helper fills a caller-provided buffer. */
static void fmt_size(int n, char *out) {
  out[0] = (char)('0' + (n % 10));
  out[1] = 'B';
  out[2] = 0;
}

int main(void) {
  char label[8];
  fmt_size(5, label);
  return label[0] == '5';
}
