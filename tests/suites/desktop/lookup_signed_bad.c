/* Translate a status code through a table; the code is unvalidated. */
int main(void) {
  int table[4];
  table[0] = 1;
  table[1] = 2;
  table[2] = 3;
  table[3] = 4;
  int code = -2; /* straight from input */
  return table[code];
}
