/* A counters struct fully initialized before the report. */
struct stats {
  int hits;
  int misses;
};

int main(void) {
  struct stats s;
  s.hits = 3;
  s.misses = 0;
  return s.hits + s.misses;
}
