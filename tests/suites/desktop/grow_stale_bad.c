/* Grow a table with realloc but keep reading the old pointer. */
#include <stdlib.h>

int main(void) {
  int *tab = (int *)malloc(2 * sizeof(int));
  if (!tab)
    return 1;
  tab[0] = 5;
  int *bigger = (int *)realloc(tab, 64 * sizeof(int));
  if (!bigger) {
    free(tab);
    return 1;
  }
  int v = tab[0]; /* tab was released by the successful realloc */
  free(bigger);
  return v - 5;
}
