/* The output file is optional; absent means stdout. */
struct cfg {
  const char *outfile;
};

int main(void) {
  struct cfg c;
  c.outfile = 0;
  if (!c.outfile)
    return 0; /* stdout */
  return c.outfile[0] == '-';
}
