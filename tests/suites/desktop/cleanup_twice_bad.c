/* The error path released the buffer; the cleanup frees it again. */
#include <stdlib.h>

int main(void) {
  char *buf = (char *)malloc(16);
  if (!buf)
    return 1;
  int err = 1; /* the parse failed */
  if (err) {
    free(buf);
  }
  free(buf); /* common cleanup, second free */
  return 0;
}
