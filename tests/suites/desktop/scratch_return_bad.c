/* A formatting helper hands back its own stack scratch buffer. */
static char *fmt_size(int n) {
  char scratch[8];
  scratch[0] = (char)('0' + (n % 10));
  scratch[1] = 'B';
  scratch[2] = 0;
  return scratch; /* dies with the call */
}

int main(void) {
  char *label = fmt_size(5);
  return label[0] == '5';
}
