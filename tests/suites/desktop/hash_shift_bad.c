/* A rolling hash shifts by the character value itself. */
int main(void) {
  char key[3] = "hi";
  unsigned long h = 1;
  int i;
  for (i = 0; key[i]; i = i + 1) {
    h = (h << key[i]) + 7; /* shift count 104 > width */
  }
  return h != 0;
}
