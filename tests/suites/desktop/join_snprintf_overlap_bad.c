/* Prefix a message in place: snprintf source overlaps destination.
   Undefined per 7.21.6.5; the modelled snprintf copies through, so
   this case documents a known miss. */
#include <stdio.h>

int main(void) {
  char msg[16] = "warn";
  snprintf(msg, 16, "log: %s", msg);
  return msg[0] == 'l';
}
