/* Scan a simulated argv for options; off-by-one past the terminator. */
static char *argv_sim[3];

int main(void) {
  char prog[5] = "prog";
  char flag[3] = "-v";
  argv_sim[0] = prog;
  argv_sim[1] = flag;
  argv_sim[2] = 0;
  int i = 0;
  while (argv_sim[i]) {
    i = i + 1;
  }
  /* i is now the terminator slot; +1 reads past the array */
  return argv_sim[i + 1] != 0;
}
