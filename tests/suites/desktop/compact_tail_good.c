/* Compact the non-zero samples with an exclusive bound. */
int main(void) {
  int vals[4];
  vals[0] = 1;
  vals[1] = 0;
  vals[2] = 3;
  vals[3] = 0;
  int kept = 0;
  int i;
  for (i = 0; i < 4; i = i + 1) {
    if (vals[i] != 0) {
      vals[kept] = vals[i];
      kept = kept + 1;
    }
  }
  return kept - 2;
}
