/* A hand-rolled strdup sizes the copy for string plus terminator. */
#include <stdlib.h>
#include <string.h>

int main(void) {
  char name[6] = "cfg.c";
  char *copy = (char *)malloc(strlen(name) + 1);
  if (!copy)
    return 1;
  strcpy(copy, name);
  int ok = copy[0] == 'c';
  free(copy);
  return ok;
}
