/* A status line grew a second conversion but not a second argument. */
#include <stdio.h>

int main(void) {
  int requests = 7;
  printf("served %d requests to %s\n", requests);
  return 0;
}
