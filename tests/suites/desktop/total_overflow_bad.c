/* Sum content lengths in an int; two large entries overflow it. */
int main(void) {
  int sizes[3];
  sizes[0] = 2000000000;
  sizes[1] = 2000000000;
  sizes[2] = 1;
  int total = 0;
  int i;
  for (i = 0; i < 3; i = i + 1) {
    total = total + sizes[i]; /* signed overflow on the second add */
  }
  return total > 0;
}
