/* Normalize a mode name in place; the table entry is const. */
static const char mode[5] = "Fast";

int main(void) {
  char *p = (char *)mode;
  p[0] = 'f'; /* writes a const-qualified object */
  return p[0] == 'f';
}
