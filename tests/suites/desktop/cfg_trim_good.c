/* Trim trailing blanks from a config value, counting with an index. */
int main(void) {
  char buf[4];
  buf[0] = ' ';
  buf[1] = ' ';
  buf[2] = ' ';
  buf[3] = ' ';
  int n = 4;
  while (n > 0 && buf[n - 1] == ' ') {
    n = n - 1;
  }
  return n;
}
