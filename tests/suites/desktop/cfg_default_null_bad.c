/* The output file is optional; the default is used without a check. */
struct cfg {
  const char *outfile;
};

int main(void) {
  struct cfg c;
  c.outfile = 0; /* no -o on the command line */
  return c.outfile[0] == '-'; /* dereferences the NULL default */
}
