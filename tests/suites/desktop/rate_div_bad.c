/* Average bytes per operation, where the op count comes from input. */
#include <stdlib.h>

int main(void) {
  char field[2] = "0"; /* parsed out of a report line */
  int ops = atoi(field);
  int bytes = 4096;
  return bytes / ops; /* zero ops */
}
