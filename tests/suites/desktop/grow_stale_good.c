/* Grow a table with realloc and switch to the new pointer. */
#include <stdlib.h>

int main(void) {
  int *tab = (int *)malloc(2 * sizeof(int));
  if (!tab)
    return 1;
  tab[0] = 5;
  int *bigger = (int *)realloc(tab, 64 * sizeof(int));
  if (!bigger) {
    free(tab);
    return 1;
  }
  int v = bigger[0];
  free(bigger);
  return v - 5;
}
