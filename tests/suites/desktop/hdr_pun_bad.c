/* Parse a binary header by viewing the byte buffer as words. */
int main(void) {
  char hdr[8];
  hdr[0] = 1;
  hdr[1] = 0;
  hdr[2] = 0;
  hdr[3] = 0;
  hdr[4] = 2;
  hdr[5] = 0;
  hdr[6] = 0;
  hdr[7] = 0;
  int *words = (int *)hdr;
  return words[0]; /* reads char storage with int effective type */
}
