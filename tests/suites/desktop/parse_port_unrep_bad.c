/* Parse a port from a config line; the value does not fit an int.
   The standard leaves atoi undefined here (7.22.1); the modelled
   atoi wraps, so this case documents a known miss. */
#include <stdlib.h>

int main(void) {
  char port[24] = "99999999999999999999";
  int p = atoi(port);
  return p > 0 ? 0 : 1;
}
