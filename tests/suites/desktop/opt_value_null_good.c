/* -o expects a value; a missing value is a usage error, not a deref. */
#include <string.h>

static char *args[3];

int main(void) {
  char a0[5] = "prog";
  char a1[3] = "-o";
  args[0] = a0;
  args[1] = a1;
  args[2] = 0;
  int i;
  for (i = 1; args[i]; i = i + 1) {
    if (strcmp(args[i], "-o") == 0) {
      char *val = args[i + 1];
      if (!val)
        return 2; /* usage error */
      return val[0] == 'x';
    }
  }
  return 0;
}
