/* The error path releases and clears; the cleanup checks first. */
#include <stdlib.h>

int main(void) {
  char *buf = (char *)malloc(16);
  if (!buf)
    return 1;
  int err = 1;
  if (err) {
    free(buf);
    buf = 0;
  }
  if (buf)
    free(buf);
  return 0;
}
