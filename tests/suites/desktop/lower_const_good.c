/* Normalize a mode name in a private copy. */
#include <string.h>

static const char mode[5] = "Fast";

int main(void) {
  char copy[5];
  strcpy(copy, mode);
  copy[0] = 'f';
  return copy[0] == 'f';
}
