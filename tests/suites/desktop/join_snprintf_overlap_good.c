/* Prefix a message into a separate buffer. */
#include <stdio.h>

int main(void) {
  char msg[16] = "warn";
  char out[24];
  snprintf(out, 24, "log: %s", msg);
  return out[0] == 'l';
}
