/* Average bytes per operation, guarding the zero-op case. */
#include <stdlib.h>

int main(void) {
  char field[2] = "0";
  int ops = atoi(field);
  int bytes = 4096;
  if (ops == 0)
    return 0;
  return bytes / ops;
}
