/* A log call with the conversion matching the argument. */
#include <stdio.h>

int main(void) {
  char host[10] = "localhost";
  printf("host id %s\n", host);
  return 0;
}
