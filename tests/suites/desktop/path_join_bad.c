/* Join a prefix and a component into a fixed path buffer. */
#include <string.h>

int main(void) {
  char path[8];
  strcpy(path, "/usr");
  strcat(path, "/share/misc"); /* 16 bytes into an 8-byte buffer */
  return path[0] == '/';
}
