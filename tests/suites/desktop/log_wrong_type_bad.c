/* A log call passes the host string to a numeric conversion. */
#include <stdio.h>

int main(void) {
  char host[10] = "localhost";
  printf("host id %d\n", host);
  return 0;
}
