/* Count the fields of a CSV record read into a raw buffer. */
#include <string.h>

int main(void) {
  char rec[5]; /* filled from "I/O" without the terminator */
  rec[0] = 'a';
  rec[1] = ',';
  rec[2] = 'b';
  rec[3] = ',';
  rec[4] = 'c';
  int fields = 1;
  unsigned long i;
  for (i = 0; i < strlen(rec); i = i + 1) {
    if (rec[i] == ',')
      fields = fields + 1;
  }
  return fields - 3;
}
