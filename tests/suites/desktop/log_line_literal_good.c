/* Strip the newline from a log line held in a writable array. */
int main(void) {
  char line[5] = "msg\n";
  line[3] = 0;
  return line[0] == 'm';
}
