/* A hand-rolled strdup sizes the copy without the terminator. */
#include <stdlib.h>
#include <string.h>

int main(void) {
  char name[6] = "cfg.c";
  char *copy = (char *)malloc(strlen(name)); /* forgot the +1 */
  if (!copy)
    return 1;
  strcpy(copy, name); /* the NUL lands one past the allocation */
  int ok = copy[0] == 'c';
  free(copy);
  return ok;
}
