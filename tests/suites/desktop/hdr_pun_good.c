/* Parse a binary header by copying the bytes into a word. */
#include <string.h>

int main(void) {
  char hdr[8];
  hdr[0] = 1;
  hdr[1] = 0;
  hdr[2] = 0;
  hdr[3] = 0;
  hdr[4] = 2;
  hdr[5] = 0;
  hdr[6] = 0;
  hdr[7] = 0;
  int word0;
  memcpy(&word0, hdr, sizeof word0);
  return word0 - 1;
}
