/* A status line with an argument per conversion. */
#include <stdio.h>

int main(void) {
  int requests = 7;
  char host[10] = "localhost";
  printf("served %d requests to %s\n", requests, host);
  return 0;
}
