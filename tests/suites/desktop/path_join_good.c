/* Join a prefix and a component into a buffer sized for both. */
#include <string.h>

int main(void) {
  char path[32];
  strcpy(path, "/usr");
  strcat(path, "/share/misc");
  return path[0] == '/';
}
