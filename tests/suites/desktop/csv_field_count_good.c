/* Count the fields of a CSV record; the buffer is a real string. */
#include <string.h>

int main(void) {
  char rec[6] = "a,b,c";
  int fields = 1;
  unsigned long i;
  for (i = 0; i < strlen(rec); i = i + 1) {
    if (rec[i] == ',')
      fields = fields + 1;
  }
  return fields - 3;
}
