/* Translate a status code through a table after validating it. */
int main(void) {
  int table[4];
  table[0] = 1;
  table[1] = 2;
  table[2] = 3;
  table[3] = 4;
  int code = -2;
  if (code < 0 || code > 3)
    return 0;
  return table[code];
}
