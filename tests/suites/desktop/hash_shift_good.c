/* A rolling hash keeps the shift inside the word width. */
int main(void) {
  char key[3] = "hi";
  unsigned long h = 1;
  int i;
  for (i = 0; key[i]; i = i + 1) {
    h = (h << (key[i] % 8)) + 7;
  }
  return h != 0;
}
