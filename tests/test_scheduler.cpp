//===- tests/test_scheduler.cpp - Work-stealing scheduler tests ---------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The work-stealing scheduler (core/Scheduler.h) must commit outputs
// byte-identical to the wave engine's: same witnesses, reports, run
// counts, dedup hits, pruned subtrees, and truncation accounting, at
// any job count, because its canonical commit wavefront replays the
// wave engine's barrier order while execution proceeds speculatively.
// This suite asserts that equivalence, the LRU snapshot cache's
// replay fallback under thrash, and the batched driver's per-program
// aggregation ordering.
//
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"
#include "driver/Driver.h"
#include "driver/ToolRunner.h"
#include "suites/JulietGen.h"
#include "suites/SuiteRunner.h"

#include <gtest/gtest.h>

#include <iterator>

using namespace cundef;

namespace {

/// UB-by-order programs, defined controls, and commuting-choice-point
/// trees: the corpus every wave-vs-stealing comparison runs over.
const char *Corpus[] = {
    // Order-dependent division by zero (paper 2.5.2).
    "int d = 5;\n"
    "int setDenom(int x) { return d = x; }\n"
    "int main(void) { return (10 / d) + setDenom(0); }\n",
    // Unsequenced read/write.
    "int main(void) { int x = 1; return x + x++; }\n",
    // Nested order dependence: needs two flips.
    "int a = 1;\n"
    "int set(int v) { a = v; return 0; }\n"
    "int main(void) { return (8 / a) + (set(0) + set(1)); }\n",
    // Defined control with commuting choice points.
    "static int f(void) { return 1; }\n"
    "static int g(void) { return 2; }\n"
    "int main(void) { return f() + g() - 3; }\n",
    // Deeper commuting tree (the dedup's best case).
    "static int g(int x) { return x + 1; }\n"
    "int main(void) { int t = 0; t += g(0) + g(1); t += g(2) + g(3);\n"
    "  t += g(4) + g(5); return t > 0 ? 0 : 1; }\n",
};

/// Whether the program is undefined on some order (clean programs get
/// the full-counter comparison; UB programs end at a timing-dependent
/// point in the wave engine at jobs > 1, so only committed outputs are
/// compared there).
bool isClean(const char *Source) {
  return Source == Corpus[3] || Source == Corpus[4];
}

SearchResult searchWith(const Driver::Compiled &C, SearchOptions SO) {
  MachineOptions Opts;
  OrderSearch Search(C->ast(), Opts, SO);
  return Search.run();
}

/// Stealing search with the hardware clamp disabled, so the requested
/// worker count really runs even on a 1-core CI machine — the
/// determinism contract must survive genuine cross-thread
/// interleaving, not just a degenerate single-worker pool.
SearchResult searchStealForced(const Driver::Compiled &C, SearchOptions SO,
                               unsigned Workers) {
  SearchScheduler::Config Cfg;
  Cfg.Jobs = Workers;
  Cfg.ClampJobsToHardware = false;
  Cfg.SnapshotBudget = SO.SnapshotBudget;
  SearchScheduler Scheduler(Cfg);
  MachineOptions Opts;
  size_t Id = Scheduler.submit(C->ast(), Opts, SO);
  Scheduler.runAll();
  return Scheduler.takeResult(Id);
}

void expectSameVerdict(const SearchResult &A, const SearchResult &B,
                       const char *Tag) {
  EXPECT_EQ(A.UbFound, B.UbFound) << Tag;
  EXPECT_EQ(A.Witness, B.Witness) << Tag;
  ASSERT_EQ(A.Reports.size(), B.Reports.size()) << Tag;
  for (size_t I = 0; I < A.Reports.size(); ++I) {
    EXPECT_EQ(A.Reports[I].Kind, B.Reports[I].Kind) << Tag;
    EXPECT_EQ(A.Reports[I].Loc.Line, B.Reports[I].Loc.Line) << Tag;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Wave vs stealing byte-equality.
//===----------------------------------------------------------------------===//

TEST(Scheduler, WaveVsStealingWitnessEquality) {
  // Committed outputs must agree between schedulers at jobs 1, 2, and 8
  // — and across repetitions, so steal interleaving never leaks in.
  for (const char *Source : Corpus) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Source, "sched.c");
    ASSERT_TRUE(C->ok()) << C->errors();
    SearchOptions Wave;
    Wave.MaxRuns = 256;
    Wave.Sched = SchedKind::Wave;
    Wave.Jobs = 1;
    SearchResult RW = searchWith(C, Wave);

    for (unsigned Jobs : {1u, 2u, 8u}) {
      SearchOptions Steal;
      Steal.MaxRuns = 256;
      Steal.Sched = SchedKind::Stealing;
      Steal.Jobs = Jobs;
      for (int Round = 0; Round < 3; ++Round) {
        SearchResult RS = searchStealForced(C, Steal, Jobs);
        expectSameVerdict(RW, RS, Source);
        if (isClean(Source) || Jobs == 1) {
          // The full deterministic stats contract.
          EXPECT_EQ(RW.RunsExplored, RS.RunsExplored)
              << Source << " jobs=" << Jobs;
          EXPECT_EQ(RW.DedupHits, RS.DedupHits) << Source << " jobs=" << Jobs;
          EXPECT_EQ(RW.SubtreesPruned, RS.SubtreesPruned)
              << Source << " jobs=" << Jobs;
          EXPECT_EQ(RW.Waves, RS.Waves) << Source << " jobs=" << Jobs;
          EXPECT_EQ(RW.FrontierTruncated, RS.FrontierTruncated) << Source;
          EXPECT_EQ(RW.DroppedSubtrees, RS.DroppedSubtrees) << Source;
        }
      }
    }
  }
}

TEST(Scheduler, WaveVsStealingTraceByteEquality) {
  // At jobs=1 the stealing scheduler's speculative layer is exactly in
  // step with its commit wavefront, so every per-run record — pinned
  // prefix, decision trace, fingerprint stream, status, dedup outcome —
  // must be byte-identical to the wave engine's. Only the Forked
  // start-mode marker may differ (snapshot lifetimes differ).
  for (const char *Source : Corpus) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Source, "trace.c");
    ASSERT_TRUE(C->ok()) << C->errors();
    SearchOptions Wave;
    Wave.MaxRuns = 256;
    Wave.Jobs = 1;
    Wave.Sched = SchedKind::Wave;
    Wave.CollectRuns = true;
    SearchOptions Steal = Wave;
    Steal.Sched = SchedKind::Stealing;

    SearchResult RW = searchWith(C, Wave);
    SearchResult RS = searchWith(C, Steal);
    expectSameVerdict(RW, RS, Source);
    ASSERT_EQ(RW.Runs.size(), RS.Runs.size()) << Source;
    for (size_t I = 0; I < RW.Runs.size(); ++I) {
      const SearchRunRecord &W = RW.Runs[I];
      const SearchRunRecord &S = RS.Runs[I];
      EXPECT_EQ(W.Pinned, S.Pinned) << Source << " run " << I;
      EXPECT_EQ(W.Trace, S.Trace)
          << Source << " run " << I << ": decision traces diverge";
      EXPECT_EQ(W.FpStream, S.FpStream)
          << Source << " run " << I << ": fingerprint streams diverge";
      EXPECT_EQ(W.Status, S.Status) << Source << " run " << I;
      EXPECT_EQ(W.DedupAborted, S.DedupAborted) << Source << " run " << I;
    }
  }
}

TEST(Scheduler, TruncationAccountingMatchesWave) {
  // Budget edges must report the identical dropped-subtree counts: the
  // stealing scheduler applies the budget at generation seal, exactly
  // where the wave engine's barrier applied it.
  for (unsigned MaxRuns : {1u, 2u, 5u, 9u}) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Corpus[4], "trunc.c");
    ASSERT_TRUE(C->ok());
    SearchOptions Wave;
    Wave.MaxRuns = MaxRuns;
    Wave.Sched = SchedKind::Wave;
    SearchOptions Steal = Wave;
    Steal.Sched = SchedKind::Stealing;
    SearchResult RW = searchWith(C, Wave);
    SearchResult RS = searchWith(C, Steal);
    EXPECT_EQ(RW.FrontierTruncated, RS.FrontierTruncated)
        << "budget " << MaxRuns;
    EXPECT_EQ(RW.DroppedSubtrees, RS.DroppedSubtrees) << "budget " << MaxRuns;
    EXPECT_EQ(RW.RunsExplored, RS.RunsExplored) << "budget " << MaxRuns;
  }
}

TEST(Scheduler, RandomPolicyAndDeclarativeStyleStillWork) {
  // The gates the wave engine applies (no dedup under Random, no
  // snapshots under Random/Declarative) must hold in the scheduler too.
  Driver Drv;
  Driver::Compiled C = Drv.compile(Corpus[0], "gates.c");
  ASSERT_TRUE(C->ok());
  for (auto Setup : {EvalOrderKind::Random, EvalOrderKind::LeftToRight}) {
    MachineOptions MOpts;
    MOpts.Order = Setup;
    SearchOptions SO;
    SO.MaxRuns = 64;
    SO.Sched = SchedKind::Stealing;
    OrderSearch Search(C->ast(), MOpts, SO);
    SearchResult R = Search.run();
    EXPECT_TRUE(R.UbFound) << "order policy " << int(Setup);
  }
  MachineOptions Decl;
  Decl.Style = RuleStyle::Declarative;
  SearchOptions SO;
  SO.MaxRuns = 64;
  SO.Sched = SchedKind::Stealing;
  OrderSearch Search(C->ast(), Decl, SO);
  SearchResult R = Search.run();
  EXPECT_TRUE(R.UbFound);
  EXPECT_EQ(R.ForkedRuns, 0u) << "declarative style must not snapshot";
}

//===----------------------------------------------------------------------===//
// LRU snapshot cache.
//===----------------------------------------------------------------------===//

TEST(Scheduler, LruThrashFallsBackToReplay) {
  // A cache far too small for the tree forces evictions; every evicted
  // child replays its prefix instead, and nothing observable changes.
  Driver Drv;
  Driver::Compiled C = Drv.compile(Corpus[4], "lru.c");
  ASSERT_TRUE(C->ok());
  SearchOptions Ample;
  Ample.MaxRuns = 256;
  Ample.SnapshotBudget = 1024;
  SearchResult RAmple = searchWith(C, Ample);

  for (unsigned Cap : {0u, 1u, 2u}) {
    for (SchedKind Sched : {SchedKind::Wave, SchedKind::Stealing}) {
      SearchOptions Tiny = Ample;
      Tiny.SnapshotBudget = Cap;
      Tiny.Sched = Sched;
      SearchResult RTiny = searchWith(C, Tiny);
      expectSameVerdict(RAmple, RTiny, "lru-thrash");
      EXPECT_EQ(RAmple.RunsExplored, RTiny.RunsExplored) << Cap;
      EXPECT_EQ(RAmple.DedupHits, RTiny.DedupHits) << Cap;
      if (Cap == 0) {
        EXPECT_EQ(RTiny.ForkedRuns, 0u) << "capacity 0 must never fork";
        EXPECT_EQ(RTiny.SnapshotEvictions, 0u)
            << "nothing admitted, nothing evicted";
      } else {
        EXPECT_GT(RTiny.SnapshotEvictions, 0u)
            << "capacity " << Cap << " must thrash on this tree";
      }
    }
  }
  EXPECT_GT(RAmple.ForkedRuns, 0u) << "the ample cache must actually fork";
}

TEST(Scheduler, SnapshotCacheBasics) {
  // Direct unit coverage of the LRU contract: insert-over-capacity
  // evicts the oldest pending entry and charges its counter; take and
  // drop remove entries without eviction accounting.
  SnapshotCache Cache(2);
  std::atomic<unsigned> Evictions{0};
  // An empty configuration is fine for cache logic.
  MachineSnapshot Snap{Configuration(),
                       OrderChooser(EvalOrderKind::LeftToRight, 1)};
  uint64_t A = Cache.insert(Snap, &Evictions);
  uint64_t B = Cache.insert(Snap, &Evictions);
  ASSERT_NE(A, 0u);
  ASSERT_NE(B, 0u);
  EXPECT_EQ(Cache.pending(), 2u);

  uint64_t D = Cache.insert(Snap, &Evictions); // evicts A (oldest)
  EXPECT_EQ(Evictions.load(), 1u);
  EXPECT_EQ(Cache.pending(), 2u);
  EXPECT_EQ(Cache.take(A), nullptr) << "A was evicted";
  EXPECT_NE(Cache.take(B), nullptr) << "B is still pending";
  Cache.drop(D);
  EXPECT_EQ(Cache.pending(), 0u);
  EXPECT_EQ(Evictions.load(), 1u) << "take/drop are not evictions";

  SnapshotCache Zero(0);
  EXPECT_EQ(Zero.insert(Snap, &Evictions), 0u)
      << "capacity 0 admits nothing";
  EXPECT_EQ(Evictions.load(), 1u);
}

//===----------------------------------------------------------------------===//
// Batched driver.
//===----------------------------------------------------------------------===//

TEST(Scheduler, BatchedDriverMatchesRunSource) {
  // Each batched outcome must equal the single-program outcome for the
  // same source: verdict, reports, witness, program output, exit code,
  // compile diagnostics — regardless of batch composition or job count.
  const char *Programs[] = {
      Corpus[0], // UB by order
      "#include <stdio.h>\n"
      "int main(void) { printf(\"out-%d\\n\", 42); return 7; }\n",
      Corpus[2], // UB needing two flips
      "int main(void) { return 0 }\n", // compile error
      Corpus[4], // clean commuting tree
      Corpus[0], // duplicate source: identical outcome expected
  };
  std::vector<BatchInput> Inputs;
  for (size_t I = 0; I < std::size(Programs); ++I)
    Inputs.push_back({Programs[I], "prog" + std::to_string(I) + ".c"});

  for (unsigned Jobs : {1u, 4u}) {
    AnalysisRequest Req = AnalysisRequest::Builder()
                              .searchRuns(64)
                              .searchJobs(Jobs)
                              .buildOrDie();
    Driver Batched(Req);
    BatchResult Batch = Batched.runBatch(Inputs);
    ASSERT_EQ(Batch.Outcomes.size(), Inputs.size());
    EXPECT_EQ(Batch.Stats.Programs, Inputs.size());

    for (size_t I = 0; I < Inputs.size(); ++I) {
      Driver Single(Req);
      DriverOutcome Ref = Single.runSource(Inputs[I].Source, Inputs[I].Name);
      const DriverOutcome &Got = Batch.Outcomes[I];
      EXPECT_EQ(Ref.CompileOk, Got.CompileOk) << I;
      EXPECT_EQ(Ref.CompileErrors, Got.CompileErrors) << I;
      EXPECT_EQ(Ref.anyUb(), Got.anyUb()) << I;
      EXPECT_EQ(Ref.SearchWitness, Got.SearchWitness) << I << " jobs=" << Jobs;
      EXPECT_EQ(Ref.Output, Got.Output) << I;
      EXPECT_EQ(Ref.ExitCode, Got.ExitCode) << I;
      EXPECT_EQ(Ref.Status, Got.Status) << I;
      ASSERT_EQ(Ref.DynamicUb.size(), Got.DynamicUb.size()) << I;
      for (size_t R = 0; R < Ref.DynamicUb.size(); ++R) {
        EXPECT_EQ(Ref.DynamicUb[R].Kind, Got.DynamicUb[R].Kind) << I;
        EXPECT_EQ(Ref.DynamicUb[R].Loc.Line, Got.DynamicUb[R].Loc.Line) << I;
      }
    }
    // Duplicate submissions aggregate independently and identically.
    EXPECT_EQ(Batch.Outcomes[0].SearchWitness,
              Batch.Outcomes[5].SearchWitness);
    EXPECT_EQ(Batch.Outcomes[0].OrdersExplored,
              Batch.Outcomes[5].OrdersExplored);
  }
}

TEST(Scheduler, BatchedAggregationIsDeterministic) {
  // Same batch, different job counts, repeated: per-program results are
  // keyed by program id and must never depend on steal interleaving.
  std::vector<BatchInput> Inputs;
  for (const char *Source : Corpus)
    Inputs.push_back({Source, "det.c"});
  Driver Ref(AnalysisRequest::Builder().searchRuns(64).buildOrDie());
  BatchResult Base = Ref.runBatch(Inputs);

  for (unsigned Jobs : {2u, 8u}) {
    for (int Round = 0; Round < 3; ++Round) {
      Driver Drv(AnalysisRequest::Builder()
                     .searchRuns(64)
                     .searchJobs(Jobs)
                     .buildOrDie());
      BatchResult Got = Drv.runBatch(Inputs);
      ASSERT_EQ(Got.Outcomes.size(), Base.Outcomes.size());
      for (size_t I = 0; I < Base.Outcomes.size(); ++I) {
        EXPECT_EQ(Base.Outcomes[I].anyUb(), Got.Outcomes[I].anyUb()) << I;
        EXPECT_EQ(Base.Outcomes[I].SearchWitness,
                  Got.Outcomes[I].SearchWitness)
            << I << " jobs=" << Jobs;
        EXPECT_EQ(Base.Outcomes[I].Output, Got.Outcomes[I].Output) << I;
        EXPECT_EQ(Base.Outcomes[I].ExitCode, Got.Outcomes[I].ExitCode) << I;
      }
    }
  }
}

TEST(Scheduler, BatchHonorsWaveSchedSelection) {
  // --search-sched=wave must not be silently dropped in batch mode:
  // the wave reference path (sequential runSource per unit) runs, and
  // its observable outcomes match the stealing batch.
  std::vector<BatchInput> Inputs = {{Corpus[0], "w0.c"}, {Corpus[4], "w1.c"}};
  AnalysisRequest Steal =
      AnalysisRequest::Builder().searchRuns(64).buildOrDie();
  AnalysisRequest Wave = AnalysisRequest::Builder()
                             .searchRuns(64)
                             .sched(SchedKind::Wave)
                             .buildOrDie();
  BatchResult RS = Driver(Steal).runBatch(Inputs);
  BatchResult RW = Driver(Wave).runBatch(Inputs);
  ASSERT_EQ(RW.Outcomes.size(), RS.Outcomes.size());
  for (size_t I = 0; I < RS.Outcomes.size(); ++I) {
    EXPECT_EQ(RW.Outcomes[I].anyUb(), RS.Outcomes[I].anyUb()) << I;
    EXPECT_EQ(RW.Outcomes[I].SearchWitness, RS.Outcomes[I].SearchWitness)
        << I;
    EXPECT_EQ(RW.Outcomes[I].Output, RS.Outcomes[I].Output) << I;
    EXPECT_EQ(RW.Outcomes[I].ExitCode, RS.Outcomes[I].ExitCode) << I;
  }
  EXPECT_EQ(RW.Stats.Steals, 0u) << "the wave path must not steal";
}

TEST(Scheduler, CountersSurfaceThroughDriver) {
  // The satellite contract: scheduler counters reach DriverOutcome (and
  // from there the kcc --show-witness stats block) instead of being
  // dropped.
  Driver Drv(AnalysisRequest::Builder().searchRuns(64).buildOrDie());
  DriverOutcome O = Drv.runSource(Corpus[4], "counters.c");
  ASSERT_TRUE(O.CompileOk);
  EXPECT_GT(O.OrdersExplored, 1u);
  EXPECT_GT(O.SearchPeakFrontier, 0u);
  EXPECT_GT(O.OrdersDeduped, 0u) << "the commuting tree must dedup";
}

//===----------------------------------------------------------------------===//
// Batched suite scoring.
//===----------------------------------------------------------------------===//

TEST(Scheduler, BatchedSuiteScoresMatchPerTest) {
  // scoreJulietBatched routes the whole suite through one shared
  // scheduler; scores must match the per-test Tool path exactly.
  JulietGenerator Gen(/*ScaleDivisor=*/256); // a handful per class
  std::vector<TestCase> Tests = Gen.generate();
  ASSERT_FALSE(Tests.empty());
  if (Tests.size() > 24)
    Tests.resize(24);

  // Mirror the kcc tool's configuration.
  AnalysisRequest Req = AnalysisRequest::Builder()
                            .strict(true)
                            .staticChecks(true)
                            .searchRuns(8)
                            .searchJobs(2)
                            .buildOrDie();

  std::unique_ptr<Tool> Kcc = Tool::create(ToolKind::Kcc);
  JulietScores PerTest = scoreJuliet(*Kcc, Tests);
  JulietScores Batched = scoreJulietBatched(Req, Tests);

  ASSERT_EQ(PerTest.PerClass.size(), Batched.PerClass.size());
  for (size_t I = 0; I < PerTest.PerClass.size(); ++I) {
    EXPECT_EQ(PerTest.PerClass[I].Tests, Batched.PerClass[I].Tests) << I;
    EXPECT_EQ(PerTest.PerClass[I].Passed, Batched.PerClass[I].Passed) << I;
    EXPECT_EQ(PerTest.PerClass[I].FalsePositives,
              Batched.PerClass[I].FalsePositives)
        << I;
  }
}
