//===- tests/test_scheduler.cpp - Work-stealing scheduler tests ---------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The work-stealing scheduler (core/Scheduler.h) must commit outputs
// byte-identical to the wave engine's: same witnesses, reports, run
// counts, dedup hits, pruned subtrees, and truncation accounting, at
// any job count, because its canonical commit wavefront replays the
// wave engine's barrier order while execution proceeds speculatively.
// This suite asserts that equivalence, the LRU snapshot cache's
// replay fallback under thrash, and the batched driver's per-program
// aggregation ordering.
//
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"
#include "driver/Driver.h"
#include "driver/ToolRunner.h"
#include "suites/JulietGen.h"
#include "suites/SuiteRunner.h"

#include <gtest/gtest.h>

#include <iterator>
#include <thread>

using namespace cundef;

namespace {

/// UB-by-order programs, defined controls, and commuting-choice-point
/// trees: the corpus every wave-vs-stealing comparison runs over.
const char *Corpus[] = {
    // Order-dependent division by zero (paper 2.5.2).
    "int d = 5;\n"
    "int setDenom(int x) { return d = x; }\n"
    "int main(void) { return (10 / d) + setDenom(0); }\n",
    // Unsequenced read/write.
    "int main(void) { int x = 1; return x + x++; }\n",
    // Nested order dependence: needs two flips.
    "int a = 1;\n"
    "int set(int v) { a = v; return 0; }\n"
    "int main(void) { return (8 / a) + (set(0) + set(1)); }\n",
    // Defined control with commuting choice points.
    "static int f(void) { return 1; }\n"
    "static int g(void) { return 2; }\n"
    "int main(void) { return f() + g() - 3; }\n",
    // Deeper commuting tree (the dedup's best case).
    "static int g(int x) { return x + 1; }\n"
    "int main(void) { int t = 0; t += g(0) + g(1); t += g(2) + g(3);\n"
    "  t += g(4) + g(5); return t > 0 ? 0 : 1; }\n",
};

/// Whether the program is undefined on some order (clean programs get
/// the full-counter comparison; UB programs end at a timing-dependent
/// point in the wave engine at jobs > 1, so only committed outputs are
/// compared there).
bool isClean(const char *Source) {
  return Source == Corpus[3] || Source == Corpus[4];
}

SearchResult searchWith(const Driver::Compiled &C, SearchOptions SO) {
  MachineOptions Opts;
  OrderSearch Search(C->ast(), Opts, SO);
  return Search.run();
}

/// Stealing search with the hardware clamp disabled, so the requested
/// worker count really runs even on a 1-core CI machine — the
/// determinism contract must survive genuine cross-thread
/// interleaving, not just a degenerate single-worker pool.
SearchResult searchStealForced(const Driver::Compiled &C, SearchOptions SO,
                               unsigned Workers) {
  SearchScheduler::Config Cfg;
  Cfg.Jobs = Workers;
  Cfg.ClampJobsToHardware = false;
  Cfg.SnapshotBudget = SO.SnapshotBudget;
  SearchScheduler Scheduler(Cfg);
  MachineOptions Opts;
  size_t Id = Scheduler.submit(C->ast(), Opts, SO);
  Scheduler.runAll();
  return Scheduler.takeResult(Id);
}

void expectSameVerdict(const SearchResult &A, const SearchResult &B,
                       const char *Tag) {
  EXPECT_EQ(A.UbFound, B.UbFound) << Tag;
  EXPECT_EQ(A.Witness, B.Witness) << Tag;
  ASSERT_EQ(A.Reports.size(), B.Reports.size()) << Tag;
  for (size_t I = 0; I < A.Reports.size(); ++I) {
    EXPECT_EQ(A.Reports[I].Kind, B.Reports[I].Kind) << Tag;
    EXPECT_EQ(A.Reports[I].Loc.Line, B.Reports[I].Loc.Line) << Tag;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Wave vs stealing byte-equality.
//===----------------------------------------------------------------------===//

TEST(Scheduler, WaveVsStealingWitnessEquality) {
  // Committed outputs must agree between schedulers at jobs 1 through
  // 32 (forced past the hardware clamp) — and across repetitions, so
  // steal interleaving never leaks in.
  for (const char *Source : Corpus) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Source, "sched.c");
    ASSERT_TRUE(C->ok()) << C->errors();
    SearchOptions Wave;
    Wave.MaxRuns = 256;
    Wave.Sched = SchedKind::Wave;
    Wave.Jobs = 1;
    SearchResult RW = searchWith(C, Wave);

    for (unsigned Jobs : {1u, 2u, 8u, 16u, 32u}) {
      SearchOptions Steal;
      Steal.MaxRuns = 256;
      Steal.Sched = SchedKind::Stealing;
      Steal.Jobs = Jobs;
      for (int Round = 0; Round < 3; ++Round) {
        SearchResult RS = searchStealForced(C, Steal, Jobs);
        expectSameVerdict(RW, RS, Source);
        if (isClean(Source) || Jobs == 1) {
          // The full deterministic stats contract.
          EXPECT_EQ(RW.RunsExplored, RS.RunsExplored)
              << Source << " jobs=" << Jobs;
          EXPECT_EQ(RW.DedupHits, RS.DedupHits) << Source << " jobs=" << Jobs;
          EXPECT_EQ(RW.SubtreesPruned, RS.SubtreesPruned)
              << Source << " jobs=" << Jobs;
          EXPECT_EQ(RW.Waves, RS.Waves) << Source << " jobs=" << Jobs;
          EXPECT_EQ(RW.FrontierTruncated, RS.FrontierTruncated) << Source;
          EXPECT_EQ(RW.DroppedSubtrees, RS.DroppedSubtrees) << Source;
        }
      }
    }
  }
}

TEST(Scheduler, WaveVsStealingTraceByteEquality) {
  // At jobs=1 the stealing scheduler's speculative layer is exactly in
  // step with its commit wavefront, so every per-run record — pinned
  // prefix, decision trace, fingerprint stream, status, dedup outcome —
  // must be byte-identical to the wave engine's. Only the Forked
  // start-mode marker may differ (snapshot lifetimes differ).
  for (const char *Source : Corpus) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Source, "trace.c");
    ASSERT_TRUE(C->ok()) << C->errors();
    SearchOptions Wave;
    Wave.MaxRuns = 256;
    Wave.Jobs = 1;
    Wave.Sched = SchedKind::Wave;
    Wave.CollectRuns = true;
    SearchOptions Steal = Wave;
    Steal.Sched = SchedKind::Stealing;

    SearchResult RW = searchWith(C, Wave);
    SearchResult RS = searchWith(C, Steal);
    expectSameVerdict(RW, RS, Source);
    ASSERT_EQ(RW.Runs.size(), RS.Runs.size()) << Source;
    for (size_t I = 0; I < RW.Runs.size(); ++I) {
      const SearchRunRecord &W = RW.Runs[I];
      const SearchRunRecord &S = RS.Runs[I];
      EXPECT_EQ(W.Pinned, S.Pinned) << Source << " run " << I;
      EXPECT_EQ(W.Trace, S.Trace)
          << Source << " run " << I << ": decision traces diverge";
      EXPECT_EQ(W.FpStream, S.FpStream)
          << Source << " run " << I << ": fingerprint streams diverge";
      EXPECT_EQ(W.Status, S.Status) << Source << " run " << I;
      EXPECT_EQ(W.DedupAborted, S.DedupAborted) << Source << " run " << I;
    }
  }
}

TEST(Scheduler, ProvisionalRollbackNeverChangesCommittedResults) {
  // Provisional visited publication lets a speculative run stop on a
  // key an *in-flight* earlier-generation run merely claimed; if the
  // claim never commits, the commit wavefront must detect it and
  // re-execute the run (rollback). This is the strongest equality we
  // can demand: at forced 16 and 32 workers — far past this tree's
  // frontier, so provisional consumption and rollback genuinely occur
  // — every per-run record (pinned prefix, decision trace, fingerprint
  // stream, status, dedup outcome) must still be byte-identical to the
  // wave engine's, every round. An unjustified provisional stop that
  // survived to commit would surface here as a shortened trace or a
  // flipped DedupAborted.
  for (const char *Source : {Corpus[3], Corpus[4]}) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Source, "prov.c");
    ASSERT_TRUE(C->ok()) << C->errors();
    SearchOptions Wave;
    Wave.MaxRuns = 256;
    Wave.Sched = SchedKind::Wave;
    Wave.Jobs = 1;
    Wave.CollectRuns = true;
    SearchResult RW = searchWith(C, Wave);

    for (unsigned Workers : {16u, 32u}) {
      SearchOptions Steal = Wave;
      Steal.Sched = SchedKind::Stealing;
      Steal.Jobs = Workers;
      for (int Round = 0; Round < 4; ++Round) {
        SearchResult RS = searchStealForced(C, Steal, Workers);
        expectSameVerdict(RW, RS, Source);
        EXPECT_EQ(RW.RunsExplored, RS.RunsExplored)
            << Source << " workers=" << Workers;
        EXPECT_EQ(RW.DedupHits, RS.DedupHits)
            << Source << " workers=" << Workers;
        EXPECT_EQ(RW.SubtreesPruned, RS.SubtreesPruned)
            << Source << " workers=" << Workers;
        EXPECT_EQ(RW.Waves, RS.Waves) << Source << " workers=" << Workers;
        ASSERT_EQ(RW.Runs.size(), RS.Runs.size())
            << Source << " workers=" << Workers;
        for (size_t I = 0; I < RW.Runs.size(); ++I) {
          const SearchRunRecord &W = RW.Runs[I];
          const SearchRunRecord &S = RS.Runs[I];
          EXPECT_EQ(W.Pinned, S.Pinned)
              << Source << " workers=" << Workers << " run " << I;
          EXPECT_EQ(W.Trace, S.Trace)
              << Source << " workers=" << Workers << " run " << I
              << ": committed trace changed under speculation";
          EXPECT_EQ(W.FpStream, S.FpStream)
              << Source << " workers=" << Workers << " run " << I;
          EXPECT_EQ(W.Status, S.Status)
              << Source << " workers=" << Workers << " run " << I;
          EXPECT_EQ(W.DedupAborted, S.DedupAborted)
              << Source << " workers=" << Workers << " run " << I;
        }
      }
    }
  }
  // UB-by-order programs: committed verdict/witness equality at the
  // same forced worker counts (full per-run equality is a clean-tree
  // contract; a winning witness ends the wave engine mid-generation).
  for (const char *Source : {Corpus[0], Corpus[2]}) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Source, "provub.c");
    ASSERT_TRUE(C->ok()) << C->errors();
    SearchOptions Wave;
    Wave.MaxRuns = 256;
    Wave.Sched = SchedKind::Wave;
    SearchResult RW = searchWith(C, Wave);
    for (unsigned Workers : {16u, 32u}) {
      SearchOptions Steal = Wave;
      Steal.Sched = SchedKind::Stealing;
      for (int Round = 0; Round < 4; ++Round)
        expectSameVerdict(RW, searchStealForced(C, Steal, Workers), Source);
    }
  }
}

TEST(Scheduler, TruncationAccountingMatchesWave) {
  // Budget edges must report the identical dropped-subtree counts: the
  // stealing scheduler applies the budget at generation seal, exactly
  // where the wave engine's barrier applied it.
  for (unsigned MaxRuns : {1u, 2u, 5u, 9u}) {
    Driver Drv;
    Driver::Compiled C = Drv.compile(Corpus[4], "trunc.c");
    ASSERT_TRUE(C->ok());
    SearchOptions Wave;
    Wave.MaxRuns = MaxRuns;
    Wave.Sched = SchedKind::Wave;
    SearchOptions Steal = Wave;
    Steal.Sched = SchedKind::Stealing;
    SearchResult RW = searchWith(C, Wave);
    SearchResult RS = searchWith(C, Steal);
    EXPECT_EQ(RW.FrontierTruncated, RS.FrontierTruncated)
        << "budget " << MaxRuns;
    EXPECT_EQ(RW.DroppedSubtrees, RS.DroppedSubtrees) << "budget " << MaxRuns;
    EXPECT_EQ(RW.RunsExplored, RS.RunsExplored) << "budget " << MaxRuns;
  }
}

TEST(Scheduler, RandomPolicyAndDeclarativeStyleStillWork) {
  // The gates the wave engine applies (no dedup under Random, no
  // snapshots under Random/Declarative) must hold in the scheduler too.
  Driver Drv;
  Driver::Compiled C = Drv.compile(Corpus[0], "gates.c");
  ASSERT_TRUE(C->ok());
  for (auto Setup : {EvalOrderKind::Random, EvalOrderKind::LeftToRight}) {
    MachineOptions MOpts;
    MOpts.Order = Setup;
    SearchOptions SO;
    SO.MaxRuns = 64;
    SO.Sched = SchedKind::Stealing;
    OrderSearch Search(C->ast(), MOpts, SO);
    SearchResult R = Search.run();
    EXPECT_TRUE(R.UbFound) << "order policy " << int(Setup);
  }
  MachineOptions Decl;
  Decl.Style = RuleStyle::Declarative;
  SearchOptions SO;
  SO.MaxRuns = 64;
  SO.Sched = SchedKind::Stealing;
  OrderSearch Search(C->ast(), Decl, SO);
  SearchResult R = Search.run();
  EXPECT_TRUE(R.UbFound);
  EXPECT_EQ(R.ForkedRuns, 0u) << "declarative style must not snapshot";
}

//===----------------------------------------------------------------------===//
// LRU snapshot cache.
//===----------------------------------------------------------------------===//

TEST(Scheduler, LruThrashFallsBackToReplay) {
  // A cache far too small for the tree forces evictions; every evicted
  // child replays its prefix instead, and nothing observable changes.
  Driver Drv;
  Driver::Compiled C = Drv.compile(Corpus[4], "lru.c");
  ASSERT_TRUE(C->ok());
  SearchOptions Ample;
  Ample.MaxRuns = 256;
  Ample.SnapshotBudget = 1024;
  SearchResult RAmple = searchWith(C, Ample);

  for (unsigned Cap : {0u, 1u, 2u}) {
    for (SchedKind Sched : {SchedKind::Wave, SchedKind::Stealing}) {
      SearchOptions Tiny = Ample;
      Tiny.SnapshotBudget = Cap;
      Tiny.Sched = Sched;
      SearchResult RTiny = searchWith(C, Tiny);
      expectSameVerdict(RAmple, RTiny, "lru-thrash");
      EXPECT_EQ(RAmple.RunsExplored, RTiny.RunsExplored) << Cap;
      EXPECT_EQ(RAmple.DedupHits, RTiny.DedupHits) << Cap;
      if (Cap == 0) {
        EXPECT_EQ(RTiny.ForkedRuns, 0u) << "capacity 0 must never fork";
        EXPECT_EQ(RTiny.SnapshotEvictions, 0u)
            << "nothing admitted, nothing evicted";
      } else {
        EXPECT_GT(RTiny.SnapshotEvictions, 0u)
            << "capacity " << Cap << " must thrash on this tree";
      }
    }
  }
  EXPECT_GT(RAmple.ForkedRuns, 0u) << "the ample cache must actually fork";
}

TEST(Scheduler, SnapshotCacheBasics) {
  // Direct unit coverage of the LRU contract: insert-over-capacity
  // evicts the oldest pending entry and charges its counter; take and
  // drop remove entries without eviction accounting.
  SnapshotCache Cache(2);
  std::atomic<unsigned> Evictions{0};
  // An empty configuration is fine for cache logic.
  MachineSnapshot Snap{Configuration(),
                       OrderChooser(EvalOrderKind::LeftToRight, 1)};
  uint64_t A = Cache.insert(Snap, &Evictions);
  uint64_t B = Cache.insert(Snap, &Evictions);
  ASSERT_NE(A, 0u);
  ASSERT_NE(B, 0u);
  EXPECT_EQ(Cache.pending(), 2u);

  uint64_t D = Cache.insert(Snap, &Evictions); // evicts A (oldest)
  EXPECT_EQ(Evictions.load(), 1u);
  EXPECT_EQ(Cache.pending(), 2u);
  EXPECT_EQ(Cache.take(A), nullptr) << "A was evicted";
  EXPECT_NE(Cache.take(B), nullptr) << "B is still pending";
  Cache.drop(D);
  EXPECT_EQ(Cache.pending(), 0u);
  EXPECT_EQ(Evictions.load(), 1u) << "take/drop are not evictions";

  SnapshotCache Zero(0);
  EXPECT_EQ(Zero.insert(Snap, &Evictions), 0u)
      << "capacity 0 admits nothing";
  EXPECT_EQ(Evictions.load(), 1u);
}

TEST(Scheduler, SnapshotCacheShardedContract) {
  // The resharded cache: large capacities split across shards; tiny
  // capacities stay single-shard so the exact-victim LRU contract
  // above is untouched; ids stay live across shards; dropping an
  // already-evicted (or already-dropped) id is a no-op everywhere.
  MachineSnapshot Snap{Configuration(),
                       OrderChooser(EvalOrderKind::LeftToRight, 1)};
  std::atomic<unsigned> Evictions{0};

  SnapshotCache Small(2);
  EXPECT_EQ(Small.shards(), 1u) << "tiny capacities must not shard";
  SnapshotCache Zero(0);
  EXPECT_EQ(Zero.shards(), 1u);

  SnapshotCache Big(1024);
  EXPECT_GT(Big.shards(), 1u) << "the default budget must shard";
  // Every shard admits and serves entries; slot stealing fills sibling
  // shards once a hinted home shard is full.
  std::vector<uint64_t> Ids;
  for (unsigned I = 0; I < 4 * Big.shards(); ++I) {
    uint64_t Id = Big.insert(Snap, &Evictions, /*ShardHint=*/I);
    ASSERT_NE(Id, 0u);
    Ids.push_back(Id);
  }
  EXPECT_EQ(Big.pending(), Ids.size());
  for (uint64_t Id : Ids)
    EXPECT_NE(Big.take(Id), nullptr) << Id;
  EXPECT_EQ(Big.pending(), 0u);
  EXPECT_EQ(Evictions.load(), 0u);

  // drop() on an evicted id: capacity 1 forces the eviction.
  SnapshotCache One(1);
  uint64_t A = One.insert(Snap, &Evictions);
  uint64_t B = One.insert(Snap, &Evictions); // evicts A
  EXPECT_EQ(Evictions.load(), 1u);
  One.drop(A); // already evicted: no-op
  One.drop(A); // still a no-op
  EXPECT_EQ(One.pending(), 1u);
  EXPECT_EQ(Evictions.load(), 1u) << "dropping an evicted id counts nothing";
  One.drop(B);
  One.drop(B); // double drop: no-op
  EXPECT_EQ(One.pending(), 0u);
  EXPECT_EQ(Evictions.load(), 1u);

  SnapshotCache::Counters C = One.counters();
  EXPECT_EQ(C.Inserts, 2u);
  EXPECT_EQ(C.Evictions, 1u);
  EXPECT_EQ(C.Takes, 0u);
}

TEST(Scheduler, SnapshotCacheAffinityEviction) {
  // Program-affine victim selection: when every slot is full, the
  // incoming program evicts *its own* oldest pending snapshot when it
  // has one — even when another program's entry is globally older —
  // and falls back to the global oldest otherwise.
  MachineSnapshot Snap{Configuration(),
                       OrderChooser(EvalOrderKind::LeftToRight, 1)};
  std::atomic<unsigned> ProgA{0}, ProgB{0};
  SnapshotCache Cache(2); // single shard: deterministic victim
  uint64_t A1 = Cache.insert(Snap, &ProgA); // globally oldest
  uint64_t B1 = Cache.insert(Snap, &ProgB);
  ASSERT_NE(A1, 0u);
  ASSERT_NE(B1, 0u);

  Cache.insert(Snap, &ProgB); // full: B thrashes against itself
  EXPECT_EQ(ProgB.load(), 1u) << "B's oldest entry is the victim";
  EXPECT_EQ(ProgA.load(), 0u) << "A's older entry survives";
  EXPECT_EQ(Cache.take(B1), nullptr) << "B1 was evicted";
  EXPECT_NE(Cache.take(A1), nullptr) << "A1 is still pending";

  // With no same-program entry pending, the global oldest goes.
  uint64_t B3 = Cache.insert(Snap, &ProgB);
  Cache.insert(Snap, &ProgA); // cache holds {B2, B3}; A evicts B2
  EXPECT_EQ(ProgB.load(), 2u);
  EXPECT_EQ(ProgA.load(), 0u);
  EXPECT_NE(Cache.take(B3), nullptr) << "only the older B entry was evicted";
}

TEST(Scheduler, SnapshotCacheConcurrentStress) {
  // Concurrent insert/take/drop races across shards, including double
  // drops and drops of evicted ids: accounting must stay exact and
  // every id must resolve exactly once.
  SnapshotCache Cache(1024);
  ASSERT_GT(Cache.shards(), 1u);
  constexpr unsigned NumThreads = 8;
  constexpr unsigned OpsPerThread = 400;
  std::atomic<unsigned> Evictions{0};
  std::atomic<uint64_t> TakenHits{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      MachineSnapshot Snap{Configuration(),
                           OrderChooser(EvalOrderKind::LeftToRight, 1)};
      std::vector<uint64_t> Mine;
      for (unsigned I = 0; I < OpsPerThread; ++I) {
        uint64_t Id = Cache.insert(Snap, &Evictions, /*ShardHint=*/T);
        ASSERT_NE(Id, 0u);
        Mine.push_back(Id);
        switch (I % 4) {
        case 0: // take the most recent insert
          if (Cache.take(Mine.back()))
            TakenHits.fetch_add(1, std::memory_order_relaxed);
          Mine.pop_back();
          break;
        case 1: // drop the oldest tracked id, then double-drop it
          Cache.drop(Mine.front());
          Cache.drop(Mine.front());
          Mine.erase(Mine.begin());
          break;
        default:
          break; // leave it pending (eviction pressure)
        }
      }
      // Drain: every remaining id was taken here, dropped here, or
      // evicted by someone; all three make a later drop a no-op.
      for (uint64_t Id : Mine)
        Cache.drop(Id);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Cache.pending(), 0u) << "every id drained";
  SnapshotCache::Counters C = Cache.counters();
  EXPECT_EQ(C.Inserts, uint64_t(NumThreads) * OpsPerThread);
  EXPECT_EQ(C.Evictions, Evictions.load());
  EXPECT_EQ(C.Hits, TakenHits.load());
  EXPECT_LE(C.Hits, C.Takes);
  EXPECT_LE(C.Evictions, C.Inserts);
}

//===----------------------------------------------------------------------===//
// Batched driver.
//===----------------------------------------------------------------------===//

TEST(Scheduler, BatchedDriverMatchesRunSource) {
  // Each batched outcome must equal the single-program outcome for the
  // same source: verdict, reports, witness, program output, exit code,
  // compile diagnostics — regardless of batch composition or job count.
  const char *Programs[] = {
      Corpus[0], // UB by order
      "#include <stdio.h>\n"
      "int main(void) { printf(\"out-%d\\n\", 42); return 7; }\n",
      Corpus[2], // UB needing two flips
      "int main(void) { return 0 }\n", // compile error
      Corpus[4], // clean commuting tree
      Corpus[0], // duplicate source: identical outcome expected
  };
  std::vector<BatchInput> Inputs;
  for (size_t I = 0; I < std::size(Programs); ++I)
    Inputs.push_back({Programs[I], "prog" + std::to_string(I) + ".c"});

  for (unsigned Jobs : {1u, 4u}) {
    AnalysisRequest Req = AnalysisRequest::Builder()
                              .searchRuns(64)
                              .searchJobs(Jobs)
                              .buildOrDie();
    Driver Batched(Req);
    BatchResult Batch = Batched.runBatch(Inputs);
    ASSERT_EQ(Batch.Outcomes.size(), Inputs.size());
    EXPECT_EQ(Batch.Stats.Programs, Inputs.size());

    for (size_t I = 0; I < Inputs.size(); ++I) {
      Driver Single(Req);
      DriverOutcome Ref = Single.runSource(Inputs[I].Source, Inputs[I].Name);
      const DriverOutcome &Got = Batch.Outcomes[I];
      EXPECT_EQ(Ref.CompileOk, Got.CompileOk) << I;
      EXPECT_EQ(Ref.CompileErrors, Got.CompileErrors) << I;
      EXPECT_EQ(Ref.anyUb(), Got.anyUb()) << I;
      EXPECT_EQ(Ref.SearchWitness, Got.SearchWitness) << I << " jobs=" << Jobs;
      EXPECT_EQ(Ref.Output, Got.Output) << I;
      EXPECT_EQ(Ref.ExitCode, Got.ExitCode) << I;
      EXPECT_EQ(Ref.Status, Got.Status) << I;
      ASSERT_EQ(Ref.DynamicUb.size(), Got.DynamicUb.size()) << I;
      for (size_t R = 0; R < Ref.DynamicUb.size(); ++R) {
        EXPECT_EQ(Ref.DynamicUb[R].Kind, Got.DynamicUb[R].Kind) << I;
        EXPECT_EQ(Ref.DynamicUb[R].Loc.Line, Got.DynamicUb[R].Loc.Line) << I;
      }
    }
    // Duplicate submissions aggregate independently and identically.
    EXPECT_EQ(Batch.Outcomes[0].SearchWitness,
              Batch.Outcomes[5].SearchWitness);
    EXPECT_EQ(Batch.Outcomes[0].OrdersExplored,
              Batch.Outcomes[5].OrdersExplored);
  }
}

TEST(Scheduler, BatchedAggregationIsDeterministic) {
  // Same batch, different job counts, repeated: per-program results are
  // keyed by program id and must never depend on steal interleaving.
  std::vector<BatchInput> Inputs;
  for (const char *Source : Corpus)
    Inputs.push_back({Source, "det.c"});
  Driver Ref(AnalysisRequest::Builder().searchRuns(64).buildOrDie());
  BatchResult Base = Ref.runBatch(Inputs);

  for (unsigned Jobs : {2u, 8u}) {
    for (int Round = 0; Round < 3; ++Round) {
      Driver Drv(AnalysisRequest::Builder()
                     .searchRuns(64)
                     .searchJobs(Jobs)
                     .buildOrDie());
      BatchResult Got = Drv.runBatch(Inputs);
      ASSERT_EQ(Got.Outcomes.size(), Base.Outcomes.size());
      for (size_t I = 0; I < Base.Outcomes.size(); ++I) {
        EXPECT_EQ(Base.Outcomes[I].anyUb(), Got.Outcomes[I].anyUb()) << I;
        EXPECT_EQ(Base.Outcomes[I].SearchWitness,
                  Got.Outcomes[I].SearchWitness)
            << I << " jobs=" << Jobs;
        EXPECT_EQ(Base.Outcomes[I].Output, Got.Outcomes[I].Output) << I;
        EXPECT_EQ(Base.Outcomes[I].ExitCode, Got.Outcomes[I].ExitCode) << I;
      }
    }
  }
}

TEST(Scheduler, BatchHonorsWaveSchedSelection) {
  // --search-sched=wave must not be silently dropped in batch mode:
  // the wave reference path (sequential runSource per unit) runs, and
  // its observable outcomes match the stealing batch.
  std::vector<BatchInput> Inputs = {{Corpus[0], "w0.c"}, {Corpus[4], "w1.c"}};
  AnalysisRequest Steal =
      AnalysisRequest::Builder().searchRuns(64).buildOrDie();
  AnalysisRequest Wave = AnalysisRequest::Builder()
                             .searchRuns(64)
                             .sched(SchedKind::Wave)
                             .buildOrDie();
  BatchResult RS = Driver(Steal).runBatch(Inputs);
  BatchResult RW = Driver(Wave).runBatch(Inputs);
  ASSERT_EQ(RW.Outcomes.size(), RS.Outcomes.size());
  for (size_t I = 0; I < RS.Outcomes.size(); ++I) {
    EXPECT_EQ(RW.Outcomes[I].anyUb(), RS.Outcomes[I].anyUb()) << I;
    EXPECT_EQ(RW.Outcomes[I].SearchWitness, RS.Outcomes[I].SearchWitness)
        << I;
    EXPECT_EQ(RW.Outcomes[I].Output, RS.Outcomes[I].Output) << I;
    EXPECT_EQ(RW.Outcomes[I].ExitCode, RS.Outcomes[I].ExitCode) << I;
  }
  EXPECT_EQ(RW.Stats.Steals, 0u) << "the wave path must not steal";
}

TEST(Scheduler, CountersSurfaceThroughDriver) {
  // The satellite contract: scheduler counters reach DriverOutcome (and
  // from there the kcc --show-witness stats block) instead of being
  // dropped.
  Driver Drv(AnalysisRequest::Builder().searchRuns(64).buildOrDie());
  DriverOutcome O = Drv.runSource(Corpus[4], "counters.c");
  ASSERT_TRUE(O.CompileOk);
  EXPECT_GT(O.OrdersExplored, 1u);
  EXPECT_GT(O.SearchPeakFrontier, 0u);
  EXPECT_GT(O.OrdersDeduped, 0u) << "the commuting tree must dedup";
}

//===----------------------------------------------------------------------===//
// Batched suite scoring.
//===----------------------------------------------------------------------===//

TEST(Scheduler, BatchedSuiteScoresMatchPerTest) {
  // scoreJulietBatched routes the whole suite through one shared
  // scheduler; scores must match the per-test Tool path exactly.
  JulietGenerator Gen(/*ScaleDivisor=*/256); // a handful per class
  std::vector<TestCase> Tests = Gen.generate();
  ASSERT_FALSE(Tests.empty());
  if (Tests.size() > 24)
    Tests.resize(24);

  // Mirror the kcc tool's configuration.
  AnalysisRequest Req = AnalysisRequest::Builder()
                            .strict(true)
                            .staticChecks(true)
                            .searchRuns(8)
                            .searchJobs(2)
                            .buildOrDie();

  std::unique_ptr<Tool> Kcc = Tool::create(ToolKind::Kcc);
  JulietScores PerTest = scoreJuliet(*Kcc, Tests);
  JulietScores Batched = scoreJulietBatched(Req, Tests);

  ASSERT_EQ(PerTest.PerClass.size(), Batched.PerClass.size());
  for (size_t I = 0; I < PerTest.PerClass.size(); ++I) {
    EXPECT_EQ(PerTest.PerClass[I].Tests, Batched.PerClass[I].Tests) << I;
    EXPECT_EQ(PerTest.PerClass[I].Passed, Batched.PerClass[I].Passed) << I;
    EXPECT_EQ(PerTest.PerClass[I].FalsePositives,
              Batched.PerClass[I].FalsePositives)
        << I;
  }
}
