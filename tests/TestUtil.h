//===- tests/TestUtil.h - Shared test helpers ------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the behavior-focused test binaries: run a source
/// string through the kcc driver and assert on the verdict.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_TESTS_TESTUTIL_H
#define CUNDEF_TESTS_TESTUTIL_H

#include "driver/Driver.h"

#include <gtest/gtest.h>

namespace cundef {

inline DriverOutcome runKcc(const std::string &Source,
                            unsigned SearchRuns = 1) {
  Driver Drv(AnalysisRequest::Builder().searchRuns(SearchRuns).buildOrDie());
  return Drv.runSource(Source, "test.c");
}

/// Expects the program to be undefined with the given catalog code as
/// the first finding.
inline void expectUb(const std::string &Source, UbKind Kind,
                     unsigned SearchRuns = 1) {
  DriverOutcome O = runKcc(Source, SearchRuns);
  ASSERT_TRUE(O.CompileOk) << O.CompileErrors << "\nsource:\n" << Source;
  ASSERT_TRUE(O.anyUb()) << "expected code " << ubCode(Kind)
                         << " but program was clean\nsource:\n"
                         << Source;
  const UbReport &First =
      O.StaticUb.empty() ? O.DynamicUb.front() : O.StaticUb.front();
  EXPECT_EQ(ubCode(First.Kind), ubCode(Kind))
      << "got: " << First.Description << "\nsource:\n" << Source;
}

/// Expects the program to compile, run to completion, and be clean.
inline void expectClean(const std::string &Source, int ExitCode = 0,
                        unsigned SearchRuns = 1) {
  DriverOutcome O = runKcc(Source, SearchRuns);
  ASSERT_TRUE(O.CompileOk) << O.CompileErrors << "\nsource:\n" << Source;
  EXPECT_FALSE(O.anyUb()) << O.renderReport() << "\nsource:\n" << Source;
  EXPECT_EQ(O.Status, RunStatus::Completed);
  EXPECT_EQ(O.ExitCode, ExitCode) << "source:\n" << Source;
}

/// Runs a defined program and returns its output.
inline std::string outputOf(const std::string &Source) {
  DriverOutcome O = runKcc(Source);
  EXPECT_TRUE(O.CompileOk) << O.CompileErrors;
  EXPECT_FALSE(O.anyUb()) << O.renderReport();
  return O.Output;
}

} // namespace cundef

#endif // CUNDEF_TESTS_TESTUTIL_H
