//===- tests/test_ub_lifetime.cpp - Lifetime undefinedness -------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// Object lifetimes: block scope, escaped stack addresses, heap frees,
// and the calls that misuse them.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cundef;

namespace {

TEST(UbLifetime, UseAfterBlockExit) {
  expectUb("int main(void) {\n"
           "  int *p;\n"
           "  { int x = 3; p = &x; }\n"
           "  return *p;\n}\n",
           UbKind::AccessDeadObject);
}

TEST(UbLifetime, SameBlockStillAliveOk) {
  expectClean("int main(void) {\n"
              "  int x = 3; int *p;\n"
              "  { p = &x; }\n"
              "  return *p - 3;\n}\n");
}

TEST(UbLifetime, EscapedStackAddress) {
  // The flow-sensitive static layer proves the escape at translation
  // time and reports the catalog's dedicated code (36); the dynamic
  // dead-object access (12) still backs it up at runtime.
  expectUb("static int *leak(void) { int x = 5; return &x; }\n"
           "int main(void) { return *leak(); }\n",
           UbKind::StackAddressEscape);
}

TEST(UbLifetime, LoopIterationEndsLifetime) {
  expectUb("int main(void) {\n"
           "  int *p = 0; int i;\n"
           "  for (i = 0; i < 2; i++) {\n"
           "    int fresh = i;\n"
           "    if (i == 1) { return *p; }\n"
           "    p = &fresh;\n"
           "  }\n"
           "  return 0;\n}\n",
           UbKind::AccessDeadObject);
}

TEST(UbLifetime, UseAfterFree) {
  expectUb("#include <stdlib.h>\n"
           "int main(void) {\n"
           "  int *p = (int*)malloc(sizeof(int));\n"
           "  if (!p) { return 1; }\n"
           "  *p = 1;\n  free(p);\n  return *p;\n}\n",
           UbKind::UseAfterFree);
}

TEST(UbLifetime, WriteAfterFree) {
  expectUb("#include <stdlib.h>\n"
           "int main(void) {\n"
           "  int *p = (int*)malloc(sizeof(int));\n"
           "  if (!p) { return 1; }\n"
           "  free(p);\n  *p = 2;\n  return 0;\n}\n",
           UbKind::UseAfterFree);
}

TEST(UbLifetime, DoubleFree) {
  expectUb("#include <stdlib.h>\n"
           "int main(void) {\n"
           "  char *p = (char*)malloc(4);\n"
           "  if (!p) { return 1; }\n"
           "  free(p);\n  free(p);\n  return 0;\n}\n",
           UbKind::DoubleFree);
}

TEST(UbLifetime, FreeNull) {
  expectClean("#include <stdlib.h>\n"
              "int main(void) { free(0); return 0; }\n");
}

TEST(UbLifetime, FreeStackPointer) {
  expectUb("#include <stdlib.h>\n"
           "int main(void) { int x; free(&x); return 0; }\n",
           UbKind::FreeInvalidPointer);
}

TEST(UbLifetime, FreeInteriorPointer) {
  expectUb("#include <stdlib.h>\n"
           "int main(void) {\n"
           "  char *p = (char*)malloc(8);\n"
           "  if (!p) { return 1; }\n"
           "  free(p + 2);\n  return 0;\n}\n",
           UbKind::FreeInvalidPointer);
}

TEST(UbLifetime, FreeGlobal) {
  expectUb("#include <stdlib.h>\n"
           "int g;\n"
           "int main(void) { free(&g); return 0; }\n",
           UbKind::FreeInvalidPointer);
}

TEST(UbLifetime, MallocFreeCycleOk) {
  expectClean("#include <stdlib.h>\n"
              "int main(void) {\n"
              "  int i;\n"
              "  for (i = 0; i < 8; i++) {\n"
              "    int *p = (int*)malloc(4 * sizeof(int));\n"
              "    if (!p) { return 1; }\n"
              "    p[i % 4] = i;\n"
              "    free(p);\n"
              "  }\n"
              "  return 0;\n}\n");
}

TEST(UbLifetime, ReallocMovesContents) {
  expectClean("#include <stdlib.h>\n"
              "int main(void) {\n"
              "  int *p = (int*)malloc(2 * sizeof(int));\n"
              "  if (!p) { return 1; }\n"
              "  p[0] = 11; p[1] = 22;\n"
              "  p = (int*)realloc(p, 8 * sizeof(int));\n"
              "  if (!p) { return 1; }\n"
              "  int r = p[0] + p[1];\n"
              "  free(p);\n"
              "  return r - 33;\n}\n");
}

TEST(UbLifetime, ReallocOldPointerDead) {
  expectUb("#include <stdlib.h>\n"
           "int main(void) {\n"
           "  int *p = (int*)malloc(sizeof(int));\n"
           "  if (!p) { return 1; }\n"
           "  *p = 4;\n"
           "  int *q = (int*)realloc(p, 64);\n"
           "  if (!q) { return 1; }\n"
           "  int r = *p;\n"
           "  free(q);\n  return r;\n}\n",
           UbKind::UseAfterFree);
}

TEST(UbLifetime, ReallocOfStackPointer) {
  expectUb("#include <stdlib.h>\n"
           "int main(void) {\n"
           "  int x = 1;\n"
           "  int *q = (int*)realloc(&x, 8);\n"
           "  return q == 0;\n}\n",
           UbKind::ReallocInvalidPointer);
}

TEST(UbLifetime, DanglingPointerValueUse) {
  // Even without a dereference, using the *value* of a pointer whose
  // object is gone is undefined (catalog row 53).
  DriverOutcome O = runKcc("#include <stdlib.h>\n"
                           "int main(void) {\n"
                           "  char *p = (char*)malloc(4);\n"
                           "  if (!p) { return 1; }\n"
                           "  free(p);\n"
                           "  char *q = p + 1;\n"
                           "  return q == p;\n}\n");
  ASSERT_TRUE(O.anyUb());
  EXPECT_EQ(ubCode(O.DynamicUb.front().Kind), 53u);
}

TEST(UbLifetime, StaticLocalSurvivesCalls) {
  expectClean("static int tick(void) { static int n; n++; return n; }\n"
              "int main(void) { tick(); tick(); return tick() - 3; }\n");
}

TEST(UbLifetime, RecursionDepthLimit) {
  expectUb("static int down(int n) { return down(n + 1); }\n"
           "int main(void) { return down(0); }\n",
           UbKind::RecursionLimitExceeded);
}

TEST(UbLifetime, BoundedRecursionOk) {
  expectClean("static int fib(int n) {\n"
              "  return n < 2 ? n : fib(n - 1) + fib(n - 2);\n}\n"
              "int main(void) { return fib(10) - 55; }\n");
}

} // namespace
