//===- tests/test_ub_pointer.cpp - Pointer undefinedness ---------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The dereference rule (paper 4.1.2) and symbolic pointers (4.3.1):
// null/void/dangling dereference, bounds, arithmetic, comparisons,
// subtraction.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cundef;

namespace {

TEST(UbPointer, DerefNull) {
  expectUb("int main(void) { int *p = 0; return *p; }",
           UbKind::DerefNullPointer);
}

TEST(UbPointer, DerefNullDiscarded) {
  // The paper's deref-safer discussion: *NULL; must get stuck even
  // though ';' discards the value. (The static checker sees the
  // constant null first; both codes describe the same behavior.)
  DriverOutcome O = runKcc("#include <stddef.h>\n"
                           "int main(void) { *(char*)NULL; return 0; }");
  ASSERT_TRUE(O.anyUb());
}

TEST(UbPointer, DerefVoidPointer) {
  expectUb("int main(void) { int x = 1; void *p = &x; *p; return 0; }",
           UbKind::DerefVoidPointer);
}

TEST(UbPointer, DerefForgedPointer) {
  expectUb("int main(void) { int *p = (int*)100; return *p; }",
           UbKind::DerefDanglingPointer);
}

TEST(UbPointer, ReadPastEnd) {
  // a[7] is *(a + 7): forming the pointer is already undefined
  // (C11 6.5.6p8), so the arithmetic rule fires before any read.
  expectUb("int main(void) { int a[4]; a[0] = 1; return a[7]; }",
           UbKind::PointerArithOutOfBounds);
}

TEST(UbPointer, WritePastEnd) {
  expectUb("int main(void) { int a[4]; a[9] = 1; return 0; }",
           UbKind::PointerArithOutOfBounds);
}

TEST(UbPointer, ReadThroughOutOfBoundsLocationViaMemcpy) {
  // When the access itself (not the arithmetic) is out of range, the
  // read/write bounds rules fire (library path has no prior arith).
  expectUb("#include <string.h>\n"
           "int main(void) {\n"
           "  int a[2]; int b[8];\n"
           "  memcpy(b, a, sizeof b);\n"
           "  return b[0];\n}\n",
           UbKind::ReadOutOfBounds);
}

TEST(UbPointer, NegativeIndex) {
  expectUb("int main(void) { int a[4]; a[0] = 1; return a[-1]; }",
           UbKind::PointerArithOutOfBounds);
}

TEST(UbPointer, InBoundsIndexOk) {
  expectClean("int main(void) { int a[4]; a[3] = 9; return a[3] - 9; }");
}

TEST(UbPointer, ReverseSubscriptOk) {
  // i[p] is p[i] (C11 6.5.2.1p2).
  expectClean("int main(void) { int a[4]; a[2] = 5; int *p = a;"
              " return 2[p] - 5; }");
}

TEST(UbPointer, OnePastPointerAllowed) {
  expectClean("int main(void) { int a[4]; int *end = a + 4;"
              " return end == a + 4 ? 0 : 1; }");
}

TEST(UbPointer, DerefOnePast) {
  expectUb("int main(void) { int a[4]; a[0] = 1; int *end = a + 4;"
           " return *end; }",
           UbKind::DerefOnePastEnd);
}

TEST(UbPointer, ArithBeyondOnePast) {
  expectUb("int main(void) { int a[4]; int *p = a + 5; return p == a; }",
           UbKind::PointerArithOutOfBounds);
}

TEST(UbPointer, ArithBeforeStart) {
  expectUb("int main(void) { int a[4]; int *p = a - 1; return p == a; }",
           UbKind::PointerArithOutOfBounds);
}

TEST(UbPointer, NullArithmetic) {
  expectUb("int main(void) { int *p = 0; int *q = p + 1; return q == 0; }",
           UbKind::NullPointerArithmetic);
}

TEST(UbPointer, CompareDistinctObjects) {
  // The paper's 4.3.1 example: &a < &b for two locals.
  expectUb("int main(void) { int a; int b; return &a < &b; }",
           UbKind::PointerCompareDifferentObjects);
}

TEST(UbPointer, CompareStructMembersOk) {
  // ...but the fields of one struct are ordered (same base).
  expectClean("int main(void) { struct { int a; int b; } s;"
              " return (&s.a < &s.b) ? 0 : 1; }");
}

TEST(UbPointer, CompareWithinArrayOk) {
  expectClean("int main(void) { int a[4];"
              " return (a < a + 2 && a + 2 <= a + 4) ? 0 : 1; }");
}

TEST(UbPointer, EqualityAcrossObjectsIsDefined) {
  // Equality (==) works across objects; only <,>,<=,>= need a common
  // base (C11 6.5.8p5 vs 6.5.9p6).
  expectClean("int main(void) { int a; int b;"
              " return (&a == &b) ? 1 : 0; }");
}

TEST(UbPointer, EqualityWithNullOk) {
  expectClean("int main(void) { int x; int *p = &x;"
              " return (p == 0) ? 1 : 0; }");
}

TEST(UbPointer, SubtractDifferentObjects) {
  expectUb("int main(void) { int a[2]; int b[2];"
           " return (int)(&a[0] - &b[0]); }",
           UbKind::PointerSubDifferentObjects);
}

TEST(UbPointer, SubtractWithinArrayOk) {
  expectClean("int main(void) { int a[7];"
              " return (int)((a + 5) - (a + 2)) - 3; }");
}

TEST(UbPointer, ArrowOnNull) {
  expectUb("struct s { int v; };\n"
           "int main(void) { struct s *p = 0; return p->v; }",
           UbKind::DerefNullPointer);
}

TEST(UbPointer, MemberChainOk) {
  expectClean("struct inner { int v; };\n"
              "struct outer { struct inner in; int tail; };\n"
              "int main(void) {\n"
              "  struct outer o;\n"
              "  o.in.v = 4; o.tail = 2;\n"
              "  struct outer *p = &o;\n"
              "  return p->in.v + p->tail - 6;\n}\n");
}

TEST(UbPointer, IntermediateOutOfBoundsArithInIndexing) {
  expectUb("int main(void) {\n"
           "  int a[3]; a[0] = 1;\n"
           "  int *p = a;\n"
           "  return *(p + 3 + 1 - 4);\n}\n",
           UbKind::PointerArithOutOfBounds)
      ;
}

TEST(UbPointer, InnerArrayOverrunDetected) {
  // Storage is accessible (the outer object is big enough), but the
  // subscripted inner array is overrun: catalog row 64.
  DriverOutcome O = runKcc("int main(void) {\n"
                           "  int m[2][3];\n"
                           "  m[0][0] = 1; m[1][2] = 2;\n"
                           "  return m[0][4];\n}\n");
  ASSERT_TRUE(O.anyUb());
  EXPECT_EQ(ubCode(O.DynamicUb.front().Kind), 64u);
}

TEST(UbPointer, StructArrayFieldOverrun) {
  DriverOutcome O = runKcc("struct wrap { int a[2]; int tail; };\n"
                           "int main(void) {\n"
                           "  struct wrap w;\n"
                           "  w.a[0] = 1; w.a[1] = 2; w.tail = 3;\n"
                           "  return w.a[2];\n}\n");
  ASSERT_TRUE(O.anyUb());
  EXPECT_EQ(ubCode(O.DynamicUb.front().Kind), 64u);
}

TEST(UbPointer, InnerArrayFullWalkOk) {
  expectClean("int main(void) {\n"
              "  int m[3][4]; int i; int j; int sum = 0;\n"
              "  for (i = 0; i < 3; i++) {\n"
              "    for (j = 0; j < 4; j++) { m[i][j] = 1; sum += m[i][j];"
              " }\n"
              "  }\n"
              "  return sum - 12;\n}\n");
}

TEST(UbPointer, PointerVariableLosesInnerBound) {
  // Once the decayed pointer is stored and reloaded, only the object
  // bound applies (the fragment encoding does not carry the window) --
  // kept deliberately conservative to avoid over-specification.
  expectClean("int main(void) {\n"
              "  int m[2][3];\n"
              "  int *p = m[0];\n"
              "  int *q = p + 3;\n"
              "  m[1][0] = 5;\n"
              "  return *q - 5;\n}\n");
}

TEST(UbPointer, FunctionPointerRoundTrip) {
  expectClean("static int id(int x) { return x; }\n"
              "int main(void) {\n"
              "  int (*f)(int) = id;\n"
              "  int (*g)(int) = &id;\n"
              "  return f(3) + (*g)(4) - 7;\n}\n");
}

TEST(UbPointer, VoidPointerRoundTripOk) {
  expectClean("int main(void) {\n"
              "  int x = 5;\n"
              "  void *v = &x;\n"
              "  int *p = (int*)v;\n"
              "  return *p - 5;\n}\n");
}

TEST(UbPointer, PointerIntRoundTripWorksInStrictModeOnlyIfUnused) {
  // Casting a pointer to an integer and back yields a usable pointer
  // only through provenance; our symbolic machine flags the round-trip
  // dereference (the paper's machine tracks the same way).
  expectUb("int main(void) {\n"
           "  int x = 5;\n"
           "  long addr = (long)&x;\n"
           "  int *p = (int*)addr;\n"
           "  return *p - 5;\n}\n",
           UbKind::DerefDanglingPointer);
}

} // namespace
