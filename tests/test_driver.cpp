//===- tests/test_driver.cpp - End-to-end driver tests ----------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <gtest/gtest.h>

using namespace cundef;

namespace {

DriverOutcome run(const char *Source) {
  Driver Drv;
  return Drv.runSource(Source, "test.c");
}

TEST(Driver, HelloWorldRunsAndPrints) {
  DriverOutcome O = run("#include <stdio.h>\n"
                        "int main(void) { printf(\"Hello world\\n\");"
                        " return 0; }\n");
  EXPECT_TRUE(O.CompileOk) << O.CompileErrors;
  EXPECT_EQ(O.Status, RunStatus::Completed);
  EXPECT_EQ(O.Output, "Hello world\n");
  EXPECT_EQ(O.ExitCode, 0);
  EXPECT_FALSE(O.anyUb());
}

TEST(Driver, ExitCodeComesFromMain) {
  DriverOutcome O = run("int main(void) { return 41 + 1; }\n");
  EXPECT_EQ(O.Status, RunStatus::Completed);
  EXPECT_EQ(O.ExitCode, 42);
}

TEST(Driver, UnsequencedReportMatchesPaperFormat) {
  // The paper's section 3.2 report for (x = 1) + (x = 2).
  DriverOutcome O = run("int main(void) {\n"
                        "  int x = 0;\n"
                        "  return (x = 1) + (x = 2);\n"
                        "}\n");
  ASSERT_TRUE(O.anyUb());
  std::string Report = O.renderReport();
  EXPECT_NE(Report.find("ERROR! KCC encountered an error."),
            std::string::npos);
  EXPECT_NE(Report.find("Error: 00016"), std::string::npos);
  EXPECT_NE(Report.find("Unsequenced side effect on scalar"),
            std::string::npos);
  EXPECT_NE(Report.find("Function: main"), std::string::npos);
  EXPECT_NE(Report.find("Line: 3"), std::string::npos);
}

TEST(Driver, DivisionByZeroDetected) {
  DriverOutcome O = run("int main(void) { int d = 0; return 5 / d; }\n");
  ASSERT_FALSE(O.DynamicUb.empty());
  EXPECT_EQ(O.DynamicUb[0].Kind, UbKind::DivisionByZero);
}

TEST(Driver, StaticFindingForConstantNullDeref) {
  // Statically undefined even though unreachable (paper section 5.2.1).
  DriverOutcome O = run("int main(void) {\n"
                        "  if (0) { *(char*)0; }\n"
                        "  return 0;\n}\n");
  EXPECT_TRUE(O.CompileOk);
  ASSERT_FALSE(O.StaticUb.empty());
  EXPECT_EQ(O.StaticUb[0].Kind, UbKind::DerefNullConstant);
  EXPECT_EQ(O.Status, RunStatus::Completed) << "program still runs fine";
}

TEST(Driver, SearchFindsOrderDependentUb) {
  // The paper's section 2.5.2 example: defined left-to-right, undefined
  // right-to-left. kcc must search evaluation strategies.
  const char *Source = "int d = 5;\n"
                       "int setDenom(int x) { return d = x; }\n"
                       "int main(void) { return (10 / d) + setDenom(0); }\n";
  Driver Drv(AnalysisRequest::Builder().searchRuns(16).buildOrDie());
  DriverOutcome O = Drv.runSource(Source, "order.c");
  EXPECT_TRUE(O.anyUb()) << "some evaluation order divides by zero";
  EXPECT_GT(O.OrdersExplored, 1u);
}

TEST(Driver, CompileErrorReported) {
  DriverOutcome O = run("int main(void) { return }\n");
  EXPECT_FALSE(O.CompileOk);
  EXPECT_NE(O.CompileErrors.find("error"), std::string::npos);
}

TEST(Driver, WideIntConfigChangesDefinedness) {
  // Paper section 2.5.1: malloc(4) then *p = 1000 is defined with
  // 4-byte ints and undefined with 8-byte ints.
  const char *Source = "#include <stdlib.h>\n"
                       "int main(void) {\n"
                       "  int *p = malloc(4);\n"
                       "  if (p) { *p = 1000; }\n"
                       "  return 0;\n}\n";
  Driver D1;
  EXPECT_FALSE(D1.runSource(Source, "m.c").anyUb());

  Driver D2(
      AnalysisRequest::Builder().target(TargetConfig::wideInt()).buildOrDie());
  EXPECT_TRUE(D2.runSource(Source, "m.c").anyUb());
}

TEST(Driver, GotoLoopKeepsValues) {
  DriverOutcome O = run("int main(void) {\n"
                        "  int count = 0;\n"
                        "again:\n"
                        "  count = count + 1;\n"
                        "  if (count < 3) { goto again; }\n"
                        "  return count;\n}\n");
  EXPECT_FALSE(O.anyUb()) << O.renderReport();
  EXPECT_EQ(O.ExitCode, 3);
}

TEST(Driver, StructByteCopyIsDefined) {
  // Copying structs byte-wise must copy padding without error
  // (paper section 4.3.3).
  DriverOutcome O = run(
      "struct padded { char c; int i; };\n"
      "int main(void) {\n"
      "  struct padded a; struct padded b;\n"
      "  unsigned char *src; unsigned char *dst; unsigned long k;\n"
      "  a.c = 'x'; a.i = 7;\n"
      "  src = (unsigned char*)&a; dst = (unsigned char*)&b;\n"
      "  for (k = 0; k < sizeof a; k++) { dst[k] = src[k]; }\n"
      "  return b.i - 7;\n}\n");
  EXPECT_FALSE(O.anyUb()) << O.renderReport();
  EXPECT_EQ(O.ExitCode, 0);
}

} // namespace
