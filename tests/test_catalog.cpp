//===- tests/test_catalog.cpp - UB catalog tests -------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
// The catalog must reproduce the paper's section 5.2.1 numbers exactly
// and stay internally consistent (ids contiguous, named kinds aligned
// with their rows, Juliet class mapping total).
//
//===----------------------------------------------------------------------===//

#include "ub/Catalog.h"
#include "ub/Report.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

using namespace cundef;

namespace {

TEST(Catalog, PaperCounts) {
  CatalogStats Stats = catalogStats();
  EXPECT_EQ(Stats.Total, 221u) << "paper: 221 undefined behaviors";
  EXPECT_EQ(Stats.Static, 92u) << "paper: 92 statically detectable";
  EXPECT_EQ(Stats.Dynamic, 129u) << "paper: 129 only dynamic";
  EXPECT_EQ(Stats.DynamicCorePortable, 42u)
      << "paper: 42 dynamic non-library non-implementation-specific";
}

TEST(Catalog, IdsContiguousAndOrdered) {
  uint16_t Expected = 1;
  for (const CatalogEntry &Entry : ubCatalog())
    EXPECT_EQ(Entry.Id, Expected++) << Entry.Description;
}

TEST(Catalog, LookupByIdWorks) {
  const CatalogEntry *First = catalogEntry(1);
  ASSERT_NE(First, nullptr);
  EXPECT_STREQ(First->Description, "Division by zero.");
  EXPECT_EQ(catalogEntry(0), nullptr);
  EXPECT_EQ(catalogEntry(222), nullptr);
  EXPECT_NE(catalogEntry(221), nullptr);
}

TEST(Catalog, EveryRowHasClauseAndDescription) {
  for (const CatalogEntry &Entry : ubCatalog()) {
    EXPECT_GT(std::strlen(Entry.Clause), 0u) << Entry.Id;
    EXPECT_GT(std::strlen(Entry.Description), 10u) << Entry.Id;
    EXPECT_TRUE(Entry.DynClass == 'D' || Entry.DynClass == 'S');
    EXPECT_TRUE(Entry.LibFlag == 'L' || Entry.LibFlag == '-');
    EXPECT_TRUE(Entry.ImplFlag == 'I' || Entry.ImplFlag == '-');
  }
}

TEST(Catalog, PaperErrorCodeSixteen) {
  // The paper's section 3.2 report is Error 00016 for unsequenced side
  // effects; our catalog pins that id.
  EXPECT_EQ(ubCode(UbKind::UnsequencedSideEffect), 16u);
  const CatalogEntry *Row = catalogEntry(16);
  ASSERT_NE(Row, nullptr);
  EXPECT_NE(std::string(Row->Description).find("Unsequenced side effect"),
            std::string::npos);
}

TEST(Catalog, NamedKindsMatchTheirRows) {
  // Spot-check that enum values land on the right rows.
  EXPECT_STREQ(catalogEntry(ubCode(UbKind::DivisionByZero))->Clause,
               "6.5.5:5");
  EXPECT_STREQ(catalogEntry(ubCode(UbKind::SignedOverflow))->Clause,
               "6.5:5");
  EXPECT_STREQ(catalogEntry(ubCode(UbKind::ModifyStringLiteral))->Clause,
               "6.4.5:7");
  EXPECT_STREQ(catalogEntry(ubCode(UbKind::ArraySizeNotPositive))->Clause,
               "6.7.6.2:1");
  EXPECT_TRUE(catalogEntry(ubCode(UbKind::ArraySizeNotPositive))->isStatic());
  EXPECT_TRUE(catalogEntry(ubCode(UbKind::DerefNullPointer))->isDynamic());
}

TEST(Catalog, DetectedDynamicKindsAreDynamicRows) {
  for (uint16_t Id = 1; Id <= 39; ++Id)
    EXPECT_TRUE(catalogEntry(Id)->isDynamic()) << Id;
  for (uint16_t Id = 40; Id <= 51; ++Id)
    EXPECT_TRUE(catalogEntry(Id)->isStatic()) << Id;
}

TEST(Catalog, JulietClassMappingCoversDetectedKinds) {
  std::set<JulietClass> Seen;
  for (uint16_t Id = 1; Id <= 51; ++Id) {
    JulietClass Class;
    if (julietClassOf(static_cast<UbKind>(Id), Class))
      Seen.insert(Class);
  }
  EXPECT_EQ(Seen.size(), 6u) << "all six Figure 2 classes reachable";
}

TEST(Catalog, ShortDescriptionsResolve) {
  EXPECT_STREQ(ubShortDescription(UbKind::DivisionByZero),
               "Division by zero.");
  EXPECT_STREQ(ubShortDescription(UbKind::None),
               "Unknown undefined behavior.");
}

TEST(Report, KccFormat) {
  UbReport R(UbKind::UnsequencedSideEffect,
             ubShortDescription(UbKind::UnsequencedSideEffect), "main",
             SourceLoc(1, 3, 10));
  std::string Text = renderKccError(R);
  EXPECT_NE(Text.find("ERROR! KCC encountered an error."),
            std::string::npos);
  EXPECT_NE(Text.find("Error: 00016"), std::string::npos);
  EXPECT_NE(Text.find("Function: main"), std::string::npos);
  EXPECT_NE(Text.find("Line: 3"), std::string::npos);
}

TEST(Report, SinkCollectsAndQueries) {
  UbSink Sink;
  EXPECT_TRUE(Sink.empty());
  Sink.report(UbKind::DivisionByZero, "f", SourceLoc(1, 2, 1));
  Sink.report(UbKind::SignedOverflow, "g", SourceLoc(1, 5, 1));
  EXPECT_EQ(Sink.size(), 2u);
  EXPECT_TRUE(Sink.has(UbKind::DivisionByZero));
  EXPECT_FALSE(Sink.has(UbKind::DerefNullPointer));
  Sink.clear();
  EXPECT_TRUE(Sink.empty());
}

} // namespace
