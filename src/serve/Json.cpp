//===- serve/Json.cpp - Minimal JSON value and parser ---------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include "support/Strings.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

using namespace cundef;

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (!isObject())
    return nullptr;
  // Last occurrence wins (see header); objects on this wire are tiny,
  // so a linear scan beats a map's allocations.
  const JsonValue *Found = nullptr;
  for (const auto &Member : ObjectV)
    if (Member.first == Key)
      Found = &Member.second;
  return Found;
}

bool JsonValue::getBool(const std::string &Key, bool Fallback) const {
  const JsonValue *V = get(Key);
  return V ? V->asBool(Fallback) : Fallback;
}

double JsonValue::getDouble(const std::string &Key, double Fallback) const {
  const JsonValue *V = get(Key);
  return V ? V->asDouble(Fallback) : Fallback;
}

uint64_t JsonValue::getU64(const std::string &Key, uint64_t Fallback) const {
  const JsonValue *V = get(Key);
  return V ? V->asU64(Fallback) : Fallback;
}

const std::string &JsonValue::getString(const std::string &Key) const {
  static const std::string Empty;
  const JsonValue *V = get(Key);
  return V ? V->asString() : Empty;
}

namespace cundef {

/// Recursive-descent parser over a byte buffer. Depth is bounded so a
/// hostile frame of ten thousand '[' cannot blow the daemon's stack.
class JsonParser {
public:
  JsonParser(const std::string &Text, std::string &Err)
      : Text(Text), Err(Err) {}

  bool run(JsonValue &Out) {
    skipSpace();
    if (!parseValue(Out, 0))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing bytes after the JSON value");
    return true;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  const std::string &Text;
  std::string &Err;
  size_t Pos = 0;

  bool fail(const char *Message) {
    Err = strFormat("JSON parse error at byte %zu: %s", Pos, Message);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail("invalid literal");
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.StringV);
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.BoolV = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.BoolV = false;
      return literal("false");
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, unsigned Depth) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipSpace();
      JsonValue Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      Out.ObjectV.emplace_back(std::move(Key), std::move(Member));
      skipSpace();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out, unsigned Depth) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      JsonValue Item;
      if (!parseValue(Item, Depth + 1))
        return false;
      Out.ArrayV.push_back(std::move(Item));
      skipSpace();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  static int hexDigit(char C) {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    if (C >= 'A' && C <= 'F')
      return C - 'A' + 10;
    return -1;
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      ++Pos; // '\\'
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':  Out += '"';  break;
      case '\\': Out += '\\'; break;
      case '/':  Out += '/';  break;
      case 'b':  Out += '\b'; break;
      case 'f':  Out += '\f'; break;
      case 'n':  Out += '\n'; break;
      case 'r':  Out += '\r'; break;
      case 't':  Out += '\t'; break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        int Code = 0;
        for (int I = 0; I < 4; ++I) {
          int D = hexDigit(Text[Pos + I]);
          if (D < 0)
            return fail("invalid \\u escape digit");
          Code = Code * 16 + D;
        }
        Pos += 4;
        if (Code <= 0xFF) {
          // The byte-transparent convention: \u00XX is the raw byte XX
          // (jsonEscape's inverse), so subject-program output survives
          // the wire byte-for-byte.
          Out += static_cast<char>(Code);
        } else {
          // Outside the byte range (never produced by jsonEscape):
          // decode as UTF-8 so foreign documents still parse.
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    bool AnyDigit = false;
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      ++Pos;
      AnyDigit = true;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (!AnyDigit)
      return fail("invalid number");
    Out.K = JsonValue::Kind::Number;
    Out.NumberV = std::strtod(Text.substr(Start, Pos - Start).c_str(), nullptr);
    return true;
  }
};

} // namespace cundef

bool JsonValue::parse(const std::string &Text, JsonValue &Out,
                      std::string &Err) {
  Out = JsonValue();
  JsonParser P(Text, Err);
  return P.run(Out);
}
