//===- serve/Client.h - Remote client for kcc-serve -------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the analysis service: endpoint parsing for
/// `kcc --remote=HOST:PORT|unix:PATH` and a blocking RemoteClient that
/// speaks the cundef-kcc-v1 protocol (serve/Protocol.h) to a running
/// kcc-serve daemon.
///
/// The client reconstructs full DriverOutcome values from the wire, so
/// kcc's remote mode feeds them through the exact same rendering code
/// as a local run — byte-identical stdout and the unchanged
/// 139/1/exit-code contract are a consequence of sharing the code, not
/// a separate implementation to keep in sync.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SERVE_CLIENT_H
#define CUNDEF_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <string>
#include <vector>

namespace cundef {

/// A parsed --remote target: either a Unix-domain socket path or a
/// TCP host:port.
struct RemoteEndpoint {
  bool IsUnix = false;
  std::string UnixPath; ///< when IsUnix
  std::string Host;     ///< when !IsUnix (hostname or IPv4 literal)
  unsigned Port = 0;    ///< when !IsUnix (1..65535)
};

/// Strict parsing of "HOST:PORT" and "unix:PATH". Empty hosts/paths,
/// missing or non-numeric ports, and ports outside 1..65535 are
/// diagnosed, never coerced (the kcc exit-2 contract).
bool parseRemoteEndpoint(const std::string &Spec, RemoteEndpoint &Out,
                         std::string &Err);

/// One decoded server frame (the tests drive the protocol at this
/// granularity; runBatch() is the convenience on top).
struct RemoteMessage {
  std::string Type; ///< "finished", "error", "ub_found",
                    ///< "frontier_truncated", "stats_result"
  uint64_t Id = 0;  ///< client job id the frame answers

  // "error"
  std::string Code; ///< serveerr::* string
  std::string Message;

  // "finished"
  DriverOutcome Outcome;
  double WallMicros = 0.0;

  // "ub_found" / "frontier_truncated"
  std::vector<UbReport> Reports;
  unsigned DroppedSubtrees = 0;

  // "stats_result"
  SchedulerStats Pool;
  EngineMemoryStats Memory;
  TranslationCacheStats Translation;
  ResultCacheStats ResultC;
};

/// A blocking connection to one kcc-serve daemon. Not thread-safe; one
/// client per thread.
class RemoteClient {
public:
  RemoteClient() = default;
  ~RemoteClient();

  RemoteClient(const RemoteClient &) = delete;
  RemoteClient &operator=(const RemoteClient &) = delete;

  /// Connects and consumes the server hello (verifying the protocol
  /// name). Returns false with a diagnostic on failure.
  bool connect(const RemoteEndpoint &Ep, std::string &Err);

  bool connected() const { return Fd >= 0; }
  /// The daemon's search-pool width, from the hello frame.
  unsigned serverWorkers() const { return Workers; }

  /// Frame-level access: send a pre-encoded frame / decode the next
  /// server frame. receive() fails on timeout (TimeoutMs >= 0), EOF,
  /// or malformed frames.
  bool send(const std::string &FramePayload, std::string &Err);
  bool receive(RemoteMessage &Msg, std::string &Err, int TimeoutMs = -1);

  /// Submits every input under \p Req and blocks until each has a
  /// final result, tolerating out-of-order completion. On success,
  /// \p Outcomes and \p Micros are parallel to \p Inputs. On failure
  /// (transport error or a structured rejection), returns false with a
  /// diagnostic; errorCode() then carries the serveerr::* string when
  /// the daemon sent one ("" for transport failures).
  bool runBatch(const AnalysisRequest &Req,
                const std::vector<BatchInput> &Inputs,
                std::vector<DriverOutcome> &Outcomes,
                std::vector<double> &Micros, std::string &Err);

  /// Issues a `stats` request and blocks for the result: the daemon
  /// engine's monotonic lifetime counters (docs/SERVE.md discusses how
  /// remote kcc reports them).
  bool queryStats(SchedulerStats &Pool, EngineMemoryStats &Memory,
                  TranslationCacheStats &Translation,
                  ResultCacheStats &ResultC, std::string &Err);

  /// The serveerr::* code of the last structured rejection runBatch()
  /// or queryStats() saw (empty when the failure was transport-level).
  const std::string &errorCode() const { return LastErrorCode; }

  void close();

private:
  int Fd = -1;
  unsigned Workers = 0;
  std::string LastErrorCode;
  /// Persistent stream buffer: one recv may deliver several frames,
  /// and bytes past the first must survive into the next receive().
  std::string ReadBuf;
};

} // namespace cundef

#endif // CUNDEF_SERVE_CLIENT_H
