//===- serve/Server.cpp - The kcc-serve network daemon --------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "serve/Json.h"
#include "serve/Protocol.h"
#include "support/Strings.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cundef;

namespace {

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// One analysis event, copied out of the engine callback so the loop
/// thread owns every byte it will serialize (engine threads never
/// touch connection state).
struct EngineEvent {
  enum class Kind : uint8_t { UbFound, Truncated, Finished } K;
  size_t EngineJob = 0;
  std::vector<UbReport> Reports;   ///< UbFound
  unsigned Dropped = 0;            ///< Truncated
  DriverOutcome Outcome;           ///< Finished
  double WallMicros = 0.0;         ///< Finished
};

/// One client connection. Owned exclusively by the event-loop thread.
struct Conn {
  int Fd = -1;
  uint64_t Id = 0;
  std::string ReadBuf;
  std::string WriteBuf;
  unsigned Inflight = 0;
  /// An error frame was queued and the connection ends once it
  /// flushes; no further frames are read.
  bool CloseWhenFlushed = false;
};

/// Where a submitted job's results go.
struct JobRoute {
  uint64_t ConnId = 0;
  uint64_t ClientJobId = 0;
  JobHandle Handle; ///< keeps the job's shared state pinned until finish
};

} // namespace

struct ServeDaemon::Impl final : EngineSink {
  explicit Impl(ServeConfig Cfg)
      : Cfg(std::move(Cfg)), Eng(this->Cfg.Engine) {}

  ServeConfig Cfg;
  AnalysisEngine Eng;

  int TcpFd = -1;
  int UnixFd = -1;
  unsigned BoundTcpPort = 0;
  int PipeR = -1, PipeW = -1;

  uint64_t NextConnId = 1;
  std::unordered_map<uint64_t, Conn> Conns;
  /// Engine job id -> route. Size is the global in-flight count the
  /// queue-depth admission bound checks.
  std::unordered_map<size_t, JobRoute> Routes;

  std::mutex QueueMu;
  std::deque<EngineEvent> Queue;

  bool Draining = false;
  std::atomic<bool> StopSeen{false};

  std::atomic<uint64_t> CAccepted{0}, CRejected{0}, CSubmitted{0},
      CCompleted{0}, CProtocolErrors{0}, CSlowReader{0}, CIdleReclaims{0};

  //===--------------------------------------------------------------------===//
  // EngineSink (engine threads)
  //===--------------------------------------------------------------------===//

  void wake() {
    char B = 'w';
    // EAGAIN means the pipe already holds unread wakeups — the loop is
    // waking regardless, so dropping this byte is fine.
    [[maybe_unused]] ssize_t N = ::write(PipeW, &B, 1);
  }

  void push(EngineEvent E) {
    {
      std::lock_guard<std::mutex> Lock(QueueMu);
      Queue.push_back(std::move(E));
    }
    wake();
  }

  void onProgramFinished(const EngineJobInfo &Job, const DriverOutcome &O,
                         double WallMicros) override {
    EngineEvent E;
    E.K = EngineEvent::Kind::Finished;
    E.EngineJob = Job.Job;
    E.Outcome = O;
    E.WallMicros = WallMicros;
    push(std::move(E));
  }

  void onUbFound(const EngineJobInfo &Job,
                 const std::vector<UbReport> &Reports) override {
    EngineEvent E;
    E.K = EngineEvent::Kind::UbFound;
    E.EngineJob = Job.Job;
    E.Reports = Reports;
    push(std::move(E));
  }

  void onFrontierTruncated(const EngineJobInfo &Job,
                           unsigned DroppedSubtrees) override {
    EngineEvent E;
    E.K = EngineEvent::Kind::Truncated;
    E.EngineJob = Job.Job;
    E.Dropped = DroppedSubtrees;
    push(std::move(E));
  }

  //===--------------------------------------------------------------------===//
  // Connection plumbing (loop thread only)
  //===--------------------------------------------------------------------===//

  void queueFrame(Conn &C, const std::string &Payload) {
    appendFrame(C.WriteBuf, Payload);
    // Opportunistic flush keeps latency down and the buffer small; the
    // poll loop finishes whatever EAGAINs here.
    flushConn(C);
  }

  /// Returns false when the connection died (buffer overflow or a
  /// hard socket error); the caller must drop it.
  bool flushConn(Conn &C) {
    while (!C.WriteBuf.empty()) {
      ssize_t N = ::send(C.Fd, C.WriteBuf.data(), C.WriteBuf.size(),
                         MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          break;
        return false;
      }
      C.WriteBuf.erase(0, static_cast<size_t>(N));
    }
    if (C.WriteBuf.size() > Cfg.MaxWriteBufferBytes) {
      // Slow-reader backpressure: this client is not draining its
      // results; cutting it is the only bounded-memory option.
      ++CSlowReader;
      return false;
    }
    return true;
  }

  void dropConn(uint64_t ConnId) {
    auto It = Conns.find(ConnId);
    if (It == Conns.end())
      return;
    ::close(It->second.Fd);
    Conns.erase(It);
    // In-flight jobs of the vanished client keep running (the engine
    // has no per-job cancellation); their results are dropped when the
    // finished events find no connection.
  }

  void protocolError(Conn &C, uint64_t Id, const std::string &Message) {
    ++CProtocolErrors;
    queueFrame(C, errorFrame(Id, serveerr::Protocol, Message));
    C.CloseWhenFlushed = true;
  }

  //===--------------------------------------------------------------------===//
  // Message handling (loop thread only)
  //===--------------------------------------------------------------------===//

  void handleSubmit(Conn &C, uint64_t Id, const JsonValue &Msg) {
    if (Draining) {
      ++CRejected;
      queueFrame(C, errorFrame(Id, serveerr::ShuttingDown,
                               "daemon is draining; resubmit elsewhere"));
      return;
    }
    if (C.Inflight >= Cfg.MaxInflightPerClient) {
      ++CRejected;
      queueFrame(C, errorFrame(
                        Id, serveerr::Overloaded,
                        strFormat("per-client in-flight limit (%u) reached",
                                  Cfg.MaxInflightPerClient)));
      return;
    }
    if (Routes.size() >= Cfg.MaxQueueDepth) {
      ++CRejected;
      queueFrame(C, errorFrame(Id, serveerr::Overloaded,
                               strFormat("queue depth limit (%u) reached",
                                         Cfg.MaxQueueDepth)));
      return;
    }
    const JsonValue *Source = Msg.get("source");
    if (!Source || !Source->isString()) {
      ++CRejected;
      queueFrame(C, errorFrame(Id, serveerr::BadRequest,
                               "submit requires a string 'source'"));
      return;
    }
    std::string Name = Msg.getString("name");
    if (Name.empty())
      Name = "remote.c";
    AnalysisRequest Req;
    if (const JsonValue *RV = Msg.get("request")) {
      std::string Err;
      if (!parseRequest(*RV, Req, Err)) {
        ++CRejected;
        queueFrame(C, errorFrame(Id, serveerr::BadRequest, Err));
        return;
      }
    }
    JobHandle H = Eng.submit(Req, Source->asString(), Name, this);
    JobRoute Route;
    Route.ConnId = C.Id;
    Route.ClientJobId = Id;
    Route.Handle = H;
    // Registered before the loop ever touches the event queue again,
    // so no event of this job can miss its route.
    Routes.emplace(H.id(), std::move(Route));
    ++C.Inflight;
    ++CSubmitted;
  }

  void handleMessage(Conn &C, const std::string &Payload) {
    JsonValue Msg;
    std::string Err;
    if (!JsonValue::parse(Payload, Msg, Err) || !Msg.isObject()) {
      protocolError(C, 0, Err.empty() ? "message must be a JSON object" : Err);
      return;
    }
    uint64_t Id = Msg.getU64("id", 0);
    const std::string &Type = Msg.getString("type");
    if (Type == "submit") {
      handleSubmit(C, Id, Msg);
    } else if (Type == "stats") {
      queueFrame(C, statsResultFrame(Id, Eng.poolStats(), Eng.memoryStats(),
                                     Eng.translationStats(),
                                     Eng.resultCacheStats()));
    } else {
      protocolError(C, Id, "unknown message type '" + Type + "'");
    }
  }

  void handleReadable(uint64_t ConnId) {
    auto It = Conns.find(ConnId);
    if (It == Conns.end())
      return;
    Conn &C = It->second;
    char Chunk[16384];
    while (true) {
      ssize_t N = ::recv(C.Fd, Chunk, sizeof(Chunk), 0);
      if (N == 0) {
        dropConn(ConnId);
        return;
      }
      if (N < 0) {
        if (errno == EINTR)
          continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          break;
        dropConn(ConnId);
        return;
      }
      C.ReadBuf.append(Chunk, static_cast<size_t>(N));
    }
    while (!C.CloseWhenFlushed) {
      std::string Payload;
      int Got = extractFrame(C.ReadBuf, Payload);
      if (Got == 0)
        break;
      if (Got == -1) {
        protocolError(C, 0, "announced frame exceeds the size limit");
        break;
      }
      handleMessage(C, Payload);
      // handleMessage may have queued a fatal error; the flags above
      // stop further parsing, the flush path closes the socket.
      if (Conns.find(ConnId) == Conns.end())
        return; // the flush inside queueFrame detected a dead peer
    }
    auto Again = Conns.find(ConnId);
    if (Again != Conns.end() && !flushConn(Again->second))
      dropConn(ConnId);
    else if (Again != Conns.end() && Again->second.CloseWhenFlushed &&
             Again->second.WriteBuf.empty())
      dropConn(ConnId);
  }

  //===--------------------------------------------------------------------===//
  // Engine events (loop thread only)
  //===--------------------------------------------------------------------===//

  /// Drains the engine-event queue into connection write buffers.
  /// Returns true if any job finished (the idle-reclaim trigger).
  bool processEngineEvents() {
    std::deque<EngineEvent> Batch;
    {
      std::lock_guard<std::mutex> Lock(QueueMu);
      Batch.swap(Queue);
    }
    bool AnyFinished = false;
    for (EngineEvent &E : Batch) {
      auto RIt = Routes.find(E.EngineJob);
      if (RIt == Routes.end())
        continue; // job of a connection that was already dropped
      JobRoute &Route = RIt->second;
      auto CIt = Conns.find(Route.ConnId);
      Conn *C = CIt == Conns.end() ? nullptr : &CIt->second;
      switch (E.K) {
      case EngineEvent::Kind::UbFound:
        if (C)
          queueFrame(*C, ubFoundFrame(Route.ClientJobId, E.Reports));
        break;
      case EngineEvent::Kind::Truncated:
        if (C)
          queueFrame(*C, frontierTruncatedFrame(Route.ClientJobId, E.Dropped));
        break;
      case EngineEvent::Kind::Finished: {
        // Bookkeeping strictly before the result frame goes out: the
        // instant the client reads it, counters and admission state
        // must already reflect the completion.
        const uint64_t ClientJobId = Route.ClientJobId;
        Routes.erase(RIt);
        ++CCompleted;
        AnyFinished = true;
        if (C) {
          if (C->Inflight)
            --C->Inflight;
          queueFrame(*C, finishedFrame(ClientJobId, E.Outcome, E.WallMicros));
        }
        break;
      }
      }
    }
    return AnyFinished;
  }

  /// The service-mode reclamation fix: reclaimFinished() only frees
  /// per-program state when the pool is provably idle, which a
  /// saturated daemon never observes from the outside. The loop calls
  /// this at every momentary idle point (in-flight hit zero), where
  /// drain() completes immediately and sweeps arenas, visited sets,
  /// stranded snapshots, and the artifact graveyard — so a long-lived
  /// daemon's footprint tracks its current load, not its history.
  void maybeReclaim(bool AnyFinished) {
    if (!AnyFinished || !Routes.empty())
      return;
    Eng.drain();
    ++CIdleReclaims;
  }

  //===--------------------------------------------------------------------===//
  // Listeners
  //===--------------------------------------------------------------------===//

  void acceptFrom(int ListenFd) {
    while (true) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0) {
        if (errno == EINTR)
          continue;
        return; // EAGAIN: accepted everything pending
      }
      if (Conns.size() >= Cfg.MaxClients || !setNonBlocking(Fd)) {
        ::close(Fd);
        continue;
      }
      Conn C;
      C.Fd = Fd;
      C.Id = NextConnId++;
      ++CAccepted;
      uint64_t Id = C.Id;
      auto Ins = Conns.emplace(Id, std::move(C));
      queueFrame(Ins.first->second, helloFrame(Eng.workers()));
      if (!Ins.first->second.WriteBuf.empty() &&
          !flushConn(Ins.first->second)) {
        dropConn(Id);
      }
    }
  }

  void closeListeners() {
    if (TcpFd >= 0) {
      ::close(TcpFd);
      TcpFd = -1;
    }
    if (UnixFd >= 0) {
      ::close(UnixFd);
      UnixFd = -1;
      if (!Cfg.UnixPath.empty())
        ::unlink(Cfg.UnixPath.c_str());
    }
  }

  //===--------------------------------------------------------------------===//
  // The loop
  //===--------------------------------------------------------------------===//

  void drainPipe() {
    char Buf[256];
    while (true) {
      ssize_t N = ::read(PipeR, Buf, sizeof(Buf));
      if (N <= 0)
        return;
      for (ssize_t I = 0; I < N; ++I)
        if (Buf[I] == 's')
          StopSeen.store(true, std::memory_order_relaxed);
    }
  }

  int run() {
    while (true) {
      bool Finished = processEngineEvents();
      maybeReclaim(Finished);
      if (StopSeen.load(std::memory_order_relaxed) && !Draining) {
        Draining = true;
        closeListeners();
      }
      if (Draining && Routes.empty()) {
        std::lock_guard<std::mutex> Lock(QueueMu);
        if (Queue.empty())
          break;
        continue; // events raced in; loop once more
      }

      std::vector<pollfd> Fds;
      std::vector<uint64_t> Ids; // 0 = not a connection
      auto add = [&](int Fd, short Events, uint64_t ConnId) {
        Fds.push_back({Fd, Events, 0});
        Ids.push_back(ConnId);
      };
      add(PipeR, POLLIN, 0);
      if (!Draining && TcpFd >= 0)
        add(TcpFd, POLLIN, 0);
      if (!Draining && UnixFd >= 0)
        add(UnixFd, POLLIN, 0);
      for (auto &Entry : Conns) {
        short Events = POLLIN;
        if (!Entry.second.WriteBuf.empty())
          Events |= POLLOUT;
        add(Entry.second.Fd, Events, Entry.first);
      }

      int R = ::poll(Fds.data(), static_cast<nfds_t>(Fds.size()), -1);
      if (R < 0) {
        if (errno == EINTR)
          continue;
        return 1; // unrecoverable loop error
      }

      for (size_t I = 0; I < Fds.size(); ++I) {
        if (!Fds[I].revents)
          continue;
        if (Fds[I].fd == PipeR) {
          drainPipe();
        } else if (Ids[I] == 0) {
          acceptFrom(Fds[I].fd);
        } else {
          uint64_t ConnId = Ids[I];
          if (Fds[I].revents & (POLLERR | POLLHUP | POLLNVAL)) {
            // POLLHUP with readable data still delivers POLLIN first on
            // Linux; by the time only HUP remains the peer is gone.
            if (!(Fds[I].revents & POLLIN)) {
              dropConn(ConnId);
              continue;
            }
          }
          if (Fds[I].revents & POLLIN)
            handleReadable(ConnId);
          auto It = Conns.find(ConnId);
          if (It != Conns.end() && (Fds[I].revents & POLLOUT)) {
            if (!flushConn(It->second))
              dropConn(ConnId);
            else if (It->second.CloseWhenFlushed &&
                     It->second.WriteBuf.empty())
              dropConn(ConnId);
          }
        }
      }
    }

    // Drained: every job finished and its result is buffered. Give
    // slow readers a bounded window to take delivery, then close.
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(Cfg.DrainFlushMs);
    while (std::chrono::steady_clock::now() < Deadline) {
      std::vector<pollfd> Fds;
      std::vector<uint64_t> Ids;
      for (auto &Entry : Conns)
        if (!Entry.second.WriteBuf.empty()) {
          Fds.push_back({Entry.second.Fd, POLLOUT, 0});
          Ids.push_back(Entry.first);
        }
      if (Fds.empty())
        break;
      int R = ::poll(Fds.data(), static_cast<nfds_t>(Fds.size()), 50);
      if (R < 0 && errno != EINTR)
        break;
      for (size_t I = 0; I < Fds.size(); ++I)
        if (Fds[I].revents & (POLLOUT | POLLERR | POLLHUP))
          if (auto It = Conns.find(Ids[I]); It != Conns.end())
            if (!flushConn(It->second))
              dropConn(Ids[I]);
    }
    std::vector<uint64_t> All;
    All.reserve(Conns.size());
    for (auto &Entry : Conns)
      All.push_back(Entry.first);
    for (uint64_t Id : All)
      dropConn(Id);
    Eng.shutdown();
    return 0;
  }
};

//===----------------------------------------------------------------------===//
// ServeDaemon
//===----------------------------------------------------------------------===//

ServeDaemon::ServeDaemon(ServeConfig Cfg)
    : I(std::make_unique<Impl>(std::move(Cfg))) {
  int Pipe[2] = {-1, -1};
  if (::pipe(Pipe) == 0) {
    setNonBlocking(Pipe[0]);
    setNonBlocking(Pipe[1]);
    I->PipeR = Pipe[0];
    I->PipeW = Pipe[1];
    StopFd = Pipe[1];
  }
}

ServeDaemon::~ServeDaemon() {
  I->closeListeners();
  if (I->PipeR >= 0)
    ::close(I->PipeR);
  if (I->PipeW >= 0)
    ::close(I->PipeW);
}

bool ServeDaemon::listen(std::string &Err) {
  if (I->PipeR < 0) {
    Err = "self-pipe creation failed";
    return false;
  }
  if (I->Cfg.UnixPath.empty() && !I->Cfg.UseTcp) {
    Err = "no listen endpoint configured (need a socket path or a TCP port)";
    return false;
  }
  if (!I->Cfg.UnixPath.empty()) {
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    if (I->Cfg.UnixPath.size() >= sizeof(Addr.sun_path)) {
      Err = strFormat("socket path too long (%zu bytes, max %zu)",
                      I->Cfg.UnixPath.size(), sizeof(Addr.sun_path) - 1);
      return false;
    }
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Err = strFormat("socket(AF_UNIX) failed: %s", std::strerror(errno));
      return false;
    }
    Addr.sun_family = AF_UNIX;
    std::strcpy(Addr.sun_path, I->Cfg.UnixPath.c_str());
    ::unlink(I->Cfg.UnixPath.c_str()); // replace a stale socket file
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
        ::listen(Fd, 64) < 0 || !setNonBlocking(Fd)) {
      Err = strFormat("cannot listen on unix:%s: %s",
                      I->Cfg.UnixPath.c_str(), std::strerror(errno));
      ::close(Fd);
      return false;
    }
    I->UnixFd = Fd;
  }
  if (I->Cfg.UseTcp) {
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0) {
      Err = strFormat("socket(AF_INET) failed: %s", std::strerror(errno));
      I->closeListeners();
      return false;
    }
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(I->Cfg.TcpPort));
    if (::inet_pton(AF_INET, I->Cfg.TcpHost.c_str(), &Addr.sin_addr) != 1) {
      Err = strFormat("invalid listen address '%s' (expected an IPv4 "
                      "address)",
                      I->Cfg.TcpHost.c_str());
      ::close(Fd);
      I->closeListeners();
      return false;
    }
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
        ::listen(Fd, 64) < 0 || !setNonBlocking(Fd)) {
      Err = strFormat("cannot listen on %s:%u: %s", I->Cfg.TcpHost.c_str(),
                      I->Cfg.TcpPort, std::strerror(errno));
      ::close(Fd);
      I->closeListeners();
      return false;
    }
    sockaddr_in Bound;
    socklen_t Len = sizeof(Bound);
    if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) == 0)
      I->BoundTcpPort = ntohs(Bound.sin_port);
    I->TcpFd = Fd;
  }
  return true;
}

unsigned ServeDaemon::tcpPort() const { return I->BoundTcpPort; }

int ServeDaemon::run() { return I->run(); }

void ServeDaemon::requestStop() {
  // Async-signal-safe: one write(2) to a pre-opened non-blocking pipe.
  if (StopFd >= 0) {
    char B = 's';
    [[maybe_unused]] ssize_t N = ::write(StopFd, &B, 1);
  }
}

AnalysisEngine &ServeDaemon::engine() { return I->Eng; }

ServeCounters ServeDaemon::counters() const {
  ServeCounters C;
  C.Accepted = I->CAccepted.load();
  C.Rejected = I->CRejected.load();
  C.Submitted = I->CSubmitted.load();
  C.Completed = I->CCompleted.load();
  C.ProtocolErrors = I->CProtocolErrors.load();
  C.SlowReaderDisconnects = I->CSlowReader.load();
  C.IdleReclaims = I->CIdleReclaims.load();
  return C;
}
