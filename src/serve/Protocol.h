//===- serve/Protocol.h - The cundef-kcc-v1 wire protocol -------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between kcc-serve and its clients: length-prefixed
/// JSON frames carrying the same `cundef-kcc-v1` vocabulary kcc --json
/// already emits (docs/SERVE.md specifies the framing and message
/// schemas; docs/JSON_OUTPUT.md the shared field meanings).
///
/// Framing: every message is one frame — a 4-byte big-endian payload
/// length followed by exactly that many bytes of ASCII JSON (the
/// byte-transparent escaping of driver/JsonOutput.h keeps payloads
/// pure ASCII). Frames above a size cap are protocol errors, never
/// silently truncated.
///
/// This header is the single codec both ends share: the daemon and the
/// remote client serialize and parse AnalysisRequest, DriverOutcome,
/// findings, and engine stats through these functions, so the two
/// sides can never drift — and the remote client can hand kcc a
/// DriverOutcome that renders byte-identically to a local run.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SERVE_PROTOCOL_H
#define CUNDEF_SERVE_PROTOCOL_H

#include "driver/Driver.h"
#include "driver/Engine.h"
#include "driver/Request.h"
#include "serve/Json.h"

#include <string>

namespace cundef {

/// The protocol identifier sent in the server's hello frame. Shares the
/// version lineage of the kcc --json schema: additions are
/// backward-compatible, renames would bump it.
inline constexpr const char *ServeProtocolName = "cundef-kcc-v1";

/// Hard ceiling on one frame's payload (submissions carry whole
/// translation units; 64 MiB is far above any plausible one). A peer
/// announcing a larger frame is a protocol error — the connection is
/// closed before any allocation.
inline constexpr size_t ServeMaxFrameBytes = 64u << 20;

/// Structured error codes of `error` frames (stable strings; clients
/// branch on them, docs/SERVE.md lists them).
namespace serveerr {
inline constexpr const char *Overloaded = "overloaded";
inline constexpr const char *BadRequest = "bad_request";
inline constexpr const char *Protocol = "protocol";
inline constexpr const char *ShuttingDown = "shutting_down";
} // namespace serveerr

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

/// Appends the 4-byte big-endian length prefix plus \p Payload to
/// \p Buffer (the daemon's buffered-write path).
void appendFrame(std::string &Buffer, const std::string &Payload);

/// Tries to extract one complete frame from the front of \p Buffer.
/// Returns 1 and erases the consumed bytes on success, 0 when more
/// bytes are needed, -1 when the announced length exceeds \p MaxBytes
/// (protocol error; buffer left untouched).
int extractFrame(std::string &Buffer, std::string &Payload,
                 size_t MaxBytes = ServeMaxFrameBytes);

/// Blocking whole-frame write to a connected socket (the client's
/// path). Returns false on any socket error.
bool writeFrameBlocking(int Fd, const std::string &Payload);

/// Blocking whole-frame read with an optional timeout. \p Buffer is
/// the connection's persistent stream buffer: one recv may deliver
/// several back-to-back frames, and the bytes after the extracted one
/// must survive into the next call — pass the same buffer for the
/// connection's whole lifetime. Returns false with a diagnostic in
/// \p Err on error, EOF, oversized frame, or timeout (\p TimeoutMs < 0
/// waits forever).
bool readFrameBlocking(int Fd, std::string &Buffer, std::string &Payload,
                       std::string &Err, int TimeoutMs = -1,
                       size_t MaxBytes = ServeMaxFrameBytes);

//===----------------------------------------------------------------------===//
// Message bodies
//===----------------------------------------------------------------------===//

/// AnalysisRequest <-> JSON. The serialization carries the full
/// validated surface (target parameters, machine options, search
/// configuration), and parsing re-validates through the Builder, so a
/// daemon can never be talked into a configuration a local kcc would
/// have rejected. parse returns false with a diagnostic for unknown
/// enum names or Builder rejections.
std::string serializeRequest(const AnalysisRequest &Req);
bool parseRequest(const JsonValue &V, AnalysisRequest &Out, std::string &Err);

/// DriverOutcome <-> JSON. Lossless over every field, so the remote
/// client reconstructs exactly what the daemon's engine produced and
/// kcc's rendering is byte-identical to a local run's.
std::string serializeOutcome(const DriverOutcome &O);
bool parseOutcome(const JsonValue &V, DriverOutcome &Out, std::string &Err);

/// Findings (shared by outcome bodies and `ub_found` event frames).
std::string serializeFindings(const std::vector<UbReport> &Reports);
bool parseFindings(const JsonValue &V, std::vector<UbReport> &Out,
                   std::string &Err);

/// Engine stats <-> JSON (the `stats_result` frame body: the over-the-
/// wire rendering of AnalysisEngine::poolStats() / memoryStats() /
/// translationStats() / resultCacheStats()).
std::string serializeStats(const SchedulerStats &Pool,
                           const EngineMemoryStats &Memory,
                           const TranslationCacheStats &Translation,
                           const ResultCacheStats &ResultC);
bool parseStats(const JsonValue &V, SchedulerStats &Pool,
                EngineMemoryStats &Memory, TranslationCacheStats &Translation,
                ResultCacheStats &ResultC, std::string &Err);

//===----------------------------------------------------------------------===//
// Whole frames
//===----------------------------------------------------------------------===//

/// Server -> client greeting, sent once per connection.
std::string helloFrame(unsigned Workers);

/// Client -> server messages.
std::string submitFrame(uint64_t Id, const std::string &Name,
                        const std::string &Source,
                        const AnalysisRequest &Req);
std::string statsFrame(uint64_t Id);

/// Server -> client messages.
std::string errorFrame(uint64_t Id, const char *Code,
                       const std::string &Message);
std::string ubFoundFrame(uint64_t Id, const std::vector<UbReport> &Reports);
std::string frontierTruncatedFrame(uint64_t Id, unsigned DroppedSubtrees);
std::string finishedFrame(uint64_t Id, const DriverOutcome &Outcome,
                          double WallMicros);
std::string statsResultFrame(uint64_t Id, const SchedulerStats &Pool,
                             const EngineMemoryStats &Memory,
                             const TranslationCacheStats &Translation,
                             const ResultCacheStats &ResultC);

} // namespace cundef

#endif // CUNDEF_SERVE_PROTOCOL_H
