//===- serve/Client.cpp - Remote client for kcc-serve ---------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include "support/Strings.h"

#include <cerrno>
#include <cstring>

#include <netdb.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cundef;

bool cundef::parseRemoteEndpoint(const std::string &Spec, RemoteEndpoint &Out,
                                 std::string &Err) {
  Out = RemoteEndpoint();
  if (startsWith(Spec.c_str(), "unix:")) {
    Out.IsUnix = true;
    Out.UnixPath = Spec.substr(5);
    if (Out.UnixPath.empty()) {
      Err = "--remote=unix: requires a socket path";
      return false;
    }
    return true;
  }
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos) {
    Err = strFormat("invalid --remote target '%s' (expected HOST:PORT or "
                    "unix:PATH)",
                    Spec.c_str());
    return false;
  }
  Out.Host = Spec.substr(0, Colon);
  if (Out.Host.empty()) {
    Err = strFormat("invalid --remote target '%s' (empty host)", Spec.c_str());
    return false;
  }
  std::string PortText = Spec.substr(Colon + 1);
  unsigned Port = 0;
  if (!parseUnsigned(PortText.c_str(), Port) || Port < 1 || Port > 65535) {
    Err = strFormat("invalid --remote port '%s' (expected 1..65535)",
                    PortText.c_str());
    return false;
  }
  Out.Port = Port;
  return true;
}

RemoteClient::~RemoteClient() { close(); }

void RemoteClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  ReadBuf.clear();
}

bool RemoteClient::connect(const RemoteEndpoint &Ep, std::string &Err) {
  close();
  if (Ep.IsUnix) {
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    if (Ep.UnixPath.size() >= sizeof(Addr.sun_path)) {
      Err = strFormat("socket path too long (%zu bytes, max %zu)",
                      Ep.UnixPath.size(), sizeof(Addr.sun_path) - 1);
      return false;
    }
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Err = strFormat("socket(AF_UNIX) failed: %s", std::strerror(errno));
      return false;
    }
    Addr.sun_family = AF_UNIX;
    std::strcpy(Addr.sun_path, Ep.UnixPath.c_str());
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
      Err = strFormat("cannot connect to unix:%s: %s", Ep.UnixPath.c_str(),
                      std::strerror(errno));
      close();
      return false;
    }
  } else {
    addrinfo Hints;
    std::memset(&Hints, 0, sizeof(Hints));
    Hints.ai_family = AF_INET;
    Hints.ai_socktype = SOCK_STREAM;
    addrinfo *Res = nullptr;
    std::string PortText = strFormat("%u", Ep.Port);
    int GA = ::getaddrinfo(Ep.Host.c_str(), PortText.c_str(), &Hints, &Res);
    if (GA != 0 || !Res) {
      Err = strFormat("cannot resolve %s: %s", Ep.Host.c_str(),
                      ::gai_strerror(GA));
      return false;
    }
    int LastErrno = 0;
    for (addrinfo *AI = Res; AI; AI = AI->ai_next) {
      Fd = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
      if (Fd < 0) {
        LastErrno = errno;
        continue;
      }
      if (::connect(Fd, AI->ai_addr, AI->ai_addrlen) == 0)
        break;
      LastErrno = errno;
      close();
    }
    ::freeaddrinfo(Res);
    if (Fd < 0) {
      Err = strFormat("cannot connect to %s:%u: %s", Ep.Host.c_str(), Ep.Port,
                      std::strerror(LastErrno));
      return false;
    }
  }
  // The server greets first; verify we are talking to a kcc-serve of
  // the same schema lineage before sending anything.
  std::string Payload;
  if (!readFrameBlocking(Fd, ReadBuf, Payload, Err, /*TimeoutMs=*/30000)) {
    Err = "no server hello: " + Err;
    close();
    return false;
  }
  JsonValue Hello;
  if (!JsonValue::parse(Payload, Hello, Err) || !Hello.isObject() ||
      Hello.getString("type") != "hello") {
    Err = "malformed server hello";
    close();
    return false;
  }
  if (Hello.getString("schema") != ServeProtocolName) {
    Err = strFormat("protocol mismatch: server speaks '%s', client '%s'",
                    Hello.getString("schema").c_str(), ServeProtocolName);
    close();
    return false;
  }
  Workers = static_cast<unsigned>(Hello.getU64("workers", 0));
  return true;
}

bool RemoteClient::send(const std::string &FramePayload, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  if (!writeFrameBlocking(Fd, FramePayload)) {
    Err = strFormat("write to daemon failed: %s", std::strerror(errno));
    return false;
  }
  return true;
}

bool RemoteClient::receive(RemoteMessage &Msg, std::string &Err,
                           int TimeoutMs) {
  Msg = RemoteMessage();
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  std::string Payload;
  if (!readFrameBlocking(Fd, ReadBuf, Payload, Err, TimeoutMs))
    return false;
  JsonValue V;
  if (!JsonValue::parse(Payload, V, Err) || !V.isObject()) {
    if (Err.empty())
      Err = "frame is not a JSON object";
    return false;
  }
  Msg.Type = V.getString("type");
  Msg.Id = V.getU64("id", 0);
  if (Msg.Type == "error") {
    Msg.Code = V.getString("code");
    Msg.Message = V.getString("message");
    return true;
  }
  if (Msg.Type == "finished") {
    Msg.WallMicros = V.getDouble("wall_micros", 0.0);
    const JsonValue *O = V.get("outcome");
    if (!O) {
      Err = "finished frame without an outcome";
      return false;
    }
    return parseOutcome(*O, Msg.Outcome, Err);
  }
  if (Msg.Type == "ub_found") {
    const JsonValue *F = V.get("findings");
    if (!F) {
      Err = "ub_found frame without findings";
      return false;
    }
    return parseFindings(*F, Msg.Reports, Err);
  }
  if (Msg.Type == "frontier_truncated") {
    Msg.DroppedSubtrees =
        static_cast<unsigned>(V.getU64("dropped_subtrees", 0));
    return true;
  }
  if (Msg.Type == "stats_result") {
    const JsonValue *S = V.get("stats");
    if (!S) {
      Err = "stats_result frame without stats";
      return false;
    }
    return parseStats(*S, Msg.Pool, Msg.Memory, Msg.Translation, Msg.ResultC,
                      Err);
  }
  // Unknown frame types pass through undecoded: additions to the
  // protocol must not break older clients (the schema lineage rule).
  return true;
}

bool RemoteClient::runBatch(const AnalysisRequest &Req,
                            const std::vector<BatchInput> &Inputs,
                            std::vector<DriverOutcome> &Outcomes,
                            std::vector<double> &Micros, std::string &Err) {
  LastErrorCode.clear();
  Outcomes.assign(Inputs.size(), DriverOutcome());
  Micros.assign(Inputs.size(), 0.0);
  for (size_t I = 0; I < Inputs.size(); ++I) {
    // Client job ids are 1-based input indices; the daemon echoes them
    // back, so completion order is free to differ from submission
    // order (concurrent clients share the pool).
    if (!send(submitFrame(I + 1, Inputs[I].Name, Inputs[I].Source, Req), Err))
      return false;
  }
  size_t Remaining = Inputs.size();
  std::vector<bool> Done(Inputs.size(), false);
  while (Remaining) {
    RemoteMessage Msg;
    if (!receive(Msg, Err))
      return false;
    if (Msg.Type == "error") {
      LastErrorCode = Msg.Code;
      Err = strFormat("daemon rejected job %llu [%s]: %s",
                      static_cast<unsigned long long>(Msg.Id),
                      Msg.Code.c_str(), Msg.Message.c_str());
      return false;
    }
    if (Msg.Type != "finished")
      continue; // streamed events; the final outcome carries the data
    if (Msg.Id < 1 || Msg.Id > Inputs.size() || Done[Msg.Id - 1]) {
      Err = strFormat("daemon answered unknown job id %llu",
                      static_cast<unsigned long long>(Msg.Id));
      return false;
    }
    Done[Msg.Id - 1] = true;
    Outcomes[Msg.Id - 1] = std::move(Msg.Outcome);
    Micros[Msg.Id - 1] = Msg.WallMicros;
    --Remaining;
  }
  return true;
}

bool RemoteClient::queryStats(SchedulerStats &Pool, EngineMemoryStats &Memory,
                              TranslationCacheStats &Translation,
                              ResultCacheStats &ResultC, std::string &Err) {
  LastErrorCode.clear();
  if (!send(statsFrame(0), Err))
    return false;
  while (true) {
    RemoteMessage Msg;
    if (!receive(Msg, Err))
      return false;
    if (Msg.Type == "error") {
      LastErrorCode = Msg.Code;
      Err = strFormat("stats request rejected [%s]: %s", Msg.Code.c_str(),
                      Msg.Message.c_str());
      return false;
    }
    if (Msg.Type != "stats_result")
      continue; // a stale event of an abandoned job; skip it
    Pool = Msg.Pool;
    Memory = Msg.Memory;
    Translation = Msg.Translation;
    ResultC = Msg.ResultC;
    return true;
  }
}
