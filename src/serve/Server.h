//===- serve/Server.h - The kcc-serve network daemon ------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The out-of-process half of the analysis service: a long-running
/// daemon that accepts concurrent client connections over TCP and
/// Unix-domain sockets, speaks the length-prefixed `cundef-kcc-v1`
/// protocol (serve/Protocol.h, docs/SERVE.md), and multiplexes every
/// client onto ONE warm AnalysisEngine — so a service workload pays
/// pool spawn, snapshot-cache warmup, and frontend work once, ever,
/// instead of once per kcc invocation.
///
/// Architecture: a single event-loop thread owns all socket I/O
/// (poll(), non-blocking fds, buffered writes); the engine's frontend
/// and search pools do all analysis work. Engine callbacks never touch
/// a socket — they copy the event into a mutex-guarded queue and wake
/// the loop through a self-pipe, and only the loop thread writes
/// frames, so per-connection state needs no locking at all.
///
/// Admission control and backpressure (the daemon must degrade
/// predictably, never wedge):
///   - per-client in-flight jobs are bounded (MaxInflightPerClient);
///     excess submits are rejected with a structured `overloaded`
///     error, not queued without bound,
///   - total in-flight jobs are bounded (MaxQueueDepth) the same way,
///   - write buffers are bounded (MaxWriteBufferBytes); a reader too
///     slow to drain its results is disconnected rather than allowed
///     to pin arbitrary memory,
///   - half-written frames, garbage frames, and mid-job disconnects
///     cost only that connection — in-flight jobs of a vanished client
///     finish and their results are dropped.
///
/// Graceful drain: requestStop() (async-signal-safe; kcc-serve wires
/// SIGTERM/SIGINT to it) stops accepting connections and submissions,
/// finishes every in-flight job, flushes results, and returns 0 from
/// run().
///
/// Memory: whenever the engine goes momentarily idle between requests
/// (in-flight count falls to zero), the loop invokes the engine's
/// reclamation (drain() on an idle engine is cheap) — so a daemon that
/// never drains in the service sense still returns every reclaimable
/// byte between bursts (tests/test_serve.cpp pins the counters to
/// zero).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SERVE_SERVER_H
#define CUNDEF_SERVE_SERVER_H

#include "driver/Engine.h"

#include <memory>
#include <string>

namespace cundef {

/// Daemon configuration: which endpoints to listen on plus the
/// backpressure bounds. At least one endpoint must be enabled.
struct ServeConfig {
  /// Unix-domain socket path; empty disables the Unix listener. A
  /// stale socket file at the path is unlinked before binding.
  std::string UnixPath;
  /// TCP listener; disabled unless UseTcp. Port 0 binds an ephemeral
  /// port (ServeDaemon::tcpPort() reports it after listen()).
  bool UseTcp = false;
  unsigned TcpPort = 0;
  std::string TcpHost = "127.0.0.1";
  /// Concurrent connections accepted; further accepts are closed
  /// immediately.
  unsigned MaxClients = 64;
  /// Per-connection in-flight submissions; the next submit is rejected
  /// with `overloaded`.
  unsigned MaxInflightPerClient = 16;
  /// Engine-wide in-flight submissions across all clients.
  unsigned MaxQueueDepth = 1024;
  /// Per-connection outbound buffer cap; exceeding it disconnects the
  /// slow reader.
  size_t MaxWriteBufferBytes = 32u << 20;
  /// How long run() keeps flushing already-finished results to slow
  /// readers after drain completes before closing them anyway.
  int DrainFlushMs = 5000;
  /// The warm engine all clients share.
  EngineConfig Engine;
};

/// Monotonic daemon counters (observability for tests and the bench;
/// the wire exposes engine stats separately via the `stats` request).
struct ServeCounters {
  uint64_t Accepted = 0;           ///< connections accepted
  uint64_t Rejected = 0;           ///< submits rejected (overloaded/bad/drain)
  uint64_t Submitted = 0;          ///< submissions admitted to the engine
  uint64_t Completed = 0;          ///< finished events processed
  uint64_t ProtocolErrors = 0;     ///< connections dropped for bad frames
  uint64_t SlowReaderDisconnects = 0;
  uint64_t IdleReclaims = 0;       ///< opportunistic engine reclamations
};

/// The daemon. Construct with a config, listen(), then run() until
/// requestStop(). One instance per process lifetime.
class ServeDaemon {
public:
  explicit ServeDaemon(ServeConfig Cfg);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon &) = delete;
  ServeDaemon &operator=(const ServeDaemon &) = delete;

  /// Binds and listens on every configured endpoint. Returns false
  /// with a diagnostic (nothing half-open remains) on failure.
  bool listen(std::string &Err);

  /// The bound TCP port (meaningful after listen(); resolves port 0).
  unsigned tcpPort() const;

  /// The event loop: serves until requestStop(), then drains in-flight
  /// jobs, flushes, and returns the process exit code (0 on a clean
  /// drain). Call from exactly one thread.
  int run();

  /// Initiates graceful shutdown. Async-signal-safe (a signal handler
  /// may call it directly); callable from any thread, idempotent.
  void requestStop();

  /// The shared engine (tests inspect its stats directly; clients use
  /// the `stats` request).
  AnalysisEngine &engine();

  ServeCounters counters() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
  /// Self-pipe write end, duplicated out of Impl so requestStop() can
  /// stay async-signal-safe (no locks, no indirection that could
  /// allocate).
  int StopFd = -1;
};

} // namespace cundef

#endif // CUNDEF_SERVE_SERVER_H
