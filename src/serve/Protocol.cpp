//===- serve/Protocol.cpp - The cundef-kcc-v1 wire protocol ---------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "driver/JsonOutput.h"
#include "support/Strings.h"
#include "ub/Catalog.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace cundef;

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

void cundef::appendFrame(std::string &Buffer, const std::string &Payload) {
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  char Prefix[4] = {static_cast<char>((Len >> 24) & 0xFF),
                    static_cast<char>((Len >> 16) & 0xFF),
                    static_cast<char>((Len >> 8) & 0xFF),
                    static_cast<char>(Len & 0xFF)};
  Buffer.append(Prefix, 4);
  Buffer.append(Payload);
}

int cundef::extractFrame(std::string &Buffer, std::string &Payload,
                         size_t MaxBytes) {
  if (Buffer.size() < 4)
    return 0;
  const unsigned char *B = reinterpret_cast<const unsigned char *>(
      Buffer.data());
  uint32_t Len = (static_cast<uint32_t>(B[0]) << 24) |
                 (static_cast<uint32_t>(B[1]) << 16) |
                 (static_cast<uint32_t>(B[2]) << 8) |
                 static_cast<uint32_t>(B[3]);
  if (Len > MaxBytes)
    return -1;
  if (Buffer.size() < 4 + static_cast<size_t>(Len))
    return 0;
  Payload.assign(Buffer, 4, Len);
  Buffer.erase(0, 4 + static_cast<size_t>(Len));
  return 1;
}

bool cundef::writeFrameBlocking(int Fd, const std::string &Payload) {
  std::string Framed;
  Framed.reserve(Payload.size() + 4);
  appendFrame(Framed, Payload);
  size_t Sent = 0;
  while (Sent < Framed.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as an
    // error return, never as a process-killing SIGPIPE.
    ssize_t N = ::send(Fd, Framed.data() + Sent, Framed.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

bool cundef::readFrameBlocking(int Fd, std::string &Buffer,
                               std::string &Payload, std::string &Err,
                               int TimeoutMs, size_t MaxBytes) {
  // The stream buffer is caller-owned and persists across calls: one
  // recv may deliver several back-to-back frames (the daemon batches
  // ub_found + finished into one flush), and whatever follows the
  // extracted frame must survive for the next call.
  char Chunk[4096];
  while (true) {
    int Got = extractFrame(Buffer, Payload, MaxBytes);
    if (Got == 1)
      return true;
    if (Got == -1) {
      Err = "oversized frame announced by peer";
      return false;
    }
    if (TimeoutMs >= 0) {
      struct pollfd P = {Fd, POLLIN, 0};
      int R = ::poll(&P, 1, TimeoutMs);
      if (R == 0) {
        Err = "timed out waiting for a frame";
        return false;
      }
      if (R < 0 && errno != EINTR) {
        Err = strFormat("poll failed: %s", std::strerror(errno));
        return false;
      }
      if (R < 0)
        continue;
    }
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N == 0) {
      Err = "connection closed by peer";
      return false;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = strFormat("recv failed: %s", std::strerror(errno));
      return false;
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}

//===----------------------------------------------------------------------===//
// Enum names
//===----------------------------------------------------------------------===//

namespace {

const char *orderName(EvalOrderKind K) {
  switch (K) {
  case EvalOrderKind::LeftToRight: return "ltr";
  case EvalOrderKind::RightToLeft: return "rtl";
  case EvalOrderKind::Random:      return "random";
  }
  return "ltr";
}

bool parseOrderName(const std::string &Name, EvalOrderKind &Out) {
  if (Name == "ltr")
    Out = EvalOrderKind::LeftToRight;
  else if (Name == "rtl")
    Out = EvalOrderKind::RightToLeft;
  else if (Name == "random")
    Out = EvalOrderKind::Random;
  else
    return false;
  return true;
}

const char *styleName(RuleStyle S) {
  switch (S) {
  case RuleStyle::SideConditions:  return "cond";
  case RuleStyle::PrecedenceChain: return "chain";
  case RuleStyle::Declarative:     return "decl";
  }
  return "cond";
}

bool parseStyleName(const std::string &Name, RuleStyle &Out) {
  if (Name == "cond")
    Out = RuleStyle::SideConditions;
  else if (Name == "chain")
    Out = RuleStyle::PrecedenceChain;
  else if (Name == "decl")
    Out = RuleStyle::Declarative;
  else
    return false;
  return true;
}

const char *schedName(SchedKind K) {
  return K == SchedKind::Wave ? "wave" : "steal";
}

bool parseSchedName(const std::string &Name, SchedKind &Out) {
  if (Name == "steal")
    Out = SchedKind::Stealing;
  else if (Name == "wave")
    Out = SchedKind::Wave;
  else
    return false;
  return true;
}

const char *staticModeName(StaticAnalysisMode M) {
  switch (M) {
  case StaticAnalysisMode::Off:  return "off";
  case StaticAnalysisMode::On:   return "on";
  case StaticAnalysisMode::Only: return "only";
  }
  return "on";
}

bool parseStaticModeName(const std::string &Name, StaticAnalysisMode &Out) {
  if (Name == "off")
    Out = StaticAnalysisMode::Off;
  else if (Name == "on")
    Out = StaticAnalysisMode::On;
  else if (Name == "only")
    Out = StaticAnalysisMode::Only;
  else
    return false;
  return true;
}

bool parseRunStatusName(const std::string &Name, RunStatus &Out) {
  if (Name == "running")
    Out = RunStatus::Running;
  else if (Name == "completed")
    Out = RunStatus::Completed;
  else if (Name == "ub-detected")
    Out = RunStatus::UbDetected;
  else if (Name == "fault")
    Out = RunStatus::Fault;
  else if (Name == "step-limit")
    Out = RunStatus::StepLimit;
  else if (Name == "internal")
    Out = RunStatus::Internal;
  else if (Name == "cancelled")
    Out = RunStatus::Cancelled;
  else
    return false;
  return true;
}

const char *verdictWireName(FindingVerdict V) {
  switch (V) {
  case FindingVerdict::Must: return "must";
  case FindingVerdict::May:  return "may";
  case FindingVerdict::None: break;
  }
  return "none";
}

bool parseVerdictName(const std::string &Name, FindingVerdict &Out) {
  if (Name == "none")
    Out = FindingVerdict::None;
  else if (Name == "must")
    Out = FindingVerdict::Must;
  else if (Name == "may")
    Out = FindingVerdict::May;
  else
    return false;
  return true;
}

/// UbReport::Domain is documented as "always a string literal, never
/// owned", so the wire decoder must map names back onto the closed set
/// of literals the static layer uses (unknown names — a newer peer —
/// degrade to the empty domain rather than dangling).
const char *internDomain(const std::string &Name) {
  if (Name == "syntactic")
    return "syntactic";
  if (Name == "nullness")
    return "nullness";
  if (Name == "init")
    return "init";
  if (Name == "interval")
    return "interval";
  return "";
}

} // namespace

//===----------------------------------------------------------------------===//
// AnalysisRequest
//===----------------------------------------------------------------------===//

std::string cundef::serializeRequest(const AnalysisRequest &Req) {
  const TargetConfig &T = Req.target();
  const MachineOptions &M = Req.machine();
  std::string Out = "{";
  Out += strFormat(
      "\"target\":{\"short_size\":%u,\"int_size\":%u,\"long_size\":%u,"
      "\"long_long_size\":%u,\"pointer_size\":%u,\"float_size\":%u,"
      "\"double_size\":%u,\"bool_size\":%u,\"max_align\":%u,"
      "\"char_is_signed\":%s,\"arithmetic_right_shift\":%s},",
      T.ShortSize, T.IntSize, T.LongSize, T.LongLongSize, T.PointerSize,
      T.FloatSize, T.DoubleSize, T.BoolSize, T.MaxAlign,
      T.CharIsSigned ? "true" : "false",
      T.ArithmeticRightShift ? "true" : "false");
  Out += strFormat(
      "\"machine\":{\"strict\":%s,\"track_sequencing\":%s,\"track_const\":%s,"
      "\"symbolic_pointers\":%s,\"pointer_bytes\":%s,\"unknown_bytes\":%s,"
      "\"check_effective_types\":%s,\"stop_at_first_ub\":%s,"
      "\"step_limit\":%llu,\"order\":\"%s\",\"seed\":%u,"
      "\"max_call_depth\":%u,\"style\":\"%s\"},",
      M.Strict ? "true" : "false", M.TrackSequencing ? "true" : "false",
      M.TrackConst ? "true" : "false", M.SymbolicPointers ? "true" : "false",
      M.PointerBytes ? "true" : "false", M.UnknownBytes ? "true" : "false",
      M.CheckEffectiveTypes ? "true" : "false",
      M.StopAtFirstUb ? "true" : "false",
      static_cast<unsigned long long>(M.StepLimit), orderName(M.Order),
      M.Seed, M.MaxCallDepth, styleName(M.Style));
  Out += strFormat(
      "\"static_checks\":%s,\"static_analyze\":\"%s\",\"search_runs\":%u,"
      "\"search_jobs\":%u,\"dedup\":%s,\"snapshots\":%s,\"sched\":\"%s\","
      "\"result_cache\":%s}",
      Req.staticChecks() ? "true" : "false",
      staticModeName(Req.staticAnalyze()), Req.searchRuns(), Req.searchJobs(),
      Req.searchDedup() ? "true" : "false",
      Req.searchSnapshots() ? "true" : "false", schedName(Req.searchSched()),
      Req.useResultCache() ? "true" : "false");
  return Out;
}

bool cundef::parseRequest(const JsonValue &V, AnalysisRequest &Out,
                          std::string &Err) {
  if (!V.isObject()) {
    Err = "request must be a JSON object";
    return false;
  }
  AnalysisRequest Defaults;
  TargetConfig T = Defaults.target();
  if (const JsonValue *TV = V.get("target")) {
    if (!TV->isObject()) {
      Err = "request.target must be an object";
      return false;
    }
    T.ShortSize = static_cast<unsigned>(TV->getU64("short_size", T.ShortSize));
    T.IntSize = static_cast<unsigned>(TV->getU64("int_size", T.IntSize));
    T.LongSize = static_cast<unsigned>(TV->getU64("long_size", T.LongSize));
    T.LongLongSize =
        static_cast<unsigned>(TV->getU64("long_long_size", T.LongLongSize));
    T.PointerSize =
        static_cast<unsigned>(TV->getU64("pointer_size", T.PointerSize));
    T.FloatSize = static_cast<unsigned>(TV->getU64("float_size", T.FloatSize));
    T.DoubleSize =
        static_cast<unsigned>(TV->getU64("double_size", T.DoubleSize));
    T.BoolSize = static_cast<unsigned>(TV->getU64("bool_size", T.BoolSize));
    T.MaxAlign = static_cast<unsigned>(TV->getU64("max_align", T.MaxAlign));
    T.CharIsSigned = TV->getBool("char_is_signed", T.CharIsSigned);
    T.ArithmeticRightShift =
        TV->getBool("arithmetic_right_shift", T.ArithmeticRightShift);
  }
  MachineOptions M = Defaults.machine();
  if (const JsonValue *MV = V.get("machine")) {
    if (!MV->isObject()) {
      Err = "request.machine must be an object";
      return false;
    }
    M.Strict = MV->getBool("strict", M.Strict);
    M.TrackSequencing = MV->getBool("track_sequencing", M.TrackSequencing);
    M.TrackConst = MV->getBool("track_const", M.TrackConst);
    M.SymbolicPointers = MV->getBool("symbolic_pointers", M.SymbolicPointers);
    M.PointerBytes = MV->getBool("pointer_bytes", M.PointerBytes);
    M.UnknownBytes = MV->getBool("unknown_bytes", M.UnknownBytes);
    M.CheckEffectiveTypes =
        MV->getBool("check_effective_types", M.CheckEffectiveTypes);
    M.StopAtFirstUb = MV->getBool("stop_at_first_ub", M.StopAtFirstUb);
    M.StepLimit = MV->getU64("step_limit", M.StepLimit);
    M.Seed = static_cast<uint32_t>(MV->getU64("seed", M.Seed));
    M.MaxCallDepth =
        static_cast<unsigned>(MV->getU64("max_call_depth", M.MaxCallDepth));
    if (const JsonValue *OV = MV->get("order"))
      if (!parseOrderName(OV->asString(), M.Order)) {
        Err = "unknown machine.order '" + OV->asString() + "'";
        return false;
      }
    if (const JsonValue *SV = MV->get("style"))
      if (!parseStyleName(SV->asString(), M.Style)) {
        Err = "unknown machine.style '" + SV->asString() + "'";
        return false;
      }
  }

  AnalysisRequest::Builder B;
  B.target(T).machine(M);
  B.staticChecks(V.getBool("static_checks", Defaults.staticChecks()));
  StaticAnalysisMode Mode = Defaults.staticAnalyze();
  if (const JsonValue *SM = V.get("static_analyze"))
    if (!parseStaticModeName(SM->asString(), Mode)) {
      Err = "unknown static_analyze mode '" + SM->asString() + "'";
      return false;
    }
  B.staticAnalyze(Mode);
  B.searchRuns(
      static_cast<unsigned>(V.getU64("search_runs", Defaults.searchRuns())));
  B.searchJobs(
      static_cast<unsigned>(V.getU64("search_jobs", Defaults.searchJobs())));
  B.dedup(V.getBool("dedup", Defaults.searchDedup()));
  B.snapshots(V.getBool("snapshots", Defaults.searchSnapshots()));
  B.resultCache(V.getBool("result_cache", Defaults.useResultCache()));
  SchedKind Sched = Defaults.searchSched();
  if (const JsonValue *SV = V.get("sched"))
    if (!parseSchedName(SV->asString(), Sched)) {
      Err = "unknown sched '" + SV->asString() + "'";
      return false;
    }
  B.sched(Sched);

  // The same validation gate a local kcc runs: a remote peer cannot
  // smuggle in a configuration the Builder would reject.
  AnalysisRequest::Builder::Result Built = B.build();
  if (!Built.ok()) {
    Err = Built.Err.Message;
    return false;
  }
  Out = Built.Request;
  return true;
}

//===----------------------------------------------------------------------===//
// Findings and outcomes
//===----------------------------------------------------------------------===//

std::string cundef::serializeFindings(const std::vector<UbReport> &Reports) {
  std::string Out = "[";
  for (size_t I = 0; I < Reports.size(); ++I) {
    const UbReport &R = Reports[I];
    Out += strFormat(
        "%s{\"code\":%u,\"description\":\"%s\",\"function\":\"%s\","
        "\"file\":%u,\"line\":%u,\"column\":%u,\"static\":%s,"
        "\"verdict\":\"%s\",\"domain\":\"%s\"}",
        I ? "," : "", ubCode(R.Kind), jsonEscape(R.Description).c_str(),
        jsonEscape(R.Function).c_str(), R.Loc.File, R.Loc.Line, R.Loc.Col,
        R.StaticFinding ? "true" : "false", verdictWireName(R.Verdict),
        R.Domain);
  }
  Out += "]";
  return Out;
}

bool cundef::parseFindings(const JsonValue &V, std::vector<UbReport> &Out,
                           std::string &Err) {
  if (!V.isArray()) {
    Err = "findings must be an array";
    return false;
  }
  Out.clear();
  Out.reserve(V.items().size());
  for (const JsonValue &F : V.items()) {
    if (!F.isObject()) {
      Err = "finding must be an object";
      return false;
    }
    UbReport R;
    R.Kind = static_cast<UbKind>(F.getU64("code", 0));
    R.Description = F.getString("description");
    R.Function = F.getString("function");
    R.Loc = SourceLoc(static_cast<uint32_t>(F.getU64("file", 0)),
                      static_cast<uint32_t>(F.getU64("line", 0)),
                      static_cast<uint32_t>(F.getU64("column", 0)));
    R.StaticFinding = F.getBool("static", false);
    if (!parseVerdictName(F.getString("verdict").empty()
                              ? std::string("none")
                              : F.getString("verdict"),
                          R.Verdict)) {
      Err = "unknown finding verdict '" + F.getString("verdict") + "'";
      return false;
    }
    R.Domain = internDomain(F.getString("domain"));
    Out.push_back(std::move(R));
  }
  return true;
}

std::string cundef::serializeOutcome(const DriverOutcome &O) {
  std::string Out = "{";
  Out += strFormat("\"compile_ok\":%s,", O.CompileOk ? "true" : "false");
  Out += strFormat("\"compile_errors\":\"%s\",",
                   jsonEscape(O.CompileErrors).c_str());
  Out += "\"static_ub\":" + serializeFindings(O.StaticUb) + ",";
  Out += "\"static_hints\":" + serializeFindings(O.StaticHints) + ",";
  Out += "\"dynamic_ub\":" + serializeFindings(O.DynamicUb) + ",";
  Out += strFormat("\"static_only\":%s,", O.StaticOnly ? "true" : "false");
  Out += strFormat("\"status\":\"%s\",", runStatusName(O.Status));
  Out += strFormat("\"exit_code\":%d,", O.ExitCode);
  Out += strFormat("\"output\":\"%s\",", jsonEscape(O.Output).c_str());
  Out += strFormat("\"orders_explored\":%u,", O.OrdersExplored);
  Out += strFormat("\"orders_deduped\":%u,", O.OrdersDeduped);
  Out += strFormat("\"truncated\":%s,", O.SearchTruncated ? "true" : "false");
  Out += strFormat("\"dropped_subtrees\":%u,", O.SearchDropped);
  Out += strFormat("\"steals\":%u,", O.SearchSteals);
  Out += strFormat("\"snapshot_evictions\":%u,", O.SearchEvictions);
  Out += strFormat("\"peak_frontier\":%u,", O.SearchPeakFrontier);
  Out += strFormat("\"translation_cache_hit\":%s,",
                   O.TranslationCacheHit ? "true" : "false");
  Out += strFormat("\"result_cache_hit\":%s,",
                   O.ResultCacheHit ? "true" : "false");
  Out += strFormat("\"frontend_micros\":%.3f,", O.FrontendMicros);
  Out += strFormat("\"search_micros\":%.3f,", O.SearchMicros);
  std::string Witness;
  for (uint8_t D : O.SearchWitness)
    Witness += strFormat("%s%u", Witness.empty() ? "" : ",", D);
  Out += strFormat("\"witness\":[%s]}", Witness.c_str());
  return Out;
}

bool cundef::parseOutcome(const JsonValue &V, DriverOutcome &Out,
                          std::string &Err) {
  if (!V.isObject()) {
    Err = "outcome must be a JSON object";
    return false;
  }
  Out = DriverOutcome();
  Out.CompileOk = V.getBool("compile_ok", false);
  Out.CompileErrors = V.getString("compile_errors");
  const JsonValue *F = V.get("static_ub");
  if (!F || !parseFindings(*F, Out.StaticUb, Err))
    return false;
  F = V.get("static_hints");
  if (!F || !parseFindings(*F, Out.StaticHints, Err))
    return false;
  F = V.get("dynamic_ub");
  if (!F || !parseFindings(*F, Out.DynamicUb, Err))
    return false;
  Out.StaticOnly = V.getBool("static_only", false);
  if (!parseRunStatusName(V.getString("status"), Out.Status)) {
    Err = "unknown run status '" + V.getString("status") + "'";
    return false;
  }
  Out.ExitCode = static_cast<int>(V.get("exit_code")
                                      ? V.get("exit_code")->asI64(0)
                                      : 0);
  Out.Output = V.getString("output");
  Out.OrdersExplored = static_cast<unsigned>(V.getU64("orders_explored", 0));
  Out.OrdersDeduped = static_cast<unsigned>(V.getU64("orders_deduped", 0));
  Out.SearchTruncated = V.getBool("truncated", false);
  Out.SearchDropped = static_cast<unsigned>(V.getU64("dropped_subtrees", 0));
  Out.SearchSteals = static_cast<unsigned>(V.getU64("steals", 0));
  Out.SearchEvictions =
      static_cast<unsigned>(V.getU64("snapshot_evictions", 0));
  Out.SearchPeakFrontier =
      static_cast<unsigned>(V.getU64("peak_frontier", 0));
  Out.TranslationCacheHit = V.getBool("translation_cache_hit", false);
  Out.ResultCacheHit = V.getBool("result_cache_hit", false);
  Out.FrontendMicros = V.getDouble("frontend_micros", 0.0);
  Out.SearchMicros = V.getDouble("search_micros", 0.0);
  if (const JsonValue *W = V.get("witness")) {
    if (!W->isArray()) {
      Err = "outcome.witness must be an array";
      return false;
    }
    Out.SearchWitness.reserve(W->items().size());
    for (const JsonValue &D : W->items())
      Out.SearchWitness.push_back(static_cast<uint8_t>(D.asU64(0) ? 1 : 0));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

std::string cundef::serializeStats(const SchedulerStats &Pool,
                                   const EngineMemoryStats &Memory,
                                   const TranslationCacheStats &Translation,
                                   const ResultCacheStats &ResultC) {
  std::string Out = "{";
  Out += strFormat(
      "\"pool\":{\"programs\":%u,\"workers\":%u,\"steals\":%llu,"
      "\"snapshot_evictions\":%llu,\"peak_frontier\":%llu,"
      "\"runs_executed\":%llu,\"dedup_hits\":%llu,\"runs_committed\":%llu,"
      "\"provisional_hits\":%llu,\"provisional_requeues\":%llu,"
      "\"commit_lag_peak\":%llu,\"snapshot_shards\":%u,"
      "\"snapshot_takes\":%llu,\"snapshot_hits\":%llu,"
      "\"snapshot_slot_steals\":%llu,\"snapshot_shared_hits\":%llu},",
      Pool.Programs, Pool.Jobs,
      static_cast<unsigned long long>(Pool.Steals),
      static_cast<unsigned long long>(Pool.SnapshotEvictions),
      static_cast<unsigned long long>(Pool.PeakFrontier),
      static_cast<unsigned long long>(Pool.RunsExecuted),
      static_cast<unsigned long long>(Pool.DedupHits),
      static_cast<unsigned long long>(Pool.RunsCommitted),
      static_cast<unsigned long long>(Pool.ProvisionalHits),
      static_cast<unsigned long long>(Pool.ProvisionalRequeues),
      static_cast<unsigned long long>(Pool.CommitLagPeak),
      Pool.SnapshotShards,
      static_cast<unsigned long long>(Pool.SnapshotTakes),
      static_cast<unsigned long long>(Pool.SnapshotHits),
      static_cast<unsigned long long>(Pool.SnapshotSlotSteals),
      static_cast<unsigned long long>(Pool.SnapshotSharedHits));
  Out += strFormat(
      "\"memory\":{\"pending_jobs\":%llu,\"graveyard_artifacts\":%llu,"
      "\"program_slots\":%llu,\"retained_programs\":%llu,"
      "\"pending_snapshots\":%llu},",
      static_cast<unsigned long long>(Memory.PendingJobs),
      static_cast<unsigned long long>(Memory.GraveyardArtifacts),
      static_cast<unsigned long long>(Memory.ProgramSlots),
      static_cast<unsigned long long>(Memory.RetainedPrograms),
      static_cast<unsigned long long>(Memory.PendingSnapshots));
  Out += strFormat(
      "\"translation\":{\"lookups\":%llu,\"hits\":%llu,\"misses\":%llu,"
      "\"inflight_joins\":%llu,\"evictions\":%llu},",
      static_cast<unsigned long long>(Translation.Lookups),
      static_cast<unsigned long long>(Translation.Hits),
      static_cast<unsigned long long>(Translation.Misses),
      static_cast<unsigned long long>(Translation.InflightJoins),
      static_cast<unsigned long long>(Translation.Evictions));
  Out += strFormat(
      "\"result_cache\":{\"lookups\":%llu,\"hits\":%llu,\"misses\":%llu,"
      "\"inflight_joins\":%llu,\"evictions\":%llu,\"abandoned\":%llu}}",
      static_cast<unsigned long long>(ResultC.Lookups),
      static_cast<unsigned long long>(ResultC.Hits),
      static_cast<unsigned long long>(ResultC.Misses),
      static_cast<unsigned long long>(ResultC.InflightJoins),
      static_cast<unsigned long long>(ResultC.Evictions),
      static_cast<unsigned long long>(ResultC.Abandoned));
  return Out;
}

bool cundef::parseStats(const JsonValue &V, SchedulerStats &Pool,
                        EngineMemoryStats &Memory,
                        TranslationCacheStats &Translation,
                        ResultCacheStats &ResultC, std::string &Err) {
  const JsonValue *P = V.get("pool");
  const JsonValue *M = V.get("memory");
  const JsonValue *T = V.get("translation");
  const JsonValue *R = V.get("result_cache");
  if (!P || !P->isObject() || !M || !M->isObject() || !T || !T->isObject() ||
      !R || !R->isObject()) {
    Err = "stats body must carry pool, memory, translation, and "
          "result_cache objects";
    return false;
  }
  Pool = SchedulerStats();
  Pool.Programs = static_cast<unsigned>(P->getU64("programs", 0));
  Pool.Jobs = static_cast<unsigned>(P->getU64("workers", 0));
  Pool.Steals = P->getU64("steals", 0);
  Pool.SnapshotEvictions = P->getU64("snapshot_evictions", 0);
  Pool.PeakFrontier = P->getU64("peak_frontier", 0);
  Pool.RunsExecuted = P->getU64("runs_executed", 0);
  Pool.DedupHits = P->getU64("dedup_hits", 0);
  Pool.RunsCommitted = P->getU64("runs_committed", 0);
  Pool.ProvisionalHits = P->getU64("provisional_hits", 0);
  Pool.ProvisionalRequeues = P->getU64("provisional_requeues", 0);
  Pool.CommitLagPeak = P->getU64("commit_lag_peak", 0);
  Pool.SnapshotShards = static_cast<unsigned>(P->getU64("snapshot_shards", 0));
  Pool.SnapshotTakes = P->getU64("snapshot_takes", 0);
  Pool.SnapshotHits = P->getU64("snapshot_hits", 0);
  Pool.SnapshotSlotSteals = P->getU64("snapshot_slot_steals", 0);
  Pool.SnapshotSharedHits = P->getU64("snapshot_shared_hits", 0);
  Memory = EngineMemoryStats();
  Memory.PendingJobs = M->getU64("pending_jobs", 0);
  Memory.GraveyardArtifacts = M->getU64("graveyard_artifacts", 0);
  Memory.ProgramSlots = M->getU64("program_slots", 0);
  Memory.RetainedPrograms = M->getU64("retained_programs", 0);
  Memory.PendingSnapshots = M->getU64("pending_snapshots", 0);
  Translation = TranslationCacheStats();
  Translation.Lookups = T->getU64("lookups", 0);
  Translation.Hits = T->getU64("hits", 0);
  Translation.Misses = T->getU64("misses", 0);
  Translation.InflightJoins = T->getU64("inflight_joins", 0);
  Translation.Evictions = T->getU64("evictions", 0);
  ResultC = ResultCacheStats();
  ResultC.Lookups = R->getU64("lookups", 0);
  ResultC.Hits = R->getU64("hits", 0);
  ResultC.Misses = R->getU64("misses", 0);
  ResultC.InflightJoins = R->getU64("inflight_joins", 0);
  ResultC.Evictions = R->getU64("evictions", 0);
  ResultC.Abandoned = R->getU64("abandoned", 0);
  return true;
}

//===----------------------------------------------------------------------===//
// Whole frames
//===----------------------------------------------------------------------===//

std::string cundef::helloFrame(unsigned Workers) {
  return strFormat("{\"type\":\"hello\",\"schema\":\"%s\",\"workers\":%u}",
                   ServeProtocolName, Workers);
}

std::string cundef::submitFrame(uint64_t Id, const std::string &Name,
                                const std::string &Source,
                                const AnalysisRequest &Req) {
  return strFormat("{\"type\":\"submit\",\"id\":%llu,\"name\":\"%s\","
                   "\"source\":\"%s\",\"request\":%s}",
                   static_cast<unsigned long long>(Id),
                   jsonEscape(Name).c_str(), jsonEscape(Source).c_str(),
                   serializeRequest(Req).c_str());
}

std::string cundef::statsFrame(uint64_t Id) {
  return strFormat("{\"type\":\"stats\",\"id\":%llu}",
                   static_cast<unsigned long long>(Id));
}

std::string cundef::errorFrame(uint64_t Id, const char *Code,
                               const std::string &Message) {
  return strFormat("{\"type\":\"error\",\"id\":%llu,\"code\":\"%s\","
                   "\"message\":\"%s\"}",
                   static_cast<unsigned long long>(Id), Code,
                   jsonEscape(Message).c_str());
}

std::string cundef::ubFoundFrame(uint64_t Id,
                                 const std::vector<UbReport> &Reports) {
  return strFormat("{\"type\":\"ub_found\",\"id\":%llu,\"findings\":%s}",
                   static_cast<unsigned long long>(Id),
                   serializeFindings(Reports).c_str());
}

std::string cundef::frontierTruncatedFrame(uint64_t Id,
                                           unsigned DroppedSubtrees) {
  return strFormat(
      "{\"type\":\"frontier_truncated\",\"id\":%llu,\"dropped_subtrees\":%u}",
      static_cast<unsigned long long>(Id), DroppedSubtrees);
}

std::string cundef::finishedFrame(uint64_t Id, const DriverOutcome &Outcome,
                                  double WallMicros) {
  return strFormat(
      "{\"type\":\"finished\",\"id\":%llu,\"wall_micros\":%.3f,"
      "\"outcome\":%s}",
      static_cast<unsigned long long>(Id), WallMicros,
      serializeOutcome(Outcome).c_str());
}

std::string cundef::statsResultFrame(uint64_t Id, const SchedulerStats &Pool,
                                     const EngineMemoryStats &Memory,
                                     const TranslationCacheStats &Translation,
                                     const ResultCacheStats &ResultC) {
  return strFormat("{\"type\":\"stats_result\",\"id\":%llu,\"stats\":%s}",
                   static_cast<unsigned long long>(Id),
                   serializeStats(Pool, Memory, Translation, ResultC).c_str());
}
