//===- serve/Json.h - Minimal JSON value and parser -------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reading half of the wire boundary. driver/JsonOutput.h renders
/// documents; the serve layer additionally has to *parse* them — the
/// daemon decodes submit frames, the remote client decodes outcome
/// frames — so this is a small strict recursive-descent JSON parser
/// plus an immutable value tree. It understands exactly RFC 8259 with
/// one repo-specific convention: \u00XX escapes decode to the single
/// raw byte XX (the byte-transparent latin-1 convention jsonEscape
/// emits and docs/JSON_OUTPUT.md documents), so a string survives a
/// serialize/parse round trip byte-for-byte.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SERVE_JSON_H
#define CUNDEF_SERVE_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cundef {

/// An immutable parsed JSON value. Object member order is preserved but
/// lookups are by key; duplicate keys keep the last occurrence (RFC
/// 8259 leaves this undefined; last-wins matches common parsers).
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Value accessors; each returns the fallback when the kind does not
  /// match (wire messages treat absent and mistyped fields alike).
  bool asBool(bool Fallback = false) const {
    return isBool() ? BoolV : Fallback;
  }
  double asDouble(double Fallback = 0.0) const {
    return isNumber() ? NumberV : Fallback;
  }
  uint64_t asU64(uint64_t Fallback = 0) const {
    return isNumber() && NumberV >= 0 ? static_cast<uint64_t>(NumberV)
                                      : Fallback;
  }
  int64_t asI64(int64_t Fallback = 0) const {
    return isNumber() ? static_cast<int64_t>(NumberV) : Fallback;
  }
  const std::string &asString() const {
    static const std::string Empty;
    return isString() ? StringV : Empty;
  }

  const std::vector<JsonValue> &items() const {
    static const std::vector<JsonValue> Empty;
    return isArray() ? ArrayV : Empty;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *get(const std::string &Key) const;

  /// Typed member conveniences (fallback when absent or mistyped).
  bool getBool(const std::string &Key, bool Fallback = false) const;
  double getDouble(const std::string &Key, double Fallback = 0.0) const;
  uint64_t getU64(const std::string &Key, uint64_t Fallback = 0) const;
  const std::string &getString(const std::string &Key) const;

  /// Strictly parses \p Text as one JSON value with nothing but
  /// whitespace after it. On failure returns false and sets \p Err to a
  /// byte-offset diagnostic.
  static bool parse(const std::string &Text, JsonValue &Out,
                    std::string &Err);

private:
  friend class JsonParser;

  Kind K = Kind::Null;
  bool BoolV = false;
  double NumberV = 0.0;
  std::string StringV;
  std::vector<JsonValue> ArrayV;
  std::vector<std::pair<std::string, JsonValue>> ObjectV;
};

} // namespace cundef

#endif // CUNDEF_SERVE_JSON_H
