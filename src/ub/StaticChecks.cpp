//===- ub/StaticChecks.cpp - Static undefinedness checks -------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "ub/StaticChecks.h"

#include "libc/Builtins.h"
#include "sema/ConstEval.h"

using namespace cundef;

/// C11 5.2.4.1 guarantees 63 significant initial characters in an
/// internal identifier; identifiers that differ only beyond that limit
/// are undefined (C11 6.4.2p6 -- the paper's footnote-1 example).
static constexpr size_t SignificantChars = 63;

void StaticChecker::run() {
  checkRedeclarations();
  checkIdentifierSignificance();
  for (const FunctionDecl *F : Ctx.TU.Functions)
    if (F->Body)
      checkFunctionBody(F);
  for (const VarDecl *G : Ctx.TU.Globals)
    if (G->Init)
      checkExpr(G->Init, "<file scope>");
}

void StaticChecker::checkRedeclarations() {
  for (const FunctionDecl *F : Ctx.TU.Functions) {
    const auto &Decls = F->AllDeclTypes;
    for (size_t I = 1; I < Decls.size(); ++I) {
      if (!Ctx.Types.compatible(QualType(Decls[I - 1]), QualType(Decls[I]))) {
        Ub.report(UbKind::IncompatibleRedeclaration,
                  Ctx.Interner.str(F->Name), F->Loc, /*StaticFinding=*/true);
        break;
      }
    }
  }
}

void StaticChecker::checkIdentifierSignificance() {
  // Collect identifiers longer than the significance limit; quadratic
  // comparison is fine because such identifiers are vanishingly rare.
  std::vector<const std::string *> Long;
  for (Symbol Sym = 1; Sym < Ctx.Interner.size(); ++Sym) {
    const std::string &Name = Ctx.Interner.str(static_cast<Symbol>(Sym));
    if (Name.size() > SignificantChars)
      Long.push_back(&Name);
  }
  for (size_t I = 0; I < Long.size(); ++I) {
    for (size_t J = I + 1; J < Long.size(); ++J) {
      if (*Long[I] != *Long[J] &&
          Long[I]->compare(0, SignificantChars, *Long[J], 0,
                           SignificantChars) == 0) {
        Ub.report(UbKind::IdentifiersNotDistinct, "<file scope>",
                  SourceLoc(), /*StaticFinding=*/true);
        return;
      }
    }
  }
}

void StaticChecker::checkFunctionBody(const FunctionDecl *F) {
  CurFn = F;
  checkStmt(F->Body, Ctx.Interner.str(F->Name));
  CurFn = nullptr;
}

void StaticChecker::checkStmt(const Stmt *S, const std::string &FnName) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
      checkStmt(Sub, FnName);
    return;
  case StmtKind::Decl:
    for (const VarDecl *V : cast<DeclStmt>(S)->Decls)
      if (V->Init)
        checkExpr(V->Init, FnName);
    return;
  case StmtKind::Expr:
    checkExpr(cast<ExprStmt>(S)->E, FnName);
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    checkExpr(I->Cond, FnName);
    checkStmt(I->Then, FnName);
    checkStmt(I->Else, FnName);
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    checkExpr(W->Cond, FnName);
    checkStmt(W->Body, FnName);
    return;
  }
  case StmtKind::Do: {
    const auto *D = cast<DoStmt>(S);
    checkStmt(D->Body, FnName);
    checkExpr(D->Cond, FnName);
    return;
  }
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(S);
    checkStmt(F->Init, FnName);
    checkExpr(F->Cond, FnName);
    checkExpr(F->Inc, FnName);
    checkStmt(F->Body, FnName);
    return;
  }
  case StmtKind::Switch: {
    const auto *W = cast<SwitchStmt>(S);
    checkExpr(W->Cond, FnName);
    checkStmt(W->Body, FnName);
    return;
  }
  case StmtKind::Case:
    checkStmt(cast<CaseStmt>(S)->Sub, FnName);
    return;
  case StmtKind::Default:
    checkStmt(cast<DefaultStmt>(S)->Sub, FnName);
    return;
  case StmtKind::Label:
    checkStmt(cast<LabelStmt>(S)->Sub, FnName);
    return;
  case StmtKind::Return:
    checkExpr(cast<ReturnStmt>(S)->Value, FnName);
    return;
  case StmtKind::Break:
  case StmtKind::Continue:
  case StmtKind::Goto:
    return;
  }
}

/// Strips implicit and explicit pointer casts to find a null constant.
static bool isConstantNullPointer(const Expr *E, const TypeContext &Types) {
  while (true) {
    if (const auto *Imp = dynCast<ImplicitCastExpr>(E)) {
      E = Imp->Sub;
      continue;
    }
    if (const auto *Cast = dynCast<CastExpr>(E)) {
      if (Cast->TargetTy.Ty && Cast->TargetTy.Ty->isPointer()) {
        E = Cast->Sub;
        continue;
      }
    }
    break;
  }
  if (E->Ty.isNull() || !E->Ty.Ty->isIntegral())
    return false;
  auto Value = constEvalInt(E, Types);
  return Value && *Value == 0;
}

/// Finds a call to __cundef_va_arg (va_arg's expansion) beneath any
/// implicit or explicit casts on \p E.
static const CallExpr *vaArgCall(const Expr *E) {
  while (true) {
    if (const auto *Imp = dynCast<ImplicitCastExpr>(E)) {
      E = Imp->Sub;
      continue;
    }
    if (const auto *Cast = dynCast<CastExpr>(E)) {
      E = Cast->Sub;
      continue;
    }
    break;
  }
  const auto *Call = dynCast<CallExpr>(E);
  if (!Call)
    return nullptr;
  const Expr *Callee = Call->Callee;
  while (const auto *Imp = dynCast<ImplicitCastExpr>(Callee))
    Callee = Imp->Sub;
  const auto *Ref = dynCast<DeclRefExpr>(Callee);
  return Ref && Ref->Fn && Ref->Fn->BuiltinId == BuiltinVaArg ? Call
                                                              : nullptr;
}

void StaticChecker::checkExpr(const Expr *E, const std::string &FnName) {
  if (!E)
    return;
  switch (E->Kind) {
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->Op == UnaryOp::Deref &&
        isConstantNullPointer(U->Sub, Ctx.Types))
      Ub.report(UbKind::DerefNullConstant, FnName, U->Loc,
                /*StaticFinding=*/true);
    if (U->Op == UnaryOp::Deref) {
      // Catalog row 201 (C11 7.16.1.1p2): va_arg with a type argument
      // that is not a complete object type. The macro expands to
      // *(type*)__cundef_va_arg(...), so an incomplete pointee on that
      // cast is visible at translation time.
      const Expr *Sub = U->Sub;
      while (const auto *Imp = dynCast<ImplicitCastExpr>(Sub))
        Sub = Imp->Sub;
      if (const auto *Cast = dynCast<CastExpr>(Sub))
        if (Cast->TargetTy.Ty && Cast->TargetTy.Ty->isPointer() &&
            Cast->TargetTy.Ty->Pointee.Ty &&
            !Cast->TargetTy.Ty->Pointee.Ty->isCompleteObjectType() &&
            vaArgCall(Cast->Sub))
          Ub.report(static_cast<UbKind>(201), FnName, U->Loc,
                    /*StaticFinding=*/true);
    }
    checkExpr(U->Sub, FnName);
    return;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->Op == BinaryOp::Div || B->Op == BinaryOp::Rem) {
      auto Rhs = constEvalInt(B->Rhs, Ctx.Types);
      if (Rhs && *Rhs == 0)
        Ub.report(UbKind::DivByZeroConstant, FnName, B->Loc,
                  /*StaticFinding=*/true);
    }
    checkExpr(B->Lhs, FnName);
    checkExpr(B->Rhs, FnName);
    return;
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    if (A->Op == AssignOp::DivAssign || A->Op == AssignOp::RemAssign) {
      auto Rhs = constEvalInt(A->Rhs, Ctx.Types);
      if (Rhs && *Rhs == 0)
        Ub.report(UbKind::DivByZeroConstant, FnName, A->Loc,
                  /*StaticFinding=*/true);
    }
    checkExpr(A->Lhs, FnName);
    checkExpr(A->Rhs, FnName);
    return;
  }
  case ExprKind::Cond: {
    const auto *C = cast<CondExpr>(E);
    checkExpr(C->Cond, FnName);
    checkExpr(C->Then, FnName);
    checkExpr(C->Else, FnName);
    return;
  }
  case ExprKind::Cast:
    checkExpr(cast<CastExpr>(E)->Sub, FnName);
    return;
  case ExprKind::ImplicitCast:
    checkExpr(cast<ImplicitCastExpr>(E)->Sub, FnName);
    return;
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    // Catalog row 200 (C11 7.16.1.4p4): the variadic machinery used in
    // a function with a fixed argument list. va_arg's expansion is the
    // only way __cundef_va_arg appears, and it is only meaningful after
    // va_start — which this function's signature does not permit.
    if (CurFn && CurFn->FnTy && !CurFn->FnTy->Variadic && vaArgCall(C))
      Ub.report(static_cast<UbKind>(200), FnName, C->Loc,
                /*StaticFinding=*/true);
    checkExpr(C->Callee, FnName);
    for (const Expr *Arg : C->Args)
      checkExpr(Arg, FnName);
    return;
  }
  case ExprKind::Member:
    checkExpr(cast<MemberExpr>(E)->Base, FnName);
    return;
  case ExprKind::Index: {
    const auto *I = cast<IndexExpr>(E);
    checkExpr(I->Base, FnName);
    checkExpr(I->Index, FnName);
    return;
  }
  case ExprKind::Sizeof:
    // The operand of sizeof is not evaluated; nothing inside it can be
    // reached at run time, so nothing is statically undefined there.
    return;
  case ExprKind::InitList:
    for (const Expr *Sub : cast<InitListExpr>(E)->Inits)
      checkExpr(Sub, FnName);
    return;
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
  case ExprKind::StringLit:
  case ExprKind::DeclRef:
    return;
  }
}
