//===- ub/Report.h - Undefinedness reports ---------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured findings produced by the checkers, and the kcc-style
/// renderer reproducing the paper's report format (section 3.2):
///
///   ERROR! KCC encountered an error.
///   ===============================================
///   Error: 00016
///   Description: Unsequenced side effect on scalar
///   object with side effect of same object.
///   ===============================================
///   Function: main
///   Line: 3
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_UB_REPORT_H
#define CUNDEF_UB_REPORT_H

#include "support/SourceLoc.h"
#include "ub/UbKind.h"

#include <string>
#include <vector>

namespace cundef {

/// Static-analysis confidence attached to a finding. Dynamic findings
/// carry None (the run witnessed the behavior, so confidence is not a
/// question); static findings are Must (UB whenever the program point
/// is reached — the abstract state proves it) or May (UB on at least
/// one abstract path — a triage hint, never part of the verdict).
enum class FindingVerdict : uint8_t { None, Must, May };

/// One undefinedness finding.
struct UbReport {
  UbKind Kind = UbKind::None;
  std::string Description;
  std::string Function; ///< enclosing function name, or "<file scope>"
  SourceLoc Loc;
  bool StaticFinding = false; ///< found without executing the program
  FindingVerdict Verdict = FindingVerdict::None;
  /// Which static layer produced the finding ("syntactic", "nullness",
  /// "init", "interval"); empty for dynamic findings. Always a string
  /// literal, never owned.
  const char *Domain = "";

  UbReport() = default;
  UbReport(UbKind Kind, std::string Description, std::string Function,
           SourceLoc Loc, bool StaticFinding = false)
      : Kind(Kind), Description(std::move(Description)),
        Function(std::move(Function)), Loc(Loc),
        StaticFinding(StaticFinding) {}
};

/// Accumulates findings; shared between the static checker and the
/// dynamic machine.
class UbSink {
public:
  void report(UbReport Report) { Reports.push_back(std::move(Report)); }
  void report(UbKind Kind, std::string Function, SourceLoc Loc,
              bool StaticFinding = false) {
    Reports.emplace_back(Kind, ubShortDescription(Kind), std::move(Function),
                         Loc, StaticFinding);
  }

  bool empty() const { return Reports.empty(); }
  size_t size() const { return Reports.size(); }
  const std::vector<UbReport> &all() const { return Reports; }
  void clear() { Reports.clear(); }

  /// True if any finding has the given kind.
  bool has(UbKind Kind) const {
    for (const UbReport &R : Reports)
      if (R.Kind == Kind)
        return true;
    return false;
  }

private:
  std::vector<UbReport> Reports;
};

/// Renders one finding in the paper's kcc format.
std::string renderKccError(const UbReport &Report);

/// Renders every finding, separated by blank lines.
std::string renderKccErrors(const std::vector<UbReport> &Reports);

} // namespace cundef

#endif // CUNDEF_UB_REPORT_H
