//===- ub/Catalog.h - The catalog of C undefined behaviors -----*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's classification of undefined behavior in C (section 5.2.1):
/// 221 categories, of which 92 are statically detectable and 129 only
/// dynamically. Each row carries its C11 clause, its static/dynamic
/// class, whether it involves the standard library, and whether it is
/// implementation-specific (its undefinedness depends on
/// implementation-defined or unspecified choices, section 2.5).
///
/// Rows whose id matches a UbKind enumerator are behaviors our tools
/// detect and report under that code; the remaining rows complete the
/// inventory (they drive bench_catalog and the coverage statistics).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_UB_CATALOG_H
#define CUNDEF_UB_CATALOG_H

#include "ub/UbKind.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cundef {

struct CatalogEntry {
  uint16_t Id;
  const char *Clause; ///< C11 subclause, e.g. "6.5.5:5"
  char DynClass;      ///< 'D' dynamic-only, 'S' statically detectable
  char LibFlag;       ///< 'L' library behavior, '-' core language
  char ImplFlag;      ///< 'I' implementation-specific, '-' portable
  const char *Description;

  bool isDynamic() const { return DynClass == 'D'; }
  bool isStatic() const { return DynClass == 'S'; }
  bool isLibrary() const { return LibFlag == 'L'; }
  bool isImplSpecific() const { return ImplFlag == 'I'; }
};

/// The full catalog, ordered by id (ids are 1-based and contiguous).
const std::vector<CatalogEntry> &ubCatalog();

/// Row with the given id, or null.
const CatalogEntry *catalogEntry(uint16_t Id);

/// Aggregate statistics reproducing the paper's section 5.2.1 numbers.
struct CatalogStats {
  unsigned Total = 0;
  unsigned Static = 0;
  unsigned Dynamic = 0;
  /// Dynamic, non-library, non-implementation-specific (the paper's
  /// "42 dynamically undefined behaviors relating to the non-library
  /// part of the language that are not also implementation-specific").
  unsigned DynamicCorePortable = 0;
};

CatalogStats catalogStats();

/// Layer-neutral coverage annotation for the markdown renderer: one
/// cell per catalog row (index = id - 1), e.g. "covered" or
/// "wrong-code (reports 00019)", plus the summary counts. Produced by
/// the coverage harness (suites/CatalogCoverage.h, coverageColumn());
/// the ub layer only formats it.
struct CatalogCoverageColumn {
  std::vector<std::string> Cells;
  unsigned Covered = 0;
  unsigned WrongCode = 0;
  unsigned Missed = 0;
  unsigned Inexpressible = 0;
};

/// Renders the full catalog as a markdown reference document: an index
/// table (one row per entry: id, C11 clause, detection class, Juliet
/// class, coverage verdict, description) followed by one reference
/// section per entry. docs/UB_CATALOG.md is this string verbatim (kcc
/// --dump-catalog runs the quick coverage harness to fill the column);
/// the catalog_docs_fresh ctest keeps the two byte-identical — safe
/// because coverage verdicts are deterministic.
std::string renderCatalogMarkdown(const CatalogCoverageColumn *Coverage =
                                      nullptr);

} // namespace cundef

#endif // CUNDEF_UB_CATALOG_H
