//===- ub/UbKind.h - Detected undefined behavior kinds ---------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The undefined behaviors our tools can name. Each enumerator's value
/// is its stable error code, which is also its row id in the full
/// 221-entry catalog (ub/Catalog.h). UnsequencedSideEffect is
/// deliberately code 16 so that reports reproduce the paper's example
/// "Error: 00016" (section 3.2) byte-for-byte.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_UB_UBKIND_H
#define CUNDEF_UB_UBKIND_H

#include <cstdint>

namespace cundef {

enum class UbKind : uint16_t {
  None = 0,

  // Dynamic behaviors detected by the core machine.
  DivisionByZero = 1,          ///< C11 6.5.5p5
  ModuloByZero = 2,            ///< C11 6.5.5p5
  SignedOverflow = 3,          ///< C11 6.5p5
  ShiftExponentOutOfRange = 4, ///< C11 6.5.7p3
  ShiftOfNegative = 5,         ///< C11 6.5.7p4
  DerefNullPointer = 6,        ///< C11 6.5.3.2p4 / 6.3.2.3p3
  DerefVoidPointer = 7,        ///< C11 6.3.2.1p1
  DerefDanglingPointer = 8,    ///< C11 6.5.3.2p4
  ReadOutOfBounds = 9,         ///< C11 J.2 (array subscript out of range)
  WriteOutOfBounds = 10,       ///< C11 J.2
  UseAfterFree = 11,           ///< C11 7.22.3p1
  AccessDeadObject = 12,       ///< C11 6.2.4p2 (lifetime ended)
  PointerArithOutOfBounds = 13,    ///< C11 6.5.6p8
  PointerSubDifferentObjects = 14, ///< C11 6.5.6p9
  PointerCompareDifferentObjects = 15, ///< C11 6.5.8p5
  UnsequencedSideEffect = 16,  ///< C11 6.5p2 — the paper's Error 00016
  WriteThroughConstPointer = 17, ///< C11 6.7.3p6
  ModifyStringLiteral = 18,    ///< C11 6.4.5p7
  ReadIndeterminateValue = 19, ///< C11 6.2.6.1p5 / 6.3.2.1p2
  FreeInvalidPointer = 20,     ///< C11 7.22.3.3p2
  DoubleFree = 21,             ///< C11 7.22.3.3p2
  CallTypeMismatch = 22,       ///< C11 6.5.2.2p9
  CallArityMismatch = 23,      ///< C11 6.5.2.2p6
  MissingReturnValueUsed = 24, ///< C11 6.9.1p12
  StrictAliasingViolation = 25, ///< C11 6.5p7
  FloatToIntOverflow = 26,     ///< C11 6.3.1.4p1
  MemcpyOverlap = 27,          ///< C11 7.24.2.1p2
  NullPointerArithmetic = 28,  ///< C11 6.5.6p8
  DerefOnePastEnd = 29,        ///< C11 6.5.6p8 (deref of one-past pointer)
  UninitializedPointerUse = 30, ///< C11 6.3.2.1p2
  IntegerOverflowInConversion = 31, ///< trap on exotic targets; see catalog
  NegativeShiftCount = 32,     ///< C11 6.5.7p3
  StringFunctionBadArgument = 33, ///< C11 7.24.1p2 (invalid string arg)
  VaArgTypeMismatch = 34,      ///< C11 7.16.1.1p2 (modelled for printf)
  RecursionLimitExceeded = 35, ///< implementation limit; reported distinctly
  StackAddressEscape = 36,     ///< C11 6.2.4p2 (returned local address used)
  ReallocInvalidPointer = 37,  ///< C11 7.22.3.5p3
  ZeroSizeAllocationUse = 38,  ///< C11 7.22.3p1 (use of zero-size result)
  FlexibleComparePadding = 39, ///< C11 6.2.6.2 (padding byte comparison)

  // Statically detectable behaviors (reported by the static checker;
  // the paper classifies these as statically undefined, section 5.2.1).
  ArraySizeNotPositive = 40,   ///< C11 6.7.6.2p1&5 — the paper's 3.2 example
  FunctionTypeQualified = 41,  ///< C11 6.7.3p9
  UseOfVoidExpressionValue = 42, ///< C11 6.3.2.2p1
  AssignToConstLvalue = 43,    ///< C11 6.5.16p2 (via 6.7.3p6)
  IncompatibleRedeclaration = 44, ///< C11 6.2.7p2
  IdentifiersNotDistinct = 45, ///< C11 6.4.2p6 — the paper's footnote 1
  MainWrongSignature = 46,     ///< C11 5.1.2.2.1p1
  DerefNullConstant = 47,      ///< *(T*)0 spotted statically
  DivByZeroConstant = 48,      ///< x / 0 with a constant 0
  ConstWriteStatic = 49,       ///< write through const-qualified type
  IncompleteTypeObject = 50,   ///< C11 6.7p7 (object of incomplete type)
  ReturnVoidValue = 51,        ///< return e; in void function, C11 6.8.6.4p1
};

/// Stable error code (the catalog row id).
inline uint16_t ubCode(UbKind Kind) { return static_cast<uint16_t>(Kind); }

/// Human-readable description used in kcc-style reports.
const char *ubShortDescription(UbKind Kind);

/// The six Juliet benchmark classes (paper Figure 2 rows).
enum class JulietClass : uint8_t {
  InvalidPointer,
  DivideByZero,
  BadFree,
  UninitializedMemory,
  BadFunctionCall,
  IntegerOverflow,
};

const char *julietClassName(JulietClass Class);

/// Maps a detected UbKind to the Juliet class it evidences, if any.
/// Returns true and sets \p Class when the kind belongs to a class.
bool julietClassOf(UbKind Kind, JulietClass &Class);

} // namespace cundef

#endif // CUNDEF_UB_UBKIND_H
