//===- ub/StaticChecks.h - Static undefinedness checks ---------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static undefinedness checker: flags the statically detectable
/// catalog behaviors that are visible by inspecting the analyzed AST
/// (constant null dereference, constant division by zero, incompatible
/// redeclarations, identifiers that collide in their significant
/// characters). Together with the findings Sema records while typing
/// (void-value use, const assignment, bad array lengths, ...), this is
/// the "compile-time" half of kcc's detection (paper Figure 3's Static
/// column).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_UB_STATICCHECKS_H
#define CUNDEF_UB_STATICCHECKS_H

#include "ast/Ast.h"
#include "ub/Report.h"

namespace cundef {

class StaticChecker {
public:
  StaticChecker(AstContext &Ctx, UbSink &Ub) : Ctx(Ctx), Ub(Ub) {}

  /// Runs every check over the analyzed translation unit.
  void run();

private:
  void checkFunctionBody(const FunctionDecl *F);
  void checkExpr(const Expr *E, const std::string &FnName);
  void checkStmt(const Stmt *S, const std::string &FnName);
  void checkRedeclarations();
  void checkIdentifierSignificance();

  AstContext &Ctx;
  UbSink &Ub;
  /// Function whose body is being walked (null at file scope); the
  /// va_start/va_arg checks need its signature.
  const FunctionDecl *CurFn = nullptr;
};

} // namespace cundef

#endif // CUNDEF_UB_STATICCHECKS_H
