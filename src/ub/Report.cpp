//===- ub/Report.cpp - Undefinedness reports -------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "ub/Report.h"

#include "support/Strings.h"

using namespace cundef;

std::string cundef::renderKccError(const UbReport &Report) {
  std::string Out;
  Out += "ERROR! KCC encountered an error.\n";
  Out += "===============================================\n";
  Out += strFormat("Error: %05u\n", ubCode(Report.Kind));
  Out += strFormat("Description: %s\n", Report.Description.c_str());
  Out += "===============================================\n";
  Out += strFormat("Function: %s\n", Report.Function.c_str());
  Out += strFormat("Line: %u\n", Report.Loc.Line);
  return Out;
}

std::string cundef::renderKccErrors(const std::vector<UbReport> &Reports) {
  std::string Out;
  for (const UbReport &R : Reports) {
    if (!Out.empty())
      Out += "\n";
    Out += renderKccError(R);
  }
  return Out;
}
