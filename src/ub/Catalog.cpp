//===- ub/Catalog.cpp - The catalog of C undefined behaviors ---------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// Row order: ids 1-39 are the dynamically detected kinds (UbKind), ids
// 40-51 the statically detected kinds, ids 52-69 further core-language
// dynamic behaviors, ids 70-141 library dynamic behaviors, and ids
// 142-221 statically detectable behaviors. The aggregate counts
// reproduce the paper's section 5.2.1: 221 total, 92 static, 129
// dynamic, and exactly 42 dynamic non-library non-implementation-
// specific behaviors (the ones the custom suite guarantees a test for).
//
//===----------------------------------------------------------------------===//

#include "ub/Catalog.h"

#include "support/Strings.h"

#include <cassert>

using namespace cundef;

const char *cundef::ubShortDescription(UbKind Kind) {
  const CatalogEntry *Entry = catalogEntry(ubCode(Kind));
  return Entry ? Entry->Description : "Unknown undefined behavior.";
}

const char *cundef::julietClassName(JulietClass Class) {
  switch (Class) {
  case JulietClass::InvalidPointer:      return "Use of invalid pointer";
  case JulietClass::DivideByZero:        return "Division by zero";
  case JulietClass::BadFree:             return "Bad argument to free()";
  case JulietClass::UninitializedMemory: return "Uninitialized memory";
  case JulietClass::BadFunctionCall:     return "Bad function call";
  case JulietClass::IntegerOverflow:     return "Integer overflow";
  }
  return "?";
}

bool cundef::julietClassOf(UbKind Kind, JulietClass &Class) {
  switch (Kind) {
  case UbKind::DerefNullPointer:
  case UbKind::DerefVoidPointer:
  case UbKind::DerefDanglingPointer:
  case UbKind::ReadOutOfBounds:
  case UbKind::WriteOutOfBounds:
  case UbKind::UseAfterFree:
  case UbKind::AccessDeadObject:
  case UbKind::PointerArithOutOfBounds:
  case UbKind::DerefOnePastEnd:
  case UbKind::UninitializedPointerUse:
  case UbKind::StackAddressEscape:
  case UbKind::DerefNullConstant:
  case UbKind::StringFunctionBadArgument:
  case UbKind::MemcpyOverlap:
    Class = JulietClass::InvalidPointer;
    return true;
  case UbKind::DivisionByZero:
  case UbKind::ModuloByZero:
  case UbKind::DivByZeroConstant:
    Class = JulietClass::DivideByZero;
    return true;
  case UbKind::FreeInvalidPointer:
  case UbKind::DoubleFree:
  case UbKind::ReallocInvalidPointer:
    Class = JulietClass::BadFree;
    return true;
  case UbKind::ReadIndeterminateValue:
    Class = JulietClass::UninitializedMemory;
    return true;
  case UbKind::CallTypeMismatch:
  case UbKind::CallArityMismatch:
  case UbKind::VaArgTypeMismatch:
    Class = JulietClass::BadFunctionCall;
    return true;
  case UbKind::SignedOverflow:
  case UbKind::ShiftExponentOutOfRange:
  case UbKind::ShiftOfNegative:
  case UbKind::NegativeShiftCount:
  case UbKind::IntegerOverflowInConversion:
    Class = JulietClass::IntegerOverflow;
    return true;
  default:
    return false;
  }
}

// clang-format off
static const CatalogEntry CatalogRows[] = {
  // --- Dynamically detected kinds (UbKind ids 1-39) --------------------
  {  1, "6.5.5:5",    'D', '-', '-', "Division by zero."},
  {  2, "6.5.5:5",    'D', '-', '-', "Remainder by zero."},
  {  3, "6.5:5",      'D', '-', '-', "Signed integer overflow in arithmetic."},
  {  4, "6.5.7:3",    'D', '-', '-', "Shift count negative or at least the width of the promoted operand."},
  {  5, "6.5.7:4",    'D', '-', '-', "Left shift of a negative value, or shifted value not representable."},
  {  6, "6.5.3.2:4",  'D', '-', '-', "Dereference of a null pointer."},
  {  7, "6.3.2.1:1",  'D', '-', '-', "Dereference of a pointer to void."},
  {  8, "6.5.3.2:4",  'D', '-', '-', "Dereference of a dangling pointer (object no longer live)."},
  {  9, "6.5.6:8",    'D', '-', '-', "Read outside the bounds of an object."},
  { 10, "6.5.6:8",    'D', '-', '-', "Write outside the bounds of an object."},
  { 11, "7.22.3:1",   'D', 'L', '-', "Use of allocated storage after it has been freed."},
  { 12, "6.2.4:2",    'D', '-', '-', "Access to an object whose lifetime has ended."},
  { 13, "6.5.6:8",    'D', '-', '-', "Pointer arithmetic producing a pointer not into (or one past) the same object."},
  { 14, "6.5.6:9",    'D', '-', '-', "Subtraction of pointers into different objects."},
  { 15, "6.5.8:5",    'D', '-', '-', "Relational comparison of pointers into different objects."},
  { 16, "6.5:2",      'D', '-', '-', "Unsequenced side effect on scalar\nobject with side effect of same object."},
  { 17, "6.7.3:6",    'D', '-', '-', "Write to an object defined const through a non-const lvalue."},
  { 18, "6.4.5:7",    'D', '-', '-', "Attempt to modify a string literal."},
  { 19, "6.2.6.1:5",  'D', '-', '-', "Use of an indeterminate (uninitialized) value."},
  { 20, "7.22.3.3:2", 'D', 'L', '-', "Argument to free() is not a pointer returned by an allocation function."},
  { 21, "7.22.3.3:2", 'D', 'L', '-', "Pointer passed to free() twice (double free)."},
  { 22, "6.5.2.2:9",  'D', '-', '-', "Function called through a pointer of incompatible type."},
  { 23, "6.5.2.2:6",  'D', '-', '-', "Function called with the wrong number of arguments."},
  { 24, "6.9.1:12",   'D', '-', '-', "Value of a function call used although the function returned without a value."},
  { 25, "6.5:7",      'D', '-', '-', "Object accessed through an lvalue of a disallowed (incompatible) type."},
  { 26, "6.3.1.4:1",  'D', '-', '-', "Conversion of a floating value to an integer type that cannot represent it."},
  { 27, "7.24.2.1:2", 'D', 'L', '-', "memcpy() between overlapping objects."},
  { 28, "6.5.6:8",    'D', '-', '-', "Arithmetic on a null pointer."},
  { 29, "6.5.6:8",    'D', '-', '-', "Dereference of a one-past-the-end pointer."},
  { 30, "6.3.2.1:2",  'D', '-', '-', "Use of an uninitialized pointer value."},
  { 31, "6.3.1.3:3",  'D', '-', 'I', "Integer conversion producing a value outside the representable range (trapping implementation)."},
  { 32, "6.5.7:3",    'D', '-', '-', "Shift by a negative count."},
  { 33, "7.24.1:2",   'D', 'L', '-', "Invalid (non-string or out-of-bounds) argument to a string function."},
  { 34, "7.16.1.1:2", 'D', 'L', '-', "Variadic argument accessed with an incompatible type (printf-style)."},
  { 35, "5.2.4.1",    'D', '-', 'I', "Program exceeds an implementation limit (call depth)."},
  { 36, "6.2.4:2",    'D', '-', '-', "Address of an automatic object used after its function returned."},
  { 37, "7.22.3.5:3", 'D', 'L', '-', "Argument to realloc() does not match a live allocation."},
  { 38, "7.22.3:1",   'D', 'L', '-', "Dereference of the result of a zero-size allocation."},
  { 39, "6.2.6.2:5",  'D', '-', 'I', "Value comparison relying on padding bytes or trap patterns."},
  // --- Statically detected kinds (UbKind ids 40-51) --------------------
  { 40, "6.7.6.2:1",  'S', '-', '-', "Array declared with non-positive length."},
  { 41, "6.7.3:9",    'S', '-', '-', "Function type specified with type qualifiers."},
  { 42, "6.3.2.2:1",  'S', '-', '-', "Value of a void expression used or converted."},
  { 43, "6.5.16:2",   'S', '-', '-', "Assignment to an lvalue with const-qualified type."},
  { 44, "6.2.7:2",    'S', '-', '-', "Declarations of the same entity with incompatible types."},
  { 45, "6.4.2:6",    'S', '-', '-', "Identifiers that differ only in non-significant characters."},
  { 46, "5.1.2.2.1:1",'S', '-', 'I', "main declared with a non-conforming signature."},
  { 47, "6.5.3.2:4",  'S', '-', '-', "Dereference of a constant null pointer expression."},
  { 48, "6.5.5:5",    'S', '-', '-', "Division by a constant zero."},
  { 49, "6.7.3:6",    'S', '-', '-', "Write through a const-qualified type visible at translation time."},
  { 50, "6.7:7",      'S', '-', '-', "Object declared with an incomplete type."},
  { 51, "6.8.6.4:1",  'S', '-', '-', "return with an expression in a function returning void."},
  // --- Further core-language dynamic behaviors (52-69) -----------------
  { 52, "6.2.4:2",    'D', '-', '-', "An object is referred to outside of its lifetime."},
  { 53, "6.2.4:2",    'D', '-', '-', "The value of a pointer to an object whose lifetime has ended is used."},
  { 54, "6.2.6.1:5",  'D', '-', '-', "A trap representation is read by an lvalue expression that does not have character type."},
  { 55, "6.2.6.1:5",  'D', '-', '-', "A trap representation is produced by a side effect through an lvalue without character type."},
  { 56, "6.3.1.5:1",  'D', '-', 'I', "Demotion of a real floating value that cannot be represented in the new type."},
  { 57, "6.3.2.1:1",  'D', '-', '-', "An lvalue with incomplete type is used where the value of an object is required."},
  { 58, "6.3.2.1:2",  'D', '-', '-', "An uninitialized automatic object that could have been declared register is used."},
  { 59, "6.3.2.3:7",  'D', '-', 'I', "A converted pointer is incorrectly aligned for the referenced type."},
  { 60, "6.3.2.3:8",  'D', '-', '-', "A converted function pointer is used to call a function of incompatible type."},
  { 61, "6.5:5",      'D', '-', '-', "An exceptional condition occurs during the evaluation of an expression."},
  { 62, "6.5.3.2:4",  'D', '-', '-', "The unary * operator is applied to an invalid pointer value."},
  { 63, "6.5.6:8",    'D', '-', '-', "Array subscripting applies to a pointer that does not point into an array object."},
  { 64, "6.5.6:8",    'D', '-', '-', "An array subscript is out of range, even if the storage appears accessible."},
  { 65, "6.5.16.1:3", 'D', '-', '-', "An object is assigned to an inexactly overlapping or incompatible exactly overlapping object."},
  { 66, "6.7.6.2:5",  'D', '-', 'I', "A variable length array has a non-positive size at evaluation time."},
  { 67, "6.5.2.2:9",  'D', '-', '-', "A function is defined with a type incompatible with the (pointed-to) type of the call."},
  { 68, "6.2.6.1:6",  'D', '-', '-', "The value of a structure padding byte or unnamed union member is used."},
  { 69, "6.8.6.4:4",  'D', '-', 'I', "A longjmp-style non-local transfer references a dead activation (modelled)."},
  // --- Library dynamic behaviors (70-141) -------------------------------
  { 70, "7.1.4:1",    'D', 'L', '-', "A library function is called with an invalid argument value."},
  { 71, "7.1.4:1",    'D', 'L', '-', "A library function is called with a null pointer where an object is required."},
  { 72, "7.21.6.1:9", 'D', 'L', '-', "printf conversion specification has no corresponding argument."},
  { 73, "7.21.6.1:9", 'D', 'L', '-', "printf argument type does not match its conversion specification."},
  { 74, "7.21.6.1:5", 'D', 'L', '-', "printf field width or precision argument is not int."},
  { 75, "7.22.3.3:2", 'D', 'L', '-', "free() argument points into, not at the start of, an allocated object."},
  { 76, "7.22.3.5:3", 'D', 'L', '-', "realloc() argument was freed by an earlier call."},
  { 77, "7.24.2.1:2", 'D', 'L', '-', "memcpy source or destination does not point to a sufficiently large object."},
  { 78, "7.24.2.2:2", 'D', 'L', '-', "memmove source or destination is not a valid object pointer."},
  { 79, "7.24.2.3:2", 'D', 'L', '-', "strcpy destination array is too small for the source string."},
  { 80, "7.24.2.3:2", 'D', 'L', '-', "strcpy source is not a null-terminated string."},
  { 81, "7.24.3.1:2", 'D', 'L', '-', "strcat destination is not a null-terminated string or is too small."},
  { 82, "7.24.4.2:2", 'D', 'L', '-', "strcmp argument is not a null-terminated string."},
  { 83, "7.24.5.2:2", 'D', 'L', '-', "strchr argument is not a null-terminated string."},
  { 84, "7.24.6.1:2", 'D', 'L', '-', "strlen argument is not a null-terminated string."},
  { 85, "7.24.6.1:2", 'D', 'L', '-', "strlen reads past the end of the argument object."},
  { 86, "7.21.7.3:2", 'D', 'L', '-', "A read is performed on a stream after writing without an intervening seek."},
  { 87, "7.21.5.3:7", 'D', 'L', '-', "An output operation targets a stream opened only for reading."},
  { 88, "7.21.3:4",   'D', 'L', '-', "A FILE object is used after the stream was closed."},
  { 89, "7.22.1.4:5", 'D', 'L', '-', "strtol-family endptr result is used although no conversion occurred."},
  { 90, "7.22.2.1:2", 'D', 'L', '-', "rand()-derived value is reduced with a modulus of zero."},
  { 91, "7.22.4.6:2", 'D', 'L', '-', "getenv result string is modified by the program."},
  { 92, "7.22.5.1:4", 'D', 'L', '-', "bsearch comparison function modifies the array being searched."},
  { 93, "7.22.5.2:4", 'D', 'L', '-', "qsort comparison function returns inconsistent results."},
  { 94, "7.22.5:1",   'D', 'L', '-', "bsearch/qsort base pointer does not point to the start of an array object."},
  { 95, "7.16.1.1:2", 'D', 'L', '-', "va_arg is invoked with a type incompatible with the actual next argument."},
  { 96, "7.16.1.4:4", 'D', 'L', '-', "va_start is invoked twice without an intervening va_end."},
  { 97, "7.16.1:3",   'D', 'L', '-', "A va_list is used after va_end."},
  { 98, "7.16.1.1:3", 'D', 'L', '-', "va_arg is invoked when there is no next argument."},
  { 99, "7.13.2.1:2", 'D', 'L', '-', "longjmp references an environment whose function has returned."},
  {100, "7.13.2.1:2", 'D', 'L', '-', "longjmp is called with no prior matching setjmp invocation."},
  {101, "7.21.6.2:10",'D', 'L', '-', "scanf result pointer argument has an incompatible type."},
  {102, "7.21.6.2:12",'D', 'L', '-', "scanf receiving object is too small for the converted input."},
  {103, "7.22.3.4:2", 'D', 'L', '-', "malloc size computation wrapped around, allocating too little storage."},
  {104, "7.24.2.4:2", 'D', 'L', '-', "strncpy source and destination overlap."},
  {105, "7.24.2.1:2", 'D', 'L', '-', "memset length exceeds the destination object size."},
  {106, "7.24.4.4:2", 'D', 'L', '-', "memcmp operand extends past the end of its object."},
  {107, "7.21.7.6:2", 'D', 'L', '-', "ungetc pushback is relied upon after a repositioning operation."},
  {108, "7.22.4.4:2", 'D', 'L', '-', "exit() is called more than once (re-entered during atexit handling)."},
  {109, "7.22.4.4:3", 'D', 'L', '-', "An atexit handler calls exit()."},
  {110, "7.21.4.1:2", 'D', 'L', '-', "remove() is applied to an open file (modelled)."},
  {111, "7.26.2:1",   'D', 'L', '-', "A signal handler calls a non-async-signal-safe library function."},
  {112, "7.14.1.1:3", 'D', 'L', '-', "A signal handler refers to an object with static storage duration that is not volatile sig_atomic_t."},
  {113, "7.14.1.1:5", 'D', 'L', '-', "A computational-exception signal handler returns normally."},
  {114, "7.21.6.1:2", 'D', 'L', '-', "printf format string is not a valid multibyte character sequence."},
  {115, "7.21.6.1:4", 'D', 'L', '-', "printf %n target does not point to a writable int object."},
  {116, "7.22.1.3:1", 'D', 'L', '-', "strtod endptr is dereferenced although conversion consumed no characters."},
  {117, "7.24.5.7:2", 'D', 'L', '-', "strstr needle is not a null-terminated string."},
  {118, "7.24.5.8:2", 'D', 'L', '-', "strtok is called with a null first argument before any non-null call."},
  {119, "7.22.3.2:2", 'D', 'L', '-', "calloc element size and count multiplication overflows (modelled)."},
  {120, "7.21.7.2:2", 'D', 'L', '-', "gets-style read overflows the destination buffer."},
  {121, "7.24.6.2:2", 'D', 'L', '-', "memset value argument is converted to unsigned char with loss (trap model)."},
  {122, "7.21.6.3:2", 'D', 'L', '-', "vprintf is called with a va_list that was already consumed."},
  {123, "7.22.5.1:2", 'D', 'L', '-', "bsearch array is not sorted according to the comparison function."},
  {124, "7.16.1.4:3", 'D', 'L', '-', "va_start parameter parmN is declared register or with array/function type."},
  {125, "7.21.5.2:2", 'D', 'L', '-', "fflush is applied to an input stream."},
  {126, "7.22.4.1:2", 'D', 'L', '-', "abort() re-raised from its own handler loops indefinitely (modelled)."},
  {127, "7.21.9.2:4", 'D', 'L', '-', "fseek offset is not a value previously returned by ftell (text stream)."},
  {128, "7.24.1:2",   'D', 'L', '-', "A string function receives a pointer one past the end as its start."},
  {129, "7.22.3.3:2", 'D', 'L', '-', "free() argument points at a static-storage object."},
  {130, "7.22.3.3:2", 'D', 'L', '-', "free() argument points at an automatic-storage object."},
  {131, "7.21.6.1:8", 'D', 'L', '-', "printf %s argument is not a pointer to a null-terminated string."},
  {132, "7.21.6.1:8", 'D', 'L', '-', "printf %p argument is not a pointer to void (strictly)."},
  {133, "7.24.2.2:2", 'D', 'L', '-', "memmove length exceeds the size of either object."},
  {134, "7.22.1.2:2", 'D', 'L', '-', "atoi argument does not represent an integer (result unspecified; trap model)."},
  {135, "7.24.4.5:2", 'D', 'L', '-', "strncmp length extends past a non-terminated operand."},
  {136, "7.21.1:6",   'D', 'L', '-', "A stream is used where its FILE pointer value was copied by value."},
  {137, "7.22.3.5:3", 'D', 'L', '-', "realloc() argument points into the middle of an allocation."},
  {138, "7.24.3.2:2", 'D', 'L', '-', "strncat writes past the end of the destination array."},
  {139, "7.21.6.5:2", 'D', 'L', '-', "snprintf output and format/argument objects overlap."},
  {140, "7.22.5.2:2", 'D', 'L', '-', "qsort element size does not match the actual element type."},
  {141, "7.16.2:1",   'D', 'L', '-', "A va_list is passed to a function and also used by the caller afterwards."},
  // --- Statically detectable behaviors (142-221) -------------------------
  {142, "5.1.1.2:1",  'S', '-', '-', "A non-empty source file does not end in a newline or ends in a backslash."},
  {143, "5.2.1:1",    'S', '-', 'I', "A character not in the basic source character set appears outside a literal."},
  {144, "6.10.1:4",   'S', '-', '-', "The token 'defined' is generated during expansion of a #if expression."},
  {145, "6.10.2:4",   'S', '-', '-', "A #include directive does not match one of the header-name forms."},
  {146, "6.10.3:11",  'S', '-', '-', "A macro argument list is terminated by end of file."},
  {147, "6.10.3.2:2", 'S', '-', '-', "The # operator result is not a valid string literal."},
  {148, "6.10.3.3:3", 'S', '-', '-', "The ## operator result is not a valid preprocessing token."},
  {149, "6.10.4:3",   'S', '-', '-', "The #line directive specifies line zero or a number over 2147483647."},
  {150, "6.10.6:1",   'S', '-', 'I', "A non-STDC #pragma causes translation to fail (modelled as undefined)."},
  {151, "6.10.8:4",   'S', '-', '-', "A predefined macro name (__LINE__ etc.) is defined or undefined."},
  {152, "6.4.7:3",    'S', '-', '-', "A header name contains a ', \\, \", //, or /* character sequence."},
  {153, "6.4.4.1:6",  'S', '-', '-', "An integer constant is too large for any representable type."},
  {154, "6.4.5:7",    'S', '-', '-', "String literal concatenation mixes incompatible encoding prefixes."},
  {155, "6.4.9:3",    'S', '-', '-', "A // comment contains a backslash-newline ambiguity (modelled)."},
  {156, "6.2.2:7",    'S', '-', '-', "An identifier has both internal and external linkage in one translation unit."},
  {157, "6.2.2:2",    'S', '-', '-', "The same identifier has external linkage but incompatible declarations across units."},
  {158, "6.7:3",      'S', '-', '-', "An identifier with no linkage is declared twice in the same scope."},
  {159, "6.7.4:6",    'S', '-', '-', "An inline function with external linkage defines a modifiable static object."},
  {160, "6.7.4:3",    'S', '-', '-', "An inline definition references an identifier with internal linkage."},
  {161, "6.9:5",      'S', '-', '-', "An identifier with external linkage is used but has no external definition."},
  {162, "6.9:3",      'S', '-', '-', "There is more than one external definition for the same identifier."},
  {163, "6.9.1:2",    'S', '-', '-', "A function is defined with a declarator that is not a function declarator."},
  {164, "6.9.1:6",    'S', '-', '-', "A parameter in a function definition has no declared type (identifier list)."},
  {165, "6.7.2.1:2",  'S', '-', '-', "A structure has no named members."},
  {166, "6.7.2.1:18", 'S', '-', '-', "A flexible array member appears anywhere but last, or in a union."},
  {167, "6.7.2.2:2",  'S', '-', '-', "An enumerator value is outside the range of int."},
  {168, "6.7.2.3:2",  'S', '-', '-', "A tag is redeclared as a different kind of type in the same scope."},
  {169, "6.7.3:2",    'S', '-', '-', "restrict qualifies a non-pointer or a pointer to function type."},
  {170, "6.7.3:9",    'S', '-', '-', "A qualified function type is produced through a typedef."},
  {171, "6.7.5:2",    'S', '-', '-', "An alignment specifier appears where prohibited (modelled for C11)."},
  {172, "6.7.6.1:1",  'S', '-', '-', "A pointer declarator binds to a type with invalid qualification."},
  {173, "6.7.6.3:3",  'S', '-', '-', "A parameter is declared with void type but is not the only parameter."},
  {174, "6.7.9:2",    'S', '-', '-', "An initializer attempts to provide a value for an object not contained in the entity."},
  {175, "6.7.9:3",    'S', '-', '-', "A static-duration object is initialized by a non-constant expression."},
  {176, "6.7.9:8",    'S', '-', '-', "An initializer for a scalar is a brace-enclosed list with more than one item."},
  {177, "6.8.1:3",    'S', '-', '-', "The same label name is defined twice in one function."},
  {178, "6.8.1:2",    'S', '-', '-', "A case or default label appears outside a switch statement."},
  {179, "6.8.4.2:3",  'S', '-', '-', "Two case labels of one switch have the same constant value."},
  {180, "6.8.6.1:1",  'S', '-', '-', "A goto targets a label that is not defined in the enclosing function."},
  {181, "6.8.6.2:1",  'S', '-', '-', "A continue statement appears outside of a loop body."},
  {182, "6.8.6.3:1",  'S', '-', '-', "A break statement appears outside of a loop or switch body."},
  {183, "6.8.6.4:1",  'S', '-', '-', "return without an expression in a function returning a value (used by caller)."},
  {184, "6.5.2.2:2",  'S', '-', '-', "A call supplies fewer arguments than the prototype has parameters."},
  {185, "6.5.2.2:2",  'S', '-', '-', "A call supplies more arguments than a non-variadic prototype allows."},
  {186, "6.5.3.4:1",  'S', '-', '-', "sizeof is applied to a function designator or an incomplete type."},
  {187, "6.5.4:2",    'S', '-', '-', "A cast specifies a non-scalar type where only scalar conversions exist."},
  {188, "6.5.16.1:1", 'S', '-', '-', "Assignment between incompatible pointer types without a cast."},
  {189, "6.5.1:2",    'S', '-', '-', "An undeclared identifier is used in an expression (pre-C99 implicit int)."},
  {190, "6.5.2.1:1",  'S', '-', '-', "Array subscripting applies to operands that are not pointer and integer."},
  {191, "6.5.3.2:1",  'S', '-', '-', "The address-of operator is applied to a non-lvalue or register object."},
  {192, "7.1.2:4",    'S', 'L', '-', "A standard header is included while a macro with the same name as a keyword is defined."},
  {193, "7.1.3:2",    'S', 'L', '-', "A reserved identifier (leading underscore and capital) is declared."},
  {194, "7.1.3:2",    'S', 'L', '-', "An identifier reserved for the library (str-prefix etc.) is defined with external linkage."},
  {195, "7.1.4:2",    'S', 'L', '-', "A library function name is redefined as a macro before including its header."},
  {196, "7.1.4:1",    'S', 'L', '-', "A library function is declared by the program with an incompatible type."},
  {197, "7.2.1.1:2",  'S', 'L', '-', "The assert macro argument does not have a scalar type."},
  {198, "7.13:2",     'S', 'L', '-', "setjmp appears in a context other than the four allowed comparison forms."},
  {199, "7.13.1.1:4", 'S', 'L', '-', "setjmp's jmp_buf argument is not an lvalue of jmp_buf type."},
  {200, "7.16.1.4:4", 'S', 'L', '-', "va_start is used in a function with a fixed argument list."},
  {201, "7.16.1.1:4", 'S', 'L', '-', "va_arg type argument is not a complete object type name."},
  {202, "7.19:2",     'S', 'L', '-', "offsetof is applied to a bit-field member."},
  {203, "7.19:2",     'S', 'L', '-', "offsetof member designator does not designate a member of the type."},
  {204, "7.21.6.1:2", 'S', 'L', '-', "printf format string contains an invalid conversion specifier."},
  {205, "7.21.6.2:3", 'S', 'L', '-', "scanf format string contains an invalid conversion specifier."},
  {206, "7.22:3",     'S', 'L', '-', "NULL is redefined by the program to a non-null value."},
  {207, "7.24:2",     'S', 'L', '-', "A string-header function is called through a mismatched prototype declared locally."},
  {208, "7.26:1",     'S', 'L', '-', "A future-library-direction reserved name is used (str/mem/wcs prefix)."},
  {209, "6.10.8.1:1", 'S', '-', '-', "__STDC__ is the subject of #define or #undef."},
  {210, "6.10.8.1:1", 'S', '-', '-', "__FILE__ or __LINE__ is the subject of #define or #undef."},
  {211, "6.4.2.1:7",  'S', '-', 'I', "An identifier uses universal character names outside the allowed ranges."},
  {212, "6.4.3:2",    'S', '-', '-', "A universal character name designates a character in the basic set."},
  {213, "6.4.4.4:9",  'S', '-', 'I', "A character constant contains more than one character (value model)."},
  {214, "6.4.4.2:7",  'S', '-', 'I', "A floating constant exceeds the range of its type at translation time."},
  {215, "6.2.5:1",    'S', '-', '-', "An object type is completed inconsistently across its uses."},
  {216, "6.2.1:4",    'S', '-', '-', "A declaration in an inner scope hides one it then forward-references."},
  {217, "6.11.5:1",   'S', '-', '-', "A storage-class specifier appears in other than the first declaration position (obsolescent; modelled as undefined)."},
  {218, "6.11.6:1",   'S', '-', '-', "A function declarator uses an empty identifier list in a definition (obsolescent; modelled)."},
  {219, "6.7.6.2:1",  'S', '-', '-', "An array declarator uses a qualifier or static outside a parameter list."},
  {220, "6.5.2.5:3",  'S', '-', '-', "A compound literal appears with a function type or an incomplete type."},
  {221, "4:2",        'S', '-', '-', "A #error directive survives to execution semantics (constraint modelled as undefined)."},
};
// clang-format on

const std::vector<CatalogEntry> &cundef::ubCatalog() {
  static const std::vector<CatalogEntry> Rows(std::begin(CatalogRows),
                                              std::end(CatalogRows));
  return Rows;
}

const CatalogEntry *cundef::catalogEntry(uint16_t Id) {
  const std::vector<CatalogEntry> &Rows = ubCatalog();
  if (Id == 0 || Id > Rows.size())
    return nullptr;
  const CatalogEntry *Entry = &Rows[Id - 1];
  assert(Entry->Id == Id && "catalog ids must be contiguous");
  return Entry;
}

CatalogStats cundef::catalogStats() {
  CatalogStats Stats;
  for (const CatalogEntry &Entry : ubCatalog()) {
    ++Stats.Total;
    if (Entry.isStatic())
      ++Stats.Static;
    if (Entry.isDynamic())
      ++Stats.Dynamic;
    if (Entry.isDynamic() && !Entry.isLibrary() && !Entry.isImplSpecific())
      ++Stats.DynamicCorePortable;
  }
  return Stats;
}

//===----------------------------------------------------------------------===//
// Markdown reference rendering (docs/UB_CATALOG.md).
//===----------------------------------------------------------------------===//

namespace {

/// Juliet class name for a catalog row, or null when the row has no
/// UbKind enumerator / no Juliet class.
const char *julietClassForRow(uint16_t Id) {
  // Rows 1..51 mirror the UbKind enumerators (ub/UbKind.h).
  if (Id == 0 || Id > static_cast<uint16_t>(UbKind::ReturnVoidValue))
    return nullptr;
  JulietClass Class;
  if (!julietClassOf(static_cast<UbKind>(Id), Class))
    return nullptr;
  return julietClassName(Class);
}

} // namespace

std::string
cundef::renderCatalogMarkdown(const CatalogCoverageColumn *Coverage) {
  const std::vector<CatalogEntry> &Rows = ubCatalog();
  const CatalogStats Stats = catalogStats();
  std::string Out;
  auto Add = [&Out](const std::string &S) { Out += S; };

  Add(strFormat("# The %u undefined behaviors of C11\n\n", Stats.Total));
  Add("Generated by `kcc --dump-catalog=markdown` from `ubCatalog()` "
      "(src/ub/Catalog.cpp).\nDo not edit by hand: the `catalog_docs_fresh` "
      "ctest fails when this file is\nnot byte-identical to freshly "
      "generated output.\n\n");
  Add("This is the paper's classification of undefined behavior in C "
      "(\"Defining the\nundefinedness of C\", PLDI 2015, section 5.2.1): "
      "every undefined behavior of\nC11, each with its defining clause, "
      "whether it is detectable statically or\nonly dynamically, whether "
      "it concerns the standard library, and whether its\nundefinedness "
      "depends on implementation-defined or unspecified choices.\n\n");
  Add(strFormat("- **Total:** %u\n", Stats.Total));
  Add(strFormat("- **Statically detectable:** %u\n", Stats.Static));
  Add(strFormat("- **Dynamic-only:** %u\n", Stats.Dynamic));
  Add(strFormat("- **Dynamic, core-language, portable:** %u (the rows the "
                "custom suite of\n  section 5.3 guarantees a test for)\n\n",
                Stats.DynamicCorePortable));
  Add("Rows whose id names a `UbKind` enumerator (ids 1-51) are "
      "behaviors the tools\ndetect and report under that error code; "
      "the remaining rows complete the\ninventory.\n\n");
  if (Coverage) {
    Add(strFormat("The Coverage column is live output of the catalog "
                  "coverage harness\n(`kcc --catalog-coverage`): every row "
                  "carries one minimal triggering program\nwhere one is "
                  "expressible in the modelled subset, and the verdict "
                  "says whether\nthe evaluator flags it with a matching "
                  "code. Currently **%u covered**,\n**%u wrong-code**, "
                  "**%u missed**, **%u inexpressible**.\n\n",
                  Coverage->Covered, Coverage->WrongCode, Coverage->Missed,
                  Coverage->Inexpressible));
  }

  // ---- Index: one row per entry. ----
  Add("## Index\n\n");
  if (Coverage) {
    Add("| Id | C11 clause | Detection | Juliet class | Coverage "
        "| Description |\n");
    Add("|---:|:-----------|:----------|:-------------|:---------"
        "|:------------|\n");
  } else {
    Add("| Id | C11 clause | Detection | Juliet class | Description |\n");
    Add("|---:|:-----------|:----------|:-------------|:------------|\n");
  }
  for (const CatalogEntry &E : Rows) {
    const char *Juliet = julietClassForRow(E.Id);
    if (Coverage) {
      const std::string &Cell = Coverage->Cells[E.Id - 1];
      Add(strFormat("| [%u](#ub-%u) | %s | %s | %s | %s | %s |\n", E.Id,
                    E.Id, E.Clause, E.isStatic() ? "static" : "dynamic",
                    Juliet ? Juliet : "\xe2\x80\x94", Cell.c_str(),
                    E.Description));
    } else {
      Add(strFormat("| [%u](#ub-%u) | %s | %s | %s | %s |\n", E.Id, E.Id,
                    E.Clause, E.isStatic() ? "static" : "dynamic",
                    Juliet ? Juliet : "\xe2\x80\x94", E.Description));
    }
  }
  Add("\n");

  // ---- One reference section per entry. ----
  Add("## Reference\n");
  for (const CatalogEntry &E : Rows) {
    Add(strFormat("\n<a id=\"ub-%u\"></a>\n### UB %u\n\n", E.Id, E.Id));
    Add(strFormat("%s\n\n", E.Description));
    Add(strFormat("- **C11 clause:** %s\n", E.Clause));
    Add(strFormat("- **Detection:** %s\n",
                  E.isStatic() ? "statically detectable"
                               : "dynamic (requires execution)"));
    Add(strFormat("- **Scope:** %s\n",
                  E.isLibrary() ? "standard library" : "core language"));
    Add(strFormat("- **Portability:** %s\n",
                  E.isImplSpecific()
                      ? "implementation-specific (depends on "
                        "implementation-defined or unspecified choices)"
                      : "portable (undefined on every implementation)"));
    if (const char *Juliet = julietClassForRow(E.Id))
      Add(strFormat("- **Juliet class:** %s\n", Juliet));
    if (E.Id <= static_cast<uint16_t>(UbKind::ReturnVoidValue))
      Add(strFormat("- **Reported as:** `Error: %05u` in kcc-style "
                    "reports\n", E.Id));
    if (Coverage)
      Add(strFormat("- **Coverage:** %s\n",
                    Coverage->Cells[E.Id - 1].c_str()));
  }
  return Out;
}
