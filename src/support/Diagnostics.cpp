//===- support/Diagnostics.cpp - Diagnostic engine -----------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/Strings.h"

using namespace cundef;

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

void DiagnosticEngine::registerFile(uint32_t FileId, std::string Name) {
  if (FileNames.size() <= FileId)
    FileNames.resize(FileId + 1);
  FileNames[FileId] = std::move(Name);
}

std::string DiagnosticEngine::render() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    const char *Sev = D.Severity == DiagSeverity::Error     ? "error"
                      : D.Severity == DiagSeverity::Warning ? "warning"
                                                            : "note";
    std::string File = "<unknown>";
    if (D.Loc.isValid() && D.Loc.File < FileNames.size() &&
        !FileNames[D.Loc.File].empty())
      File = FileNames[D.Loc.File];
    Out += strFormat("%s:%u:%u: %s: %s\n", File.c_str(), D.Loc.Line,
                     D.Loc.Col, Sev, D.Message.c_str());
  }
  return Out;
}
