//===- support/Strings.h - String helpers --------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string and a few predicates the
/// lexer and report printers share.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SUPPORT_STRINGS_H
#define CUNDEF_SUPPORT_STRINGS_H

#include <cstdarg>
#include <string>
#include <vector>

namespace cundef {

/// Formats like printf but returns the result as a std::string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// vprintf counterpart of strFormat.
std::string strFormatV(const char *Fmt, va_list Args);

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> splitString(const std::string &Text, char Sep);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Escapes a string for display inside diagnostics (non-printable bytes
/// become \xNN, quotes and backslashes are backslash-escaped).
std::string escapeForDisplay(const std::string &Text);

/// Pads or truncates \p Text to exactly \p Width columns (left-aligned).
std::string padRight(const std::string &Text, size_t Width);

/// Right-aligns \p Text in a field of \p Width columns.
std::string padLeft(const std::string &Text, size_t Width);

/// Strictly parses a non-negative decimal integer: at least one digit,
/// nothing but digits, no overflow past unsigned. Returns false (Out
/// untouched) otherwise. Command-line flags use this instead of atoi,
/// which silently maps garbage to 0.
bool parseUnsigned(const char *Text, unsigned &Out);

} // namespace cundef

#endif // CUNDEF_SUPPORT_STRINGS_H
