//===- support/StringInterner.cpp - Symbol interning ---------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

// StringInterner is header-only today; this file anchors the module in
// the build so the library layout mirrors one translation unit per
// header, and gives the class room to grow non-inline members.
