//===- support/Hash.h - Incremental configuration hashing ------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small incremental FNV-1a hasher used to fingerprint machine
/// configurations for the evaluation-order search (core/Search.h): two
/// interleavings whose configurations hash equal at the same decision
/// depth are treated as the same state, so the search explores their
/// common subtree once. 64-bit digests make accidental collisions (which
/// would silently prune a genuinely distinct state) astronomically
/// unlikely at search scales of <= millions of states.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SUPPORT_HASH_H
#define CUNDEF_SUPPORT_HASH_H

#include <cstdint>
#include <cstring>
#include <string>

namespace cundef {

/// Incremental 64-bit FNV-1a.
class Fnv1a {
public:
  void bytes(const void *Data, size_t Len) {
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < Len; ++I) {
      H ^= P[I];
      H *= 0x100000001b3ull;
    }
  }
  void u8(uint8_t V) { bytes(&V, 1); }
  void u16(uint16_t V) { bytes(&V, 2); }
  void u32(uint32_t V) { bytes(&V, 4); }
  void u64(uint64_t V) { bytes(&V, 8); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    u64(Bits);
  }
  /// Pointer identity. AST nodes and canonical types are shared by every
  /// machine of one search, so their addresses are stable tokens.
  void ptr(const void *P) { u64(reinterpret_cast<uintptr_t>(P)); }
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }

  uint64_t digest() const { return H; }

private:
  uint64_t H = 0xcbf29ce484222325ull;
};

/// The splitmix64 finalizer: a full-avalanche 64-bit mix. Every input
/// bit flips each output bit with probability ~1/2, which FNV-1a alone
/// does not guarantee for its high bits. Used wherever two quantities
/// are combined into a table key (the search's (depth, fingerprint)
/// visited-set, per-byte memory digests) so that structured inputs do
/// not alias.
inline uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X;
}

} // namespace cundef

#endif // CUNDEF_SUPPORT_HASH_H
