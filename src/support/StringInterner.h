//===- support/StringInterner.h - Symbol interning ------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifiers are interned once by the lexer; all later stages compare
/// 32-bit symbols instead of strings. Symbol 0 is reserved as "no name"
/// (used for anonymous struct members and unnamed parameters).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SUPPORT_STRINGINTERNER_H
#define CUNDEF_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace cundef {

/// An interned identifier. Value 0 means "no name".
using Symbol = uint32_t;

constexpr Symbol NoSymbol = 0;

/// Bidirectional string <-> Symbol table.
class StringInterner {
public:
  StringInterner() {
    // Reserve slot 0 for NoSymbol.
    Strings.push_back("");
  }

  /// Returns the symbol for \p Text, interning it on first sight.
  Symbol intern(const std::string &Text) {
    auto It = Index.find(Text);
    if (It != Index.end())
      return It->second;
    Symbol Sym = static_cast<Symbol>(Strings.size());
    Strings.push_back(Text);
    Index.emplace(Text, Sym);
    return Sym;
  }

  /// Returns the symbol for \p Text if already interned, NoSymbol else.
  Symbol lookup(const std::string &Text) const {
    auto It = Index.find(Text);
    return It == Index.end() ? NoSymbol : It->second;
  }

  /// Returns the spelling of \p Sym.
  const std::string &str(Symbol Sym) const { return Strings.at(Sym); }

  size_t size() const { return Strings.size(); }

private:
  std::vector<std::string> Strings;
  std::unordered_map<std::string, Symbol> Index;
};

} // namespace cundef

#endif // CUNDEF_SUPPORT_STRINGINTERNER_H
