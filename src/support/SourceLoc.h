//===- support/SourceLoc.h - Source locations -----------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
// Reproduction of "Defining the Undefinedness of C" (Ellison & Rosu).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source coordinates threaded from the lexer through every
/// later stage so that undefinedness reports can name a function and line
/// exactly as kcc does (paper section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SUPPORT_SOURCELOC_H
#define CUNDEF_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace cundef {

/// A position in a (possibly virtual) source file.
///
/// Files are identified by a small integer handle issued by the
/// preprocessor; line and column are 1-based. A default-constructed
/// location is invalid and prints as "<unknown>".
struct SourceLoc {
  uint32_t File = 0;
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t File, uint32_t Line, uint32_t Col)
      : File(File), Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &Other) const {
    return File == Other.File && Line == Other.Line && Col == Other.Col;
  }
  bool operator!=(const SourceLoc &Other) const { return !(*this == Other); }
};

/// A half-open range of source text, used for diagnostics that underline
/// a whole construct rather than a single token.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}
  explicit SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace cundef

#endif // CUNDEF_SUPPORT_SOURCELOC_H
