//===- support/Strings.cpp - String helpers ------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "support/Strings.h"

#include <cstdio>

using namespace cundef;

std::string cundef::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = strFormatV(Fmt, Args);
  va_end(Args);
  return Result;
}

std::string cundef::strFormatV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, Args);
  return Result;
}

std::vector<std::string> cundef::splitString(const std::string &Text,
                                             char Sep) {
  std::vector<std::string> Fields;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string::npos) {
      Fields.push_back(Text.substr(Start));
      return Fields;
    }
    Fields.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

bool cundef::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

std::string cundef::escapeForDisplay(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (unsigned char C : Text) {
    switch (C) {
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    default:
      if (C < 0x20 || C >= 0x7f)
        Out += strFormat("\\x%02x", C);
      else
        Out += static_cast<char>(C);
    }
  }
  return Out;
}

std::string cundef::padRight(const std::string &Text, size_t Width) {
  if (Text.size() >= Width)
    return Text.substr(0, Width);
  return Text + std::string(Width - Text.size(), ' ');
}

std::string cundef::padLeft(const std::string &Text, size_t Width) {
  if (Text.size() >= Width)
    return Text.substr(0, Width);
  return std::string(Width - Text.size(), ' ') + Text;
}

bool cundef::parseUnsigned(const char *Text, unsigned &Out) {
  if (!Text || !*Text)
    return false;
  unsigned long long Value = 0;
  for (const char *P = Text; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    Value = Value * 10 + static_cast<unsigned long long>(*P - '0');
    if (Value > 0xffffffffull)
      return false;
  }
  Out = static_cast<unsigned>(Value);
  return true;
}
