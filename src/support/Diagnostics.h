//===- support/Diagnostics.h - Diagnostic engine --------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects frontend diagnostics (lexer/preprocessor/parser/sema errors
/// and warnings). Undefined-behavior findings are richer objects and live
/// in ub/Report.h; this engine is only for "this is not a C program at
/// all" problems, which the paper distinguishes from undefinedness.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SUPPORT_DIAGNOSTICS_H
#define CUNDEF_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace cundef {

enum class DiagSeverity { Note, Warning, Error };

/// One frontend diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics; owned by the driver and shared by every
/// frontend stage.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic as "line:col: severity: message" using the
  /// file names registered with registerFile.
  std::string render() const;

  /// Associates \p FileId with \p Name for rendering.
  void registerFile(uint32_t FileId, std::string Name);

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  std::vector<std::string> FileNames;
  unsigned NumErrors = 0;
};

} // namespace cundef

#endif // CUNDEF_SUPPORT_DIAGNOSTICS_H
