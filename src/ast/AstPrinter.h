//===- ast/AstPrinter.h - AST dumping --------------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders AST nodes as indented S-expressions; used by parser tests and
/// debugging. The format is stable: tests match against it.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_AST_ASTPRINTER_H
#define CUNDEF_AST_ASTPRINTER_H

#include "ast/Ast.h"

#include <string>

namespace cundef {

const char *unaryOpName(UnaryOp Op);
const char *binaryOpName(BinaryOp Op);
const char *assignOpName(AssignOp Op);
const char *castKindName(CastKind CK);
BinaryOp compoundOpOf(AssignOp Op);

/// Pretty-prints AST subtrees.
class AstPrinter {
public:
  explicit AstPrinter(const AstContext &Ctx) : Ctx(Ctx) {}

  std::string print(const Expr *E) const;
  std::string print(const Stmt *S) const;
  std::string print(const FunctionDecl *F) const;
  std::string print(const TranslationUnit &TU) const;

private:
  void printExpr(const Expr *E, std::string &Out, int Indent) const;
  void printStmt(const Stmt *S, std::string &Out, int Indent) const;

  const AstContext &Ctx;
};

} // namespace cundef

#endif // CUNDEF_AST_ASTPRINTER_H
