//===- ast/AstPrinter.cpp - AST dumping ------------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"

#include "support/Strings.h"

using namespace cundef;

static std::string indentStr(int Indent) {
  return std::string(static_cast<size_t>(Indent) * 2, ' ');
}

std::string AstPrinter::print(const Expr *E) const {
  std::string Out;
  printExpr(E, Out, 0);
  return Out;
}

std::string AstPrinter::print(const Stmt *S) const {
  std::string Out;
  printStmt(S, Out, 0);
  return Out;
}

std::string AstPrinter::print(const FunctionDecl *F) const {
  std::string Out = strFormat("(function %s", Ctx.Interner.str(F->Name).c_str());
  if (!F->Body) {
    Out += " <prototype>)\n";
    return Out;
  }
  Out += "\n";
  printStmt(F->Body, Out, 1);
  Out += ")\n";
  return Out;
}

std::string AstPrinter::print(const TranslationUnit &TU) const {
  std::string Out;
  for (const VarDecl *G : TU.Globals)
    Out += strFormat("(global %s)\n", Ctx.Interner.str(G->Name).c_str());
  for (const FunctionDecl *F : TU.Functions)
    Out += print(F);
  return Out;
}

void AstPrinter::printExpr(const Expr *E, std::string &Out,
                           int Indent) const {
  Out += indentStr(Indent);
  if (!E) {
    Out += "(null)\n";
    return;
  }
  switch (E->Kind) {
  case ExprKind::IntLit:
    Out += strFormat("(int %llu)\n",
                     (unsigned long long)cast<IntLitExpr>(E)->Value);
    return;
  case ExprKind::FloatLit:
    Out += strFormat("(float %g)\n", cast<FloatLitExpr>(E)->Value);
    return;
  case ExprKind::StringLit:
    Out += strFormat(
        "(string \"%s\")\n",
        escapeForDisplay(cast<StringLitExpr>(E)->Bytes).c_str());
    return;
  case ExprKind::DeclRef:
    Out += strFormat("(ref %s)\n",
                     Ctx.Interner.str(cast<DeclRefExpr>(E)->Name).c_str());
    return;
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Out += strFormat("(unary %s\n", unaryOpName(U->Op));
    printExpr(U->Sub, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Out += strFormat("(binary %s\n", binaryOpName(B->Op));
    printExpr(B->Lhs, Out, Indent + 1);
    printExpr(B->Rhs, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    Out += strFormat("(assign %s\n", assignOpName(A->Op));
    printExpr(A->Lhs, Out, Indent + 1);
    printExpr(A->Rhs, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case ExprKind::Cond: {
    const auto *C = cast<CondExpr>(E);
    Out += "(cond\n";
    printExpr(C->Cond, Out, Indent + 1);
    printExpr(C->Then, Out, Indent + 1);
    printExpr(C->Else, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case ExprKind::Cast: {
    const auto *C = cast<CastExpr>(E);
    Out += strFormat("(cast %s\n",
                     Ctx.Types.typeName(C->TargetTy, Ctx.Interner).c_str());
    printExpr(C->Sub, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case ExprKind::ImplicitCast: {
    const auto *C = cast<ImplicitCastExpr>(E);
    Out += strFormat("(implicit %s\n", castKindName(C->CK));
    printExpr(C->Sub, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    Out += "(call\n";
    printExpr(C->Callee, Out, Indent + 1);
    for (const Expr *A : C->Args)
      printExpr(A, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    Out += strFormat("(member %s %s\n", M->IsArrow ? "->" : ".",
                     Ctx.Interner.str(M->Member).c_str());
    printExpr(M->Base, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case ExprKind::Index: {
    const auto *I = cast<IndexExpr>(E);
    Out += "(index\n";
    printExpr(I->Base, Out, Indent + 1);
    printExpr(I->Index, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case ExprKind::Sizeof: {
    const auto *S = cast<SizeofExpr>(E);
    if (S->ArgExpr) {
      Out += "(sizeof-expr\n";
      printExpr(S->ArgExpr, Out, Indent + 1);
      Out += indentStr(Indent) + ")\n";
    } else {
      Out += strFormat("(sizeof-type %s)\n",
                       Ctx.Types.typeName(S->ArgTy, Ctx.Interner).c_str());
    }
    return;
  }
  case ExprKind::InitList: {
    const auto *I = cast<InitListExpr>(E);
    Out += "(init-list\n";
    for (const Expr *Sub : I->Inits)
      printExpr(Sub, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  }
}

void AstPrinter::printStmt(const Stmt *S, std::string &Out,
                           int Indent) const {
  Out += indentStr(Indent);
  if (!S) {
    Out += "(null-stmt)\n";
    return;
  }
  switch (S->Kind) {
  case StmtKind::Compound: {
    Out += "(block\n";
    for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
      printStmt(Sub, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case StmtKind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    Out += "(decl";
    for (const VarDecl *V : D->Decls) {
      Out += strFormat(" %s:%s", Ctx.Interner.str(V->Name).c_str(),
                       Ctx.Types.typeName(V->Ty, Ctx.Interner).c_str());
    }
    bool AnyInit = false;
    for (const VarDecl *V : D->Decls)
      AnyInit |= V->Init != nullptr;
    if (!AnyInit) {
      Out += ")\n";
      return;
    }
    Out += "\n";
    for (const VarDecl *V : D->Decls)
      if (V->Init)
        printExpr(V->Init, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case StmtKind::Expr: {
    const auto *E = cast<ExprStmt>(S);
    if (!E->E) {
      Out += "(empty)\n";
      return;
    }
    Out += "(expr\n";
    printExpr(E->E, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    Out += "(if\n";
    printExpr(I->Cond, Out, Indent + 1);
    printStmt(I->Then, Out, Indent + 1);
    if (I->Else)
      printStmt(I->Else, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    Out += "(while\n";
    printExpr(W->Cond, Out, Indent + 1);
    printStmt(W->Body, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case StmtKind::Do: {
    const auto *D = cast<DoStmt>(S);
    Out += "(do\n";
    printStmt(D->Body, Out, Indent + 1);
    printExpr(D->Cond, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(S);
    Out += "(for\n";
    if (F->Init)
      printStmt(F->Init, Out, Indent + 1);
    else
      Out += indentStr(Indent + 1) + "(no-init)\n";
    if (F->Cond)
      printExpr(F->Cond, Out, Indent + 1);
    else
      Out += indentStr(Indent + 1) + "(no-cond)\n";
    if (F->Inc)
      printExpr(F->Inc, Out, Indent + 1);
    else
      Out += indentStr(Indent + 1) + "(no-inc)\n";
    printStmt(F->Body, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case StmtKind::Switch: {
    const auto *W = cast<SwitchStmt>(S);
    Out += "(switch\n";
    printExpr(W->Cond, Out, Indent + 1);
    printStmt(W->Body, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case StmtKind::Case: {
    const auto *C = cast<CaseStmt>(S);
    Out += strFormat("(case %lld\n", (long long)C->Value);
    printStmt(C->Sub, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case StmtKind::Default: {
    Out += "(default\n";
    printStmt(cast<DefaultStmt>(S)->Sub, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case StmtKind::Break:
    Out += "(break)\n";
    return;
  case StmtKind::Continue:
    Out += "(continue)\n";
    return;
  case StmtKind::Goto:
    Out += strFormat("(goto %s)\n",
                     Ctx.Interner.str(cast<GotoStmt>(S)->Label).c_str());
    return;
  case StmtKind::Label: {
    const auto *L = cast<LabelStmt>(S);
    Out += strFormat("(label %s\n", Ctx.Interner.str(L->Name).c_str());
    printStmt(L->Sub, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    if (!R->Value) {
      Out += "(return)\n";
      return;
    }
    Out += "(return\n";
    printExpr(R->Value, Out, Indent + 1);
    Out += indentStr(Indent) + ")\n";
    return;
  }
  }
}
