//===- ast/Ast.cpp - C abstract syntax tree --------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "ast/Ast.h"

using namespace cundef;

namespace cundef {

const char *unaryOpName(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Plus:    return "+";
  case UnaryOp::Minus:   return "-";
  case UnaryOp::BitNot:  return "~";
  case UnaryOp::LogNot:  return "!";
  case UnaryOp::Deref:   return "*";
  case UnaryOp::AddrOf:  return "&";
  case UnaryOp::PreInc:  return "++pre";
  case UnaryOp::PreDec:  return "--pre";
  case UnaryOp::PostInc: return "post++";
  case UnaryOp::PostDec: return "post--";
  }
  return "?";
}

const char *binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Mul:    return "*";
  case BinaryOp::Div:    return "/";
  case BinaryOp::Rem:    return "%";
  case BinaryOp::Add:    return "+";
  case BinaryOp::Sub:    return "-";
  case BinaryOp::Shl:    return "<<";
  case BinaryOp::Shr:    return ">>";
  case BinaryOp::Lt:     return "<";
  case BinaryOp::Gt:     return ">";
  case BinaryOp::Le:     return "<=";
  case BinaryOp::Ge:     return ">=";
  case BinaryOp::Eq:     return "==";
  case BinaryOp::Ne:     return "!=";
  case BinaryOp::BitAnd: return "&";
  case BinaryOp::BitXor: return "^";
  case BinaryOp::BitOr:  return "|";
  case BinaryOp::LogAnd: return "&&";
  case BinaryOp::LogOr:  return "||";
  case BinaryOp::Comma:  return ",";
  }
  return "?";
}

const char *assignOpName(AssignOp Op) {
  switch (Op) {
  case AssignOp::Assign:    return "=";
  case AssignOp::MulAssign: return "*=";
  case AssignOp::DivAssign: return "/=";
  case AssignOp::RemAssign: return "%=";
  case AssignOp::AddAssign: return "+=";
  case AssignOp::SubAssign: return "-=";
  case AssignOp::ShlAssign: return "<<=";
  case AssignOp::ShrAssign: return ">>=";
  case AssignOp::AndAssign: return "&=";
  case AssignOp::XorAssign: return "^=";
  case AssignOp::OrAssign:  return "|=";
  }
  return "?";
}

const char *castKindName(CastKind CK) {
  switch (CK) {
  case CastKind::LValueToRValue: return "lvalue-to-rvalue";
  case CastKind::ArrayDecay:     return "array-decay";
  case CastKind::FunctionDecay:  return "function-decay";
  case CastKind::IntegralCast:   return "integral-cast";
  case CastKind::IntToFloat:     return "int-to-float";
  case CastKind::FloatToInt:     return "float-to-int";
  case CastKind::FloatCast:      return "float-cast";
  case CastKind::IntToPointer:   return "int-to-pointer";
  case CastKind::PointerToInt:   return "pointer-to-int";
  case CastKind::PointerCast:    return "pointer-cast";
  case CastKind::NullToPointer:  return "null-to-pointer";
  case CastKind::ToBool:         return "to-bool";
  case CastKind::ToVoid:         return "to-void";
  }
  return "?";
}

/// The underlying BinaryOp performed by a compound assignment.
BinaryOp compoundOpOf(AssignOp Op) {
  switch (Op) {
  case AssignOp::MulAssign: return BinaryOp::Mul;
  case AssignOp::DivAssign: return BinaryOp::Div;
  case AssignOp::RemAssign: return BinaryOp::Rem;
  case AssignOp::AddAssign: return BinaryOp::Add;
  case AssignOp::SubAssign: return BinaryOp::Sub;
  case AssignOp::ShlAssign: return BinaryOp::Shl;
  case AssignOp::ShrAssign: return BinaryOp::Shr;
  case AssignOp::AndAssign: return BinaryOp::BitAnd;
  case AssignOp::XorAssign: return BinaryOp::BitXor;
  case AssignOp::OrAssign:  return BinaryOp::BitOr;
  case AssignOp::Assign:    break;
  }
  assert(false && "plain assignment has no compound operator");
  return BinaryOp::Add;
}

} // namespace cundef
