//===- ast/Ast.h - C abstract syntax tree ---------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arena-allocated AST. Nodes are created by the parser; Sema annotates
/// expressions with types, value categories, and implicit conversions.
/// The core machine interprets this AST directly (it is the "program
/// term" loaded into the k cell of the configuration).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_AST_AST_H
#define CUNDEF_AST_AST_H

#include "support/SourceLoc.h"
#include "support/StringInterner.h"
#include "types/Type.h"

#include <cassert>
#include <memory>
#include <vector>

namespace cundef {

class Expr;
class Stmt;
class VarDecl;
class FunctionDecl;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLit,
  FloatLit,
  StringLit,
  DeclRef,
  Unary,
  Binary,
  Assign,
  Cond,
  Cast,         // explicit (T)e
  ImplicitCast, // inserted by Sema
  Call,
  Member,
  Index,
  Sizeof,
  InitList,
};

enum class UnaryOp : uint8_t {
  Plus,
  Minus,
  BitNot,
  LogNot,
  Deref,
  AddrOf,
  PreInc,
  PreDec,
  PostInc,
  PostDec,
};

enum class BinaryOp : uint8_t {
  Mul,
  Div,
  Rem,
  Add,
  Sub,
  Shl,
  Shr,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  BitAnd,
  BitXor,
  BitOr,
  LogAnd,
  LogOr,
  Comma,
};

enum class AssignOp : uint8_t {
  Assign,
  MulAssign,
  DivAssign,
  RemAssign,
  AddAssign,
  SubAssign,
  ShlAssign,
  ShrAssign,
  AndAssign,
  XorAssign,
  OrAssign,
};

/// How an implicit conversion changes a value (a subset of Clang's cast
/// kinds sufficient for C).
enum class CastKind : uint8_t {
  LValueToRValue,
  ArrayDecay,
  FunctionDecay,
  IntegralCast,
  IntToFloat,
  FloatToInt,
  FloatCast,
  IntToPointer,
  PointerToInt,
  PointerCast,
  NullToPointer,
  ToBool,
  ToVoid,
};

enum class ValueCat : uint8_t { RValue, LValue };

/// Base of all expressions. Type and value category are null/RValue
/// until Sema runs.
class Expr {
public:
  const ExprKind Kind;
  SourceLoc Loc;
  QualType Ty;
  ValueCat Cat = ValueCat::RValue;

  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;

  bool isLValue() const { return Cat == ValueCat::LValue; }
};

/// LLVM-style dyn_cast support keyed on the Kind field.
template <typename To, typename From> const To *dynCast(const From *Node) {
  return Node && To::classof(Node) ? static_cast<const To *>(Node) : nullptr;
}
template <typename To, typename From> const To *cast(const From *Node) {
  assert(Node && To::classof(Node) && "bad AST cast");
  return static_cast<const To *>(Node);
}
template <typename To, typename From> bool isa(const From *Node) {
  return Node && To::classof(Node);
}

class IntLitExpr : public Expr {
public:
  uint64_t Value;

  IntLitExpr(SourceLoc Loc, uint64_t Value)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::IntLit; }
};

class FloatLitExpr : public Expr {
public:
  double Value;

  FloatLitExpr(SourceLoc Loc, double Value)
      : Expr(ExprKind::FloatLit, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::FloatLit; }
};

class StringLitExpr : public Expr {
public:
  std::string Bytes; ///< decoded content, without the terminating NUL

  StringLitExpr(SourceLoc Loc, std::string Bytes)
      : Expr(ExprKind::StringLit, Loc), Bytes(std::move(Bytes)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::StringLit; }
};

class DeclRefExpr : public Expr {
public:
  Symbol Name;
  /// The referenced variable, or null when Fn is set.
  const VarDecl *Var = nullptr;
  /// The referenced function, for function designators.
  const FunctionDecl *Fn = nullptr;

  DeclRefExpr(SourceLoc Loc, Symbol Name)
      : Expr(ExprKind::DeclRef, Loc), Name(Name) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::DeclRef; }
};

class UnaryExpr : public Expr {
public:
  UnaryOp Op;
  Expr *Sub;

  UnaryExpr(SourceLoc Loc, UnaryOp Op, Expr *Sub)
      : Expr(ExprKind::Unary, Loc), Op(Op), Sub(Sub) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Unary; }
};

class BinaryExpr : public Expr {
public:
  BinaryOp Op;
  Expr *Lhs;
  Expr *Rhs;

  BinaryExpr(SourceLoc Loc, BinaryOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(ExprKind::Binary, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Binary; }
};

class AssignExpr : public Expr {
public:
  AssignOp Op;
  Expr *Lhs;
  Expr *Rhs;
  /// For compound assignment: the type in which the arithmetic happens
  /// (usual arithmetic conversions of the operand types); set by Sema.
  QualType ComputeTy;

  AssignExpr(SourceLoc Loc, AssignOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(ExprKind::Assign, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Assign; }
};

class CondExpr : public Expr {
public:
  Expr *Cond;
  Expr *Then;
  Expr *Else;

  CondExpr(SourceLoc Loc, Expr *Cond, Expr *Then, Expr *Else)
      : Expr(ExprKind::Cond, Loc), Cond(Cond), Then(Then), Else(Else) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Cond; }
};

class CastExpr : public Expr {
public:
  QualType TargetTy;
  Expr *Sub;
  /// Semantic kind; set by Sema (explicit casts get one too).
  CastKind CK = CastKind::IntegralCast;

  CastExpr(SourceLoc Loc, QualType TargetTy, Expr *Sub)
      : Expr(ExprKind::Cast, Loc), TargetTy(TargetTy), Sub(Sub) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Cast; }
};

class ImplicitCastExpr : public Expr {
public:
  CastKind CK;
  Expr *Sub;

  ImplicitCastExpr(SourceLoc Loc, CastKind CK, QualType Ty, Expr *Sub)
      : Expr(ExprKind::ImplicitCast, Loc), CK(CK), Sub(Sub) {
    this->Ty = Ty;
  }
  static bool classof(const Expr *E) {
    return E->Kind == ExprKind::ImplicitCast;
  }
};

class CallExpr : public Expr {
public:
  Expr *Callee;
  std::vector<Expr *> Args;

  CallExpr(SourceLoc Loc, Expr *Callee, std::vector<Expr *> Args)
      : Expr(ExprKind::Call, Loc), Callee(Callee), Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Call; }
};

class MemberExpr : public Expr {
public:
  Expr *Base;
  Symbol Member;
  bool IsArrow;
  /// Field index within the record; set by Sema.
  int FieldIdx = -1;

  MemberExpr(SourceLoc Loc, Expr *Base, Symbol Member, bool IsArrow)
      : Expr(ExprKind::Member, Loc), Base(Base), Member(Member),
        IsArrow(IsArrow) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Member; }
};

class IndexExpr : public Expr {
public:
  Expr *Base;
  Expr *Index;

  IndexExpr(SourceLoc Loc, Expr *Base, Expr *Index)
      : Expr(ExprKind::Index, Loc), Base(Base), Index(Index) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Index; }
};

class SizeofExpr : public Expr {
public:
  /// Exactly one of ArgTy / ArgExpr is set.
  QualType ArgTy;
  Expr *ArgExpr = nullptr;

  SizeofExpr(SourceLoc Loc, QualType ArgTy)
      : Expr(ExprKind::Sizeof, Loc), ArgTy(ArgTy) {}
  SizeofExpr(SourceLoc Loc, Expr *ArgExpr)
      : Expr(ExprKind::Sizeof, Loc), ArgExpr(ArgExpr) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Sizeof; }
};

class InitListExpr : public Expr {
public:
  std::vector<Expr *> Inits;

  InitListExpr(SourceLoc Loc, std::vector<Expr *> Inits)
      : Expr(ExprKind::InitList, Loc), Inits(std::move(Inits)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::InitList; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Compound,
  Decl,
  Expr,
  If,
  While,
  Do,
  For,
  Switch,
  Case,
  Default,
  Break,
  Continue,
  Goto,
  Label,
  Return,
};

class Stmt {
public:
  const StmtKind Kind;
  SourceLoc Loc;

  Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;
};

class CompoundStmt : public Stmt {
public:
  std::vector<Stmt *> Body;

  CompoundStmt(SourceLoc Loc, std::vector<Stmt *> Body)
      : Stmt(StmtKind::Compound, Loc), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Compound; }
};

class DeclStmt : public Stmt {
public:
  std::vector<VarDecl *> Decls;

  DeclStmt(SourceLoc Loc, std::vector<VarDecl *> Decls)
      : Stmt(StmtKind::Decl, Loc), Decls(std::move(Decls)) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Decl; }
};

class ExprStmt : public Stmt {
public:
  Expr *E; ///< null for the empty statement ';'

  ExprStmt(SourceLoc Loc, Expr *E) : Stmt(StmtKind::Expr, Loc), E(E) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Expr; }
};

class IfStmt : public Stmt {
public:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; ///< may be null

  IfStmt(SourceLoc Loc, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(StmtKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::If; }
};

class WhileStmt : public Stmt {
public:
  Expr *Cond;
  Stmt *Body;

  WhileStmt(SourceLoc Loc, Expr *Cond, Stmt *Body)
      : Stmt(StmtKind::While, Loc), Cond(Cond), Body(Body) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::While; }
};

class DoStmt : public Stmt {
public:
  Stmt *Body;
  Expr *Cond;

  DoStmt(SourceLoc Loc, Stmt *Body, Expr *Cond)
      : Stmt(StmtKind::Do, Loc), Body(Body), Cond(Cond) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Do; }
};

class ForStmt : public Stmt {
public:
  Stmt *Init; ///< DeclStmt or ExprStmt; may be null
  Expr *Cond; ///< may be null (infinite loop)
  Expr *Inc;  ///< may be null
  Stmt *Body;

  ForStmt(SourceLoc Loc, Stmt *Init, Expr *Cond, Expr *Inc, Stmt *Body)
      : Stmt(StmtKind::For, Loc), Init(Init), Cond(Cond), Inc(Inc),
        Body(Body) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::For; }
};

class CaseStmt;
class DefaultStmt;

class SwitchStmt : public Stmt {
public:
  Expr *Cond;
  Stmt *Body;
  /// All case labels lexically within Body; collected by Sema.
  std::vector<const CaseStmt *> Cases;
  const DefaultStmt *Default = nullptr;

  SwitchStmt(SourceLoc Loc, Expr *Cond, Stmt *Body)
      : Stmt(StmtKind::Switch, Loc), Cond(Cond), Body(Body) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Switch; }
};

class CaseStmt : public Stmt {
public:
  Expr *ValueExpr;
  Stmt *Sub;
  /// Constant value of ValueExpr; computed by Sema.
  int64_t Value = 0;

  CaseStmt(SourceLoc Loc, Expr *ValueExpr, Stmt *Sub)
      : Stmt(StmtKind::Case, Loc), ValueExpr(ValueExpr), Sub(Sub) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Case; }
};

class DefaultStmt : public Stmt {
public:
  Stmt *Sub;

  DefaultStmt(SourceLoc Loc, Stmt *Sub)
      : Stmt(StmtKind::Default, Loc), Sub(Sub) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Default; }
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Continue; }
};

class LabelStmt : public Stmt {
public:
  Symbol Name;
  Stmt *Sub;

  LabelStmt(SourceLoc Loc, Symbol Name, Stmt *Sub)
      : Stmt(StmtKind::Label, Loc), Name(Name), Sub(Sub) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Label; }
};

class GotoStmt : public Stmt {
public:
  Symbol Label;
  /// Resolved by Sema.
  const LabelStmt *Target = nullptr;

  GotoStmt(SourceLoc Loc, Symbol Label)
      : Stmt(StmtKind::Goto, Loc), Label(Label) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Goto; }
};

class ReturnStmt : public Stmt {
public:
  Expr *Value; ///< may be null

  ReturnStmt(SourceLoc Loc, Expr *Value)
      : Stmt(StmtKind::Return, Loc), Value(Value) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Return; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

enum class StorageClass : uint8_t { None, Static, Extern };

class VarDecl {
public:
  Symbol Name = NoSymbol;
  QualType Ty;
  StorageClass Storage = StorageClass::None;
  Expr *Init = nullptr; ///< scalar Expr or InitListExpr; may be null
  bool IsGlobal = false;
  bool IsParam = false;
  SourceLoc Loc;
  /// Unique id within the translation unit; the interpreter keys
  /// environments and static storage by it.
  uint32_t DeclId = 0;

  VarDecl(const VarDecl &) = delete;
  VarDecl &operator=(const VarDecl &) = delete;
  VarDecl() = default;
};

class FunctionDecl {
public:
  Symbol Name = NoSymbol;
  const Type *FnTy = nullptr; ///< always a Function type
  std::vector<VarDecl *> Params;
  CompoundStmt *Body = nullptr; ///< null for prototypes
  SourceLoc Loc;
  /// Non-zero when this is a libc builtin (see libc/Builtins.h).
  uint16_t BuiltinId = 0;
  /// Every type this function was declared with, in source order; the
  /// static checker flags incompatible redeclarations (C11 6.2.7p2).
  std::vector<const Type *> AllDeclTypes;
  /// Qualifier bits any declaration attached to the *function type*
  /// (only possible through a typedef); undefined per C11 6.7.3p9.
  uint8_t DeclQuals = QualNone;

  FunctionDecl(const FunctionDecl &) = delete;
  FunctionDecl &operator=(const FunctionDecl &) = delete;
  FunctionDecl() = default;

  bool isDefined() const { return Body != nullptr || BuiltinId != 0; }
};

/// A parsed and analyzed translation unit.
class TranslationUnit {
public:
  std::vector<FunctionDecl *> Functions;
  std::vector<VarDecl *> Globals;

  const FunctionDecl *findFunction(Symbol Name) const {
    for (const FunctionDecl *F : Functions)
      if (F->Name == Name)
        return F;
    return nullptr;
  }
};

/// Owns all AST nodes plus the per-TU type context.
class AstContext {
public:
  AstContext(const TargetConfig &Config, StringInterner &Interner)
      : Types(Config), Interner(Interner) {}

  /// Allocates an AST node in the arena.
  template <typename T, typename... ArgTs> T *create(ArgTs &&...Args) {
    auto Node = std::make_unique<T>(std::forward<ArgTs>(Args)...);
    T *Ptr = Node.get();
    Arena.push_back(
        std::unique_ptr<void, void (*)(void *)>(Node.release(), [](void *P) {
          delete static_cast<T *>(P);
        }));
    return Ptr;
  }

  TypeContext Types;
  StringInterner &Interner;
  TranslationUnit TU;
  uint32_t NextDeclId = 1;

private:
  std::vector<std::unique_ptr<void, void (*)(void *)>> Arena;
};

} // namespace cundef

#endif // CUNDEF_AST_AST_H
