//===- driver/Driver.cpp - The kcc-style driver --------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "core/Scheduler.h"
#include "libc/Builtins.h"
#include "libc/Headers.h"
#include "parse/Parser.h"
#include "sema/Sema.h"
#include "ub/StaticChecks.h"

#include <algorithm>
#include <chrono>

using namespace cundef;

std::string DriverOutcome::renderReport() const {
  std::string Out;
  if (!CompileOk && StaticUb.empty() && DynamicUb.empty())
    return CompileErrors;
  std::vector<UbReport> All = StaticUb;
  All.insert(All.end(), DynamicUb.begin(), DynamicUb.end());
  return renderKccErrors(All);
}

Driver::Driver(DriverOptions Opts) : Opts(std::move(Opts)) {
  registerStandardHeaders(Headers);
}

Driver::Compiled Driver::compile(const std::string &Source,
                                 const std::string &Name) {
  Compiled Result;
  Result.Interner = std::make_unique<StringInterner>();
  DiagnosticEngine Diags;
  Preprocessor PP(*Result.Interner, Diags, Headers);
  std::vector<Token> Toks = PP.run(Source, Name);
  if (Diags.hasErrors()) {
    Result.Errors = Diags.render();
    return Result;
  }
  Result.Ast = std::make_unique<AstContext>(Opts.Target, *Result.Interner);
  Parser P(std::move(Toks), *Result.Ast, Diags);
  bool ParseOk = P.parseTranslationUnit();
  UbSink StaticSink;
  if (ParseOk) {
    Sema S(*Result.Ast, Diags, StaticSink);
    S.run();
    if (Opts.RunStaticChecks) {
      StaticChecker Checker(*Result.Ast, StaticSink);
      Checker.run();
    }
    assignBuiltinIds(*Result.Ast);
  }
  Result.StaticUb = StaticSink.all();
  Result.Errors = Diags.render();
  Result.Ok = !Diags.hasErrors();
  return Result;
}

DriverOutcome Driver::runSource(const std::string &Source,
                                const std::string &Name) {
  DriverOutcome Outcome;
  Compiled C = compile(Source, Name);
  Outcome.CompileOk = C.Ok;
  Outcome.CompileErrors = C.Errors;
  Outcome.StaticUb = C.StaticUb;
  if (!C.Ok) {
    Outcome.Status = RunStatus::Internal;
    return Outcome;
  }

  UbSink RunSink;
  Machine M(*C.Ast, Opts.Machine, RunSink);
  Outcome.Status = M.run();
  Outcome.ExitCode = M.config().ExitCode;
  Outcome.Output = M.config().Output;
  Outcome.DynamicUb = RunSink.all();
  Outcome.OrdersExplored = 1;

  // When the default order found nothing, search others: undefinedness
  // may hide on a different (still conforming) evaluation strategy.
  if (Outcome.DynamicUb.empty() && Opts.SearchRuns > 1 &&
      Outcome.Status == RunStatus::Completed) {
    SearchOptions SO;
    SO.MaxRuns = Opts.SearchRuns;
    SO.Jobs = Opts.SearchJobs;
    SO.Dedup = Opts.SearchDedup;
    SO.UseSnapshots = Opts.SearchSnapshots;
    SO.Sched = Opts.SearchSched;
    OrderSearch Search(*C.Ast, Opts.Machine, SO);
    SearchResult SR = Search.run();
    Outcome.OrdersExplored += SR.RunsExplored;
    Outcome.OrdersDeduped = SR.DedupHits + SR.SubtreesPruned;
    Outcome.SearchTruncated = SR.FrontierTruncated;
    Outcome.SearchDropped = SR.DroppedSubtrees;
    Outcome.SearchSteals = SR.Steals;
    Outcome.SearchEvictions = SR.SnapshotEvictions;
    Outcome.SearchPeakFrontier = SR.PeakFrontier;
    if (SR.UbFound) {
      Outcome.DynamicUb = SR.Reports;
      Outcome.SearchWitness = SR.Witness;
    }
  }
  return Outcome;
}

BatchResult Driver::runBatch(const std::vector<BatchInput> &Inputs) {
  auto Start = std::chrono::steady_clock::now();
  BatchResult Batch;
  Batch.Outcomes.resize(Inputs.size());
  Batch.Stats.Programs = static_cast<unsigned>(Inputs.size());

  if (Opts.SearchSched == SchedKind::Wave) {
    // The wave engine has no multi-program scheduler, so honoring the
    // reference selection means the reference path: one sequential
    // runSource per unit. Verdicts, witnesses, outputs, and exit codes
    // are identical to the stealing batch (test_scheduler asserts it);
    // only wall-clock shape and OrdersExplored differ (runSource
    // executes the default order once more outside the search).
    Batch.Stats.Jobs = 1; // sequential by definition
    for (size_t I = 0; I < Inputs.size(); ++I) {
      DriverOutcome &O = Batch.Outcomes[I];
      O = runSource(Inputs[I].Source, Inputs[I].Name);
      // Aggregate what the wave path can report so --batch-stats is
      // truthful: runs executed and deduped events (the wave outcome
      // does not separate dedup hits from barrier twin prunes; steals
      // are genuinely zero here).
      Batch.Stats.RunsExecuted += O.OrdersExplored;
      Batch.Stats.DedupHits += O.OrdersDeduped;
      Batch.Stats.SnapshotEvictions += O.SearchEvictions;
      Batch.Stats.PeakFrontier =
          std::max<uint64_t>(Batch.Stats.PeakFrontier, O.SearchPeakFrontier);
    }
    auto End = std::chrono::steady_clock::now();
    Batch.Stats.WallMs =
        std::chrono::duration<double, std::milli>(End - Start).count();
    return Batch;
  }

  // Compile everything first (cheap next to the searches), keeping the
  // ASTs alive for the shared scheduler.
  std::vector<Compiled> Units(Inputs.size());
  for (size_t I = 0; I < Inputs.size(); ++I) {
    Units[I] = compile(Inputs[I].Source, Inputs[I].Name);
    DriverOutcome &O = Batch.Outcomes[I];
    O.CompileOk = Units[I].Ok;
    O.CompileErrors = Units[I].Errors;
    O.StaticUb = Units[I].StaticUb;
    if (!Units[I].Ok)
      O.Status = RunStatus::Internal;
  }

  // Submit every compiling unit into one scheduler. Root gating makes
  // each program's root task the runSource default-order run: the
  // search fans out only when it completed cleanly.
  SearchScheduler::Config Cfg;
  Cfg.Jobs = Opts.SearchJobs;
  SearchScheduler Scheduler(Cfg);
  std::vector<size_t> ProgOf(Inputs.size(), SIZE_MAX);
  for (size_t I = 0; I < Inputs.size(); ++I) {
    if (!Units[I].Ok)
      continue;
    SearchOptions SO;
    SO.MaxRuns = std::max(1u, Opts.SearchRuns);
    SO.Jobs = Opts.SearchJobs;
    SO.Dedup = Opts.SearchDedup;
    SO.UseSnapshots = Opts.SearchSnapshots;
    ProgOf[I] = Scheduler.submit(*Units[I].Ast, Opts.Machine, SO,
                                 /*RootGated=*/true);
  }
  Scheduler.runAll();

  for (size_t I = 0; I < Inputs.size(); ++I) {
    if (ProgOf[I] == SIZE_MAX)
      continue;
    SearchResult SR = Scheduler.takeResult(ProgOf[I]);
    DriverOutcome &O = Batch.Outcomes[I];
    O.Status = SR.RootStatus;
    O.ExitCode = SR.RootExitCode;
    O.Output = std::move(SR.RootOutput);
    O.OrdersExplored = SR.RunsExplored;
    O.OrdersDeduped = SR.DedupHits + SR.SubtreesPruned;
    O.SearchTruncated = SR.FrontierTruncated;
    O.SearchDropped = SR.DroppedSubtrees;
    O.SearchSteals = SR.Steals;
    O.SearchEvictions = SR.SnapshotEvictions;
    O.SearchPeakFrontier = SR.PeakFrontier;
    if (SR.UbFound) {
      O.DynamicUb = SR.Reports;
      O.SearchWitness = SR.Witness;
    }
  }

  const SchedulerStats &SS = Scheduler.stats();
  Batch.Stats.Jobs = SS.Jobs;
  Batch.Stats.Steals = SS.Steals;
  Batch.Stats.SnapshotEvictions = SS.SnapshotEvictions;
  Batch.Stats.PeakFrontier = SS.PeakFrontier;
  Batch.Stats.RunsExecuted = SS.RunsExecuted;
  Batch.Stats.DedupHits = SS.DedupHits;
  auto End = std::chrono::steady_clock::now();
  Batch.Stats.WallMs =
      std::chrono::duration<double, std::milli>(End - Start).count();
  return Batch;
}
