//===- driver/Driver.cpp - The kcc-style driver --------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <chrono>

using namespace cundef;

Driver::Driver(AnalysisRequest Req)
    : Req(std::move(Req)), Eng(engineConfigFor(this->Req)) {}

Driver::Compiled Driver::compile(const std::string &Source,
                                 const std::string &Name) {
  return Eng.compile(Req, Source, Name);
}

DriverOutcome Driver::runSource(const std::string &Source,
                                const std::string &Name) {
  return Eng.submit(Req, Source, Name).take();
}

BatchResult Driver::runBatch(const std::vector<BatchInput> &Inputs) {
  auto Start = std::chrono::steady_clock::now();
  BatchResult Batch;
  Batch.Stats.Programs = static_cast<unsigned>(Inputs.size());

  SchedulerStats Before = Eng.poolStats();
  TranslationCacheStats TBefore = Eng.translationStats();
  ResultCacheStats RBefore = Eng.resultCacheStats();
  std::vector<JobHandle> Handles = Eng.submitBatch(Req, Inputs);
  Batch.Outcomes.reserve(Handles.size());
  for (JobHandle &H : Handles)
    Batch.Outcomes.push_back(H.take());
  SchedulerStats After = Eng.poolStats();
  TranslationCacheStats TAfter = Eng.translationStats();
  ResultCacheStats RAfter = Eng.resultCacheStats();
  Batch.Stats.TranslationHits = (TAfter.Hits + TAfter.InflightJoins) -
                                (TBefore.Hits + TBefore.InflightJoins);
  Batch.Stats.TranslationMisses = TAfter.Misses - TBefore.Misses;
  Batch.Stats.ResultCacheHits = (RAfter.Hits + RAfter.InflightJoins) -
                                (RBefore.Hits + RBefore.InflightJoins);
  Batch.Stats.ResultCacheMisses = RAfter.Misses - RBefore.Misses;

  if (Req.searchSched() == SchedKind::Wave) {
    // The wave reference path runs on the engine's frontend workers
    // and never touches the steal pool: aggregate the per-program
    // outcomes instead of diffing pool counters.
    SchedulerStats St = waveAggregateStats(Batch.Outcomes);
    Batch.Stats.Jobs = St.Jobs;
    Batch.Stats.RunsExecuted = St.RunsExecuted;
    Batch.Stats.RunsCommitted = St.RunsCommitted;
    Batch.Stats.DedupHits = St.DedupHits;
    Batch.Stats.SnapshotEvictions = St.SnapshotEvictions;
    Batch.Stats.PeakFrontier = St.PeakFrontier;
  } else {
    // Per-batch delta of the engine's monotonic pool counters: exact
    // on a quiescent engine, and still meaningful when batches share
    // the pool with other submissions.
    Batch.Stats.Jobs = After.Jobs;
    Batch.Stats.Steals = After.Steals - Before.Steals;
    Batch.Stats.SnapshotEvictions =
        After.SnapshotEvictions - Before.SnapshotEvictions;
    Batch.Stats.PeakFrontier = After.PeakFrontier;
    Batch.Stats.RunsExecuted = After.RunsExecuted - Before.RunsExecuted;
    Batch.Stats.RunsCommitted = After.RunsCommitted - Before.RunsCommitted;
    Batch.Stats.ProvisionalRequeues =
        After.ProvisionalRequeues - Before.ProvisionalRequeues;
    Batch.Stats.DedupHits = After.DedupHits - Before.DedupHits;
  }

  auto End = std::chrono::steady_clock::now();
  Batch.Stats.WallMs =
      std::chrono::duration<double, std::milli>(End - Start).count();
  return Batch;
}
