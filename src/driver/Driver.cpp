//===- driver/Driver.cpp - The kcc-style driver --------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "core/Search.h"
#include "libc/Builtins.h"
#include "libc/Headers.h"
#include "parse/Parser.h"
#include "sema/Sema.h"
#include "ub/StaticChecks.h"

using namespace cundef;

std::string DriverOutcome::renderReport() const {
  std::string Out;
  if (!CompileOk && StaticUb.empty() && DynamicUb.empty())
    return CompileErrors;
  std::vector<UbReport> All = StaticUb;
  All.insert(All.end(), DynamicUb.begin(), DynamicUb.end());
  return renderKccErrors(All);
}

Driver::Driver(DriverOptions Opts) : Opts(std::move(Opts)) {
  registerStandardHeaders(Headers);
}

Driver::Compiled Driver::compile(const std::string &Source,
                                 const std::string &Name) {
  Compiled Result;
  Result.Interner = std::make_unique<StringInterner>();
  DiagnosticEngine Diags;
  Preprocessor PP(*Result.Interner, Diags, Headers);
  std::vector<Token> Toks = PP.run(Source, Name);
  if (Diags.hasErrors()) {
    Result.Errors = Diags.render();
    return Result;
  }
  Result.Ast = std::make_unique<AstContext>(Opts.Target, *Result.Interner);
  Parser P(std::move(Toks), *Result.Ast, Diags);
  bool ParseOk = P.parseTranslationUnit();
  UbSink StaticSink;
  if (ParseOk) {
    Sema S(*Result.Ast, Diags, StaticSink);
    S.run();
    if (Opts.RunStaticChecks) {
      StaticChecker Checker(*Result.Ast, StaticSink);
      Checker.run();
    }
    assignBuiltinIds(*Result.Ast);
  }
  Result.StaticUb = StaticSink.all();
  Result.Errors = Diags.render();
  Result.Ok = !Diags.hasErrors();
  return Result;
}

DriverOutcome Driver::runSource(const std::string &Source,
                                const std::string &Name) {
  DriverOutcome Outcome;
  Compiled C = compile(Source, Name);
  Outcome.CompileOk = C.Ok;
  Outcome.CompileErrors = C.Errors;
  Outcome.StaticUb = C.StaticUb;
  if (!C.Ok) {
    Outcome.Status = RunStatus::Internal;
    return Outcome;
  }

  UbSink RunSink;
  Machine M(*C.Ast, Opts.Machine, RunSink);
  Outcome.Status = M.run();
  Outcome.ExitCode = M.config().ExitCode;
  Outcome.Output = M.config().Output;
  Outcome.DynamicUb = RunSink.all();
  Outcome.OrdersExplored = 1;

  // When the default order found nothing, search others: undefinedness
  // may hide on a different (still conforming) evaluation strategy.
  if (Outcome.DynamicUb.empty() && Opts.SearchRuns > 1 &&
      Outcome.Status == RunStatus::Completed) {
    SearchOptions SO;
    SO.MaxRuns = Opts.SearchRuns;
    SO.Jobs = Opts.SearchJobs;
    SO.Dedup = Opts.SearchDedup;
    SO.UseSnapshots = Opts.SearchSnapshots;
    OrderSearch Search(*C.Ast, Opts.Machine, SO);
    SearchResult SR = Search.run();
    Outcome.OrdersExplored += SR.RunsExplored;
    Outcome.OrdersDeduped = SR.DedupHits + SR.SubtreesPruned;
    Outcome.SearchTruncated = SR.FrontierTruncated;
    Outcome.SearchDropped = SR.DroppedSubtrees;
    if (SR.UbFound) {
      Outcome.DynamicUb = SR.Reports;
      Outcome.SearchWitness = SR.Witness;
    }
  }
  return Outcome;
}
