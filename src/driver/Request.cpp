//===- driver/Request.cpp - Validated analysis requests ------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "driver/Request.h"

#include "support/Strings.h"

#include <cstdio>
#include <cstdlib>

using namespace cundef;

AnalysisRequest::Builder::Result AnalysisRequest::Builder::build() const {
  Result R;
  R.Request = Req;
  RequestError &E = R.Err;

  if (Req.SearchRuns == 0) {
    E.Kind = RequestError::Code::ZeroSearchBudget;
    E.Message = "invalid search budget 0: the budget must allow at least "
                "one run (the policy default order)";
  } else if (Req.SearchJobs > MaxSearchJobs) {
    E.Kind = RequestError::Code::OversizedSearchJobs;
    E.Message = strFormat("invalid worker count %u: the pool is capped at "
                          "%u (0 auto-detects hardware concurrency)",
                          Req.SearchJobs, MaxSearchJobs);
  } else if (Req.Machine.StepLimit == 0) {
    E.Kind = RequestError::Code::ZeroStepLimit;
    E.Message = "invalid step limit 0: the machine could not take a single "
                "step, so every program would report StepLimit";
  } else if (Req.Machine.MaxCallDepth == 0) {
    E.Kind = RequestError::Code::ZeroCallDepth;
    E.Message = "invalid call-depth limit 0: main() itself could not be "
                "entered";
  }
  return R;
}

AnalysisRequest AnalysisRequest::Builder::buildOrDie() const {
  Result R = build();
  if (!R.ok()) {
    std::fprintf(stderr, "AnalysisRequest: %s\n", R.Err.Message.c_str());
    std::abort();
  }
  return R.Request;
}
