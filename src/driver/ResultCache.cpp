//===- driver/ResultCache.cpp - Content-addressed search results ----------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "driver/ResultCache.h"

#include <cassert>
#include <utility>

using namespace cundef;

namespace {
/// Rounds \p N up to the next power of two (minimum 1).
unsigned ceilPow2(unsigned N) {
  unsigned P = 1;
  while (P < N)
    P <<= 1;
  return P;
}
} // namespace

ResultCache::ResultCache(unsigned Capacity, unsigned ShardCount)
    : Capacity(Capacity),
      PerShardCapacity(
          Capacity ? std::max(1u, Capacity / ceilPow2(std::max(1u, ShardCount)))
                   : 0),
      Shards(Capacity ? ceilPow2(std::max(1u, ShardCount)) : 1) {}

ResultCache::Claim ResultCache::begin(const ResultKey &Key, Waiter OnReady) {
  if (!enabled())
    return {};

  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mu);

  auto It = S.Entries.find(Key);
  if (It == S.Entries.end()) {
    // First submission: claim the key. The entry is in-flight (not in
    // the LRU list) until the owner's publish().
    S.Entries.emplace(Key, Entry{});
    bump(&Counters::Misses);
    Claim C;
    C.K = Claim::Kind::Owner;
    return C;
  }

  Entry &E = It->second;
  if (E.Done) {
    // Refresh recency before serving.
    S.Lru.splice(S.Lru.end(), S.Lru, E.LruIt);
    bump(&Counters::Hits);
    Claim C;
    C.K = Claim::Kind::Hit;
    C.Ready = E.Ready;
    return C;
  }

  // In-flight elsewhere: ride the owner's search.
  E.Waiters.push_back(std::move(OnReady));
  bump(&Counters::InflightJoins);
  Claim C;
  C.K = Claim::Kind::Joined;
  return C;
}

void ResultCache::publish(const ResultKey &Key, CachedOutcome Outcome,
                          bool Store) {
  if (!enabled())
    return;

  std::vector<Waiter> Fire;
  {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.Mu);

    auto It = S.Entries.find(Key);
    if (It == S.Entries.end() || It->second.Done)
      return;

    Entry &E = It->second;
    Fire = std::move(E.Waiters);
    E.Waiters.clear();

    if (Store && Outcome) {
      E.Ready = Outcome;
      E.Done = true;
      E.LruIt = S.Lru.insert(S.Lru.end(), Key);
      ++S.DoneCount;
      while (S.DoneCount > PerShardCapacity) {
        const ResultKey &Victim = S.Lru.front();
        // The victim is never the entry just published unless the
        // shard capacity is 1 and it is the sole resident — in which
        // case dropping it is still correct (waiters already hold
        // their copy of Outcome below).
        S.Entries.erase(Victim);
        S.Lru.pop_front();
        --S.DoneCount;
        Stats.Evictions.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      // Owner finished without a cacheable outcome: release the claim
      // so a later submission of the key starts fresh.
      S.Entries.erase(It);
      Stats.Abandoned.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Waiters run arbitrary completion code (job finishers, sink
  // callbacks) — never under a shard lock.
  for (Waiter &W : Fire)
    if (W)
      W(Outcome && Store ? Outcome : CachedOutcome());
}

void ResultCache::invalidateContextsExcept(uint64_t ContextHash) {
  if (!enabled())
    return;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (auto It = S.Lru.begin(); It != S.Lru.end();) {
      if (It->Translation.ContextHash == ContextHash) {
        ++It;
        continue;
      }
      S.Entries.erase(*It);
      It = S.Lru.erase(It);
      --S.DoneCount;
      Stats.Evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

size_t ResultCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.DoneCount;
  }
  return N;
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats R;
  R.Lookups = Stats.Lookups.load(std::memory_order_relaxed);
  R.Hits = Stats.Hits.load(std::memory_order_relaxed);
  R.Misses = Stats.Misses.load(std::memory_order_relaxed);
  R.InflightJoins = Stats.InflightJoins.load(std::memory_order_relaxed);
  R.Evictions = Stats.Evictions.load(std::memory_order_relaxed);
  R.Abandoned = Stats.Abandoned.load(std::memory_order_relaxed);
  return R;
}
