//===- driver/Engine.cpp - The persistent analysis engine ----------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// Lifetime model:
//
//  * A pooled job's AST must outlive every machine that touches it —
//    including runs of a *finished* program that are still observing
//    their cancellation. Completed jobs therefore move their compile
//    artifacts into a graveyard instead of freeing them; drain() frees
//    the graveyard only after the scheduler confirmed full idleness
//    (SearchScheduler::reclaimFinished), at which point no worker can
//    hold a machine over any of those ASTs.
//
//  * The completion callback runs on a worker thread with no scheduler
//    locks held and takes the engine mutex only to look up the job, so
//    sinks may re-enter the engine (submit chains, service pipelines).
//
//===----------------------------------------------------------------------===//

#include "driver/Engine.h"

#include "libc/Builtins.h"
#include "libc/Headers.h"
#include "parse/Parser.h"
#include "sema/Sema.h"
#include "ub/StaticChecks.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <unordered_map>

using namespace cundef;

EngineConfig cundef::engineConfigFor(const AnalysisRequest &Req) {
  EngineConfig Cfg;
  Cfg.Workers = Req.searchJobs();
  return Cfg;
}

SchedulerStats
cundef::waveAggregateStats(const std::vector<DriverOutcome> &Outcomes) {
  SchedulerStats St;
  St.Programs = static_cast<unsigned>(Outcomes.size());
  St.Jobs = 1; // sequential by definition
  for (const DriverOutcome &O : Outcomes) {
    St.RunsExecuted += O.OrdersExplored;
    St.DedupHits += O.OrdersDeduped;
    St.SnapshotEvictions += O.SearchEvictions;
    St.PeakFrontier = std::max<uint64_t>(St.PeakFrontier, O.SearchPeakFrontier);
  }
  return St;
}

std::string DriverOutcome::renderReport() const {
  std::string Out;
  if (!CompileOk && StaticUb.empty() && DynamicUb.empty())
    return CompileErrors;
  std::vector<UbReport> All = StaticUb;
  All.insert(All.end(), DynamicUb.begin(), DynamicUb.end());
  return renderKccErrors(All);
}

//===----------------------------------------------------------------------===//
// Job state
//===----------------------------------------------------------------------===//

struct cundef::detail::JobState {
  size_t Id = 0;
  std::string Name;
  std::chrono::steady_clock::time_point SubmitTime;
  EngineSink *Sink = nullptr;

  /// Compile artifacts pinned while the search runs (pooled jobs only).
  std::unique_ptr<StringInterner> Interner;
  std::unique_ptr<AstContext> Ast;

  /// Partial outcome written at submit (compile half), completed by
  /// the search result. Guarded by Mu once the job is in flight.
  mutable std::mutex Mu;
  mutable std::condition_variable Cv;
  bool Done = false;
  DriverOutcome Outcome;
  double WallMicros = 0.0;
};

using cundef::detail::JobState;

size_t JobHandle::id() const {
  assert(State);
  return State->Id;
}

const std::string &JobHandle::name() const {
  assert(State);
  return State->Name;
}

bool JobHandle::done() const {
  assert(State);
  std::lock_guard<std::mutex> Lock(State->Mu);
  return State->Done;
}

const DriverOutcome &JobHandle::wait() const {
  assert(State);
  std::unique_lock<std::mutex> Lock(State->Mu);
  State->Cv.wait(Lock, [&] { return State->Done; });
  return State->Outcome;
}

DriverOutcome JobHandle::take() {
  assert(State);
  std::unique_lock<std::mutex> Lock(State->Mu);
  State->Cv.wait(Lock, [&] { return State->Done; });
  return std::move(State->Outcome);
}

double JobHandle::wallMicros() const {
  assert(State);
  std::unique_lock<std::mutex> Lock(State->Mu);
  State->Cv.wait(Lock, [&] { return State->Done; });
  return State->WallMicros;
}

//===----------------------------------------------------------------------===//
// Engine implementation
//===----------------------------------------------------------------------===//

struct AnalysisEngine::Impl {
  static SearchScheduler::Config schedConfig(const EngineConfig &Cfg) {
    SearchScheduler::Config SC;
    SC.Jobs = Cfg.Workers;
    SC.ClampJobsToHardware = Cfg.ClampWorkersToHardware;
    SC.SnapshotBudget = Cfg.SnapshotBudget;
    return SC;
  }

  explicit Impl(EngineConfig Cfg) : Cfg(Cfg), Sched(schedConfig(Cfg)) {
    registerStandardHeaders(Headers);
    Sched.setProgramDoneCallback([this](size_t Prog) { onProgramDone(Prog); });
  }

  EngineConfig Cfg;
  HeaderRegistry Headers;
  SearchScheduler Sched;

  /// Guards Pending, Started, ShutDown, Graveyard.
  std::mutex Mu;
  /// Pooled jobs by scheduler program id.
  std::unordered_map<size_t, std::shared_ptr<JobState>> Pending;
  /// Compile artifacts of completed pooled jobs, freed on drain()
  /// once the pool is provably idle (see the file header).
  std::vector<std::pair<std::unique_ptr<StringInterner>,
                        std::unique_ptr<AstContext>>>
      Graveyard;
  bool Started = false;
  bool ShutDown = false;

  std::atomic<size_t> NextJobId{1};
  std::atomic<size_t> Outstanding{0};
  std::mutex DrainMu;
  std::condition_variable DrainCv;

  //===--- Completion (worker thread) ------------------------------------===//

  void onProgramDone(size_t Prog) {
    std::shared_ptr<JobState> St;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Pending.find(Prog);
      assert(It != Pending.end() && "completion for unknown program");
      St = std::move(It->second);
      Pending.erase(It);
    }
    SearchResult SR = Sched.takeResult(Prog);
    double Wall = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - St->SubmitTime)
                      .count();

    DriverOutcome O;
    {
      std::lock_guard<std::mutex> Lock(St->Mu);
      O = std::move(St->Outcome); // the compile half, written at submit
    }
    mapSearchResult(O, std::move(SR));

    // Keep the AST alive until the pool is provably idle: a cancelling
    // sibling run may still be stepping over it.
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Graveyard.emplace_back(std::move(St->Interner), std::move(St->Ast));
    }

    finishJob(*St, std::move(O), Wall);
  }

  /// Fires events and fulfills the future. No engine locks held.
  void finishJob(JobState &St, DriverOutcome O, double Wall) {
    if (St.Sink) {
      EngineJobInfo Info{St.Id, St.Name};
      if (O.SearchTruncated)
        St.Sink->onFrontierTruncated(Info, O.SearchDropped);
      if (O.anyUb()) {
        std::vector<UbReport> All = O.StaticUb;
        All.insert(All.end(), O.DynamicUb.begin(), O.DynamicUb.end());
        St.Sink->onUbFound(Info, All);
      }
      St.Sink->onProgramFinished(Info, O, Wall);
    }
    {
      std::lock_guard<std::mutex> Lock(St.Mu);
      St.Outcome = std::move(O);
      St.WallMicros = Wall;
      St.Done = true;
    }
    St.Cv.notify_all();
    Outstanding.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> Lock(DrainMu);
    }
    DrainCv.notify_all();
  }

  /// The search-counter tail shared by the pooled and wave-inline
  /// paths: everything except the root-run fields and how
  /// OrdersExplored accumulates. New SearchResult counters get
  /// threaded through here exactly once.
  static void mapSearchCounters(DriverOutcome &O, SearchResult &SR) {
    O.OrdersDeduped = SR.DedupHits + SR.SubtreesPruned;
    O.SearchTruncated = SR.FrontierTruncated;
    O.SearchDropped = SR.DroppedSubtrees;
    O.SearchSteals = SR.Steals;
    O.SearchEvictions = SR.SnapshotEvictions;
    O.SearchPeakFrontier = SR.PeakFrontier;
    if (SR.UbFound) {
      O.DynamicUb = std::move(SR.Reports);
      O.SearchWitness = std::move(SR.Witness);
    }
  }

  /// Folds a root-gated SearchResult into the outcome — the single
  /// mapping every pooled submission shares. The root run doubles as
  /// the default-order run, so its status/output/exit code are the
  /// program's, and OrdersExplored counts every machine run once.
  static void mapSearchResult(DriverOutcome &O, SearchResult SR) {
    O.Status = SR.RootStatus;
    O.ExitCode = SR.RootExitCode;
    O.Output = std::move(SR.RootOutput);
    O.OrdersExplored = SR.RunsExplored;
    mapSearchCounters(O, SR);
  }

  //===--- Inline paths (submitting thread) -------------------------------===//

  /// The wave reference engine has no service scheduler: wave requests
  /// run synchronously on the submitting thread, in the classic
  /// two-phase shape (default-order run, then a wave search when that
  /// run was clean). Observable outputs match the pooled path
  /// (test_scheduler::BatchHonorsWaveSchedSelection); only the
  /// OrdersExplored accounting differs by the documented +1, since the
  /// wave search re-executes the default order as its own root.
  void runWaveInline(const AnalysisRequest &Req, const CompiledUnit &C,
                     DriverOutcome &O) {
    UbSink RunSink;
    Machine M(*C.Ast, Req.machine(), RunSink);
    O.Status = M.run();
    O.ExitCode = M.config().ExitCode;
    O.Output = M.config().Output;
    O.DynamicUb = RunSink.all();
    O.OrdersExplored = 1;

    if (!O.DynamicUb.empty() || Req.searchRuns() <= 1 ||
        O.Status != RunStatus::Completed)
      return;
    SearchOptions SO;
    SO.MaxRuns = Req.searchRuns();
    SO.Jobs = Req.searchJobs();
    SO.Dedup = Req.searchDedup();
    SO.UseSnapshots = Req.searchSnapshots();
    SO.SnapshotBudget = Cfg.SnapshotBudget;
    SO.Sched = SchedKind::Wave;
    OrderSearch Search(*C.Ast, Req.machine(), SO);
    SearchResult SR = Search.run();
    // The wave search re-executes the default order as its own root,
    // hence the documented += (one higher than the pooled accounting).
    O.OrdersExplored += SR.RunsExplored;
    mapSearchCounters(O, SR);
  }
};

//===----------------------------------------------------------------------===//
// AnalysisEngine
//===----------------------------------------------------------------------===//

AnalysisEngine::AnalysisEngine(EngineConfig Cfg)
    : I(std::make_unique<Impl>(Cfg)) {}

AnalysisEngine::~AnalysisEngine() { shutdown(); }

HeaderRegistry &AnalysisEngine::headers() { return I->Headers; }

unsigned AnalysisEngine::workers() const { return I->Sched.stats().Jobs; }

CompiledUnit AnalysisEngine::compileUnit(const AnalysisRequest &Req,
                                         const std::string &Source,
                                         const std::string &Name) {
  CompiledUnit Result;
  Result.Interner = std::make_unique<StringInterner>();
  DiagnosticEngine Diags;
  Preprocessor PP(*Result.Interner, Diags, I->Headers);
  std::vector<Token> Toks = PP.run(Source, Name);
  if (Diags.hasErrors()) {
    Result.Errors = Diags.render();
    return Result;
  }
  Result.Ast = std::make_unique<AstContext>(Req.target(), *Result.Interner);
  Parser P(std::move(Toks), *Result.Ast, Diags);
  bool ParseOk = P.parseTranslationUnit();
  UbSink StaticSink;
  if (ParseOk) {
    Sema S(*Result.Ast, Diags, StaticSink);
    S.run();
    if (Req.staticChecks()) {
      StaticChecker Checker(*Result.Ast, StaticSink);
      Checker.run();
    }
    assignBuiltinIds(*Result.Ast);
  }
  Result.StaticUb = StaticSink.all();
  Result.Errors = Diags.render();
  Result.Ok = !Diags.hasErrors();
  return Result;
}

JobHandle AnalysisEngine::submit(const AnalysisRequest &Req,
                                 const std::string &Source, std::string Name,
                                 EngineSink *Sink) {
  Impl &S = *I;
  auto St = std::make_shared<JobState>();
  St->Id = S.NextJobId.fetch_add(1, std::memory_order_relaxed);
  St->Name = std::move(Name);
  St->Sink = Sink;
  St->SubmitTime = std::chrono::steady_clock::now();
  JobHandle Handle{St};

  if (isShutdown()) {
    // Rejected, not analyzed: an Internal outcome, no events.
    DriverOutcome O;
    O.CompileErrors = "analysis engine is shut down";
    std::lock_guard<std::mutex> Lock(St->Mu);
    St->Outcome = std::move(O);
    St->Done = true;
    return Handle;
  }

  CompiledUnit C = compileUnit(Req, Source, St->Name);
  DriverOutcome O;
  O.CompileOk = C.Ok;
  O.CompileErrors = C.Errors;
  O.StaticUb = C.StaticUb;

  if (!C.Ok) {
    O.Status = RunStatus::Internal;
    double Wall = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - St->SubmitTime)
                      .count();
    S.Outstanding.fetch_add(1, std::memory_order_acq_rel);
    S.finishJob(*St, std::move(O), Wall);
    return Handle;
  }

  if (Req.searchSched() == SchedKind::Wave) {
    S.runWaveInline(Req, C, O);
    double Wall = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - St->SubmitTime)
                      .count();
    S.Outstanding.fetch_add(1, std::memory_order_acq_rel);
    S.finishJob(*St, std::move(O), Wall);
    return Handle;
  }

  // Pooled path: the request was validated at build time (searchRuns
  // >= 1), so the root run always executes and doubles as the
  // default-order run (root gating).
  SearchOptions SO;
  SO.MaxRuns = Req.searchRuns();
  SO.Jobs = Req.searchJobs();
  SO.Dedup = Req.searchDedup();
  SO.UseSnapshots = Req.searchSnapshots();
  SO.SnapshotBudget = S.Cfg.SnapshotBudget;
  SO.Sched = SchedKind::Stealing;

  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.ShutDown) {
      // Lost the race against shutdown(): reject like the early check.
      DriverOutcome R;
      R.CompileErrors = "analysis engine is shut down";
      std::lock_guard<std::mutex> StLock(St->Mu);
      St->Outcome = std::move(R);
      St->Done = true;
      return Handle;
    }
    if (!S.Started) {
      S.Sched.start();
      S.Started = true;
    }
    St->Interner = std::move(C.Interner);
    St->Ast = std::move(C.Ast);
    {
      std::lock_guard<std::mutex> StLock(St->Mu);
      St->Outcome = std::move(O); // compile half; completed on finish
    }
    S.Outstanding.fetch_add(1, std::memory_order_acq_rel);
    // Holding Mu across the scheduler submit closes the race where a
    // one-worker pool finishes the program before it lands in Pending:
    // the completion callback takes Mu before its lookup.
    size_t Prog = S.Sched.submit(*St->Ast, Req.machine(), SO,
                                 /*RootGated=*/true);
    S.Pending.emplace(Prog, St);
  }
  return Handle;
}

std::vector<JobHandle>
AnalysisEngine::submitBatch(const AnalysisRequest &Req,
                            const std::vector<BatchInput> &Inputs,
                            EngineSink *Sink) {
  std::vector<JobHandle> Handles;
  Handles.reserve(Inputs.size());
  for (const BatchInput &In : Inputs)
    Handles.push_back(submit(Req, In.Source, In.Name, Sink));
  return Handles;
}

void AnalysisEngine::drain() {
  Impl &S = *I;
  {
    std::unique_lock<std::mutex> Lock(S.DrainMu);
    S.DrainCv.wait(Lock, [&] {
      return S.Outstanding.load(std::memory_order_acquire) == 0;
    });
  }
  if (!S.Sched.started())
    return;
  // With nothing outstanding every scheduler program is finished;
  // reclaim confirms full idleness (no cancelling stragglers), after
  // which the graveyard ASTs are provably unreferenced. Only entries
  // that existed BEFORE the reclaim are freed: a job submitted and
  // finished concurrently with this drain may append an AST whose
  // stragglers are still cancelling, and that entry must survive
  // until a later quiescent point.
  size_t Cut;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Cut = S.Graveyard.size();
  }
  if (S.Sched.reclaimFinished()) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Graveyard.erase(S.Graveyard.begin(),
                      S.Graveyard.begin() + std::min(Cut, S.Graveyard.size()));
  }
}

void AnalysisEngine::shutdown() {
  Impl &S = *I;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.ShutDown)
      return;
    S.ShutDown = true;
  }
  drain();
  S.Sched.stop();
  // The pool is joined: no machine references any AST anymore.
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Graveyard.clear();
}

bool AnalysisEngine::isShutdown() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  return I->ShutDown;
}

SchedulerStats AnalysisEngine::poolStats() const { return I->Sched.stats(); }
