//===- driver/Engine.cpp - The persistent analysis engine ----------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// Threading model:
//
//  * submit() only enqueues: it copies the source into a frontend task
//    and returns. The frontend pool dequeues tasks, resolves each
//    through the translation cache (one compile per content key,
//    however many submissions race on it), and either finishes the job
//    right there (compile failure, wave-scheduled search) or seeds the
//    search scheduler with the shared artifact. Frontend compilation
//    of later submissions therefore overlaps searches already running
//    on the warm steal pool.
//
//  * A pooled job's artifact must outlive every machine that touches
//    it — including runs of a *finished* program that are still
//    observing their cancellation. Completed jobs therefore move their
//    artifact reference into a graveyard instead of dropping it;
//    drain() releases the graveyard only after the scheduler confirmed
//    full idleness (SearchScheduler::reclaimFinished), at which point
//    no worker can hold a machine over any of those ASTs. The
//    translation cache holds its own reference, so a graveyard release
//    does not forfeit reuse — and a cache *eviction* can never free an
//    AST a machine still reads (shared_ptr).
//
//  * The completion callback runs on a search worker with no scheduler
//    locks held and takes the engine mutex only to look up the job, so
//    sinks may re-enter the engine (submit chains, service pipelines).
//
//===----------------------------------------------------------------------===//

#include "driver/Engine.h"

#include "frontend/Frontend.h"
#include "libc/Headers.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

using namespace cundef;

EngineConfig cundef::engineConfigFor(const AnalysisRequest &Req) {
  EngineConfig Cfg;
  Cfg.Workers = Req.searchJobs();
  return Cfg;
}

SchedulerStats
cundef::waveAggregateStats(const std::vector<DriverOutcome> &Outcomes) {
  SchedulerStats St;
  St.Jobs = 1; // each wave search runs its program alone
  for (const DriverOutcome &O : Outcomes) {
    // A result-cache hit ran no search: its counters are a replay of
    // the original run's and must not be double-counted into the
    // pool-surrogate aggregate (the original already was, or will be,
    // when its own outcome passes through here).
    if (O.ResultCacheHit)
      continue;
    ++St.Programs;
    St.RunsExecuted += O.OrdersExplored;
    St.DedupHits += O.OrdersDeduped;
    St.SnapshotEvictions += O.SearchEvictions;
    St.PeakFrontier = std::max<uint64_t>(St.PeakFrontier, O.SearchPeakFrontier);
  }
  // The wave barrier never speculates: every executed run is a
  // committed run, the speculative-waste ratio is identically zero,
  // and the provisional/shard counters have no wave counterpart.
  St.RunsCommitted = St.RunsExecuted;
  return St;
}

std::string DriverOutcome::renderReport() const {
  std::string Out;
  if (!CompileOk && StaticUb.empty() && DynamicUb.empty())
    return CompileErrors;
  std::vector<UbReport> All = StaticUb;
  All.insert(All.end(), DynamicUb.begin(), DynamicUb.end());
  return renderKccErrors(All);
}

//===----------------------------------------------------------------------===//
// Job state
//===----------------------------------------------------------------------===//

struct cundef::detail::JobState {
  size_t Id = 0;
  std::string Name;
  std::chrono::steady_clock::time_point SubmitTime;
  std::chrono::steady_clock::time_point SearchStart;
  EngineSink *Sink = nullptr;

  /// The immutable artifact pinned while the search runs (pooled jobs
  /// only). Shared with the translation cache and any concurrent job
  /// of the same content.
  CompiledProgramRef Artifact;

  /// This job owns a result-cache claim: finishJob publishes its
  /// outcome under RKey (and thereby fires any joined submissions).
  bool Publish = false;
  ResultKey RKey;

  /// Partial outcome written by the frontend stage (compile half),
  /// completed by the search result. Guarded by Mu once the job is in
  /// flight.
  mutable std::mutex Mu;
  mutable std::condition_variable Cv;
  bool Done = false;
  DriverOutcome Outcome;
  double WallMicros = 0.0;
};

using cundef::detail::JobState;

size_t JobHandle::id() const {
  assert(State);
  return State->Id;
}

const std::string &JobHandle::name() const {
  assert(State);
  return State->Name;
}

bool JobHandle::done() const {
  assert(State);
  std::lock_guard<std::mutex> Lock(State->Mu);
  return State->Done;
}

const DriverOutcome &JobHandle::wait() const {
  assert(State);
  std::unique_lock<std::mutex> Lock(State->Mu);
  State->Cv.wait(Lock, [&] { return State->Done; });
  return State->Outcome;
}

DriverOutcome JobHandle::take() {
  assert(State);
  std::unique_lock<std::mutex> Lock(State->Mu);
  State->Cv.wait(Lock, [&] { return State->Done; });
  return std::move(State->Outcome);
}

double JobHandle::wallMicros() const {
  assert(State);
  std::unique_lock<std::mutex> Lock(State->Mu);
  State->Cv.wait(Lock, [&] { return State->Done; });
  return State->WallMicros;
}

//===----------------------------------------------------------------------===//
// Engine implementation
//===----------------------------------------------------------------------===//

namespace {

double microsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

struct AnalysisEngine::Impl {
  static SearchScheduler::Config schedConfig(const EngineConfig &Cfg) {
    SearchScheduler::Config SC;
    SC.Jobs = Cfg.Workers;
    SC.ClampJobsToHardware = Cfg.ClampWorkersToHardware;
    SC.SnapshotBudget = Cfg.SnapshotBudget;
    SC.SnapshotSharing = true;
    return SC;
  }

  explicit Impl(EngineConfig Cfg)
      : Cfg(Cfg), Sched(schedConfig(Cfg)), TCache(Cfg.TranslationCacheEntries),
        RCache(Cfg.ResultCacheEntries) {
    registerStandardHeaders(Headers);
    Sched.setProgramDoneCallback([this](size_t Prog) { onProgramDone(Prog); });
  }

  EngineConfig Cfg;
  HeaderRegistry Headers;
  SearchScheduler Sched;
  TranslationCache TCache;
  ResultCache RCache;
  /// Header-registry fingerprint of the last cached submission; a
  /// change means headers() was edited on the live engine, which
  /// triggers the result-cache context sweep (0 = none seen yet).
  std::atomic<uint64_t> LastContextHash{0};

  /// One queued submission: everything the frontend stage needs, owned
  /// by the task (the caller's source was copied at submit).
  struct FrontendTask {
    std::shared_ptr<JobState> St;
    AnalysisRequest Req;
    std::string Source;
  };

  /// Guards Pending, Graveyard, Started, ShutDown, and the frontend
  /// pool state (FeQueue, FeThreads, FeStop).
  std::mutex Mu;
  /// Pooled jobs by scheduler program id.
  std::unordered_map<size_t, std::shared_ptr<JobState>> Pending;
  /// Artifact references of completed pooled jobs, released on drain()
  /// once the pool is provably idle (see the file header).
  std::vector<CompiledProgramRef> Graveyard;
  bool Started = false;
  bool ShutDown = false;

  std::deque<FrontendTask> FeQueue;
  std::condition_variable FeCv;
  std::vector<std::thread> FeThreads;
  bool FeStop = false;

  std::atomic<size_t> NextJobId{1};
  std::atomic<size_t> Outstanding{0};
  std::mutex DrainMu;
  std::condition_variable DrainCv;

  //===--- Frontend pool --------------------------------------------------===//

  unsigned frontendWorkers() const {
    return Cfg.FrontendWorkers ? Cfg.FrontendWorkers : 2;
  }

  /// Spawns the frontend pool (caller holds Mu).
  void spawnFrontendPool() {
    const unsigned N = frontendWorkers();
    FeThreads.reserve(N);
    for (unsigned T = 0; T < N; ++T)
      FeThreads.emplace_back([this] { frontendWorker(); });
  }

  void frontendWorker() {
    for (;;) {
      FrontendTask Task;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        FeCv.wait(Lock, [&] { return FeStop || !FeQueue.empty(); });
        if (FeQueue.empty())
          return; // FeStop with the queue already drained
        Task = std::move(FeQueue.front());
        FeQueue.pop_front();
      }
      processSubmission(std::move(Task));
    }
  }

  /// Resolves \p Source through the translation cache (or compiles
  /// directly when the cache is disabled). \p OutKey, when given,
  /// receives the unit's content address even on the uncached path —
  /// the result cache keys on it, so it must exist independently of
  /// whether the translation cache is on.
  CompiledProgramRef frontend(const AnalysisRequest &Req,
                              const std::string &Source,
                              const std::string &Name, bool *WasHit,
                              TranslationKey *OutKey = nullptr) {
    FrontendOptions FO;
    FO.Target = Req.target();
    FO.StaticChecks = Req.staticChecks();
    FO.FlowChecks = Req.staticAnalyze() != StaticAnalysisMode::Off;
    if (!TCache.enabled()) {
      if (WasHit)
        *WasHit = false;
      if (OutKey)
        *OutKey = translationKeyFor(FO, Source, Name, Headers.fingerprint());
      return compileTranslationUnit(FO, Source, Name, Headers);
    }
    // Hash once: the key addresses the cache AND stamps the artifact,
    // so the two can never diverge (and a miss does not re-hash the
    // source and the whole header registry inside the compile).
    TranslationKey Key =
        translationKeyFor(FO, Source, Name, Headers.fingerprint());
    if (OutKey)
      *OutKey = Key;
    return TCache.getOrCompile(
        Key,
        [&] { return compileTranslationUnit(FO, Source, Name, Headers, &Key); },
        WasHit);
  }

  /// The result cache's content address for \p Req over the unit
  /// \p TKey addresses. The search fingerprint folds in the
  /// static-analysis mode: On and Only share a translation key (both
  /// run flow checks) but produce different outcomes (Only never
  /// searches), so the mode must separate their entries.
  static ResultKey resultKeyFor(const AnalysisRequest &Req,
                                const TranslationKey &TKey) {
    ResultKey K;
    K.Translation = TKey;
    K.MachineFp = machineOptionsFingerprint(Req.machine());
    SearchOptions SO;
    SO.MaxRuns = Req.searchRuns();
    SO.Sched = Req.searchSched();
    SO.Dedup = Req.searchDedup();
    SO.UseSnapshots = Req.searchSnapshots();
    Fnv1a H;
    H.u64(searchOptionsFingerprint(SO));
    H.u8(static_cast<uint8_t>(Req.staticAnalyze()));
    K.SearchFp = mix64(H.digest());
    return K;
  }

  /// A copy of the cached outcome adjusted to describe THIS
  /// submission: the cache flags and frontend timing are this job's,
  /// everything else — including SearchMicros and the search counters
  /// — replays the original run's verbatim (byte-equality is the
  /// contract; tests/test_result_cache.cpp pins it).
  static DriverOutcome cachedHitOutcome(const DriverOutcome &Cached,
                                        bool TranslationHit,
                                        double FrontendMicros) {
    DriverOutcome O = Cached;
    O.ResultCacheHit = true;
    O.TranslationCacheHit = TranslationHit;
    O.FrontendMicros = FrontendMicros;
    return O;
  }

  /// The whole per-job frontend stage, on a frontend worker: cache
  /// lookup / compile, then finish inline (compile failure, wave
  /// search) or seed the search scheduler.
  void processSubmission(FrontendTask Task) {
    JobState &St = *Task.St;
    const AnalysisRequest &Req = Task.Req;

    auto FeStart = std::chrono::steady_clock::now();
    const bool UseRC = RCache.enabled() && Req.useResultCache();
    bool Hit = false;
    TranslationKey TKey;
    CompiledProgramRef Art;
    try {
      Art = frontend(Req, Task.Source, St.Name, &Hit, UseRC ? &TKey : nullptr);
    } catch (const std::exception &E) {
      // A throwing frontend (OOM, realistically) must not escape a
      // pool thread — that would terminate the whole service and
      // strand the job's future. Fail this job, keep serving.
      DriverOutcome O;
      O.CompileErrors =
          std::string("internal error during translation: ") + E.what();
      O.FrontendMicros = microsSince(FeStart);
      finishJob(St, std::move(O), microsSince(St.SubmitTime));
      return;
    }

    DriverOutcome O;
    O.CompileOk = Art->ok();
    O.CompileErrors = Art->errors();
    O.StaticUb = Art->staticUb();
    O.StaticHints = Art->staticHints();
    O.TranslationCacheHit = Hit;
    O.FrontendMicros = microsSince(FeStart);

    // Result-cache lookup: one atomic hit / claim / join on the full
    // content address. Placed AFTER artifact resolution so a hit still
    // pays the (cheap) translation-cache lookup — keeping the
    // translation counters' Hits + Misses == Programs invariant — but
    // skips the search entirely. The frontend-exception path above
    // never reaches here, so it never claims (nothing to leak).
    if (UseRC) {
      // Live-engine header edits re-key every unit (the header
      // fingerprint is folded into TranslationKey::ContextHash), so a
      // stale entry can never be *served* — but it would squat in the
      // LRU until pressure evicts it. Sweep the previous context's
      // entries the first time a submission arrives under a new one.
      const uint64_t Ctx = TKey.ContextHash;
      const uint64_t Prev = LastContextHash.exchange(Ctx);
      if (Prev != 0 && Prev != Ctx)
        RCache.invalidateContextsExcept(Ctx);
      St.RKey = resultKeyFor(Req, TKey);
      // The waiter fires if (and only if) this submission JOINS an
      // in-flight twin: the owner's publish completes this job with
      // the shared outcome, on the owner's thread, outside all cache
      // locks. Capture this job's own frontend facts now — they are
      // the only fields of the final outcome that are not the cached
      // run's.
      auto StPtr = Task.St;
      const bool TrHit = Hit;
      const double FeMicros = O.FrontendMicros;
      ResultCache::Claim Claim = RCache.begin(
          St.RKey, [this, StPtr, TrHit, FeMicros](CachedOutcome Ready) {
            if (Ready) {
              finishJob(*StPtr, cachedHitOutcome(*Ready, TrHit, FeMicros),
                        microsSince(StPtr->SubmitTime));
              return;
            }
            // Defensive: the owner released its claim without an
            // outcome. No current completion path does this (every
            // owner funnels through finishJob), but a stranded future
            // would hang the client forever, so fail loudly instead.
            DriverOutcome Fail;
            Fail.CompileErrors =
                "internal error: result-cache owner abandoned the search";
            Fail.FrontendMicros = FeMicros;
            finishJob(*StPtr, std::move(Fail),
                      microsSince(StPtr->SubmitTime));
          });
      switch (Claim.K) {
      case ResultCache::Claim::Kind::Hit:
        finishJob(St, cachedHitOutcome(*Claim.Ready, Hit, O.FrontendMicros),
                  microsSince(St.SubmitTime));
        return;
      case ResultCache::Claim::Kind::Joined:
        return; // the owner's publish finishes this job
      case ResultCache::Claim::Kind::Owner:
        St.Publish = true; // finishJob publishes under St.RKey
        break;
      case ResultCache::Claim::Kind::Disabled:
        break;
      }
    }

    if (!Art->ok()) {
      O.Status = RunStatus::Internal;
      finishJob(St, std::move(O), microsSince(St.SubmitTime));
      return;
    }

    if (Req.staticAnalyze() == StaticAnalysisMode::Only) {
      // Static-only: the verdict is the frontend's. No machine runs,
      // so the status is Completed with no execution behind it.
      O.StaticOnly = true;
      O.Status = RunStatus::Completed;
      finishJob(St, std::move(O), microsSince(St.SubmitTime));
      return;
    }

    if (Req.searchSched() == SchedKind::Wave) {
      auto SearchStart = std::chrono::steady_clock::now();
      runWave(Req, *Art, O);
      O.SearchMicros = microsSince(SearchStart);
      finishJob(St, std::move(O), microsSince(St.SubmitTime));
      return;
    }

    // Pooled path: the request was validated at build time (searchRuns
    // >= 1), so the root run always executes and doubles as the
    // default-order run (root gating).
    SearchOptions SO;
    SO.MaxRuns = Req.searchRuns();
    SO.Jobs = Req.searchJobs();
    SO.Dedup = Req.searchDedup();
    SO.UseSnapshots = Req.searchSnapshots();
    SO.SnapshotBudget = Cfg.SnapshotBudget;
    SO.Sched = SchedKind::Stealing;

    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (!Started) {
        Sched.start();
        Started = true;
      }
      St.Artifact = Art;
      {
        std::lock_guard<std::mutex> StLock(St.Mu);
        St.Outcome = std::move(O); // compile half; completed on finish
      }
      St.SearchStart = std::chrono::steady_clock::now();
      // Holding Mu across the scheduler submit closes the race where a
      // one-worker pool finishes the program before it lands in
      // Pending: the completion callback takes Mu before its lookup.
      size_t Prog = Sched.submit(Art->ast(), Req.machine(), SO,
                                 /*RootGated=*/true);
      Pending.emplace(Prog, Task.St);
    }
  }

  //===--- Completion (search worker thread) ------------------------------===//

  void onProgramDone(size_t Prog) {
    std::shared_ptr<JobState> St;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Pending.find(Prog);
      assert(It != Pending.end() && "completion for unknown program");
      St = std::move(It->second);
      Pending.erase(It);
    }
    SearchResult SR = Sched.takeResult(Prog);
    double SearchMicros = microsSince(St->SearchStart);
    double Wall = microsSince(St->SubmitTime);

    DriverOutcome O;
    {
      std::lock_guard<std::mutex> Lock(St->Mu);
      O = std::move(St->Outcome); // the compile half
    }
    mapSearchResult(O, std::move(SR));
    O.SearchMicros = SearchMicros;

    // Keep the artifact alive until the pool is provably idle: a
    // cancelling sibling run may still be stepping over its AST.
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Graveyard.push_back(std::move(St->Artifact));
    }

    finishJob(*St, std::move(O), Wall);
  }

  /// Fires events and fulfills the future. No engine locks held.
  /// Every completion path funnels through here, so this is the single
  /// publish point of the result cache: an owning job stores its
  /// outcome (which also fires any joined submissions' waiters — each
  /// of which re-enters finishJob for its own job with Publish unset,
  /// so the recursion is one level deep by construction).
  void finishJob(JobState &St, DriverOutcome O, double Wall) {
    if (St.Publish) {
      St.Publish = false;
      RCache.publish(St.RKey, std::make_shared<const DriverOutcome>(O));
    }
    if (St.Sink) {
      EngineJobInfo Info{St.Id, St.Name};
      if (O.SearchTruncated)
        St.Sink->onFrontierTruncated(Info, O.SearchDropped);
      if (O.anyUb()) {
        std::vector<UbReport> All = O.StaticUb;
        All.insert(All.end(), O.DynamicUb.begin(), O.DynamicUb.end());
        St.Sink->onUbFound(Info, All);
      }
      St.Sink->onProgramFinished(Info, O, Wall);
    }
    {
      std::lock_guard<std::mutex> Lock(St.Mu);
      St.Outcome = std::move(O);
      St.WallMicros = Wall;
      St.Done = true;
    }
    St.Cv.notify_all();
    Outstanding.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> Lock(DrainMu);
    }
    DrainCv.notify_all();
  }

  /// The search-counter tail shared by the pooled and wave paths:
  /// everything except the root-run fields. New SearchResult counters
  /// get threaded through here exactly once.
  static void mapSearchCounters(DriverOutcome &O, SearchResult &SR) {
    O.OrdersDeduped = SR.DedupHits + SR.SubtreesPruned;
    O.SearchTruncated = SR.FrontierTruncated;
    O.SearchDropped = SR.DroppedSubtrees;
    O.SearchSteals = SR.Steals;
    O.SearchEvictions = SR.SnapshotEvictions;
    O.SearchPeakFrontier = SR.PeakFrontier;
    if (SR.UbFound) {
      O.DynamicUb = std::move(SR.Reports);
      O.SearchWitness = std::move(SR.Witness);
    }
  }

  /// Folds a root-gated SearchResult into the outcome — the single
  /// mapping every pooled submission shares. The root run doubles as
  /// the default-order run, so its status/output/exit code are the
  /// program's, and OrdersExplored counts every explored order once.
  static void mapSearchResult(DriverOutcome &O, SearchResult SR) {
    O.Status = SR.RootStatus;
    O.ExitCode = SR.RootExitCode;
    O.Output = std::move(SR.RootOutput);
    O.OrdersExplored = SR.RunsExplored;
    mapSearchCounters(O, SR);
  }

  //===--- Wave reference path (frontend worker thread) -------------------===//

  /// The wave reference engine has no service scheduler: wave requests
  /// run to completion on the frontend worker that compiled them, in
  /// the classic two-phase shape (default-order run, then a wave
  /// search when that run was clean). Observable outputs — including
  /// OrdersExplored, which counts each explored order exactly once at
  /// both --search-sched values — match the pooled path
  /// (tests/test_translation_cache.cpp pins the counter parity).
  void runWave(const AnalysisRequest &Req, const CompiledProgram &C,
               DriverOutcome &O) {
    UbSink RunSink;
    Machine M(C.ast(), Req.machine(), RunSink);
    O.Status = M.run();
    O.ExitCode = M.config().ExitCode;
    O.Output = M.config().Output;
    O.DynamicUb = RunSink.all();
    O.OrdersExplored = 1;

    if (!O.DynamicUb.empty() || Req.searchRuns() <= 1 ||
        O.Status != RunStatus::Completed)
      return;
    SearchOptions SO;
    SO.MaxRuns = Req.searchRuns();
    SO.Jobs = Req.searchJobs();
    SO.Dedup = Req.searchDedup();
    SO.UseSnapshots = Req.searchSnapshots();
    SO.SnapshotBudget = Cfg.SnapshotBudget;
    SO.Sched = SchedKind::Wave;
    OrderSearch Search(C.ast(), Req.machine(), SO);
    SearchResult SR = Search.run();
    // The wave search re-executes the default order as its own root.
    // That re-run is a wall-clock detail of this path, not a distinct
    // order: RunsExplored already counts the root once, so assigning
    // (not adding) keeps one counter semantics across schedulers —
    // the pooled path reports exactly the same number.
    O.OrdersExplored = SR.RunsExplored;
    mapSearchCounters(O, SR);
  }
};

//===----------------------------------------------------------------------===//
// AnalysisEngine
//===----------------------------------------------------------------------===//

AnalysisEngine::AnalysisEngine(EngineConfig Cfg)
    : I(std::make_unique<Impl>(Cfg)) {}

AnalysisEngine::~AnalysisEngine() { shutdown(); }

HeaderRegistry &AnalysisEngine::headers() { return I->Headers; }

unsigned AnalysisEngine::workers() const { return I->Sched.stats().Jobs; }

CompiledProgramRef AnalysisEngine::compile(const AnalysisRequest &Req,
                                           const std::string &Source,
                                           const std::string &Name) {
  return I->frontend(Req, Source, Name, nullptr);
}

JobHandle AnalysisEngine::submit(const AnalysisRequest &Req,
                                 std::string Source, std::string Name,
                                 EngineSink *Sink) {
  Impl &S = *I;
  auto St = std::make_shared<JobState>();
  St->Id = S.NextJobId.fetch_add(1, std::memory_order_relaxed);
  St->Name = std::move(Name);
  St->Sink = Sink;
  St->SubmitTime = std::chrono::steady_clock::now();
  JobHandle Handle{St};

  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.ShutDown) {
      // Rejected, not analyzed: an Internal outcome, no events.
      DriverOutcome O;
      O.CompileErrors = "analysis engine is shut down";
      std::lock_guard<std::mutex> StLock(St->Mu);
      St->Outcome = std::move(O);
      St->Done = true;
      return Handle;
    }
    if (S.FeThreads.empty())
      S.spawnFrontendPool();
    S.Outstanding.fetch_add(1, std::memory_order_acq_rel);
    S.FeQueue.push_back({St, Req, std::move(Source)});
  }
  S.FeCv.notify_one();
  return Handle;
}

std::vector<JobHandle>
AnalysisEngine::submitBatch(const AnalysisRequest &Req,
                            const std::vector<BatchInput> &Inputs,
                            EngineSink *Sink) {
  std::vector<JobHandle> Handles;
  Handles.reserve(Inputs.size());
  for (const BatchInput &In : Inputs)
    Handles.push_back(submit(Req, In.Source, In.Name, Sink));
  return Handles;
}

void AnalysisEngine::drain() {
  Impl &S = *I;
  {
    std::unique_lock<std::mutex> Lock(S.DrainMu);
    S.DrainCv.wait(Lock, [&] {
      return S.Outstanding.load(std::memory_order_acquire) == 0;
    });
  }
  if (!S.Sched.started())
    return;
  // With nothing outstanding every scheduler program is finished;
  // reclaim confirms full idleness (no cancelling stragglers), after
  // which the graveyard artifacts are provably unreferenced by any
  // machine. Only entries that existed BEFORE the reclaim are
  // released: a job submitted and finished concurrently with this
  // drain may append an artifact whose stragglers are still
  // cancelling, and that entry must survive until a later quiescent
  // point. (The translation cache keeps its own reference, so a
  // released artifact stays warm for the next submission.)
  size_t Cut;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Cut = S.Graveyard.size();
  }
  if (S.Sched.reclaimFinished()) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Graveyard.erase(S.Graveyard.begin(),
                      S.Graveyard.begin() + std::min(Cut, S.Graveyard.size()));
  }
}

void AnalysisEngine::shutdown() {
  Impl &S = *I;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.ShutDown)
      return;
    S.ShutDown = true;
  }
  drain();
  // The queue is empty (drain waited on every accepted job) and
  // ShutDown blocks new ones: the frontend pool can be joined.
  std::vector<std::thread> Fe;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.FeStop = true;
    Fe.swap(S.FeThreads);
  }
  S.FeCv.notify_all();
  for (std::thread &T : Fe)
    T.join();
  S.Sched.stop();
  // Both pools are joined: no machine references any artifact anymore.
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Graveyard.clear();
}

bool AnalysisEngine::isShutdown() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  return I->ShutDown;
}

SchedulerStats AnalysisEngine::poolStats() const { return I->Sched.stats(); }

TranslationCacheStats AnalysisEngine::translationStats() const {
  return I->TCache.stats();
}

ResultCacheStats AnalysisEngine::resultCacheStats() const {
  return I->RCache.stats();
}

EngineMemoryStats AnalysisEngine::memoryStats() const {
  Impl &S = *I;
  EngineMemoryStats M;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    M.PendingJobs = S.Pending.size();
    M.GraveyardArtifacts = S.Graveyard.size();
  }
  SchedulerMemoryStats Sm = S.Sched.memoryStats();
  M.ProgramSlots = Sm.ProgramSlots;
  M.RetainedPrograms = Sm.RetainedPrograms;
  M.PendingSnapshots = Sm.PendingSnapshots;
  return M;
}
