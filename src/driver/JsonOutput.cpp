//===- driver/JsonOutput.cpp - Machine-readable kcc output ---------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "driver/JsonOutput.h"

#include "support/Strings.h"

using namespace cundef;

std::string cundef::jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size() + 8);
  for (unsigned char C : Text) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\b': Out += "\\b"; break;
    case '\f': Out += "\\f"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      // Byte-transparent escaping: subject programs of a UB checker
      // emit arbitrary bytes, and a raw non-UTF-8 byte would make the
      // whole document unparseable (RFC 8259 mandates UTF-8). Every
      // non-ASCII byte becomes \u00XX, so the document is pure ASCII
      // and consumers recover the exact bytes by latin-1-encoding the
      // decoded string (documented in docs/JSON_OUTPUT.md).
      if (C < 0x20 || C >= 0x7f)
        Out += strFormat("\\u%04x", C);
      else
        Out += static_cast<char>(C);
    }
  }
  return Out;
}

const char *cundef::runStatusName(RunStatus Status) {
  switch (Status) {
  case RunStatus::Running:    return "running";
  case RunStatus::Completed:  return "completed";
  case RunStatus::UbDetected: return "ub-detected";
  case RunStatus::Fault:      return "fault";
  case RunStatus::StepLimit:  return "step-limit";
  case RunStatus::Internal:   return "internal";
  case RunStatus::Cancelled:  return "cancelled";
  }
  return "internal";
}

namespace {

void appendFinding(std::string &Out, const UbReport &R, bool Last) {
  Out += strFormat("        {\"code\": \"%05u\", \"description\": \"%s\", "
                   "\"function\": \"%s\", \"line\": %u, \"column\": %u, "
                   "\"static\": %s}%s\n",
                   ubCode(R.Kind), jsonEscape(R.Description).c_str(),
                   jsonEscape(R.Function).c_str(), R.Loc.Line, R.Loc.Col,
                   R.StaticFinding ? "true" : "false", Last ? "" : ",");
}

const char *verdictName(FindingVerdict V) {
  switch (V) {
  case FindingVerdict::Must: return "must";
  case FindingVerdict::May:  return "may";
  case FindingVerdict::None: break;
  }
  return "none";
}

void appendStaticFinding(std::string &Out, const UbReport &R, bool Last) {
  Out += strFormat("          {\"code\": \"%05u\", \"verdict\": \"%s\", "
                   "\"domain\": \"%s\", \"description\": \"%s\", "
                   "\"function\": \"%s\", \"line\": %u, \"column\": %u}%s\n",
                   ubCode(R.Kind), verdictName(R.Verdict), R.Domain,
                   jsonEscape(R.Description).c_str(),
                   jsonEscape(R.Function).c_str(), R.Loc.Line, R.Loc.Col,
                   Last ? "" : ",");
}

void appendProgram(std::string &Out, const JsonProgram &P, bool Last) {
  const DriverOutcome &O = *P.Outcome;
  const char *Verdict = !O.CompileOk && !O.anyUb() ? "compile-error"
                        : O.anyUb()                ? "undefined"
                                                   : "clean";
  Out += "    {\n";
  Out += strFormat("      \"name\": \"%s\",\n", jsonEscape(P.Name).c_str());
  Out += strFormat("      \"verdict\": \"%s\",\n", Verdict);
  Out += strFormat("      \"compile_ok\": %s,\n",
                   O.CompileOk ? "true" : "false");
  Out += strFormat("      \"compile_errors\": \"%s\",\n",
                   jsonEscape(O.CompileErrors).c_str());
  Out += strFormat("      \"status\": \"%s\",\n", runStatusName(O.Status));
  Out += strFormat("      \"exit_code\": %d,\n", O.ExitCode);
  Out += strFormat("      \"output\": \"%s\",\n",
                   jsonEscape(O.Output).c_str());
  Out += strFormat("      \"wall_micros\": %.3f,\n", P.WallMicros);

  // The cundef-kcc-v1 compile block (a backward-compatible addition):
  // where this job's artifact came from and how the job's wall time
  // split between the two pipeline halves.
  Out += "      \"compile\": {\n";
  Out += strFormat("        \"cache_hit\": %s,\n",
                   O.TranslationCacheHit ? "true" : "false");
  Out += strFormat("        \"result_cache_hit\": %s,\n",
                   O.ResultCacheHit ? "true" : "false");
  Out += strFormat("        \"frontend_micros\": %.3f,\n", O.FrontendMicros);
  Out += strFormat("        \"search_micros\": %.3f\n", O.SearchMicros);
  Out += "      },\n";

  std::vector<UbReport> All = O.StaticUb;
  All.insert(All.end(), O.DynamicUb.begin(), O.DynamicUb.end());
  if (All.empty()) {
    Out += "      \"findings\": [],\n";
  } else {
    Out += "      \"findings\": [\n";
    for (size_t I = 0; I < All.size(); ++I)
      appendFinding(Out, All[I], I + 1 == All.size());
    Out += "      ],\n";
  }

  // The cundef-kcc-v1 static_analysis block (backward-compatible
  // addition): the flow layer's mode and findings with their must/may
  // verdict and producing domain. Must findings repeat entries of the
  // combined findings array (with richer attribution); may findings
  // appear ONLY here — they are hints, not part of the verdict.
  size_t StaticCount = O.StaticUb.size() + O.StaticHints.size();
  Out += "      \"static_analysis\": {\n";
  Out += strFormat("        \"mode\": \"%s\",\n", P.StaticMode);
  Out += strFormat("        \"static_only\": %s,\n",
                   O.StaticOnly ? "true" : "false");
  Out += strFormat("        \"must_count\": %zu,\n", O.StaticUb.size());
  Out += strFormat("        \"may_count\": %zu,\n", O.StaticHints.size());
  if (StaticCount == 0) {
    Out += "        \"findings\": []\n";
  } else {
    Out += "        \"findings\": [\n";
    size_t Emitted = 0;
    for (const UbReport &R : O.StaticUb)
      appendStaticFinding(Out, R, ++Emitted == StaticCount);
    for (const UbReport &R : O.StaticHints)
      appendStaticFinding(Out, R, ++Emitted == StaticCount);
    Out += "        ]\n";
  }
  Out += "      },\n";

  std::string Witness;
  for (uint8_t D : O.SearchWitness)
    Witness += strFormat("%s%u", Witness.empty() ? "" : ", ", D);
  Out += "      \"search\": {\n";
  Out += strFormat("        \"orders_explored\": %u,\n", O.OrdersExplored);
  Out += strFormat("        \"orders_deduped\": %u,\n", O.OrdersDeduped);
  Out += strFormat("        \"truncated\": %s,\n",
                   O.SearchTruncated ? "true" : "false");
  Out += strFormat("        \"dropped_subtrees\": %u,\n", O.SearchDropped);
  Out += strFormat("        \"steals\": %u,\n", O.SearchSteals);
  Out += strFormat("        \"snapshot_evictions\": %u,\n",
                   O.SearchEvictions);
  Out += strFormat("        \"peak_frontier\": %u,\n", O.SearchPeakFrontier);
  Out += strFormat("        \"witness\": [%s]\n", Witness.c_str());
  Out += "      }\n";
  Out += strFormat("    }%s\n", Last ? "" : ",");
}

} // namespace

std::string
cundef::renderJsonDocument(const std::vector<JsonProgram> &Programs,
                           const SchedulerStats &Pool,
                           const TranslationCacheStats &TCache,
                           const ResultCacheStats &RCache, double WallMs,
                           int ExitCode) {
  std::string Out;
  Out += "{\n";
  Out += "  \"schema\": \"cundef-kcc-v1\",\n";
  Out += strFormat("  \"exit_code\": %d,\n", ExitCode);
  if (Programs.empty()) {
    Out += "  \"programs\": [],\n";
  } else {
    Out += "  \"programs\": [\n";
    for (size_t I = 0; I < Programs.size(); ++I)
      appendProgram(Out, Programs[I], I + 1 == Programs.size());
    Out += "  ],\n";
  }
  // Speculation accounting (cundef-kcc-v1 additions): the waste ratio
  // is the executed surplus over committed runs — 0.0 on the wave path
  // and at jobs=1, where speculation cannot outrun the wavefront.
  const double Waste =
      Pool.RunsCommitted
          ? static_cast<double>(Pool.RunsExecuted - Pool.RunsCommitted) /
                static_cast<double>(Pool.RunsCommitted)
          : 0.0;
  Out += "  \"pool\": {\n";
  Out += strFormat("    \"programs\": %u,\n", Pool.Programs);
  Out += strFormat("    \"workers\": %u,\n", Pool.Jobs);
  Out += strFormat("    \"runs_executed\": %llu,\n",
                   static_cast<unsigned long long>(Pool.RunsExecuted));
  Out += strFormat("    \"runs_committed\": %llu,\n",
                   static_cast<unsigned long long>(Pool.RunsCommitted));
  Out += strFormat("    \"speculative_waste\": %.4f,\n", Waste);
  Out += strFormat("    \"provisional_hits\": %llu,\n",
                   static_cast<unsigned long long>(Pool.ProvisionalHits));
  Out += strFormat("    \"provisional_requeues\": %llu,\n",
                   static_cast<unsigned long long>(Pool.ProvisionalRequeues));
  Out += strFormat("    \"commit_lag_peak\": %llu,\n",
                   static_cast<unsigned long long>(Pool.CommitLagPeak));
  Out += strFormat("    \"steals\": %llu,\n",
                   static_cast<unsigned long long>(Pool.Steals));
  Out += strFormat("    \"dedup_hits\": %llu,\n",
                   static_cast<unsigned long long>(Pool.DedupHits));
  Out += strFormat("    \"snapshot_shards\": %u,\n", Pool.SnapshotShards);
  Out += strFormat("    \"snapshot_takes\": %llu,\n",
                   static_cast<unsigned long long>(Pool.SnapshotTakes));
  Out += strFormat("    \"snapshot_hits\": %llu,\n",
                   static_cast<unsigned long long>(Pool.SnapshotHits));
  Out += strFormat("    \"snapshot_slot_steals\": %llu,\n",
                   static_cast<unsigned long long>(Pool.SnapshotSlotSteals));
  Out += strFormat("    \"snapshot_evictions\": %llu,\n",
                   static_cast<unsigned long long>(Pool.SnapshotEvictions));
  Out += strFormat("    \"snapshot_shared_hits\": %llu,\n",
                   static_cast<unsigned long long>(Pool.SnapshotSharedHits));
  Out += strFormat("    \"peak_frontier\": %llu,\n",
                   static_cast<unsigned long long>(Pool.PeakFrontier));
  Out += strFormat("    \"wall_ms\": %.3f\n", WallMs);
  Out += "  },\n";
  // Engine-wide translation-cache counters (cundef-kcc-v1 addition;
  // all zero when --translation-cache=off).
  Out += "  \"translation_cache\": {\n";
  Out += strFormat("    \"lookups\": %llu,\n",
                   static_cast<unsigned long long>(TCache.Lookups));
  Out += strFormat("    \"hits\": %llu,\n",
                   static_cast<unsigned long long>(TCache.Hits));
  Out += strFormat("    \"inflight_joins\": %llu,\n",
                   static_cast<unsigned long long>(TCache.InflightJoins));
  Out += strFormat("    \"misses\": %llu,\n",
                   static_cast<unsigned long long>(TCache.Misses));
  Out += strFormat("    \"evictions\": %llu\n",
                   static_cast<unsigned long long>(TCache.Evictions));
  Out += "  },\n";
  // Engine-wide result-cache counters (cundef-kcc-v1 addition; all
  // zero when --result-cache=off). hits + inflight_joins is the
  // "served from cache" count; misses is the searches actually
  // executed — honest cached-vs-executed accounting.
  Out += "  \"result_cache\": {\n";
  Out += strFormat("    \"lookups\": %llu,\n",
                   static_cast<unsigned long long>(RCache.Lookups));
  Out += strFormat("    \"hits\": %llu,\n",
                   static_cast<unsigned long long>(RCache.Hits));
  Out += strFormat("    \"inflight_joins\": %llu,\n",
                   static_cast<unsigned long long>(RCache.InflightJoins));
  Out += strFormat("    \"misses\": %llu,\n",
                   static_cast<unsigned long long>(RCache.Misses));
  Out += strFormat("    \"evictions\": %llu,\n",
                   static_cast<unsigned long long>(RCache.Evictions));
  Out += strFormat("    \"abandoned\": %llu\n",
                   static_cast<unsigned long long>(RCache.Abandoned));
  Out += "  }\n";
  Out += "}\n";
  return Out;
}
