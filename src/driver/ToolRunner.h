//===- driver/ToolRunner.h - Running tools over programs ---------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience layer for running the four analysis tools over programs
/// and test cases: one-shot comparisons (the compare_tools example) and
/// per-test verdicts used by the suite scorers.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_DRIVER_TOOLRUNNER_H
#define CUNDEF_DRIVER_TOOLRUNNER_H

#include "analysis/Tool.h"
#include "driver/Driver.h"
#include "suites/TestCase.h"

#include <string>
#include <vector>

namespace cundef {

/// Verdict of one tool on one (bad, good) test pair.
struct PairVerdict {
  bool FlaggedBad = false;
  bool FlaggedGood = false; ///< a false positive
  double Micros = 0.0;

  /// The pair passes when the undefined program is flagged and the
  /// defined control is not.
  bool passed() const { return FlaggedBad && !FlaggedGood; }
};

/// Runs \p T on both halves of \p Test.
PairVerdict runOnPair(Tool &T, const TestCase &Test);

/// One row of a tool comparison for a single program.
struct ComparisonRow {
  std::string Tool;
  bool Flagged = false;
  size_t NumFindings = 0;
  std::string FirstFinding;
  double Micros = 0.0;
};

/// Runs all four tools on \p Source. \p SearchJobs parallelizes kcc's
/// evaluation-order search, 0 = auto-detect hardware concurrency (the
/// other tools run one concrete order).
std::vector<ComparisonRow>
compareTools(const std::string &Source, const std::string &Name,
             TargetConfig Target = TargetConfig::lp64(),
             unsigned SearchJobs = 1);

/// Renders comparison rows as an aligned text table.
std::string renderComparison(const std::vector<ComparisonRow> &Rows);

/// Runs kcc over many programs through one shared engine worker pool
/// and maps each outcome to a ToolResult, in input order. Verdicts and
/// findings are byte-identical to running each program through a kcc
/// Tool individually. Per-result Micros is the job's submit-to-
/// completion wall time from the engine's completion events — honest
/// per-program attribution, with the shared-pool caveat that
/// concurrent jobs' times overlap (they sum to more than the batch
/// wall-clock, since every in-flight job's clock runs while workers
/// are shared). The suite scorers route through this so a whole
/// benchmark shares one worker pool instead of draining it per test.
std::vector<ToolResult> runKccBatched(const AnalysisRequest &Req,
                                      const std::vector<BatchInput> &Programs);

} // namespace cundef

#endif // CUNDEF_DRIVER_TOOLRUNNER_H
