//===- driver/ToolRunner.cpp - Running tools over programs ---------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "driver/ToolRunner.h"

#include "support/Strings.h"

using namespace cundef;

PairVerdict cundef::runOnPair(Tool &T, const TestCase &Test) {
  PairVerdict Verdict;
  ToolResult Bad = T.analyze(Test.Bad, Test.Name + "_bad.c");
  ToolResult Good = T.analyze(Test.Good, Test.Name + "_good.c");
  Verdict.FlaggedBad = Bad.flagged();
  Verdict.FlaggedGood = Good.flagged();
  Verdict.Micros = Bad.Micros + Good.Micros;
  return Verdict;
}

std::vector<ComparisonRow>
cundef::compareTools(const std::string &Source, const std::string &Name,
                     TargetConfig Target, unsigned SearchJobs) {
  std::vector<ComparisonRow> Rows;
  for (ToolKind Kind : {ToolKind::Kcc, ToolKind::MemGrind, ToolKind::PtrCheck,
                        ToolKind::ValueAnalysis}) {
    std::unique_ptr<Tool> T = Tool::create(Kind, Target, SearchJobs);
    ToolResult Result = T->analyze(Source, Name);
    ComparisonRow Row;
    Row.Tool = toolName(Kind);
    Row.Flagged = Result.flagged();
    Row.NumFindings = Result.Findings.size();
    if (!Result.Findings.empty())
      Row.FirstFinding = Result.Findings.front().Description;
    Row.Micros = Result.Micros;
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

std::vector<ToolResult>
cundef::runKccBatched(const AnalysisRequest &Req,
                      const std::vector<BatchInput> &Programs) {
  AnalysisEngine Eng(engineConfigFor(Req));
  std::vector<JobHandle> Handles = Eng.submitBatch(Req, Programs);
  std::vector<ToolResult> Results;
  Results.reserve(Handles.size());
  for (JobHandle &H : Handles) {
    // wallMicros blocks until this job completed; later handles were
    // already running on the shared pool the whole time.
    const double Micros = H.wallMicros();
    DriverOutcome O = H.take();
    ToolResult R;
    R.CompileOk = O.CompileOk;
    R.Findings = O.StaticUb;
    R.Findings.insert(R.Findings.end(), O.DynamicUb.begin(),
                      O.DynamicUb.end());
    R.Status = O.Status;
    R.ExitCode = O.ExitCode;
    R.Output = std::move(O.Output);
    R.Micros = Micros;
    Results.push_back(std::move(R));
  }
  return Results;
}

std::string cundef::renderComparison(const std::vector<ComparisonRow> &Rows) {
  std::string Out;
  Out += padRight("Tool", 14) + padRight("Verdict", 11) +
         padRight("Findings", 9) + "First finding\n";
  Out += std::string(70, '-') + "\n";
  for (const ComparisonRow &Row : Rows) {
    Out += padRight(Row.Tool, 14) +
           padRight(Row.Flagged ? "UNDEFINED" : "clean", 11) +
           padRight(strFormat("%zu", Row.NumFindings), 9) +
           Row.FirstFinding.substr(0, 44) + "\n";
  }
  return Out;
}
