//===- driver/JsonOutput.h - Machine-readable kcc output --------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders DriverOutcomes as the stable `cundef-kcc-v1` JSON schema
/// (docs/JSON_OUTPUT.md), so build pipelines consume kcc verdicts,
/// findings, witness bytes, scheduler counters, and per-job wall times
/// without parsing the paper's human-oriented error format. The schema
/// is versioned: additions bump the minor shape compatibly, removals
/// or renames would bump the version string — external consumers pin
/// on it.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_DRIVER_JSONOUTPUT_H
#define CUNDEF_DRIVER_JSONOUTPUT_H

#include "driver/Engine.h"

#include <string>
#include <vector>

namespace cundef {

/// JSON string escaping per RFC 8259 (control characters, quotes,
/// backslashes; UTF-8 passes through).
std::string jsonEscape(const std::string &Text);

/// The stable status names of the schema ("completed", "ub-detected",
/// "fault", "step-limit", "internal", "cancelled", "running").
const char *runStatusName(RunStatus Status);

/// One entry of the top-level "programs" array: the outcome plus its
/// per-job submit-to-completion wall time (engine attribution; see
/// EngineSink::onProgramFinished for the shared-pool caveat).
struct JsonProgram {
  const DriverOutcome *Outcome = nullptr;
  std::string Name;
  double WallMicros = 0.0;
  /// The request's flow-layer mode ("off", "on", "only"), echoed in the
  /// program's static_analysis block so consumers know what the static
  /// findings mean without reconstructing the command line.
  const char *StaticMode = "on";
};

/// Renders the whole `cundef-kcc-v1` document: programs (each with its
/// `compile` block — translation/result cache hit flags,
/// frontend/search micros), the shared pool counters plus the engine's
/// translation-cache and result-cache counters, and the process exit
/// code the verdicts imply (139 if any program is undefined, else 1 if
/// any failed to compile, else the single program's exit code / 0 for
/// batches).
std::string renderJsonDocument(const std::vector<JsonProgram> &Programs,
                               const SchedulerStats &Pool,
                               const TranslationCacheStats &TCache,
                               const ResultCacheStats &RCache, double WallMs,
                               int ExitCode);

} // namespace cundef

#endif // CUNDEF_DRIVER_JSONOUTPUT_H
