//===- driver/Engine.h - The persistent analysis engine ---------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer: a long-lived AnalysisEngine owns one persistent
/// work-stealing worker pool (core/Scheduler.h service mode), a shared
/// snapshot cache, and an engine-wide content-addressed
/// TranslationCache (frontend/TranslationCache.h), and runs the whole
/// kcc pipeline — frontend (preprocess, parse, sema, static checks)
/// plus strict execution and evaluation-order search — for every
/// translation unit submitted to it.
///
/// Submission is truly asynchronous: submit() copies the source,
/// enqueues a frontend task, and returns a future-backed JobHandle in
/// O(1) — neither the frontend pass nor any search runs on the calling
/// thread. A small frontend worker pool compiles submissions (through
/// the translation cache, so identical units compile once and share
/// one immutable CompiledProgram) and hands clean artifacts to the
/// search pool; frontend work on later submissions overlaps searches
/// already running on the warm pool. Per-job events (program finished,
/// UB found, frontier truncated) stream to an optional EngineSink from
/// engine threads as programs complete.
///
/// Every other entry point — Driver::runSource/runBatch, the batched
/// tool runner, the suite scorers, the kcc CLI — is a thin adapter over
/// this class, so the codebase has exactly one submission path, and a
/// service reusing one engine across batches amortizes pool startup
/// AND frontend work while producing outcomes byte-identical to fresh
/// per-batch drivers (tests/test_engine.cpp and
/// tests/test_translation_cache.cpp pin that down).
///
/// Determinism: per-program results never depend on pool width, steal
/// interleaving, what else is in flight, or whether the artifact came
/// from the cache (equal keys mean interchangeable artifacts —
/// frontend/Frontend.h); sharing pools and artifacts across
/// submissions is a wall-clock optimization only.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_DRIVER_ENGINE_H
#define CUNDEF_DRIVER_ENGINE_H

#include "core/Scheduler.h"
#include "driver/Request.h"
#include "driver/ResultCache.h"
#include "frontend/CompiledProgram.h"
#include "frontend/TranslationCache.h"
#include "text/Preprocessor.h"
#include "ub/Report.h"

#include <memory>
#include <string>
#include <vector>

namespace cundef {

/// Everything one analysis produced. The outcome carries both halves
/// of kcc's verdict: compile-time findings and runtime findings, plus
/// the program's output and exit code when it completed (the paper's
/// section 3.2 contract).
struct DriverOutcome {
  bool CompileOk = false;
  std::string CompileErrors;
  std::vector<UbReport> StaticUb;
  /// Flow-layer may-findings: triage hints, never part of the verdict
  /// (anyUb() ignores them; kcc prints them only on request).
  std::vector<UbReport> StaticHints;
  std::vector<UbReport> DynamicUb;
  /// The request ran with StaticAnalysisMode::Only: no machine ran, so
  /// Status/ExitCode/Output describe no execution and DynamicUb is
  /// empty by construction.
  bool StaticOnly = false;
  RunStatus Status = RunStatus::Internal;
  int ExitCode = 0;
  std::string Output;
  unsigned OrdersExplored = 0;
  /// Symmetric interleavings the search pruned (core/Search.h).
  unsigned OrdersDeduped = 0;
  /// The search ran out of budget with subtrees unexplored: a clean
  /// verdict is then not exhaustive. kcc --show-witness prints this so
  /// partial searches are never silently mistaken for full ones.
  bool SearchTruncated = false;
  /// Subtrees dropped unexplored on budget edges.
  unsigned SearchDropped = 0;
  /// Scheduler counters for the search (kcc --show-witness prints them,
  /// kcc --json emits them). Steals and peak frontier are wall-clock
  /// details; evictions count LRU snapshot evictions, each of which
  /// turned one fork into a prefix replay.
  unsigned SearchSteals = 0;
  unsigned SearchEvictions = 0;
  unsigned SearchPeakFrontier = 0;
  /// This job's artifact came from the engine's translation cache: no
  /// frontend pass ran for this submission (kcc --show-witness and the
  /// --json compile block surface it).
  bool TranslationCacheHit = false;
  /// This job's outcome came from the engine's result cache
  /// (driver/ResultCache.h): no search ran for this submission — every
  /// deterministic field below is a byte-identical copy of the cached
  /// outcome. Only TranslationCacheHit and FrontendMicros describe
  /// this submission; SearchMicros and the search counters replay the
  /// original run's (a cached outcome IS that run's outcome).
  bool ResultCacheHit = false;
  /// Microseconds this job spent in its frontend stage — the compile,
  /// or the cache lookup/in-flight join that replaced it. Together
  /// with SearchMicros this splits per-job cost into the two pipeline
  /// halves the translation cache is amortizing.
  double FrontendMicros = 0.0;
  /// Microseconds from search submission to search completion (0 for
  /// compile failures; includes the default-order run).
  double SearchMicros = 0.0;
  /// Decision prefix that exposed order-dependent undefinedness; replay
  /// it with Machine::setReplayDecisions to reproduce the run
  /// deterministically. Empty when the default order already misbehaved
  /// (or nothing was found).
  std::vector<uint8_t> SearchWitness;

  bool anyUb() const { return !StaticUb.empty() || !DynamicUb.empty(); }
  /// Renders every finding in the paper's kcc error format.
  std::string renderReport() const;
};

/// One translation unit of a submission.
struct BatchInput {
  std::string Source;
  std::string Name;
};

/// Engine-level (pool) configuration. Per-analysis options live in
/// AnalysisRequest; everything here is shared by every job the engine
/// ever runs.
struct EngineConfig {
  /// Worker threads of the persistent pool. 0 = auto-detect
  /// std::thread::hardware_concurrency().
  unsigned Workers = 0;
  /// Cap the pool at hardware concurrency (tests disable this to force
  /// cross-thread interleaving on small CI machines; results are
  /// worker-count-independent either way).
  bool ClampWorkersToHardware = true;
  /// LRU capacity of the shared snapshot cache (core/Scheduler.h).
  unsigned SnapshotBudget = 1024;
  /// Capacity (artifacts) of the engine-wide translation cache. 0
  /// disables content-addressed reuse: every submission runs its own
  /// frontend pass (the kcc --translation-cache=off A/B mode).
  unsigned TranslationCacheEntries = 256;
  /// Capacity (outcomes) of the engine-wide result cache
  /// (driver/ResultCache.h): completed search outcomes keyed by
  /// (translation key, machine fingerprint, search fingerprint), so a
  /// resubmitted (source, config) pair skips its search entirely. 0
  /// disables it (the kcc --result-cache=off A/B mode).
  unsigned ResultCacheEntries = 256;
  /// Threads of the frontend pool, which compiles submissions off the
  /// submitting thread (and runs wave-scheduled searches, which never
  /// touch the steal pool). 0 = auto (2): enough to overlap frontend
  /// work with searches without oversubscribing the search workers.
  unsigned FrontendWorkers = 0;
};

/// Pool configuration for an engine dedicated to \p Req: the pool is
/// sized from the request's worker count (clamped to hardware). The
/// Driver facade and the batched tool runner size their engines this
/// way.
EngineConfig engineConfigFor(const AnalysisRequest &Req);

/// Pool-counter surrogate for wave-scheduled runs, which never touch
/// the steal pool: what the wave reference path can truthfully
/// aggregate from per-program outcomes (steals are genuinely zero,
/// Jobs is 1 by definition — each wave search runs its program alone).
/// Shared by Driver::runBatch's wave branch and kcc's
/// --batch-stats/--json reporting so the two surfaces can never drift.
SchedulerStats waveAggregateStats(const std::vector<DriverOutcome> &Outcomes);

/// Engine memory-observability counters: what the engine currently
/// retains per job, beyond the caches that are *supposed* to persist
/// (the translation cache keeps its artifacts by design). After
/// drain() on an otherwise idle engine, every counter here is zero
/// except ProgramSlots (the scheduler's monotonic index space) — the
/// reclaim contract that keeps a long-lived service's footprint
/// proportional to its largest batch, not its whole history.
/// tests/test_catalog_coverage.cpp pins this down over the 200+-program
/// coverage batch.
struct EngineMemoryStats {
  size_t PendingJobs = 0;        ///< submitted, outcome not yet final
  size_t GraveyardArtifacts = 0; ///< finished jobs' artifact refs awaiting
                                 ///< the post-drain reclaim
  size_t ProgramSlots = 0;       ///< scheduler program index (monotonic)
  size_t RetainedPrograms = 0;   ///< un-reclaimed per-program search state
  size_t PendingSnapshots = 0;   ///< live snapshot-cache entries
};

/// Identifies a job in EngineSink callbacks.
struct EngineJobInfo {
  size_t Job = 0;   ///< engine-wide job id (submission order, from 1)
  std::string Name; ///< translation unit name
};

/// Streaming event interface. Callbacks fire on engine threads —
/// frontend workers for jobs that end there (compile failures,
/// wave-scheduled searches), search workers for pooled jobs — so
/// implementations must be thread-safe. A callback may call back into
/// the engine — including submit() — but must not block on the job it
/// is being called for. Event order per job: onFrontierTruncated /
/// onUbFound (as applicable), then onProgramFinished last.
class EngineSink {
public:
  virtual ~EngineSink() = default;

  /// The job completed; \p Outcome is final. \p WallMicros measures
  /// submit()-to-completion wall time — honest per-job attribution,
  /// with the shared-pool caveat that concurrent jobs' times overlap
  /// (they sum to more than the batch wall-clock).
  virtual void onProgramFinished(const EngineJobInfo &Job,
                                 const DriverOutcome &Outcome,
                                 double WallMicros) {}
  /// Undefinedness was found (static or dynamic).
  virtual void onUbFound(const EngineJobInfo &Job,
                         const std::vector<UbReport> &Reports) {}
  /// The search exhausted its budget with subtrees unexplored: the
  /// verdict is not exhaustive.
  virtual void onFrontierTruncated(const EngineJobInfo &Job,
                                   unsigned DroppedSubtrees) {}
};

namespace detail {
struct JobState;
}

/// Future-backed handle to one submitted job. Cheap to copy (shared
/// state); the default-constructed handle is invalid.
class JobHandle {
public:
  JobHandle() = default;

  bool valid() const { return State != nullptr; }
  /// Engine-wide job id (matches EngineJobInfo::Job).
  size_t id() const;
  const std::string &name() const;
  /// True once the outcome is final (never blocks).
  bool done() const;
  /// Blocks until the job completed; the reference stays valid while
  /// any handle to this job is alive.
  const DriverOutcome &wait() const;
  /// Blocks, then moves the outcome out (call at most once).
  DriverOutcome take();
  /// Submit-to-completion wall time in microseconds (blocks like
  /// wait()). See EngineSink::onProgramFinished for the shared-pool
  /// attribution caveat.
  double wallMicros() const;

private:
  friend class AnalysisEngine;
  explicit JobHandle(std::shared_ptr<detail::JobState> S)
      : State(std::move(S)) {}

  std::shared_ptr<detail::JobState> State;
};

/// The persistent analysis service. Construction is cheap; the worker
/// pools spawn lazily on the first submission and live until
/// shutdown() (or destruction). One engine serves any number of
/// submissions, concurrent or sequential, with any mix of requests.
class AnalysisEngine {
public:
  explicit AnalysisEngine(EngineConfig Cfg = EngineConfig());
  ~AnalysisEngine();

  AnalysisEngine(const AnalysisEngine &) = delete;
  AnalysisEngine &operator=(const AnalysisEngine &) = delete;

  /// The header registry every compilation uses. The registry is NOT
  /// synchronized: mutate it only while no submission is in flight
  /// (before the first submit, or after every outstanding JobHandle
  /// completed / drain() returned) — submit() is asynchronous, so "the
  /// call returned" no longer means "the compile finished". Mutating
  /// at a quiescent point is fully supported even on a started engine:
  /// the registry's content fingerprint is part of every cache key, so
  /// edits can never serve stale cached artifacts
  /// (tests/test_translation_cache.cpp pins the invalidation down).
  HeaderRegistry &headers();

  /// Resolved search-pool width.
  unsigned workers() const;

  /// Compile-only entry point: the frontend half of the pipeline, run
  /// synchronously on the calling thread through the translation cache
  /// (no machine runs, no pool interaction). The artifact is immutable
  /// and may be shared with past or future submissions of the same
  /// content.
  CompiledProgramRef compile(const AnalysisRequest &Req,
                             const std::string &Source,
                             const std::string &Name);

  /// Submits one translation unit for analysis under \p Req and
  /// returns immediately: O(1), no frontend or search work on the
  /// calling thread (the source is copied into the job). \p Sink, when
  /// given, streams this job's events from engine threads; it must
  /// outlive the job. Submissions after shutdown() complete
  /// immediately with an Internal outcome (no events fire).
  JobHandle submit(const AnalysisRequest &Req, std::string Source,
                   std::string Name, EngineSink *Sink = nullptr);

  /// Submits every input under one request; handles come back in input
  /// order. Equivalent to N submit() calls.
  std::vector<JobHandle> submitBatch(const AnalysisRequest &Req,
                                     const std::vector<BatchInput> &Inputs,
                                     EngineSink *Sink = nullptr);

  /// Blocks until every outstanding job completed (events fired,
  /// futures set), then reclaims finished per-program search state.
  /// The pools stay alive, idle, ready for the next submission; the
  /// translation cache keeps its artifacts (that is the point of a
  /// persistent service).
  void drain();

  /// Graceful shutdown: drain(), then stop and join both pools.
  /// Idempotent. Submissions after shutdown complete immediately with
  /// an Internal outcome explaining the rejection (no events fire).
  void shutdown();
  bool isShutdown() const;

  /// Live search-pool counters (monotonic; diff two snapshots for
  /// per-batch numbers). Jobs is the resolved pool width even before
  /// the pool spawned.
  SchedulerStats poolStats() const;

  /// Live translation-cache counters (monotonic): hits, misses,
  /// in-flight joins, evictions.
  TranslationCacheStats translationStats() const;

  /// Live result-cache counters (monotonic): searches skipped because
  /// an identical outcome was resident (hits) or in flight (joins).
  ResultCacheStats resultCacheStats() const;

  /// Live retained-state counters (see EngineMemoryStats for the
  /// post-drain reclaim contract).
  EngineMemoryStats memoryStats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace cundef

#endif // CUNDEF_DRIVER_ENGINE_H
