//===- driver/Engine.h - The persistent analysis engine ---------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer: a long-lived AnalysisEngine owns one persistent
/// work-stealing worker pool (core/Scheduler.h service mode) and a
/// shared snapshot cache, and runs the whole kcc pipeline — preprocess,
/// parse, analyze, static checks, strict execution, evaluation-order
/// search — for every translation unit submitted to it. Submission is
/// asynchronous: submit() validates nothing (the AnalysisRequest was
/// validated at build time), compiles on the calling thread, enqueues
/// the search, and returns a future-backed JobHandle; per-job events
/// (program finished, UB found, frontier truncated) stream to an
/// optional EngineSink from worker threads as programs complete.
///
/// Every other entry point — Driver::runSource/runBatch, the batched
/// tool runner, the suite scorers, the kcc CLI — is a thin adapter over
/// this class, so the codebase has exactly one submission path, and a
/// service reusing one engine across batches amortizes pool startup
/// while producing outcomes byte-identical to fresh per-batch drivers
/// (tests/test_engine.cpp pins that down).
///
/// Determinism: per-program results never depend on pool width, steal
/// interleaving, or what else is in flight (core/Scheduler.h); sharing
/// the pool across submissions is a wall-clock optimization only.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_DRIVER_ENGINE_H
#define CUNDEF_DRIVER_ENGINE_H

#include "core/Scheduler.h"
#include "driver/Request.h"
#include "text/Preprocessor.h"
#include "ub/Report.h"

#include <memory>
#include <string>
#include <vector>

namespace cundef {

class AstContext;
class StringInterner;

/// Everything one analysis produced. The outcome carries both halves
/// of kcc's verdict: compile-time findings and runtime findings, plus
/// the program's output and exit code when it completed (the paper's
/// section 3.2 contract).
struct DriverOutcome {
  bool CompileOk = false;
  std::string CompileErrors;
  std::vector<UbReport> StaticUb;
  std::vector<UbReport> DynamicUb;
  RunStatus Status = RunStatus::Internal;
  int ExitCode = 0;
  std::string Output;
  unsigned OrdersExplored = 0;
  /// Symmetric interleavings the search pruned (core/Search.h).
  unsigned OrdersDeduped = 0;
  /// The search ran out of budget with subtrees unexplored: a clean
  /// verdict is then not exhaustive. kcc --show-witness prints this so
  /// partial searches are never silently mistaken for full ones.
  bool SearchTruncated = false;
  /// Subtrees dropped unexplored on budget edges.
  unsigned SearchDropped = 0;
  /// Scheduler counters for the search (kcc --show-witness prints them,
  /// kcc --json emits them). Steals and peak frontier are wall-clock
  /// details; evictions count LRU snapshot evictions, each of which
  /// turned one fork into a prefix replay.
  unsigned SearchSteals = 0;
  unsigned SearchEvictions = 0;
  unsigned SearchPeakFrontier = 0;
  /// Decision prefix that exposed order-dependent undefinedness; replay
  /// it with Machine::setReplayDecisions to reproduce the run
  /// deterministically. Empty when the default order already misbehaved
  /// (or nothing was found).
  std::vector<uint8_t> SearchWitness;

  bool anyUb() const { return !StaticUb.empty() || !DynamicUb.empty(); }
  /// Renders every finding in the paper's kcc error format.
  std::string renderReport() const;
};

/// One translation unit of a submission.
struct BatchInput {
  std::string Source;
  std::string Name;
};

/// A compiled translation unit: the owned AST plus the compile-time
/// half of the verdict (used directly by tests that inspect the AST;
/// pooled submissions keep theirs alive inside the engine until the
/// search completes).
struct CompiledUnit {
  std::unique_ptr<StringInterner> Interner;
  std::unique_ptr<AstContext> Ast;
  std::vector<UbReport> StaticUb;
  std::string Errors;
  bool Ok = false;
};

/// Engine-level (pool) configuration. Per-analysis options live in
/// AnalysisRequest; everything here is shared by every job the engine
/// ever runs.
struct EngineConfig {
  /// Worker threads of the persistent pool. 0 = auto-detect
  /// std::thread::hardware_concurrency().
  unsigned Workers = 0;
  /// Cap the pool at hardware concurrency (tests disable this to force
  /// cross-thread interleaving on small CI machines; results are
  /// worker-count-independent either way).
  bool ClampWorkersToHardware = true;
  /// LRU capacity of the shared snapshot cache (core/Scheduler.h).
  unsigned SnapshotBudget = 1024;
};

/// Pool configuration for an engine dedicated to \p Req: the pool is
/// sized from the request's worker count (clamped to hardware). The
/// Driver facade and the batched tool runner size their engines this
/// way.
EngineConfig engineConfigFor(const AnalysisRequest &Req);

/// Pool-counter surrogate for wave-scheduled runs, which never touch
/// the pool: what the sequential reference path can truthfully
/// aggregate from per-program outcomes (steals are genuinely zero,
/// Jobs is 1 by definition). Shared by Driver::runBatch's wave branch
/// and kcc's --batch-stats/--json reporting so the two surfaces can
/// never drift.
SchedulerStats waveAggregateStats(const std::vector<DriverOutcome> &Outcomes);

/// Identifies a job in EngineSink callbacks.
struct EngineJobInfo {
  size_t Job = 0;   ///< engine-wide job id (submission order, from 1)
  std::string Name; ///< translation unit name
};

/// Streaming event interface. Callbacks fire on engine worker threads
/// (or on the submitting thread for jobs that complete inline: compile
/// failures and wave-scheduled requests), so implementations must be
/// thread-safe. A callback may call back into the engine — including
/// submit() — but must not block on the job it is being called for.
/// Event order per job: onFrontierTruncated / onUbFound (as
/// applicable), then onProgramFinished last.
class EngineSink {
public:
  virtual ~EngineSink() = default;

  /// The job completed; \p Outcome is final. \p WallMicros measures
  /// submit()-to-completion wall time — honest per-job attribution,
  /// with the shared-pool caveat that concurrent jobs' times overlap
  /// (they sum to more than the batch wall-clock).
  virtual void onProgramFinished(const EngineJobInfo &Job,
                                 const DriverOutcome &Outcome,
                                 double WallMicros) {}
  /// Undefinedness was found (static or dynamic).
  virtual void onUbFound(const EngineJobInfo &Job,
                         const std::vector<UbReport> &Reports) {}
  /// The search exhausted its budget with subtrees unexplored: the
  /// verdict is not exhaustive.
  virtual void onFrontierTruncated(const EngineJobInfo &Job,
                                   unsigned DroppedSubtrees) {}
};

namespace detail {
struct JobState;
}

/// Future-backed handle to one submitted job. Cheap to copy (shared
/// state); the default-constructed handle is invalid.
class JobHandle {
public:
  JobHandle() = default;

  bool valid() const { return State != nullptr; }
  /// Engine-wide job id (matches EngineJobInfo::Job).
  size_t id() const;
  const std::string &name() const;
  /// True once the outcome is final (never blocks).
  bool done() const;
  /// Blocks until the job completed; the reference stays valid while
  /// any handle to this job is alive.
  const DriverOutcome &wait() const;
  /// Blocks, then moves the outcome out (call at most once).
  DriverOutcome take();
  /// Submit-to-completion wall time in microseconds (blocks like
  /// wait()). See EngineSink::onProgramFinished for the shared-pool
  /// attribution caveat.
  double wallMicros() const;

private:
  friend class AnalysisEngine;
  explicit JobHandle(std::shared_ptr<detail::JobState> S)
      : State(std::move(S)) {}

  std::shared_ptr<detail::JobState> State;
};

/// The persistent analysis service. Construction is cheap; the worker
/// pool spawns lazily on the first pooled submission and lives until
/// shutdown() (or destruction). One engine serves any number of
/// submissions, concurrent or sequential, with any mix of requests.
class AnalysisEngine {
public:
  explicit AnalysisEngine(EngineConfig Cfg = EngineConfig());
  ~AnalysisEngine();

  AnalysisEngine(const AnalysisEngine &) = delete;
  AnalysisEngine &operator=(const AnalysisEngine &) = delete;

  /// The header registry every compilation uses. Add program-specific
  /// headers before submitting; not synchronized against in-flight
  /// compilations.
  HeaderRegistry &headers();

  /// Resolved worker-pool width.
  unsigned workers() const;

  /// Compile-only entry point (the front half of the pipeline; no
  /// machine runs, no pool interaction).
  CompiledUnit compileUnit(const AnalysisRequest &Req,
                           const std::string &Source,
                           const std::string &Name);

  /// Submits one translation unit for analysis under \p Req and
  /// returns immediately (wave-scheduled requests and compile failures
  /// complete synchronously before returning). \p Sink, when given,
  /// streams this job's events; it must outlive the job. The source is
  /// only read during the synchronous compile, so it is taken by
  /// reference.
  JobHandle submit(const AnalysisRequest &Req, const std::string &Source,
                   std::string Name, EngineSink *Sink = nullptr);

  /// Submits every input under one request; handles come back in input
  /// order. Equivalent to N submit() calls.
  std::vector<JobHandle> submitBatch(const AnalysisRequest &Req,
                                     const std::vector<BatchInput> &Inputs,
                                     EngineSink *Sink = nullptr);

  /// Blocks until every outstanding job completed (events fired,
  /// futures set), then reclaims finished per-program search state.
  /// The pool stays alive, idle, ready for the next submission.
  void drain();

  /// Graceful shutdown: drain(), then stop and join the pool.
  /// Idempotent. Submissions after shutdown complete immediately with
  /// an Internal outcome explaining the rejection (no events fire).
  void shutdown();
  bool isShutdown() const;

  /// Live pool counters (monotonic; diff two snapshots for per-batch
  /// numbers). Jobs is the resolved pool width even before the pool
  /// spawned.
  SchedulerStats poolStats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace cundef

#endif // CUNDEF_DRIVER_ENGINE_H
