//===- driver/Request.h - Validated analysis requests -----------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The options surface of the analysis engine. An AnalysisRequest is an
/// immutable, pre-validated description of how to analyze one (or many)
/// translation units: target parameters, machine semantics, and the
/// evaluation-order search configuration. Requests are built once
/// through the fluent AnalysisRequest::Builder — which rejects nonsense
/// combinations with a typed RequestError instead of silently clamping
/// them — and then reused across any number of engine submissions.
///
/// This replaces the flat DriverOptions flag-struct: every entry point
/// (AnalysisEngine::submit, the Driver adapters, the batched tool
/// runner, the suite scorers, the kcc CLI) now speaks the same
/// validated type, so a bad configuration is diagnosed exactly once, at
/// build time, with a machine-inspectable error code.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_DRIVER_REQUEST_H
#define CUNDEF_DRIVER_REQUEST_H

#include "core/Search.h"
#include "types/TargetConfig.h"

#include <string>

namespace cundef {

/// Why a request failed to validate. Kind is stable and machine
/// checkable; Message is the human rendering (what kcc prints before
/// exiting 2).
struct RequestError {
  enum class Code : uint8_t {
    None = 0,
    /// SearchRuns == 0: the budget cannot even run the default order.
    ZeroSearchBudget,
    /// SearchJobs beyond any plausible machine (> MaxSearchJobs); a
    /// typo like 10000 would silently burn memory on idle deques.
    OversizedSearchJobs,
    /// MachineOptions::StepLimit == 0: the machine would stop before
    /// its first step and every program would look non-terminating.
    ZeroStepLimit,
    /// MachineOptions::MaxCallDepth == 0: main() itself could not be
    /// entered.
    ZeroCallDepth,
  };

  Code Kind = Code::None;
  std::string Message;

  bool ok() const { return Kind == Code::None; }
};

/// Upper bound the builder accepts for worker threads. Far above any
/// real pool (the scheduler additionally clamps to hardware
/// concurrency by default); guards against unit-typo requests.
constexpr unsigned MaxSearchJobs = 4096;

/// How much of the flow-sensitive static layer (static/FlowChecker.h)
/// a request runs. Off keeps only the syntactic checks; On (the
/// default) adds the CFG/dataflow pass; Only additionally skips the
/// dynamic search entirely — the verdict is the static one, which is
/// what kcc --static-analyze=only exposes.
enum class StaticAnalysisMode : uint8_t { Off, On, Only };

/// An immutable, validated description of one analysis: what the kcc
/// pipeline should do to a translation unit. Default-constructed
/// requests carry the documented defaults (strict semantics, static
/// checks on, no order search); anything else goes through Builder.
class AnalysisRequest {
public:
  class Builder;

  AnalysisRequest() = default;

  /// Implementation-defined parameters (paper section 2.5.1).
  const TargetConfig &target() const { return Target; }
  /// Machine semantics: strictness, tracking, order policy, style.
  const MachineOptions &machine() const { return Machine; }
  /// Run the static undefinedness checker (kcc's compile-time half).
  bool staticChecks() const { return RunStaticChecks; }
  /// Flow-sensitive static layer mode. Only meaningful while
  /// staticChecks() is true (the flow layer builds on the same AST
  /// facts); Only turns the whole analysis purely static.
  StaticAnalysisMode staticAnalyze() const { return StaticAnalysis; }
  /// Evaluation orders to search (paper 2.5.2). 1 = only the policy
  /// default order; the builder rejects 0.
  unsigned searchRuns() const { return SearchRuns; }
  /// Worker threads for the search pool. 0 = auto-detect hardware
  /// concurrency. An AnalysisEngine sizes its pool from its own
  /// EngineConfig; this field drives the Driver adapters and the
  /// inline wave path.
  unsigned searchJobs() const { return SearchJobs; }
  /// Deduplicate symmetric interleavings during the search.
  bool searchDedup() const { return SearchDedup; }
  /// Fork search children from snapshots instead of replaying
  /// prefixes.
  bool searchSnapshots() const { return SearchSnapshots; }
  /// Scheduling layer. Results never depend on this (core/Scheduler.h);
  /// Wave selects the sequential reference engine.
  SchedKind searchSched() const { return SearchSched; }
  /// Consult the engine's content-addressed result cache
  /// (driver/ResultCache.h) for this submission. Off forces a full
  /// search even when an identical outcome is resident — the kcc
  /// --result-cache=off A/B mode. Per-request (not engine-wide) so a
  /// remote client can disable it over the wire against a shared
  /// daemon without affecting other clients.
  bool useResultCache() const { return UseResultCache; }

private:
  TargetConfig Target = TargetConfig::lp64();
  MachineOptions Machine;
  bool RunStaticChecks = true;
  StaticAnalysisMode StaticAnalysis = StaticAnalysisMode::On;
  unsigned SearchRuns = 1;
  unsigned SearchJobs = 1;
  bool SearchDedup = true;
  bool SearchSnapshots = true;
  SchedKind SearchSched = SchedKind::Stealing;
  bool UseResultCache = true;
};

/// Fluent builder for AnalysisRequest. Setters never fail; build()
/// validates the whole combination once and returns either the
/// immutable request or the first typed error. A built request needs
/// no further checking anywhere downstream.
class AnalysisRequest::Builder {
public:
  Builder &target(TargetConfig T) { Req.Target = T; return *this; }
  /// Wholesale machine-options override (ablation benches flip the
  /// individual semantic switches this way).
  Builder &machine(const MachineOptions &M) { Req.Machine = M; return *this; }
  Builder &style(RuleStyle S) { Req.Machine.Style = S; return *this; }
  Builder &order(EvalOrderKind O) { Req.Machine.Order = O; return *this; }
  Builder &seed(uint32_t S) { Req.Machine.Seed = S; return *this; }
  Builder &strict(bool On) { Req.Machine.Strict = On; return *this; }
  Builder &staticChecks(bool On) { Req.RunStaticChecks = On; return *this; }
  Builder &staticAnalyze(StaticAnalysisMode M) {
    Req.StaticAnalysis = M;
    return *this;
  }
  Builder &searchRuns(unsigned N) { Req.SearchRuns = N; return *this; }
  Builder &searchJobs(unsigned N) { Req.SearchJobs = N; return *this; }
  Builder &dedup(bool On) { Req.SearchDedup = On; return *this; }
  Builder &snapshots(bool On) { Req.SearchSnapshots = On; return *this; }
  Builder &sched(SchedKind K) { Req.SearchSched = K; return *this; }
  Builder &resultCache(bool On) { Req.UseResultCache = On; return *this; }

  struct Result {
    AnalysisRequest Request; ///< meaningful only when Err.ok()
    RequestError Err;

    bool ok() const { return Err.ok(); }
    explicit operator bool() const { return ok(); }
  };

  /// Validates the accumulated configuration. Never clamps: a zero
  /// search budget, an absurd worker count, or a machine that cannot
  /// take a step are errors the caller must surface (kcc exits 2 with
  /// Err.Message).
  Result build() const;

  /// For call sites whose configuration is a compile-time constant
  /// (tests, benches, examples): aborts with the diagnostic instead of
  /// returning an error.
  AnalysisRequest buildOrDie() const;

private:
  AnalysisRequest Req;
};

} // namespace cundef

#endif // CUNDEF_DRIVER_REQUEST_H
