//===- driver/Driver.h - The kcc-style driver -------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline the paper wraps in its kcc script (section 3.2):
/// preprocess, parse, analyze, run the static undefinedness checker,
/// then execute the program in the strict semantics (optionally
/// searching evaluation orders). The outcome carries both halves of
/// kcc's verdict: compile-time findings and runtime findings, plus the
/// program's output and exit code when it completed.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_DRIVER_DRIVER_H
#define CUNDEF_DRIVER_DRIVER_H

#include "core/Search.h"
#include "text/Preprocessor.h"
#include "types/TargetConfig.h"
#include "ub/Report.h"

#include <memory>
#include <string>

namespace cundef {

struct DriverOptions {
  TargetConfig Target = TargetConfig::lp64();
  MachineOptions Machine;
  /// Run the static undefinedness checker (kcc's compile-time half).
  bool RunStaticChecks = true;
  /// When > 1, search that many evaluation orders for undefinedness
  /// that only some orders exhibit (paper section 2.5.2).
  unsigned SearchRuns = 1;
  /// Worker threads for the evaluation-order search (--search-jobs).
  /// 0 = auto-detect std::thread::hardware_concurrency(). The verdict
  /// and witness are independent of this (core/Search.h).
  unsigned SearchJobs = 1;
  /// Deduplicate symmetric interleavings during the search.
  bool SearchDedup = true;
  /// Fork search children from configuration snapshots instead of
  /// replaying decision prefixes from main() (--search-engine).
  /// Identical verdicts and witnesses either way; forking is faster.
  bool SearchSnapshots = true;
  /// Scheduling layer for the search (--search-sched): the default
  /// work-stealing scheduler or the wave-synchronous reference engine.
  /// Results never depend on this (core/Scheduler.h).
  SchedKind SearchSched = SchedKind::Stealing;
};

/// Everything a run of the driver produced.
struct DriverOutcome {
  bool CompileOk = false;
  std::string CompileErrors;
  std::vector<UbReport> StaticUb;
  std::vector<UbReport> DynamicUb;
  RunStatus Status = RunStatus::Internal;
  int ExitCode = 0;
  std::string Output;
  unsigned OrdersExplored = 0;
  /// Symmetric interleavings the search pruned (core/Search.h).
  unsigned OrdersDeduped = 0;
  /// The search ran out of budget with subtrees unexplored: a clean
  /// verdict is then not exhaustive. kcc --show-witness prints this so
  /// partial searches are never silently mistaken for full ones.
  bool SearchTruncated = false;
  /// Subtrees dropped unexplored on budget edges.
  unsigned SearchDropped = 0;
  /// Scheduler counters for the search (kcc --show-witness prints them;
  /// previously they were dropped on the floor). Steals and peak
  /// frontier are wall-clock details; evictions count LRU snapshot
  /// evictions, each of which turned one fork into a prefix replay.
  unsigned SearchSteals = 0;
  unsigned SearchEvictions = 0;
  unsigned SearchPeakFrontier = 0;
  /// Decision prefix that exposed order-dependent undefinedness; replay
  /// it with Machine::setReplayDecisions to reproduce the run
  /// deterministically. Empty when the default order already misbehaved
  /// (or nothing was found).
  std::vector<uint8_t> SearchWitness;

  bool anyUb() const { return !StaticUb.empty() || !DynamicUb.empty(); }
  /// Renders every finding in the paper's kcc error format.
  std::string renderReport() const;
};

/// One translation unit of a batched run.
struct BatchInput {
  std::string Source;
  std::string Name;
};

/// Aggregate counters of one batched run (per-program numbers live in
/// the individual DriverOutcomes).
struct BatchStats {
  unsigned Programs = 0;
  /// Worker threads the shared scheduler resolved to.
  unsigned Jobs = 0;
  uint64_t Steals = 0;
  uint64_t SnapshotEvictions = 0;
  uint64_t PeakFrontier = 0;
  /// Machine runs executed, including speculative surplus.
  uint64_t RunsExecuted = 0;
  uint64_t DedupHits = 0;
  double WallMs = 0.0;
};

/// Everything a batched run produced: one outcome per input, in input
/// order (program id = input index), plus the shared-scheduler stats.
/// Each outcome is byte-identical to what runSource would have produced
/// for that input alone, regardless of how the programs' runs
/// interleaved on the shared worker pool.
struct BatchResult {
  std::vector<DriverOutcome> Outcomes;
  BatchStats Stats;
};

/// The kcc-like frontend driver. Holds the header registry so callers
/// can add program-specific headers before running.
class Driver {
public:
  explicit Driver(DriverOptions Opts = DriverOptions());

  HeaderRegistry &headers() { return Headers; }
  const DriverOptions &options() const { return Opts; }

  /// Compiles and executes \p Source.
  DriverOutcome runSource(const std::string &Source,
                          const std::string &Name = "test.c");

  /// Batched mode: compiles every input, then runs all of their
  /// evaluation-order searches through ONE shared work-stealing
  /// scheduler, so the worker pool stays busy across translation units
  /// instead of draining per program (kcc a.c b.c --batch-stats). Each
  /// program keeps the single-program contract: its default-order run
  /// executes first, the search fans out only when that run completed
  /// cleanly, and its witness/verdict/output are deterministic. The
  /// search counts the default-order run as its root, so OrdersExplored
  /// is one lower than an equivalent runSource (which executes the
  /// default order once more outside the search). Selecting the wave
  /// reference scheduler (SearchSched) falls back to one sequential
  /// runSource per unit — same observable outcomes, no shared pool.
  BatchResult runBatch(const std::vector<BatchInput> &Inputs);

  /// Compile-only entry point (used by tests that inspect the AST).
  /// Returns null on parse/sema errors; \p ErrorsOut receives rendered
  /// diagnostics, \p StaticOut the static findings.
  struct Compiled {
    std::unique_ptr<StringInterner> Interner;
    std::unique_ptr<AstContext> Ast;
    std::vector<UbReport> StaticUb;
    std::string Errors;
    bool Ok = false;
  };
  Compiled compile(const std::string &Source,
                   const std::string &Name = "test.c");

private:
  DriverOptions Opts;
  HeaderRegistry Headers;
};

} // namespace cundef

#endif // CUNDEF_DRIVER_DRIVER_H
