//===- driver/Driver.h - The kcc-style driver -------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synchronous convenience facade over the AnalysisEngine: the
/// pipeline the paper wraps in its kcc script (section 3.2), exposed as
/// blocking calls for tests, examples, and one-shot tooling. A Driver
/// is a session — it owns one engine (one persistent worker pool, one
/// snapshot cache, one header registry) sized from its AnalysisRequest,
/// and every runSource/runBatch call submits into that pool, so
/// repeated calls amortize pool startup exactly like a long-lived
/// service. Asynchronous submission, streaming events, and
/// per-job timing live on the engine itself (driver/Engine.h).
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_DRIVER_DRIVER_H
#define CUNDEF_DRIVER_DRIVER_H

#include "driver/Engine.h"
#include "driver/Request.h"

#include <string>
#include <vector>

namespace cundef {

/// Aggregate counters of one batched run (per-program numbers live in
/// the individual DriverOutcomes). On a persistent engine these are
/// per-batch deltas of the monotonic pool counters; PeakFrontier is
/// the pool's high-water mark as of this batch.
struct BatchStats {
  unsigned Programs = 0;
  /// Worker threads the shared scheduler resolved to.
  unsigned Jobs = 0;
  uint64_t Steals = 0;
  uint64_t SnapshotEvictions = 0;
  uint64_t PeakFrontier = 0;
  /// Machine runs executed, including speculative surplus.
  uint64_t RunsExecuted = 0;
  /// Runs the commit wavefront finalized (deterministic). The
  /// speculative-waste ratio of the batch is
  /// (RunsExecuted - RunsCommitted) / RunsCommitted.
  uint64_t RunsCommitted = 0;
  /// Provisional-claim rollbacks: runs re-executed because their early
  /// stop was only provisionally justified.
  uint64_t ProvisionalRequeues = 0;
  uint64_t DedupHits = 0;
  /// Translation-cache resolution of this batch's frontend passes:
  /// hits (ready artifact or in-flight join — no compile ran) vs
  /// misses (full frontend pass). Hits + Misses == Programs on a
  /// Driver-owned engine (cache always enabled there); both stay 0 on
  /// an engine whose translation cache is disabled.
  uint64_t TranslationHits = 0;
  uint64_t TranslationMisses = 0;
  /// Result-cache resolution of this batch's submissions: hits (a
  /// completed outcome was replayed, or an in-flight twin's search was
  /// joined — no search ran) vs misses (this submission owned its
  /// search). Honest executed-vs-cached accounting: Hits + Misses ==
  /// Programs on a cache-enabled engine; both stay 0 when the cache is
  /// disabled or the requests opted out.
  uint64_t ResultCacheHits = 0;
  uint64_t ResultCacheMisses = 0;
  double WallMs = 0.0;
};

/// Everything a batched run produced: one outcome per input, in input
/// order (program id = input index), plus the shared-scheduler stats.
/// Each outcome is byte-identical to what runSource would have produced
/// for that input alone, regardless of how the programs' runs
/// interleaved on the shared worker pool.
struct BatchResult {
  std::vector<DriverOutcome> Outcomes;
  BatchStats Stats;
};

/// The kcc-like frontend driver: a blocking adapter over one owned
/// AnalysisEngine. Holds the header registry (through the engine) so
/// callers can add program-specific headers before running.
class Driver {
public:
  explicit Driver(AnalysisRequest Req = AnalysisRequest());

  HeaderRegistry &headers() { return Eng.headers(); }
  const AnalysisRequest &request() const { return Req; }
  /// The engine this driver submits into (for callers that want to mix
  /// blocking and async submission against one pool).
  AnalysisEngine &engine() { return Eng; }

  /// Compiles and executes \p Source: submits one job and blocks on
  /// it. The search's root run doubles as the default-order run (the
  /// engine's root-gated contract), so OrdersExplored counts every
  /// machine run exactly once.
  DriverOutcome runSource(const std::string &Source,
                          const std::string &Name = "test.c");

  /// Batched mode: submits every input into the engine's shared worker
  /// pool and blocks until all complete (kcc a.c b.c --batch-stats).
  /// Each program keeps the single-program contract: its default-order
  /// run executes first, the search fans out only when that run
  /// completed cleanly, and its witness/verdict/output are
  /// deterministic. Selecting the wave reference scheduler
  /// (AnalysisRequest::searchSched) runs each unit synchronously
  /// through the wave engine instead — same observable outcomes, no
  /// shared pool.
  BatchResult runBatch(const std::vector<BatchInput> &Inputs);

  /// Compile-only entry point (used by tests that inspect the AST):
  /// the immutable frontend artifact, shared through the engine's
  /// translation cache. C->ok() is false on parse/sema errors;
  /// C->errors() has the rendered diagnostics, C->staticUb() the
  /// static findings, C->ast() the const AST every downstream machine
  /// reads.
  using Compiled = CompiledProgramRef;
  Compiled compile(const std::string &Source,
                   const std::string &Name = "test.c");

private:
  AnalysisRequest Req;
  AnalysisEngine Eng;
};

} // namespace cundef

#endif // CUNDEF_DRIVER_DRIVER_H
