//===- driver/Driver.h - The kcc-style driver -------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline the paper wraps in its kcc script (section 3.2):
/// preprocess, parse, analyze, run the static undefinedness checker,
/// then execute the program in the strict semantics (optionally
/// searching evaluation orders). The outcome carries both halves of
/// kcc's verdict: compile-time findings and runtime findings, plus the
/// program's output and exit code when it completed.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_DRIVER_DRIVER_H
#define CUNDEF_DRIVER_DRIVER_H

#include "core/Machine.h"
#include "text/Preprocessor.h"
#include "types/TargetConfig.h"
#include "ub/Report.h"

#include <memory>
#include <string>

namespace cundef {

struct DriverOptions {
  TargetConfig Target = TargetConfig::lp64();
  MachineOptions Machine;
  /// Run the static undefinedness checker (kcc's compile-time half).
  bool RunStaticChecks = true;
  /// When > 1, search that many evaluation orders for undefinedness
  /// that only some orders exhibit (paper section 2.5.2).
  unsigned SearchRuns = 1;
  /// Worker threads for the evaluation-order search (--search-jobs).
  /// 0 = auto-detect std::thread::hardware_concurrency(). The verdict
  /// and witness are independent of this (core/Search.h).
  unsigned SearchJobs = 1;
  /// Deduplicate symmetric interleavings during the search.
  bool SearchDedup = true;
  /// Fork search children from configuration snapshots instead of
  /// replaying decision prefixes from main() (--search-engine).
  /// Identical verdicts and witnesses either way; forking is faster.
  bool SearchSnapshots = true;
};

/// Everything a run of the driver produced.
struct DriverOutcome {
  bool CompileOk = false;
  std::string CompileErrors;
  std::vector<UbReport> StaticUb;
  std::vector<UbReport> DynamicUb;
  RunStatus Status = RunStatus::Internal;
  int ExitCode = 0;
  std::string Output;
  unsigned OrdersExplored = 0;
  /// Symmetric interleavings the search pruned (core/Search.h).
  unsigned OrdersDeduped = 0;
  /// The search ran out of budget with subtrees unexplored: a clean
  /// verdict is then not exhaustive. kcc --show-witness prints this so
  /// partial searches are never silently mistaken for full ones.
  bool SearchTruncated = false;
  /// Subtrees dropped unexplored on budget edges.
  unsigned SearchDropped = 0;
  /// Decision prefix that exposed order-dependent undefinedness; replay
  /// it with Machine::setReplayDecisions to reproduce the run
  /// deterministically. Empty when the default order already misbehaved
  /// (or nothing was found).
  std::vector<uint8_t> SearchWitness;

  bool anyUb() const { return !StaticUb.empty() || !DynamicUb.empty(); }
  /// Renders every finding in the paper's kcc error format.
  std::string renderReport() const;
};

/// The kcc-like frontend driver. Holds the header registry so callers
/// can add program-specific headers before running.
class Driver {
public:
  explicit Driver(DriverOptions Opts = DriverOptions());

  HeaderRegistry &headers() { return Headers; }
  const DriverOptions &options() const { return Opts; }

  /// Compiles and executes \p Source.
  DriverOutcome runSource(const std::string &Source,
                          const std::string &Name = "test.c");

  /// Compile-only entry point (used by tests that inspect the AST).
  /// Returns null on parse/sema errors; \p ErrorsOut receives rendered
  /// diagnostics, \p StaticOut the static findings.
  struct Compiled {
    std::unique_ptr<StringInterner> Interner;
    std::unique_ptr<AstContext> Ast;
    std::vector<UbReport> StaticUb;
    std::string Errors;
    bool Ok = false;
  };
  Compiled compile(const std::string &Source,
                   const std::string &Name = "test.c");

private:
  DriverOptions Opts;
  HeaderRegistry Headers;
};

} // namespace cundef

#endif // CUNDEF_DRIVER_DRIVER_H
