//===- driver/ResultCache.h - Content-addressed search results -*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressing one rung above the TranslationCache: an
/// engine-wide, sharded, LRU-bounded cache of completed DriverOutcome
/// artifacts, keyed by everything a search's observable outcome depends
/// on — the frontend content address (TranslationKey) plus stable
/// fingerprints of the MachineOptions and the outcome-affecting
/// SearchOptions. A duplicate-heavy service workload (templated
/// corpora, resubmitted files, identical configs — exactly what a
/// long-lived kcc-serve daemon sees) pays one search per unique
/// (program, config), ever.
///
/// Semantics, mirroring frontend/TranslationCache.h:
///
///  * **Singleflight.** Concurrent submissions of one key run exactly
///    one search: the first caller claims the key as Owner; everyone
///    else Joins the in-flight entry. Unlike the translation cache —
///    whose callers block on a shared_future — the engine must never
///    block a frontend worker on another job's search, so a join
///    registers a completion waiter instead: the owner's publish()
///    fires every waiter (outside all cache locks) with the shared
///    outcome, and each joined job finishes through its normal
///    completion path.
///  * **Immutability.** Published outcomes are held behind
///    shared_ptr<const DriverOutcome> and never mutated; observers copy
///    and adjust only their own per-job fields (this job's frontend
///    timing, this job's cache flags). Byte-equality of every
///    deterministic field is the contract.
///  * **LRU per shard, in-flight pinned.** Capacity bounds ready
///    entries (split across shards); eviction drops only the cache's
///    reference. In-flight entries are pinned until their publish.
///  * **No validation.** Equal keys mean interchangeable outcomes by
///    construction: the TranslationKey folds in source, name, target,
///    static-checks flag, and the header-registry fingerprint (so a
///    live header edit re-keys — and thereby invalidates — every
///    affected entry), and the fingerprints fold in every
///    outcome-affecting machine/search option.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_DRIVER_RESULTCACHE_H
#define CUNDEF_DRIVER_RESULTCACHE_H

#include "frontend/CompiledProgram.h"
#include "support/Hash.h"

#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace cundef {

struct DriverOutcome;

/// How cached outcomes travel: shared, immutable, reference-counted.
using CachedOutcome = std::shared_ptr<const DriverOutcome>;

/// Content address of one completed analysis: the frontend artifact's
/// address plus the two configuration fingerprints
/// (machineOptionsFingerprint / the engine's request-level search
/// fingerprint, which also folds in the static-analysis mode).
struct ResultKey {
  TranslationKey Translation;
  uint64_t MachineFp = 0;
  uint64_t SearchFp = 0;

  bool operator==(const ResultKey &O) const {
    return Translation == O.Translation && MachineFp == O.MachineFp &&
           SearchFp == O.SearchFp;
  }
  bool operator!=(const ResultKey &O) const { return !(*this == O); }
};

/// Monotonic cache counters (diff two snapshots for per-batch rates).
struct ResultCacheStats {
  uint64_t Lookups = 0;
  /// Ready outcome served; the search was skipped outright.
  uint64_t Hits = 0;
  /// Full search ran (this caller owns the entry until publish).
  uint64_t Misses = 0;
  /// Joined another submission's in-flight search (no search ran for
  /// this caller). Hits + InflightJoins + Misses == Lookups.
  uint64_t InflightJoins = 0;
  /// Ready entries dropped by the LRU bound.
  uint64_t Evictions = 0;
  /// Entries whose owner completed without a cacheable outcome
  /// (engine shutdown mid-job): the claim is released, waiters still
  /// fire, nothing is stored.
  uint64_t Abandoned = 0;

  /// Fraction of lookups that skipped the search entirely.
  double hitRate() const {
    return Lookups ? static_cast<double>(Hits + InflightJoins) / Lookups : 0.0;
  }
};

/// Thread-safe content-addressed cache of completed search outcomes.
/// Capacity 0 disables it entirely (every begin() returns Disabled —
/// the kcc --result-cache=off A/B path).
class ResultCache {
public:
  /// Completion waiter of a joined submission: fired exactly once by
  /// the owner's publish (or abandon), outside all cache locks, with
  /// the shared outcome (null when the owner abandoned — the joiner
  /// must then fall back to running its own search or failing).
  using Waiter = std::function<void(CachedOutcome)>;

  /// How a lookup resolved.
  struct Claim {
    enum class Kind : uint8_t {
      Disabled, ///< cache off (capacity 0): run the search, don't publish
      Owner,    ///< first submission of this key: run, then publish()
      Hit,      ///< Ready holds the completed outcome; skip the search
      Joined,   ///< in-flight elsewhere; the waiter was registered
    } K = Kind::Disabled;
    CachedOutcome Ready; ///< set iff K == Hit
  };

  explicit ResultCache(unsigned Capacity, unsigned ShardCount = 8);

  ResultCache(const ResultCache &) = delete;
  ResultCache &operator=(const ResultCache &) = delete;

  /// One atomic lookup-or-claim-or-join. \p OnReady is registered (and
  /// later fired by the owner's publish) only when the result is
  /// Joined; it is never invoked from inside begin(). An Owner MUST
  /// eventually call publish() for the key, or waiters leak.
  Claim begin(const ResultKey &Key, Waiter OnReady);

  /// Completes an owned entry: stores \p Outcome (when \p Store and the
  /// outcome is non-null) as the key's ready artifact and fires every
  /// registered waiter with it, outside the shard lock. A null
  /// \p Outcome (or Store == false) releases the claim instead —
  /// waiters fire with null and the next submission of the key starts
  /// fresh. No-op when the key holds no in-flight entry.
  void publish(const ResultKey &Key, CachedOutcome Outcome, bool Store = true);

  /// Drops every resident entry whose TranslationKey context digest
  /// differs from \p ContextHash — the live-header-edit sweep. Entries
  /// are content-addressed, so stale ones could only be reached again
  /// if the registry reverted byte-for-byte; dropping them keeps the
  /// LRU from carrying dead weight after an edit. In-flight entries
  /// stay pinned (their owners publish into a then-unreachable key).
  void invalidateContextsExcept(uint64_t ContextHash);

  bool enabled() const { return Capacity > 0; }
  /// Ready entries currently resident (in-flight ones excluded).
  size_t size() const;
  ResultCacheStats stats() const;

private:
  struct KeyHash {
    size_t operator()(const ResultKey &K) const {
      uint64_t H = K.Translation.SourceHash;
      H = mix64(H ^ (K.Translation.ContextHash * 0x9e3779b97f4a7c15ull));
      H = mix64(H ^ (K.MachineFp * 0x9e3779b97f4a7c15ull));
      H = mix64(H ^ (K.SearchFp * 0x9e3779b97f4a7c15ull));
      return static_cast<size_t>(H);
    }
  };

  struct Entry {
    CachedOutcome Ready;
    /// Set once the outcome landed; only done entries join the LRU
    /// list and are eviction candidates.
    bool Done = false;
    /// Joined submissions waiting on the owner's publish.
    std::vector<Waiter> Waiters;
    std::list<ResultKey>::iterator LruIt;
  };

  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<ResultKey, Entry, KeyHash> Entries;
    /// Front = least recently used = next eviction victim.
    std::list<ResultKey> Lru;
    size_t DoneCount = 0;
  };

  Shard &shardFor(const ResultKey &Key) {
    return Shards[KeyHash{}(Key) >> 56 & (Shards.size() - 1)];
  }

  const unsigned Capacity;
  const unsigned PerShardCapacity;
  std::vector<Shard> Shards;

  /// Lock-free counters: the stats path must not reintroduce the
  /// single mutex that sharding exists to avoid.
  struct Counters {
    std::atomic<uint64_t> Lookups{0};
    std::atomic<uint64_t> Hits{0};
    std::atomic<uint64_t> Misses{0};
    std::atomic<uint64_t> InflightJoins{0};
    std::atomic<uint64_t> Evictions{0};
    std::atomic<uint64_t> Abandoned{0};
  };
  mutable Counters Stats;

  /// Counts one lookup resolved as \p Counter (Hits/Misses/Joins).
  void bump(std::atomic<uint64_t> Counters::*Counter) const {
    Stats.Lookups.fetch_add(1, std::memory_order_relaxed);
    (Stats.*Counter).fetch_add(1, std::memory_order_relaxed);
  }
};

} // namespace cundef

#endif // CUNDEF_DRIVER_RESULTCACHE_H
