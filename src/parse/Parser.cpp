//===- parse/Parser.cpp - C parser core ------------------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"

#include "support/Strings.h"

using namespace cundef;

Parser::Parser(std::vector<Token> Toks, AstContext &Ctx,
               DiagnosticEngine &Diags)
    : Toks(std::move(Toks)), Ctx(Ctx), Diags(Diags) {
  assert(!this->Toks.empty() && this->Toks.back().is(TokenKind::Eof) &&
         "token stream must be Eof-terminated");
  pushScope(); // file scope
}

const Token &Parser::peek(int Ahead) const {
  size_t Idx = Pos + static_cast<size_t>(Ahead);
  if (Idx >= Toks.size())
    Idx = Toks.size() - 1; // Eof
  return Toks[Idx];
}

Token Parser::take() {
  Token T = peek();
  if (Pos + 1 < Toks.size())
    ++Pos;
  return T;
}

bool Parser::consume(TokenKind Kind) {
  if (!at(Kind))
    return false;
  take();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (consume(Kind))
    return true;
  Diags.error(loc(), strFormat("expected %s in %s, found %s",
                               tokenKindName(Kind), Context,
                               tokenKindName(peek().Kind)));
  return false;
}

void Parser::synchronize() {
  int Depth = 0;
  while (!at(TokenKind::Eof)) {
    if (at(TokenKind::LBrace)) {
      ++Depth;
    } else if (at(TokenKind::RBrace)) {
      if (Depth == 0) {
        return; // let the caller consume it
      }
      --Depth;
    } else if (at(TokenKind::Semi) && Depth == 0) {
      take();
      return;
    }
    take();
  }
}

VarDecl *Parser::lookupVar(Symbol Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Vars.find(Name);
    if (Found != It->Vars.end())
      return Found->second;
  }
  return nullptr;
}

const QualType *Parser::lookupTypedef(Symbol Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Typedefs.find(Name);
    if (Found != It->Typedefs.end())
      return &Found->second;
    // A variable shadowing the name hides the typedef.
    if (It->Vars.count(Name) || It->EnumConsts.count(Name))
      return nullptr;
  }
  return nullptr;
}

const int64_t *Parser::lookupEnumConst(Symbol Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->EnumConsts.find(Name);
    if (Found != It->EnumConsts.end())
      return &Found->second;
    if (It->Vars.count(Name))
      return nullptr;
  }
  return nullptr;
}

Type *Parser::lookupTag(Symbol Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Tags.find(Name);
    if (Found != It->Tags.end())
      return Found->second;
  }
  return nullptr;
}

bool Parser::parseTranslationUnit() {
  while (!at(TokenKind::Eof))
    parseExternalDeclaration();
  return !Diags.hasErrors();
}
