//===- parse/ParseStmt.cpp - Statement parsing -----------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"

#include "support/Strings.h"

using namespace cundef;

CompoundStmt *Parser::parseCompound() {
  SourceLoc Loc = loc();
  expect(TokenKind::LBrace, "compound statement");
  pushScope();
  std::vector<Stmt *> Body;
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
    if (startsDeclSpec(peek())) {
      // Disambiguate "T * x;" declarations from expressions beginning
      // with an identifier: startsDeclSpec already consults the typedef
      // table, so an identifier here is a type name.
      Body.push_back(parseLocalDeclaration());
      continue;
    }
    Body.push_back(parseStmt());
  }
  popScope();
  expect(TokenKind::RBrace, "compound statement");
  return Ctx.create<CompoundStmt>(Loc, std::move(Body));
}

Stmt *Parser::parseStmt() {
  SourceLoc Loc = loc();
  switch (peek().Kind) {
  case TokenKind::LBrace:
    return parseCompound();
  case TokenKind::Semi:
    take();
    return Ctx.create<ExprStmt>(Loc, nullptr);
  case TokenKind::KwIf: {
    take();
    expect(TokenKind::LParen, "if statement");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "if statement");
    Stmt *Then = parseStmt();
    Stmt *Else = nullptr;
    if (consume(TokenKind::KwElse))
      Else = parseStmt();
    return Ctx.create<IfStmt>(Loc, Cond, Then, Else);
  }
  case TokenKind::KwWhile: {
    take();
    expect(TokenKind::LParen, "while statement");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "while statement");
    Stmt *Body = parseStmt();
    return Ctx.create<WhileStmt>(Loc, Cond, Body);
  }
  case TokenKind::KwDo: {
    take();
    Stmt *Body = parseStmt();
    expect(TokenKind::KwWhile, "do statement");
    expect(TokenKind::LParen, "do statement");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "do statement");
    expect(TokenKind::Semi, "do statement");
    return Ctx.create<DoStmt>(Loc, Body, Cond);
  }
  case TokenKind::KwFor: {
    take();
    expect(TokenKind::LParen, "for statement");
    pushScope(); // C99 for-init declarations get their own scope
    Stmt *Init = nullptr;
    if (at(TokenKind::Semi)) {
      take();
    } else if (startsDeclSpec(peek())) {
      Init = parseLocalDeclaration();
    } else {
      Expr *E = parseExpr();
      Init = Ctx.create<ExprStmt>(E->Loc, E);
      expect(TokenKind::Semi, "for statement");
    }
    Expr *Cond = nullptr;
    if (!at(TokenKind::Semi))
      Cond = parseExpr();
    expect(TokenKind::Semi, "for statement");
    Expr *Inc = nullptr;
    if (!at(TokenKind::RParen))
      Inc = parseExpr();
    expect(TokenKind::RParen, "for statement");
    Stmt *Body = parseStmt();
    popScope();
    return Ctx.create<ForStmt>(Loc, Init, Cond, Inc, Body);
  }
  case TokenKind::KwSwitch: {
    take();
    expect(TokenKind::LParen, "switch statement");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "switch statement");
    Stmt *Body = parseStmt();
    return Ctx.create<SwitchStmt>(Loc, Cond, Body);
  }
  case TokenKind::KwCase: {
    take();
    Expr *Value = parseCond();
    expect(TokenKind::Colon, "case label");
    Stmt *Sub = parseStmt();
    return Ctx.create<CaseStmt>(Loc, Value, Sub);
  }
  case TokenKind::KwDefault: {
    take();
    expect(TokenKind::Colon, "default label");
    Stmt *Sub = parseStmt();
    return Ctx.create<DefaultStmt>(Loc, Sub);
  }
  case TokenKind::KwBreak:
    take();
    expect(TokenKind::Semi, "break statement");
    return Ctx.create<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    take();
    expect(TokenKind::Semi, "continue statement");
    return Ctx.create<ContinueStmt>(Loc);
  case TokenKind::KwGoto: {
    take();
    if (!at(TokenKind::Identifier)) {
      Diags.error(loc(), "expected label name after 'goto'");
      synchronize();
      return Ctx.create<ExprStmt>(Loc, nullptr);
    }
    Symbol Label = take().Sym;
    expect(TokenKind::Semi, "goto statement");
    return Ctx.create<GotoStmt>(Loc, Label);
  }
  case TokenKind::KwReturn: {
    take();
    Expr *Value = nullptr;
    if (!at(TokenKind::Semi))
      Value = parseExpr();
    expect(TokenKind::Semi, "return statement");
    return Ctx.create<ReturnStmt>(Loc, Value);
  }
  case TokenKind::Identifier:
    // Label: "name: statement".
    if (peek(1).is(TokenKind::Colon)) {
      Symbol Name = take().Sym;
      take(); // :
      Stmt *Sub = parseStmt();
      return Ctx.create<LabelStmt>(Loc, Name, Sub);
    }
    [[fallthrough]];
  default: {
    Expr *E = parseExpr();
    expect(TokenKind::Semi, "expression statement");
    return Ctx.create<ExprStmt>(Loc, E);
  }
  }
}
