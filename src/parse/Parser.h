//===- parse/Parser.h - C parser -------------------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the supported C subset. Consumes the
/// preprocessor's token stream and produces an AST. The parser owns the
/// scope stack (needed anyway for the typedef lexer-hack), so names are
/// resolved here: DeclRefExpr nodes point at their VarDecl/FunctionDecl,
/// and enumeration constants are folded to integer literals.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_PARSE_PARSER_H
#define CUNDEF_PARSE_PARSER_H

#include "ast/Ast.h"
#include "support/Diagnostics.h"
#include "text/Token.h"

#include <map>
#include <vector>

namespace cundef {

class Parser {
public:
  Parser(std::vector<Token> Toks, AstContext &Ctx, DiagnosticEngine &Diags);

  /// Parses the whole token stream into Ctx.TU. Returns false if any
  /// syntax error was reported.
  bool parseTranslationUnit();

private:
  //===--- Token stream -------------------------------------------------===//
  const Token &peek(int Ahead = 0) const;
  Token take();
  bool at(TokenKind Kind) const { return peek().Kind == Kind; }
  bool consume(TokenKind Kind);
  /// Consumes \p Kind or reports "expected X in CONTEXT" and returns
  /// false (without consuming).
  bool expect(TokenKind Kind, const char *Context);
  SourceLoc loc() const { return peek().Loc; }
  /// Skips tokens until a likely statement/declaration boundary.
  void synchronize();

  //===--- Scopes --------------------------------------------------------===//
  struct Scope {
    std::map<Symbol, VarDecl *> Vars;
    std::map<Symbol, QualType> Typedefs;
    std::map<Symbol, int64_t> EnumConsts;
    std::map<Symbol, Type *> Tags;
  };
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  VarDecl *lookupVar(Symbol Name) const;
  const QualType *lookupTypedef(Symbol Name) const;
  const int64_t *lookupEnumConst(Symbol Name) const;
  Type *lookupTag(Symbol Name) const;

  //===--- Declarations (ParseDecl.cpp) ----------------------------------===//
  struct DeclSpec {
    QualType Base;
    StorageClass Storage = StorageClass::None;
    bool IsTypedef = false;
    SourceLoc Loc;
    bool Valid = false;
  };
  struct Declarator {
    Symbol Name = NoSymbol;
    QualType Ty;
    /// Parameter decls of the outermost function declarator, when the
    /// form is suitable for a function definition (name directly
    /// followed by a parameter list).
    std::vector<VarDecl *> Params;
    bool IsFunctionForm = false;
    SourceLoc Loc;
  };

  bool startsTypeName(const Token &Tok) const;
  bool startsDeclSpec(const Token &Tok) const;
  DeclSpec parseDeclSpecifiers();
  Declarator parseDeclarator(QualType Base, bool AllowAbstract);
  QualType parseTypeName(); ///< for casts, sizeof, and param decls
  const Type *parseRecordSpecifier(bool IsUnion);
  const Type *parseEnumSpecifier();
  Expr *parseInitializer();
  void parseExternalDeclaration();
  /// Parses a local declaration statement (after startsDeclSpec).
  Stmt *parseLocalDeclaration();
  /// Evaluates an integer constant expression; reports and returns
  /// \p Default on failure.
  int64_t parseConstIntExpr(const char *Context, int64_t Default);

  //===--- Expressions (ParseExpr.cpp) -----------------------------------===//
  Expr *parseExpr();
  Expr *parseAssign();
  Expr *parseCond();
  Expr *parseBinary(int MinPrec);
  Expr *parseCastExpr();
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();
  IntLitExpr *makeIntLit(SourceLoc Loc, uint64_t Value, const Type *Ty);

  //===--- Statements (ParseStmt.cpp) ------------------------------------===//
  Stmt *parseStmt();
  CompoundStmt *parseCompound();

  std::vector<Token> Toks;
  size_t Pos = 0;
  AstContext &Ctx;
  DiagnosticEngine &Diags;
  std::vector<Scope> Scopes;
  std::map<Symbol, FunctionDecl *> Functions;
};

} // namespace cundef

#endif // CUNDEF_PARSE_PARSER_H
