//===- parse/ParseDecl.cpp - Declaration parsing ---------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"

#include "sema/ConstEval.h"
#include "support/Strings.h"

using namespace cundef;

bool Parser::startsTypeName(const Token &Tok) const {
  switch (Tok.Kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwBool:
  case TokenKind::KwChar:
  case TokenKind::KwShort:
  case TokenKind::KwInt:
  case TokenKind::KwLong:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwSigned:
  case TokenKind::KwUnsigned:
  case TokenKind::KwStruct:
  case TokenKind::KwUnion:
  case TokenKind::KwEnum:
  case TokenKind::KwConst:
  case TokenKind::KwVolatile:
  case TokenKind::KwRestrict:
    return true;
  case TokenKind::Identifier:
    return lookupTypedef(Tok.Sym) != nullptr;
  default:
    return false;
  }
}

bool Parser::startsDeclSpec(const Token &Tok) const {
  switch (Tok.Kind) {
  case TokenKind::KwTypedef:
  case TokenKind::KwExtern:
  case TokenKind::KwStatic:
  case TokenKind::KwRegister:
  case TokenKind::KwInline:
    return true;
  default:
    return startsTypeName(Tok);
  }
}

Parser::DeclSpec Parser::parseDeclSpecifiers() {
  DeclSpec Spec;
  Spec.Loc = loc();

  // Accumulated base-type words.
  enum BaseKind { None, Void, Bool, Char, Int, Float, Double, Tagged };
  BaseKind Base = None;
  int LongCount = 0;
  int Signedness = 0; // -1 signed, +1 unsigned
  bool SawShort = false;
  uint8_t Quals = QualNone;
  const Type *TaggedTy = nullptr;
  bool Progress = true;

  while (Progress) {
    Progress = true;
    switch (peek().Kind) {
    case TokenKind::KwTypedef:
      Spec.IsTypedef = true;
      take();
      break;
    case TokenKind::KwExtern:
      Spec.Storage = StorageClass::Extern;
      take();
      break;
    case TokenKind::KwStatic:
      Spec.Storage = StorageClass::Static;
      take();
      break;
    case TokenKind::KwRegister:
    case TokenKind::KwInline:
      take(); // accepted, no semantic effect in our subset
      break;
    case TokenKind::KwConst:
      Quals |= QualConst;
      take();
      break;
    case TokenKind::KwVolatile:
      Quals |= QualVolatile;
      take();
      break;
    case TokenKind::KwRestrict:
      Quals |= QualRestrict;
      take();
      break;
    case TokenKind::KwVoid:
      Base = Void;
      take();
      break;
    case TokenKind::KwBool:
      Base = Bool;
      take();
      break;
    case TokenKind::KwChar:
      Base = Char;
      take();
      break;
    case TokenKind::KwShort:
      SawShort = true;
      if (Base == None)
        Base = Int;
      take();
      break;
    case TokenKind::KwInt:
      if (Base == None || Base == Int)
        Base = Int;
      take();
      break;
    case TokenKind::KwLong:
      ++LongCount;
      if (Base == None)
        Base = Int;
      take();
      break;
    case TokenKind::KwFloat:
      Base = Float;
      take();
      break;
    case TokenKind::KwDouble:
      Base = Double;
      take();
      break;
    case TokenKind::KwSigned:
      Signedness = -1;
      if (Base == None)
        Base = Int;
      take();
      break;
    case TokenKind::KwUnsigned:
      Signedness = 1;
      if (Base == None)
        Base = Int;
      take();
      break;
    case TokenKind::KwStruct:
    case TokenKind::KwUnion: {
      bool IsUnion = take().Kind == TokenKind::KwUnion;
      TaggedTy = parseRecordSpecifier(IsUnion);
      Base = Tagged;
      break;
    }
    case TokenKind::KwEnum:
      take();
      TaggedTy = parseEnumSpecifier();
      Base = Tagged;
      break;
    case TokenKind::Identifier: {
      // A typedef name is a type specifier only if no base was seen yet.
      if (Base != None || SawShort || LongCount || Signedness) {
        Progress = false;
        break;
      }
      const QualType *Ty = lookupTypedef(peek().Sym);
      if (!Ty) {
        Progress = false;
        break;
      }
      take();
      Spec.Base = Ty->withQuals(Quals);
      Spec.Valid = true;
      // Trailing qualifiers may still follow (e.g. "mytype const x").
      while (true) {
        if (consume(TokenKind::KwConst))
          Spec.Base = Spec.Base.withConst();
        else if (consume(TokenKind::KwVolatile))
          Spec.Base = Spec.Base.withQuals(QualVolatile);
        else if (consume(TokenKind::KwRestrict))
          Spec.Base = Spec.Base.withQuals(QualRestrict);
        else
          break;
      }
      return Spec;
    }
    default:
      Progress = false;
      break;
    }
  }

  TypeContext &Types = Ctx.Types;
  const Type *Ty = nullptr;
  switch (Base) {
  case None:
    Diags.error(Spec.Loc, "expected type specifier");
    Spec.Valid = false;
    Spec.Base = QualType(Types.intTy(), Quals);
    return Spec;
  case Void:
    Ty = Types.voidTy();
    break;
  case Bool:
    Ty = Types.boolTy();
    break;
  case Char:
    Ty = Signedness == 0   ? Types.charTy()
         : Signedness == 1 ? Types.ucharTy()
                           : Types.scharTy();
    break;
  case Int:
    if (SawShort)
      Ty = Signedness == 1 ? Types.ushortTy() : Types.shortTy();
    else if (LongCount >= 2)
      Ty = Signedness == 1 ? Types.ulongLongTy() : Types.longLongTy();
    else if (LongCount == 1)
      Ty = Signedness == 1 ? Types.ulongTy() : Types.longTy();
    else
      Ty = Signedness == 1 ? Types.uintTy() : Types.intTy();
    break;
  case Float:
    Ty = Types.floatTy();
    break;
  case Double:
    Ty = Types.doubleTy(); // "long double" treated as double
    break;
  case Tagged:
    Ty = TaggedTy;
    break;
  }
  Spec.Base = QualType(Ty, Quals);
  Spec.Valid = Ty != nullptr;
  return Spec;
}

const Type *Parser::parseRecordSpecifier(bool IsUnion) {
  SourceLoc Loc = loc();
  Symbol Tag = NoSymbol;
  if (at(TokenKind::Identifier))
    Tag = take().Sym;

  Type *RecordTy = nullptr;
  if (Tag != NoSymbol) {
    if (Type *Existing = lookupTag(Tag)) {
      bool KindMatches = Existing->isRecord() &&
                         (Existing->Kind == TypeKind::Union) == IsUnion;
      if (!KindMatches)
        Diags.error(Loc, "tag redeclared as a different kind of type");
      else
        RecordTy = Existing;
    }
  }
  bool DefinedHere = at(TokenKind::LBrace);
  if (!RecordTy || (DefinedHere && RecordTy->Record->Complete)) {
    RecordTy = Ctx.Types.createRecord(IsUnion, Tag);
    if (Tag != NoSymbol)
      Scopes.back().Tags[Tag] = RecordTy;
  }
  if (!DefinedHere)
    return RecordTy;

  take(); // {
  std::vector<FieldInfo> Fields;
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
    DeclSpec Spec = parseDeclSpecifiers();
    if (!Spec.Valid) {
      synchronize();
      continue;
    }
    do {
      Declarator D = parseDeclarator(Spec.Base, /*AllowAbstract=*/false);
      if (D.Name == NoSymbol) {
        Diags.error(D.Loc, "expected member name");
        break;
      }
      if (!D.Ty.Ty->isCompleteObjectType())
        Diags.error(D.Loc, "member has incomplete type");
      FieldInfo Field;
      Field.Name = D.Name;
      Field.Ty = D.Ty;
      Fields.push_back(Field);
    } while (consume(TokenKind::Comma));
    expect(TokenKind::Semi, "member declaration");
  }
  expect(TokenKind::RBrace, "struct/union body");
  Ctx.Types.completeRecord(RecordTy, std::move(Fields));
  return RecordTy;
}

const Type *Parser::parseEnumSpecifier() {
  SourceLoc Loc = loc();
  Symbol Tag = NoSymbol;
  if (at(TokenKind::Identifier))
    Tag = take().Sym;

  Type *EnumTy = nullptr;
  if (Tag != NoSymbol) {
    if (Type *Existing = lookupTag(Tag)) {
      if (!Existing->isEnum())
        Diags.error(Loc, "tag redeclared as a different kind of type");
      else
        EnumTy = Existing;
    }
  }
  if (!EnumTy) {
    EnumTy = Ctx.Types.createEnum(Tag);
    if (Tag != NoSymbol)
      Scopes.back().Tags[Tag] = EnumTy;
  }
  if (!at(TokenKind::LBrace))
    return EnumTy;

  take(); // {
  int64_t NextValue = 0;
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
    if (!at(TokenKind::Identifier)) {
      Diags.error(loc(), "expected enumerator name");
      synchronize();
      break;
    }
    Token Name = take();
    int64_t Value = NextValue;
    if (consume(TokenKind::Equal))
      Value = parseConstIntExpr("enumerator value", NextValue);
    Scopes.back().EnumConsts[Name.Sym] = Value;
    NextValue = Value + 1;
    if (!consume(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RBrace, "enum body");
  EnumTy->Enum->Complete = true;
  return EnumTy;
}

int64_t Parser::parseConstIntExpr(const char *Context, int64_t Default) {
  SourceLoc Loc = loc();
  Expr *E = parseCond();
  auto Value = constEvalInt(E, Ctx.Types);
  if (!Value) {
    Diags.error(Loc, strFormat("expected integer constant expression in %s",
                               Context));
    return Default;
  }
  return *Value;
}

namespace {
/// One parsed declarator suffix: either an array extent or a function
/// parameter list.
struct DeclSuffix {
  bool IsFunction = false;
  // Array.
  uint64_t ArraySize = 0;
  bool ArraySizeKnown = false;
  // Function.
  std::vector<QualType> ParamTypes;
  std::vector<cundef::VarDecl *> Params;
  bool Variadic = false;
  bool NoProto = false;
};
} // namespace

Parser::Declarator Parser::parseDeclarator(QualType Base,
                                           bool AllowAbstract) {
  Declarator Result;
  Result.Loc = loc();

  // Pointer prefix: each '*' (with optional qualifiers) wraps the base.
  QualType Ty = Base;
  while (at(TokenKind::Star)) {
    take();
    uint8_t Quals = QualNone;
    while (true) {
      if (consume(TokenKind::KwConst))
        Quals |= QualConst;
      else if (consume(TokenKind::KwVolatile))
        Quals |= QualVolatile;
      else if (consume(TokenKind::KwRestrict))
        Quals |= QualRestrict;
      else
        break;
    }
    Ty = QualType(Ctx.Types.getPointer(Ty), Quals);
  }

  // Direct declarator: name, parenthesized declarator, or omitted
  // (abstract). A '(' is a nested declarator only if it cannot start a
  // parameter list.
  size_t NestedStart = 0;
  bool HasNested = false;
  if (at(TokenKind::LParen) &&
      !(startsTypeName(peek(1)) || peek(1).is(TokenKind::RParen))) {
    // Defer: remember position, skip balanced parens, parse suffixes,
    // then re-parse the nested declarator with the composed base type.
    HasNested = true;
    NestedStart = Pos;
    int Depth = 0;
    while (!at(TokenKind::Eof)) {
      if (at(TokenKind::LParen))
        ++Depth;
      else if (at(TokenKind::RParen)) {
        --Depth;
        if (Depth == 0) {
          take();
          break;
        }
      }
      take();
    }
  } else if (at(TokenKind::Identifier)) {
    Result.Name = take().Sym;
  } else if (!AllowAbstract) {
    Diags.error(loc(), "expected declarator name");
  }

  // Suffixes (left to right in source; applied right to left to type).
  std::vector<DeclSuffix> Suffixes;
  while (at(TokenKind::LBracket) || at(TokenKind::LParen)) {
    DeclSuffix Suffix;
    if (consume(TokenKind::LBracket)) {
      if (at(TokenKind::RBracket)) {
        Suffix.ArraySizeKnown = false;
      } else {
        int64_t Size = parseConstIntExpr("array size", 1);
        // Zero or negative array sizes are constraint violations the
        // static checker reports (paper section 3.2 uses exactly this
        // example); the type is recorded as written so the checker can
        // see it.
        Suffix.ArraySize = static_cast<uint64_t>(Size);
        Suffix.ArraySizeKnown = true;
      }
      expect(TokenKind::RBracket, "array declarator");
    } else {
      take(); // (
      Suffix.IsFunction = true;
      if (at(TokenKind::RParen)) {
        Suffix.NoProto = true; // f() — unspecified parameters
      } else if (at(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen)) {
        take(); // void — prototype with no parameters
      } else {
        while (true) {
          if (consume(TokenKind::Ellipsis)) {
            Suffix.Variadic = true;
            break;
          }
          DeclSpec ParamSpec = parseDeclSpecifiers();
          if (!ParamSpec.Valid) {
            synchronize();
            break;
          }
          Declarator ParamD =
              parseDeclarator(ParamSpec.Base, /*AllowAbstract=*/true);
          // Parameter type adjustment (C11 6.7.6.3p7-8).
          QualType PTy = ParamD.Ty;
          if (PTy.Ty->isArray())
            PTy = QualType(Ctx.Types.getPointer(PTy.Ty->Pointee));
          else if (PTy.Ty->isFunction())
            PTy = QualType(Ctx.Types.getPointer(PTy));
          Suffix.ParamTypes.push_back(PTy);
          VarDecl *Param = Ctx.create<VarDecl>();
          Param->Name = ParamD.Name;
          Param->Ty = PTy;
          Param->IsParam = true;
          Param->Loc = ParamD.Loc;
          Param->DeclId = Ctx.NextDeclId++;
          Suffix.Params.push_back(Param);
          if (!consume(TokenKind::Comma))
            break;
        }
      }
      expect(TokenKind::RParen, "parameter list");
    }
    Suffixes.push_back(std::move(Suffix));
  }

  // The declarator is function-form when a name is directly followed by
  // a parameter list (candidate for a function definition).
  if (!HasNested && Result.Name != NoSymbol && !Suffixes.empty() &&
      Suffixes.front().IsFunction) {
    Result.IsFunctionForm = true;
    Result.Params = Suffixes.front().Params;
  }

  // Apply suffixes right-to-left around the pointered base.
  for (size_t I = Suffixes.size(); I-- > 0;) {
    DeclSuffix &Suffix = Suffixes[I];
    if (Suffix.IsFunction) {
      Ty = QualType(Ctx.Types.getFunction(Ty, std::move(Suffix.ParamTypes),
                                          Suffix.Variadic, Suffix.NoProto));
    } else {
      Ty = QualType(
          Ctx.Types.getArray(Ty, Suffix.ArraySize, Suffix.ArraySizeKnown),
          Ty.Quals);
    }
  }

  if (HasNested) {
    // Re-parse the nested declarator against the composed type.
    size_t SavedPos = Pos;
    Pos = NestedStart;
    take(); // (
    Declarator Nested = parseDeclarator(Ty, AllowAbstract);
    expect(TokenKind::RParen, "parenthesized declarator");
    Pos = SavedPos;
    Result.Name = Nested.Name;
    Result.Ty = Nested.Ty;
    if (Nested.IsFunctionForm && Result.Params.empty()) {
      Result.IsFunctionForm = true;
      Result.Params = Nested.Params;
    }
    return Result;
  }

  Result.Ty = Ty;
  return Result;
}

QualType Parser::parseTypeName() {
  DeclSpec Spec = parseDeclSpecifiers();
  Declarator D = parseDeclarator(Spec.Base, /*AllowAbstract=*/true);
  if (D.Name != NoSymbol)
    Diags.error(D.Loc, "type name must not declare an identifier");
  return D.Ty;
}

Expr *Parser::parseInitializer() {
  if (!at(TokenKind::LBrace))
    return parseAssign();
  SourceLoc Loc = take().Loc; // {
  std::vector<Expr *> Inits;
  if (!at(TokenKind::RBrace)) {
    do {
      if (at(TokenKind::RBrace))
        break; // trailing comma
      Inits.push_back(parseInitializer());
    } while (consume(TokenKind::Comma));
  }
  expect(TokenKind::RBrace, "initializer list");
  return Ctx.create<InitListExpr>(Loc, std::move(Inits));
}

void Parser::parseExternalDeclaration() {
  if (consume(TokenKind::Semi))
    return; // stray semicolon at file scope
  DeclSpec Spec = parseDeclSpecifiers();
  if (!Spec.Valid) {
    synchronize();
    return;
  }
  // Tag-only declaration: "struct S { ... };"
  if (at(TokenKind::Semi)) {
    take();
    return;
  }

  bool First = true;
  do {
    Declarator D = parseDeclarator(Spec.Base, /*AllowAbstract=*/false);
    if (D.Name == NoSymbol) {
      synchronize();
      return;
    }
    if (Spec.IsTypedef) {
      Scopes.back().Typedefs[D.Name] = D.Ty;
      First = false;
      continue;
    }
    if (D.Ty.Ty->isFunction()) {
      // Function declaration or definition.
      FunctionDecl *&Fn = Functions[D.Name];
      if (!Fn) {
        Fn = Ctx.create<FunctionDecl>();
        Fn->Name = D.Name;
        Fn->FnTy = D.Ty.Ty;
        Fn->Loc = D.Loc;
        Ctx.TU.Functions.push_back(Fn);
      }
      Fn->AllDeclTypes.push_back(D.Ty.Ty);
      Fn->DeclQuals |= D.Ty.Quals;
      if (First && at(TokenKind::LBrace)) {
        if (Fn->Body)
          Diags.error(D.Loc, "function redefined");
        Fn->FnTy = D.Ty.Ty; // definition's signature wins
        Fn->Params = D.Params;
        pushScope();
        for (VarDecl *Param : Fn->Params)
          if (Param->Name != NoSymbol)
            Scopes.back().Vars[Param->Name] = Param;
        Fn->Body = parseCompound();
        popScope();
        return;
      }
      First = false;
      continue;
    }
    // Global variable.
    VarDecl *Var = Ctx.create<VarDecl>();
    Var->Name = D.Name;
    Var->Ty = D.Ty;
    Var->Storage = Spec.Storage;
    Var->IsGlobal = true;
    Var->Loc = D.Loc;
    Var->DeclId = Ctx.NextDeclId++;
    // The name is in scope within its own initializer (C11 6.2.1p7).
    Scopes.back().Vars[D.Name] = Var;
    if (consume(TokenKind::Equal))
      Var->Init = parseInitializer();
    Ctx.TU.Globals.push_back(Var);
    First = false;
  } while (consume(TokenKind::Comma));
  expect(TokenKind::Semi, "declaration");
}

Stmt *Parser::parseLocalDeclaration() {
  SourceLoc Loc = loc();
  DeclSpec Spec = parseDeclSpecifiers();
  if (!Spec.Valid) {
    synchronize();
    return Ctx.create<ExprStmt>(Loc, nullptr);
  }
  std::vector<VarDecl *> Decls;
  if (!at(TokenKind::Semi)) {
    do {
      Declarator D = parseDeclarator(Spec.Base, /*AllowAbstract=*/false);
      if (D.Name == NoSymbol) {
        synchronize();
        break;
      }
      if (Spec.IsTypedef) {
        Scopes.back().Typedefs[D.Name] = D.Ty;
        continue;
      }
      if (D.Ty.Ty->isFunction()) {
        // Local function declaration ("extern" implied).
        FunctionDecl *&Fn = Functions[D.Name];
        if (!Fn) {
          Fn = Ctx.create<FunctionDecl>();
          Fn->Name = D.Name;
          Fn->FnTy = D.Ty.Ty;
          Fn->Loc = D.Loc;
          Ctx.TU.Functions.push_back(Fn);
        }
        Fn->AllDeclTypes.push_back(D.Ty.Ty);
        Fn->DeclQuals |= D.Ty.Quals;
        continue;
      }
      VarDecl *Var = Ctx.create<VarDecl>();
      Var->Name = D.Name;
      Var->Ty = D.Ty;
      Var->Storage = Spec.Storage;
      Var->Loc = D.Loc;
      Var->DeclId = Ctx.NextDeclId++;
      // The name is in scope within its own initializer (C11 6.2.1p7).
      Scopes.back().Vars[D.Name] = Var;
      if (consume(TokenKind::Equal))
        Var->Init = parseInitializer();
      Decls.push_back(Var);
    } while (consume(TokenKind::Comma));
  }
  expect(TokenKind::Semi, "declaration");
  return Ctx.create<DeclStmt>(Loc, std::move(Decls));
}
