//===- parse/ParseExpr.cpp - Expression parsing ----------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"

#include "support/Strings.h"
#include "text/Numbers.h"

using namespace cundef;

IntLitExpr *Parser::makeIntLit(SourceLoc Loc, uint64_t Value,
                               const Type *Ty) {
  IntLitExpr *E = Ctx.create<IntLitExpr>(Loc, Value);
  E->Ty = QualType(Ty);
  return E;
}

Expr *Parser::parseExpr() {
  Expr *Lhs = parseAssign();
  while (at(TokenKind::Comma)) {
    SourceLoc Loc = take().Loc;
    Expr *Rhs = parseAssign();
    Lhs = Ctx.create<BinaryExpr>(Loc, BinaryOp::Comma, Lhs, Rhs);
  }
  return Lhs;
}

Expr *Parser::parseAssign() {
  Expr *Lhs = parseCond();
  AssignOp Op;
  switch (peek().Kind) {
  case TokenKind::Equal:               Op = AssignOp::Assign; break;
  case TokenKind::StarEqual:           Op = AssignOp::MulAssign; break;
  case TokenKind::SlashEqual:          Op = AssignOp::DivAssign; break;
  case TokenKind::PercentEqual:        Op = AssignOp::RemAssign; break;
  case TokenKind::PlusEqual:           Op = AssignOp::AddAssign; break;
  case TokenKind::MinusEqual:          Op = AssignOp::SubAssign; break;
  case TokenKind::LessLessEqual:       Op = AssignOp::ShlAssign; break;
  case TokenKind::GreaterGreaterEqual: Op = AssignOp::ShrAssign; break;
  case TokenKind::AmpEqual:            Op = AssignOp::AndAssign; break;
  case TokenKind::CaretEqual:          Op = AssignOp::XorAssign; break;
  case TokenKind::PipeEqual:           Op = AssignOp::OrAssign; break;
  default:
    return Lhs;
  }
  SourceLoc Loc = take().Loc;
  Expr *Rhs = parseAssign(); // right-associative
  return Ctx.create<AssignExpr>(Loc, Op, Lhs, Rhs);
}

Expr *Parser::parseCond() {
  Expr *Cond = parseBinary(0);
  if (!at(TokenKind::Question))
    return Cond;
  SourceLoc Loc = take().Loc;
  Expr *Then = parseExpr();
  expect(TokenKind::Colon, "conditional expression");
  Expr *Else = parseCond();
  return Ctx.create<CondExpr>(Loc, Cond, Then, Else);
}

namespace {
struct BinOpInfo {
  BinaryOp Op;
  int Prec;
};
} // namespace

static bool binOpInfoFor(TokenKind Kind, BinOpInfo &Info) {
  switch (Kind) {
  case TokenKind::PipePipe:       Info = {BinaryOp::LogOr, 1}; return true;
  case TokenKind::AmpAmp:         Info = {BinaryOp::LogAnd, 2}; return true;
  case TokenKind::Pipe:           Info = {BinaryOp::BitOr, 3}; return true;
  case TokenKind::Caret:          Info = {BinaryOp::BitXor, 4}; return true;
  case TokenKind::Amp:            Info = {BinaryOp::BitAnd, 5}; return true;
  case TokenKind::EqualEqual:     Info = {BinaryOp::Eq, 6}; return true;
  case TokenKind::BangEqual:      Info = {BinaryOp::Ne, 6}; return true;
  case TokenKind::Less:           Info = {BinaryOp::Lt, 7}; return true;
  case TokenKind::Greater:        Info = {BinaryOp::Gt, 7}; return true;
  case TokenKind::LessEqual:      Info = {BinaryOp::Le, 7}; return true;
  case TokenKind::GreaterEqual:   Info = {BinaryOp::Ge, 7}; return true;
  case TokenKind::LessLess:       Info = {BinaryOp::Shl, 8}; return true;
  case TokenKind::GreaterGreater: Info = {BinaryOp::Shr, 8}; return true;
  case TokenKind::Plus:           Info = {BinaryOp::Add, 9}; return true;
  case TokenKind::Minus:          Info = {BinaryOp::Sub, 9}; return true;
  case TokenKind::Star:           Info = {BinaryOp::Mul, 10}; return true;
  case TokenKind::Slash:          Info = {BinaryOp::Div, 10}; return true;
  case TokenKind::Percent:        Info = {BinaryOp::Rem, 10}; return true;
  default:
    return false;
  }
}

Expr *Parser::parseBinary(int MinPrec) {
  Expr *Lhs = parseCastExpr();
  while (true) {
    BinOpInfo Info;
    if (!binOpInfoFor(peek().Kind, Info) || Info.Prec < MinPrec)
      return Lhs;
    SourceLoc Loc = take().Loc;
    Expr *Rhs = parseBinary(Info.Prec + 1);
    Lhs = Ctx.create<BinaryExpr>(Loc, Info.Op, Lhs, Rhs);
  }
}

Expr *Parser::parseCastExpr() {
  // "( type-name )" followed by a cast-expression.
  if (at(TokenKind::LParen) && startsTypeName(peek(1))) {
    SourceLoc Loc = take().Loc; // (
    QualType Ty = parseTypeName();
    expect(TokenKind::RParen, "cast");
    Expr *Sub = parseCastExpr();
    return Ctx.create<CastExpr>(Loc, Ty, Sub);
  }
  return parseUnary();
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = loc();
  switch (peek().Kind) {
  case TokenKind::PlusPlus: {
    take();
    Expr *Sub = parseUnary();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::PreInc, Sub);
  }
  case TokenKind::MinusMinus: {
    take();
    Expr *Sub = parseUnary();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::PreDec, Sub);
  }
  case TokenKind::Amp: {
    take();
    Expr *Sub = parseCastExpr();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::AddrOf, Sub);
  }
  case TokenKind::Star: {
    take();
    Expr *Sub = parseCastExpr();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Deref, Sub);
  }
  case TokenKind::Plus: {
    take();
    Expr *Sub = parseCastExpr();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Plus, Sub);
  }
  case TokenKind::Minus: {
    take();
    Expr *Sub = parseCastExpr();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Minus, Sub);
  }
  case TokenKind::Tilde: {
    take();
    Expr *Sub = parseCastExpr();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::BitNot, Sub);
  }
  case TokenKind::Bang: {
    take();
    Expr *Sub = parseCastExpr();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::LogNot, Sub);
  }
  case TokenKind::KwSizeof: {
    take();
    if (at(TokenKind::LParen) && startsTypeName(peek(1))) {
      take(); // (
      QualType Ty = parseTypeName();
      expect(TokenKind::RParen, "sizeof");
      return Ctx.create<SizeofExpr>(Loc, Ty);
    }
    Expr *Sub = parseUnary();
    return Ctx.create<SizeofExpr>(Loc, Sub);
  }
  default:
    return parsePostfix();
  }
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  while (true) {
    SourceLoc Loc = loc();
    switch (peek().Kind) {
    case TokenKind::LBracket: {
      take();
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "array subscript");
      E = Ctx.create<IndexExpr>(Loc, E, Index);
      break;
    }
    case TokenKind::LParen: {
      take();
      std::vector<Expr *> Args;
      if (!at(TokenKind::RParen)) {
        do {
          Args.push_back(parseAssign());
        } while (consume(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "function call");
      E = Ctx.create<CallExpr>(Loc, E, std::move(Args));
      break;
    }
    case TokenKind::Period: {
      take();
      if (!at(TokenKind::Identifier)) {
        Diags.error(loc(), "expected member name after '.'");
        return E;
      }
      Symbol Member = take().Sym;
      E = Ctx.create<MemberExpr>(Loc, E, Member, /*IsArrow=*/false);
      break;
    }
    case TokenKind::Arrow: {
      take();
      if (!at(TokenKind::Identifier)) {
        Diags.error(loc(), "expected member name after '->'");
        return E;
      }
      Symbol Member = take().Sym;
      E = Ctx.create<MemberExpr>(Loc, E, Member, /*IsArrow=*/true);
      break;
    }
    case TokenKind::PlusPlus:
      take();
      E = Ctx.create<UnaryExpr>(Loc, UnaryOp::PostInc, E);
      break;
    case TokenKind::MinusMinus:
      take();
      E = Ctx.create<UnaryExpr>(Loc, UnaryOp::PostDec, E);
      break;
    default:
      return E;
    }
  }
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = loc();
  switch (peek().Kind) {
  case TokenKind::IntLiteral: {
    Token Tok = take();
    DecodedInt D = decodeIntLiteral(Tok.Text);
    if (!D.Valid || D.Overflowed)
      Diags.error(Loc, strFormat("invalid integer constant '%s'",
                                 Tok.Text.c_str()));
    // Type per C11 6.4.4.1p5: smallest fitting type from the list
    // determined by suffix and radix.
    const TypeContext &Types = Ctx.Types;
    bool AllowUnsigned = D.Unsigned || D.Radix != 10;
    const Type *Candidates[6];
    size_t N = 0;
    if (!D.Unsigned && D.LongCount == 0)
      Candidates[N++] = Types.intTy();
    if (AllowUnsigned && D.LongCount == 0)
      Candidates[N++] = Types.uintTy();
    if (!D.Unsigned && D.LongCount <= 1)
      Candidates[N++] = Types.longTy();
    if (AllowUnsigned && D.LongCount <= 1)
      Candidates[N++] = Types.ulongTy();
    if (!D.Unsigned)
      Candidates[N++] = Types.longLongTy();
    Candidates[N++] = Types.ulongLongTy();
    const Type *Ty = Candidates[N - 1];
    for (size_t I = 0; I < N; ++I) {
      const Type *Candidate = Candidates[I];
      if (Candidate->isUnsignedInteger(Types.config())
              ? D.Value <= Types.maxValueOf(Candidate)
              : D.Value <= static_cast<uint64_t>(
                               Types.maxValueOf(Candidate))) {
        Ty = Candidate;
        break;
      }
    }
    return makeIntLit(Loc, D.Value, Ty);
  }
  case TokenKind::CharLiteral: {
    Token Tok = take();
    DecodedInt D = decodeIntLiteral(Tok.Text);
    // Character constants have type int (C11 6.4.4.4p10).
    return makeIntLit(Loc, D.Value, Ctx.Types.intTy());
  }
  case TokenKind::FloatLiteral: {
    Token Tok = take();
    DecodedFloat D = decodeFloatLiteral(Tok.Text);
    if (!D.Valid)
      Diags.error(Loc, strFormat("invalid floating constant '%s'",
                                 Tok.Text.c_str()));
    FloatLitExpr *E = Ctx.create<FloatLitExpr>(Loc, D.Value);
    E->Ty = QualType(D.IsFloat ? Ctx.Types.floatTy() : Ctx.Types.doubleTy());
    return E;
  }
  case TokenKind::StringLiteral: {
    Token Tok = take();
    std::string Bytes = Tok.Text;
    // Adjacent string literals concatenate (C11 6.4.5p5).
    while (at(TokenKind::StringLiteral))
      Bytes += take().Text;
    StringLitExpr *E = Ctx.create<StringLitExpr>(Loc, std::move(Bytes));
    // Type: char[N+1] (the array-ness matters for sizeof and decay).
    E->Ty = QualType(Ctx.Types.getArray(QualType(Ctx.Types.charTy()),
                                        E->Bytes.size() + 1,
                                        /*SizeKnown=*/true));
    E->Cat = ValueCat::LValue;
    return E;
  }
  case TokenKind::Identifier: {
    Token Tok = take();
    if (const int64_t *EnumVal = lookupEnumConst(Tok.Sym))
      return makeIntLit(Loc, static_cast<uint64_t>(*EnumVal),
                        Ctx.Types.intTy());
    DeclRefExpr *Ref = Ctx.create<DeclRefExpr>(Loc, Tok.Sym);
    if (VarDecl *Var = lookupVar(Tok.Sym)) {
      Ref->Var = Var;
    } else if (auto It = Functions.find(Tok.Sym); It != Functions.end()) {
      Ref->Fn = It->second;
    } else {
      Diags.error(Loc, strFormat("use of undeclared identifier '%s'",
                                 Ctx.Interner.str(Tok.Sym).c_str()));
    }
    return Ref;
  }
  case TokenKind::LParen: {
    take();
    Expr *E = parseExpr();
    expect(TokenKind::RParen, "parenthesized expression");
    return E;
  }
  default:
    Diags.error(Loc, strFormat("expected expression, found %s",
                               tokenKindName(peek().Kind)));
    take();
    return makeIntLit(Loc, 0, Ctx.Types.intTy());
  }
}
