//===- suites/TestCase.h - Benchmark test cases ------------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common shape of benchmark tests. Following the paper (section
/// 5.2.2), every undefined test comes with a corresponding *defined*
/// control: "this control test makes it possible to identify
/// false-positives in addition to false-negatives. Without such tests,
/// a tool could simply say all programs were undefined and receive full
/// marks."
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SUITES_TESTCASE_H
#define CUNDEF_SUITES_TESTCASE_H

#include "ub/UbKind.h"

#include <string>
#include <vector>

namespace cundef {

/// One undefined-program test with its defined control.
struct TestCase {
  std::string Name;
  std::string Bad;  ///< the undefined program
  std::string Good; ///< the corresponding defined program
  /// Juliet class (Figure 2 benchmarks) -- meaningful when FromJuliet.
  JulietClass Class = JulietClass::InvalidPointer;
  bool FromJuliet = false;
  /// Catalog behavior id (Figure 3 benchmarks; 0 for Juliet tests).
  uint16_t CatalogId = 0;
  /// Whether the behavior is statically detectable (Figure 3 columns).
  bool StaticBehavior = false;
};

} // namespace cundef

#endif // CUNDEF_SUITES_TESTCASE_H
