//===- suites/SuiteRunner.h - Scoring tools on suites ------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scores analysis tools on the two benchmarks and renders the paper's
/// Figure 2 (Juliet classes x tools) and Figure 3 (static/dynamic
/// detection on the custom suite) tables. Scoring follows the paper:
/// a test pair passes when the undefined program is flagged and its
/// defined control is not; Figure 3 averages *across behaviors*, "no
/// behavior weighted more than another".
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SUITES_SUITERUNNER_H
#define CUNDEF_SUITES_SUITERUNNER_H

#include "analysis/Tool.h"
#include "suites/TestCase.h"

#include <map>
#include <string>
#include <vector>

namespace cundef {

/// Figure 2: one tool's results on one Juliet class.
struct ClassScore {
  JulietClass Class = JulietClass::InvalidPointer;
  unsigned Tests = 0;
  unsigned Passed = 0;
  unsigned FalsePositives = 0;

  double percent() const { return Tests ? 100.0 * Passed / Tests : 0.0; }
};

struct JulietScores {
  std::vector<ClassScore> PerClass;
  double MeanMicrosPerTest = 0.0;
};

JulietScores scoreJuliet(Tool &T, const std::vector<TestCase> &Tests);

/// Figure 3: one tool's per-behavior results on the custom suite.
struct BehaviorScore {
  uint16_t CatalogId = 0;
  bool Static = false;
  unsigned Tests = 0;
  unsigned Passed = 0;
};

struct CustomScores {
  std::vector<BehaviorScore> PerBehavior;
  /// Percent of behaviors detected, averaged per behavior.
  double StaticPct = 0.0;
  double DynamicPct = 0.0;
};

CustomScores scoreCustom(Tool &T, const std::vector<TestCase> &Tests);

/// Batched kcc scoring: every half of every pair is submitted to ONE
/// shared engine worker pool (runKccBatched), so the pool stays busy
/// across the whole suite instead of draining per test. Scores are
/// identical to running a kcc Tool with the same AnalysisRequest
/// through scoreJuliet/scoreCustom; only wall-clock attribution
/// differs (per-test Micros is submit-to-completion time on the shared
/// pool, so concurrent tests' times overlap).
JulietScores scoreJulietBatched(const AnalysisRequest &Req,
                                const std::vector<TestCase> &Tests);
CustomScores scoreCustomBatched(const AnalysisRequest &Req,
                                const std::vector<TestCase> &Tests);

/// Renders the Figure 2 table for several tools.
std::string
renderFigure2(const std::vector<std::pair<std::string, JulietScores>> &Rows);

/// Renders the Figure 3 table.
std::string
renderFigure3(const std::vector<std::pair<std::string, CustomScores>> &Rows);

} // namespace cundef

#endif // CUNDEF_SUITES_SUITERUNNER_H
