//===- suites/SuiteRunner.h - Scoring tools on suites ------------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scores analysis tools on the two benchmarks and renders the paper's
/// Figure 2 (Juliet classes x tools) and Figure 3 (static/dynamic
/// detection on the custom suite) tables. Scoring follows the paper:
/// a test pair passes when the undefined program is flagged and its
/// defined control is not; Figure 3 averages *across behaviors*, "no
/// behavior weighted more than another".
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SUITES_SUITERUNNER_H
#define CUNDEF_SUITES_SUITERUNNER_H

#include "analysis/Tool.h"
#include "suites/DesktopSuite.h"
#include "suites/TestCase.h"

#include <map>
#include <string>
#include <vector>

namespace cundef {

/// Figure 2: one tool's results on one Juliet class.
struct ClassScore {
  JulietClass Class = JulietClass::InvalidPointer;
  unsigned Tests = 0;
  unsigned Passed = 0;
  unsigned FalsePositives = 0;

  double percent() const { return Tests ? 100.0 * Passed / Tests : 0.0; }
};

struct JulietScores {
  std::vector<ClassScore> PerClass;
  double MeanMicrosPerTest = 0.0;
};

JulietScores scoreJuliet(Tool &T, const std::vector<TestCase> &Tests);

/// Figure 3: one tool's per-behavior results on the custom suite.
struct BehaviorScore {
  uint16_t CatalogId = 0;
  bool Static = false;
  unsigned Tests = 0;
  unsigned Passed = 0;
};

struct CustomScores {
  std::vector<BehaviorScore> PerBehavior;
  /// Percent of behaviors detected, averaged per behavior.
  double StaticPct = 0.0;
  double DynamicPct = 0.0;
};

CustomScores scoreCustom(Tool &T, const std::vector<TestCase> &Tests);

/// Batched kcc scoring: every half of every pair is submitted to ONE
/// shared engine worker pool (runKccBatched), so the pool stays busy
/// across the whole suite instead of draining per test. Scores are
/// identical to running a kcc Tool with the same AnalysisRequest
/// through scoreJuliet/scoreCustom; only wall-clock attribution
/// differs (per-test Micros is submit-to-completion time on the shared
/// pool, so concurrent tests' times overlap).
JulietScores scoreJulietBatched(const AnalysisRequest &Req,
                                const std::vector<TestCase> &Tests);
CustomScores scoreCustomBatched(const AnalysisRequest &Req,
                                const std::vector<TestCase> &Tests);

/// One desktop case's scored outcome against its manifest expectation.
struct DesktopCaseScore {
  std::string Name;
  bool ExpectFlagged = true;
  uint16_t ExpectedCode = 0;
  bool FlaggedBad = false;
  bool FlaggedGood = false; ///< always a failure: the control is defined
  /// The bad half was flagged by the static layer alone — the finding
  /// carries StaticFinding, so no execution was needed to prove it.
  bool StaticCaught = false;
  /// First code reported on the bad half (0 when clean).
  uint16_t ReportedCode = 0;
  double Micros = 0.0;

  /// The case meets its contract: the bad half's verdict matches the
  /// manifest (including the expected code, when flagged) and the good
  /// half is clean.
  bool asExpected() const {
    return !FlaggedGood && FlaggedBad == ExpectFlagged &&
           (!ExpectFlagged || ReportedCode == ExpectedCode);
  }
};

/// The whole desktop suite, scored. AsExpected == PerCase.size() is the
/// suite's green state; the partitions below explain any shortfall.
struct DesktopScores {
  std::vector<DesktopCaseScore> PerCase;
  unsigned AsExpected = 0;
  unsigned Detected = 0;      ///< bad halves flagged (any code)
  unsigned StaticDetected = 0;///< bad halves static analysis alone catches
  unsigned WrongCode = 0;     ///< flagged as expected but wrong code
  unsigned MissedExpected = 0;///< 'flag' cases that came back clean
  unsigned KnownMisses = 0;   ///< 'miss' cases that stayed missed
  unsigned FalsePositives = 0;///< flagged good halves
  double WallMs = 0.0;
};

/// Scores the desktop suite batched through one shared engine worker
/// pool, exactly like scoreJulietBatched/scoreCustomBatched. Verdicts
/// and reported codes are deterministic across scheduler kind and
/// worker count (the determinism contract of core/Scheduler.h).
DesktopScores scoreDesktopBatched(const AnalysisRequest &Req,
                                  const std::vector<DesktopCase> &Cases);

/// Renders the per-case desktop table plus a summary line; the final
/// line is the stable machine-greppable summary
/// `desktop: as-expected=N detected=N static=N wrong-code=N missed=N
/// known-miss=N false-pos=N total=N`.
std::string renderDesktopTable(const DesktopScores &S);

/// Renders the Figure 2 table for several tools.
std::string
renderFigure2(const std::vector<std::pair<std::string, JulietScores>> &Rows);

/// Renders the Figure 3 table.
std::string
renderFigure3(const std::vector<std::pair<std::string, CustomScores>> &Rows);

} // namespace cundef

#endif // CUNDEF_SUITES_SUITERUNNER_H
