//===- suites/JulietGen.h - Juliet-like benchmark generator ------*- C++ -*-===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the Juliet-like undefinedness benchmark (paper section
/// 5.1.2). The paper extracted 4113 single-undefined-behavior tests
/// from NIST's Juliet suite in six classes; this generator reproduces
/// the class structure and the exact per-class counts:
///
///   Use of invalid pointer   3193
///   Division by zero           77
///   Bad argument to free()    334
///   Uninitialized memory      422
///   Bad function call          46
///   Integer overflow           41
///
/// Each test is a separate program with a single flaw, paired with a
/// "good" program of the same shape (Juliet's OMITBAD/OMITGOOD pairing),
/// and varied across control-/data-flow wrappers like Juliet's flow
/// variants.
///
//===----------------------------------------------------------------------===//

#ifndef CUNDEF_SUITES_JULIETGEN_H
#define CUNDEF_SUITES_JULIETGEN_H

#include "suites/TestCase.h"

namespace cundef {

class JulietGenerator {
public:
  /// \p ScaleDivisor divides every class count (minimum 1 test per
  /// class); 1 reproduces the paper's totals (4113 tests).
  explicit JulietGenerator(unsigned ScaleDivisor = 1)
      : Divisor(ScaleDivisor ? ScaleDivisor : 1) {}

  /// All tests, grouped by class in a stable order.
  std::vector<TestCase> generate() const;

  /// Tests of one class.
  std::vector<TestCase> generateClass(JulietClass Class) const;

  /// The paper's per-class counts.
  static unsigned paperCount(JulietClass Class);

  unsigned scaledCount(JulietClass Class) const {
    unsigned N = paperCount(Class) / Divisor;
    return N ? N : 1;
  }

private:
  unsigned Divisor;
};

} // namespace cundef

#endif // CUNDEF_SUITES_JULIETGEN_H
