//===- suites/CatalogCoverage.cpp - The UB-catalog coverage harness ----------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//
//
// The generator table. Three sources, in priority order:
//
//  1. Handwritten cases (rows with no suite test): a minimal triggering
//     program plus the codes the behavior legitimately reports under.
//  2. Alias rows (suite-covered rows >= 52, which have no UbKind of
//     their own): the suite's first undefined program plus an explicit
//     alias-code set justified by the C11 clause.
//  3. Suite rows 1-51: the suite's first undefined program, matching
//     exactly code Id.
//
// Inexpressible rows name the missing feature (FILE streams, setjmp,
// scanf, ...) so the note doubles as a to-do list for the libc model.
//
//===----------------------------------------------------------------------===//

#include "suites/CatalogCoverage.h"

#include "driver/Engine.h"
#include "driver/JsonOutput.h"
#include "suites/UndefSuite.h"
#include "support/Strings.h"
#include "ub/Catalog.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>

using namespace cundef;

namespace {

/// A handwritten triggering program (rows the suite does not cover), an
/// alias-code annotation for a suite-covered row (Program == nullptr,
/// Codes non-empty), or an inexpressibility record (Program == nullptr,
/// Codes empty, Note says which modelled feature is missing).
struct RowSpec {
  uint16_t Id;
  const char *Program; ///< null: suite program (alias row) or inexpressible
  std::vector<uint16_t> Codes;
  const char *Note;
};

/// Shorthand for inexpressible rows.
RowSpec none(uint16_t Id, const char *Note) { return {Id, nullptr, {}, Note}; }

/// Shorthand for alias rows: suite program, explicit code set.
RowSpec alias(uint16_t Id, std::vector<uint16_t> Codes, const char *Note) {
  return {Id, nullptr, std::move(Codes), Note};
}

std::vector<RowSpec> buildSpecs() {
  std::vector<RowSpec> R;

  //===--- Rows 1-51: UbKind rows needing a non-suite program ------------===//

  // The suite's subscript/use-after-free programs are flagged earlier
  // (pointer arithmetic, dangling-value use) than the row's own kind;
  // these library-shaped triggers hit exactly the row's code.
  R.push_back({9,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char a[4]; char b[8];\n"
      "  memset(a, 'x', 4);\n"
      "  memcpy(b, a, 8);\n"
      "  return b[0];\n}\n",
      {9}, "strict: row mirrors UbKind 9 (read past the source object)"});
  R.push_back({10,
      "#include <string.h>\n"
      "int main(void) { char b[4]; memset(b, 0, 8); return b[0]; }\n",
      {10}, "strict: row mirrors UbKind 10 (write past the object)"});
  R.push_back({11,
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  int *p = (int*)malloc(sizeof(int));\n"
      "  if (!p) { return 1; }\n"
      "  *p = 5;\n  free(p);\n  return *p;\n}\n",
      {11}, "strict: row mirrors UbKind 11 (read of freed storage)"});
  R.push_back(none(31,
      "the LP64 model defines every integer conversion result (wraps); no "
      "trapping target is modelled, so the behavior cannot be triggered"));
  R.push_back({33,
      "#include <stdlib.h>\n"
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(1200000);\n"
      "  if (!p) { return 1; }\n"
      "  memset(p, 'x', 1200000);\n"
      "  int n = (int)strlen(p);\n"
      "  free(p);\n  return n;\n}\n",
      {33}, "strict: row mirrors UbKind 33 (an endless string walk)"});
  R.push_back({35,
      "static int rec(int n) { return rec(n + 1); }\n"
      "int main(void) { return rec(0); }\n",
      {35}, "strict: row mirrors UbKind 35"});
  R.push_back({37,
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  int x = 0;\n"
      "  char *q = (char*)realloc(&x, 8);\n"
      "  if (q) { free(q); }\n  return x;\n}\n",
      {37}, "strict: row mirrors UbKind 37"});
  R.push_back({38,
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(0);\n"
      "  if (!p) { return 1; }\n"
      "  p[0] = 'x';\n  free(p);\n  return 0;\n}\n",
      {38}, "strict: row mirrors UbKind 38"});
  R.push_back({39,
      "#include <string.h>\n"
      "struct padded { char c; int i; };\n"
      "int main(void) {\n"
      "  struct padded a, b;\n"
      "  memset(&a, 0, sizeof a); memset(&b, 0, sizeof b);\n"
      "  a.c = b.c = 'x'; a.i = b.i = 1;\n"
      "  return memcmp(&a, &b, sizeof a) != 0;\n}\n",
      {39}, "strict: row mirrors UbKind 39"});

  //===--- Rows 52-69: further core dynamic (suite-covered get aliases) --===//

  R.push_back(alias(52, {12},
      "lifetime-ended access is reported as code 12 (6.2.4:2 is the same "
      "clause)"));
  R.push_back(alias(53, {53},
      "strict: the evaluator reports this row's own catalog code"));
  R.push_back(alias(54, {19, 30},
      "trap representations surface as indeterminate-value reads"));
  R.push_back(alias(55, {19},
      "the trap-producing store is caught when the stored indeterminate "
      "value is read"));
  R.push_back({56,
      "int main(void) {\n"
      "  double d = 1e300;\n"
      "  float f = (float)d;\n"
      "  return f > 0.0f;\n}\n",
      {26}, "float demotion overflow would report under the float-"
            "conversion code"});
  R.push_back(alias(57, {50, 19},
      "an incomplete-type lvalue is caught statically (50) or as an "
      "indeterminate read"));
  R.push_back(alias(58, {19},
      "register-eligible uninitialized use is an indeterminate-value "
      "read"));
  R.push_back({59,
      "int main(void) {\n"
      "  int a[2]; a[0] = 1; a[1] = 2;\n"
      "  int *p = (int*)((char*)a + 1);\n"
      "  return *p;\n}\n",
      {8, 9, 25},
      "a misaligned converted pointer is caught at the dereference under "
      "the invalid-pointer codes"});
  R.push_back(alias(60, {22},
      "incompatible call through a converted pointer is code 22 (6.5.2.2:9)"));
  R.push_back(alias(61, {3, 1},
      "the modelled exceptional conditions are signed overflow and "
      "INT_MIN / -1"));
  R.push_back(alias(62, {8, 11},
      "unary * on an invalid value reports under the dangling/freed "
      "codes"));
  R.push_back(alias(63, {9, 13},
      "subscripting a non-array pointer is an out-of-bounds access "
      "(6.5.6:8)"));
  R.push_back(alias(64, {64},
      "strict: the evaluator reports this row's own catalog code"));
  R.push_back(alias(65, {9, 10, 13},
      "inexactly overlapping assignment reads/writes outside the source "
      "object"));
  R.push_back(none(66,
      "variable length arrays are outside the modelled language subset"));
  R.push_back(alias(67, {22, 23},
      "a call/definition type mismatch reports under the call-mismatch "
      "codes"));
  R.push_back(alias(68, {19},
      "padding bytes are indeterminate; reading one is code 19"));
  R.push_back(none(69,
      "setjmp/longjmp are outside the modelled library subset"));

  //===--- Rows 70-141: library dynamic ----------------------------------===//

  R.push_back({70,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char b[4];\n"
      "  memset(b, 0, 1000000);\n"
      "  return b[0];\n}\n",
      {10, 33}, "an invalid length argument is caught as the resulting "
                "out-of-bounds write"});
  R.push_back({71,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  return (int)strlen((char*)0);\n}\n",
      {33, 6}, "a null object argument reports under the string-argument "
               "or null-dereference codes"});
  R.push_back(alias(72, {72},
      "strict: the evaluator reports this row's own catalog code"));
  R.push_back({73,
      "#include <stdio.h>\n"
      "int main(void) { int x = 1; printf(\"%d\\n\", &x); return 0; }\n",
      {34}, "printf argument/conversion mismatch is the modelled va_arg "
            "mismatch"});
  R.push_back({74,
      "#include <stdio.h>\n"
      "int main(void) { printf(\"%*d\\n\", 1.5, 7); return 0; }\n",
      {34}, "a non-int width argument is a variadic-argument type "
            "mismatch"});
  R.push_back({75,
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(8);\n"
      "  if (!p) { return 1; }\n"
      "  free(p + 4);\n  return 0;\n}\n",
      {20}, "an interior free() argument is an invalid free (code 20)"});
  R.push_back({76,
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(8);\n"
      "  if (!p) { return 1; }\n"
      "  free(p);\n"
      "  char *q = (char*)realloc(p, 16);\n"
      "  if (q) { free(q); }\n  return 0;\n}\n",
      {37}, "realloc of a freed pointer is an invalid realloc argument"});
  R.push_back({77,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char src[4]; char dst[4];\n"
      "  memset(src, 'a', 4);\n"
      "  memcpy(dst, src, 16);\n"
      "  return dst[0];\n}\n",
      {9, 10}, "a too-small memcpy operand is an out-of-bounds access"});
  R.push_back({78,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char dst[4];\n"
      "  memmove(dst, (char*)1234, 4);\n"
      "  return dst[0];\n}\n",
      {8, 9, 33}, "an invalid memmove operand is a forged-pointer access"});
  R.push_back({79,
      "#include <string.h>\n"
      "int main(void) { char dst[4]; strcpy(dst, \"much too long\");"
      " return dst[0]; }\n",
      {10, 33, 29}, "the overflowing store lands one past the destination "
                    "(6.5.6:8)"});
  R.push_back({80,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char src[4]; char dst[64];\n"
      "  src[0] = 'a'; src[1] = 'b'; src[2] = 'c'; src[3] = 'd';\n"
      "  strcpy(dst, src);\n"
      "  return dst[0];\n}\n",
      {33, 9, 29}, "a non-terminated strcpy source reads one past its "
                   "object (6.5.6:8)"});
  R.push_back({81,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char dst[4];\n"
      "  dst[0] = 'a'; dst[1] = 'b'; dst[2] = 'c'; dst[3] = 'd';\n"
      "  strcat(dst, \"ef\");\n"
      "  return dst[0];\n}\n",
      {33, 9, 10, 29}, "a non-terminated strcat destination reads one past "
                       "its object (6.5.6:8)"});
  R.push_back({82,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char a[3]; a[0] = 'x'; a[1] = 'y'; a[2] = 'z';\n"
      "  return strcmp(a, \"xyz\");\n}\n",
      {33, 9, 29}, "a non-terminated strcmp argument reads one past its "
                   "object (6.5.6:8)"});
  R.push_back({83,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char a[2]; a[0] = 'q'; a[1] = 'r';\n"
      "  return strchr(a, 'z') != 0;\n}\n",
      {33, 9, 29}, "a non-terminated strchr argument reads one past its "
                   "object (6.5.6:8)"});
  R.push_back({84,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char a[4]; a[0] = 'a'; a[1] = 'b'; a[2] = 'c'; a[3] = 'd';\n"
      "  return (int)strlen(a);\n}\n",
      {33, 9, 29}, "a non-terminated strlen argument reads one past its "
                   "object (6.5.6:8)"});
  R.push_back({85,
      "#include <stdlib.h>\n"
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(3);\n"
      "  if (!p) { return 1; }\n"
      "  p[0] = 'h'; p[1] = 'i'; p[2] = '!';\n"
      "  int n = (int)strlen(p);\n  free(p);\n  return n;\n}\n",
      {33, 9, 29}, "strlen walking one past the end of a heap object "
                   "(6.5.6:8)"});
  R.push_back(none(86, "FILE streams are outside the modelled library "
                       "subset"));
  R.push_back(none(87, "FILE streams are outside the modelled library "
                       "subset"));
  R.push_back(none(88, "FILE streams are outside the modelled library "
                       "subset"));
  R.push_back(none(89, "the strtol family is outside the modelled library "
                       "subset"));
  R.push_back({90,
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  int m = 0;\n"
      "  return rand() % m;\n}\n",
      {2}, "the zero modulus is caught as remainder by zero"});
  R.push_back(none(91, "getenv is outside the modelled library subset"));
  R.push_back({92,
      "#include <stdlib.h>\n"
      "static int cmp(const void *a, const void *b) {\n"
      "  *(int*)a = 0;\n"
      "  return *(const int*)a - *(const int*)b;\n}\n"
      "int main(void) {\n"
      "  int key = 2;\n"
      "  int arr[3]; arr[0] = 1; arr[1] = 2; arr[2] = 3;\n"
      "  return bsearch(&key, arr, 3, sizeof(int), cmp) != 0;\n}\n",
      {17}, "needs a comparator-purity check; the mutation itself is not "
            "otherwise undefined in the model"});
  R.push_back({93,
      "#include <stdlib.h>\n"
      "static int flip = 0;\n"
      "static int cmp(const void *a, const void *b) {\n"
      "  (void)a; (void)b;\n"
      "  flip = 1 - flip;\n"
      "  return flip ? -1 : 1;\n}\n"
      "int main(void) {\n"
      "  int arr[4]; arr[0] = 3; arr[1] = 1; arr[2] = 2; arr[3] = 0;\n"
      "  qsort(arr, 4, sizeof(int), cmp);\n"
      "  return arr[0];\n}\n",
      {}, "needs a comparator-consistency check; no existing UbKind names "
          "this behavior"});
  R.push_back({94,
      "#include <stdlib.h>\n"
      "static int cmp(const void *a, const void *b) {\n"
      "  return *(const int*)a - *(const int*)b;\n}\n"
      "int main(void) {\n"
      "  int x = 5;\n"
      "  qsort(&x, 3, sizeof(int), cmp);\n"
      "  return x;\n}\n",
      {9, 10, 13, 29}, "sorting past a non-array object is an out-of-"
                       "bounds (one-past) access"});
  R.push_back({95,
      "#include <stdio.h>\n"
      "int main(void) { printf(\"%f\\n\", 7); return 0; }\n",
      {34}, "the modelled va_arg mismatch (printf-style)"});
  R.push_back(none(96, "the modelled va_list is a bare index; va_start/"
                       "va_end carry no state that a second va_start "
                       "could corrupt"));
  R.push_back(none(97, "the modelled va_list is a bare index; va_end "
                       "leaves no invalid state to use"));
  R.push_back({98,
      "#include <stdarg.h>\n"
      "static int second(int n, ...) {\n"
      "  va_list ap;\n"
      "  va_start(ap, n);\n"
      "  int a = va_arg(ap, int);\n"
      "  int b = va_arg(ap, int);\n"
      "  va_end(ap);\n"
      "  return a + b;\n}\n"
      "int main(void) { return second(1, 7) - 7; }\n",
      {98}, "strict: the evaluator reports this row's own catalog code"});
  R.push_back(none(99, "setjmp/longjmp are outside the modelled library "
                       "subset"));
  R.push_back(none(100, "setjmp/longjmp are outside the modelled library "
                        "subset"));
  R.push_back(none(101, "scanf is outside the modelled library subset"));
  R.push_back(none(102, "scanf is outside the modelled library subset"));
  R.push_back({103,
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  unsigned long n = 0xffffffffffffffffUL;\n"
      "  char *p = (char*)malloc(n + 2);\n"
      "  if (!p) { return 1; }\n"
      "  p[1] = 'x';\n  free(p);\n  return 0;\n}\n",
      {10, 29}, "the wrapped size allocates 1 byte; the write at [1] is "
                "one past the object"});
  R.push_back({104,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char b[8] = \"abcdefg\";\n"
      "  strncpy(b + 1, b, 4);\n"
      "  return b[1];\n}\n",
      {27, 33}, "overlap family (reported like the memcpy overlap when "
                "detected)"});
  R.push_back({105,
      "#include <string.h>\n"
      "int main(void) { char b[4]; memset(b, 0, 8); return b[0]; }\n",
      {10}, "an oversized memset length is an out-of-bounds write"});
  R.push_back({106,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char a[4]; char b[4];\n"
      "  memset(a, 'x', 4); memset(b, 'x', 4);\n"
      "  return memcmp(a, b, 16);\n}\n",
      {9, 33, 29}, "a memcmp operand extending past its object reads one "
                   "past it"});
  R.push_back(none(107, "FILE streams are outside the modelled library "
                        "subset"));
  R.push_back(none(108, "atexit is outside the modelled library subset, so "
                        "exit() cannot re-enter"));
  R.push_back(none(109, "atexit is outside the modelled library subset"));
  R.push_back(none(110, "the filesystem is outside the modelled library "
                        "subset"));
  R.push_back(none(111, "signal handling is outside the modelled library "
                        "subset"));
  R.push_back(none(112, "signal handling is outside the modelled library "
                        "subset"));
  R.push_back(none(113, "signal handling is outside the modelled library "
                        "subset"));
  R.push_back({114,
      "#include <stdio.h>\n"
      "int main(void) { printf(\"\\x80\\xff\\n\"); return 0; }\n",
      {34}, "needs a format-string validity check in the printf model"});
  R.push_back({115,
      "#include <stdio.h>\n"
      "int main(void) { printf(\"%n\\n\", (int*)0); return 0; }\n",
      {34, 6, 204}, "the printf model treats %n as an invalid conversion "
                    "specifier (row 204's code)"});
  R.push_back(none(116, "strtod is outside the modelled library subset"));
  R.push_back(none(117, "strstr is outside the modelled library subset"));
  R.push_back(none(118, "strtok is outside the modelled library subset"));
  R.push_back({119,
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  unsigned long big = 0x8000000000000000UL;\n"
      "  int *p = (int*)calloc(big, 16);\n"
      "  if (!p) { return 1; }\n"
      "  p[0] = 1;\n  free(p);\n  return 0;\n}\n",
      {10}, "a wrapped calloc size under-allocates; the first write is out "
            "of bounds"});
  R.push_back(none(120, "gets is outside the modelled library subset"));
  R.push_back({121,
      "#include <string.h>\n"
      "int main(void) { char b[2]; memset(b, 300, 2); return b[0]; }\n",
      {19}, "needs a value-range check in the memset model (trap-value "
            "row)"});
  R.push_back(none(122, "vprintf is outside the modelled library subset"));
  R.push_back({123,
      "#include <stdlib.h>\n"
      "static int cmp(const void *a, const void *b) {\n"
      "  return *(const int*)a - *(const int*)b;\n}\n"
      "int main(void) {\n"
      "  int key = 2;\n"
      "  int arr[4]; arr[0] = 9; arr[1] = 2; arr[2] = 7; arr[3] = 1;\n"
      "  return bsearch(&key, arr, 4, sizeof(int), cmp) != 0;\n}\n",
      {}, "needs a sortedness check in the bsearch model; no existing "
          "UbKind names this behavior"});
  R.push_back(none(124, "the modelled va_start ignores its parmN operand "
                        "entirely, so its declaration cannot matter"));
  R.push_back(none(125, "FILE streams are outside the modelled library "
                        "subset"));
  R.push_back(none(126, "signal handling is outside the modelled library "
                        "subset"));
  R.push_back(none(127, "FILE streams are outside the modelled library "
                        "subset"));
  R.push_back({128,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char b[4] = \"abc\";\n"
      "  return (int)strlen(b + 4);\n}\n",
      {33, 9, 29}, "a one-past-the-end string start reads out of bounds"});
  R.push_back({129,
      "#include <stdlib.h>\n"
      "static int keep = 3;\n"
      "int main(void) { free(&keep); return 0; }\n",
      {20}, "freeing static storage is an invalid free argument"});
  R.push_back({130,
      "#include <stdlib.h>\n"
      "int main(void) { int a[2]; a[0] = 1; free(a); return a[0]; }\n",
      {20}, "freeing automatic storage is an invalid free argument"});
  R.push_back({131,
      "#include <stdio.h>\n"
      "int main(void) {\n"
      "  char b[3]; b[0] = 'a'; b[1] = 'b'; b[2] = 'c';\n"
      "  printf(\"%s\\n\", b);\n"
      "  return 0;\n}\n",
      {33, 34, 9, 29}, "a non-terminated %s argument reads one past its "
                       "object"});
  R.push_back({132,
      "#include <stdio.h>\n"
      "int main(void) { printf(\"%p\\n\", 5); return 0; }\n",
      {34}, "a non-pointer %p argument is a va_arg type mismatch"});
  R.push_back({133,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char a[4]; char b[4];\n"
      "  memset(a, 'x', 4);\n"
      "  memmove(b, a, 12);\n"
      "  return b[0];\n}\n",
      {9, 10}, "an oversized memmove length is an out-of-bounds access"});
  R.push_back({134,
      "#include <stdlib.h>\n"
      "int main(void) { return atoi(\"not a number\"); }\n",
      {33}, "needs an input-validity check in the atoi model (trap-value "
            "row)"});
  R.push_back({135,
      "#include <string.h>\n"
      "int main(void) {\n"
      "  char a[3]; a[0] = 'x'; a[1] = 'y'; a[2] = 'z';\n"
      "  return strncmp(a, \"xyz!\", 8);\n}\n",
      {33, 9, 29}, "an strncmp length past a non-terminated operand reads "
                   "one past it"});
  R.push_back(none(136, "FILE objects are outside the modelled library "
                        "subset"));
  R.push_back({137,
      "#include <stdlib.h>\n"
      "int main(void) {\n"
      "  char *p = (char*)malloc(8);\n"
      "  if (!p) { return 1; }\n"
      "  char *q = (char*)realloc(p + 4, 16);\n"
      "  if (q) { free(q); } else { free(p); }\n  return 0;\n}\n",
      {37}, "an interior realloc argument is an invalid realloc"});
  R.push_back(none(138, "strncat is outside the modelled library subset"));
  R.push_back({139,
      "#include <stdio.h>\n"
      "int main(void) {\n"
      "  char b[8] = \"seed\";\n"
      "  snprintf(b, 8, \"x%s\", b);\n"
      "  return b[0];\n}\n",
      {27, 33}, "needs an overlap check in the snprintf model"});
  R.push_back({140,
      "#include <stdlib.h>\n"
      "static int cmp(const void *a, const void *b) {\n"
      "  return *(const int*)a - *(const int*)b;\n}\n"
      "int main(void) {\n"
      "  int arr[4]; arr[0] = 3; arr[1] = 1; arr[2] = 2; arr[3] = 0;\n"
      "  qsort(arr, 4, 1, cmp);\n"
      "  return arr[0];\n}\n",
      {9, 19, 25}, "a wrong element size misreads elements through the "
                   "comparator"});
  R.push_back(none(141, "the modelled va_list is a bare index passed by "
                        "value; caller and callee cannot share state"));

  //===--- Rows 142-221: statically detectable (suite rows get aliases) --===//

  R.push_back({142,
      "int main(void) { return 0; }",
      {}, "needs a lexer-level end-of-file check; no existing UbKind "
          "names this behavior"});
  R.push_back({143,
      "int @bad = 1;\n"
      "int main(void) { return 0; }\n",
      {}, "needs a lexer-level character-set check"});
  R.push_back({144,
      "#define MKDEF defined\n"
      "#if MKDEF(MKDEF)\n"
      "#endif\n"
      "int main(void) { return 0; }\n",
      {}, "needs a preprocessor check for generated 'defined'"});
  R.push_back({145,
      "#include bad-include-form\n"
      "int main(void) { return 0; }\n",
      {}, "needs a preprocessor header-name-form check"});
  R.push_back({146,
      "#define TAKES(a) a\n"
      "int main(void) { return TAKES(0",
      {}, "needs a preprocessor end-of-file-in-arguments check"});
  R.push_back(none(147,
      "the modelled # operator always produces a valid string literal, so "
      "the behavior cannot be triggered"));
  R.push_back({148,
      "#define PASTE(a, b) a##b\n"
      "int main(void) { return PASTE(1, ++x); }\n",
      {}, "needs a preprocessor invalid-paste check"});
  R.push_back({149,
      "#line 0\n"
      "int main(void) { return 0; }\n",
      {}, "needs a preprocessor #line range check (the model ignores "
          "#line)"});
  R.push_back({150,
      "#pragma nonstandard_thing\n"
      "int main(void) { return 0; }\n",
      {}, "needs a preprocessor pragma check (the model ignores #pragma)"});
  R.push_back({151,
      "#undef __LINE__\n"
      "int main(void) { return 0; }\n",
      {}, "needs a preprocessor predefined-macro guard"});
  R.push_back({152,
      "#include <bad'name.h>\n"
      "int main(void) { return 0; }\n",
      {}, "needs a preprocessor header-name character check"});
  R.push_back(alias(153, {},
      "needs a lexer-level constant-range check; no existing UbKind names "
      "this behavior"));
  R.push_back(none(154,
      "encoding-prefixed string literals are outside the modelled "
      "subset"));
  R.push_back({155,
      "int main(void) { // comment ending in backslash \\\n"
      "  return 0;\n}\n",
      {}, "needs a lexer-level line-splice check in // comments"});
  R.push_back({156,
      "extern int both_linkages;\n"
      "static int both_linkages = 1;\n"
      "int main(void) { return both_linkages - 1; }\n",
      {44}, "linkage disagreement is an incompatible redeclaration "
            "(6.2.2 via 6.2.7)"});
  R.push_back(none(157,
      "cross-translation-unit declarations are outside the modelled "
      "subset (one TU per analysis)"));
  R.push_back({158,
      "int main(void) { int twice = 1; int twice = 2; return twice; }\n",
      {44}, "a no-linkage redeclaration in one scope is an incompatible "
            "redeclaration"});
  R.push_back({159,
      "inline int counter(void) { static int c = 0; c = c + 1; return c; }\n"
      "int main(void) { return counter() - 1; }\n",
      {}, "needs an inline-definition static-object check"});
  R.push_back({160,
      "static int secret = 3;\n"
      "inline int reveal(void) { return secret; }\n"
      "int main(void) { return reveal() - 3; }\n",
      {}, "needs an inline-definition internal-linkage-reference check"});
  R.push_back({161,
      "extern int never_defined(int x);\n"
      "int main(void) { return never_defined(1); }\n",
      {161}, "strict: the evaluator reports this row's own catalog code"});
  R.push_back({162,
      "int doubled = 1;\n"
      "int doubled = 2;\n"
      "int main(void) { return doubled; }\n",
      {44}, "two external definitions are incompatible redeclarations in "
            "one TU"});
  R.push_back({163,
      "int not_a_function { return 0; }\n"
      "int main(void) { return 0; }\n",
      {}, "needs a declarator-form check (the frontend rejects the parse "
          "without a UB report)"});
  R.push_back({164,
      "static int identity(a) { return a; }\n"
      "int main(void) { return identity(0); }\n",
      {}, "needs an identifier-list parameter-type check"});
  R.push_back(alias(165, {50},
      "a memberless struct leaves its objects effectively incomplete"));
  R.push_back({166,
      "struct bad_flex { int tail[]; int after; };\n"
      "int main(void) { return 0; }\n",
      {}, "needs a flexible-array-placement check"});
  R.push_back(alias(167, {},
      "needs an enumerator-range check; no existing UbKind names this "
      "behavior"));
  R.push_back({168,
      "struct tag_kind { int a; };\n"
      "int main(void) { union tag_kind { int b; } u; u.b = 1;"
      " return u.b - 1; }\n",
      {44}, "a tag redeclared as a different kind is an incompatible "
            "redeclaration"});
  R.push_back({169,
      "int main(void) { int restrict plain = 1; return plain - 1; }\n",
      {}, "needs a restrict-applicability check"});
  R.push_back({170,
      "typedef int fn(void);\n"
      "const fn croak;\n"
      "int main(void) { return 0; }\n",
      {41}, "a qualified function type through a typedef is code 41 "
            "(6.7.3:9)"});
  R.push_back(none(171,
      "alignment specifiers are outside the modelled language subset"));
  R.push_back({172,
      "int main(void) { void (* restrict fp)(void) = 0; (void)fp;"
      " return 0; }\n",
      {}, "needs a restrict-applicability check (pointer to function)"});
  R.push_back(alias(173, {},
      "needs a parameter-list form check; the frontend rejects the parse "
      "without a UB report"));
  R.push_back({174,
      "int main(void) { int a[2] = {1, 2, 3}; return a[0] - 1; }\n",
      {}, "needs an excess-initializer check"});
  R.push_back({175,
      "static int supply(void) { return 4; }\n"
      "int from_call = supply();\n"
      "int main(void) { return from_call - 4; }\n",
      {}, "needs a constant-initializer check for static storage"});
  R.push_back({176,
      "int main(void) { int x = {1, 2}; return x - 1; }\n",
      {}, "needs a scalar-brace-list check"});
  R.push_back({177,
      "int main(void) {\n"
      "again: ;\n"
      "again: ;\n"
      "  return 0;\n}\n",
      {}, "needs a duplicate-label check"});
  R.push_back({178,
      "int main(void) {\n"
      "  case 1: ;\n"
      "  return 0;\n}\n",
      {}, "needs a label-placement check"});
  R.push_back({179,
      "int main(void) {\n"
      "  int x = 1;\n"
      "  switch (x) { case 1: return 1; case 1: return 2; }\n"
      "  return 0;\n}\n",
      {}, "needs a duplicate-case check"});
  R.push_back({180,
      "int main(void) { goto nowhere; return 0; }\n",
      {}, "needs an undefined-label check"});
  R.push_back({181,
      "int main(void) { continue; return 0; }\n",
      {}, "needs a continue-placement check"});
  R.push_back({182,
      "int main(void) { break; return 0; }\n",
      {}, "needs a break-placement check"});
  R.push_back(alias(183, {24},
      "the empty return is caught when the caller uses the missing value "
      "(code 24)"));
  R.push_back(alias(184, {23},
      "an argument-count mismatch is code 23 (6.5.2.2)"));
  R.push_back(alias(185, {23},
      "an argument-count mismatch is code 23 (6.5.2.2)"));
  R.push_back({186,
      "int main(void) { return (int)sizeof(main); }\n",
      {}, "needs a sizeof-operand check"});
  R.push_back({187,
      "struct whole { int v; };\n"
      "int main(void) { struct whole w = (struct whole)5; return w.v; }\n",
      {}, "needs a cast-type check (the frontend rejects the parse "
          "without a UB report)"});
  R.push_back(alias(188, {},
      "needs a pointer-compatibility check in assignment; the frontend "
      "accepts or rejects without a UB report"));
  R.push_back({189,
      "int main(void) { return mystery_value; }\n",
      {}, "needs an undeclared-identifier UB report (the frontend rejects "
          "the parse without one)"});
  R.push_back({190,
      "int main(void) { return 5[6]; }\n",
      {}, "needs a subscript-operand check"});
  R.push_back({191,
      "int main(void) { register int r = 1; return *(&r); }\n",
      {}, "needs an address-of-register check"});
  R.push_back({192,
      "#define int struct\n"
      "#include <string.h>\n"
      "int main(void) { return 0; }\n",
      {}, "needs a keyword-macro-at-include check"});
  R.push_back(alias(193, {},
      "needs a reserved-identifier check; code 45 covers distinctness, "
      "not reservation"));
  R.push_back({194,
      "int strextra = 1;\n"
      "int main(void) { return strextra - 1; }\n",
      {}, "needs a reserved-library-prefix check"});
  R.push_back({195,
      "#define strlen(s) 0\n"
      "#include <string.h>\n"
      "int main(void) { return 0; }\n",
      {}, "needs a macro-before-header check"});
  R.push_back({196,
      "int strlen(int x);\n"
      "int main(void) { return 0; }\n",
      {44}, "an incompatible library declaration clashes with the "
            "modelled prototype"});
  R.push_back(none(197, "assert.h is outside the modelled library subset"));
  R.push_back(none(198, "setjmp is outside the modelled library subset"));
  R.push_back(none(199, "setjmp is outside the modelled library subset"));
  R.push_back({200,
      "#include <stdarg.h>\n"
      "static int fixed_args(int n) {\n"
      "  va_list ap;\n"
      "  va_start(ap, n);\n"
      "  int v = va_arg(ap, int);\n"
      "  va_end(ap);\n"
      "  return v;\n}\n"
      "int main(void) { return fixed_args(3); }\n",
      {200}, "strict: the syntactic checker flags variadic machinery in a "
             "fixed-argument function"});
  R.push_back({201,
      "#include <stdarg.h>\n"
      "static int voids(int n, ...) {\n"
      "  va_list ap;\n"
      "  va_start(ap, n);\n"
      "  va_arg(ap, void);\n"
      "  va_end(ap);\n"
      "  return 0;\n}\n"
      "int main(void) { return voids(1, 2); }\n",
      {201}, "strict: the syntactic checker flags a va_arg type argument "
             "that is not a complete object type"});
  R.push_back(none(202, "offsetof is outside the modelled library subset"));
  R.push_back(none(203, "offsetof is outside the modelled library subset"));
  R.push_back({204,
      "#include <stdio.h>\n"
      "int main(void) { printf(\"%q\\n\", 1); return 0; }\n",
      {204}, "strict: the evaluator reports this row's own catalog code"});
  R.push_back(none(205, "scanf is outside the modelled library subset"));
  R.push_back({206,
      "#include <stddef.h>\n"
      "#undef NULL\n"
      "#define NULL 5\n"
      "int main(void) { return NULL - 5; }\n",
      {}, "needs a NULL-redefinition check"});
  R.push_back({207,
      "char *strcpy(char *d, int wrong);\n"
      "int main(void) { return 0; }\n",
      {44}, "a mismatched local prototype clashes with the modelled "
            "declaration"});
  R.push_back({208,
      "int memextra = 1;\n"
      "int main(void) { return memextra - 1; }\n",
      {}, "needs a future-library-direction reserved-name check"});
  R.push_back(alias(209, {},
      "needs a preprocessor predefined-macro guard; no existing UbKind "
      "names this behavior"));
  R.push_back({210,
      "#define __LINE__ 5\n"
      "int main(void) { return 0; }\n",
      {}, "needs a preprocessor predefined-macro guard"});
  R.push_back(none(211,
      "universal character names are outside the modelled subset"));
  R.push_back(none(212,
      "universal character names are outside the modelled subset"));
  R.push_back({213,
      "int main(void) { int c = 'ab'; return c != 0; }\n",
      {}, "needs a multi-character-constant check"});
  R.push_back({214,
      "int main(void) { double d = 1e99999; return d > 0; }\n",
      {}, "needs a floating-constant range check"});
  R.push_back({215,
      "extern int sized[5];\n"
      "int sized[6];\n"
      "int main(void) { return 0; }\n",
      {44}, "inconsistent completion is an incompatible redeclaration"});
  R.push_back({216,
      "struct outer_tag { int a; };\n"
      "int main(void) {\n"
      "  struct outer_tag *p = 0;\n"
      "  { struct outer_tag { int b; } inner; inner.b = 1;"
      " p = (struct outer_tag*)&inner; }\n"
      "  return p == 0;\n}\n",
      {}, "needs a shadowed-forward-reference check"});
  R.push_back({217,
      "int static lately = 1;\n"
      "int main(void) { return lately - 1; }\n",
      {}, "needs a storage-class-position check (obsolescent form)"});
  R.push_back({218,
      "static int bare() { return 0; }\n"
      "int main(void) { return bare(); }\n",
      {}, "needs an empty-identifier-list definition check (obsolescent "
          "form)"});
  R.push_back({219,
      "int main(void) { int a[static 5]; a[0] = 1; return a[0] - 1; }\n",
      {}, "needs an array-declarator qualifier-placement check"});
  R.push_back(none(220,
      "compound literals are outside the modelled language subset"));
  R.push_back({221,
      "#error deliberate failure\n"
      "int main(void) { return 0; }\n",
      {}, "the directive stops translation without a UB report; needs a "
          "static finding"});

  return R;
}

std::vector<CoverageCase> buildCases() {
  // First undefined program per suite-covered behavior.
  std::map<uint16_t, const TestCase *> SuiteFirst;
  for (const TestCase &Test : undefSuite())
    SuiteFirst.emplace(Test.CatalogId, &Test);

  std::map<uint16_t, RowSpec> Specs;
  for (RowSpec &Spec : buildSpecs()) {
    bool Inserted = Specs.emplace(Spec.Id, std::move(Spec)).second;
    assert(Inserted && "duplicate coverage row spec");
    (void)Inserted;
  }

  const unsigned Total = catalogStats().Total;
  std::vector<CoverageCase> Cases;
  Cases.reserve(Total);
  for (uint16_t Id = 1; Id <= Total; ++Id) {
    CoverageCase Case;
    Case.Id = Id;
    auto SpecIt = Specs.find(Id);
    auto SuiteIt = SuiteFirst.find(Id);
    if (SpecIt == Specs.end()) {
      // Plain suite row: program from the suite, strict code match.
      assert(SuiteIt != SuiteFirst.end() &&
             "catalog row without a coverage case");
      Case.Program = SuiteIt->second->Bad;
      Case.ExpectedCodes = {Id};
      Case.Note = "strict: row mirrors a UbKind; program from the custom "
                  "suite";
    } else {
      const RowSpec &Spec = SpecIt->second;
      Case.Note = Spec.Note;
      Case.ExpectedCodes = Spec.Codes;
      if (Spec.Program) {
        Case.Program = Spec.Program;
      } else if (!Spec.Codes.empty() || SuiteIt != SuiteFirst.end()) {
        // Alias row: suite program with an explicit code set.
        assert(SuiteIt != SuiteFirst.end() &&
               "alias row without a suite program");
        Case.Program = SuiteIt->second->Bad;
      }
      // else: inexpressible (Program stays empty).
    }
    Cases.push_back(std::move(Case));
  }
  return Cases;
}

} // namespace

const std::vector<CoverageCase> &cundef::catalogCoverageCases() {
  static const std::vector<CoverageCase> Cases = buildCases();
  return Cases;
}

const char *cundef::coverageVerdictName(CoverageVerdict V) {
  switch (V) {
  case CoverageVerdict::Covered:       return "covered";
  case CoverageVerdict::WrongCode:     return "wrong-code";
  case CoverageVerdict::Missed:        return "missed";
  case CoverageVerdict::Inexpressible: return "inexpressible";
  }
  return "?";
}

const char *cundef::coverageSourceName(CoverageSource S) {
  switch (S) {
  case CoverageSource::None:    return "none";
  case CoverageSource::Static:  return "static";
  case CoverageSource::Dynamic: return "dynamic";
  case CoverageSource::Both:    return "both";
  }
  return "?";
}

AnalysisRequest cundef::coverageRequest(bool Quick) {
  return AnalysisRequest::Builder()
      .searchRuns(Quick ? 4 : 64)
      .searchJobs(0)
      .buildOrDie();
}

CoverageReport cundef::runCatalogCoverage(AnalysisEngine &Eng,
                                          const AnalysisRequest &Req) {
  const std::vector<CoverageCase> &Cases = catalogCoverageCases();
  const auto Start = std::chrono::steady_clock::now();

  // One batch: every expressible case, in catalog order.
  std::vector<BatchInput> Inputs;
  std::vector<size_t> InputCase; // batch index -> case index
  for (size_t I = 0; I < Cases.size(); ++I) {
    if (!Cases[I].expressible())
      continue;
    Inputs.push_back(
        {Cases[I].Program, strFormat("cov_ub%03u.c", Cases[I].Id)});
    InputCase.push_back(I);
  }
  std::vector<JobHandle> Jobs = Eng.submitBatch(Req, Inputs);

  CoverageReport Report;
  Report.Entries.resize(Cases.size());
  for (size_t I = 0; I < Cases.size(); ++I) {
    Report.Entries[I].Id = Cases[I].Id;
    Report.Entries[I].Verdict = CoverageVerdict::Inexpressible;
  }

  for (size_t J = 0; J < Jobs.size(); ++J) {
    const DriverOutcome &Outcome = Jobs[J].wait();
    const CoverageCase &Case = Cases[InputCase[J]];
    EntryCoverage &Entry = Report.Entries[InputCase[J]];

    uint16_t First = 0, FirstMatch = 0;
    bool MatchedStatic = false, MatchedDynamic = false;
    auto Scan = [&](const std::vector<UbReport> &Reports, bool &Matched) {
      for (const UbReport &R : Reports) {
        uint16_t Code = ubCode(R.Kind);
        if (!First)
          First = Code;
        if (std::find(Case.ExpectedCodes.begin(), Case.ExpectedCodes.end(),
                      Code) != Case.ExpectedCodes.end()) {
          Matched = true;
          if (!FirstMatch)
            FirstMatch = Code;
        }
      }
    };
    Scan(Outcome.StaticUb, MatchedStatic);
    Scan(Outcome.DynamicUb, MatchedDynamic);

    // Prefer the code that answered the row: a static 00049 ahead of a
    // dynamic 00017 must not grade the row by the bystander code.
    Entry.ReportedCode = FirstMatch ? FirstMatch : First;
    if (MatchedStatic || MatchedDynamic) {
      Entry.Verdict = CoverageVerdict::Covered;
      Entry.Source = MatchedStatic && MatchedDynamic ? CoverageSource::Both
                     : MatchedStatic ? CoverageSource::Static
                                     : CoverageSource::Dynamic;
    } else if (First)
      Entry.Verdict = CoverageVerdict::WrongCode;
    else
      Entry.Verdict = CoverageVerdict::Missed; // clean run or plain
                                               // compile error
  }
  Eng.drain();

  for (const EntryCoverage &Entry : Report.Entries) {
    switch (Entry.Verdict) {
    case CoverageVerdict::Covered:       ++Report.Covered; break;
    case CoverageVerdict::WrongCode:     ++Report.WrongCode; break;
    case CoverageVerdict::Missed:        ++Report.Missed; break;
    case CoverageVerdict::Inexpressible: ++Report.Inexpressible; break;
    }
    switch (Entry.Source) {
    case CoverageSource::None: break;
    case CoverageSource::Static:  ++Report.CoveredStatic; break;
    case CoverageSource::Dynamic: ++Report.CoveredDynamic; break;
    case CoverageSource::Both:    ++Report.CoveredBoth; break;
    }
  }
  Report.WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  return Report;
}

CoverageReport cundef::runCatalogCoverage(const AnalysisRequest &Req) {
  AnalysisEngine Eng(engineConfigFor(Req));
  CoverageReport Report = runCatalogCoverage(Eng, Req);
  Eng.shutdown();
  return Report;
}

std::string cundef::renderCoverageReport(const CoverageReport &R) {
  std::string Out;
  Out += "UB-catalog coverage: one triggering program per catalog entry,\n"
         "graded against the codes the evaluator reports.\n\n";
  Out += padRight("Verdict", 16) + padLeft("Entries", 8) + "\n";
  Out += std::string(24, '-') + "\n";
  Out += padRight("covered", 16) + padLeft(strFormat("%u", R.Covered), 8) +
         strFormat("   (static %u, dynamic %u, both %u)", R.CoveredStatic,
                   R.CoveredDynamic, R.CoveredBoth) +
         "\n";
  Out += padRight("wrong-code", 16) +
         padLeft(strFormat("%u", R.WrongCode), 8) + "\n";
  Out += padRight("missed", 16) + padLeft(strFormat("%u", R.Missed), 8) +
         "\n";
  Out += padRight("inexpressible", 16) +
         padLeft(strFormat("%u", R.Inexpressible), 8) + "\n";
  Out += padRight("total", 16) + padLeft(strFormat("%u", R.total()), 8) +
         "\n\n";

  // Per-entry lines for everything that is not covered: the work list.
  const std::vector<CoverageCase> &Cases = catalogCoverageCases();
  Out += "Entries not covered:\n";
  for (const EntryCoverage &Entry : R.Entries) {
    if (Entry.Verdict == CoverageVerdict::Covered)
      continue;
    const CatalogEntry *Row = catalogEntry(Entry.Id);
    std::string Line = strFormat(
        "  %3u  %-13s", Entry.Id, coverageVerdictName(Entry.Verdict));
    if (Entry.Verdict == CoverageVerdict::WrongCode)
      Line += strFormat(" reported %05u", Entry.ReportedCode);
    if (Row)
      Line += strFormat("  %s", Row->Description);
    // Inexpressible rows carry the reason instead of the description.
    if (Entry.Verdict == CoverageVerdict::Inexpressible &&
        Entry.Id >= 1 && Entry.Id <= Cases.size())
      Line = strFormat("  %3u  %-13s  %s", Entry.Id,
                       coverageVerdictName(Entry.Verdict),
                       Cases[Entry.Id - 1].Note);
    Out += Line + "\n";
  }
  // The stable machine-greppable summary (CheckCoverageBaseline.cmake);
  // the trailing triple partitions covered by the detecting layer.
  Out += strFormat("\ncoverage: covered=%u wrong-code=%u missed=%u "
                   "inexpressible=%u total=%u static=%u dynamic=%u "
                   "both=%u\n",
                   R.Covered, R.WrongCode, R.Missed, R.Inexpressible,
                   R.total(), R.CoveredStatic, R.CoveredDynamic,
                   R.CoveredBoth);
  return Out;
}

CatalogCoverageColumn cundef::coverageColumn(const CoverageReport &R) {
  CatalogCoverageColumn Col;
  Col.Covered = R.Covered;
  Col.WrongCode = R.WrongCode;
  Col.Missed = R.Missed;
  Col.Inexpressible = R.Inexpressible;
  Col.Cells.reserve(R.Entries.size());
  for (const EntryCoverage &Entry : R.Entries) {
    std::string Cell = coverageVerdictName(Entry.Verdict);
    if (Entry.Verdict == CoverageVerdict::Covered)
      Cell += strFormat(" (%s)", coverageSourceName(Entry.Source));
    if (Entry.Verdict == CoverageVerdict::WrongCode)
      Cell += strFormat(" (reports %05u)", Entry.ReportedCode);
    Col.Cells.push_back(std::move(Cell));
  }
  return Col;
}

std::string cundef::renderCoverageJson(const CoverageReport &R,
                                       const char *Mode, double WallMs) {
  const std::vector<CoverageCase> &Cases = catalogCoverageCases();
  std::string Out;
  Out += "{\n";
  Out += "  \"schema\": \"cundef-kcc-v1\",\n";
  Out += "  \"coverage\": {\n";
  Out += strFormat("    \"mode\": \"%s\",\n", Mode);
  Out += strFormat("    \"total\": %u,\n", R.total());
  Out += strFormat("    \"covered\": %u,\n", R.Covered);
  Out += strFormat("    \"covered_static\": %u,\n", R.CoveredStatic);
  Out += strFormat("    \"covered_dynamic\": %u,\n", R.CoveredDynamic);
  Out += strFormat("    \"covered_both\": %u,\n", R.CoveredBoth);
  Out += strFormat("    \"wrong_code\": %u,\n", R.WrongCode);
  Out += strFormat("    \"missed\": %u,\n", R.Missed);
  Out += strFormat("    \"inexpressible\": %u,\n", R.Inexpressible);
  Out += strFormat("    \"wall_ms\": %.2f,\n", WallMs);
  Out += "    \"entries\": [\n";
  for (size_t I = 0; I < R.Entries.size(); ++I) {
    const EntryCoverage &Entry = R.Entries[I];
    const CoverageCase &Case = Cases[I];
    Out += strFormat("      {\"id\": %u, \"verdict\": \"%s\"", Entry.Id,
                     coverageVerdictName(Entry.Verdict));
    if (Entry.Verdict == CoverageVerdict::Covered)
      Out += strFormat(", \"source\": \"%s\"",
                       coverageSourceName(Entry.Source));
    if (Entry.ReportedCode)
      Out += strFormat(", \"reported_code\": %u", Entry.ReportedCode);
    if (!Case.ExpectedCodes.empty()) {
      Out += ", \"expected_codes\": [";
      for (size_t C = 0; C < Case.ExpectedCodes.size(); ++C)
        Out += strFormat(C ? ", %u" : "%u", Case.ExpectedCodes[C]);
      Out += "]";
    }
    if (Case.Note[0])
      Out += strFormat(", \"note\": \"%s\"",
                       jsonEscape(Case.Note).c_str());
    Out += I + 1 < R.Entries.size() ? "},\n" : "}\n";
  }
  Out += "    ]\n";
  Out += "  },\n";
  Out += "  \"exit_code\": 0\n";
  Out += "}\n";
  return Out;
}
