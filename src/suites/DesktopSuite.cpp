//===- suites/DesktopSuite.cpp - The desktop-C scored suite ---------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "suites/DesktopSuite.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cundef {

#ifndef CUNDEF_DESKTOP_SUITE_DIR
#define CUNDEF_DESKTOP_SUITE_DIR "tests/suites/desktop"
#endif

const char *desktopSuiteDir() { return CUNDEF_DESKTOP_SUITE_DIR; }

static bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

DesktopSuite loadDesktopSuite(const std::string &Dir) {
  DesktopSuite Suite;
  std::string ManifestPath = Dir + "/manifest.txt";
  std::ifstream Manifest(ManifestPath);
  if (!Manifest) {
    Suite.Error = "cannot open " + ManifestPath;
    return Suite;
  }

  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(Manifest, Line)) {
    ++LineNo;
    std::string::size_type Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.erase(Hash);
    std::istringstream Fields(Line);
    std::string Name, Expect;
    unsigned Code = 0;
    if (!(Fields >> Name))
      continue; // blank or comment-only line
    auto fail = [&](const std::string &Why) {
      char Where[32];
      std::snprintf(Where, sizeof(Where), ":%u: ", LineNo);
      Suite.Error = ManifestPath + Where + Why;
      Suite.Cases.clear();
      return Suite;
    };
    if (!(Fields >> Expect >> Code))
      return fail("expected '<name> flag|miss <code>'");
    std::string Extra;
    if (Fields >> Extra)
      return fail("trailing field '" + Extra + "'");

    DesktopCase Case;
    if (Expect == "flag")
      Case.ExpectFlagged = true;
    else if (Expect == "miss")
      Case.ExpectFlagged = false;
    else
      return fail("verdict must be 'flag' or 'miss', got '" + Expect + "'");
    if (Case.ExpectFlagged == (Code == 0))
      return fail(Case.ExpectFlagged ? "'flag' needs a nonzero code"
                                     : "'miss' needs code 0");
    Case.ExpectedCode = static_cast<uint16_t>(Code);
    Case.Test.Name = Name;
    if (!readFile(Dir + "/" + Name + "_bad.c", Case.Test.Bad))
      return fail("cannot read " + Name + "_bad.c");
    if (!readFile(Dir + "/" + Name + "_good.c", Case.Test.Good))
      return fail("cannot read " + Name + "_good.c");
    Suite.Cases.push_back(std::move(Case));
  }

  if (Suite.Cases.empty())
    Suite.Error = ManifestPath + ": no cases";
  return Suite;
}

} // namespace cundef
