//===- suites/SuiteRunner.cpp - Scoring tools on suites ------------------------===//
//
// Part of cundef, a semantics-based undefinedness checker for C.
//
//===----------------------------------------------------------------------===//

#include "suites/SuiteRunner.h"

#include "driver/ToolRunner.h"
#include "support/Strings.h"

#include <chrono>

using namespace cundef;

namespace {

/// Folds per-pair verdicts (however they were produced: one tool run
/// per half, or one shared batched scheduler) into Figure 2 scores.
JulietScores aggregateJuliet(const std::vector<TestCase> &Tests,
                             const std::vector<PairVerdict> &Verdicts) {
  std::map<JulietClass, ClassScore> ByClass;
  double TotalMicros = 0.0;
  unsigned TotalTests = 0;
  for (size_t I = 0; I < Tests.size(); ++I) {
    const PairVerdict &Verdict = Verdicts[I];
    ClassScore &Score = ByClass[Tests[I].Class];
    Score.Class = Tests[I].Class;
    ++Score.Tests;
    if (Verdict.passed())
      ++Score.Passed;
    if (Verdict.FlaggedGood)
      ++Score.FalsePositives;
    TotalMicros += Verdict.Micros;
    TotalTests += 2; // bad + good
  }
  JulietScores Scores;
  for (JulietClass Class :
       {JulietClass::InvalidPointer, JulietClass::DivideByZero,
        JulietClass::BadFree, JulietClass::UninitializedMemory,
        JulietClass::BadFunctionCall, JulietClass::IntegerOverflow}) {
    auto It = ByClass.find(Class);
    if (It != ByClass.end())
      Scores.PerClass.push_back(It->second);
  }
  Scores.MeanMicrosPerTest = TotalTests ? TotalMicros / TotalTests : 0.0;
  return Scores;
}

/// Per-pair verdicts through one shared scheduler: both halves of every
/// test become one submission each, in a stable (test, bad/good) order.
std::vector<PairVerdict>
batchedVerdicts(const AnalysisRequest &Req,
                const std::vector<TestCase> &Tests) {
  std::vector<BatchInput> Programs;
  Programs.reserve(Tests.size() * 2);
  for (const TestCase &Test : Tests) {
    Programs.push_back({Test.Bad, Test.Name + "_bad.c"});
    Programs.push_back({Test.Good, Test.Name + "_good.c"});
  }
  std::vector<ToolResult> Results = runKccBatched(Req, Programs);
  std::vector<PairVerdict> Verdicts(Tests.size());
  for (size_t I = 0; I < Tests.size(); ++I) {
    Verdicts[I].FlaggedBad = Results[2 * I].flagged();
    Verdicts[I].FlaggedGood = Results[2 * I + 1].flagged();
    Verdicts[I].Micros = Results[2 * I].Micros + Results[2 * I + 1].Micros;
  }
  return Verdicts;
}

} // namespace

JulietScores cundef::scoreJuliet(Tool &T, const std::vector<TestCase> &Tests) {
  std::vector<PairVerdict> Verdicts;
  Verdicts.reserve(Tests.size());
  for (const TestCase &Test : Tests)
    Verdicts.push_back(runOnPair(T, Test));
  return aggregateJuliet(Tests, Verdicts);
}

JulietScores cundef::scoreJulietBatched(const AnalysisRequest &Req,
                                        const std::vector<TestCase> &Tests) {
  return aggregateJuliet(Tests, batchedVerdicts(Req, Tests));
}

namespace {

CustomScores aggregateCustom(const std::vector<TestCase> &Tests,
                             const std::vector<PairVerdict> &Verdicts) {
  struct Accum {
    bool Static = false;
    unsigned Tests = 0;
    unsigned Passed = 0;
  };
  std::map<uint16_t, Accum> ByBehavior;
  for (size_t I = 0; I < Tests.size(); ++I) {
    Accum &A = ByBehavior[Tests[I].CatalogId];
    A.Static = Tests[I].StaticBehavior;
    ++A.Tests;
    if (Verdicts[I].passed())
      ++A.Passed;
  }
  CustomScores Scores;
  double StaticSum = 0.0, DynamicSum = 0.0;
  unsigned StaticBehaviors = 0, DynamicBehaviors = 0;
  for (const auto &[Id, A] : ByBehavior) {
    BehaviorScore Score;
    Score.CatalogId = Id;
    Score.Static = A.Static;
    Score.Tests = A.Tests;
    Score.Passed = A.Passed;
    Scores.PerBehavior.push_back(Score);
    double Fraction = A.Tests ? static_cast<double>(A.Passed) / A.Tests : 0.0;
    if (A.Static) {
      StaticSum += Fraction;
      ++StaticBehaviors;
    } else {
      DynamicSum += Fraction;
      ++DynamicBehaviors;
    }
  }
  Scores.StaticPct = StaticBehaviors ? 100.0 * StaticSum / StaticBehaviors
                                     : 0.0;
  Scores.DynamicPct = DynamicBehaviors ? 100.0 * DynamicSum / DynamicBehaviors
                                       : 0.0;
  return Scores;
}

} // namespace

CustomScores cundef::scoreCustom(Tool &T, const std::vector<TestCase> &Tests) {
  std::vector<PairVerdict> Verdicts;
  Verdicts.reserve(Tests.size());
  for (const TestCase &Test : Tests)
    Verdicts.push_back(runOnPair(T, Test));
  return aggregateCustom(Tests, Verdicts);
}

CustomScores cundef::scoreCustomBatched(const AnalysisRequest &Req,
                                        const std::vector<TestCase> &Tests) {
  return aggregateCustom(Tests, batchedVerdicts(Req, Tests));
}

DesktopScores
cundef::scoreDesktopBatched(const AnalysisRequest &Req,
                            const std::vector<DesktopCase> &Cases) {
  auto Start = std::chrono::steady_clock::now();
  std::vector<BatchInput> Programs;
  Programs.reserve(Cases.size() * 2);
  for (const DesktopCase &Case : Cases) {
    Programs.push_back({Case.Test.Bad, Case.Test.Name + "_bad.c"});
    Programs.push_back({Case.Test.Good, Case.Test.Name + "_good.c"});
  }
  std::vector<ToolResult> Results = runKccBatched(Req, Programs);

  DesktopScores Scores;
  Scores.PerCase.reserve(Cases.size());
  for (size_t I = 0; I < Cases.size(); ++I) {
    const ToolResult &Bad = Results[2 * I];
    const ToolResult &Good = Results[2 * I + 1];
    DesktopCaseScore Score;
    Score.Name = Cases[I].Test.Name;
    Score.ExpectFlagged = Cases[I].ExpectFlagged;
    Score.ExpectedCode = Cases[I].ExpectedCode;
    Score.FlaggedBad = Bad.flagged();
    Score.FlaggedGood = Good.flagged();
    for (const UbReport &R : Bad.Findings)
      if (R.StaticFinding)
        Score.StaticCaught = true;
    if (Score.FlaggedBad)
      Score.ReportedCode = static_cast<uint16_t>(Bad.Findings.front().Kind);
    Score.Micros = Bad.Micros + Good.Micros;

    if (Score.asExpected())
      ++Scores.AsExpected;
    if (Score.FlaggedBad)
      ++Scores.Detected;
    if (Score.StaticCaught)
      ++Scores.StaticDetected;
    if (Score.ExpectFlagged && Score.FlaggedBad &&
        Score.ReportedCode != Score.ExpectedCode)
      ++Scores.WrongCode;
    if (Score.ExpectFlagged && !Score.FlaggedBad)
      ++Scores.MissedExpected;
    if (!Score.ExpectFlagged && !Score.FlaggedBad)
      ++Scores.KnownMisses;
    if (Score.FlaggedGood)
      ++Scores.FalsePositives;
    Scores.PerCase.push_back(std::move(Score));
  }
  Scores.WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  return Scores;
}

std::string cundef::renderDesktopTable(const DesktopScores &S) {
  std::string Out;
  Out += "Desktop-C suite: slice-sized argv/file-I/O/string idioms, one\n"
         "(bad, good) pair per case, scored against manifest "
         "expectations.\n\n";
  Out += padRight("Case", 24) + padRight("Expect", 12) +
         padRight("Bad half", 16) + padRight("Good half", 10) +
         "Verdict\n";
  Out += std::string(69, '-') + "\n";
  for (const DesktopCaseScore &C : S.PerCase) {
    std::string Expect = C.ExpectFlagged
                             ? strFormat("flag %05u", C.ExpectedCode)
                             : std::string("miss");
    std::string BadHalf = C.FlaggedBad
                              ? strFormat("UB %05u", C.ReportedCode)
                              : std::string("clean");
    Out += padRight(C.Name, 24) + padRight(Expect, 12) +
           padRight(BadHalf, 16) +
           padRight(C.FlaggedGood ? "FLAGGED" : "clean", 10) +
           (C.asExpected() ? "ok" : "UNEXPECTED") + "\n";
  }
  Out += strFormat("\ndesktop: as-expected=%u detected=%u static=%u "
                   "wrong-code=%u missed=%u known-miss=%u false-pos=%u "
                   "total=%zu\n",
                   S.AsExpected, S.Detected, S.StaticDetected, S.WrongCode,
                   S.MissedExpected, S.KnownMisses, S.FalsePositives,
                   S.PerCase.size());
  return Out;
}

std::string cundef::renderFigure2(
    const std::vector<std::pair<std::string, JulietScores>> &Rows) {
  std::string Out;
  Out += "Figure 2. Comparison of analysis tools on the Juliet-like "
         "suite (% passed)\n\n";
  Out += padRight("Undefined Behavior", 26) + padLeft("No. Tests", 10);
  for (const auto &[Name, Scores] : Rows) {
    (void)Scores;
    Out += padLeft(Name, 15);
  }
  Out += "\n" + std::string(26 + 10 + 15 * Rows.size(), '-') + "\n";
  if (Rows.empty())
    return Out;
  size_t NumClasses = Rows.front().second.PerClass.size();
  for (size_t C = 0; C < NumClasses; ++C) {
    const ClassScore &First = Rows.front().second.PerClass[C];
    Out += padRight(julietClassName(First.Class), 26) +
           padLeft(strFormat("%u", First.Tests), 10);
    for (const auto &[Name, Scores] : Rows) {
      (void)Name;
      Out += padLeft(strFormat("%.1f", Scores.PerClass[C].percent()), 15);
    }
    Out += "\n";
  }
  Out += "\nMean time per test:";
  for (const auto &[Name, Scores] : Rows)
    Out += strFormat("  %s %.1f ms", Name.c_str(),
                     Scores.MeanMicrosPerTest / 1000.0);
  Out += "\n";
  return Out;
}

std::string cundef::renderFigure3(
    const std::vector<std::pair<std::string, CustomScores>> &Rows) {
  std::string Out;
  Out += "Figure 3. Comparison of analysis tools against the custom "
         "undefinedness suite.\nAverages are across behaviors; no "
         "behavior is weighted more than another.\n\n";
  Out += padRight("Tools", 16) + padLeft("Static (% Passed)", 20) +
         padLeft("Dynamic (% Passed)", 21) + "\n";
  Out += std::string(57, '-') + "\n";
  for (const auto &[Name, Scores] : Rows) {
    Out += padRight(Name, 16) +
           padLeft(strFormat("%.1f", Scores.StaticPct), 20) +
           padLeft(strFormat("%.1f", Scores.DynamicPct), 21) + "\n";
  }
  return Out;
}
